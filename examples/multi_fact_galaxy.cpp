// Multi-fact ("galaxy") optimization with Algorithm 3 (Section 6.2).
//
// Two fact tables (orders, shipments) share the customer dimension and have
// private dimensions of their own. The example shows the building blocks —
// fact detection, snowflake extraction — and then compares the plans and
// true costs of the baseline post-processing optimizer vs BQO.
#include <cstdio>

#include "src/exec/exact_cost.h"
#include "src/exec/executor.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/snowflake.h"
#include "src/workload/datagen.h"
#include "src/workload/query.h"

using namespace bqo;

int main() {
  Catalog catalog;
  Rng rng(99);

  for (const char* d : {"customer", "product", "carrier", "region"}) {
    TableGenSpec spec;
    spec.name = d;
    spec.rows = d == std::string("customer") ? 5000 : 800;
    GenerateTable(&catalog, spec, &rng);
  }
  {
    TableGenSpec orders;
    orders.name = "orders";
    orders.rows = 150000;
    orders.with_pk = false;
    orders.with_label = false;
    orders.fks = {FkSpec{"customer_fk", "customer", "customer_id", 0.5, 0.0},
                  FkSpec{"product_fk", "product", "product_id", 0.8, 0.0}};
    GenerateTable(&catalog, orders, &rng);
  }
  {
    TableGenSpec shipments;
    shipments.name = "shipments";
    shipments.rows = 120000;
    shipments.with_pk = false;
    shipments.with_label = false;
    shipments.fks = {
        FkSpec{"customer_fk", "customer", "customer_id", 0.5, 0.0},
        FkSpec{"carrier_fk", "carrier", "carrier_id", 0.0, 0.0},
        FkSpec{"region_fk", "region", "region_id", 0.3, 0.0}};
    GenerateTable(&catalog, shipments, &rng);
  }

  QuerySpec query;
  query.name = "galaxy";
  query.relations = {{"orders", "orders", nullptr},
                     {"shipments", "shipments", nullptr},
                     {"customer", "customer", Lt("attr0", 80)},
                     {"product", "product", LikeContains("label", "pro")},
                     {"carrier", "carrier", nullptr},
                     {"region", "region", Lt("attr0", 200)}};
  query.joins = {{"orders", "customer_fk", "customer", "customer_id"},
                 {"shipments", "customer_fk", "customer", "customer_id"},
                 {"orders", "product_fk", "product", "product_id"},
                 {"shipments", "carrier_fk", "carrier", "carrier_id"},
                 {"shipments", "region_fk", "region", "region_id"}};

  auto graph_result = BuildJoinGraph(catalog, query);
  BQO_CHECK(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  std::printf("%s\n\n", graph.ToString().c_str());

  // ---- Building blocks of Algorithm 3 ----
  auto units = MakeLeafUnits(graph);
  std::vector<int> active;
  for (size_t i = 0; i < units.size(); ++i) {
    active.push_back(static_cast<int>(i));
  }
  const auto facts = FindFactUnits(graph, units, active);
  std::printf("Fact tables detected (never referenced via a unique key):\n");
  for (int f : facts) {
    std::printf("  %s (|filtered| = %.0f)\n",
                graph.relation(units[static_cast<size_t>(f)].SingleRelation())
                    .alias.c_str(),
                units[static_cast<size_t>(f)].est_card);
  }
  const int first_fact = facts[1];  // shipments is smaller
  const auto members = ExpandSnowflake(graph, units, active, first_fact);
  std::printf("Snowflake extracted around '%s':",
              graph.relation(units[static_cast<size_t>(first_fact)]
                                 .SingleRelation())
                  .alias.c_str());
  for (int m : members) {
    std::printf(" %s",
                graph.relation(units[static_cast<size_t>(m)].SingleRelation())
                    .alias.c_str());
  }
  std::printf("\n\n");

  // ---- Baseline vs BQO ----
  StatsCatalog stats(&catalog);
  ExactCoutModel exact;
  for (OptimizerMode mode : {OptimizerMode::kBaselinePostProcess,
                             OptimizerMode::kBqoShallow,
                             OptimizerMode::kAlternativePlan}) {
    OptimizerOptions options;
    options.mode = mode;
    OptimizedQuery q = OptimizeQuery(graph, &stats, options);
    const QueryMetrics m = ExecutePlan(q.plan);
    std::printf("%-26s  %-44s exact Cout %9.0f  cpu %6.2f ms\n",
                OptimizerModeName(mode), q.plan.Signature().c_str(),
                exact.Cout(q.plan), static_cast<double>(m.total_ns) / 1e6);
  }
  return 0;
}

// Quickstart: the end-to-end public API in one file.
//
//  1. Create a catalog and load tables (a tiny star schema).
//  2. Describe a query as a QuerySpec (relations + equi-joins + aggregate).
//  3. Optimize it with the bitvector-aware optimizer (Algorithm 3).
//  4. Inspect the plan: join order, bitvector filters and their placement
//     (Algorithm 1), cost-based pruning (Section 6.3).
//  5. Execute (pipeline-parallel when BQO_THREADS > 1) and read the
//     metrics.
//
// Build & run:  cmake -B build -S . && cmake --build build -j --target quickstart
//               ./build/quickstart          # or BQO_THREADS=4 ./build/quickstart
//
// CI builds and runs this file as a smoke test, so it stays in sync with
// the public API (.github/workflows/ci.yml, job "quickstart").
#include <cstdio>

#include "src/common/string_util.h"
#include "src/exec/executor.h"
#include "src/optimizer/optimizer.h"
#include "src/workload/datagen.h"
#include "src/workload/query.h"

using namespace bqo;

int main() {
  // ---- 1. Catalog: one fact table, two dimensions --------------------
  Catalog catalog;
  Rng rng(42);

  TableGenSpec dates;
  dates.name = "dates";
  dates.rows = 730;
  GenerateTable(&catalog, dates, &rng);

  TableGenSpec product;
  product.name = "product";
  product.rows = 2000;
  GenerateTable(&catalog, product, &rng);

  TableGenSpec sales;
  sales.name = "sales";
  sales.rows = 200000;
  sales.with_pk = false;
  sales.fks = {FkSpec{"dates_fk", "dates", "dates_id", 0.0, 0.0},
               FkSpec{"product_fk", "product", "product_id", 0.8, 0.0}};
  GenerateTable(&catalog, sales, &rng);

  // ---- 2. The query ---------------------------------------------------
  // SELECT SUM(sales.measure) FROM sales, dates, product
  // WHERE sales.dates_fk = dates.dates_id
  //   AND sales.product_fk = product.product_id
  //   AND dates.attr0 < 100              -- ~10% of days
  //   AND product.label LIKE '%pro%'     -- a slice of products
  QuerySpec query;
  query.name = "quickstart";
  query.relations = {
      {"sales", "sales", nullptr},
      {"dates", "dates", Lt("attr0", 100)},
      {"product", "product", LikeContains("label", "pro")},
  };
  query.joins = {
      {"sales", "dates_fk", "dates", "dates_id"},
      {"sales", "product_fk", "product", "product_id"},
  };
  query.agg.kind = AggKind::kSum;
  query.agg.sum_column = BoundColumn{0, "measure"};

  auto graph = BuildJoinGraph(catalog, query);
  if (!graph.ok()) {
    std::printf("bind error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", graph.value().ToString().c_str());

  // ---- 3. Optimize (bitvector-aware, shallow integration) -------------
  StatsCatalog stats(&catalog);
  OptimizerOptions options;
  options.mode = OptimizerMode::kBqoShallow;
  OptimizedQuery optimized = OptimizeQuery(graph.value(), &stats, options);

  // ---- 4. Inspect ------------------------------------------------------
  std::printf("Optimized plan (estimated Cout %.0f, %d filter(s) pruned):\n%s\n",
              optimized.estimated_cost, optimized.pruned_filters,
              optimized.plan.ToString().c_str());

  // ---- 5. Execute ------------------------------------------------------
  ExecutionOptions exec;
  exec.agg = query.agg;
  exec.exec = ExecConfigFromEnv();  // BQO_THREADS=N runs pipeline-parallel
  const QueryMetrics metrics = ExecutePlan(optimized.plan, exec);
  std::printf("executed in %.2f ms; intermediate tuples: %s\n",
              static_cast<double>(metrics.total_ns) / 1e6,
              FormatCount(metrics.TotalIntermediateTuples()).c_str());
  for (const auto& op : metrics.operators) {
    std::printf("  %-18s rows_out=%-10s self=%.2f ms\n", op.label.c_str(),
                FormatCount(op.rows_out).c_str(),
                static_cast<double>(op.ns_self) / 1e6);
  }
  for (const auto& fs : metrics.filters) {
    if (!fs.created) continue;
    std::printf("  BV#%d: %s keys, eliminated %.1f%% of probed tuples\n",
                fs.filter_id, FormatCount(fs.inserted).c_str(),
                fs.ObservedLambda() * 100);
  }
  return 0;
}

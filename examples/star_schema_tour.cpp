// A guided tour of the paper's analysis on a star query (Section 4).
//
// Demonstrates, on live data with exact cardinalities:
//  * Lemma 2  — which permutations are valid right deep trees,
//  * Lemma 4  — all fact-right-most orders cost the same under filters,
//  * Theorem 4.1 — the n+1 candidate plans contain the global optimum,
//  * what the optimizer actually picks.
#include <algorithm>
#include <cstdio>
#include <map>

#include "src/exec/exact_cost.h"
#include "src/optimizer/optimizer.h"
#include "src/plan/enumerate.h"
#include "src/plan/pushdown.h"
#include "src/workload/datagen.h"
#include "src/workload/query.h"

using namespace bqo;

int main() {
  Catalog catalog;
  Rng rng(7);

  const char* dims[3] = {"store", "item", "dates"};
  const int64_t dim_rows[3] = {50, 4000, 730};
  for (int i = 0; i < 3; ++i) {
    TableGenSpec d;
    d.name = dims[i];
    d.rows = dim_rows[i];
    GenerateTable(&catalog, d, &rng);
  }
  TableGenSpec fact;
  fact.name = "sales";
  fact.rows = 150000;
  fact.with_pk = false;
  fact.with_label = false;
  for (int i = 0; i < 3; ++i) {
    fact.fks.push_back(FkSpec{std::string(dims[i]) + "_fk", dims[i],
                              std::string(dims[i]) + "_id", 0.5, 0.0});
  }
  GenerateTable(&catalog, fact, &rng);

  QuerySpec query;
  query.name = "star_tour";
  query.relations = {{"sales", "sales", nullptr},
                     {"store", "store", Lt("attr0", 300)},
                     {"item", "item", Lt("attr0", 50)},
                     {"dates", "dates", Lt("attr0", 500)}};
  for (int i = 0; i < 3; ++i) {
    query.joins.push_back({"sales", std::string(dims[i]) + "_fk", dims[i],
                           std::string(dims[i]) + "_id"});
  }
  auto graph_result = BuildJoinGraph(catalog, query);
  BQO_CHECK(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  std::printf("Star query: sales (fact) with dimensions store/item/dates\n\n");

  // ---- Lemma 2: the valid right deep trees ----
  const auto orders = EnumerateRightDeepOrders(graph);
  std::printf(
      "Lemma 2: %zu right deep trees without cross products (= 2 * 3!).\n"
      "The fact is always the first or second leaf.\n\n",
      orders.size());

  // ---- Cost every order with exact, no-false-positive filters ----
  ExactCoutModel exact;
  std::map<std::string, double> by_signature;
  double best_cost = -1;
  std::vector<int> best_order;
  for (const auto& order : orders) {
    Plan plan = BuildRightDeepPlan(graph, order);
    PushDownBitvectors(&plan);
    const double c = exact.Cout(plan);
    by_signature[plan.Signature()] = c;
    if (best_cost < 0 || c < best_cost) {
      best_cost = c;
      best_order = order;
    }
  }

  // ---- Lemma 4: fact-first orders form one equal-cost class ----
  std::printf("Lemma 4 (fact right-most => equal cost):\n");
  double fact_first_cost = -1;
  bool all_equal = true;
  for (const auto& order : orders) {
    if (order[0] != 0) continue;
    Plan plan = BuildRightDeepPlan(graph, order);
    PushDownBitvectors(&plan);
    const double c = exact.Cout(plan);
    if (fact_first_cost < 0) {
      fact_first_cost = c;
    } else if (c != fact_first_cost) {
      all_equal = false;
    }
  }
  std::printf("  all 6 fact-first permutations cost %.0f -> %s\n\n",
              fact_first_cost, all_equal ? "EQUAL (as proven)" : "UNEQUAL?!");

  // ---- Theorem 4.1: the candidate set ----
  std::printf("Theorem 4.1 candidates (n+1 = 4 plans):\n");
  double cand_best = -1;
  for (const auto& order : StarCandidateOrders(graph, 0)) {
    Plan plan = BuildRightDeepPlan(graph, order);
    PushDownBitvectors(&plan);
    const double c = exact.Cout(plan);
    std::printf("  %-34s Cout = %9.0f\n", plan.Signature().c_str(), c);
    if (cand_best < 0 || c < cand_best) cand_best = c;
  }
  std::printf(
      "  candidate min = %.0f, global min over all %zu plans = %.0f -> %s\n\n",
      cand_best, orders.size(), best_cost,
      cand_best == best_cost ? "candidates contain the optimum"
                             : "MISMATCH?!");

  // ---- What the optimizer picks ----
  StatsCatalog stats(&catalog);
  OptimizerOptions options;
  options.mode = OptimizerMode::kBqoShallow;
  OptimizedQuery q = OptimizeQuery(graph, &stats, options);
  std::printf("BQO picks: %s (exact Cout %.0f)\n",
              q.plan.Signature().c_str(), exact.Cout(q.plan));
  return 0;
}

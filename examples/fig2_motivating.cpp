// The paper's motivating example (Figure 2), reproduced end to end.
//
// Query (JOB schema): SELECT COUNT(*)
//   FROM movie_keyword mk, title t, keyword k
//   WHERE mk.movie_id = t.id AND mk.keyword_id = k.id
//     AND t.title LIKE '%(' AND k.keyword LIKE '%ge%'
//
// The point: to a bitvector-blind optimizer, P1 = T(mk, t, k) and
// P2 = T(t, mk, k) are indistinguishable (same intermediate sizes), and
// richer blind cost models actively prefer P1 (it builds the small hash
// table). Once bitvector filters are considered, P2 is several times
// cheaper: the filter from keyword prunes movie_keyword BEFORE it is built
// into a hash table, and that reduced build's filter then prunes the big
// title scan. An optimizer that adds filters as a post-processing step is
// stuck with P1 and leaves that factor on the table (the paper measures 3x).
#include <cstdio>

#include "src/exec/exact_cost.h"
#include "src/exec/executor.h"
#include "src/plan/pushdown.h"
#include "src/workload/datagen.h"
#include "src/workload/query.h"

using namespace bqo;

namespace {

struct Measured {
  double cout = 0;
  double cpu_ms = 0;
  CoutBreakdown breakdown;
};

Measured Measure(const JoinGraph& graph, const std::vector<int>& order,
                 bool with_filters) {
  Plan plan = BuildRightDeepPlan(graph, order);
  if (with_filters) {
    PushDownBitvectors(&plan);
  } else {
    ClearBitvectors(&plan);
  }
  ExactCoutModel exact;
  Measured m;
  m.breakdown = exact.Compute(plan);
  m.cout = m.breakdown.total;
  ExecutionOptions exec;
  exec.use_bitvectors = with_filters;
  double best = -1;
  for (int rep = 0; rep < 3; ++rep) {
    const QueryMetrics qm = ExecutePlan(plan, exec);
    const double ms = static_cast<double>(qm.total_ns) / 1e6;
    if (best < 0 || ms < best) best = ms;
  }
  m.cpu_ms = best;
  return m;
}

}  // namespace

int main() {
  Catalog catalog;
  Rng rng(2020);

  // JOB-realistic shapes: title is LARGE and only weakly filtered
  // (LIKE '%(' keeps most rows); keyword is tiny and highly selective;
  // movie_keyword is the big relationship fact.
  TableGenSpec title;
  title.name = "title";
  title.rows = 150000;
  GenerateTable(&catalog, title, &rng);
  TableGenSpec keyword;
  keyword.name = "keyword";
  keyword.rows = 20000;
  GenerateTable(&catalog, keyword, &rng);
  TableGenSpec mk;
  mk.name = "movie_keyword";
  mk.rows = 600000;
  mk.with_pk = false;
  mk.with_label = false;
  mk.fks = {FkSpec{"title_fk", "title", "title_id", 0.4, 0.0},
            FkSpec{"keyword_fk", "keyword", "keyword_id", 0.9, 0.0}};
  GenerateTable(&catalog, mk, &rng);

  QuerySpec query;
  query.name = "fig2";
  query.relations = {
      {"mk", "movie_keyword", nullptr},
      {"t", "title", Lt("attr0", 900)},   // ~90%: weak, like LIKE '%('
      {"k", "keyword", Lt("attr0", 10)},  // ~1%: strong, like '%ge%'
  };
  query.joins = {{"mk", "title_fk", "t", "title_id"},
                 {"mk", "keyword_fk", "k", "keyword_id"}};

  auto graph_result = BuildJoinGraph(catalog, query);
  BQO_CHECK(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  std::printf("Figure 2: why bitvector filters must be considered DURING "
              "optimization\n\n");

  const std::vector<int> p1 = {0, 1, 2};  // T(mk, t, k)
  const std::vector<int> p2 = {1, 0, 2};  // T(t, mk, k)

  const Measured p1_bare = Measure(graph, p1, false);
  const Measured p2_bare = Measure(graph, p2, false);
  const Measured p1_filt = Measure(graph, p1, true);
  const Measured p2_filt = Measure(graph, p2, true);

  std::printf("%-34s %14s %10s\n", "plan", "exact Cout", "CPU (ms)");
  std::printf("%s\n", std::string(62, '-').c_str());
  std::printf("%-34s %14.0f %10.2f\n", "P1 = T(mk, t, k), no filters",
              p1_bare.cout, p1_bare.cpu_ms);
  std::printf("%-34s %14.0f %10.2f\n", "P2 = T(t, mk, k), no filters",
              p2_bare.cout, p2_bare.cpu_ms);
  std::printf("%-34s %14.0f %10.2f   <- post-processing lands here\n",
              "P1 + filters (post-processed)", p1_filt.cout, p1_filt.cpu_ms);
  std::printf("%-34s %14.0f %10.2f   <- bitvector-aware choice\n",
              "P2 + filters (BQO)", p2_filt.cout, p2_filt.cpu_ms);

  std::printf(
      "\nWithout filters the two orders are indistinguishable under Cout\n"
      "(%.0f vs %.0f), and a richer blind cost model prefers P1: it builds\n"
      "its hash table from the small side (measured: P1 %.2f ms vs P2 %.2f "
      "ms).\n",
      p1_bare.cout, p2_bare.cout, p1_bare.cpu_ms, p2_bare.cpu_ms);
  std::printf(
      "\nWith filters the ranking flips: P2's Cout is %.1fx smaller than\n"
      "post-processed P1 (%.0f vs %.0f; paper reports ~3x) because the\n"
      "keyword filter prunes movie_keyword BEFORE the hash build, and the\n"
      "reduced build's filter then prunes the 135K-row title scan.\n",
      p1_filt.cout / p2_filt.cout, p2_filt.cout, p1_filt.cout);
  std::printf("Measured CPU: post-processed P1 %.2f ms vs BQO P2 %.2f ms "
              "(%.1fx).\n",
              p1_filt.cpu_ms, p2_filt.cpu_ms,
              p1_filt.cpu_ms / p2_filt.cpu_ms);
  return 0;
}

// Unit tests for src/common: hashing, RNG/Zipf, Status/Result, strings.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/string_util.h"

namespace bqo {
namespace {

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 64;
  for (int bit = 0; bit < trials; ++bit) {
    const uint64_t a = Mix64(0x123456789abcdefULL);
    const uint64_t b = Mix64(0x123456789abcdefULL ^ (uint64_t{1} << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, CompositeOrderSensitive) {
  int64_t ab[] = {1, 2};
  int64_t ba[] = {2, 1};
  EXPECT_NE(HashComposite(ab, 2), HashComposite(ba, 2));
}

TEST(Hash, CompositeMatchesAcrossCallSites) {
  // The same value sequence must hash identically (filter build vs probe).
  int64_t v1[] = {42, -7, 99};
  int64_t v2[] = {42, -7, 99};
  EXPECT_EQ(HashComposite(v1, 3), HashComposite(v2, 3));
}

TEST(Hash, StringHashingDiffers) {
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(5);
  ZipfGenerator zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  // max/min ratio should be mild for uniform.
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LT(*mx, *mn * 2);
}

TEST(Zipf, SkewConcentratesMass) {
  Rng rng(5);
  ZipfGenerator zipf(1000, 1.1);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // With theta=1.1 the top-10 of 1000 values should hold a large share.
  EXPECT_GT(head, n / 3);
}

TEST(Zipf, StaysInRange) {
  Rng rng(11);
  ZipfGenerator zipf(37, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 37u);
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing");
}

TEST(Status, ServingFailureCodes) {
  const Status cancelled = Status::Cancelled("client went away");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_FALSE(cancelled.IsDeadlineExceeded());
  EXPECT_EQ(cancelled.ToString(), "Cancelled: client went away");

  const Status deadline = Status::DeadlineExceeded("past due");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_FALSE(deadline.IsResourceExhausted());
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: past due");

  const Status shed = Status::ResourceExhausted("queue full");
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_FALSE(shed.IsCancelled());
  EXPECT_EQ(shed.ToString(), "ResourceExhausted: queue full");

  // Each predicate matches exactly its own code.
  EXPECT_FALSE(Status::Internal("x").IsCancelled());
  EXPECT_FALSE(Status::OK().IsCancelled());
  EXPECT_FALSE(Status::OK().IsDeadlineExceeded());
  EXPECT_FALSE(Status::OK().IsResourceExhausted());
}

TEST(Result, ValueAndStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad(Status::InvalidArgument("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StringUtil, Contains) {
  EXPECT_TRUE(Contains("orange", "ge"));
  EXPECT_FALSE(Contains("title", "ge"));
  EXPECT_TRUE(Contains("abc", ""));
}

TEST(StringUtil, JoinAndFormat) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-42), "-42");
  EXPECT_EQ(FormatCount(999), "999");
}

}  // namespace
}  // namespace bqo

// Plan-shape cache correctness: the predicate structure/constant split,
// the JoinGraph shape signature, the parameterized optimizer's validity
// bands, and the PlanCache's match + re-bind + escalate protocol. Pins:
//
//  * Shape split is lossless: PredicateShape ignores literals but nothing
//    else; RebindPredicateConstants(structure, constants) reproduces a
//    predicate with the same shape and exactly those constants.
//  * ShapeSignature equality across literal changes, inequality across
//    structural changes (predicate family, relation/join count).
//  * OptimizeParameterized: every predicated relation's validity band
//    contains its optimize-time selectivity; slotless relations keep the
//    full [0,1] band (their selectivity cannot move without a shape
//    change).
//  * PlanCache protocol: exact-constant lookups serve the shared entry
//    (the zero-slot degenerate case IS the old exact-match cache); moved
//    constants inside the band serve a private rebound instance; out of
//    band or stale escalates to kReoptimize and Insert replaces the entry.
//    Counters land each lookup in exactly one of hits / misses /
//    reoptimizations.
//  * Drift feedback: observed lambda far from the estimate marks the
//    entry stale exactly once and pins exactly one re-optimization.
//  * End-to-end parity: a shape hit that re-binds constants produces
//    checksums and merged filter stats identical to a cold optimize of
//    the same literals — swept over pool sizes {1,2,4} and star /
//    snowflake / sort-merge plans.
//  * A templated workload (same shape, jittered literals) achieves a
//    shape-hit rate >= 0.9 with zero in-band re-optimizations.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/optimizer/parameterized.h"
#include "src/plan/predicate_shape.h"
#include "src/server/plan_cache.h"
#include "src/server/query_service.h"
#include "src/server/worker_pool.h"
#include "src/stats/estimated_cost.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;
using ::bqo::testing::TestDb;

struct GlobalPoolGuard {
  ~GlobalPoolGuard() { WorkerPool::ResetGlobal(0); }
};

// ---- Predicate shape: structure/constant split ----

TEST(PredicateShape, LiteralsBecomeSlotsStructureStays) {
  // Null predicate: the zero-slot degenerate case.
  EXPECT_EQ(PredicateShape(nullptr), "TRUE");
  EXPECT_TRUE(CollectPredicateConstants(nullptr).empty());

  // Same structure, different literal: one shape, different constants.
  const ExprPtr a = Lt("attr0", 100);
  const ExprPtr b = Lt("attr0", 900);
  EXPECT_EQ(PredicateShape(a), PredicateShape(b));
  EXPECT_NE(CollectPredicateConstants(a), CollectPredicateConstants(b));

  // Different column or comparison: different shape.
  EXPECT_NE(PredicateShape(a), PredicateShape(Lt("attr1", 100)));
  EXPECT_NE(PredicateShape(a),
            PredicateShape(
                Compare("attr0", CompareOp::kLe, Value(int64_t{100}))));

  // IN list length is structure; its elements are slots.
  EXPECT_EQ(PredicateShape(In("attr0", {1, 2, 3})),
            PredicateShape(In("attr0", {7, 8, 9})));
  EXPECT_NE(PredicateShape(In("attr0", {1, 2, 3})),
            PredicateShape(In("attr0", {1, 2})));

  // The modulo divisor is structure (it names the predicate family); the
  // bound is a slot.
  EXPECT_EQ(PredicateShape(ModLess("attr0", 10, 3)),
            PredicateShape(ModLess("attr0", 10, 7)));
  EXPECT_NE(PredicateShape(ModLess("attr0", 10, 3)),
            PredicateShape(ModLess("attr0", 20, 3)));

  // Boolean structure distinguishes shapes.
  const ExprPtr conj = And({Lt("attr0", 5), Between("attr1", 1, 9)});
  EXPECT_NE(PredicateShape(conj), PredicateShape(Lt("attr0", 5)));
  EXPECT_EQ(CollectPredicateConstants(conj).size(), 3u);
}

TEST(PredicateShape, RebindIsLossless) {
  const ExprPtr original =
      And({Between("attr0", 100, 400), Not(In("attr1", {3, 5, 8})),
           Or({LikeContains("label", "foo"), ModLess("attr0", 16, 4)})});
  const std::vector<Value> constants = CollectPredicateConstants(original);
  ASSERT_EQ(constants.size(), 7u);  // 2 + 3 + 1 + 1

  // Round trip with its own constants.
  const ExprPtr same = RebindPredicateConstants(original, constants);
  EXPECT_EQ(PredicateShape(same), PredicateShape(original));
  EXPECT_EQ(CollectPredicateConstants(same), constants);

  // Re-bind moved constants: shape invariant, new slot table installed.
  std::vector<Value> moved = constants;
  moved[0] = Value(int64_t{200});
  moved[6] = Value(int64_t{11});
  const ExprPtr rebound = RebindPredicateConstants(original, moved);
  EXPECT_EQ(PredicateShape(rebound), PredicateShape(original));
  EXPECT_EQ(CollectPredicateConstants(rebound), moved);
}

// ---- JoinGraph shape signature ----

TEST(JoinGraphShape, SignatureIgnoresLiteralsNotStructure) {
  auto db = MakeStarDb(2, 5000, 100, {0.4, 0.5}, 21);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());

  // Changed literal: same shape, different constant table.
  QuerySpec shifted = db->spec;
  shifted.relations[1].predicate = Lt("attr0", 123);
  auto graph2 = BuildJoinGraph(db->catalog, shifted);
  ASSERT_TRUE(graph2.ok());
  EXPECT_EQ(graph.value().ShapeSignature(), graph2.value().ShapeSignature());
  EXPECT_NE(graph.value().ConstantTable(), graph2.value().ConstantTable());

  // Changed predicate family on the same relation: different shape.
  QuerySpec reshaped = db->spec;
  reshaped.relations[1].predicate = Between("attr0", 100, 400);
  auto graph3 = BuildJoinGraph(db->catalog, reshaped);
  ASSERT_TRUE(graph3.ok());
  EXPECT_NE(graph.value().ShapeSignature(), graph3.value().ShapeSignature());

  // Fewer relations/joins: different shape.
  QuerySpec narrower = db->spec;
  narrower.relations.pop_back();
  narrower.joins.pop_back();
  auto graph4 = BuildJoinGraph(db->catalog, narrower);
  ASSERT_TRUE(graph4.ok());
  EXPECT_NE(graph.value().ShapeSignature(), graph4.value().ShapeSignature());

  // Optimizer knobs are part of the cache key (they change the plan), but
  // the band/drift knobs are not (they bound reuse, not the plan).
  OptimizerOptions opt;
  OptimizerOptions pruned = opt;
  pruned.lambda_thresh = 0.5;
  EXPECT_NE(PlanCache::ShapeSignature(graph.value(), opt),
            PlanCache::ShapeSignature(graph.value(), pruned));
  OptimizerOptions banded = opt;
  banded.reopt_sel_band = 2.0;
  EXPECT_EQ(PlanCache::ShapeSignature(graph.value(), opt),
            PlanCache::ShapeSignature(graph.value(), banded));
}

// ---- Parameterized optimization: validity bands ----

TEST(OptimizeParameterized, BandsCoverOptimizePointAndSlotlessStaysFull) {
  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  StatsCatalog stats(&db->catalog);
  OptimizerOptions opt;

  const ParameterizedPlan p =
      OptimizeParameterized(graph.value(), &stats, opt);
  const int n = graph.value().num_relations();
  ASSERT_EQ(static_cast<int>(p.bands.size()), n);
  ASSERT_EQ(static_cast<int>(p.optimize_sel.size()), n);
  ASSERT_EQ(static_cast<int>(p.constants.size()), n);
  ASSERT_FALSE(p.estimated_lambda.empty());

  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(p.bands[static_cast<size_t>(r)].Contains(
        p.optimize_sel[static_cast<size_t>(r)]))
        << "relation " << r;
    if (p.constants[static_cast<size_t>(r)].empty()) {
      // Slotless: selectivity cannot move without a shape change.
      EXPECT_EQ(p.bands[static_cast<size_t>(r)].lo, 0.0) << r;
      EXPECT_EQ(p.bands[static_cast<size_t>(r)].hi, 1.0) << r;
    } else {
      // Probing never widens past the configured factor.
      const double sel = p.optimize_sel[static_cast<size_t>(r)];
      EXPECT_GE(p.bands[static_cast<size_t>(r)].lo,
                sel / opt.reopt_sel_band - 1e-12)
          << r;
      EXPECT_LE(p.bands[static_cast<size_t>(r)].hi,
                sel * opt.reopt_sel_band + 1e-12)
          << r;
    }
  }
}

// ---- PlanCache protocol ----

struct CacheHarness {
  std::unique_ptr<TestDb> db;
  StatsCatalog stats;
  OptimizerOptions opt;
  PlanCache cache;

  explicit CacheHarness(std::unique_ptr<TestDb> d,
                        PlanCacheOptions options = {})
      : db(std::move(d)), stats(&db->catalog), cache(options) {}

  std::string Sig(const JoinGraph& graph) const {
    return PlanCache::ShapeSignature(graph, opt);
  }

  /// Optimize `spec` cold and insert it; returns the cache entry.
  std::shared_ptr<const CachedPlan> OptimizeAndInsert(const QuerySpec& spec) {
    auto graph = BuildJoinGraph(db->catalog, spec);
    BQO_CHECK(graph.ok());
    ParameterizedPlan p = OptimizeParameterized(graph.value(), &stats, opt);
    return cache.Insert(Sig(graph.value()), db->catalog.version(),
                        graph.value(), std::move(p));
  }

  /// Serving-path lookup: statistics deferred, literals bound.
  PlanCache::LookupOutcome Lookup(const QuerySpec& spec) {
    auto graph =
        BuildJoinGraph(db->catalog, spec, /*attach_statistics=*/false);
    BQO_CHECK(graph.ok());
    return cache.Lookup(Sig(graph.value()), db->catalog.version(),
                        graph.value());
  }
};

QuerySpec WithBound(const TestDb& db, size_t relation, int64_t bound) {
  QuerySpec spec = db.spec;
  spec.relations[relation].predicate = Lt("attr0", bound);
  return spec;
}

TEST(PlanCacheShape, ExactConstantsServeTheSharedEntry) {
  CacheHarness h(MakeStarDb(2, 8000, 200, {0.4, 0.5}, 77));
  const auto entry = h.OptimizeAndInsert(h.db->spec);

  const auto outcome = h.Lookup(h.db->spec);
  ASSERT_EQ(outcome.kind, PlanCache::LookupOutcome::Kind::kServed);
  EXPECT_FALSE(outcome.rebound);
  EXPECT_EQ(outcome.instance.get(), entry.get());  // zero-copy
  EXPECT_EQ(outcome.entry.get(), entry.get());

  const PlanCacheStats s = h.cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.shape_hits, 1);
  EXPECT_EQ(s.rebinds, 0);
  EXPECT_EQ(s.reoptimizations, 0);
}

TEST(PlanCacheShape, MovedConstantsInBandRebindPrivately) {
  // Well-separated dimension selectivities {0.3, 0.6, 0.15}: a small nudge
  // of one literal cannot flip the join order, so the probe-derived band
  // stays comfortably wide around the optimize point.
  CacheHarness h(MakeStarDb(3, 12000, 300, {0.3, 0.6, 0.15}, 991));
  const auto entry = h.OptimizeAndInsert(h.db->spec);

  // Nudge relation 2's bound 600 -> 640 (selectivity 0.60 -> 0.64).
  const QuerySpec moved = WithBound(*h.db, 2, 640);
  const auto outcome = h.Lookup(moved);
  ASSERT_EQ(outcome.kind, PlanCache::LookupOutcome::Kind::kServed);
  EXPECT_TRUE(outcome.rebound);
  ASSERT_NE(outcome.instance, nullptr);
  EXPECT_NE(outcome.instance.get(), entry.get());  // private instance
  EXPECT_EQ(outcome.entry.get(), entry.get());     // feedback target

  // The instance owns its graph, carries the query's literal, and its
  // plan points at the owned copy; the join order is the cached one.
  const CachedPlan& inst = *outcome.instance;
  EXPECT_EQ(inst.plan.graph, &inst.graph);
  EXPECT_EQ(CollectPredicateConstants(inst.graph.relation(2).predicate),
            CollectPredicateConstants(moved.relations[2].predicate));
  EXPECT_EQ(inst.plan.Signature(), entry->plan.Signature());

  const PlanCacheStats s = h.cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.rebinds, 1);
  EXPECT_EQ(s.reoptimizations, 0);
}

TEST(PlanCacheShape, OutOfBandEscalatesAndInsertReplaces) {
  CacheHarness h(MakeStarDb(2, 8000, 200, {0.4, 0.5}, 77));
  h.OptimizeAndInsert(h.db->spec);

  // Bound 400 -> 1: selectivity collapses to ~0.001, far below any band
  // around 0.4 (the widest possible band floor is 0.4 / reopt_sel_band).
  const QuerySpec collapsed = WithBound(*h.db, 1, 1);
  const auto refused = h.Lookup(collapsed);
  EXPECT_EQ(refused.kind, PlanCache::LookupOutcome::Kind::kReoptimize);
  EXPECT_EQ(refused.instance, nullptr);

  // The escalation path re-optimizes and Insert replaces the entry — the
  // shape's slot now belongs to the new literals.
  h.OptimizeAndInsert(collapsed);
  EXPECT_EQ(h.cache.stats().entries, 1);
  const auto now_exact = h.Lookup(collapsed);
  EXPECT_EQ(now_exact.kind, PlanCache::LookupOutcome::Kind::kServed);
  EXPECT_FALSE(now_exact.rebound);

  const PlanCacheStats s = h.cache.stats();
  EXPECT_EQ(s.reoptimizations, 1);
  EXPECT_EQ(s.shape_hits, 2);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 0);
}

/// Forcing observed lambda outside the drift margin marks the entry stale
/// exactly once and pins exactly one re-optimization on the next hit.
TEST(PlanCacheShape, LambdaDriftPinsExactlyOneReoptimization) {
  CacheHarness h(MakeStarDb(2, 8000, 200, {0.4, 0.5}, 77));
  const auto entry = h.OptimizeAndInsert(h.db->spec);
  ASSERT_FALSE(entry->estimated_lambda.empty());

  // Synthesize feedback as far from the estimate as possible: a filter
  // that eliminated everything if the estimate was low, nothing if high —
  // guaranteed past the default 0.25 margin.
  std::vector<FilterStats> observed(entry->estimated_lambda.size());
  for (size_t id = 0; id < observed.size(); ++id) {
    observed[id].filter_id = static_cast<int>(id);
    observed[id].created = true;
    observed[id].probed = 1000;
    observed[id].passed = entry->estimated_lambda[id] > 0.5 ? 1000 : 0;
  }
  h.cache.RecordObservedLambdas(entry, observed);
  h.cache.RecordObservedLambdas(entry, observed);  // already stale: no-op
  EXPECT_EQ(h.cache.stats().drift_invalidations, 1);

  // Same constants, but the entry is stale: the hit must escalate...
  EXPECT_EQ(h.Lookup(h.db->spec).kind,
            PlanCache::LookupOutcome::Kind::kReoptimize);
  // ...exactly once: the replacing insert clears the staleness.
  h.OptimizeAndInsert(h.db->spec);
  EXPECT_EQ(h.Lookup(h.db->spec).kind,
            PlanCache::LookupOutcome::Kind::kServed);
  EXPECT_EQ(h.cache.stats().reoptimizations, 1);
  EXPECT_EQ(h.cache.stats().drift_invalidations, 1);
}

// ---- End-to-end: shape hits execute identically to cold optimizes ----

void ExpectMetricsEqual(const QueryMetrics& base, const QueryMetrics& m,
                        const std::string& what) {
  EXPECT_EQ(m.result_rows, base.result_rows) << what;
  EXPECT_EQ(m.result_checksum, base.result_checksum) << what;
  EXPECT_EQ(m.leaf_tuples, base.leaf_tuples) << what;
  EXPECT_EQ(m.join_tuples, base.join_tuples) << what;
  ASSERT_EQ(m.filters.size(), base.filters.size()) << what;
  for (size_t i = 0; i < m.filters.size(); ++i) {
    EXPECT_EQ(m.filters[i].created, base.filters[i].created)
        << what << " f" << i;
    EXPECT_EQ(m.filters[i].probed, base.filters[i].probed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].passed, base.filters[i].passed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].inserted, base.filters[i].inserted)
        << what << " f" << i;
  }
}

struct TemplateUnderTest {
  std::unique_ptr<TestDb> db;
  size_t jitter_relation;    ///< relation whose literal the template moves
  int64_t warm_bound;        ///< literal the cache is warmed with
  int64_t hit_bound;         ///< in-band moved literal served as a rebind
  QueryServiceOptions options;
};

std::vector<TemplateUnderTest> MakeTemplates() {
  std::vector<TemplateUnderTest> out;

  TemplateUnderTest star;
  star.db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 991, /*zipf=*/0.0);
  star.jitter_relation = 2;  // d1, selectivity 0.6
  star.warm_bound = 600;
  star.hit_bound = 640;
  star.db->spec.agg.kind = AggKind::kSum;
  star.db->spec.agg.sum_column = BoundColumn{0, "measure"};
  star.db->spec.agg.has_group_by = true;
  star.db->spec.agg.group_column = BoundColumn{1, "d0_id"};
  out.push_back(std::move(star));

  TemplateUnderTest snowflake;
  snowflake.db = MakeSnowflakeDb({2, 2}, 15000, 400, 0.5, {0.4, 0.5}, 2088,
                                 /*zipf=*/0.0);
  snowflake.jitter_relation = 2;  // b0_2 (outermost of branch 0), sel 0.4
  snowflake.warm_bound = 400;
  snowflake.hit_bound = 430;
  out.push_back(std::move(snowflake));

  TemplateUnderTest merge;
  merge.db = MakeStarDb(2, 12000, 250, {0.4, 0.25}, 337, /*zipf=*/0.0);
  merge.jitter_relation = 1;  // d0, selectivity 0.4
  merge.warm_bound = 400;
  merge.hit_bound = 430;
  merge.options.execution.use_sort_merge_join = true;
  out.push_back(std::move(merge));
  return out;
}

/// A rebound shape hit must produce checksums and merged filter stats
/// identical to a cold optimize of the same literals, at every pool size
/// and over star / snowflake / sort-merge plans.
TEST(PlanShapeCacheE2E, RebindMatchesColdOptimizeAcrossPoolSizes) {
  GlobalPoolGuard guard;
  std::vector<TemplateUnderTest> templates = MakeTemplates();

  for (TemplateUnderTest& t : templates) {
    const QuerySpec warm = WithBound(*t.db, t.jitter_relation, t.warm_bound);
    const QuerySpec moved = WithBound(*t.db, t.jitter_relation, t.hit_bound);

    for (int pool : {1, 2, 4}) {
      WorkerPool::ResetGlobal(pool);
      QueryServiceOptions options = t.options;
      options.execution.exec.threads = 2;
      const std::string what = t.db->spec.name + " pool=" +
                               std::to_string(pool);

      // Cold: a fresh service optimizes `moved` from scratch.
      QueryService cold(&t.db->catalog, options);
      const QueryResult baseline = cold.Execute(moved);
      ASSERT_TRUE(baseline.status.ok()) << what;
      EXPECT_FALSE(baseline.plan_cache_hit) << what;

      // Warm with the template's original literals, then serve the moved
      // literals as a shape hit: the answer must be the cold one's.
      QueryService service(&t.db->catalog, options);
      ASSERT_TRUE(service.Execute(warm).status.ok()) << what;
      const QueryResult hit = service.Execute(moved);
      ASSERT_TRUE(hit.status.ok()) << what;
      EXPECT_TRUE(hit.plan_cache_hit) << what;
      EXPECT_TRUE(hit.plan_rebound) << what;
      EXPECT_EQ(hit.optimize_ns, 0) << what;
      ExpectMetricsEqual(baseline.metrics, hit.metrics, what);

      const PlanCacheStats s = service.cache_stats();
      EXPECT_EQ(s.misses, 1) << what;
      EXPECT_EQ(s.rebinds, 1) << what;
      EXPECT_EQ(s.reoptimizations, 0) << what;
    }
  }
}

/// Templated traffic — one shape, literals jittering inside the band —
/// must be served almost entirely from the cache: shape-hit rate >= 0.9
/// and zero re-optimizations, with every answer equal to a cold optimize
/// of the same literals.
TEST(PlanShapeCacheE2E, TemplatedWorkloadShapeHitRate) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);
  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 991, /*zipf=*/0.0);
  QueryServiceOptions options;
  QueryService service(&db->catalog, options);

  const std::vector<int64_t> bounds = {600, 620, 580, 640, 600,
                                       610, 590, 630, 600, 620};
  int64_t rounds = 0;
  for (int lap = 0; lap < 2; ++lap) {
    for (int64_t bound : bounds) {
      const QuerySpec spec = WithBound(*db, 2, bound);
      const QueryResult served = service.Execute(spec);
      ASSERT_TRUE(served.status.ok());
      ++rounds;

      QueryService cold(&db->catalog, options);
      const QueryResult baseline = cold.Execute(spec);
      ASSERT_TRUE(baseline.status.ok());
      ExpectMetricsEqual(baseline.metrics, served.metrics,
                         "bound=" + std::to_string(bound));
    }
  }

  const PlanCacheStats s = service.cache_stats();
  EXPECT_EQ(s.hits + s.misses + s.reoptimizations, rounds);
  EXPECT_EQ(s.misses, 1);              // only the very first template
  EXPECT_EQ(s.reoptimizations, 0);     // every jitter stayed in band
  EXPECT_GT(s.rebinds, 0);
  EXPECT_GE(s.ShapeHitRate(), 0.9);
  EXPECT_GE(s.HitRate(), 0.9);
}

/// Queries without constant slots degenerate to the exact-match cache:
/// every repeat is a zero-copy exact hit, never a rebind.
TEST(PlanShapeCacheE2E, ZeroSlotQueriesAreExactHits) {
  auto db = MakeStarDb(2, 8000, 200, {-1.0, -1.0}, 55);  // no predicates
  QueryServiceOptions options;
  QueryService service(&db->catalog, options);

  const QueryResult miss = service.Execute(db->spec);
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.plan_cache_hit);
  const QueryResult hit = service.Execute(db->spec);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.plan_cache_hit);
  EXPECT_FALSE(hit.plan_rebound);
  ExpectMetricsEqual(miss.metrics, hit.metrics, "zero-slot");

  const PlanCacheStats s = service.cache_stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.rebinds, 0);
  EXPECT_EQ(s.reoptimizations, 0);
}

}  // namespace
}  // namespace bqo

// Cross-query build sharing: the BuildCache wired into QueryService must be
// pure memoization — concurrent clients that share build sides get results
// byte-identical to cold single-query threads==1 runs, while the cache pins
// exactly one construction per build signature. Pins:
//
//  * Single-flight at service level: 8 clients pushing the same star /
//    snowflake query variants through one service, at pool sizes {1,2,4},
//    build each signature exactly once (misses == one cold pass's misses)
//    and every result checksum-matches its baseline.
//  * Sort-merge plans never consult the cache (lookups == 0) yet still
//    reproduce baselines under the same concurrency.
//  * Catalog BumpVersion between and during passes invalidates cached
//    builds without breaking executing queries: results stay baseline-
//    equal, stale entries are rebuilt, nothing is freed out from under a
//    running plan.
//  * An armed filter_fill fault during a shared build fails every query
//    that needed that build with the leader's internal status, and the
//    cache recovers cleanly once disarmed.
//  * use_build_cache=false is a true bypass: parity holds and the stats
//    stay zero.
//
// Run under -DBQO_SANITIZE=thread in CI (the build-cache-stress job): these
// tests are the TSan coverage for single-flight construction, mid-flight
// invalidation, and fail-all under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/exec/executor.h"
#include "src/server/query_service.h"
#include "src/server/worker_pool.h"
#include "src/workload/runner.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;
using ::bqo::testing::TestDb;

/// Restores the default (env-sized) global pool when a test that resized
/// it ends, so test order does not matter.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() { WorkerPool::ResetGlobal(0); }
};

/// Disarms every fault site on scope exit, armed or not.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::Global().DisarmAll(); }
};

void ExpectMetricsEqual(const QueryMetrics& base, const QueryMetrics& m,
                        const std::string& what) {
  EXPECT_EQ(m.result_rows, base.result_rows) << what;
  EXPECT_EQ(m.result_checksum, base.result_checksum) << what;
  EXPECT_EQ(m.leaf_tuples, base.leaf_tuples) << what;
  EXPECT_EQ(m.join_tuples, base.join_tuples) << what;
  ASSERT_EQ(m.filters.size(), base.filters.size()) << what;
  for (size_t i = 0; i < m.filters.size(); ++i) {
    EXPECT_EQ(m.filters[i].created, base.filters[i].created) << what << " f" << i;
    EXPECT_EQ(m.filters[i].probed, base.filters[i].probed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].passed, base.filters[i].passed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].inserted, base.filters[i].inserted)
        << what << " f" << i;
  }
}

/// Query variants over one TestDb: COUNT(*), ungrouped SUM, grouped SUM.
/// All three share one join tree and predicate set, so they share build
/// signatures — the sharpest test of cross-query sharing.
std::vector<QuerySpec> SpecVariants(const TestDb& db,
                                    const std::string& group_col) {
  std::vector<QuerySpec> specs;
  QuerySpec count = db.spec;
  count.name = db.spec.name + "-count";
  specs.push_back(count);

  QuerySpec sum = db.spec;
  sum.name = db.spec.name + "-sum";
  sum.agg.kind = AggKind::kSum;
  sum.agg.sum_column = BoundColumn{0, "measure"};
  specs.push_back(sum);

  QuerySpec grouped = sum;
  grouped.name = db.spec.name + "-grouped";
  grouped.agg.has_group_by = true;
  grouped.agg.group_column = BoundColumn{1, group_col};
  specs.push_back(grouped);
  return specs;
}

/// Single-query baselines: the same optimizer pipeline the service runs,
/// executed threads==1 via ExecutePlan directly — no service, no build
/// cache, every build constructed cold.
std::vector<QueryMetrics> Baselines(const TestDb& db,
                                    const std::vector<QuerySpec>& specs,
                                    const QueryServiceOptions& options) {
  std::vector<QueryMetrics> out;
  StatsCatalog stats(&db.catalog);
  for (const QuerySpec& spec : specs) {
    auto graph = BuildJoinGraph(db.catalog, spec);
    BQO_CHECK(graph.ok());
    OptimizedQuery optimized =
        OptimizeQuery(graph.value(), &stats, options.optimizer);
    ExecutionOptions exec = options.execution;
    exec.exec.threads = 1;
    exec.agg = spec.agg;
    out.push_back(ExecutePlan(optimized.plan, exec));
  }
  return out;
}

/// Drive `specs` through `service` from `clients` threads, `iters` laps
/// each; returns per-client results in submission order.
std::vector<std::vector<QueryResult>> RunClients(
    QueryService* service, const std::vector<QuerySpec>& specs, int clients,
    int iters) {
  std::vector<std::vector<QueryResult>> results(
      static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int it = 0; it < iters; ++it) {
        for (const QuerySpec& spec : specs) {
          results[static_cast<size_t>(c)].push_back(service->Execute(spec));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return results;
}

/// Every result OK and byte-identical to its spec's baseline.
void ExpectAllMatchBaselines(
    const std::vector<std::vector<QueryResult>>& results,
    const std::vector<QueryMetrics>& base, const std::vector<QuerySpec>& specs,
    int iters, const std::string& what) {
  for (size_t c = 0; c < results.size(); ++c) {
    ASSERT_EQ(results[c].size(), specs.size() * static_cast<size_t>(iters))
        << what;
    for (size_t i = 0; i < results[c].size(); ++i) {
      const size_t spec_idx = i % specs.size();
      ASSERT_TRUE(results[c][i].status.ok())
          << what << " client=" << c << " " << specs[spec_idx].name << ": "
          << results[c][i].status.ToString();
      ExpectMetricsEqual(base[spec_idx], results[c][i].metrics,
                         what + " client=" + std::to_string(c) + " " +
                             specs[spec_idx].name);
    }
  }
}

/// One query shape under shared-build test: its data, its variants, and
/// whether its plans consult the cache at all.
struct Workload {
  std::string name;
  std::unique_ptr<TestDb> db;
  std::vector<QuerySpec> specs;
  QueryServiceOptions options;
  bool cacheable = true;  ///< false for sort-merge: no hash build sides
};

std::vector<Workload> MakeWorkloads() {
  std::vector<Workload> out;

  Workload star;
  star.name = "star";
  star.db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);
  star.specs = SpecVariants(*star.db, "d0_id");
  out.push_back(std::move(star));

  Workload snowflake;
  snowflake.name = "snowflake";
  snowflake.db =
      MakeSnowflakeDb({2, 2}, 15000, 400, 0.5, {0.4, 0.5}, 2088, /*zipf=*/0.4);
  snowflake.specs = SpecVariants(*snowflake.db, "b0_1_id");
  out.push_back(std::move(snowflake));

  Workload sort_merge;
  sort_merge.name = "sort-merge";
  sort_merge.db = MakeStarDb(2, 12000, 250, {0.4, 0.25}, 433, /*zipf=*/0.5);
  sort_merge.specs = SpecVariants(*sort_merge.db, "d0_id");
  sort_merge.options.execution.use_sort_merge_join = true;
  sort_merge.cacheable = false;
  out.push_back(std::move(sort_merge));

  for (Workload& w : out) {
    w.options.execution.exec.threads = 2;
    w.options.max_concurrent_queries = 4;
    w.options.max_workers_per_query = 2;
  }
  return out;
}

/// 8 clients x every workload x pool {1,2,4}: each build signature is
/// constructed exactly once per service lifetime no matter how many
/// clients race for it, and every shared result is byte-identical to its
/// cold threads==1 baseline. Sort-merge plans never touch the cache.
TEST(SharedBuilds, EightClientsPinOneBuildPerSignature) {
  GlobalPoolGuard guard;
  constexpr int kClients = 8;

  for (Workload& w : MakeWorkloads()) {
    const std::vector<QueryMetrics> base = Baselines(*w.db, w.specs, w.options);

    for (int pool : {1, 2, 4}) {
      WorkerPool::ResetGlobal(pool);
      const std::string what =
          w.name + " pool=" + std::to_string(pool);

      // One cold sequential pass fixes the per-pass cache traffic: L1
      // lookups, M distinct signatures (== misses, since nothing races).
      int64_t per_pass_lookups = 0;
      int64_t distinct_signatures = 0;
      {
        QueryService seq(&w.db->catalog, w.options);
        for (const QuerySpec& spec : w.specs) {
          const QueryResult r = seq.Execute(spec);
          ASSERT_TRUE(r.status.ok()) << what << " " << spec.name;
        }
        const BuildCacheStats s = seq.build_cache_stats();
        EXPECT_EQ(s.hits + s.misses, s.lookups) << what;
        per_pass_lookups = s.lookups;
        distinct_signatures = s.misses;
      }
      if (w.cacheable) {
        ASSERT_GT(distinct_signatures, 0) << what;
      } else {
        ASSERT_EQ(per_pass_lookups, 0)
            << what << ": sort-merge plans must not consult the build cache";
      }

      QueryService service(&w.db->catalog, w.options);
      const auto results = RunClients(&service, w.specs, kClients, /*iters=*/1);
      ExpectAllMatchBaselines(results, base, w.specs, /*iters=*/1, what);

      const BuildCacheStats s = service.build_cache_stats();
      EXPECT_EQ(s.lookups, kClients * per_pass_lookups) << what;
      // The pin: 8 clients, 1 build per signature — everyone else shared.
      EXPECT_EQ(s.misses, distinct_signatures) << what;
      EXPECT_EQ(s.hits, s.lookups - distinct_signatures) << what;
      EXPECT_EQ(s.evictions, 0) << what;
      EXPECT_EQ(s.invalidations, 0) << what;
      EXPECT_EQ(s.entries, distinct_signatures) << what;
    }
  }
}

/// BumpVersion between passes flushes cached builds: the next pass
/// re-builds every signature yet still reproduces the baselines (the bump
/// marks a stats refresh, not a data change, so results are unchanged —
/// what's pinned is that stale entries are really dropped and rebuilt).
TEST(SharedBuilds, CatalogBumpInvalidatesAndRebuildsBetweenPasses) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);

  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);
  const std::vector<QuerySpec> specs = SpecVariants(*db, "d0_id");
  QueryServiceOptions options;
  options.execution.exec.threads = 2;
  const std::vector<QueryMetrics> base = Baselines(*db, specs, options);

  QueryService service(&db->catalog, options);
  for (size_t i = 0; i < specs.size(); ++i) {
    const QueryResult r = service.Execute(specs[i]);
    ASSERT_TRUE(r.status.ok());
    ExpectMetricsEqual(base[i], r.metrics, "pass1 " + specs[i].name);
  }
  const int64_t pass1_misses = service.build_cache_stats().misses;
  ASSERT_GT(pass1_misses, 0);

  db->catalog.BumpVersion();

  for (size_t i = 0; i < specs.size(); ++i) {
    const QueryResult r = service.Execute(specs[i]);
    ASSERT_TRUE(r.status.ok());
    ExpectMetricsEqual(base[i], r.metrics, "pass2 " + specs[i].name);
  }
  const BuildCacheStats s = service.build_cache_stats();
  EXPECT_GE(s.invalidations, 1);
  // Every signature was rebuilt under the new version — nothing stale
  // served from before the bump.
  EXPECT_EQ(s.misses, 2 * pass1_misses);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

/// A thread bumping the catalog version *while* clients execute: versioned
/// flights mean some builds are flushed mid-flight, handed to their bound
/// queries, and never published — but every served result still equals the
/// baseline (the data never changes; only cache residency does).
TEST(SharedBuilds, ConcurrentCatalogBumpsNeverBreakResults) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(4);

  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);
  const std::vector<QuerySpec> specs = SpecVariants(*db, "d0_id");
  QueryServiceOptions options;
  options.execution.exec.threads = 2;
  options.max_concurrent_queries = 4;
  options.max_workers_per_query = 2;
  const std::vector<QueryMetrics> base = Baselines(*db, specs, options);

  QueryService service(&db->catalog, options);
  std::atomic<bool> stop{false};
  std::thread bumper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      db->catalog.BumpVersion();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const auto results = RunClients(&service, specs, /*clients=*/4, /*iters=*/3);
  stop.store(true, std::memory_order_release);
  bumper.join();

  ExpectAllMatchBaselines(results, base, specs, /*iters=*/3, "bumped");
  const BuildCacheStats s = service.build_cache_stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_GE(s.bytes, 0);
}

/// An armed filter_fill fault during shared builds: every query that
/// needed the poisoned build fails with the leader's internal status (no
/// hangs, no partial results), and once disarmed the same service rebuilds
/// cleanly and returns baseline-equal results — the failure left no
/// half-built entry behind.
TEST(SharedBuilds, FilterFillFaultFailsSharersThenRecovers) {
  GlobalPoolGuard guard;
  FaultGuard fault_guard;
  WorkerPool::ResetGlobal(2);

  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);
  const std::vector<QuerySpec> specs = SpecVariants(*db, "d0_id");
  QueryServiceOptions options;
  options.execution.exec.threads = 2;
  options.max_concurrent_queries = 4;
  options.max_workers_per_query = 2;
  const std::vector<QueryMetrics> base = Baselines(*db, specs, options);

  QueryService service(&db->catalog, options);
  FaultInjector::Global().Arm(FaultInjector::Site::kFilterFill, /*every=*/1);

  // 4 clients race for the same builds; every build's filter fill faults,
  // so leaders fail and waiters inherit the leader's status.
  const auto faulted =
      RunClients(&service, {specs[0]}, /*clients=*/4, /*iters=*/1);
  for (size_t c = 0; c < faulted.size(); ++c) {
    ASSERT_EQ(faulted[c].size(), 1u);
    const QueryResult& r = faulted[c][0];
    EXPECT_FALSE(r.status.ok()) << "client " << c;
    EXPECT_TRUE(r.status.IsInternal())
        << "client " << c << ": " << r.status.ToString();
    EXPECT_NE(r.status.message().find("injected fault"), std::string::npos)
        << "client " << c << ": " << r.status.ToString();
  }
  {
    const BuildCacheStats s = service.build_cache_stats();
    EXPECT_EQ(s.hits + s.misses, s.lookups);
    EXPECT_EQ(s.entries, 0)
        << "a failed build must never be published";
  }

  FaultInjector::Global().DisarmAll();

  // Same service, no restart: the cache recovers and shares cleanly.
  const auto recovered =
      RunClients(&service, specs, /*clients=*/4, /*iters=*/1);
  ExpectAllMatchBaselines(recovered, base, specs, /*iters=*/1, "recovered");
  const BuildCacheStats s = service.build_cache_stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_GT(s.entries, 0);
}

/// use_build_cache=false is a true bypass: concurrent parity holds with
/// every query building privately, and the stats surface stays zero.
TEST(SharedBuilds, CacheOffStillMatchesBaselinesWithZeroStats) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);

  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);
  const std::vector<QuerySpec> specs = SpecVariants(*db, "d0_id");
  QueryServiceOptions options;
  options.execution.exec.threads = 2;
  options.max_concurrent_queries = 2;
  options.max_workers_per_query = 2;
  options.use_build_cache = false;
  const std::vector<QueryMetrics> base = Baselines(*db, specs, options);

  QueryService service(&db->catalog, options);
  const auto results = RunClients(&service, specs, /*clients=*/4, /*iters=*/2);
  ExpectAllMatchBaselines(results, base, specs, /*iters=*/2, "cache-off");

  const BuildCacheStats s = service.build_cache_stats();
  EXPECT_EQ(s.lookups, 0);
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 0);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.bytes, 0);
}

}  // namespace
}  // namespace bqo

// Tests for Algorithm 1 (bitvector creation + push-down), including the
// paper's Figure 1 topology.
#include <gtest/gtest.h>

#include "src/plan/pushdown.h"

namespace bqo {
namespace {

// Figure 1 join graph: B-A, A-D, B-C, C-D (a cycle of four relations).
// Relations: A=0, B=1, C=2, D=3.
JoinGraph Figure1Graph() {
  JoinGraph g;
  g.AddRelation("A", "A", nullptr, nullptr);
  g.AddRelation("B", "B", nullptr, nullptr);
  g.AddRelation("C", "C", nullptr, nullptr);
  g.AddRelation("D", "D", nullptr, nullptr);
  auto add = [&g](int l, int r, const char* lc, const char* rc) {
    JoinEdge e;
    e.left = l;
    e.right = r;
    e.left_cols = {lc};
    e.right_cols = {rc};
    g.AddEdge(e);
  };
  add(0, 1, "b_fk", "b_id");  // A-B
  add(0, 3, "d_fk1", "a_ref");  // A-D
  add(1, 2, "c_fk", "c_id");  // B-C
  add(2, 3, "d_fk2", "c_ref");  // C-D
  return g;
}

const PlanNode* FindNode(const Plan& plan, int id) {
  return plan.nodes[static_cast<size_t>(id)];
}

TEST(PushDown, Figure1Placement) {
  // Plan of Figure 1b: HJ1(build=D, probe=HJ2(build=C, probe=HJ3(build=B,
  // probe=A))). Expected: HJ3's filter (from B) -> leaf A; HJ2's filter
  // (from C, keyed on B's column) bypasses HJ3 into leaf B; HJ1's filter
  // (from D, keyed on columns of A and C) stops at HJ2 (residual).
  JoinGraph g = Figure1Graph();
  Plan plan = BuildRightDeepPlan(g, {0, 1, 2, 3});  // T(A, B, C, D)
  PushDownBitvectors(&plan);

  ASSERT_EQ(plan.filters.size(), 3u);
  // Node ids (preorder): 0=HJ1, 1=leaf D, 2=HJ2, 3=leaf C, 4=HJ3,
  // 5=leaf B, 6=leaf A.
  const PlanNode* hj1 = FindNode(plan, 0);
  const PlanNode* hj2 = FindNode(plan, 2);
  const PlanNode* hj3 = FindNode(plan, 4);
  const PlanNode* leaf_b = FindNode(plan, 5);
  const PlanNode* leaf_a = FindNode(plan, 6);
  ASSERT_EQ(hj1->kind, PlanNode::Kind::kJoin);
  ASSERT_EQ(leaf_a->relation, 0);
  ASSERT_EQ(leaf_b->relation, 1);

  // HJ1 builds from D on two edges -> composite filter over A and C columns.
  const PlanFilter& f_d = plan.filters[static_cast<size_t>(hj1->created_filter)];
  EXPECT_EQ(f_d.probe_cols.size(), 2u);
  EXPECT_EQ(FilterProbeRels(f_d), RelBit(0) | RelBit(2));
  // It cannot pass HJ2 (columns split across C and HJ3) -> residual at HJ2.
  EXPECT_EQ(f_d.applied_at, hj2->id);

  // HJ2 builds from C, keyed on B.c_fk -> descends through HJ3 into leaf B.
  const PlanFilter& f_c = plan.filters[static_cast<size_t>(hj2->created_filter)];
  EXPECT_EQ(FilterProbeRels(f_c), RelBit(1));
  EXPECT_EQ(f_c.applied_at, leaf_b->id);

  // HJ3 builds from B, keyed on A.b_fk -> leaf A.
  const PlanFilter& f_b = plan.filters[static_cast<size_t>(hj3->created_filter)];
  EXPECT_EQ(FilterProbeRels(f_b), RelBit(0));
  EXPECT_EQ(f_b.applied_at, leaf_a->id);
}

JoinGraph StarGraph(int dims) {
  JoinGraph g;
  g.AddRelation("f", "f", nullptr, nullptr);
  for (int i = 1; i <= dims; ++i) {
    g.AddRelation("d" + std::to_string(i), "d", nullptr, nullptr);
    JoinEdge e;
    e.left = 0;
    e.right = i;
    e.left_cols = {"fk" + std::to_string(i)};
    e.right_cols = {"id"};
    e.right_unique = true;
    g.AddEdge(e);
  }
  return g;
}

TEST(PushDown, StarAllFiltersReachFact) {
  // With the fact right-most, every dimension filter lands on the fact leaf
  // (the premise of Lemma 4).
  JoinGraph g = StarGraph(4);
  Plan plan = BuildRightDeepPlan(g, {0, 1, 2, 3, 4});
  PushDownBitvectors(&plan);
  const PlanNode* fact_leaf = nullptr;
  for (const PlanNode* n : plan.nodes) {
    if (n->IsLeaf() && n->relation == 0) fact_leaf = n;
  }
  ASSERT_NE(fact_leaf, nullptr);
  EXPECT_EQ(plan.filters.size(), 4u);
  for (const PlanFilter& f : plan.filters) {
    EXPECT_EQ(f.applied_at, fact_leaf->id);
  }
  EXPECT_EQ(fact_leaf->applied_filters.size(), 4u);
}

TEST(PushDown, StarFactSecondFilterFlowsToDim) {
  // T(Rk, R0, ...): the filter created from R0's side flows down to Rk, and
  // dimension filters above flow into R0 (Lemma 5's setting).
  JoinGraph g = StarGraph(3);
  Plan plan = BuildRightDeepPlan(g, {1, 0, 2, 3});
  PushDownBitvectors(&plan);
  // Deepest join: build=R0(fact), probe=leaf d1. Its filter goes to d1.
  const PlanNode* deepest = nullptr;
  for (const PlanNode* n : plan.nodes) {
    if (n->kind == PlanNode::Kind::kJoin && n->probe->IsLeaf()) deepest = n;
  }
  ASSERT_NE(deepest, nullptr);
  const PlanFilter& f =
      plan.filters[static_cast<size_t>(deepest->created_filter)];
  EXPECT_EQ(FilterProbeRels(f), RelBit(1));
  EXPECT_EQ(f.applied_at, deepest->probe->id);
  // Filters from d2/d3 land on the fact leaf.
  const PlanNode* fact_leaf = nullptr;
  for (const PlanNode* n : plan.nodes) {
    if (n->IsLeaf() && n->relation == 0) fact_leaf = n;
  }
  ASSERT_NE(fact_leaf, nullptr);
  EXPECT_EQ(fact_leaf->applied_filters.size(), 2u);
}

JoinGraph ChainGraph(int n) {
  JoinGraph g;
  for (int i = 0; i < n; ++i) {
    g.AddRelation("r" + std::to_string(i), "r", nullptr, nullptr);
  }
  for (int i = 1; i < n; ++i) {
    JoinEdge e;
    e.left = i - 1;
    e.right = i;
    e.left_cols = {"fk"};
    e.right_cols = {"id"};
    e.right_unique = true;
    g.AddEdge(e);
  }
  return g;
}

TEST(PushDown, ChainFiltersDescendOneLevel) {
  // T(R0, R1, R2, R3): filter from R_{i} lands on R_{i-1} (Lemma 7).
  JoinGraph g = ChainGraph(4);
  Plan plan = BuildRightDeepPlan(g, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  for (const PlanFilter& f : plan.filters) {
    ASSERT_EQ(f.probe_cols.size(), 1u);
    const int target_rel = f.probe_cols[0].rel;
    const PlanNode* applied = plan.nodes[static_cast<size_t>(f.applied_at)];
    EXPECT_TRUE(applied->IsLeaf());
    EXPECT_EQ(applied->relation, target_rel);
  }
}

TEST(PushDown, ClearRemovesAnnotations) {
  JoinGraph g = ChainGraph(3);
  Plan plan = BuildRightDeepPlan(g, {0, 1, 2});
  PushDownBitvectors(&plan);
  EXPECT_FALSE(plan.filters.empty());
  ClearBitvectors(&plan);
  EXPECT_TRUE(plan.filters.empty());
  for (const PlanNode* n : plan.nodes) {
    EXPECT_TRUE(n->applied_filters.empty());
    EXPECT_EQ(n->created_filter, -1);
  }
}

TEST(PushDown, Idempotent) {
  JoinGraph g = StarGraph(3);
  Plan plan = BuildRightDeepPlan(g, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  const size_t filters_before = plan.filters.size();
  const auto to_string_before = plan.ToString();
  PushDownBitvectors(&plan);
  EXPECT_EQ(plan.filters.size(), filters_before);
  EXPECT_EQ(plan.ToString(), to_string_before);
}

TEST(PushDown, EveryFilterIsAppliedSomewhere) {
  JoinGraph g = Figure1Graph();
  for (const auto& order :
       {std::vector<int>{0, 1, 2, 3}, std::vector<int>{2, 3, 0, 1},
        std::vector<int>{3, 2, 1, 0}}) {
    if (!IsValidRightDeepOrder(g, order)) continue;
    Plan plan = BuildRightDeepPlan(g, order);
    PushDownBitvectors(&plan);
    for (const PlanFilter& f : plan.filters) {
      EXPECT_GE(f.applied_at, 0);
      // Application site must be inside the source join's probe subtree.
      const PlanNode* source =
          plan.nodes[static_cast<size_t>(f.source_join)];
      const PlanNode* site = plan.nodes[static_cast<size_t>(f.applied_at)];
      EXPECT_TRUE((site->rel_set & source->probe->rel_set) != 0);
    }
  }
}

}  // namespace
}  // namespace bqo

// Execution engine correctness: results must match a brute-force reference
// join, and must be invariant to join order, filter kind, and whether
// bitvector filters are enabled at all (filters are pure performance).
#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/plan/pushdown.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeChainDb;
using ::bqo::testing::MakeStarDb;

/// Brute-force reference for a star query: count fact rows whose every FK
/// hits a dimension row passing that dimension's predicate. (Dimension PKs
/// are 0..rows-1 = row index, a datagen invariant.)
int64_t ReferenceStarCount(const testing::TestDb& db) {
  const Table* fact = db.catalog.GetTable("f").value();
  int64_t count = 0;
  std::vector<std::vector<uint8_t>> dim_pass;
  std::vector<int> fk_cols;
  for (size_t i = 1; i < db.spec.relations.size(); ++i) {
    const auto& rel = db.spec.relations[i];
    const Table* dim = db.catalog.GetTable(rel.table).value();
    dim_pass.push_back(EvaluateBitmap(*dim, rel.predicate));
    fk_cols.push_back(fact->ColumnIndex(rel.table + "_fk"));
  }
  for (int64_t row = 0; row < fact->num_rows(); ++row) {
    bool ok = true;
    for (size_t d = 0; d < dim_pass.size(); ++d) {
      const int64_t fk = fact->column(fk_cols[d]).GetInt64(row);
      if (fk < 0 || static_cast<size_t>(fk) >= dim_pass[d].size() ||
          !dim_pass[d][static_cast<size_t>(fk)]) {
        ok = false;
        break;
      }
    }
    if (ok) ++count;
  }
  return count;
}

class ExecStarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeStarDb(3, 4000, 100, {0.3, 0.6, 0.15}, 77, /*zipf=*/0.6);
    auto graph = db_->Graph();
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<JoinGraph>(std::move(graph.value()));
    expected_ = ReferenceStarCount(*db_);
    ASSERT_GT(expected_, 0);  // non-degenerate fixture
  }

  std::unique_ptr<testing::TestDb> db_;
  std::unique_ptr<JoinGraph> graph_;
  int64_t expected_ = 0;
};

TEST_F(ExecStarTest, CountMatchesReferenceWithoutFilters) {
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  ClearBitvectors(&plan);
  ExecutionOptions options;
  options.use_bitvectors = false;
  const QueryMetrics m = ExecutePlan(plan, options);
  EXPECT_EQ(m.result_rows, 1);
  // COUNT(*) is the aggregate total; fetch via join tuple count at root.
  // The root join's rows_out equals the join cardinality.
  int64_t root_rows = -1;
  for (const auto& op : m.operators) {
    if (op.plan_node_id == 0) root_rows = op.rows_out;
  }
  EXPECT_EQ(root_rows, expected_);
}

TEST_F(ExecStarTest, FiltersDoNotChangeResults) {
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    ExecutionOptions options;
    options.filter_config.kind = kind;
    const QueryMetrics m = ExecutePlan(plan, options);
    int64_t root_rows = -1;
    for (const auto& op : m.operators) {
      if (op.plan_node_id == 0) root_rows = op.rows_out;
    }
    EXPECT_EQ(root_rows, expected_) << FilterKindName(kind);
  }
}

TEST_F(ExecStarTest, ChecksumInvariantAcrossJoinOrders) {
  ExecutionOptions options;
  options.agg.kind = AggKind::kSum;
  options.agg.sum_column = BoundColumn{0, "measure"};
  options.agg.has_group_by = true;
  options.agg.group_column = BoundColumn{1, "attr1"};

  std::vector<std::vector<int>> orders = {
      {0, 1, 2, 3}, {0, 3, 1, 2}, {2, 0, 1, 3}, {1, 0, 3, 2}};
  uint64_t checksum = 0;
  int64_t groups = -1;
  for (size_t i = 0; i < orders.size(); ++i) {
    Plan plan = BuildRightDeepPlan(*graph_, orders[i]);
    PushDownBitvectors(&plan);
    const QueryMetrics m = ExecutePlan(plan, options);
    if (i == 0) {
      checksum = m.result_checksum;
      groups = m.result_rows;
    } else {
      EXPECT_EQ(m.result_checksum, checksum) << "order " << i;
      EXPECT_EQ(m.result_rows, groups) << "order " << i;
    }
  }
  EXPECT_GT(groups, 0);
}

TEST_F(ExecStarTest, ExactFiltersFullyReduceFactScan) {
  // With exact filters and fact right-most, the fact scan's output equals
  // the final join cardinality (the absorption rule, Lemma 3).
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  ExecutionOptions options;
  options.filter_config.kind = FilterKind::kExact;
  const QueryMetrics m = ExecutePlan(plan, options);
  for (const auto& op : m.operators) {
    if (op.type == OperatorType::kScan && op.label == "scan f") {
      EXPECT_EQ(op.rows_out, expected_);
    }
    if (op.type == OperatorType::kHashJoin) {
      EXPECT_EQ(op.rows_out, expected_);  // PKFK joins preserve cardinality
    }
  }
}

TEST_F(ExecStarTest, BloomFilterLeaksOnlyFalsePositives) {
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  ExecutionOptions exact_opts, bloom_opts;
  exact_opts.filter_config.kind = FilterKind::kExact;
  bloom_opts.filter_config.kind = FilterKind::kBloom;
  bloom_opts.filter_config.bloom_bits_per_key = 4.0;  // deliberately leaky
  const QueryMetrics exact = ExecutePlan(plan, exact_opts);
  const QueryMetrics bloom = ExecutePlan(plan, bloom_opts);
  auto scan_out = [](const QueryMetrics& m) {
    for (const auto& op : m.operators) {
      if (op.label == "scan f") return op.rows_out;
    }
    return int64_t{-1};
  };
  // Bloom may pass extra (false-positive) fact rows but never fewer.
  EXPECT_GE(scan_out(bloom), scan_out(exact));
  // Final result is identical (join verifies keys exactly).
  int64_t exact_root = -1, bloom_root = -1;
  for (const auto& op : exact.operators) {
    if (op.plan_node_id == 0) exact_root = op.rows_out;
  }
  for (const auto& op : bloom.operators) {
    if (op.plan_node_id == 0) bloom_root = op.rows_out;
  }
  EXPECT_EQ(exact_root, bloom_root);
}

TEST_F(ExecStarTest, MetricsAreInternallyConsistent) {
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  const QueryMetrics m = ExecutePlan(plan);
  int64_t scans = 0, joins = 0;
  for (const auto& op : m.operators) {
    if (op.type != OperatorType::kAggregate) {
      EXPECT_GE(op.rows_prefilter, op.rows_out);
    }
    EXPECT_GE(op.ns_inclusive, op.ns_self);
    if (op.type == OperatorType::kScan) scans += op.rows_out;
    if (op.type == OperatorType::kHashJoin) joins += op.rows_out;
  }
  EXPECT_EQ(scans, m.leaf_tuples);
  EXPECT_EQ(joins, m.join_tuples);
  for (const auto& fs : m.filters) {
    EXPECT_GE(fs.probed, fs.passed);
    EXPECT_TRUE(fs.created);
  }
}

TEST(ExecManyToMany, DuplicateKeysProduceAllPairs) {
  // Two fact-like tables joined on a skewed, non-unique column.
  testing::TestDb db;
  Rng rng(5);
  TableGenSpec dim;
  dim.name = "d";
  dim.rows = 50;
  dim.with_label = false;
  GenerateTable(&db.catalog, dim, &rng);
  for (const char* name : {"f1", "f2"}) {
    TableGenSpec f;
    f.name = name;
    f.rows = 800;
    f.with_pk = false;
    f.with_label = false;
    f.fks.push_back(FkSpec{"d_fk", "d", "d_id", 0.9, 0.0});
    GenerateTable(&db.catalog, f, &rng);
  }
  db.spec.relations = {{"f1", "f1", nullptr}, {"f2", "f2", nullptr}};
  db.spec.joins = {{"f1", "d_fk", "f2", "d_fk"}};
  auto graph = db.Graph();
  ASSERT_TRUE(graph.ok());

  // Reference: histogram dot-product.
  const Table* f1 = db.catalog.GetTable("f1").value();
  const Table* f2 = db.catalog.GetTable("f2").value();
  std::map<int64_t, int64_t> h1, h2;
  for (int64_t r = 0; r < f1->num_rows(); ++r) {
    ++h1[f1->column(f1->ColumnIndex("d_fk")).GetInt64(r)];
  }
  for (int64_t r = 0; r < f2->num_rows(); ++r) {
    ++h2[f2->column(f2->ColumnIndex("d_fk")).GetInt64(r)];
  }
  int64_t expected = 0;
  for (const auto& [k, c] : h1) {
    auto it = h2.find(k);
    if (it != h2.end()) expected += c * it->second;
  }

  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);
  const QueryMetrics m = ExecutePlan(plan);
  int64_t root_rows = -1;
  for (const auto& op : m.operators) {
    if (op.plan_node_id == 0) root_rows = op.rows_out;
  }
  EXPECT_EQ(root_rows, expected);
  EXPECT_GT(expected, 800);  // skew should force real duplication
}

TEST(ExecChain, DeepChainAllOrdersAgree) {
  auto db = MakeChainDb(5, 3000, 0.4, {-1, -1, -1, -1, 0.2}, 123);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  JoinGraph& graph = graph_result.value();

  // Execute every valid right-deep order (2^(n-1) = 16) and compare counts.
  int64_t expected = -1;
  int executed = 0;
  std::vector<int> perm(5);
  for (int mask = 0; mask < 32; ++mask) {
    // Build interval-extension orders: start somewhere, extend left/right.
    // Easiest: enumerate all permutations and filter valid ones.
    std::vector<int> ids = {0, 1, 2, 3, 4};
    std::sort(ids.begin(), ids.end());
    do {
      if (!IsValidRightDeepOrder(graph, ids)) continue;
      Plan plan = BuildRightDeepPlan(graph, ids);
      PushDownBitvectors(&plan);
      const QueryMetrics m = ExecutePlan(plan);
      int64_t root_rows = -1;
      for (const auto& op : m.operators) {
        if (op.plan_node_id == 0) root_rows = op.rows_out;
      }
      if (expected < 0) {
        expected = root_rows;
      } else {
        ASSERT_EQ(root_rows, expected);
      }
      ++executed;
    } while (std::next_permutation(ids.begin(), ids.end()));
    break;  // one pass over permutations suffices
  }
  EXPECT_EQ(executed, 16);
}

}  // namespace
}  // namespace bqo

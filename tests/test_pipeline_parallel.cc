// Pipeline-parallel execution correctness: at every thread count the engine
// must produce the same result multiset and the same merged FilterStats as
// threads=1 — parallel hash-join builds, parallel filter creation, and wide
// probe pipelines are pure performance. Pins:
//
//  * threads == 1 compiles the exact single-threaded plan (no exchange);
//    threads > 1 compiles exactly one exchange, directly below the
//    aggregate, and every hash-join build runs on N workers.
//  * For all three filter kinds over star and snowflake shapes (sort-merge
//    joins included), a {1,2,4} thread sweep leaves result rows/checksums,
//    per-type tuple counts, and merged probed/passed/inserted byte-equal.
//  * FillFilterParallel reproduces the sequential filter (membership and
//    NumInserted) from per-worker partials merged via MergeFrom.
//  * The aggregate parity invariant: with threads > 1 the final aggregate
//    runs as per-worker partial folds inside the pre-aggregating exchange,
//    and the merged ResultChecksum()/NumGroups()/TotalValue() equal the
//    threads == 1 values exactly — for grouped (kSum + GROUP BY) and
//    ungrouped aggregates, over star, snowflake, bushy, and sort-merge
//    plans, including empty-result and single-group edge cases.
//
// Run under -DBQO_SANITIZE=thread in CI to pin race-freedom, and under
// -DBQO_SANITIZE=address,undefined for memory/UB.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/exec/exchange.h"
#include "src/exec/executor.h"
#include "src/exec/pipeline.h"
#include "src/plan/pushdown.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;

/// Compare every thread-count-invariant field of two runs.
void ExpectRunsEqual(const QueryMetrics& base, const QueryMetrics& m,
                     const std::string& what) {
  EXPECT_EQ(m.result_rows, base.result_rows) << what;
  EXPECT_EQ(m.result_checksum, base.result_checksum) << what;
  EXPECT_EQ(m.leaf_tuples, base.leaf_tuples) << what;
  EXPECT_EQ(m.join_tuples, base.join_tuples) << what;
  ASSERT_EQ(m.filters.size(), base.filters.size()) << what;
  for (size_t i = 0; i < m.filters.size(); ++i) {
    EXPECT_EQ(m.filters[i].created, base.filters[i].created)
        << what << " filter " << i;
    EXPECT_EQ(m.filters[i].probed, base.filters[i].probed)
        << what << " filter " << i;
    EXPECT_EQ(m.filters[i].passed, base.filters[i].passed)
        << what << " filter " << i;
    EXPECT_EQ(m.filters[i].inserted, base.filters[i].inserted)
        << what << " filter " << i;
  }
}

int CountOperators(const QueryMetrics& m, OperatorType type) {
  int n = 0;
  for (const OperatorStats& op : m.operators) {
    if (op.type == type) ++n;
  }
  return n;
}

/// Full multi-join star workload: grouped SUM (a multiset-sensitive
/// aggregate) over a 3-dimension PKFK star, swept over {1,2,4} workers and
/// all three filter kinds.
TEST(PipelineParallel, StarSweepAllKindsMatchesSingleThread) {
  auto db = MakeStarDb(3, 30000, 400, {0.3, 0.6, 0.15}, 77, /*zipf=*/0.6);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3});
  PushDownBitvectors(&plan);

  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    ExecutionOptions options;
    options.filter_config.kind = kind;
    options.agg.kind = AggKind::kSum;
    options.agg.sum_column = BoundColumn{0, "measure"};
    options.agg.has_group_by = true;
    options.agg.group_column = BoundColumn{1, "d0_id"};
    const QueryMetrics base = ExecutePlan(plan, options);
    ASSERT_GT(base.result_rows, 1) << "grouped result expected";

    for (int threads : {2, 4}) {
      ExecutionOptions parallel = options;
      parallel.exec.threads = threads;
      parallel.exec.morsel_rows = 2048;  // several morsels per worker
      const QueryMetrics m = ExecutePlan(plan, parallel);
      ExpectRunsEqual(base, m,
                      std::string(FilterKindName(kind)) + " threads=" +
                          std::to_string(threads));
    }
  }
}

/// Snowflake: branch predicates sit on the outermost relations, so filters
/// traverse multi-join branches before reaching the fact scan.
TEST(PipelineParallel, SnowflakeSweepMatchesSingleThread) {
  auto db = MakeSnowflakeDb({2, 2}, 20000, 500, 0.5, {0.4, 0.5}, 1234,
                            /*zipf=*/0.4);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3, 4});
  PushDownBitvectors(&plan);

  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    ExecutionOptions options;
    options.filter_config.kind = kind;
    const QueryMetrics base = ExecutePlan(plan, options);
    ASSERT_GT(base.leaf_tuples, 0);

    for (int threads : {2, 4}) {
      ExecutionOptions parallel = options;
      parallel.exec.threads = threads;
      parallel.exec.morsel_rows = 1024;
      const QueryMetrics m = ExecutePlan(plan, parallel);
      ExpectRunsEqual(base, m,
                      std::string("snowflake ") + FilterKindName(kind) +
                          " threads=" + std::to_string(threads));
    }
  }
}

/// Bushy snowflake plan: the root join's build side is itself a join — its
/// parallel build drain runs a real scan->probe pipeline (with canonical
/// reassembly), and one probe chain carries two joins. Relation order in
/// MakeSnowflakeDb({2,2}): 0=f, 1=b0_1, 2=b0_2, 3=b1_1, 4=b1_2.
TEST(PipelineParallel, BushyBuildPipelinesMatchSingleThread) {
  auto db = MakeSnowflakeDb({2, 2}, 20000, 500, 0.5, {0.4, 0.5}, 4321,
                            /*zipf=*/0.4);
  auto graph_or = db->Graph();
  ASSERT_TRUE(graph_or.ok());
  const JoinGraph& g = graph_or.value();

  Plan plan;
  plan.graph = &g;
  // build = (b0_2 HJ b0_1): a scan->probe build pipeline for the root.
  auto branch0 = MakeJoin(g, MakeLeaf(g, 2), MakeLeaf(g, 1));
  ASSERT_NE(branch0, nullptr);
  // probe chain: ((b1_2 HJ b1_1) HJ f) — inner join's build is also a
  // pipeline (scan b1_1 probing b1_2's filter).
  auto branch1 = MakeJoin(g, MakeLeaf(g, 4), MakeLeaf(g, 3));
  ASSERT_NE(branch1, nullptr);
  auto inner = MakeJoin(g, std::move(branch1), MakeLeaf(g, 0));
  ASSERT_NE(inner, nullptr);
  plan.root = MakeJoin(g, std::move(branch0), std::move(inner));
  ASSERT_NE(plan.root, nullptr);
  plan.Renumber();
  ASSERT_TRUE(plan.Validate());
  PushDownBitvectors(&plan);

  for (FilterKind kind : {FilterKind::kBloom, FilterKind::kCuckoo}) {
    ExecutionOptions options;
    options.filter_config.kind = kind;
    const QueryMetrics base = ExecutePlan(plan, options);
    ASSERT_GT(base.join_tuples, 0);

    for (int threads : {2, 4}) {
      ExecutionOptions parallel = options;
      parallel.exec.threads = threads;
      parallel.exec.morsel_rows = 1024;
      const QueryMetrics m = ExecutePlan(plan, parallel);
      ExpectRunsEqual(base, m,
                      std::string("bushy ") + FilterKindName(kind) +
                          " threads=" + std::to_string(threads));
    }
  }
}

/// Sort-merge joins are breakers on both inputs; their materialization
/// drains wide but the merge itself stays single-threaded. Results and
/// merged stats must still be thread-count-invariant.
TEST(PipelineParallel, SortMergeSweepMatchesSingleThread) {
  auto db = MakeStarDb(2, 15000, 300, {0.4, 0.25}, 31, /*zipf=*/0.5);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2});
  PushDownBitvectors(&plan);

  for (FilterKind kind : {FilterKind::kExact, FilterKind::kBloom}) {
    ExecutionOptions options;
    options.use_sort_merge_join = true;
    options.filter_config.kind = kind;
    const QueryMetrics base = ExecutePlan(plan, options);

    for (int threads : {2, 4}) {
      ExecutionOptions parallel = options;
      parallel.exec.threads = threads;
      parallel.exec.morsel_rows = 1024;
      const QueryMetrics m = ExecutePlan(plan, parallel);
      ExpectRunsEqual(base, m,
                      std::string("sort-merge ") + FilterKindName(kind) +
                          " threads=" + std::to_string(threads));
      // No exchange: the plan's top operator is a breaker.
      EXPECT_EQ(CountOperators(m, OperatorType::kExchange), 0);
    }
  }
}

/// Plan shape: threads=1 must compile the exact single-threaded tree (no
/// exchange anywhere); threads>1 exactly one exchange, directly below the
/// aggregate, with bare scans at the leaves.
TEST(PipelineParallel, CompiledPlanShape) {
  auto db = MakeStarDb(2, 5000, 100, {0.5, 0.5}, 11);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2});
  PushDownBitvectors(&plan);

  for (int threads : {1, 4}) {
    ExecutionOptions options;
    options.exec.threads = threads;
    FilterRuntime runtime;
    auto agg = CompilePlan(plan, options, &runtime);

    // Walk the tree counting exchanges and recording the aggregate child.
    int exchanges = 0;
    bool agg_child_is_exchange = false;
    std::vector<PhysicalOperator*> stack = {agg.get()};
    while (!stack.empty()) {
      PhysicalOperator* op = stack.back();
      stack.pop_back();
      for (PhysicalOperator* child : op->children()) {
        const bool is_exchange =
            child->stats().type == OperatorType::kExchange;
        if (is_exchange) {
          ++exchanges;
          if (op == agg.get()) agg_child_is_exchange = true;
        }
        stack.push_back(child);
      }
    }
    if (threads == 1) {
      EXPECT_EQ(exchanges, 0);
    } else {
      EXPECT_EQ(exchanges, 1);
      EXPECT_TRUE(agg_child_is_exchange);
    }
  }
}

/// Worker pinning: with threads=N the exchange and every hash-join build
/// must report N parallel workers in their merged OperatorStats.
TEST(PipelineParallel, BuildsAndExchangeRunOnNWorkers) {
  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 77, /*zipf=*/0.6);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3});
  PushDownBitvectors(&plan);

  constexpr int kThreads = 4;
  ExecutionOptions options;
  options.exec.threads = kThreads;
  options.exec.morsel_rows = 2048;
  const QueryMetrics m = ExecutePlan(plan, options);

  int exchanges = 0, joins = 0;
  for (const OperatorStats& op : m.operators) {
    if (op.type == OperatorType::kExchange) {
      ++exchanges;
      EXPECT_EQ(op.parallel_workers, kThreads) << op.label;
    }
    if (op.type == OperatorType::kHashJoin) {
      ++joins;
      EXPECT_EQ(op.parallel_workers, kThreads) << op.label;
    }
  }
  EXPECT_EQ(exchanges, 1);
  EXPECT_EQ(joins, 3);

  // And threads=1 reports everything single-threaded.
  ExecutionOptions single;
  const QueryMetrics s = ExecutePlan(plan, single);
  for (const OperatorStats& op : s.operators) {
    EXPECT_EQ(op.parallel_workers, 0) << op.label;
  }
}

/// FillFilterParallel parity: per-worker partials + MergeFrom must
/// reproduce the sequential fill — membership set and NumInserted — for
/// every kind, on a key stream large enough to take the parallel path and
/// salted with duplicates spanning partition boundaries.
TEST(PipelineParallel, FillFilterParallelMatchesSequential) {
  Rng rng(4242);
  constexpr int64_t kKeys = 60000;
  std::vector<uint64_t> hashes;
  hashes.reserve(kKeys);
  for (int64_t i = 0; i < kKeys; ++i) {
    // ~25% duplicates, many landing in other workers' partitions.
    if (i % 4 == 3) {
      hashes.push_back(hashes[static_cast<size_t>(rng.Next() %
                                                  static_cast<uint64_t>(i))]);
    } else {
      hashes.push_back(rng.Next());
    }
  }

  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    FilterConfig config;
    config.kind = kind;
    auto sequential = CreateFilter(config, kKeys);
    for (uint64_t h : hashes) sequential->Insert(h);

    auto parallel = CreateFilter(config, kKeys);
    ExecConfig exec;
    exec.threads = 4;
    FillFilterParallel(parallel.get(), config, hashes.data(), kKeys, exec);

    EXPECT_EQ(parallel->NumInserted(), sequential->NumInserted())
        << FilterKindName(kind);
    for (uint64_t h : hashes) {
      ASSERT_TRUE(parallel->MayContain(h)) << FilterKindName(kind);
    }
    // Bit-identical rejection behavior, sampled.
    for (int i = 0; i < 50000; ++i) {
      const uint64_t h = rng.Next();
      ASSERT_EQ(parallel->MayContain(h), sequential->MayContain(h))
          << FilterKindName(kind);
    }
  }
}

// ---- Aggregate parity: the pre-aggregating exchange ----

/// The aggregate's own accessors after a full run of the compiled plan.
struct AggRun {
  uint64_t checksum = 0;
  int64_t num_groups = 0;
  int64_t total = 0;
  int64_t rows_emitted = 0;
  int64_t rows_folded = 0;  ///< aggregate input rows (agg_rows_folded)
};

AggRun RunAggregate(const Plan& plan, const ExecutionOptions& options) {
  FilterRuntime runtime;
  auto agg = CompilePlan(plan, options, &runtime);
  agg->Open();
  Batch batch;
  AggRun r;
  while (agg->Next(&batch)) r.rows_emitted += batch.num_rows;
  agg->Close();
  r.checksum = agg->ResultChecksum();
  r.num_groups = agg->NumGroups();
  r.total = agg->TotalValue();
  r.rows_folded = agg->stats().agg_rows_folded;
  return r;
}

/// Sweep `options.agg` over {1,2,4} workers and pin every aggregate
/// accessor — checksum, group count, total, emitted rows, and the merged
/// per-worker input-row counter — to the threads == 1 values.
void ExpectAggParity(const Plan& plan, ExecutionOptions options,
                     const std::string& what) {
  options.exec.threads = 1;
  const AggRun base = RunAggregate(plan, options);
  for (int threads : {2, 4}) {
    options.exec.threads = threads;
    options.exec.morsel_rows = 1024;
    const AggRun r = RunAggregate(plan, options);
    const std::string label = what + " threads=" + std::to_string(threads);
    EXPECT_EQ(r.checksum, base.checksum) << label;
    EXPECT_EQ(r.num_groups, base.num_groups) << label;
    EXPECT_EQ(r.total, base.total) << label;
    EXPECT_EQ(r.rows_emitted, base.rows_emitted) << label;
    EXPECT_EQ(r.rows_folded, base.rows_folded) << label;
  }
}

ExecutionOptions GroupedSumOptions(FilterKind kind) {
  ExecutionOptions options;
  options.filter_config.kind = kind;
  options.agg.kind = AggKind::kSum;
  options.agg.sum_column = BoundColumn{0, "measure"};
  options.agg.has_group_by = true;
  options.agg.group_column = BoundColumn{1, "d0_id"};
  return options;
}

/// Grouped SUM and both ungrouped kinds over a star plan: the merged
/// partial aggregates must reproduce the single-threaded fold exactly.
TEST(PipelineParallelAgg, StarGroupedAndUngroupedParity) {
  auto db = MakeStarDb(3, 30000, 400, {0.3, 0.6, 0.15}, 177, /*zipf=*/0.6);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3});
  PushDownBitvectors(&plan);

  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    ExecutionOptions grouped = GroupedSumOptions(kind);
    {
      ExecutionOptions check = grouped;
      check.exec.threads = 1;
      const AggRun base = RunAggregate(plan, check);
      ASSERT_GT(base.num_groups, 1) << "grouped result expected";
      ASSERT_GT(base.total, 0);
    }
    ExpectAggParity(plan, grouped,
                    std::string("star grouped ") + FilterKindName(kind));

    ExecutionOptions count;
    count.filter_config.kind = kind;
    ExpectAggParity(plan, count,
                    std::string("star count ") + FilterKindName(kind));

    ExecutionOptions sum;
    sum.filter_config.kind = kind;
    sum.agg.kind = AggKind::kSum;
    sum.agg.sum_column = BoundColumn{0, "measure"};
    ExpectAggParity(plan, sum,
                    std::string("star sum ") + FilterKindName(kind));
  }
}

/// Snowflake plan, grouped on a branch relation's key.
TEST(PipelineParallelAgg, SnowflakeGroupedParity) {
  auto db = MakeSnowflakeDb({2, 2}, 20000, 500, 0.5, {0.4, 0.5}, 2334,
                            /*zipf=*/0.4);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3, 4});
  PushDownBitvectors(&plan);

  ExecutionOptions options;
  options.agg.kind = AggKind::kSum;
  options.agg.sum_column = BoundColumn{0, "measure"};
  options.agg.has_group_by = true;
  options.agg.group_column = BoundColumn{1, "b0_1_id"};
  ExpectAggParity(plan, options, "snowflake grouped");
}

/// Bushy plan: the probe chain above the exchange carries two joins and the
/// root build is itself a join; the pre-aggregated fold must still match.
TEST(PipelineParallelAgg, BushyGroupedParity) {
  auto db = MakeSnowflakeDb({2, 2}, 20000, 500, 0.5, {0.4, 0.5}, 5321,
                            /*zipf=*/0.4);
  auto graph_or = db->Graph();
  ASSERT_TRUE(graph_or.ok());
  const JoinGraph& g = graph_or.value();

  Plan plan;
  plan.graph = &g;
  auto branch0 = MakeJoin(g, MakeLeaf(g, 2), MakeLeaf(g, 1));
  ASSERT_NE(branch0, nullptr);
  auto branch1 = MakeJoin(g, MakeLeaf(g, 4), MakeLeaf(g, 3));
  ASSERT_NE(branch1, nullptr);
  auto inner = MakeJoin(g, std::move(branch1), MakeLeaf(g, 0));
  ASSERT_NE(inner, nullptr);
  plan.root = MakeJoin(g, std::move(branch0), std::move(inner));
  ASSERT_NE(plan.root, nullptr);
  plan.Renumber();
  ASSERT_TRUE(plan.Validate());
  PushDownBitvectors(&plan);

  ExecutionOptions options;
  options.agg.kind = AggKind::kSum;
  options.agg.sum_column = BoundColumn{0, "measure"};
  options.agg.has_group_by = true;
  options.agg.group_column = BoundColumn{1, "b0_1_id"};
  ExpectAggParity(plan, options, "bushy grouped");
}

/// Sort-merge root: a breaker at the top, so there is no exchange and the
/// aggregate folds single-threaded at every thread count — the accessors
/// must still be thread-count-invariant.
TEST(PipelineParallelAgg, SortMergeGroupedParity) {
  auto db = MakeStarDb(2, 15000, 300, {0.4, 0.25}, 131, /*zipf=*/0.5);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2});
  PushDownBitvectors(&plan);

  ExecutionOptions options = GroupedSumOptions(FilterKind::kBloom);
  options.use_sort_merge_join = true;
  ExpectAggParity(plan, options, "sort-merge grouped");
}

/// Empty result: a predicate nothing passes. Zero groups, zero total, zero
/// rows emitted — at every thread count.
TEST(PipelineParallelAgg, EmptyResultGroupedParity) {
  auto db = MakeStarDb(1, 1000, 50, {0.0}, 907);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);

  ExecutionOptions options = GroupedSumOptions(FilterKind::kExact);
  {
    ExecutionOptions check = options;
    const AggRun base = RunAggregate(plan, check);
    ASSERT_EQ(base.num_groups, 0);
    ASSERT_EQ(base.total, 0);
    ASSERT_EQ(base.rows_emitted, 0);
  }
  ExpectAggParity(plan, options, "empty grouped");
}

/// Single group: the dimension is pinned to one row by an equality
/// predicate and the query groups by its key, so every worker's partial
/// lands in the same group and the sink merge collapses them to one.
TEST(PipelineParallelAgg, SingleGroupParity) {
  auto db = MakeStarDb(1, 20000, 50, {-1.0}, 412);
  db->spec.relations[1].predicate = Eq("d0_id", 7);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);

  ExecutionOptions options = GroupedSumOptions(FilterKind::kExact);
  {
    const AggRun base = RunAggregate(plan, options);
    ASSERT_EQ(base.num_groups, 1);
    ASSERT_GT(base.total, 0);
  }
  ExpectAggParity(plan, options, "single group");
}

/// Compiled shape and merged counters of the pre-aggregating drain: with
/// threads > 1 the aggregate's child is a pre-aggregating exchange, the
/// merged agg_rows_folded on both operators equals the single-threaded
/// aggregate input, and the partial group count is at least the final one.
TEST(PipelineParallelAgg, PreAggShapeAndCounters) {
  auto db = MakeStarDb(2, 20000, 300, {0.4, 0.5}, 88, /*zipf=*/0.5);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2});
  PushDownBitvectors(&plan);

  ExecutionOptions options = GroupedSumOptions(FilterKind::kBloom);
  {
    FilterRuntime runtime;
    options.exec.threads = 4;
    auto agg = CompilePlan(plan, options, &runtime);
    auto* exchange = dynamic_cast<ExchangeOperator*>(agg->children()[0]);
    ASSERT_NE(exchange, nullptr);
    EXPECT_TRUE(exchange->pre_aggregating());
  }

  options.exec.threads = 1;
  const QueryMetrics base = ExecutePlan(plan, options);
  int64_t base_folded = 0;
  for (const OperatorStats& op : base.operators) {
    if (op.type == OperatorType::kAggregate) base_folded = op.agg_rows_folded;
  }
  ASSERT_GT(base_folded, 0);

  options.exec.threads = 4;
  options.exec.morsel_rows = 1024;
  const QueryMetrics m = ExecutePlan(plan, options);
  const int64_t final_groups = m.result_rows;
  for (const OperatorStats& op : m.operators) {
    if (op.type == OperatorType::kAggregate) {
      EXPECT_EQ(op.agg_rows_folded, base_folded);
    }
    if (op.type == OperatorType::kExchange) {
      EXPECT_EQ(op.agg_rows_folded, base_folded) << op.label;
      EXPECT_GE(op.agg_partial_groups, final_groups) << op.label;
    }
  }
  EXPECT_EQ(m.result_checksum, base.result_checksum);
}

/// Degenerate shapes must not hang or skew: more workers than morsels, one
/// morsel spanning everything, and an empty probe side.
TEST(PipelineParallel, DegenerateShapes) {
  auto db = MakeStarDb(1, 300, 50, {0.5}, 99);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);

  ExecutionOptions single;
  const QueryMetrics base = ExecutePlan(plan, single);

  ExecutionOptions parallel;
  parallel.exec.threads = 8;           // far more workers than morsels
  parallel.exec.morsel_rows = 100000;  // one morsel takes everything
  const QueryMetrics m = ExecutePlan(plan, parallel);
  ExpectRunsEqual(base, m, "degenerate");

  // Empty probe side: a predicate nothing passes.
  auto empty_db = MakeStarDb(1, 1000, 50, {0.0}, 7);
  auto empty_graph = empty_db->Graph();
  ASSERT_TRUE(empty_graph.ok());
  Plan empty_plan = BuildRightDeepPlan(empty_graph.value(), {0, 1});
  PushDownBitvectors(&empty_plan);
  ExecutionOptions par;
  par.exec.threads = 4;
  const QueryMetrics e = ExecutePlan(empty_plan, par);
  const QueryMetrics e1 = ExecutePlan(empty_plan, single);
  EXPECT_EQ(e.result_checksum, e1.result_checksum);
  EXPECT_EQ(e.join_tuples, e1.join_tuples);
}

}  // namespace
}  // namespace bqo

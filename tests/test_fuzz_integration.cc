// Randomized end-to-end cross-validation ("fuzz" suite): generate random
// schemas/queries spanning star, snowflake, chain and galaxy topologies,
// then check the invariants that must hold regardless of topology:
//
//  1. every optimizer mode produces a valid plan covering all relations,
//  2. all modes compute exactly the same query result (checksums agree),
//  3. bitvector filters never change results across filter implementations,
//  4. the executed plan's intermediate sizes match ExactCoutModel's claim
//     (costing and execution cannot diverge — they share the plan).
#include <gtest/gtest.h>

#include "src/exec/exact_cost.h"
#include "src/exec/executor.h"
#include "src/optimizer/optimizer.h"
#include "src/plan/pushdown.h"
#include "test_util.h"

namespace bqo {
namespace {

struct FuzzCase {
  uint64_t seed;
};

/// Builds a random galaxy: 1-2 facts, shared + private dims, some chains,
/// occasionally a non-PKFK attr join.
std::unique_ptr<testing::TestDb> MakeRandomDb(uint64_t seed) {
  auto db = std::make_unique<testing::TestDb>();
  Rng rng(seed * 7919 + 13);

  const int num_dims = 2 + static_cast<int>(rng.Uniform(4));
  std::vector<std::string> dims;
  for (int d = 0; d < num_dims; ++d) {
    TableGenSpec spec;
    spec.name = StringFormat("dim%d", d);
    spec.rows = 30 + static_cast<int64_t>(rng.Uniform(400));
    GenerateTable(&db->catalog, spec, &rng);
    dims.push_back(spec.name);
  }
  // Half of the dims may grow a child (snowflake level 2).
  std::vector<std::string> subs(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    if (!rng.Bernoulli(0.4)) continue;
    TableGenSpec spec;
    spec.name = dims[d] + "_sub";
    spec.rows = 20 + static_cast<int64_t>(rng.Uniform(100));
    GenerateTable(&db->catalog, spec, &rng);
    // Parent references child (parent -> child is the PKFK direction).
    // Regenerate parent with an FK is awkward; instead declare the child
    // as referenced via a fresh FK column added at generation time is not
    // supported, so we model the chain by joining on the child's key from
    // the parent's attr0 domain — instead, keep it simple: child joins
    // parent on parent's pk (parent referenced by child: child -> parent).
    subs[d] = spec.name;
  }
  const int num_facts = 1 + static_cast<int>(rng.Uniform(2));
  for (int f = 0; f < num_facts; ++f) {
    TableGenSpec spec;
    spec.name = StringFormat("fact%d", f);
    spec.rows = 2000 + static_cast<int64_t>(rng.Uniform(6000));
    spec.with_pk = false;
    for (size_t d = 0; d < dims.size(); ++d) {
      spec.fks.push_back(FkSpec{dims[d] + "_fk", dims[d], dims[d] + "_id",
                                0.8 * rng.NextDouble(),
                                rng.Bernoulli(0.2) ? 0.1 : 0.0});
    }
    GenerateTable(&db->catalog, spec, &rng);
  }

  // Query: one or both facts, a random subset of dims each, predicates.
  QuerySpec& spec = db->spec;
  spec.name = StringFormat("fuzz_%llu", static_cast<unsigned long long>(seed));
  for (int f = 0; f < num_facts; ++f) {
    spec.relations.push_back(
        {StringFormat("fact%d", f), StringFormat("fact%d", f), nullptr});
  }
  int dims_used = 0;
  for (size_t d = 0; d < dims.size(); ++d) {
    if (!rng.Bernoulli(0.8)) continue;
    ++dims_used;
    ExprPtr pred;
    if (rng.Bernoulli(0.7)) {
      const int64_t bound = 5 + static_cast<int64_t>(rng.Uniform(800));
      pred = Lt("attr0", bound);
    }
    spec.relations.push_back({dims[d], dims[d], pred});
    for (int f = 0; f < num_facts; ++f) {
      if (f > 0 && !rng.Bernoulli(0.6)) continue;
      spec.joins.push_back({StringFormat("fact%d", f), dims[d] + "_fk",
                            dims[d], dims[d] + "_id"});
    }
    if (!subs[d].empty() && rng.Bernoulli(0.6)) {
      // Chain below the dimension: sub references dim (sub -> dim), so the
      // edge's unique side is the dimension.
      spec.relations.push_back({subs[d], subs[d], nullptr});
      spec.joins.push_back({subs[d], "attr0", dims[d], "attr1"});
    }
  }
  if (dims_used == 0) {
    spec.relations.push_back({dims[0], dims[0], nullptr});
    spec.joins.push_back(
        {"fact0", dims[0] + "_fk", dims[0], dims[0] + "_id"});
    dims_used = 1;
  }
  // Guarantee connectivity: every fact joins at least one used dimension.
  for (int f = 0; f < num_facts; ++f) {
    const std::string fname = StringFormat("fact%d", f);
    bool joined = false;
    for (const auto& j : spec.joins) {
      if (j.left_alias == fname || j.right_alias == fname) joined = true;
    }
    if (!joined) {
      for (const auto& r : spec.relations) {
        if (r.alias.rfind("dim", 0) == 0 &&
            r.alias.find("_sub") == std::string::npos) {
          spec.joins.push_back(
              {fname, r.alias + "_fk", r.alias, r.alias + "_id"});
          break;
        }
      }
    }
  }
  return db;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, AllModesAgreeAndCostingMatchesExecution) {
  auto db = MakeRandomDb(GetParam());
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok()) << graph_result.status().ToString();
  const JoinGraph& graph = graph_result.value();
  if (!graph.IsConnected(graph.AllRels())) {
    GTEST_SKIP() << "generated a disconnected query";
  }
  StatsCatalog stats(&db->catalog);

  uint64_t checksum = 0;
  bool first = true;
  for (OptimizerMode mode :
       {OptimizerMode::kBaselinePostProcess, OptimizerMode::kBqoShallow,
        OptimizerMode::kAlternativePlan}) {
    OptimizerOptions options;
    options.mode = mode;
    OptimizedQuery q = OptimizeQuery(graph, &stats, options);
    ASSERT_TRUE(q.plan.Validate()) << OptimizerModeName(mode);
    ASSERT_EQ(q.plan.root->rel_set, graph.AllRels());

    const QueryMetrics m = ExecutePlan(q.plan);
    if (first) {
      checksum = m.result_checksum;
      first = false;
    } else {
      ASSERT_EQ(m.result_checksum, checksum) << OptimizerModeName(mode);
    }
  }

  // Costing vs execution consistency, including with pruned filters.
  OptimizerOptions options;
  options.mode = OptimizerMode::kBqoShallow;
  OptimizedQuery q = OptimizeQuery(graph, &stats, options);
  ExactCoutModel exact;
  const CoutBreakdown claimed = exact.Compute(q.plan);
  ExecutionOptions exec;
  exec.filter_config.kind = FilterKind::kExact;
  const QueryMetrics m = ExecutePlan(q.plan, exec);
  double executed_total = 0;
  for (const auto& op : m.operators) {
    if (op.type != OperatorType::kAggregate) {
      executed_total += static_cast<double>(op.rows_out);
    }
  }
  EXPECT_DOUBLE_EQ(executed_total, claimed.total);
}

TEST_P(FuzzTest, FilterImplementationsNeverChangeResults) {
  auto db = MakeRandomDb(GetParam() + 1000);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  if (!graph.IsConnected(graph.AllRels())) {
    GTEST_SKIP() << "generated a disconnected query";
  }
  StatsCatalog stats(&db->catalog);
  OptimizerOptions options;
  OptimizedQuery q = OptimizeQuery(graph, &stats, options);

  uint64_t checksum = 0;
  bool first = true;
  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    ExecutionOptions exec;
    exec.filter_config.kind = kind;
    exec.filter_config.bloom_bits_per_key = 6.0;  // deliberately leaky
    const QueryMetrics m = ExecutePlan(q.plan, exec);
    if (first) {
      checksum = m.result_checksum;
      first = false;
    } else {
      ASSERT_EQ(m.result_checksum, checksum) << FilterKindName(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace bqo

// End-to-end observability (src/obs): metrics registry units, trace span
// trees, and the EXPLAIN ANALYZE estimate-vs-actual report. The load-bearing
// pins:
//
//  * Trace *structure* and per-operator/per-filter actuals are pool-size-
//    invariant (pool {1,2,4} at a fixed per-query worker share) and
//    BuildCache-hit-invariant (as-if-built stat replay) — observability
//    never reports different numbers because of scheduling.
//  * A fault-struck query still produces a well-formed trace: sealed, open
//    spans closed as truncated, final status recorded — and lands in
//    exactly one outcome counter.
//  * The registry's hot path is exact under concurrency (no torn or lost
//    counts), and both export formats are well-formed.
//
// Runs under -DBQO_SANITIZE=thread in CI (the obs-smoke job).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/obs/explain.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/server/query_service.h"
#include "src/server/worker_pool.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeStarDb;
using ::bqo::testing::TestDb;

struct GlobalPoolGuard {
  ~GlobalPoolGuard() { WorkerPool::ResetGlobal(0); }
};

struct FaultGuard {
  ~FaultGuard() { FaultInjector::Global().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// MetricsRegistry units
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("bqo_test_total");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->Value(), 5);
  EXPECT_EQ(reg.GetCounter("bqo_test_total"), c) << "stable pointers";

  Gauge* g = reg.GetGauge("bqo_test_level");
  g->Set(42);
  EXPECT_EQ(g->Value(), 42);

  Histogram* h = reg.GetHistogram("bqo_test_ms", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.0);  // le convention: lands in the <= 1.0 bucket
  h->Observe(1.5);
  h->Observe(5.0);  // +Inf bucket
  const std::vector<int64_t> buckets = h->CumulativeBuckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 3);
  EXPECT_EQ(buckets[2], 4);
  EXPECT_EQ(h->Count(), 4);
  EXPECT_DOUBLE_EQ(h->Sum(), 8.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("bqo_concurrent_total");
  Histogram* h = reg.GetHistogram("bqo_concurrent_ms", {10.0});
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        h->Observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kIters);
  EXPECT_EQ(h->Count(), int64_t{kThreads} * kIters);
  EXPECT_DOUBLE_EQ(h->Sum(), static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(h->CumulativeBuckets().back(), int64_t{kThreads} * kIters);
}

TEST(MetricsRegistry, ExportFormatsAreWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("bqo_b_total")->Increment(7);
  reg.GetGauge("bqo_a_level")->Set(3);
  reg.GetHistogram("bqo_c_ms", {1.0, 8.0})->Observe(2.0);

  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // std::map keying => name-sorted, deterministic export order.
  EXPECT_EQ(snap[0].name, "bqo_a_level");
  EXPECT_EQ(snap[1].name, "bqo_b_total");
  EXPECT_EQ(snap[2].name, "bqo_c_ms");

  const std::string json = MetricsRegistry::ToJsonLines(snap);
  EXPECT_NE(json.find("{\"metric\":\"bqo_b_total\",\"type\":\"counter\","
                      "\"value\":7}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"inf\""), std::string::npos);

  const std::string prom = MetricsRegistry::ToPrometheusText(snap);
  EXPECT_NE(prom.find("# TYPE bqo_b_total counter"), std::string::npos);
  EXPECT_NE(prom.find("bqo_b_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE bqo_c_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find("bqo_c_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("bqo_c_ms_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// QueryTrace units
// ---------------------------------------------------------------------------

TEST(QueryTrace, SpanNestingAndCleanSeal) {
  QueryTrace trace;
  const int root = trace.BeginSpan(SpanKind::kQuery, "q");
  {
    ScopedSpan child(&trace, SpanKind::kOptimize, "optimize");
    EXPECT_GE(child.id(), 0);
  }
  const int post = trace.AddCompletedSpan(SpanKind::kOperator, "scan f",
                                          /*parent=*/-1, 100, 50, 25);
  trace.EndSpan(root);
  trace.Seal(true, "OK");

  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[static_cast<size_t>(post)].parent, root)
      << "parent<0 parents under the innermost open span";
  EXPECT_EQ(spans[static_cast<size_t>(post)].wall_ns, 100);
  EXPECT_EQ(spans[static_cast<size_t>(post)].worker_cpu_ns, 25);
  for (const TraceSpan& s : spans) EXPECT_FALSE(s.truncated);
  EXPECT_TRUE(trace.complete());
}

TEST(QueryTrace, SealMarksOpenSpansTruncated) {
  QueryTrace trace;
  trace.BeginSpan(SpanKind::kQuery, "q");
  trace.BeginSpan(SpanKind::kExecute, "execute");
  trace.Seal(false, "INTERNAL: injected fault");
  trace.Seal(true, "second call loses");  // idempotent: first call wins

  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].truncated);
  EXPECT_TRUE(spans[1].truncated);
  EXPECT_FALSE(trace.complete());
  EXPECT_TRUE(trace.sealed());
  EXPECT_EQ(trace.status_message(), "INTERNAL: injected fault");
  EXPECT_NE(trace.ToString().find("trace truncated"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service-level traces, EXPLAIN ANALYZE, and their invariance
// ---------------------------------------------------------------------------

/// (kind, name, parent) triples — the trace's structure, timing excluded.
std::vector<std::tuple<int, std::string, int>> SpanShape(
    const std::vector<TraceSpan>& spans) {
  std::vector<std::tuple<int, std::string, int>> out;
  out.reserve(spans.size());
  for (const TraceSpan& s : spans) {
    out.emplace_back(static_cast<int>(s.kind), s.name, s.parent);
  }
  return out;
}

/// The counter (non-timing) columns of the executed operators, in
/// CollectStats order.
std::vector<std::tuple<int, std::string, int64_t, int64_t, int64_t, int64_t>>
OperatorActuals(const QueryMetrics& m) {
  std::vector<std::tuple<int, std::string, int64_t, int64_t, int64_t, int64_t>>
      out;
  for (const OperatorStats& op : m.operators) {
    out.emplace_back(op.plan_node_id, op.label, op.rows_out,
                     op.rows_prefilter, op.probe_rows_in,
                     op.probe_rows_matched);
  }
  return out;
}

QueryServiceOptions StarServiceOptions() {
  QueryServiceOptions options;
  // threads == 1 would compile a different (exchange-free) plan, so the
  // invariance sweep fixes the worker share at 2 and varies only the pool:
  // pool size changes which OS threads run tasks, never the plan or the
  // merged counters.
  options.execution.exec.threads = 2;
  options.max_concurrent_queries = 2;
  options.max_workers_per_query = 2;
  options.explain_analyze = true;
  return options;
}

TEST(Observability, TraceShapeAndActualsArePoolSizeInvariant) {
  GlobalPoolGuard guard;
  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);
  const QueryServiceOptions options = StarServiceOptions();

  std::vector<std::tuple<int, std::string, int>> cold_shape, warm_shape;
  std::vector<std::tuple<int, std::string, int64_t, int64_t, int64_t,
                         int64_t>>
      cold_actuals;
  bool first = true;
  for (int pool : {1, 2, 4}) {
    WorkerPool::ResetGlobal(pool);
    QueryService service(&db->catalog, options);

    const QueryResult cold = service.Execute(db->spec);
    ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
    ASSERT_NE(cold.trace, nullptr);
    EXPECT_TRUE(cold.trace->complete()) << cold.trace->ToString();
    EXPECT_FALSE(cold.plan_cache_hit);

    const QueryResult warm = service.Execute(db->spec);
    ASSERT_TRUE(warm.status.ok());
    ASSERT_NE(warm.trace, nullptr);
    EXPECT_TRUE(warm.plan_cache_hit);
    EXPECT_FALSE(warm.plan_rebound) << "identical constants: exact hit";

    const std::string what = "pool=" + std::to_string(pool);
    if (first) {
      cold_shape = SpanShape(cold.trace->spans());
      warm_shape = SpanShape(warm.trace->spans());
      cold_actuals = OperatorActuals(cold.metrics);
      // Sanity on the cold shape itself: a query root, an optimize span
      // (miss path), an execute span, and per-operator aggregates.
      int optimize = 0, execute = 0, operators = 0, builds = 0;
      for (const TraceSpan& s : cold.trace->spans()) {
        optimize += s.kind == SpanKind::kOptimize;
        execute += s.kind == SpanKind::kExecute;
        operators += s.kind == SpanKind::kOperator;
        builds += s.kind == SpanKind::kBuild;
      }
      EXPECT_EQ(optimize, 1);
      EXPECT_EQ(execute, 1);
      EXPECT_EQ(builds, 3) << "one build per star dimension";
      EXPECT_GE(operators, 7) << "3 joins + 4 scans at least";
      first = false;
    } else {
      EXPECT_EQ(SpanShape(cold.trace->spans()), cold_shape) << what;
      EXPECT_EQ(SpanShape(warm.trace->spans()), warm_shape) << what;
      EXPECT_EQ(OperatorActuals(cold.metrics), cold_actuals) << what;
    }
    EXPECT_EQ(OperatorActuals(warm.metrics), OperatorActuals(cold.metrics))
        << what << ": plan-cache hit must not change executed actuals";
  }
}

TEST(Observability, ActualsAndExplainAreBuildCacheInvariant) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);
  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);

  auto run_pair = [&](bool use_build_cache) {
    QueryServiceOptions options = StarServiceOptions();
    options.use_build_cache = use_build_cache;
    QueryService service(&db->catalog, options);
    const QueryResult cold = service.Execute(db->spec);
    const QueryResult hit = service.Execute(db->spec);
    EXPECT_TRUE(cold.status.ok());
    EXPECT_TRUE(hit.status.ok());
    return std::make_pair(cold, hit);
  };

  const auto [on_cold, on_hit] = run_pair(true);
  const auto [off_cold, off_hit] = run_pair(false);

  // The build-cache hit replays as-if-built stats; probe-side counters are
  // always live. Actuals must be identical in all four cells.
  const auto base = OperatorActuals(off_cold.metrics);
  EXPECT_EQ(OperatorActuals(off_hit.metrics), base);
  EXPECT_EQ(OperatorActuals(on_cold.metrics), base);
  EXPECT_EQ(OperatorActuals(on_hit.metrics), base)
      << "shared build must replay as-if-built operator stats";

  // kOperator span subset: identical across cache on/off and hit/miss
  // (live build spans legitimately differ — a hit has no kBuild span).
  // Parent ids are normalized to the subset (-1 = parented outside it)
  // since the number of preceding live spans shifts with the cache path.
  auto operator_spans = [](const QueryResult& r) {
    std::vector<std::pair<int, std::string>> out;
    std::map<int, int> subset_index;
    for (const TraceSpan& s : r.trace->spans()) {
      if (s.kind != SpanKind::kOperator) continue;
      subset_index[s.id] = static_cast<int>(out.size());
      const auto parent = subset_index.find(s.parent);
      out.emplace_back(
          parent != subset_index.end() ? parent->second : -1, s.name);
    }
    return out;
  };
  const auto op_base = operator_spans(off_cold);
  EXPECT_EQ(operator_spans(off_hit), op_base);
  EXPECT_EQ(operator_spans(on_cold), op_base);
  EXPECT_EQ(operator_spans(on_hit), op_base);

  // EXPLAIN rows: estimate and actual columns identical in all four cells.
  auto explain_rows = [](const QueryResult& r) {
    std::vector<std::tuple<int, double, double, int64_t, int64_t>> ops;
    EXPECT_NE(r.explain, nullptr);
    for (const OperatorExplainRow& op : r.explain->operators) {
      ops.emplace_back(op.node_id, op.est_rows, op.est_prefilter,
                       op.actual_rows, op.actual_prefilter);
    }
    return ops;
  };
  const auto explain_base = explain_rows(off_cold);
  EXPECT_EQ(explain_rows(off_hit), explain_base);
  EXPECT_EQ(explain_rows(on_cold), explain_base);
  EXPECT_EQ(explain_rows(on_hit), explain_base);
}

TEST(Observability, ExplainAnalyzeReportsEstimatesActualsAndFilterFpr) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);
  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);
  QueryService service(&db->catalog, StarServiceOptions());

  const QueryResult r = service.Execute(db->spec);
  ASSERT_TRUE(r.status.ok());
  ASSERT_NE(r.explain, nullptr);
  const ExplainReport& report = *r.explain;

  EXPECT_EQ(report.query_name, db->spec.name);
  EXPECT_EQ(report.result_rows, r.metrics.result_rows);
  EXPECT_GT(report.estimated_cost, 0);
  ASSERT_GE(report.operators.size(), 7u) << "3 joins + 4 scans";
  EXPECT_EQ(report.operators[0].depth, 0);
  EXPECT_FALSE(report.operators[0].is_leaf) << "preorder: root join first";
  int leaves = 0;
  for (const OperatorExplainRow& op : report.operators) {
    EXPECT_GE(op.node_id, 0);
    EXPECT_FALSE(op.label.empty());
    EXPECT_GT(op.est_rows, 0) << op.label;
    EXPECT_GT(op.actual_rows, 0) << op.label;
    EXPECT_GE(op.actual_prefilter, op.actual_rows) << op.label;
    leaves += op.is_leaf;
  }
  EXPECT_EQ(leaves, 4);

  ASSERT_FALSE(report.filters.empty());
  bool any_created = false, any_measured = false;
  for (const FilterExplainRow& f : report.filters) {
    if (!f.created) continue;
    any_created = true;
    EXPECT_EQ(f.kind, "bloom") << "default FilterConfig kind";
    EXPECT_GT(f.est_lambda, 0.0);
    EXPECT_LE(f.est_lambda, 1.0);
    EXPECT_GE(f.observed_lambda, 0.0);
    EXPECT_LE(f.observed_lambda, 1.0);
    // Classical Bloom at 10 bits/key models ~1% FPR.
    EXPECT_GT(f.modeled_fpr, 0.0);
    EXPECT_LT(f.modeled_fpr, 0.05);
    EXPECT_GT(f.inserted, 0);
    EXPECT_GT(f.probed, 0);
    if (f.has_measured_fpr) {
      any_measured = true;
      EXPECT_GE(f.measured_fpr, 0.0);
      EXPECT_LE(f.measured_fpr, 1.0);
    }
  }
  EXPECT_TRUE(any_created);
  EXPECT_TRUE(any_measured)
      << "selective dimensions must yield a measured FPR";

  const std::string text = RenderExplainAnalyze(report);
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("est rows"), std::string::npos);
  EXPECT_NE(text.find("modeled FPR"), std::string::npos);
  EXPECT_NE(text.find("trace:"), std::string::npos)
      << "span tree rides along when tracing is on";
}

TEST(Observability, FaultStruckQueryYieldsTruncatedTraceAndOneFailure) {
  GlobalPoolGuard guard;
  FaultGuard fault_guard;
  WorkerPool::ResetGlobal(2);
  auto db = MakeStarDb(2, 12000, 250, {0.4, 0.25}, 433, /*zipf=*/0.5);
  QueryService service(&db->catalog, StarServiceOptions());

  FaultInjector::Global().Arm(FaultInjector::Site::kPlanCacheLookup,
                              /*every=*/1);
  const QueryResult r = service.Execute(db->spec);
  EXPECT_TRUE(r.status.IsInternal()) << r.status.ToString();

  ASSERT_NE(r.trace, nullptr);
  EXPECT_TRUE(r.trace->sealed());
  EXPECT_FALSE(r.trace->complete());
  const std::vector<TraceSpan> spans = r.trace->spans();
  ASSERT_FALSE(spans.empty());
  bool any_truncated = false;
  for (const TraceSpan& s : spans) {
    EXPECT_GE(s.parent, -1);
    EXPECT_LT(s.parent, s.id) << "parents precede children";
    any_truncated = any_truncated || s.truncated;
  }
  EXPECT_TRUE(any_truncated) << "the unwound query span must be truncated";
  EXPECT_NE(r.trace->status_message().find("injected fault"),
            std::string::npos);
  EXPECT_EQ(r.explain, nullptr) << "no report for a void execution";

  FaultInjector::Global().DisarmAll();
  const QueryResult ok = service.Execute(db->spec);
  EXPECT_TRUE(ok.status.ok());
  EXPECT_TRUE(ok.trace->complete());

  const ServingStats s = service.serving_stats();
  EXPECT_EQ(s.failed, 1);
  EXPECT_EQ(s.served, 1);
  EXPECT_EQ(s.Total(), 2);
}

TEST(Observability, SlowQueryLogAndMetricsDump) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);
  auto db = MakeStarDb(2, 12000, 250, {0.4, 0.25}, 433, /*zipf=*/0.5);
  QueryServiceOptions options = StarServiceOptions();
  options.slow_query_ms = 0;  // log every finished query (deterministic)
  std::vector<std::string> logged;
  options.slow_query_sink = [&](const std::string& s) { logged.push_back(s); };
  QueryService service(&db->catalog, options);

  ASSERT_TRUE(service.Execute(db->spec).status.ok());
  ASSERT_TRUE(service.Execute(db->spec).status.ok());
  ASSERT_EQ(logged.size(), 2u);
  EXPECT_NE(logged[0].find("[slow query] " + db->spec.name),
            std::string::npos)
      << logged[0];
  EXPECT_NE(logged[0].find("status OK"), std::string::npos);
  EXPECT_NE(logged[0].find("[query]"), std::string::npos)
      << "span tree attached: " << logged[0];
  EXPECT_NE(logged[1].find("plan cache hit"), std::string::npos);

  const std::string json = service.DumpMetrics();
  EXPECT_NE(json.find("\"metric\":\"bqo_serving_served_total\",\"type\":"
                      "\"counter\",\"value\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("bqo_serving_slow_queries_total"), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"bqo_plan_cache_hits\",\"type\":\"gauge\","
                      "\"value\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("bqo_query_latency_ms"), std::string::npos);

  const std::string prom =
      service.DumpMetrics(QueryService::MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("# TYPE bqo_serving_served_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("bqo_serving_served_total 2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE bqo_query_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("bqo_query_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("bqo_build_cache_lookups"), std::string::npos);
  EXPECT_NE(prom.find("bqo_admission_peak"), std::string::npos);
}

TEST(Observability, TracingOffProducesNoTraceButServingStatsStillCount) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);
  auto db = MakeStarDb(2, 12000, 250, {0.4, 0.25}, 433, /*zipf=*/0.5);
  QueryServiceOptions options = StarServiceOptions();
  options.collect_traces = false;
  QueryService service(&db->catalog, options);

  const QueryResult r = service.Execute(db->spec);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.trace, nullptr);
  ASSERT_NE(r.explain, nullptr) << "EXPLAIN works without a trace";
  EXPECT_TRUE(r.explain->spans.empty());
  EXPECT_EQ(service.serving_stats().served, 1);
}

TEST(Observability, ServingEnvOverridesCoverTraceAndSlowQueryKnobs) {
  ::setenv("BQO_TRACE", "off", 1);
  ::setenv("BQO_SLOW_QUERY_MS", "0", 1);
  const QueryServiceOptions options =
      ApplyServingEnvOverrides(QueryServiceOptions{});
  ::unsetenv("BQO_TRACE");
  ::unsetenv("BQO_SLOW_QUERY_MS");
  EXPECT_FALSE(options.collect_traces);
  EXPECT_EQ(options.slow_query_ms, 0);
  const QueryServiceOptions defaults =
      ApplyServingEnvOverrides(QueryServiceOptions{});
  EXPECT_TRUE(defaults.collect_traces);
  EXPECT_EQ(defaults.slow_query_ms, -1);
}

}  // namespace
}  // namespace bqo

// Sanity of the statistics-based Cout model: the estimates the optimizer
// plans with should track exact cardinalities on clean PKFK data, and the
// semi-join/join interaction must not double-count reductions.
#include <gtest/gtest.h>

#include "src/exec/exact_cost.h"
#include "src/plan/pushdown.h"
#include "src/stats/estimated_cost.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeStarDb;

class EstimatedCoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeStarDb(3, 5000, 200, {0.2, 0.5, -1.0}, 99);
    auto graph = db_->Graph();
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<JoinGraph>(std::move(graph.value()));
    stats_ = std::make_unique<StatsCatalog>(&db_->catalog);
  }

  std::unique_ptr<testing::TestDb> db_;
  std::unique_ptr<JoinGraph> graph_;
  std::unique_ptr<StatsCatalog> stats_;
};

TEST_F(EstimatedCoutTest, AttachStatisticsComputesExactBaseCards) {
  // Relation 0 is the fact (no predicate): filtered == base.
  EXPECT_DOUBLE_EQ(graph_->relation(0).filtered_rows, 5000.0);
  // d0 has selectivity 0.2 over attr0 uniform [0,1000).
  EXPECT_NEAR(graph_->relation(1).filtered_rows, 0.2 * 200, 25);
  // d2 has no predicate.
  EXPECT_DOUBLE_EQ(graph_->relation(3).filtered_rows, 200.0);
}

TEST_F(EstimatedCoutTest, EstimateTracksExactWithinFactor) {
  EstimatedCoutModel est(stats_.get());
  ExactCoutModel exact;
  for (const auto& order :
       {std::vector<int>{0, 1, 2, 3}, std::vector<int>{1, 0, 2, 3},
        std::vector<int>{3, 0, 1, 2}}) {
    Plan plan = BuildRightDeepPlan(*graph_, order);
    PushDownBitvectors(&plan);
    const double e = est.Cout(plan);
    const double x = exact.Cout(plan);
    EXPECT_GT(e, 0.3 * x);
    EXPECT_LT(e, 3.0 * x);
  }
}

TEST_F(EstimatedCoutTest, NoDoubleCountingOfFilterAndJoin) {
  // With the fact right-most all dimension filters hit the fact scan; the
  // subsequent PKFK joins must keep cardinality flat, not shrink it again.
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  EstimatedCoutModel est(stats_.get());
  const CoutBreakdown b = est.Compute(plan);
  double fact_leaf = -1;
  std::vector<double> joins;
  for (const PlanNode* n : plan.nodes) {
    if (n->IsLeaf() && n->relation == 0) {
      fact_leaf = b.node_output[static_cast<size_t>(n->id)];
    } else if (n->kind == PlanNode::Kind::kJoin) {
      joins.push_back(b.node_output[static_cast<size_t>(n->id)]);
    }
  }
  ASSERT_GT(fact_leaf, 0);
  for (double j : joins) {
    EXPECT_NEAR(j, fact_leaf, 0.15 * fact_leaf);
  }
}

TEST_F(EstimatedCoutTest, FilterLambdaTracksDimensionSelectivity) {
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  EstimatedCoutModel est(stats_.get());
  const CoutBreakdown b = est.Compute(plan);
  // The filter built from d0 (selectivity 0.2) should eliminate ~80% of the
  // fact rows it sees; the unfiltered d2's filter eliminates ~0.
  double best_lambda = 0, worst_lambda = 1;
  for (const PlanFilter& f : plan.filters) {
    const double l = b.filter_lambda[static_cast<size_t>(f.id)];
    best_lambda = std::max(best_lambda, l);
    worst_lambda = std::min(worst_lambda, l);
  }
  EXPECT_GT(best_lambda, 0.6);
  EXPECT_LT(worst_lambda, 0.1);
}

TEST_F(EstimatedCoutTest, FalsePositiveRateRaisesEstimates) {
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  EstimatedCoutModel perfect(stats_.get(), 0.0);
  EstimatedCoutModel leaky(stats_.get(), 0.1);
  EXPECT_GT(leaky.Cout(plan), perfect.Cout(plan));
}

TEST_F(EstimatedCoutTest, PrunedFiltersAreIgnored) {
  Plan plan = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  EstimatedCoutModel est(stats_.get());
  const double with_all = est.Cout(plan);
  for (PlanFilter& f : plan.filters) f.pruned = true;
  const double with_none = est.Cout(plan);
  EXPECT_GT(with_none, with_all);
  // Pruned-everything must equal the unannotated plan's cost.
  Plan bare = BuildRightDeepPlan(*graph_, {0, 1, 2, 3});
  ClearBitvectors(&bare);
  EXPECT_DOUBLE_EQ(with_none, est.Cout(bare));
}

}  // namespace
}  // namespace bqo

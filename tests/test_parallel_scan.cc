// Morsel-parallel scan correctness: for every filter kind (including an
// overflowed cuckoo), a scan drained by N exchange workers must produce the
// same result multiset and the same merged FilterStats/OperatorStats as the
// single-threaded scan — parallelism is pure performance (and the per-worker
// accumulate + merge-at-Close discipline keeps the counters exact; see
// metrics.h). Run under -DBQO_SANITIZE=thread in CI to pin race-freedom.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/exec/exchange.h"
#include "src/exec/executor.h"
#include "src/exec/scan.h"
#include "src/filter/bloom_filter.h"
#include "src/filter/cuckoo_filter.h"
#include "src/filter/exact_filter.h"
#include "src/plan/pushdown.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeStarDb;

struct ManualScanResult {
  std::vector<std::vector<int64_t>> rows;  ///< sorted lexicographically
  FilterStats filter_stats;
  int64_t rows_prefilter = 0;
  int64_t rows_out = 0;
};

/// Drain `table` through a ScanOperator probing `filter` on `key_column`,
/// behind an exchange when threads > 1. Exercises exactly the compile shape
/// ExecutePlan uses for leaves.
ManualScanResult RunManualScan(const Table* table,
                               std::unique_ptr<BitvectorFilter> filter,
                               const std::string& key_column, int threads) {
  FilterRuntime runtime;
  runtime.slots.resize(1);
  runtime.stats.assign(1, FilterStats{});
  runtime.stats[0].filter_id = 0;
  runtime.slots[0] = std::move(filter);

  ResolvedFilter rf;
  rf.filter_id = 0;
  rf.key_positions.push_back(table->ColumnIndex(key_column));
  OutputSchema schema({BoundColumn{0, key_column}, BoundColumn{0, "measure"}});

  auto scan = std::make_unique<ScanOperator>(
      table, nullptr, schema, std::vector<ResolvedFilter>{rf}, &runtime,
      "scan t");
  ScanOperator* scan_raw = scan.get();
  std::unique_ptr<PhysicalOperator> op;
  if (threads > 1) {
    ExecConfig config;
    config.threads = threads;
    config.morsel_rows = 4096;  // several morsels per worker at test sizes
    op = std::make_unique<ExchangeOperator>(std::move(scan), config, "xchg t");
  } else {
    op = std::move(scan);
  }

  ManualScanResult result;
  op->Open();
  Batch batch;
  while (op->Next(&batch)) {
    for (int r = 0; r < batch.num_rows; ++r) {
      result.rows.push_back({batch.col(0)[r], batch.col(1)[r]});
    }
  }
  op->Close();
  std::sort(result.rows.begin(), result.rows.end());
  result.filter_stats = runtime.stats[0];
  result.rows_prefilter = scan_raw->stats().rows_prefilter;
  result.rows_out = scan_raw->stats().rows_out;
  return result;
}

class ParallelScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeStarDb(1, 50000, 500, {-1.0}, 4242, /*zipf=*/0.5);
    fact_ = db_->catalog.GetTable("f").value();
  }

  /// Filter admitting ~half the FK domain (built from the composite hashes
  /// the scan probes with), fresh per run so stats never leak across runs.
  std::unique_ptr<BitvectorFilter> MakeHalfDomainFilter(FilterKind kind) {
    FilterConfig config;
    config.kind = kind;
    auto filter = CreateFilter(config, 250);
    for (int64_t v = 0; v < 500; v += 2) {
      filter->Insert(HashComposite(&v, 1));
    }
    return filter;
  }

  /// A cuckoo filter driven into overflowed_ (it then admits everything).
  std::unique_ptr<BitvectorFilter> MakeOverflowedCuckoo() {
    auto filter = std::make_unique<CuckooFilter>(16, 8);
    Rng rng(17);
    for (int i = 0; i < 5000; ++i) filter->Insert(rng.Next());
    BQO_CHECK(filter->overflowed());
    return filter;
  }

  std::unique_ptr<testing::TestDb> db_;
  const Table* fact_ = nullptr;
};

TEST_F(ParallelScanTest, ThreadedScanMatchesSingleThreadAllKinds) {
  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    const ManualScanResult base =
        RunManualScan(fact_, MakeHalfDomainFilter(kind), "d0_fk", 1);
    ASSERT_GT(base.rows_out, 0) << FilterKindName(kind);
    ASSERT_LT(base.rows_out, base.rows_prefilter) << FilterKindName(kind);
    for (int threads : {2, 4}) {
      const ManualScanResult par =
          RunManualScan(fact_, MakeHalfDomainFilter(kind), "d0_fk", threads);
      EXPECT_EQ(par.rows, base.rows)
          << FilterKindName(kind) << " threads=" << threads;
      // Merged stats must equal the single-threaded counts exactly (the
      // probe/pass sets are partition-invariant; only probe_batches may
      // differ with morsel boundaries).
      EXPECT_EQ(par.filter_stats.probed, base.filter_stats.probed);
      EXPECT_EQ(par.filter_stats.passed, base.filter_stats.passed);
      EXPECT_EQ(par.rows_prefilter, base.rows_prefilter);
      EXPECT_EQ(par.rows_out, base.rows_out);
    }
  }
}

TEST_F(ParallelScanTest, OverflowedCuckooPassesEverythingUnderThreads) {
  const ManualScanResult base =
      RunManualScan(fact_, MakeOverflowedCuckoo(), "d0_fk", 1);
  // Overflowed filter admits everything: output == full selection.
  EXPECT_EQ(base.rows_out, fact_->num_rows());
  EXPECT_EQ(base.filter_stats.passed, base.filter_stats.probed);
  const ManualScanResult par =
      RunManualScan(fact_, MakeOverflowedCuckoo(), "d0_fk", 4);
  EXPECT_EQ(par.rows, base.rows);
  EXPECT_EQ(par.filter_stats.probed, base.filter_stats.probed);
  EXPECT_EQ(par.filter_stats.passed, base.filter_stats.passed);
}

/// End-to-end: ExecutePlan with exec.threads in {1, 4} must agree on result
/// rows, the order-independent checksum, and every filter's merged counters,
/// for all three filter kinds.
TEST(ParallelExecTest, PlanResultsAndFilterStatsMatchSingleThread) {
  auto db = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 77, /*zipf=*/0.6);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3});
  PushDownBitvectors(&plan);

  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    ExecutionOptions single;
    single.filter_config.kind = kind;
    single.agg.kind = AggKind::kSum;
    single.agg.sum_column = BoundColumn{0, "measure"};
    const QueryMetrics base = ExecutePlan(plan, single);

    ExecutionOptions parallel = single;
    parallel.exec.threads = 4;
    parallel.exec.morsel_rows = 2048;
    const QueryMetrics m = ExecutePlan(plan, parallel);

    EXPECT_EQ(m.result_rows, base.result_rows) << FilterKindName(kind);
    EXPECT_EQ(m.result_checksum, base.result_checksum) << FilterKindName(kind);
    EXPECT_EQ(m.leaf_tuples, base.leaf_tuples) << FilterKindName(kind);
    EXPECT_EQ(m.join_tuples, base.join_tuples) << FilterKindName(kind);
    ASSERT_EQ(m.filters.size(), base.filters.size());
    for (size_t i = 0; i < m.filters.size(); ++i) {
      EXPECT_EQ(m.filters[i].probed, base.filters[i].probed)
          << FilterKindName(kind) << " filter " << i;
      EXPECT_EQ(m.filters[i].passed, base.filters[i].passed)
          << FilterKindName(kind) << " filter " << i;
      EXPECT_EQ(m.filters[i].inserted, base.filters[i].inserted)
          << FilterKindName(kind) << " filter " << i;
    }
  }
}

/// The exchange must also behave under tiny inputs: more workers than
/// morsels, and a single morsel spanning the whole selection.
TEST(ParallelExecTest, DegenerateShapes) {
  auto db = MakeStarDb(1, 300, 50, {0.5}, 99);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);

  ExecutionOptions single;
  const QueryMetrics base = ExecutePlan(plan, single);

  ExecutionOptions parallel;
  parallel.exec.threads = 8;           // far more workers than morsels
  parallel.exec.morsel_rows = 100000;  // one morsel takes everything
  const QueryMetrics m = ExecutePlan(plan, parallel);
  EXPECT_EQ(m.result_rows, base.result_rows);
  EXPECT_EQ(m.result_checksum, base.result_checksum);
}

}  // namespace
}  // namespace bqo

// Sort-merge join with bitvector filters: must agree exactly with the hash
// join on every topology, with and without filters (the paper's Section 2
// remark that the filter machinery adapts to merge joins).
#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/plan/pushdown.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeChainDb;
using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;

struct JoinAlgCase {
  int shape;  // 0 = star, 1 = chain, 2 = snowflake
  uint64_t seed;
};

class MergeJoinTest : public ::testing::TestWithParam<JoinAlgCase> {
 protected:
  static std::unique_ptr<testing::TestDb> Make(const JoinAlgCase& c) {
    switch (c.shape) {
      case 0:
        return MakeStarDb(3, 3000, 90, {0.25, 0.6, -1.0}, c.seed, 0.5);
      case 1:
        return MakeChainDb(4, 2500, 0.4, {-1, -1, -1, 0.2}, c.seed);
      default:
        return MakeSnowflakeDb({2, 1}, 2500, 70, 0.5, {0.2, 0.5}, c.seed);
    }
  }
};

TEST_P(MergeJoinTest, AgreesWithHashJoin) {
  auto db = Make(GetParam());
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  std::vector<int> order;
  for (int r = 0; r < graph.num_relations(); ++r) order.push_back(r);
  Plan plan = BuildRightDeepPlan(graph, order);
  PushDownBitvectors(&plan);

  ExecutionOptions hash_opts, merge_opts;
  merge_opts.use_sort_merge_join = true;
  merge_opts.agg.kind = AggKind::kSum;
  merge_opts.agg.sum_column = BoundColumn{0, "measure"};
  hash_opts.agg = merge_opts.agg;

  const QueryMetrics hj = ExecutePlan(plan, hash_opts);
  const QueryMetrics mj = ExecutePlan(plan, merge_opts);
  EXPECT_EQ(hj.result_checksum, mj.result_checksum);
  EXPECT_EQ(hj.join_tuples, mj.join_tuples);
  EXPECT_EQ(hj.leaf_tuples, mj.leaf_tuples);
}

TEST_P(MergeJoinTest, FiltersApplyIdentically) {
  auto db = Make(GetParam());
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  std::vector<int> order;
  for (int r = 0; r < graph.num_relations(); ++r) order.push_back(r);
  Plan plan = BuildRightDeepPlan(graph, order);
  PushDownBitvectors(&plan);

  ExecutionOptions hash_opts, merge_opts;
  hash_opts.filter_config.kind = FilterKind::kExact;
  merge_opts.filter_config.kind = FilterKind::kExact;
  merge_opts.use_sort_merge_join = true;

  const QueryMetrics hj = ExecutePlan(plan, hash_opts);
  const QueryMetrics mj = ExecutePlan(plan, merge_opts);
  ASSERT_EQ(hj.filters.size(), mj.filters.size());
  for (size_t i = 0; i < hj.filters.size(); ++i) {
    EXPECT_EQ(hj.filters[i].created, mj.filters[i].created);
    EXPECT_EQ(hj.filters[i].inserted, mj.filters[i].inserted);
    EXPECT_EQ(hj.filters[i].probed, mj.filters[i].probed);
    EXPECT_EQ(hj.filters[i].passed, mj.filters[i].passed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MergeJoinTest,
    ::testing::Values(JoinAlgCase{0, 1}, JoinAlgCase{0, 2},
                      JoinAlgCase{1, 3}, JoinAlgCase{1, 4},
                      JoinAlgCase{2, 5}, JoinAlgCase{2, 6}));

TEST(MergeJoin, ManyToManyCrossProductsWithinGroups) {
  testing::TestDb db;
  Rng rng(5);
  TableGenSpec dim;
  dim.name = "d";
  dim.rows = 20;
  dim.with_label = false;
  GenerateTable(&db.catalog, dim, &rng);
  for (const char* name : {"l", "r"}) {
    TableGenSpec f;
    f.name = name;
    f.rows = 500;
    f.with_pk = false;
    f.with_label = false;
    f.fks.push_back(FkSpec{"d_fk", "d", "d_id", 1.1, 0.0});  // heavy skew
    GenerateTable(&db.catalog, f, &rng);
  }
  db.spec.relations = {{"l", "l", nullptr}, {"r", "r", nullptr}};
  db.spec.joins = {{"l", "d_fk", "r", "d_fk"}};
  auto graph = db.Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);
  ExecutionOptions hash_opts, merge_opts;
  merge_opts.use_sort_merge_join = true;
  const QueryMetrics hj = ExecutePlan(plan, hash_opts);
  const QueryMetrics mj = ExecutePlan(plan, merge_opts);
  EXPECT_EQ(hj.join_tuples, mj.join_tuples);
  EXPECT_GT(mj.join_tuples, 500);  // real duplication happened
}

TEST(MergeJoin, EmptyInputs) {
  auto db = MakeStarDb(1, 200, 20, {0.5}, 7);
  db->spec.relations[1].predicate = Lt("attr0", -1);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);
  ExecutionOptions merge_opts;
  merge_opts.use_sort_merge_join = true;
  const QueryMetrics m = ExecutePlan(plan, merge_opts);
  EXPECT_EQ(m.join_tuples, 0);
}

}  // namespace
}  // namespace bqo

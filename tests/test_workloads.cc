// Workload generators: structural checks (every query binds, connects, and
// respects engine limits) plus end-to-end runner smoke tests verifying that
// baseline and BQO plans compute identical results on real workload queries.
#include <gtest/gtest.h>

#include "src/workload/runner.h"

namespace bqo {
namespace {

constexpr double kTestScale = 0.04;

class WorkloadTest : public ::testing::TestWithParam<int> {
 protected:
  static Workload Make(int which, double scale) {
    switch (which) {
      case 0:
        return MakeTpcdsLite(scale);
      case 1:
        return MakeJobLite(scale);
      default:
        return MakeCustomerLite(scale);
    }
  }
};

TEST_P(WorkloadTest, StructureMatchesTable3Shape) {
  const Workload w = Make(GetParam(), kTestScale);
  switch (GetParam()) {
    case 0:
      EXPECT_EQ(w.name, "TPC-DS");
      EXPECT_EQ(w.queries.size(), 99u);
      EXPECT_EQ(w.catalog->num_tables(), 14);  // 11 dims + 3 facts
      EXPECT_GT(w.AvgJoins(), 4.0);
      EXPECT_LT(w.AvgJoins(), 11.0);
      break;
    case 1:
      EXPECT_EQ(w.name, "JOB");
      EXPECT_EQ(w.queries.size(), 113u);
      EXPECT_EQ(w.catalog->num_tables(), 12);  // 8 dims + 4 facts
      EXPECT_GT(w.AvgJoins(), 3.0);
      EXPECT_LT(w.AvgJoins(), 10.0);
      break;
    default:
      EXPECT_EQ(w.name, "CUSTOMER");
      EXPECT_EQ(w.queries.size(), 100u);
      EXPECT_GT(w.catalog->num_tables(), 90);
      EXPECT_GT(w.AvgJoins(), 15.0);  // the paper's high-join workload
      EXPECT_GT(w.MaxJoins(), 20);
      break;
  }
  EXPECT_GT(w.DatabaseBytes(), 0);
}

TEST_P(WorkloadTest, EveryQueryBindsAndConnects) {
  const Workload w = Make(GetParam(), kTestScale);
  for (const QuerySpec& q : w.queries) {
    auto graph = BuildJoinGraph(*w.catalog, q);
    ASSERT_TRUE(graph.ok()) << q.name << ": " << graph.status().ToString();
    const JoinGraph& g = graph.value();
    EXPECT_LE(g.num_relations(), 64) << q.name;
    EXPECT_GE(g.num_relations(), 2) << q.name;
    EXPECT_TRUE(g.IsConnected(g.AllRels())) << q.name;
    // Every relation has exact filtered cardinalities attached.
    for (int r = 0; r < g.num_relations(); ++r) {
      EXPECT_GE(g.relation(r).base_rows, g.relation(r).filtered_rows);
    }
  }
}

TEST_P(WorkloadTest, GenerationIsDeterministic) {
  const Workload a = Make(GetParam(), kTestScale);
  const Workload b = Make(GetParam(), kTestScale);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  EXPECT_EQ(a.DatabaseBytes(), b.DatabaseBytes());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].name, b.queries[i].name);
    EXPECT_EQ(a.queries[i].joins.size(), b.queries[i].joins.size());
  }
}

TEST_P(WorkloadTest, BaselineAndBqoAgreeOnResults) {
  const Workload w = Make(GetParam(), kTestScale);
  RunOptions options;
  options.repeats = 1;
  options.limit = 6;
  const auto baseline =
      RunWorkload(w, OptimizerMode::kBaselinePostProcess, options);
  const auto bqo = RunWorkload(w, OptimizerMode::kBqoShallow, options);
  ASSERT_EQ(baseline.size(), bqo.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].metrics.result_checksum,
              bqo[i].metrics.result_checksum)
        << baseline[i].query_name;
  }
}

std::string WorkloadCaseName(const ::testing::TestParamInfo<int>& info) {
  if (info.param == 0) return "TpcdsLite";
  if (info.param == 1) return "JobLite";
  return "CustomerLite";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::Values(0, 1, 2), WorkloadCaseName);

TEST(Runner, GroupsSplitIntoTerciles) {
  std::vector<QueryRun> runs(9);
  for (int i = 0; i < 9; ++i) {
    runs[static_cast<size_t>(i)].metrics.total_ns = (i + 1) * 100;
  }
  const auto groups = GroupBySelectivity(runs);
  int counts[3] = {0, 0, 0};
  for (QueryGroup g : groups) ++counts[static_cast<int>(g)];
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(groups[0], QueryGroup::kS);
  EXPECT_EQ(groups[8], QueryGroup::kL);
}

TEST(Runner, BitvectorUsageIsNearUniversal) {
  // Table 4: 97-100% of queries use bitvector filters in their plans.
  const Workload w = MakeTpcdsLite(kTestScale);
  RunOptions options;
  options.repeats = 1;
  options.limit = 20;
  const auto runs =
      RunWorkload(w, OptimizerMode::kBaselinePostProcess, options);
  int with_filters = 0;
  for (const QueryRun& r : runs) {
    if (r.used_bitvectors) ++with_filters;
  }
  EXPECT_GE(with_filters, static_cast<int>(runs.size()) - 2);
}

}  // namespace
}  // namespace bqo

// Unit + property tests for the bitvector filter implementations.
//
// The load-bearing invariant for the whole system is *zero false negatives*:
// a filter that drops a qualifying tuple changes query results. False
// positives only cost performance; Bloom/cuckoo rates are bounded below.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/filter/bitvector_filter.h"
#include "src/filter/bloom_filter.h"
#include "src/filter/cuckoo_filter.h"
#include "src/filter/exact_filter.h"

namespace bqo {
namespace {

TEST(ExactFilter, NoFalsePositivesOrNegatives) {
  Rng rng(42);
  ExactFilter filter(1000);
  std::unordered_set<uint64_t> inserted;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t h = rng.Next();
    filter.Insert(h);
    inserted.insert(h);
  }
  for (uint64_t h : inserted) EXPECT_TRUE(filter.MayContain(h));
  int fp = 0;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t h = rng.Next();
    if (inserted.count(h) == 0 && filter.MayContain(h)) ++fp;
  }
  EXPECT_EQ(fp, 0);
}

TEST(ExactFilter, HandlesZeroHash) {
  ExactFilter filter(4);
  EXPECT_FALSE(filter.MayContain(0));
  filter.Insert(0);
  EXPECT_TRUE(filter.MayContain(0));
  EXPECT_EQ(filter.NumInserted(), 1);
}

TEST(ExactFilter, GrowsPastInitialCapacity) {
  ExactFilter filter(4);  // will need to grow
  Rng rng(7);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(ExactFilter, DuplicateInsertIdempotent) {
  ExactFilter filter(8);
  filter.Insert(123);
  filter.Insert(123);
  EXPECT_TRUE(filter.MayContain(123));
  // NumInserted counts keys logically added, so duplicates don't count.
  EXPECT_EQ(filter.NumInserted(), 1);
  filter.Insert(0);
  filter.Insert(0);
  EXPECT_EQ(filter.NumInserted(), 2);
}

// ---- Parameterized no-false-negative sweep over all filter kinds/sizes ----

struct FilterCase {
  FilterKind kind;
  int64_t n;
};

class FilterPropertyTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(FilterPropertyTest, NoFalseNegatives) {
  const FilterCase param = GetParam();
  FilterConfig config;
  config.kind = param.kind;
  auto filter = CreateFilter(config, param.n);
  Rng rng(static_cast<uint64_t>(param.n) * 31 + static_cast<int>(param.kind));
  std::vector<uint64_t> keys;
  keys.reserve(static_cast<size_t>(param.n));
  for (int64_t i = 0; i < param.n; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) filter->Insert(k);
  for (uint64_t k : keys) {
    ASSERT_TRUE(filter->MayContain(k)) << FilterKindName(param.kind);
  }
  // NumInserted counts keys logically added. The keys are distinct random
  // hashes, so the exact filter counts all of them; the approximate kinds
  // may fold a small fraction (<~2%, their FP rate) into existing entries.
  EXPECT_LE(filter->NumInserted(), param.n);
  if (param.kind == FilterKind::kExact) {
    EXPECT_EQ(filter->NumInserted(), param.n);
  } else {
    EXPECT_GE(filter->NumInserted(), param.n - param.n / 50);
  }
  EXPECT_GT(filter->SizeBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, FilterPropertyTest,
    ::testing::Values(FilterCase{FilterKind::kExact, 10},
                      FilterCase{FilterKind::kExact, 10000},
                      FilterCase{FilterKind::kBloom, 10},
                      FilterCase{FilterKind::kBloom, 1000},
                      FilterCase{FilterKind::kBloom, 100000},
                      FilterCase{FilterKind::kCuckoo, 10},
                      FilterCase{FilterKind::kCuckoo, 1000},
                      FilterCase{FilterKind::kCuckoo, 100000}),
    [](const ::testing::TestParamInfo<FilterCase>& info) {
      return std::string(FilterKindName(info.param.kind)) + "_" +
             std::to_string(info.param.n);
    });

TEST(BloomFilter, FpRateWithinTwiceTheory) {
  const int64_t n = 50000;
  BloomFilter filter(n, 10.0);
  Rng rng(9);
  std::unordered_set<uint64_t> inserted;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h = rng.Next();
    filter.Insert(h);
    inserted.insert(h);
  }
  int fp = 0;
  const int probes = 200000;
  for (int i = 0; i < probes; ++i) {
    const uint64_t h = rng.Next();
    if (inserted.count(h) == 0 && filter.MayContain(h)) ++fp;
  }
  const double observed = static_cast<double>(fp) / probes;
  // Blocked Bloom pays a modest FP penalty vs the unblocked formula; the
  // theory value at 10 bits/key is ~0.9%, so stay under 2x + slack.
  EXPECT_LT(observed, 2.0 * filter.TheoreticalFpRate() + 0.005);
  // And it should actually filter: well under 5%.
  EXPECT_LT(observed, 0.05);
}

TEST(BloomFilter, MoreBitsFewerFalsePositives) {
  const int64_t n = 20000;
  Rng rng(11);
  std::vector<uint64_t> keys, probes;
  for (int64_t i = 0; i < n; ++i) keys.push_back(rng.Next());
  for (int i = 0; i < 100000; ++i) probes.push_back(rng.Next());
  double rates[2];
  const double bits[2] = {4.0, 12.0};
  for (int b = 0; b < 2; ++b) {
    BloomFilter filter(n, bits[b]);
    for (uint64_t k : keys) filter.Insert(k);
    int fp = 0;
    for (uint64_t p : probes) {
      if (filter.MayContain(p)) ++fp;
    }
    rates[b] = static_cast<double>(fp) / static_cast<double>(probes.size());
  }
  EXPECT_GT(rates[0], rates[1] * 3);
}

TEST(CuckooFilter, LowFpRateAt12Bits) {
  const int64_t n = 50000;
  CuckooFilter filter(n, 12);
  Rng rng(13);
  std::unordered_set<uint64_t> inserted;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h = rng.Next();
    filter.Insert(h);
    inserted.insert(h);
  }
  EXPECT_FALSE(filter.overflowed());
  int fp = 0;
  const int probes = 200000;
  for (int i = 0; i < probes; ++i) {
    const uint64_t h = rng.Next();
    if (inserted.count(h) == 0 && filter.MayContain(h)) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.01);
}

TEST(BloomFilter, HashCountClampedToAtLeastOne) {
  // bits_per_key = 1.0 rounds 0.693 up to k = 1; the clamp guarantees k >= 1
  // so the filter always sets at least one bit and can reject something.
  BloomFilter low(10000, 1.0);
  EXPECT_EQ(low.num_probes(), 1);
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) low.Insert(rng.Next());
  int rejected = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!low.MayContain(rng.Next())) ++rejected;
  }
  EXPECT_GT(rejected, 0);  // k = 0 would admit everything
  // And the CPU-side cap: 10 bits/key rounds to 7 probes, clamped to 4.
  BloomFilter high(10000, 10.0);
  EXPECT_EQ(high.num_probes(), 4);
}

TEST(CuckooFilter, SizedForTargetLoadFactor) {
  // The constructor promises buckets = ceil(keys / (4 * 0.875)) rounded up
  // to a power of two: capacity at 87.5% load always covers the expected
  // keys, and the pre-rounding bucket count is minimal for that target.
  for (const int64_t n : {16LL, 100LL, 5000LL, 100000LL, 114688LL}) {
    CuckooFilter filter(n, 12);
    const int64_t slots = filter.SizeBytes() / static_cast<int64_t>(sizeof(uint16_t));
    EXPECT_GE(static_cast<double>(slots) * 0.875, static_cast<double>(n))
        << "n=" << n;
    // Pow2 minimality: half the buckets would exceed the 87.5% target.
    const int64_t half_slots = slots / 2;
    EXPECT_LT(static_cast<double>(half_slots) * 0.875,
              static_cast<double>(n < 16 ? 16 : n) + 4.0 * 0.875)
        << "n=" << n;
  }
  // At the worst case the sizing permits (exactly 87.5% load after pow2
  // rounding: 114688 = 3.5 * 32768 keys), inserts must still all land.
  CuckooFilter tight(114688, 12);
  Rng rng(29);
  for (int64_t i = 0; i < 114688; ++i) tight.Insert(rng.Next());
  EXPECT_FALSE(tight.overflowed());
}

TEST(CuckooFilter, NumInsertedStopsAtOverflow) {
  CuckooFilter filter(16, 8);
  Rng rng(31);
  int64_t last = -1;
  for (int i = 0; i < 5000; ++i) {
    filter.Insert(rng.Next());
    if (filter.overflowed() && last < 0) last = filter.NumInserted();
  }
  ASSERT_TRUE(filter.overflowed());
  // Inserts after overflow add nothing (everything already passes), so the
  // count must have frozen the moment the filter overflowed.
  EXPECT_EQ(filter.NumInserted(), last);
  // And it can't exceed what the slots could hold (+1 for the key whose
  // failed displacement triggered the overflow).
  EXPECT_LE(filter.NumInserted(),
            filter.SizeBytes() / static_cast<int64_t>(sizeof(uint16_t)) + 1);
}

TEST(CuckooFilter, OverflowDegradesSafely) {
  // Grossly undersized-by-construction: force overflow via tiny capacity
  // and many inserts; every inserted key must still pass.
  CuckooFilter filter(16, 8);
  Rng rng(17);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(FilterFactory, CreatesRequestedKinds) {
  FilterConfig config;
  for (FilterKind kind :
       {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
    config.kind = kind;
    auto f = CreateFilter(config, 100);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->kind(), kind);
    EXPECT_EQ(f->exact(), kind == FilterKind::kExact);
  }
}

// ---- MergeFrom: partitioned parallel builds fold partials into one filter.

TEST(ExactFilterMerge, SetUnionWithOverlapAndZeroHash) {
  Rng rng(271);
  std::vector<uint64_t> a_keys, b_keys;
  for (int i = 0; i < 500; ++i) a_keys.push_back(rng.Next());
  for (int i = 0; i < 400; ++i) b_keys.push_back(rng.Next());
  // Overlap: 100 of a's keys also land in b, plus the zero-hash sentinel
  // in both.
  b_keys.insert(b_keys.end(), a_keys.begin(), a_keys.begin() + 100);
  a_keys.push_back(0);
  b_keys.push_back(0);

  ExactFilter a(512), b(512);
  for (uint64_t k : a_keys) a.Insert(k);
  for (uint64_t k : b_keys) b.Insert(k);
  a.MergeFrom(b);

  for (uint64_t k : a_keys) EXPECT_TRUE(a.MayContain(k));
  for (uint64_t k : b_keys) EXPECT_TRUE(a.MayContain(k));
  // Exactly the distinct union: 500 + 400 distinct + the zero hash.
  EXPECT_EQ(a.NumInserted(), 901);
  // Non-members still rejected (merge kept exactness).
  int fp = 0;
  for (int i = 0; i < 20000; ++i) {
    if (a.MayContain(rng.Next())) ++fp;
  }
  EXPECT_EQ(fp, 0);
}

/// Tracked Bloom merge must reproduce the *sequential* filter bit-for-bit
/// in behavior and count: same geometry partials ORed in partition order.
/// Run undersized (1.5 bits/key) so probe bits overlap heavily across keys
/// — the regime where naive count summing diverges.
TEST(BloomFilterMerge, TrackedMergeMatchesSequentialBuild) {
  Rng rng(999);
  constexpr int kKeys = 3000;
  std::vector<uint64_t> keys;
  for (int i = 0; i < kKeys; ++i) keys.push_back(rng.Next());
  // Duplicates across partition boundaries, too.
  for (int i = 0; i < 300; ++i) keys.push_back(keys[static_cast<size_t>(i)]);

  BloomFilter sequential(kKeys, 1.5);
  for (uint64_t k : keys) sequential.Insert(k);

  BloomFilter merged(kKeys, 1.5);
  const size_t part = keys.size() / 3 + 1;
  for (size_t begin = 0; begin < keys.size(); begin += part) {
    BloomFilter partial(kKeys, 1.5);  // same geometry by construction
    partial.EnableInsertTracking();
    const size_t end = std::min(keys.size(), begin + part);
    for (size_t i = begin; i < end; ++i) partial.Insert(keys[i]);
    merged.MergeFrom(partial);
  }

  // Identical logical-key count (the journal replay reproduces the
  // sequential new-bit rule across partition boundaries) ...
  EXPECT_EQ(merged.NumInserted(), sequential.NumInserted());
  EXPECT_LT(merged.NumInserted(), kKeys);  // undersized: folds happened
  // ... and identical probe behavior (OR of partition bits == sequential
  // bits), membership and non-membership alike.
  for (uint64_t k : keys) EXPECT_TRUE(merged.MayContain(k));
  for (int i = 0; i < 20000; ++i) {
    const uint64_t h = rng.Next();
    EXPECT_EQ(merged.MayContain(h), sequential.MayContain(h));
  }
}

TEST(CuckooFilterMerge, ReplayUnionNoFalseNegatives) {
  Rng rng(5150);
  std::vector<uint64_t> a_keys, b_keys;
  for (int i = 0; i < 300; ++i) a_keys.push_back(rng.Next());
  for (int i = 0; i < 300; ++i) b_keys.push_back(rng.Next());
  // Cross-partition duplicates: same key in both partials.
  b_keys.insert(b_keys.end(), a_keys.begin(), a_keys.begin() + 50);

  // Same geometry, sized for the union (like FillFilterParallel partials).
  CuckooFilter a(1000, 12), b(1000, 12);
  for (uint64_t k : a_keys) a.Insert(k);
  for (uint64_t k : b_keys) b.Insert(k);
  ASSERT_FALSE(a.overflowed());
  ASSERT_FALSE(b.overflowed());
  const int64_t na = a.NumInserted(), nb = b.NumInserted();

  a.MergeFrom(b);
  ASSERT_FALSE(a.overflowed());
  // Zero false negatives across the union — the system invariant.
  for (uint64_t k : a_keys) EXPECT_TRUE(a.MayContain(k));
  for (uint64_t k : b_keys) EXPECT_TRUE(a.MayContain(k));
  // Replay dedups (fingerprint, bucket) pairs: the 50 duplicated keys must
  // not double count, and the count can only shrink further via fingerprint
  // collisions, never grow.
  EXPECT_LE(a.NumInserted(), na + nb - 50);
  EXPECT_GE(a.NumInserted(), na);
}

TEST(CuckooFilterMerge, OverflowedPartitionFreezesMergedFilter) {
  // One healthy partial, one driven into overflow.
  CuckooFilter healthy(1000, 12);
  Rng rng(17);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) healthy.Insert(k);

  CuckooFilter overflowed(16, 8);
  for (int i = 0; i < 5000; ++i) overflowed.Insert(rng.Next());
  ASSERT_TRUE(overflowed.overflowed());

  const int64_t expected =
      healthy.NumInserted() + overflowed.NumInserted();
  // Freeze propagation is geometry-independent (no slots are replayed), so
  // the differing capacities must not trip the merge.
  healthy.MergeFrom(overflowed);
  EXPECT_TRUE(healthy.overflowed());
  // Frozen filter admits everything (degenerates safely).
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(healthy.MayContain(rng.Next()));
  // Logical-key count carries the overflowed partition's adds.
  EXPECT_EQ(healthy.NumInserted(), expected);
}

}  // namespace
}  // namespace bqo

// Unit tests for src/storage: columns, dictionaries, tables, catalog.
#include <gtest/gtest.h>

#include "src/storage/catalog.h"

namespace bqo {
namespace {

TEST(StringDictionary, RoundTrip) {
  StringDictionary dict;
  const int32_t a = dict.GetOrInsert("apple");
  const int32_t b = dict.GetOrInsert("banana");
  EXPECT_EQ(dict.GetOrInsert("apple"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.GetString(a), "apple");
  EXPECT_EQ(dict.Lookup("banana"), b);
  EXPECT_EQ(dict.Lookup("cherry"), -1);
  EXPECT_EQ(dict.size(), 2);
}

TEST(StringDictionary, CodesContaining) {
  StringDictionary dict;
  dict.GetOrInsert("orange");
  dict.GetOrInsert("gear");
  dict.GetOrInsert("title");
  const auto codes = dict.CodesContaining("ge");
  EXPECT_EQ(codes.size(), 2u);  // orange, gear
}

TEST(Column, Int64Basics) {
  Column col("x", DataType::kInt64);
  col.AppendInt64(5);
  col.AppendInt64(5);
  col.AppendInt64(7);
  EXPECT_EQ(col.size(), 3);
  EXPECT_EQ(col.GetInt64(2), 7);
  EXPECT_EQ(col.CountDistinct(), 2);
}

TEST(Column, StringStoredAsCodes) {
  Column col("s", DataType::kString);
  col.AppendString("aa");
  col.AppendString("bb");
  col.AppendString("aa");
  EXPECT_EQ(col.GetInt64(0), col.GetInt64(2));  // same dict code
  EXPECT_EQ(col.GetStringAt(1), "bb");
  EXPECT_EQ(col.CountDistinct(), 2);
}

TEST(Column, DoubleDistinct) {
  Column col("d", DataType::kDouble);
  col.AppendDouble(1.5);
  col.AppendDouble(1.5);
  col.AppendDouble(2.5);
  EXPECT_EQ(col.CountDistinct(), 2);
}

TEST(Table, AppendRowAndLookup) {
  Table t("t", {{"id", DataType::kInt64}, {"name", DataType::kString}});
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(std::string("x"))}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value(std::string("y"))}).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.ColumnIndex("name"), 1);
  EXPECT_EQ(t.ColumnIndex("zzz"), -1);
  auto col = t.GetColumn("id");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value()->GetInt64(1), 2);
}

TEST(Table, AppendRowTypeMismatch) {
  Table t("t", {{"id", DataType::kInt64}});
  EXPECT_FALSE(t.AppendRow({Value(std::string("oops"))}).ok());
  EXPECT_FALSE(t.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
}

TEST(Catalog, CreateAndKeys) {
  Catalog catalog;
  auto t = catalog.CreateTable(
      "dim", {{"dim_id", DataType::kInt64}, {"attr", DataType::kInt64}});
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(catalog.CreateTable("dim", {}).ok());  // duplicate
  ASSERT_TRUE(catalog.DeclarePrimaryKey("dim", "dim_id").ok());
  EXPECT_TRUE(catalog.IsUniqueKey("dim", "dim_id"));
  EXPECT_FALSE(catalog.IsUniqueKey("dim", "attr"));
  EXPECT_FALSE(catalog.DeclarePrimaryKey("dim", "nope").ok());
  EXPECT_FALSE(catalog.DeclarePrimaryKey("nope", "x").ok());
}

TEST(Catalog, ForeignKeys) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("d", {{"d_id", DataType::kInt64}}).ok());
  ASSERT_TRUE(catalog.CreateTable("f", {{"d_fk", DataType::kInt64}}).ok());
  ASSERT_TRUE(
      catalog.DeclareForeignKey(ForeignKeyDef{"f", "d_fk", "d", "d_id"}).ok());
  EXPECT_EQ(catalog.foreign_keys().size(), 1u);
  EXPECT_FALSE(
      catalog.DeclareForeignKey(ForeignKeyDef{"f", "x", "d", "d_id"}).ok());
}

}  // namespace
}  // namespace bqo

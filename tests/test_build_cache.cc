// BuildCache unit battery: the single-flight protocol and the accounting
// invariants of src/server/build_cache.h, driven directly (no engine).
//
//  * Metrics accounting — hits + misses == lookups on every path,
//    single_flight_waits counted once per waiter, bytes symmetric across
//    insert / evict / invalidate.
//  * Single-flight — N concurrent lookups of one signature run exactly one
//    builder and share one result object.
//  * Handoff — a cancelled leader abandons the flight; a waiter takes over
//    with its own builder and the cancelled query never poisons the entry.
//  * Fail-all — an internal builder error cancels every waiter with the
//    leader's status and leaves the cache clean for the next lookup.
//  * Versioning — a newer-version lookup flushes resident entries without
//    freeing ones still held; a build that outlives its catalog snapshot
//    is handed to its caller but never published.
//  * Eviction — the LRU walk respects the memory bound but never drops an
//    entry another query still holds.
//
// Run under -DBQO_SANITIZE=thread in CI (the build-cache-stress job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/build_side.h"
#include "src/server/build_cache.h"

namespace bqo {
namespace {

/// A distinguishable dummy build side (~`rows` * 8 bytes resident).
std::shared_ptr<const JoinBuildSide> MakeSide(int64_t rows, int64_t tag = 0) {
  auto side = std::make_shared<JoinBuildSide>();
  side->width = 1;
  side->rows.assign(static_cast<size_t>(rows), tag);
  side->buckets.assign(16, -1);
  side->bucket_mask = 15;
  return side;
}

void ExpectAccountingInvariant(const BuildCacheStats& s) {
  EXPECT_EQ(s.hits + s.misses, s.lookups)
      << "hits=" << s.hits << " misses=" << s.misses
      << " lookups=" << s.lookups;
  EXPECT_GE(s.bytes, 0);
  EXPECT_GE(s.entries, 0);
}

/// Spin until `cache` reports at least `waiters` parked lookups; used by
/// leader builders to make multi-thread resolutions deterministic.
bool AwaitWaiters(const BuildCache& cache, int64_t waiters) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cache.stats().single_flight_waits < waiters) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(BuildCache, HitMissAndByteAccounting) {
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/64 << 20});
  QueryContext ctx;

  auto a = cache.GetOrBuild("sig-a", 1, &ctx, [] { return MakeSide(100); });
  ASSERT_NE(a, nullptr);
  auto a2 = cache.GetOrBuild("sig-a", 1, &ctx, [] { return MakeSide(100); });
  EXPECT_EQ(a2.get(), a.get());  // shared, not rebuilt
  auto b = cache.GetOrBuild("sig-b", 1, &ctx, [] { return MakeSide(50); });
  ASSERT_NE(b, nullptr);

  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 3);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.single_flight_waits, 0);
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.bytes, a->SizeBytes() + b->SizeBytes());
  EXPECT_EQ(s.evictions, 0);
  ExpectAccountingInvariant(s);

  cache.Invalidate();
  const BuildCacheStats flushed = cache.stats();
  EXPECT_EQ(flushed.entries, 0);
  EXPECT_EQ(flushed.bytes, 0);  // symmetric: everything accounted back out
  EXPECT_EQ(flushed.invalidations, 1);
  ExpectAccountingInvariant(flushed);
  // The held results outlive the flush.
  EXPECT_EQ(a->rows.size(), 100u);
  EXPECT_EQ(b->rows.size(), 50u);
}

TEST(BuildCache, SingleFlightRunsOneBuilderAndCountsEachWaiterOnce) {
  constexpr int kThreads = 8;
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/64 << 20});
  std::atomic<int> builds{0};
  std::atomic<bool> leader_entered{false};

  std::vector<std::shared_ptr<const JoinBuildSide>> results(kThreads);
  std::vector<QueryContext> ctxs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Everyone but the leader enters only after the flight exists, so
      // all kThreads - 1 of them park (the flight is registered before the
      // builder runs).
      if (t != 0) {
        while (!leader_entered.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
      results[static_cast<size_t>(t)] = cache.GetOrBuild(
          "sig", 1, &ctxs[static_cast<size_t>(t)],
          [&]() -> std::shared_ptr<const JoinBuildSide> {
            leader_entered.store(true, std::memory_order_release);
            // Resolve only once every other thread is parked: pins that a
            // waiter is counted once no matter how often its wait loop
            // wakes, and that all of them share this one build.
            EXPECT_TRUE(AwaitWaiters(cache, kThreads - 1));
            builds.fetch_add(1);
            return MakeSide(64);
          });
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<size_t>(t)].get(), results[0].get());
  }
  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, kThreads);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, kThreads - 1);
  EXPECT_EQ(s.single_flight_waits, kThreads - 1);
  EXPECT_EQ(s.entries, 1);
  ExpectAccountingInvariant(s);
}

TEST(BuildCache, CancelledLeaderHandsOffToWaiter) {
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/64 << 20});
  QueryContext leader_ctx;
  QueryContext waiter_ctx;
  std::atomic<bool> leader_entered{false};
  std::atomic<int> waiter_builds{0};

  std::thread leader([&] {
    auto side = cache.GetOrBuild(
        "sig", 1, &leader_ctx,
        [&]() -> std::shared_ptr<const JoinBuildSide> {
          leader_entered.store(true, std::memory_order_release);
          EXPECT_TRUE(AwaitWaiters(cache, 1));
          // The leader's query dies mid-construction — a personal failure,
          // not a property of the build.
          leader_ctx.Cancel(Status::Cancelled("client disconnected"));
          return nullptr;
        });
    EXPECT_EQ(side, nullptr);
  });

  std::thread waiter([&] {
    while (!leader_entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    auto side = cache.GetOrBuild(
        "sig", 1, &waiter_ctx,
        [&]() -> std::shared_ptr<const JoinBuildSide> {
          waiter_builds.fetch_add(1);
          return MakeSide(32);
        });
    // Handoff: the waiter built with its own builder and was not failed.
    ASSERT_NE(side, nullptr);
    EXPECT_EQ(side->rows.size(), 32u);
  });
  leader.join();
  waiter.join();

  EXPECT_EQ(waiter_builds.load(), 1);
  EXPECT_TRUE(waiter_ctx.status().ok());
  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.misses, 2);  // cancelled leader + the waiter's own build
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.single_flight_waits, 1);
  EXPECT_EQ(s.entries, 1);  // the waiter's build was published
  ExpectAccountingInvariant(s);
}

TEST(BuildCache, FailedBuildFailsAllWaitersWithLeaderStatusAndStaysClean) {
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/64 << 20});
  const Status injected = Status::Internal("injected fault: filter_fill");
  QueryContext leader_ctx;
  QueryContext waiter_ctx;
  std::atomic<bool> leader_entered{false};

  std::thread leader([&] {
    auto side = cache.GetOrBuild(
        "sig", 1, &leader_ctx,
        [&]() -> std::shared_ptr<const JoinBuildSide> {
          leader_entered.store(true, std::memory_order_release);
          EXPECT_TRUE(AwaitWaiters(cache, 1));
          // The construction itself failed: every query that needed this
          // build shares the error.
          leader_ctx.Cancel(injected);
          return nullptr;
        });
    EXPECT_EQ(side, nullptr);
  });

  std::thread waiter([&] {
    while (!leader_entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    auto side = cache.GetOrBuild(
        "sig", 1, &waiter_ctx,
        [&]() -> std::shared_ptr<const JoinBuildSide> {
          ADD_FAILURE() << "waiter must not build after a failed flight";
          return MakeSide(1);
        });
    EXPECT_EQ(side, nullptr);
  });
  leader.join();
  waiter.join();

  // The waiter carries the *leader's* status, not a generic cancellation.
  EXPECT_TRUE(waiter_ctx.status().IsInternal());
  EXPECT_EQ(waiter_ctx.status().message(), injected.message());

  // The failure left no entry and no flight behind: the next lookup starts
  // a clean construction and succeeds.
  QueryContext fresh_ctx;
  auto side =
      cache.GetOrBuild("sig", 1, &fresh_ctx, [] { return MakeSide(16); });
  ASSERT_NE(side, nullptr);
  EXPECT_TRUE(fresh_ctx.status().ok());

  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 3);
  EXPECT_EQ(s.misses, 3);  // failed leader, failed waiter, fresh build
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.single_flight_waits, 1);
  EXPECT_EQ(s.entries, 1);
  ExpectAccountingInvariant(s);
}

TEST(BuildCache, NewerVersionFlushesWithoutFreeingHeldBuilds) {
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/64 << 20});
  QueryContext ctx;

  auto v1 = cache.GetOrBuild("sig", 1, &ctx, [] { return MakeSide(100, 1); });
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(cache.stats().entries, 1);

  // A lookup under version 2 flushes the resident version-1 entry and
  // builds fresh; the held v1 side stays valid (an executing plan's build
  // is never freed by invalidation — only the cache's reference drops).
  auto v2 = cache.GetOrBuild("sig", 2, &ctx, [] { return MakeSide(100, 2); });
  ASSERT_NE(v2, nullptr);
  EXPECT_NE(v2.get(), v1.get());
  EXPECT_EQ(v1->rows[0], 1);  // still readable
  EXPECT_EQ(v2->rows[0], 2);

  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.invalidations, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, v2->SizeBytes());
  ExpectAccountingInvariant(s);
}

TEST(BuildCache, MidFlightVersionBumpCompletesTheBuildButNeverPublishesIt) {
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/64 << 20});
  QueryContext ctx;
  std::shared_ptr<const JoinBuildSide> newer;

  // The catalog moves on *while* the version-1 build is in flight (the
  // nested lookup runs inside the builder, i.e. outside the cache lock —
  // exactly where a concurrent query would land).
  auto stale = cache.GetOrBuild(
      "sig-old", 1, &ctx, [&]() -> std::shared_ptr<const JoinBuildSide> {
        newer = cache.GetOrBuild("sig-new", 2, &ctx,
                                 [] { return MakeSide(10, 2); });
        return MakeSide(20, 1);
      });

  // The leader (and any same-version waiters) still get the finished
  // build — their plan was bound to version 1 and stays correct — but the
  // cache must not retain it past its snapshot.
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->rows[0], 1);
  ASSERT_NE(newer, nullptr);

  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1);  // only the version-2 build is resident
  EXPECT_EQ(s.bytes, newer->SizeBytes());
  EXPECT_EQ(s.invalidations, 1);
  ExpectAccountingInvariant(s);

  // A fresh version-2 lookup of the stale signature must rebuild.
  std::atomic<int> rebuilds{0};
  auto rebuilt = cache.GetOrBuild("sig-old", 2, &ctx, [&] {
    rebuilds.fetch_add(1);
    return MakeSide(20, 3);
  });
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilds.load(), 1);
  EXPECT_NE(rebuilt.get(), stale.get());
}

TEST(BuildCache, OlderVersionStragglerBuildsPrivatelyWithoutPublishing) {
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/64 << 20});
  QueryContext ctx;

  auto current =
      cache.GetOrBuild("sig", 5, &ctx, [] { return MakeSide(10, 5); });
  ASSERT_NE(current, nullptr);

  // A query still executing under version 3 must neither share the
  // version-5 entry nor displace it.
  auto straggler =
      cache.GetOrBuild("sig", 3, &ctx, [] { return MakeSide(10, 3); });
  ASSERT_NE(straggler, nullptr);
  EXPECT_EQ(straggler->rows[0], 3);
  EXPECT_NE(straggler.get(), current.get());

  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, current->SizeBytes());
  EXPECT_EQ(s.invalidations, 0);
  ExpectAccountingInvariant(s);
}

TEST(BuildCache, EvictionRespectsBoundButNeverDropsInUseEntries) {
  // Bound fits roughly one side (1000 rows * 8B plus table overhead).
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/10000});
  QueryContext ctx;

  auto a = cache.GetOrBuild("a", 1, &ctx, [] { return MakeSide(1000, 1); });
  ASSERT_NE(a, nullptr);

  // Insert B while A is still held: A is in use (external reference), so
  // the eviction walk must skip it even though the bound is exceeded.
  auto b = cache.GetOrBuild("b", 1, &ctx, [] { return MakeSide(1000, 2); });
  ASSERT_NE(b, nullptr);
  {
    const BuildCacheStats s = cache.stats();
    EXPECT_EQ(s.entries, 2);
    EXPECT_GT(s.bytes, 10000);  // transiently over: everything is in use
    EXPECT_EQ(s.evictions, 0);
  }
  // A remains servable while held.
  auto a2 = cache.GetOrBuild("a", 1, &ctx, [] {
    ADD_FAILURE() << "in-use entry was evicted";
    return MakeSide(1, 9);
  });
  EXPECT_EQ(a2.get(), a.get());

  // Release A and B, then insert C: now the LRU tail is evictable and the
  // bound is enforced, with bytes symmetric on the way out.
  a.reset();
  a2.reset();
  b.reset();
  auto c = cache.GetOrBuild("c", 1, &ctx, [] { return MakeSide(1000, 3); });
  ASSERT_NE(c, nullptr);
  const BuildCacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0);
  EXPECT_LE(s.bytes, 10000);
  ExpectAccountingInvariant(s);
}

TEST(BuildCache, ZeroBoundCachesNothingButStillSingleFlights) {
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/0});
  QueryContext ctx;
  std::atomic<int> builds{0};

  for (int i = 0; i < 2; ++i) {
    auto side = cache.GetOrBuild("sig", 1, &ctx, [&] {
      builds.fetch_add(1);
      return MakeSide(8);
    });
    ASSERT_NE(side, nullptr);
  }
  EXPECT_EQ(builds.load(), 2);  // nothing resident: every lookup builds
  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.bytes, 0);
  ExpectAccountingInvariant(s);
}

TEST(BuildCache, CancelledWaiterLeavesWithoutAResult) {
  BuildCache cache(BuildCacheOptions{/*max_bytes=*/64 << 20});
  QueryContext leader_ctx;
  QueryContext waiter_ctx;
  std::atomic<bool> leader_entered{false};
  std::atomic<bool> waiter_done{false};

  std::thread leader([&] {
    auto side = cache.GetOrBuild(
        "sig", 1, &leader_ctx,
        [&]() -> std::shared_ptr<const JoinBuildSide> {
          leader_entered.store(true, std::memory_order_release);
          EXPECT_TRUE(AwaitWaiters(cache, 1));
          // Cancel the *waiter* while it is parked; it must leave promptly
          // (its own deadline/client, not this flight's outcome).
          waiter_ctx.Cancel(Status::Cancelled("waiter gave up"));
          const auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::seconds(10);
          while (!waiter_done.load(std::memory_order_acquire)) {
            if (std::chrono::steady_clock::now() > deadline) break;
            std::this_thread::yield();
          }
          EXPECT_TRUE(waiter_done.load(std::memory_order_acquire))
              << "cancelled waiter stayed parked behind a live flight";
          return MakeSide(8);
        });
    EXPECT_NE(side, nullptr);  // the leader itself is unaffected
  });

  std::thread waiter([&] {
    while (!leader_entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    auto side = cache.GetOrBuild(
        "sig", 1, &waiter_ctx,
        [&]() -> std::shared_ptr<const JoinBuildSide> {
          ADD_FAILURE() << "cancelled waiter must not become a leader";
          return MakeSide(1);
        });
    EXPECT_EQ(side, nullptr);
    waiter_done.store(true, std::memory_order_release);
  });
  leader.join();
  waiter.join();

  EXPECT_TRUE(waiter_ctx.status().IsCancelled());
  const BuildCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.misses, 2);  // leader built; waiter left empty-handed
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.entries, 1);
  ExpectAccountingInvariant(s);
}

}  // namespace
}  // namespace bqo

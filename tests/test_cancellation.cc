// Failure-domain correctness: cooperative cancellation, deadlines, fault
// injection, and overload resilience across the serving stack. Pins:
//
//  * QueryContext semantics: first-error-wins Cancel, deadline self-cancel
//    in ShouldStop, cancel listeners (invoke-on-cancel, immediate invoke
//    when already cancelled, remove-blocks-until-quiesced contract).
//  * FaultInjector determinism: every-Nth-check firing, per-site counters,
//    DisarmAll.
//  * Mid-drain cancellation: injected faults at each engine site (worker
//    task entry, filter fill, exchange hand-off) cancel star / snowflake /
//    bushy / sort-merge queries mid-execution at pool sizes {1,2,4}
//    without crashing, and the very next clean run on the same pool
//    reproduces the threads==1 baseline exactly — a failed query never
//    poisons the WorkerPool or its neighbors.
//  * Raw-mode exchange wakeup: a consumer parked in Next() on a starved
//    pool is woken promptly by Cancel and by deadline expiry — while the
//    pool is still pinned — instead of sleeping until producers finish.
//  * Serving-layer overload: bounded admission queue sheds with
//    kResourceExhausted, admission waits are bounded by the service
//    timeout and by the query deadline, a cancelled waiter wakes promptly,
//    and every outcome lands in exactly one ServingStats bucket.
//
// Run under -DBQO_SANITIZE=thread in CI: cancellation races (flag vs. CV
// parks vs. worker unwinding) are exactly what TSan is for.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/exec/exchange.h"
#include "src/exec/executor.h"
#include "src/exec/query_context.h"
#include "src/plan/pushdown.h"
#include "src/server/query_service.h"
#include "src/server/worker_pool.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;
using ::bqo::testing::TestDb;

/// Restores the default (env-sized) global pool when a test that resized
/// it ends, so test order does not matter.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() { WorkerPool::ResetGlobal(0); }
};

/// Disarms the process-wide injector on scope exit so a failing test can
/// never leave faults armed for its neighbors.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::Global().DisarmAll(); }
};

// ---- QueryContext unit tests ----

TEST(QueryContext, StartsClean) {
  QueryContext ctx;
  EXPECT_FALSE(ctx.IsCancelled());
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.status().ok());
  EXPECT_FALSE(CtxShouldStop(&ctx));
  EXPECT_FALSE(CtxShouldStop(nullptr));  // null-tolerant helper
}

TEST(QueryContext, CancelIsFirstErrorWins) {
  QueryContext ctx;
  ctx.Cancel(Status::Cancelled("first"));
  ctx.Cancel(Status::Internal("second"));  // must be a no-op
  EXPECT_TRUE(ctx.IsCancelled());
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.status().IsCancelled());
  EXPECT_EQ(ctx.status().message(), "first");
}

TEST(QueryContext, DeadlineSelfCancelsInShouldStop) {
  QueryContext ctx;
  ctx.SetDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  ASSERT_TRUE(ctx.has_deadline());
  // The flag alone is not raised until someone polls.
  EXPECT_FALSE(ctx.IsCancelled());
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.IsCancelled());
  EXPECT_TRUE(ctx.status().IsDeadlineExceeded());
}

TEST(QueryContext, FutureDeadlineDoesNotStop) {
  QueryContext ctx;
  ctx.SetDeadlineAfterMs(60'000);
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.status().ok());
}

TEST(QueryContext, CancelListenersRunOnCancel) {
  QueryContext ctx;
  std::atomic<int> fired{0};
  const int64_t kept = ctx.AddCancelListener([&fired] { ++fired; });
  const int64_t removed = ctx.AddCancelListener([&fired] { fired += 100; });
  ctx.RemoveCancelListener(removed);
  ctx.Cancel(Status::Cancelled("bye"));
  EXPECT_EQ(fired.load(), 1);  // kept ran once, removed never
  // A listener added after cancellation is invoked immediately (the waiter
  // would otherwise park forever on an already-dead query).
  const int64_t late = ctx.AddCancelListener([&fired] { fired += 10; });
  EXPECT_EQ(fired.load(), 11);
  ctx.RemoveCancelListener(late);
  ctx.RemoveCancelListener(kept);
}

// ---- FaultInjector unit tests ----

TEST(FaultInjector, FiresEveryNthCheckDeterministically) {
  FaultGuard guard;
  FaultInjector& fi = FaultInjector::Global();
  fi.DisarmAll();
  fi.Arm(FaultInjector::Site::kWorkerTask, 3);

  int fires = 0;
  for (int i = 0; i < 9; ++i) {
    const Status s = fi.Check(FaultInjector::Site::kWorkerTask);
    if (!s.ok()) {
      ++fires;
      EXPECT_TRUE(s.IsInternal());
      EXPECT_NE(s.message().find("worker_task"), std::string::npos);
    }
  }
  EXPECT_EQ(fires, 3);  // checks 3, 6, 9
  EXPECT_EQ(fi.injected(), 3);
  EXPECT_EQ(fi.checks(FaultInjector::Site::kWorkerTask), 9);

  // Unarmed sites never fire but the armed site's state is untouched.
  EXPECT_TRUE(fi.Check(FaultInjector::Site::kFilterFill).ok());
  EXPECT_EQ(fi.injected(), 3);

  fi.DisarmAll();
  EXPECT_TRUE(fi.Check(FaultInjector::Site::kWorkerTask).ok());
  EXPECT_EQ(fi.injected(), 0);
  // A disarmed site's Check is a single relaxed load: nothing is counted.
  EXPECT_EQ(fi.checks(FaultInjector::Site::kWorkerTask), 0);
}

// ---- Mid-drain cancellation across plan shapes, sites, and pool sizes ----

struct PlanUnderTest {
  std::unique_ptr<TestDb> db;
  JoinGraph graph;
  Plan plan;
  ExecutionOptions options;
};

std::unique_ptr<PlanUnderTest> MakeStarPlan() {
  auto t = std::make_unique<PlanUnderTest>();
  t->db = MakeStarDb(3, 25000, 300, {0.3, 0.6, 0.15}, 991, /*zipf=*/0.5);
  auto graph = t->db->Graph();
  BQO_CHECK(graph.ok());
  t->graph = std::move(graph.value());
  t->plan = BuildRightDeepPlan(t->graph, {0, 1, 2, 3});
  PushDownBitvectors(&t->plan);
  t->options.agg.kind = AggKind::kSum;
  t->options.agg.sum_column = BoundColumn{0, "measure"};
  t->options.agg.has_group_by = true;
  t->options.agg.group_column = BoundColumn{1, "d0_id"};
  return t;
}

std::unique_ptr<PlanUnderTest> MakeSnowflakePlan() {
  auto t = std::make_unique<PlanUnderTest>();
  t->db = MakeSnowflakeDb({2, 2}, 18000, 400, 0.5, {0.4, 0.5}, 661,
                          /*zipf=*/0.4);
  auto graph = t->db->Graph();
  BQO_CHECK(graph.ok());
  t->graph = std::move(graph.value());
  t->plan = BuildRightDeepPlan(t->graph, {0, 1, 2, 3, 4});
  PushDownBitvectors(&t->plan);
  return t;
}

std::unique_ptr<PlanUnderTest> MakeBushyPlan() {
  auto t = std::make_unique<PlanUnderTest>();
  t->db = MakeSnowflakeDb({2, 2}, 18000, 400, 0.5, {0.4, 0.5}, 772,
                          /*zipf=*/0.4);
  auto graph = t->db->Graph();
  BQO_CHECK(graph.ok());
  t->graph = std::move(graph.value());
  t->plan.graph = &t->graph;
  auto branch0 =
      MakeJoin(t->graph, MakeLeaf(t->graph, 2), MakeLeaf(t->graph, 1));
  auto branch1 =
      MakeJoin(t->graph, MakeLeaf(t->graph, 4), MakeLeaf(t->graph, 3));
  auto inner = MakeJoin(t->graph, std::move(branch1), MakeLeaf(t->graph, 0));
  t->plan.root = MakeJoin(t->graph, std::move(branch0), std::move(inner));
  BQO_CHECK(t->plan.root != nullptr);
  t->plan.Renumber();
  BQO_CHECK(t->plan.Validate());
  PushDownBitvectors(&t->plan);
  return t;
}

std::unique_ptr<PlanUnderTest> MakeSortMergePlan() {
  auto t = std::make_unique<PlanUnderTest>();
  t->db = MakeStarDb(2, 12000, 250, {0.4, 0.25}, 337, /*zipf=*/0.5);
  auto graph = t->db->Graph();
  BQO_CHECK(graph.ok());
  t->graph = std::move(graph.value());
  t->plan = BuildRightDeepPlan(t->graph, {0, 1, 2});
  PushDownBitvectors(&t->plan);
  t->options.use_sort_merge_join = true;
  return t;
}

void ExpectMetricsEqual(const QueryMetrics& base, const QueryMetrics& m,
                        const std::string& what) {
  EXPECT_EQ(m.result_rows, base.result_rows) << what;
  EXPECT_EQ(m.result_checksum, base.result_checksum) << what;
  EXPECT_EQ(m.leaf_tuples, base.leaf_tuples) << what;
  EXPECT_EQ(m.join_tuples, base.join_tuples) << what;
  ASSERT_EQ(m.filters.size(), base.filters.size()) << what;
  for (size_t i = 0; i < m.filters.size(); ++i) {
    EXPECT_EQ(m.filters[i].probed, base.filters[i].probed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].passed, base.filters[i].passed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].inserted, base.filters[i].inserted)
        << what << " f" << i;
  }
}

/// For every plan shape and every fault site that shape exercises, at pool
/// sizes {1,2,4}: an armed fault cancels the query mid-drain (the status
/// is the injected internal error, first-error-wins) without crashing, and
/// the immediately following clean run on the SAME pool matches the
/// threads==1 baseline exactly. This is the "one dead query never poisons
/// the pool" contract.
TEST(MidDrainCancellation, InjectedFaultsUnwindAndPoolStaysServiceable) {
  GlobalPoolGuard pool_guard;
  FaultGuard fault_guard;

  struct Shape {
    const char* name;
    std::unique_ptr<PlanUnderTest> t;
    /// Sites this plan shape actually reaches when executed wide. A
    /// sort-merge root compiles no exchange and fills its filters inline,
    /// so only the build-drain worker tasks are exposed.
    std::vector<FaultInjector::Site> sites;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"star", MakeStarPlan(),
                    {FaultInjector::Site::kWorkerTask,
                     FaultInjector::Site::kFilterFill,
                     FaultInjector::Site::kExchangePush}});
  shapes.push_back({"snowflake", MakeSnowflakePlan(),
                    {FaultInjector::Site::kWorkerTask,
                     FaultInjector::Site::kFilterFill,
                     FaultInjector::Site::kExchangePush}});
  shapes.push_back({"bushy", MakeBushyPlan(),
                    {FaultInjector::Site::kWorkerTask,
                     FaultInjector::Site::kFilterFill,
                     FaultInjector::Site::kExchangePush}});
  shapes.push_back(
      {"sort-merge", MakeSortMergePlan(), {FaultInjector::Site::kWorkerTask}});

  for (Shape& shape : shapes) {
    ExecutionOptions single = shape.t->options;
    single.exec.threads = 1;
    const QueryMetrics base = ExecutePlan(shape.t->plan, single);

    for (int pool : {1, 2, 4}) {
      WorkerPool::ResetGlobal(pool);
      for (FaultInjector::Site site : shape.sites) {
        const std::string what = std::string(shape.name) + " pool=" +
                                 std::to_string(pool) + " site=" +
                                 FaultInjector::SiteName(site);

        ExecutionOptions parallel = shape.t->options;
        parallel.exec.threads = 4;
        parallel.exec.morsel_rows = 1024;

        QueryContext ctx;
        parallel.context = &ctx;
        FaultInjector::Global().Arm(site, 1);  // first check fires
        (void)ExecutePlan(shape.t->plan, parallel);
        FaultInjector::Global().DisarmAll();

        EXPECT_TRUE(ctx.IsCancelled()) << what;
        EXPECT_TRUE(ctx.status().IsInternal()) << what;
        EXPECT_NE(ctx.status().message().find("injected fault"),
                  std::string::npos)
            << what;

        // The same pool, immediately after the failure: bit-exact parity.
        parallel.context = nullptr;
        const QueryMetrics clean = ExecutePlan(shape.t->plan, parallel);
        ExpectMetricsEqual(base, clean, what + " follow-up");
      }
    }
  }
}

/// An already-expired deadline stops the plan before (or within one stride
/// of) any real work, with kDeadlineExceeded as the first error.
TEST(MidDrainCancellation, ExpiredDeadlineStopsExecution) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);
  auto t = MakeStarPlan();

  ExecutionOptions options = t->options;
  options.exec.threads = 4;
  QueryContext ctx;
  ctx.SetDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  options.context = &ctx;
  (void)ExecutePlan(t->plan, options);
  EXPECT_TRUE(ctx.IsCancelled());
  EXPECT_TRUE(ctx.status().IsDeadlineExceeded());
}

// ---- Raw-mode exchange: parked consumer wakes on cancel/deadline ----

/// Harness: a raw-mode exchange on a pool of 1 whose only worker is pinned
/// by a blocker task, so the exchange's producer tasks stay queued and a
/// consumer calling Next() parks on an empty queue. The consumer must be
/// woken by the query's cancellation — while the pool is still pinned —
/// not by producer completion.
class RawExchangeWakeupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkerPool::ResetGlobal(1);
    db_ = MakeStarDb(1, 20000, 200, {-1.0}, 515);
    fact_ = db_->catalog.GetTable("f").value();
    runtime_.context = &ctx_;

    OutputSchema schema(
        {BoundColumn{0, "d0_fk"}, BoundColumn{0, "measure"}});
    auto scan = std::make_unique<ScanOperator>(
        fact_, nullptr, schema, std::vector<ResolvedFilter>{}, &runtime_,
        "scan f");
    ExecConfig config;
    config.threads = 2;
    config.morsel_rows = 1024;
    exchange_ = std::make_unique<ExchangeOperator>(std::move(scan), config,
                                                   "xchg f");

    // Pin the pool's single worker BEFORE Open queues producer tasks.
    blocker_ = std::make_unique<WorkerPool::TaskGroup>(&WorkerPool::Global());
    std::promise<void> occupied;
    released_ = std::make_shared<std::promise<void>>();
    std::shared_future<void> release_future(released_->get_future());
    blocker_->Spawn([&occupied, release_future] {
      occupied.set_value();
      release_future.wait();
    });
    occupied.get_future().wait();

    exchange_->Open();
  }

  void TearDown() override {
    released_->set_value();  // unpin; Close's Shutdown reaps the producers
    // Destruction order matters: the TaskGroup and the exchange must die
    // before ResetGlobal destroys the pool they point into (~TaskGroup
    // Waits on the pool's mutex).
    blocker_.reset();
    exchange_->Close();
    exchange_.reset();
    WorkerPool::ResetGlobal(0);
  }

  std::unique_ptr<TestDb> db_;
  const Table* fact_ = nullptr;
  QueryContext ctx_;
  FilterRuntime runtime_;
  std::unique_ptr<ExchangeOperator> exchange_;
  std::unique_ptr<WorkerPool::TaskGroup> blocker_;
  std::shared_ptr<std::promise<void>> released_;
};

TEST_F(RawExchangeWakeupTest, CancelWakesParkedConsumer) {
  std::promise<bool> consumer_done;
  std::thread consumer([this, &consumer_done] {
    Batch batch;
    consumer_done.set_value(exchange_->Next(&batch));
  });

  // Let the consumer park (no producer can run: the pool is pinned), then
  // cancel. Without the cancel listener + cancelled-aware predicate the
  // consumer would sleep until the blocker releases — i.e. forever here.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ctx_.Cancel(Status::Cancelled("client went away"));

  auto done = consumer_done.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "consumer stayed parked after Cancel";
  EXPECT_FALSE(done.get());  // a cancelled query's Next reports exhaustion
  consumer.join();
  EXPECT_TRUE(ctx_.status().IsCancelled());
}

TEST_F(RawExchangeWakeupTest, DeadlineWakesParkedConsumer) {
  ctx_.SetDeadlineAfterMs(50);
  std::promise<bool> consumer_done;
  std::thread consumer([this, &consumer_done] {
    Batch batch;
    consumer_done.set_value(exchange_->Next(&batch));
  });

  // Nobody cancels explicitly: the parked consumer itself must notice the
  // deadline (deadline-aware wait), self-cancel, and return.
  auto done = consumer_done.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "consumer stayed parked past its deadline";
  EXPECT_FALSE(done.get());
  consumer.join();
  EXPECT_TRUE(ctx_.status().IsDeadlineExceeded());
}

// ---- QueryService: deadlines, shedding, bounded waits, fault recovery ----

std::unique_ptr<TestDb> MakeServiceDb() {
  return MakeStarDb(2, 15000, 250, {0.4, 0.5}, 313, /*zipf=*/0.5);
}

TEST(QueryServiceResilience, ExpiredClientDeadlineIsTimedOutNotServed) {
  auto db = MakeServiceDb();
  QueryService service(&db->catalog, QueryServiceOptions{});

  QueryContext ctx;
  ctx.SetDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  const QueryResult r = service.Execute(db->spec, &ctx);
  EXPECT_TRUE(r.status.IsDeadlineExceeded());
  EXPECT_EQ(r.metrics.result_rows, 0);  // never planned, never ran

  // A fresh query right after is served normally.
  EXPECT_TRUE(service.Execute(db->spec).status.ok());
  const ServingStats stats = service.serving_stats();
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.served, 1);
  EXPECT_EQ(service.queries_served(), 1);
}

TEST(QueryServiceResilience, DefaultDeadlineCoversSlowAdmittedQueries) {
  auto db = MakeServiceDb();
  QueryServiceOptions options;
  options.default_deadline_ms = 10;
  // Deterministic "slow query": park after admission until well past the
  // deadline; the pre-planning ShouldStop must then stop it.
  options.post_admit_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  QueryService service(&db->catalog, options);

  const QueryResult r = service.Execute(db->spec);
  EXPECT_TRUE(r.status.IsDeadlineExceeded());
  EXPECT_EQ(service.serving_stats().timed_out, 1);
}

TEST(QueryServiceResilience, FullAdmissionQueueShedsImmediately) {
  auto db = MakeServiceDb();
  QueryServiceOptions options;
  options.max_concurrent_queries = 1;
  options.admission_queue_limit = 0;  // run-or-shed: nobody waits

  std::promise<void> admitted_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> first{true};
  options.post_admit_hook = [&] {
    // Only the first (occupying) query parks; follow-ups run through.
    if (first.exchange(false)) {
      admitted_promise.set_value();
      release.wait();
    }
  };
  QueryService service(&db->catalog, options);

  std::thread occupant(
      [&] { EXPECT_TRUE(service.Execute(db->spec).status.ok()); });
  admitted_promise.get_future().wait();

  // House full, queue bound 0: shed synchronously, no waiting.
  const QueryResult shed = service.Execute(db->spec);
  EXPECT_TRUE(shed.status.IsResourceExhausted());

  release_promise.set_value();
  occupant.join();

  // Capacity was not leaked: the service keeps serving.
  EXPECT_TRUE(service.Execute(db->spec).status.ok());
  const ServingStats stats = service.serving_stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.Total(), 3);
}

TEST(QueryServiceResilience, AdmissionWaitIsBoundedByServiceTimeout) {
  auto db = MakeServiceDb();
  QueryServiceOptions options;
  options.max_concurrent_queries = 1;
  options.admission_timeout_ms = 30;

  std::promise<void> admitted_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> first{true};
  options.post_admit_hook = [&] {
    if (first.exchange(false)) {
      admitted_promise.set_value();
      release.wait();
    }
  };
  QueryService service(&db->catalog, options);

  std::thread occupant(
      [&] { EXPECT_TRUE(service.Execute(db->spec).status.ok()); });
  admitted_promise.get_future().wait();

  // Queue is unbounded, so this waits — but only up to the timeout.
  const QueryResult timed_out = service.Execute(db->spec);
  EXPECT_TRUE(timed_out.status.IsDeadlineExceeded());

  release_promise.set_value();
  occupant.join();
  EXPECT_EQ(service.serving_stats().timed_out, 1);
  EXPECT_TRUE(service.Execute(db->spec).status.ok());
}

TEST(QueryServiceResilience, CancelWakesAdmissionWaiter) {
  auto db = MakeServiceDb();
  QueryServiceOptions options;
  options.max_concurrent_queries = 1;  // no timeout, no queue bound

  std::promise<void> admitted_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> first{true};
  options.post_admit_hook = [&] {
    if (first.exchange(false)) {
      admitted_promise.set_value();
      release.wait();
    }
  };
  QueryService service(&db->catalog, options);

  std::thread occupant(
      [&] { EXPECT_TRUE(service.Execute(db->spec).status.ok()); });
  admitted_promise.get_future().wait();

  QueryContext waiter_ctx;
  std::promise<QueryResult> waiter_result;
  std::thread waiter([&] {
    waiter_result.set_value(service.Execute(db->spec, &waiter_ctx));
  });

  // The waiter parks on the admission CV (unbounded, no timeout). Cancel
  // must wake it promptly — the occupant is still holding the only slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  waiter_ctx.Cancel(Status::Cancelled("client disconnected"));

  auto fut = waiter_result.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "admission waiter stayed parked after Cancel";
  EXPECT_TRUE(fut.get().status.IsCancelled());
  waiter.join();

  release_promise.set_value();
  occupant.join();
  const ServingStats stats = service.serving_stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.served, 1);
}

/// Faults injected through the service — at the planning surface and in
/// the engine mid-drain — surface in QueryResult::status, count as
/// failures, and leave pool + plan cache serving identical results.
TEST(QueryServiceResilience, InjectedFaultsDoNotPoisonTheService) {
  GlobalPoolGuard pool_guard;
  FaultGuard fault_guard;
  WorkerPool::ResetGlobal(4);

  auto db = MakeServiceDb();
  QueryServiceOptions options;
  options.execution.exec.threads = 4;
  options.max_workers_per_query = 4;
  // Build privately every run: the kWorkerTask/kFilterFill sites live in
  // the build drain and filter fill, which a build-cache hit skips — this
  // test is about faults on the engine path itself. Faults during *shared*
  // builds are covered by tests/test_shared_builds.cc.
  options.use_build_cache = false;
  QueryService service(&db->catalog, options);

  const QueryResult baseline = service.Execute(db->spec);
  ASSERT_TRUE(baseline.status.ok());

  int64_t expect_failed = 0;
  for (FaultInjector::Site site :
       {FaultInjector::Site::kPlanCacheLookup,
        FaultInjector::Site::kWorkerTask, FaultInjector::Site::kFilterFill,
        FaultInjector::Site::kExchangePush}) {
    FaultInjector::Global().Arm(site, 1);
    const QueryResult faulted = service.Execute(db->spec);
    FaultInjector::Global().DisarmAll();
    EXPECT_TRUE(faulted.status.IsInternal())
        << FaultInjector::SiteName(site);
    ++expect_failed;

    const QueryResult after = service.Execute(db->spec);
    EXPECT_TRUE(after.status.ok()) << FaultInjector::SiteName(site);
    ExpectMetricsEqual(baseline.metrics, after.metrics,
                       std::string("after fault at ") +
                           FaultInjector::SiteName(site));
  }

  const ServingStats stats = service.serving_stats();
  EXPECT_EQ(stats.failed, expect_failed);
  EXPECT_EQ(stats.served, 1 + expect_failed);  // baseline + one per recovery
  EXPECT_EQ(stats.Total(), 1 + 2 * expect_failed);
  EXPECT_EQ(service.peak_concurrent(), 1);
}

TEST(QueryServiceResilience, ServingEnvOverrides) {
  // No env set: options pass through untouched.
  QueryServiceOptions base;
  base.default_deadline_ms = 7;
  base.admission_queue_limit = 3;
  const QueryServiceOptions same = ApplyServingEnvOverrides(base);
  EXPECT_EQ(same.default_deadline_ms, 7);
  EXPECT_EQ(same.admission_queue_limit, 3);

  ::setenv("BQO_DEADLINE_MS", "250", 1);
  ::setenv("BQO_ADMISSION_QUEUE", "0", 1);
  const QueryServiceOptions overridden = ApplyServingEnvOverrides(base);
  ::unsetenv("BQO_DEADLINE_MS");
  ::unsetenv("BQO_ADMISSION_QUEUE");
  EXPECT_EQ(overridden.default_deadline_ms, 250);
  EXPECT_EQ(overridden.admission_queue_limit, 0);  // "0" is meaningful
}

}  // namespace
}  // namespace bqo

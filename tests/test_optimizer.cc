// Tests for the optimizer stack: DP baseline, snowflake extraction,
// Algorithms 2 & 3 (BQO), cost-based filter pruning, integration modes.
#include <gtest/gtest.h>

#include "src/exec/exact_cost.h"
#include "src/exec/executor.h"
#include "src/optimizer/bqo.h"
#include "src/optimizer/cost_model.h"
#include "src/optimizer/dp_optimizer.h"
#include "src/optimizer/optimizer.h"
#include "src/plan/enumerate.h"
#include "src/plan/pushdown.h"
#include "src/stats/estimated_cost.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeChainDb;
using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;

// ---------- DP baseline ----------

TEST(DpBaseline, MatchesExhaustiveBlindMinimum) {
  auto db = MakeStarDb(4, 2000, 80, {0.3, 0.1, 0.8, 0.5}, 7);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  EstimatedCoutModel model(&stats);

  Plan dp_plan = OptimizeDpBaseline(graph, &model);
  ASSERT_TRUE(dp_plan.Validate());
  ClearBitvectors(&dp_plan);
  const double dp_cost = model.Cout(dp_plan);

  // Exhaustive filter-blind minimum over right deep trees.
  double best = -1;
  for (const auto& order : EnumerateRightDeepOrders(graph)) {
    Plan plan = BuildRightDeepPlan(graph, order);
    ClearBitvectors(&plan);
    const double c = model.Cout(plan);
    if (best < 0 || c < best) best = c;
  }
  EXPECT_NEAR(dp_cost, best, best * 0.01);
}

TEST(DpBaseline, GreedyHandlesWideQueries) {
  auto db = MakeStarDb(18, 3000, 30, {0.5, 0.5, 0.5}, 3);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  EstimatedCoutModel model(&stats);
  DpOptions options;
  options.max_dp_relations = 10;  // force greedy path
  Plan plan = OptimizeDpBaseline(graph, &model, options);
  EXPECT_TRUE(plan.Validate());
  EXPECT_TRUE(plan.IsRightDeep());
  EXPECT_EQ(RelSetCount(plan.root->rel_set), 19);
}

TEST(DpBaseline, BushyModeProducesValidPlanAtMostRightDeepCost) {
  auto db = MakeChainDb(5, 3000, 0.5, {-1, -1, -1, -1, 0.1}, 17);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  EstimatedCoutModel model(&stats);
  DpOptions bushy;
  bushy.bushy = true;
  Plan bushy_plan = OptimizeDpBaseline(graph, &model, bushy);
  ASSERT_TRUE(bushy_plan.Validate());
  Plan rd_plan = OptimizeDpBaseline(graph, &model);
  ClearBitvectors(&bushy_plan);
  ClearBitvectors(&rd_plan);
  EXPECT_LE(model.Cout(bushy_plan), model.Cout(rd_plan) * 1.01);
}

// ---------- Snowflake detection ----------

TEST(Snowflake, FactDetectionOnStar) {
  auto db = MakeStarDb(3, 1000, 50, {0.5}, 5);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  auto units = MakeLeafUnits(graph);
  std::vector<int> active = {0, 1, 2, 3};
  const auto facts = FindFactUnits(graph, units, active);
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0], 0);  // relation 0 is the fact
  const auto members = ExpandSnowflake(graph, units, active, 0);
  EXPECT_EQ(members.size(), 4u);
}

TEST(Snowflake, TwoFactsDetected) {
  // Galaxy: two facts sharing one dimension.
  testing::TestDb db;
  Rng rng(9);
  TableGenSpec dim;
  dim.name = "d";
  dim.rows = 100;
  dim.with_label = false;
  GenerateTable(&db.catalog, dim, &rng);
  for (const char* name : {"f1", "f2"}) {
    TableGenSpec f;
    f.name = name;
    f.rows = 2000;
    f.with_pk = false;
    f.with_label = false;
    f.fks.push_back(FkSpec{"d_fk", "d", "d_id", 0.0, 0.0});
    GenerateTable(&db.catalog, f, &rng);
  }
  db.spec.relations = {
      {"f1", "f1", nullptr}, {"f2", "f2", nullptr}, {"d", "d", nullptr}};
  db.spec.joins = {{"f1", "d_fk", "d", "d_id"}, {"f2", "d_fk", "d", "d_id"}};
  auto graph_result = db.Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  auto units = MakeLeafUnits(graph);
  const auto facts = FindFactUnits(graph, units, {0, 1, 2});
  EXPECT_EQ(facts.size(), 2u);  // f1 and f2; d is referenced -> dimension
}

TEST(Snowflake, GroupBranchesMergesConnectedBranches) {
  // Star with 3 dims where d0 and d1 also join each other.
  auto db = MakeStarDb(3, 1000, 50, {}, 5);
  db->spec.joins.push_back({"d0", "attr1", "d1", "attr1"});
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  auto units = MakeLeafUnits(graph);
  const auto groups = GroupBranches(graph, units, {0, 1, 2, 3}, 0);
  ASSERT_EQ(groups.size(), 2u);
  // One group of {d0, d1} (connected), one of {d2}.
  const auto& big = groups[0].size() == 2 ? groups[0] : groups[1];
  const auto& small = groups[0].size() == 2 ? groups[1] : groups[0];
  EXPECT_EQ(big, (std::vector<int>{1, 2}));
  EXPECT_EQ(small, (std::vector<int>{3}));
}

// ---------- Algorithm 2 / Algorithm 3 ----------

class BqoVsBaselineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BqoVsBaselineTest, BqoNeverWorseThanBaselineOnSnowflakes) {
  const uint64_t seed = GetParam();
  auto db = MakeSnowflakeDb({2, 1, 2}, 4000, 80, 0.5,
                            {0.1, 0.5, 0.25}, seed, 0.4);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);

  OptimizerOptions base_opts, bqo_opts;
  base_opts.mode = OptimizerMode::kBaselinePostProcess;
  base_opts.lambda_thresh = -1;  // isolate join-order effects
  bqo_opts.mode = OptimizerMode::kBqoShallow;
  bqo_opts.lambda_thresh = -1;

  OptimizedQuery baseline = OptimizeQuery(graph, &stats, base_opts);
  OptimizedQuery bqo = OptimizeQuery(graph, &stats, bqo_opts);
  ASSERT_TRUE(baseline.plan.Validate());
  ASSERT_TRUE(bqo.plan.Validate());

  // Judge by TRUE cost (exact model), not the estimates they planned with.
  ExactCoutModel exact;
  const double baseline_cost = exact.Cout(baseline.plan);
  const double bqo_cost = exact.Cout(bqo.plan);
  EXPECT_LE(bqo_cost, baseline_cost * 1.05) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BqoVsBaselineTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Bqo, StarPlanDrawnFromTheoremCandidates) {
  auto db = MakeStarDb(4, 3000, 100, {0.15, 0.6, 0.35, 0.8}, 23);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  EstimatedCoutModel model(&stats);
  Plan plan = OptimizeBqo(graph, &model);
  ASSERT_TRUE(plan.Validate());
  ASSERT_TRUE(plan.IsRightDeep());
  const std::vector<int> order = plan.RightDeepOrder();
  // Theorem 4.1 candidates: fact first, or a dimension then the fact.
  if (order[0] == 0) {
    SUCCEED();
  } else {
    EXPECT_EQ(order[1], 0);
  }
}

TEST(Bqo, MultiFactQueryCoversAllRelations) {
  // Two facts sharing a dimension plus private dimensions.
  testing::TestDb db;
  Rng rng(31);
  for (const char* dname : {"shared", "pd1", "pd2"}) {
    TableGenSpec d;
    d.name = dname;
    d.rows = 150;
    d.with_label = false;
    GenerateTable(&db.catalog, d, &rng);
  }
  {
    TableGenSpec f;
    f.name = "f1";
    f.rows = 5000;
    f.with_pk = false;
    f.with_label = false;
    f.fks.push_back(FkSpec{"shared_fk", "shared", "shared_id", 0.0, 0.0});
    f.fks.push_back(FkSpec{"pd1_fk", "pd1", "pd1_id", 0.0, 0.0});
    GenerateTable(&db.catalog, f, &rng);
  }
  {
    TableGenSpec f;
    f.name = "f2";
    f.rows = 4000;
    f.with_pk = false;
    f.with_label = false;
    f.fks.push_back(FkSpec{"shared_fk", "shared", "shared_id", 0.0, 0.0});
    f.fks.push_back(FkSpec{"pd2_fk", "pd2", "pd2_id", 0.0, 0.0});
    GenerateTable(&db.catalog, f, &rng);
  }
  db.spec.relations = {{"f1", "f1", nullptr},
                       {"f2", "f2", nullptr},
                       {"shared", "shared", testing::SelPredicate(0.2)},
                       {"pd1", "pd1", testing::SelPredicate(0.5)},
                       {"pd2", "pd2", nullptr}};
  db.spec.joins = {{"f1", "shared_fk", "shared", "shared_id"},
                   {"f2", "shared_fk", "shared", "shared_id"},
                   {"f1", "pd1_fk", "pd1", "pd1_id"},
                   {"f2", "pd2_fk", "pd2", "pd2_id"}};
  auto graph_result = db.Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db.catalog);
  EstimatedCoutModel model(&stats);
  Plan plan = OptimizeBqo(graph, &model);
  ASSERT_TRUE(plan.Validate());
  EXPECT_EQ(plan.root->rel_set, graph.AllRels());

  // Executing the optimized plan must agree with the baseline plan.
  PushDownBitvectors(&plan);
  Plan baseline = OptimizeDpBaseline(graph, &model);
  PushDownBitvectors(&baseline);
  const QueryMetrics m1 = ExecutePlan(plan);
  const QueryMetrics m2 = ExecutePlan(baseline);
  EXPECT_EQ(m1.result_checksum, m2.result_checksum);
}

// ---------- Cost-based filter pruning (Section 6.3) ----------

TEST(CostBasedFilters, UnselectiveFiltersArePruned) {
  // d1 keeps everything (no predicate) -> its filter eliminates ~0% and
  // must be pruned; d0 at 10% must survive.
  auto db = MakeStarDb(2, 3000, 100, {0.1, -1.0}, 13);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  EstimatedCoutModel model(&stats);
  Plan plan = BuildRightDeepPlan(graph, {0, 1, 2});
  PushDownBitvectors(&plan);
  const int pruned = PruneIneffectiveFilters(&plan, &model, 0.05);
  EXPECT_EQ(pruned, 1);
  int kept = 0;
  for (const PlanFilter& f : plan.filters) {
    if (!f.pruned) {
      ++kept;
      EXPECT_GT(f.estimated_lambda, 0.5);
    }
  }
  EXPECT_EQ(kept, 1);
}

TEST(CostBasedFilters, ExecutorHonorsPruning) {
  auto db = MakeStarDb(2, 3000, 100, {0.1, -1.0}, 13);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  EstimatedCoutModel model(&stats);
  Plan plan = BuildRightDeepPlan(graph, {0, 1, 2});
  PushDownBitvectors(&plan);
  PruneIneffectiveFilters(&plan, &model, 0.05);
  const QueryMetrics m = ExecutePlan(plan);
  int created = 0;
  for (const auto& fs : m.filters) {
    if (fs.created) ++created;
  }
  EXPECT_EQ(created, 1);
}

TEST(CostBasedFilters, ThresholdFormula) {
  EXPECT_DOUBLE_EQ(LambdaThreshold(1.0, 10.0), 0.9);
  EXPECT_DOUBLE_EQ(LambdaThreshold(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(LambdaThreshold(20.0, 10.0), 0.0);  // clamped
}

// ---------- Integration modes (Section 6.4) ----------

TEST(IntegrationModes, AlternativePlanTakesTheCheaper) {
  auto db = MakeSnowflakeDb({2, 2}, 3000, 80, 0.5, {0.1, 0.4}, 41);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  OptimizerOptions options;
  options.lambda_thresh = -1;
  double costs[3];
  const OptimizerMode modes[3] = {OptimizerMode::kBaselinePostProcess,
                                  OptimizerMode::kBqoShallow,
                                  OptimizerMode::kAlternativePlan};
  for (int i = 0; i < 3; ++i) {
    options.mode = modes[i];
    costs[i] = OptimizeQuery(graph, &stats, options).estimated_cost;
  }
  EXPECT_LE(costs[2], costs[0] * 1.0001);
  EXPECT_LE(costs[2], costs[1] * 1.0001);
}

TEST(IntegrationModes, ExhaustiveAtMostBqoCost) {
  auto db = MakeStarDb(4, 2500, 60, {0.2, 0.7, 0.4, 0.9}, 53);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  OptimizerOptions options;
  options.lambda_thresh = -1;
  options.mode = OptimizerMode::kExhaustive;
  const double exhaustive = OptimizeQuery(graph, &stats, options).estimated_cost;
  options.mode = OptimizerMode::kBqoShallow;
  const double bqo = OptimizeQuery(graph, &stats, options).estimated_cost;
  EXPECT_LE(exhaustive, bqo * 1.0001);
}

TEST(IntegrationModes, NoBitvectorModeStripsFilters) {
  auto db = MakeStarDb(3, 1000, 50, {0.5}, 5);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  StatsCatalog stats(&db->catalog);
  OptimizerOptions options;
  options.mode = OptimizerMode::kNoBitvectors;
  OptimizedQuery q = OptimizeQuery(graph_result.value(), &stats, options);
  EXPECT_TRUE(q.plan.filters.empty());
}

TEST(IntegrationModes, OptimizedPlansAllComputeTheSameResult) {
  auto db = MakeSnowflakeDb({2, 1}, 2500, 70, 0.5, {0.2, 0.6}, 61, 0.5);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();
  StatsCatalog stats(&db->catalog);
  OptimizerOptions options;
  uint64_t checksum = 0;
  bool first = true;
  for (OptimizerMode mode :
       {OptimizerMode::kBaselinePostProcess, OptimizerMode::kNoBitvectors,
        OptimizerMode::kBqoShallow, OptimizerMode::kAlternativePlan,
        OptimizerMode::kExhaustive}) {
    options.mode = mode;
    OptimizedQuery q = OptimizeQuery(graph, &stats, options);
    ExecutionOptions exec;
    exec.use_bitvectors = mode != OptimizerMode::kNoBitvectors;
    const QueryMetrics m = ExecutePlan(q.plan, exec);
    if (first) {
      checksum = m.result_checksum;
      first = false;
    } else {
      EXPECT_EQ(m.result_checksum, checksum) << OptimizerModeName(mode);
    }
  }
}

}  // namespace
}  // namespace bqo

// Validation of the paper's analysis (Sections 4 and 5) on random instances:
//
//  * Theorem 4.1 / 4.2 — for star queries with PKFK joins, the minimum Cout
//    over ALL right deep trees without cross products is achieved inside the
//    n+1 candidate set {T(R0, ...)} ∪ {T(Rk, R0, ...)}.
//  * Lemma 4 — every order with the fact right-most has identical Cout.
//  * Lemma 5 — T(Rk, R0, X...) cost is permutation-invariant in X.
//  * Theorem 5.3 — branch (chain) queries: n+1 candidates suffice.
//  * Theorem 5.1 — snowflake queries: n+1 candidates suffice.
//  * Lemma 8 — all partially-ordered right deep trees (fact right-most) of a
//    snowflake have equal Cout.
//
// All statements assume filters with no false positives, so costs come from
// ExactCoutModel (execution with ExactFilter). Instances are randomized over
// seeds via parameterized tests.
#include <gtest/gtest.h>

#include <set>

#include "src/exec/exact_cost.h"
#include "src/plan/enumerate.h"
#include "src/plan/pushdown.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeChainDb;
using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;

double PlanCout(const JoinGraph& graph, const std::vector<int>& order) {
  Plan plan = BuildRightDeepPlan(graph, order);
  PushDownBitvectors(&plan);
  ExactCoutModel model;
  return model.Cout(plan);
}

struct MinResult {
  double min_cost = 0;
  std::vector<int> argmin;
};

MinResult MinOver(const JoinGraph& graph,
                  const std::vector<std::vector<int>>& orders) {
  MinResult result;
  result.min_cost = -1;
  for (const auto& order : orders) {
    const double c = PlanCout(graph, order);
    if (result.min_cost < 0 || c < result.min_cost) {
      result.min_cost = c;
      result.argmin = order;
    }
  }
  return result;
}

// ---------- Star queries ----------

class StarTheoremTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StarTheoremTest, Theorem41CandidateSetContainsMinimum) {
  const uint64_t seed = GetParam();
  // Vary selectivities with the seed for instance diversity.
  const double s0 = 0.1 + 0.15 * static_cast<double>(seed % 5);
  auto db = MakeStarDb(4, 1200, 50, {s0, 0.8, 0.3, -1.0}, seed, 0.4);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  const auto all_orders = EnumerateRightDeepOrders(graph);
  ASSERT_EQ(all_orders.size(), 48u);  // 2 * 4!
  const MinResult global = MinOver(graph, all_orders);

  const auto candidates = StarCandidateOrders(graph, 0);
  ASSERT_EQ(candidates.size(), 5u);
  const MinResult candidate_min = MinOver(graph, candidates);

  EXPECT_DOUBLE_EQ(candidate_min.min_cost, global.min_cost)
      << "seed=" << seed;
}

TEST_P(StarTheoremTest, Lemma4FactFirstOrdersHaveEqualCost) {
  const uint64_t seed = GetParam();
  auto db = MakeStarDb(3, 900, 40, {0.25, 0.7, 0.5}, seed, 0.3);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  std::vector<int> dims = {1, 2, 3};
  double first_cost = -1;
  do {
    std::vector<int> order = {0};
    order.insert(order.end(), dims.begin(), dims.end());
    const double c = PlanCout(graph, order);
    if (first_cost < 0) {
      first_cost = c;
    } else {
      EXPECT_DOUBLE_EQ(c, first_cost) << "seed=" << seed;
    }
  } while (std::next_permutation(dims.begin(), dims.end()));
}

TEST_P(StarTheoremTest, Lemma5FactSecondOrdersHaveEqualCost) {
  const uint64_t seed = GetParam();
  auto db = MakeStarDb(4, 900, 40, {0.2, 0.6, 0.4, 0.9}, seed);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  // T(R2, R0, perm of {R1, R3, R4}).
  std::vector<int> rest = {1, 3, 4};
  double first_cost = -1;
  do {
    std::vector<int> order = {2, 0};
    order.insert(order.end(), rest.begin(), rest.end());
    const double c = PlanCout(graph, order);
    if (first_cost < 0) {
      first_cost = c;
    } else {
      EXPECT_DOUBLE_EQ(c, first_cost) << "seed=" << seed;
    }
  } while (std::next_permutation(rest.begin(), rest.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarTheoremTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 29));

// ---------- Branch (chain) queries ----------

class BranchTheoremTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BranchTheoremTest, Theorem53CandidateSetContainsMinimum) {
  const uint64_t seed = GetParam();
  const double tail_sel = 0.05 + 0.2 * static_cast<double>(seed % 4);
  auto db = MakeChainDb(5, 2500, 0.35, {-1, -1, 0.9, -1, tail_sel}, seed,
                        0.3);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  const auto all_orders = EnumerateRightDeepOrders(graph);
  ASSERT_EQ(all_orders.size(), 16u);  // 2^(n-1), n = 5 relations
  const MinResult global = MinOver(graph, all_orders);

  const auto candidates = BranchCandidateOrders({0, 1, 2, 3, 4});
  ASSERT_EQ(candidates.size(), 5u);
  const MinResult candidate_min = MinOver(graph, candidates);

  EXPECT_DOUBLE_EQ(candidate_min.min_cost, global.min_cost)
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchTheoremTest,
                         ::testing::Values(1, 2, 3, 7, 13));

// ---------- Snowflake queries ----------

struct SnowflakeCase {
  std::vector<int> branch_lengths;
  uint64_t seed;
};

class SnowflakeTheoremTest
    : public ::testing::TestWithParam<SnowflakeCase> {};

TEST_P(SnowflakeTheoremTest, Theorem51CandidateSetContainsMinimum) {
  const SnowflakeCase param = GetParam();
  auto db = MakeSnowflakeDb(param.branch_lengths, 1500, 60, 0.6,
                            {0.15, 0.6, 0.35}, param.seed, 0.3);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  const auto all_orders = EnumerateRightDeepOrders(graph);
  const MinResult global = MinOver(graph, all_orders);

  SnowflakeShape shape;
  shape.fact = 0;
  int next = 1;
  for (int len : param.branch_lengths) {
    std::vector<int> branch;
    for (int j = 0; j < len; ++j) branch.push_back(next++);
    shape.branches.push_back(std::move(branch));
  }
  const auto candidates = SnowflakeCandidateOrders(shape);
  ASSERT_EQ(static_cast<int>(candidates.size()), graph.num_relations());
  for (const auto& c : candidates) {
    ASSERT_TRUE(IsValidRightDeepOrder(graph, c));
  }
  const MinResult candidate_min = MinOver(graph, candidates);

  EXPECT_DOUBLE_EQ(candidate_min.min_cost, global.min_cost)
      << "seed=" << param.seed << " plans=" << all_orders.size();
}

TEST_P(SnowflakeTheoremTest, Lemma8PartiallyOrderedTreesHaveEqualCost) {
  const SnowflakeCase param = GetParam();
  auto db = MakeSnowflakeDb(param.branch_lengths, 1200, 50, 0.6,
                            {0.2, 0.5, 0.4}, param.seed);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  // All fact-right-most orders are partially ordered (Lemma 6) and must
  // share a single Cout value.
  double first_cost = -1;
  int checked = 0;
  for (const auto& order : EnumerateRightDeepOrders(graph)) {
    if (order[0] != 0) continue;
    const double c = PlanCout(graph, order);
    if (first_cost < 0) {
      first_cost = c;
    } else {
      ASSERT_DOUBLE_EQ(c, first_cost) << "seed=" << param.seed;
    }
    ++checked;
  }
  // A single chain branch has exactly one fact-first partial order; every
  // multi-branch shape has several.
  const int min_expected = param.branch_lengths.size() > 1 ? 2 : 1;
  EXPECT_GE(checked, min_expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SnowflakeTheoremTest,
    ::testing::Values(SnowflakeCase{{1, 2}, 1}, SnowflakeCase{{2, 2}, 2},
                      SnowflakeCase{{1, 2}, 3}, SnowflakeCase{{3}, 4},
                      SnowflakeCase{{2, 2}, 5}, SnowflakeCase{{1, 1, 2}, 6}));

// ---------- Absorption rule (Lemmas 1 and 3) ----------

class AbsorptionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AbsorptionTest, SemijoinEqualsJoinCardinalityForPkFk) {
  const uint64_t seed = GetParam();
  auto db = MakeStarDb(3, 2000, 80, {0.3, 0.1, 0.7}, seed, 0.5);
  auto graph_result = db->Graph();
  ASSERT_TRUE(graph_result.ok());
  const JoinGraph& graph = graph_result.value();

  Plan plan = BuildRightDeepPlan(graph, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  ExactCoutModel model;
  const CoutBreakdown b = model.Compute(plan);

  // Fact leaf output = |R0/(R1,R2,R3)|; every join output must equal it
  // (|R0 ⋈ R1 ⋈ ... | = |R0/(...)| for PKFK joins with exact filters).
  double fact_leaf = -1;
  std::vector<double> join_outputs;
  for (const PlanNode* n : plan.nodes) {
    if (n->IsLeaf() && n->relation == 0) {
      fact_leaf = b.node_output[static_cast<size_t>(n->id)];
    }
    if (n->kind == PlanNode::Kind::kJoin) {
      join_outputs.push_back(b.node_output[static_cast<size_t>(n->id)]);
    }
  }
  ASSERT_GE(fact_leaf, 0);
  for (double j : join_outputs) {
    EXPECT_DOUBLE_EQ(j, fact_leaf) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbsorptionTest,
                         ::testing::Values(1, 2, 3, 21, 42));

}  // namespace
}  // namespace bqo

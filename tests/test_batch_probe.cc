// Batch/scalar parity for the vectorized probe pipeline.
//
// The contract (bitvector_filter.h) is that MayContainBatch returns a pass
// set bit-identical to calling MayContain per selected index — prefetching
// must never change bits. These tests check that for all three filter kinds
// over random key sets (identity and sparse selections), that exact filters
// keep zero false negatives through the batched path, and that end-to-end
// ExecutePlan checksums are invariant to the vectorized scan/join rewrite
// (filters on vs off, and across filter kinds).
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/exec/batch.h"
#include "src/exec/executor.h"
#include "src/filter/bitvector_filter.h"
#include "src/plan/pushdown.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeChainDb;
using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;

std::vector<uint64_t> RandomHashes(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(static_cast<size_t>(n));
  for (auto& h : out) h = rng.Next();
  return out;
}

/// Scalar reference: the surviving indices of `sel_in` per MayContain.
std::vector<uint16_t> ScalarPassSet(const BitvectorFilter& filter,
                                    const std::vector<uint64_t>& hashes,
                                    const std::vector<uint16_t>& sel_in) {
  std::vector<uint16_t> out;
  for (uint16_t s : sel_in) {
    if (filter.MayContain(hashes[s])) out.push_back(s);
  }
  return out;
}

class BatchProbeParityTest : public ::testing::TestWithParam<FilterKind> {};

TEST_P(BatchProbeParityTest, IdentitySelectionMatchesScalar) {
  FilterConfig config;
  config.kind = GetParam();
  constexpr int kInserted = 5000;
  auto filter = CreateFilter(config, kInserted);
  const auto keys = RandomHashes(kInserted, 11);
  for (uint64_t k : keys) filter->Insert(k);

  Rng rng(12);
  for (int trial = 0; trial < 8; ++trial) {
    // Mixed stream: ~half hits, half random (mostly misses).
    std::vector<uint64_t> probes(kBatchSize);
    for (auto& h : probes) {
      h = rng.Bernoulli(0.5) ? keys[rng.Uniform(keys.size())] : rng.Next();
    }
    std::vector<uint16_t> sel(kBatchSize);
    for (int i = 0; i < kBatchSize; ++i) sel[i] = static_cast<uint16_t>(i);
    const auto expected = ScalarPassSet(*filter, probes, sel);

    const int m = filter->MayContainBatch(probes.data(), sel.data(),
                                          kBatchSize);
    ASSERT_EQ(static_cast<size_t>(m), expected.size()) << "trial " << trial;
    for (int j = 0; j < m; ++j) {
      EXPECT_EQ(sel[static_cast<size_t>(j)], expected[static_cast<size_t>(j)]);
    }
  }
}

TEST_P(BatchProbeParityTest, SparseSelectionMatchesScalar) {
  FilterConfig config;
  config.kind = GetParam();
  auto filter = CreateFilter(config, 2000);
  const auto keys = RandomHashes(2000, 21);
  for (uint64_t k : keys) filter->Insert(k);

  Rng rng(22);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<uint64_t> probes(kBatchSize);
    for (auto& h : probes) {
      h = rng.Bernoulli(0.3) ? keys[rng.Uniform(keys.size())] : rng.Next();
    }
    // Sparse ascending selection, as a later filter in the chain sees it.
    std::vector<uint16_t> sel;
    for (int i = 0; i < kBatchSize; ++i) {
      if (rng.Bernoulli(0.4)) sel.push_back(static_cast<uint16_t>(i));
    }
    const auto expected = ScalarPassSet(*filter, probes, sel);

    std::vector<uint16_t> got = sel;
    const int m = filter->MayContainBatch(probes.data(), got.data(),
                                          static_cast<int>(got.size()));
    ASSERT_EQ(static_cast<size_t>(m), expected.size()) << "trial " << trial;
    for (int j = 0; j < m; ++j) {
      EXPECT_EQ(got[static_cast<size_t>(j)], expected[static_cast<size_t>(j)]);
    }
  }
}

TEST_P(BatchProbeParityTest, BatchedProbeHasNoFalseNegatives) {
  FilterConfig config;
  config.kind = GetParam();
  constexpr int kInserted = 4000;
  auto filter = CreateFilter(config, kInserted);
  const auto keys = RandomHashes(kInserted, 31);
  for (uint64_t k : keys) filter->Insert(k);

  std::vector<uint16_t> sel(kBatchSize);
  for (size_t base = 0; base < keys.size(); base += kBatchSize) {
    const int n = static_cast<int>(
        std::min<size_t>(kBatchSize, keys.size() - base));
    for (int i = 0; i < n; ++i) sel[i] = static_cast<uint16_t>(i);
    const int m = filter->MayContainBatch(keys.data() + base, sel.data(), n);
    EXPECT_EQ(m, n);  // every inserted key must survive, for every kind
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BatchProbeParityTest,
                         ::testing::Values(FilterKind::kExact,
                                           FilterKind::kBloom,
                                           FilterKind::kCuckoo),
                         [](const auto& info) {
                           return FilterKindName(info.param);
                         });

TEST(BatchHashParity, HashColumnMatchesHashComposite) {
  Rng rng(5);
  std::vector<int64_t> values(kBatchSize);
  for (auto& v : values) v = static_cast<int64_t>(rng.Next());
  std::vector<uint64_t> batched(kBatchSize);
  HashColumn(values.data(), kBatchSize, batched.data());
  for (int i = 0; i < kBatchSize; ++i) {
    EXPECT_EQ(batched[static_cast<size_t>(i)], HashComposite(&values[i], 1));
  }
}

TEST(BatchHashParity, HashCompositeBatchMatchesHashComposite) {
  Rng rng(6);
  for (size_t width : {2, 3, 8}) {
    std::vector<std::vector<int64_t>> cols(width);
    std::vector<const int64_t*> col_ptrs;
    for (auto& col : cols) {
      col.resize(kBatchSize);
      for (auto& v : col) v = static_cast<int64_t>(rng.Next());
      col_ptrs.push_back(col.data());
    }
    std::vector<uint64_t> batched(kBatchSize);
    HashCompositeBatch(col_ptrs.data(), width, kBatchSize, batched.data());
    for (int i = 0; i < kBatchSize; ++i) {
      int64_t key[8];
      for (size_t c = 0; c < width; ++c) key[c] = cols[c][static_cast<size_t>(i)];
      EXPECT_EQ(batched[static_cast<size_t>(i)], HashComposite(key, width));
    }
  }
}

/// End-to-end: the vectorized scan/probe pipeline must not change results.
/// Checksums are compared across filters-off, and all three filter kinds,
/// on star / chain / snowflake shapes (the seed workloads' building blocks).
TEST(BatchExecParity, ChecksumInvariantAcrossFilterKinds) {
  struct Shape {
    const char* name;
    std::unique_ptr<testing::TestDb> db;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"star", MakeStarDb(3, 6000, 200, {0.3, 0.7, 0.1}, 91,
                                       /*zipf=*/0.7)});
  shapes.push_back({"chain", MakeChainDb(4, 8000, 0.3, {-1, 0.5, -1, 0.4}, 92)});
  shapes.push_back({"snowflake",
                    MakeSnowflakeDb({2, 1}, 5000, 300, 0.5, {0.4, 0.6}, 93)});

  for (auto& shape : shapes) {
    auto graph = shape.db->Graph();
    ASSERT_TRUE(graph.ok()) << shape.name;
    std::vector<int> order(graph.value().num_relations());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    Plan plan = BuildRightDeepPlan(graph.value(), order);
    PushDownBitvectors(&plan);

    ExecutionOptions off;
    off.use_bitvectors = false;
    const QueryMetrics base = ExecutePlan(plan, off);

    for (FilterKind kind :
         {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo}) {
      ExecutionOptions options;
      options.filter_config.kind = kind;
      const QueryMetrics m = ExecutePlan(plan, options);
      EXPECT_EQ(m.result_checksum, base.result_checksum)
          << shape.name << " " << FilterKindName(kind);
      EXPECT_EQ(m.result_rows, base.result_rows)
          << shape.name << " " << FilterKindName(kind);

      // Stride accounting. Scan-applied filters and join residual filters
      // both go through MayContainBatch (probe_batches counts strides of
      // <= kBatchSize probes; joins buffer matched rows into candidate
      // strides first — see HashJoinOperator::WinnowResiduals). At least
      // one filter per query must have taken the batched path, or the
      // vectorized pipeline silently fell back.
      bool any_batched = false;
      for (const FilterStats& fs : m.filters) {
        if (!fs.created) continue;
        EXPECT_LE(fs.passed, fs.probed);
        if (fs.probe_batches > 0) {
          any_batched = true;
          EXPECT_LE(fs.probed, fs.probe_batches * kBatchSize)
              << FilterKindName(kind);
        }
      }
      EXPECT_TRUE(any_batched) << shape.name << " " << FilterKindName(kind);
    }
  }
}

/// Grouped SUM exercises the chunked group emission added with the
/// flat-storage Batch (more groups than kBatchSize must span batches).
TEST(BatchExecParity, GroupedAggregateSpansManyBatches) {
  auto db = MakeStarDb(1, 20000, 3000, {-1.0}, 94);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);
  ExecutionOptions options;
  options.agg.kind = AggKind::kCountStar;
  options.agg.has_group_by = true;
  options.agg.group_column = BoundColumn{1, "d0_id"};
  const QueryMetrics m = ExecutePlan(plan, options);
  // One group per distinct fact FK value; with 20000 facts over 3000 keys
  // that is well past kBatchSize, so emission must chunk across batches.
  const Table* fact = db->catalog.GetTable("f").value();
  const int fk_col = fact->ColumnIndex("d0_fk");
  std::unordered_set<int64_t> distinct;
  for (int64_t r = 0; r < fact->num_rows(); ++r) {
    distinct.insert(fact->column(fk_col).GetInt64(r));
  }
  EXPECT_EQ(m.result_rows, static_cast<int64_t>(distinct.size()));
  EXPECT_GT(m.result_rows, static_cast<int64_t>(kBatchSize));
}

}  // namespace
}  // namespace bqo

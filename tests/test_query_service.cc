// Serving-layer correctness: the shared WorkerPool, the QueryService's
// admission control, and the PlanCache must all be pure scheduling — at any
// pool size and any client count, every query's results and merged stats
// equal its single-query threads==1 run. Pins:
//
//  * WorkerPool task semantics: groups complete, Wait() helps (runs the
//    group's queued tasks on the waiting thread) so a saturated — or
//    size-1 — pool never stalls a drain.
//  * Pool-size invariance: ExecutePlan over star / bushy / sort-merge
//    plans at pool sizes {1,2,4} x exec threads {1,2,4} reproduces the
//    threads==1 results, checksums, and merged filter stats exactly.
//  * Concurrent service parity: {2,4} clients pushing star / snowflake /
//    sort-merge queries (grouped and ungrouped aggregates) through one
//    QueryService get results identical to single-query baseline runs —
//    including each query's ResultChecksum/NumGroups and
//    probed/passed/inserted filter stats.
//  * Plan-cache behavior: hit-path parity (a cached plan executes
//    identically to the freshly optimized one), LRU eviction, hit/miss/
//    eviction counters, and invalidation on catalog change.
//  * Admission control: active queries never exceed max_concurrent_queries
//    and the per-query worker share clamps execution width.
//
// Run under -DBQO_SANITIZE=thread in CI: the concurrent-clients tests are
// the TSan coverage for the whole serving stack.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/executor.h"
#include "src/plan/pushdown.h"
#include "src/server/plan_cache.h"
#include "src/server/query_service.h"
#include "src/server/worker_pool.h"
#include "src/workload/runner.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;
using ::bqo::testing::TestDb;

/// Restores the default (env-sized) global pool when a test that resized
/// it ends, so test order does not matter.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() { WorkerPool::ResetGlobal(0); }
};

// ---- WorkerPool unit tests ----

TEST(WorkerPool, TasksRunToCompletionAcrossGroups) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  WorkerPool::TaskGroup a(&pool);
  WorkerPool::TaskGroup b(&pool);
  for (int i = 0; i < 64; ++i) {
    a.Spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    b.Spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  a.Wait();
  b.Wait();
  EXPECT_EQ(ran.load(), 128);
  // Wait() after completion is a no-op; groups are reusable.
  a.Spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  a.Wait();
  EXPECT_EQ(ran.load(), 129);
}

/// A pool whose only worker is blocked must still complete another group's
/// tasks: Wait() runs them on the waiting thread (helping). This is the
/// per-query progress guarantee admission control relies on.
TEST(WorkerPool, WaitHelpsWhenPoolIsSaturated) {
  WorkerPool pool(1);
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::promise<void> occupied;

  WorkerPool::TaskGroup blocker(&pool);
  blocker.Spawn([&occupied, released] {
    occupied.set_value();
    released.wait();  // pin the pool's single worker
  });
  occupied.get_future().wait();

  WorkerPool::TaskGroup group(&pool);
  std::atomic<int> ran{0};
  const auto self = std::this_thread::get_id();
  std::atomic<bool> all_on_waiter{true};
  for (int i = 0; i < 8; ++i) {
    group.Spawn([&ran, &all_on_waiter, self] {
      if (std::this_thread::get_id() != self) all_on_waiter = false;
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  group.Wait();  // must not deadlock
  EXPECT_EQ(ran.load(), 8);
  // The worker is still pinned, so every task ran inline on this thread.
  EXPECT_TRUE(all_on_waiter.load());

  release.set_value();
  blocker.Wait();
}

// ---- Pool-size invariance of the execution engine ----

struct PlanUnderTest {
  std::unique_ptr<TestDb> db;
  JoinGraph graph;
  Plan plan;
  ExecutionOptions options;
};

std::unique_ptr<PlanUnderTest> MakeStarPlan() {
  auto t = std::make_unique<PlanUnderTest>();
  t->db = MakeStarDb(3, 25000, 300, {0.3, 0.6, 0.15}, 991, /*zipf=*/0.5);
  auto graph = t->db->Graph();
  BQO_CHECK(graph.ok());
  t->graph = std::move(graph.value());
  t->plan = BuildRightDeepPlan(t->graph, {0, 1, 2, 3});
  PushDownBitvectors(&t->plan);
  t->options.agg.kind = AggKind::kSum;
  t->options.agg.sum_column = BoundColumn{0, "measure"};
  t->options.agg.has_group_by = true;
  t->options.agg.group_column = BoundColumn{1, "d0_id"};
  return t;
}

std::unique_ptr<PlanUnderTest> MakeBushyPlan() {
  auto t = std::make_unique<PlanUnderTest>();
  t->db = MakeSnowflakeDb({2, 2}, 18000, 400, 0.5, {0.4, 0.5}, 661,
                          /*zipf=*/0.4);
  auto graph = t->db->Graph();
  BQO_CHECK(graph.ok());
  t->graph = std::move(graph.value());
  t->plan.graph = &t->graph;
  auto branch0 = MakeJoin(t->graph, MakeLeaf(t->graph, 2), MakeLeaf(t->graph, 1));
  auto branch1 = MakeJoin(t->graph, MakeLeaf(t->graph, 4), MakeLeaf(t->graph, 3));
  auto inner = MakeJoin(t->graph, std::move(branch1), MakeLeaf(t->graph, 0));
  t->plan.root = MakeJoin(t->graph, std::move(branch0), std::move(inner));
  BQO_CHECK(t->plan.root != nullptr);
  t->plan.Renumber();
  BQO_CHECK(t->plan.Validate());
  PushDownBitvectors(&t->plan);
  return t;
}

std::unique_ptr<PlanUnderTest> MakeSortMergePlan() {
  auto t = std::make_unique<PlanUnderTest>();
  t->db = MakeStarDb(2, 12000, 250, {0.4, 0.25}, 337, /*zipf=*/0.5);
  auto graph = t->db->Graph();
  BQO_CHECK(graph.ok());
  t->graph = std::move(graph.value());
  t->plan = BuildRightDeepPlan(t->graph, {0, 1, 2});
  PushDownBitvectors(&t->plan);
  t->options.use_sort_merge_join = true;
  return t;
}

void ExpectMetricsEqual(const QueryMetrics& base, const QueryMetrics& m,
                        const std::string& what) {
  EXPECT_EQ(m.result_rows, base.result_rows) << what;
  EXPECT_EQ(m.result_checksum, base.result_checksum) << what;
  EXPECT_EQ(m.leaf_tuples, base.leaf_tuples) << what;
  EXPECT_EQ(m.join_tuples, base.join_tuples) << what;
  ASSERT_EQ(m.filters.size(), base.filters.size()) << what;
  for (size_t i = 0; i < m.filters.size(); ++i) {
    EXPECT_EQ(m.filters[i].created, base.filters[i].created) << what << " f" << i;
    EXPECT_EQ(m.filters[i].probed, base.filters[i].probed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].passed, base.filters[i].passed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].inserted, base.filters[i].inserted)
        << what << " f" << i;
  }
}

/// The pool size changes which OS threads run the drains, never the
/// results: star, bushy, and sort-merge plans at pool {1,2,4} x threads
/// {2,4} must match their threads==1 runs exactly.
TEST(WorkerPoolInvariance, PoolSizeNeverChangesResults) {
  GlobalPoolGuard guard;
  struct Shape {
    const char* name;
    std::unique_ptr<PlanUnderTest> t;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"star", MakeStarPlan()});
  shapes.push_back({"bushy", MakeBushyPlan()});
  shapes.push_back({"sort-merge", MakeSortMergePlan()});

  for (Shape& shape : shapes) {
    ExecutionOptions single = shape.t->options;
    single.exec.threads = 1;
    const QueryMetrics base = ExecutePlan(shape.t->plan, single);

    for (int pool : {1, 2, 4}) {
      WorkerPool::ResetGlobal(pool);
      for (int threads : {2, 4}) {
        ExecutionOptions parallel = shape.t->options;
        parallel.exec.threads = threads;
        parallel.exec.morsel_rows = 1024;
        const QueryMetrics m = ExecutePlan(shape.t->plan, parallel);
        ExpectMetricsEqual(base, m,
                           std::string(shape.name) + " pool=" +
                               std::to_string(pool) +
                               " threads=" + std::to_string(threads));
        // Logical workers are reported regardless of pool size.
        for (const OperatorStats& op : m.operators) {
          if (op.type == OperatorType::kExchange) {
            EXPECT_EQ(op.parallel_workers, threads);
          }
        }
      }
    }
  }
}

/// cpu_ns is the query's own task time: positive, and under parallel
/// execution it includes the pool workers' CPU (worker_cpu_ns).
TEST(WorkerPoolInvariance, CpuTimeAccounting) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(2);
  auto t = MakeStarPlan();

  ExecutionOptions single = t->options;
  const QueryMetrics base = ExecutePlan(t->plan, single);
  EXPECT_GT(base.cpu_ns, 0);

  ExecutionOptions parallel = t->options;
  parallel.exec.threads = 4;
  const QueryMetrics m = ExecutePlan(t->plan, parallel);
  EXPECT_GT(m.cpu_ns, 0);
  int64_t worker_cpu = 0;
  for (const OperatorStats& op : m.operators) worker_cpu += op.worker_cpu_ns;
  EXPECT_GT(worker_cpu, 0);
  EXPECT_GE(m.cpu_ns, worker_cpu);
}

// ---- QueryService: concurrent parity ----

/// Query variants over one TestDb: COUNT(*), ungrouped SUM, grouped SUM.
std::vector<QuerySpec> SpecVariants(const TestDb& db,
                                    const std::string& group_col) {
  std::vector<QuerySpec> specs;
  QuerySpec count = db.spec;
  count.name = db.spec.name + "-count";
  specs.push_back(count);

  QuerySpec sum = db.spec;
  sum.name = db.spec.name + "-sum";
  sum.agg.kind = AggKind::kSum;
  sum.agg.sum_column = BoundColumn{0, "measure"};
  specs.push_back(sum);

  QuerySpec grouped = sum;
  grouped.name = db.spec.name + "-grouped";
  grouped.agg.has_group_by = true;
  grouped.agg.group_column = BoundColumn{1, group_col};
  specs.push_back(grouped);
  return specs;
}

/// Single-query baselines: the same optimizer pipeline the service runs,
/// executed threads==1, one query at a time.
std::vector<QueryMetrics> Baselines(const TestDb& db,
                                    const std::vector<QuerySpec>& specs,
                                    const QueryServiceOptions& options) {
  std::vector<QueryMetrics> out;
  StatsCatalog stats(&db.catalog);
  for (const QuerySpec& spec : specs) {
    auto graph = BuildJoinGraph(db.catalog, spec);
    BQO_CHECK(graph.ok());
    OptimizedQuery optimized =
        OptimizeQuery(graph.value(), &stats, options.optimizer);
    ExecutionOptions exec = options.execution;
    exec.exec.threads = 1;
    exec.agg = spec.agg;
    out.push_back(ExecutePlan(optimized.plan, exec));
  }
  return out;
}

/// Drive `specs` through one service from `clients` threads, `iters` laps
/// each, and pin every result to the single-query baselines.
void RunConcurrentParity(const TestDb& db, const std::vector<QuerySpec>& specs,
                         QueryServiceOptions options, int clients, int iters,
                         const std::string& what) {
  const std::vector<QueryMetrics> base = Baselines(db, specs, options);
  QueryService service(&db.catalog, options);

  std::vector<std::vector<QueryResult>> results(
      static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int it = 0; it < iters; ++it) {
        for (const QuerySpec& spec : specs) {
          results[static_cast<size_t>(c)].push_back(service.Execute(spec));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int c = 0; c < clients; ++c) {
    const auto& client_results = results[static_cast<size_t>(c)];
    ASSERT_EQ(client_results.size(), specs.size() * static_cast<size_t>(iters));
    for (size_t i = 0; i < client_results.size(); ++i) {
      const size_t spec_idx = i % specs.size();
      ExpectMetricsEqual(base[spec_idx], client_results[i].metrics,
                         what + " client=" + std::to_string(c) + " " +
                             specs[spec_idx].name);
    }
  }
  EXPECT_EQ(service.queries_served(),
            static_cast<int64_t>(specs.size()) * clients * iters);
}

/// {2,4} clients x star and snowflake query variants, pool of 4,
/// 2 workers per query: every served result equals its single-query
/// threads==1 baseline. This is the serving stack's TSan workout.
TEST(QueryService, ConcurrentClientsMatchSingleQueryRuns) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(4);

  auto star = MakeStarDb(3, 20000, 300, {0.3, 0.6, 0.15}, 1177, /*zipf=*/0.5);
  auto snowflake =
      MakeSnowflakeDb({2, 2}, 15000, 400, 0.5, {0.4, 0.5}, 2088, /*zipf=*/0.4);

  QueryServiceOptions options;
  options.execution.exec.threads = 2;
  options.max_concurrent_queries = 2;
  options.max_workers_per_query = 2;

  for (int clients : {2, 4}) {
    RunConcurrentParity(*star, SpecVariants(*star, "d0_id"), options, clients,
                        /*iters=*/2,
                        "star clients=" + std::to_string(clients));
    RunConcurrentParity(*snowflake, SpecVariants(*snowflake, "b0_1_id"),
                        options, clients, /*iters=*/2,
                        "snowflake clients=" + std::to_string(clients));
  }
}

/// Sort-merge plans are breakers at the root (no exchange); served
/// concurrently they must still match their baselines.
TEST(QueryService, ConcurrentSortMergeMatchesSingleQueryRuns) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(4);

  auto star = MakeStarDb(2, 12000, 250, {0.4, 0.25}, 433, /*zipf=*/0.5);
  QueryServiceOptions options;
  options.execution.use_sort_merge_join = true;
  options.execution.exec.threads = 2;
  RunConcurrentParity(*star, SpecVariants(*star, "d0_id"), options,
                      /*clients=*/2, /*iters=*/2, "sort-merge");
}

// ---- QueryService: plan cache ----

TEST(QueryService, PlanCacheHitExecutesIdentically) {
  auto db = MakeStarDb(2, 10000, 200, {0.4, 0.5}, 55, /*zipf=*/0.5);
  QueryServiceOptions options;
  QueryService service(&db->catalog, options);
  const QuerySpec spec = SpecVariants(*db, "d0_id")[2];  // grouped SUM

  const QueryResult miss = service.Execute(spec);
  EXPECT_FALSE(miss.plan_cache_hit);
  EXPECT_GT(miss.optimize_ns, 0);

  const QueryResult hit = service.Execute(spec);
  EXPECT_TRUE(hit.plan_cache_hit);
  EXPECT_EQ(hit.optimize_ns, 0);  // nothing was optimized
  EXPECT_EQ(hit.estimated_cost, miss.estimated_cost);
  EXPECT_EQ(hit.pruned_filters, miss.pruned_filters);
  ExpectMetricsEqual(miss.metrics, hit.metrics, "cache hit");

  const PlanCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(QueryService, PlanCacheLruEvictionAndCounters) {
  auto db = MakeStarDb(2, 8000, 200, {0.4, 0.5}, 77, /*zipf=*/0.5);
  QueryServiceOptions options;
  options.plan_cache_capacity = 2;
  // This test pins LRU bookkeeping; disable drift feedback so an entry
  // whose observed lambda strays from its estimate (zipf data) cannot go
  // stale and turn the final hit into a re-optimization.
  options.lambda_drift_margin = 0;
  QueryService service(&db->catalog, options);
  // Three distinct *shapes*: the cache keys on predicate structure, so the
  // specs must differ structurally, not just in literals (those would all
  // land in one entry as re-binds).
  std::vector<QuerySpec> specs;
  std::vector<ExprPtr> predicates;
  predicates.push_back(Lt("attr0", 400));
  predicates.push_back(Between("attr0", 100, 500));
  predicates.push_back(In("attr0", {1, 2, 3, 4, 5}));
  for (size_t i = 0; i < predicates.size(); ++i) {
    QuerySpec spec = db->spec;
    spec.name = "q" + std::to_string(i);
    spec.relations[1].predicate = predicates[i];
    specs.push_back(spec);
  }

  service.Execute(specs[0]);  // miss, {0}
  service.Execute(specs[1]);  // miss, {0,1}
  service.Execute(specs[2]);  // miss, evicts 0 -> {1,2}
  service.Execute(specs[0]);  // miss again, evicts 1 -> {2,0}
  service.Execute(specs[2]);  // hit

  const PlanCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.evictions, 2);
  EXPECT_EQ(stats.entries, 2);
}

TEST(QueryService, PlanCacheInvalidatesOnCatalogChange) {
  auto db = MakeStarDb(2, 8000, 200, {0.4, 0.5}, 99, /*zipf=*/0.5);
  QueryServiceOptions options;
  QueryService service(&db->catalog, options);
  const QuerySpec spec = db->spec;

  const QueryResult first = service.Execute(spec);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(service.Execute(spec).plan_cache_hit);

  // DDL bumps Catalog::version(); the next lookup must flush the cache.
  ASSERT_TRUE(db->catalog.CreateTable("extra", {{"x", DataType::kInt64}}).ok());
  const QueryResult after = service.Execute(spec);
  EXPECT_FALSE(after.plan_cache_hit);
  ExpectMetricsEqual(first.metrics, after.metrics, "post-invalidation");
  EXPECT_EQ(service.cache_stats().invalidations, 1);

  // Explicit invalidation (data-change path) also flushes.
  service.InvalidateCache();
  EXPECT_FALSE(service.Execute(spec).plan_cache_hit);
  EXPECT_EQ(service.cache_stats().invalidations, 2);
}

TEST(PlanCache, ShapeSignatureCanonicalization) {
  auto db = MakeStarDb(2, 5000, 100, {0.4, 0.5}, 21);
  OptimizerOptions opt;

  auto graph1 = db->Graph();
  auto graph2 = db->Graph();
  ASSERT_TRUE(graph1.ok() && graph2.ok());
  // Same query, rebuilt: identical signature.
  EXPECT_EQ(PlanCache::ShapeSignature(graph1.value(), opt),
            PlanCache::ShapeSignature(graph2.value(), opt));

  // Different predicate constant: SAME signature — the cache keys on
  // shape, and literals are slots (the constant table differs instead;
  // tests/test_plan_shape_cache.cc pins the re-bind protocol).
  QuerySpec changed = db->spec;
  changed.relations[1].predicate = Lt("attr0", 123);
  auto graph3 = BuildJoinGraph(db->catalog, changed);
  ASSERT_TRUE(graph3.ok());
  EXPECT_EQ(PlanCache::ShapeSignature(graph1.value(), opt),
            PlanCache::ShapeSignature(graph3.value(), opt));

  // Fewer relations/joins: different signature.
  QuerySpec narrower = db->spec;
  narrower.relations.pop_back();
  narrower.joins.pop_back();
  auto graph4 = BuildJoinGraph(db->catalog, narrower);
  ASSERT_TRUE(graph4.ok());
  EXPECT_NE(PlanCache::ShapeSignature(graph1.value(), opt),
            PlanCache::ShapeSignature(graph4.value(), opt));

  // Different optimizer knobs: different signature (they change the plan).
  OptimizerOptions other = opt;
  other.lambda_thresh = 0.5;
  EXPECT_NE(PlanCache::ShapeSignature(graph1.value(), opt),
            PlanCache::ShapeSignature(graph1.value(), other));
}

// ---- QueryService: admission control ----

TEST(QueryService, AdmissionBoundsConcurrencyAndClampsWorkers) {
  GlobalPoolGuard guard;
  WorkerPool::ResetGlobal(4);

  auto db = MakeStarDb(2, 15000, 250, {0.4, 0.5}, 313, /*zipf=*/0.5);
  QueryServiceOptions options;
  options.max_concurrent_queries = 2;
  options.execution.exec.threads = 8;  // ask wide; the share must clamp
  QueryService service(&db->catalog, options);
  EXPECT_EQ(service.max_concurrent(), 2);
  EXPECT_EQ(service.workers_per_query(), 2);  // pool 4 / 2 admitted

  const QuerySpec spec = db->spec;
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        const QueryResult r = service.Execute(spec);
        // The exchange ran with the clamped worker count, not 8.
        for (const OperatorStats& op : r.metrics.operators) {
          if (op.type == OperatorType::kExchange) {
            EXPECT_EQ(op.parallel_workers, 2);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_LE(service.peak_concurrent(), 2);
  EXPECT_EQ(service.queries_served(), 12);
}

// ---- Concurrent workload driver ----

/// RunWorkloadConcurrent must reproduce RunWorkload's per-query results on
/// a real workload (checksums, rows, filter usage) — concurrency and the
/// plan cache are invisible in the answers.
TEST(RunWorkloadConcurrent, MatchesSequentialRunner) {
  const Workload workload = MakeTpcdsLite(0.04);
  RunOptions options;
  options.repeats = 1;
  options.limit = 8;

  const std::vector<QueryRun> sequential =
      RunWorkload(workload, OptimizerMode::kBqoShallow, options);
  const std::vector<QueryRun> concurrent = RunWorkloadConcurrent(
      workload, OptimizerMode::kBqoShallow, /*clients=*/2, options);

  ASSERT_EQ(concurrent.size(), sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(concurrent[i].query_name, sequential[i].query_name);
    EXPECT_EQ(concurrent[i].metrics.result_rows,
              sequential[i].metrics.result_rows) << i;
    EXPECT_EQ(concurrent[i].metrics.result_checksum,
              sequential[i].metrics.result_checksum) << i;
    // A repeat served as a re-bound shape hit may carry a plan (and cost)
    // from the template's first literals; answers above are still exact,
    // but plan-identity fields are only pinned for non-rebound runs.
    if (!concurrent[i].plan_rebound) {
      EXPECT_EQ(concurrent[i].used_bitvectors, sequential[i].used_bitvectors)
          << i;
      EXPECT_EQ(concurrent[i].estimated_cost, sequential[i].estimated_cost)
          << i;
    }
  }
}

}  // namespace
}  // namespace bqo

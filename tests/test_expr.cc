// Unit tests for src/expr: every predicate kind plus boolean combinators.
#include <gtest/gtest.h>

#include "src/expr/expr.h"

namespace bqo {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(
        "t", std::vector<FieldDef>{{"x", DataType::kInt64},
                                   {"s", DataType::kString},
                                   {"d", DataType::kDouble}});
    const char* strs[] = {"orange", "gear", "title", "gem", "apple"};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(table_
                      ->AppendRow({Value(int64_t{i * 10}),
                                   Value(std::string(strs[i])),
                                   Value(static_cast<double>(i) + 0.5)})
                      .ok());
    }
  }

  std::vector<uint32_t> Rows(const ExprPtr& e) {
    return EvaluatePredicate(*table_, e);
  }

  std::unique_ptr<Table> table_;
};

TEST_F(ExprTest, NullAndTrueSelectAll) {
  EXPECT_EQ(Rows(nullptr).size(), 5u);
  EXPECT_EQ(Rows(TruePred()).size(), 5u);
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(Rows(Eq("x", 20)), (std::vector<uint32_t>{2}));
  EXPECT_EQ(Rows(Lt("x", 20)), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(Rows(Le("x", 20)), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(Rows(Gt("x", 20)), (std::vector<uint32_t>{3, 4}));
  EXPECT_EQ(Rows(Ge("x", 20)), (std::vector<uint32_t>{2, 3, 4}));
  EXPECT_EQ(Rows(Compare("x", CompareOp::kNe, Value(int64_t{20}))).size(),
            4u);
}

TEST_F(ExprTest, Doublecompare) {
  EXPECT_EQ(Rows(Compare("d", CompareOp::kLt, Value(2.0))),
            (std::vector<uint32_t>{0, 1}));
}

TEST_F(ExprTest, StringEquality) {
  EXPECT_EQ(Rows(EqString("s", "gear")), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(Rows(EqString("s", "absent")).empty());
}

TEST_F(ExprTest, BetweenInclusive) {
  EXPECT_EQ(Rows(Between("x", 10, 30)), (std::vector<uint32_t>{1, 2, 3}));
}

TEST_F(ExprTest, InList) {
  EXPECT_EQ(Rows(In("x", {0, 40, 999})), (std::vector<uint32_t>{0, 4}));
  EXPECT_TRUE(Rows(In("x", {})).empty());
}

TEST_F(ExprTest, LikeContains) {
  // "ge" appears in gear and gem; not orange? orange has "ge"? o-r-a-n-g-e:
  // no "ge" substring ("ng" then "e"? "nge" contains "ge"!). orange = o r a
  // n g e -> "ge" at positions 4-5. So orange, gear, gem match.
  EXPECT_EQ(Rows(LikeContains("s", "ge")), (std::vector<uint32_t>{0, 1, 3}));
  EXPECT_EQ(Rows(LikeContains("s", "title")), (std::vector<uint32_t>{2}));
}

TEST_F(ExprTest, ModLess) {
  // x in {0,10,20,30,40}; x % 3: 0,1,2,0,1 -> < 1 selects {0, 30}.
  EXPECT_EQ(Rows(ModLess("x", 3, 1)), (std::vector<uint32_t>{0, 3}));
}

TEST_F(ExprTest, BooleanCombinators) {
  EXPECT_EQ(Rows(And({Ge("x", 10), Lt("x", 40)})),
            (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(Rows(Or({Eq("x", 0), Eq("x", 40)})),
            (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(Rows(Not(Lt("x", 30))), (std::vector<uint32_t>{3, 4}));
  EXPECT_EQ(Rows(And({Or({Eq("x", 0), Eq("x", 10)}), Not(Eq("x", 0))})),
            (std::vector<uint32_t>{1}));
}

TEST_F(ExprTest, BitmapAgreesWithPredicate) {
  const auto expr = And({Ge("x", 10), LikeContains("s", "ge")});
  const auto bitmap = EvaluateBitmap(*table_, expr);
  const auto rows = EvaluatePredicate(*table_, expr);
  size_t count = 0;
  for (size_t i = 0; i < bitmap.size(); ++i) {
    if (bitmap[i]) {
      ASSERT_LT(count, rows.size());
      EXPECT_EQ(rows[count++], i);
    }
  }
  EXPECT_EQ(count, rows.size());
}

TEST_F(ExprTest, ToStringIsReadable) {
  EXPECT_EQ(Eq("x", 5)->ToString(), "x = 5");
  EXPECT_EQ(Between("x", 1, 2)->ToString(), "x BETWEEN 1 AND 2");
  EXPECT_EQ(LikeContains("s", "ge")->ToString(), "s LIKE '%ge%'");
  EXPECT_EQ(Not(Eq("x", 1))->ToString(), "NOT (x = 1)");
}

}  // namespace
}  // namespace bqo

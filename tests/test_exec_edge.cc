// Execution engine edge cases: empty inputs, fully filtered scans,
// duplicate chains crossing batch boundaries, wide composite keys, and
// group-by paths.
#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/plan/pushdown.h"
#include "src/stats/estimated_cost.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeStarDb;

TEST(ExecEdge, PredicateSelectingNothingYieldsEmptyJoin) {
  auto db = MakeStarDb(2, 500, 50, {0.5, 0.5}, 3);
  // Overwrite d0's predicate with an impossible one.
  db->spec.relations[1].predicate = Lt("attr0", -1);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2});
  PushDownBitvectors(&plan);
  const QueryMetrics m = ExecutePlan(plan);
  int64_t root_rows = -1;
  for (const auto& op : m.operators) {
    if (op.plan_node_id == 0) root_rows = op.rows_out;
  }
  EXPECT_EQ(root_rows, 0);
  EXPECT_EQ(m.result_rows, 1);  // COUNT(*) still emits one row (0)
}

TEST(ExecEdge, EmptyBuildSideShortCircuitsViaFilter) {
  auto db = MakeStarDb(2, 2000, 50, {0.5, 0.5}, 3);
  db->spec.relations[2].predicate = Lt("attr0", -1);  // d1 empty
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2});
  PushDownBitvectors(&plan);
  ExecutionOptions options;
  options.filter_config.kind = FilterKind::kExact;
  const QueryMetrics m = ExecutePlan(plan, options);
  // The empty dimension's filter eliminates every fact row at the scan.
  for (const auto& op : m.operators) {
    if (op.label == "scan f") EXPECT_EQ(op.rows_out, 0);
  }
}

TEST(ExecEdge, DuplicateChainsCrossBatchBoundaries) {
  // One build key duplicated far beyond kBatchSize: a single probe row
  // must emit >1024 outputs, exercising mid-chain batch breaks.
  testing::TestDb db;
  Table* dup = db.catalog
                   .CreateTable("dup", {{"k", DataType::kInt64},
                                        {"v", DataType::kInt64}})
                   .ValueOrDie();
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        dup->AppendRow({Value(int64_t{7}), Value(int64_t{i})}).ok());
  }
  Table* probe = db.catalog
                     .CreateTable("probe", {{"k", DataType::kInt64}})
                     .ValueOrDie();
  ASSERT_TRUE(probe->AppendRow({Value(int64_t{7})}).ok());
  ASSERT_TRUE(probe->AppendRow({Value(int64_t{8})}).ok());

  db.spec.relations = {{"probe", "probe", nullptr}, {"dup", "dup", nullptr}};
  db.spec.joins = {{"probe", "k", "dup", "k"}};
  auto graph = db.Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);
  const QueryMetrics m = ExecutePlan(plan);
  int64_t root_rows = -1;
  for (const auto& op : m.operators) {
    if (op.plan_node_id == 0) root_rows = op.rows_out;
  }
  EXPECT_EQ(root_rows, 3000);
}

TEST(ExecEdge, CompositeJoinKeysMatchOnAllColumns) {
  // Join on two columns; rows matching on only one must not join.
  testing::TestDb db;
  Table* a = db.catalog
                 .CreateTable("a", {{"x", DataType::kInt64},
                                    {"y", DataType::kInt64}})
                 .ValueOrDie();
  Table* b = db.catalog
                 .CreateTable("b", {{"x", DataType::kInt64},
                                    {"y", DataType::kInt64}})
                 .ValueOrDie();
  ASSERT_TRUE(a->AppendRow({Value(int64_t{1}), Value(int64_t{1})}).ok());
  ASSERT_TRUE(a->AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
  ASSERT_TRUE(a->AppendRow({Value(int64_t{2}), Value(int64_t{2})}).ok());
  ASSERT_TRUE(b->AppendRow({Value(int64_t{1}), Value(int64_t{1})}).ok());
  ASSERT_TRUE(b->AppendRow({Value(int64_t{2}), Value(int64_t{2})}).ok());
  ASSERT_TRUE(b->AppendRow({Value(int64_t{2}), Value(int64_t{1})}).ok());

  db.spec.relations = {{"a", "a", nullptr}, {"b", "b", nullptr}};
  db.spec.joins = {{"a", "x", "b", "x"}, {"a", "y", "b", "y"}};
  auto graph = db.Graph();
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph.value().num_edges(), 1);  // merged into one 2-col edge
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);
  const QueryMetrics m = ExecutePlan(plan);
  int64_t root_rows = -1;
  for (const auto& op : m.operators) {
    if (op.plan_node_id == 0) root_rows = op.rows_out;
  }
  EXPECT_EQ(root_rows, 2);  // (1,1) and (2,2) only
}

TEST(ExecEdge, GroupByProducesOneRowPerGroup) {
  auto db = MakeStarDb(1, 3000, 10, {-1.0}, 5);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);
  ExecutionOptions options;
  options.agg.kind = AggKind::kCountStar;
  options.agg.has_group_by = true;
  options.agg.group_column = BoundColumn{1, "d0_id"};
  const QueryMetrics m = ExecutePlan(plan, options);
  EXPECT_EQ(m.result_rows, 10);  // one group per dimension key
}

TEST(ExecEdge, SumAggregateMatchesManualSum) {
  auto db = MakeStarDb(1, 1000, 20, {-1.0}, 9);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  const Table* fact = db->catalog.GetTable("f").value();
  int64_t expected = 0;
  const int mcol = fact->ColumnIndex("measure");
  for (int64_t r = 0; r < fact->num_rows(); ++r) {
    expected += fact->column(mcol).GetInt64(r);
  }
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1});
  PushDownBitvectors(&plan);
  ExecutionOptions options;
  options.agg.kind = AggKind::kSum;
  options.agg.sum_column = BoundColumn{0, "measure"};
  FilterRuntime runtime;
  auto agg = CompilePlan(plan, options, &runtime);
  agg->Open();
  Batch batch;
  while (agg->Next(&batch)) {
  }
  EXPECT_EQ(agg->TotalValue(), expected);
  agg->Close();
}

TEST(ExecEdge, SingleRelationPlanExecutes) {
  auto db = MakeStarDb(1, 100, 10, {-1.0}, 1);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  // Build a one-leaf "plan" for the dimension only.
  JoinGraph single;
  single.AddRelation("d0", "d0", db->catalog.GetTable("d0").value(),
                     Lt("attr0", 500));
  AttachStatistics(&single);
  Plan plan;
  plan.graph = &single;
  plan.root = MakeLeaf(single, 0);
  plan.Renumber();
  PushDownBitvectors(&plan);
  const QueryMetrics m = ExecutePlan(plan);
  EXPECT_EQ(m.result_rows, 1);
  EXPECT_GT(m.leaf_tuples, 0);
}

}  // namespace
}  // namespace bqo

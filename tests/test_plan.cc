// Unit tests for src/plan: join graphs, plan trees, enumeration.
#include <gtest/gtest.h>

#include <set>

#include "src/plan/enumerate.h"
#include "src/plan/plan.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeChainDb;
using ::bqo::testing::MakeStarDb;

JoinGraph StarGraph(int dims) {
  // Analytical graph (no tables needed): fact 0 joined to each dimension.
  JoinGraph g;
  g.AddRelation("f", "f", nullptr, nullptr);
  for (int i = 1; i <= dims; ++i) {
    g.AddRelation("d" + std::to_string(i), "d", nullptr, nullptr);
    JoinEdge e;
    e.left = 0;
    e.right = i;
    e.left_cols = {"fk" + std::to_string(i)};
    e.right_cols = {"id"};
    e.right_unique = true;
    g.AddEdge(e);
  }
  return g;
}

JoinGraph ChainGraph(int n) {
  // R0 - R1 - ... - R{n-1}.
  JoinGraph g;
  for (int i = 0; i < n; ++i) {
    g.AddRelation("r" + std::to_string(i), "r", nullptr, nullptr);
  }
  for (int i = 1; i < n; ++i) {
    JoinEdge e;
    e.left = i - 1;
    e.right = i;
    e.left_cols = {"fk"};
    e.right_cols = {"id"};
    e.right_unique = true;
    g.AddEdge(e);
  }
  return g;
}

TEST(JoinGraph, ConnectivityAndNeighbors) {
  JoinGraph g = ChainGraph(4);
  EXPECT_TRUE(g.IsConnected(0b1111));
  EXPECT_TRUE(g.IsConnected(0b0110));
  EXPECT_FALSE(g.IsConnected(0b1001));  // r0 and r3 not adjacent
  EXPECT_EQ(g.Neighbors(0b0001), RelSet{0b0010});
  EXPECT_EQ(g.Neighbors(0b0110), RelSet{0b1001});
}

TEST(JoinGraph, EdgesBetween) {
  JoinGraph g = StarGraph(3);
  EXPECT_EQ(g.EdgesBetween(RelBit(0), 2).size(), 1u);
  EXPECT_TRUE(g.EdgesBetween(RelBit(1), 2).empty());  // dims not adjacent
  EXPECT_EQ(g.EdgesBetweenSets(0b0001, 0b1110).size(), 3u);
}

TEST(JoinGraph, DeriveUniquenessFromCatalog) {
  auto db = MakeStarDb(2, 100, 20, {0.5, 0.5}, 1);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  for (const JoinEdge& e : graph.value().edges()) {
    // fact is relation 0; dimension side must be marked unique.
    const bool fact_left = e.left == 0;
    EXPECT_EQ(fact_left ? e.right_unique : e.left_unique, true);
    EXPECT_EQ(fact_left ? e.left_unique : e.right_unique, false);
  }
}

TEST(Plan, BuildRightDeepAndValidate) {
  JoinGraph g = StarGraph(3);
  Plan plan = BuildRightDeepPlan(g, {0, 1, 2, 3});
  EXPECT_TRUE(plan.Validate());
  EXPECT_TRUE(plan.IsRightDeep());
  EXPECT_EQ(plan.num_joins(), 3);
  EXPECT_EQ(plan.RightDeepOrder(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plan.Signature(), "(d3 HJ (d2 HJ (d1 HJ f)))");
}

TEST(Plan, CloneIsDeepAndEqual) {
  JoinGraph g = ChainGraph(4);
  Plan plan = BuildRightDeepPlan(g, {3, 2, 1, 0});
  Plan copy = plan.Clone();
  EXPECT_EQ(copy.Signature(), plan.Signature());
  EXPECT_NE(copy.root.get(), plan.root.get());
  EXPECT_EQ(copy.nodes.size(), plan.nodes.size());
}

TEST(Plan, ValidOrderCheck) {
  JoinGraph g = ChainGraph(4);
  EXPECT_TRUE(IsValidRightDeepOrder(g, {0, 1, 2, 3}));
  EXPECT_TRUE(IsValidRightDeepOrder(g, {2, 1, 3, 0}));  // prefix stays connected
  EXPECT_FALSE(IsValidRightDeepOrder(g, {0, 2, 1, 3}));  // r0-r2 not adjacent
}

TEST(Plan, BushyJoinConstruction) {
  JoinGraph g = ChainGraph(4);
  auto left = MakeJoin(g, MakeLeaf(g, 0), MakeLeaf(g, 1));
  auto right = MakeJoin(g, MakeLeaf(g, 3), MakeLeaf(g, 2));
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  auto root = MakeJoin(g, std::move(left), std::move(right));
  ASSERT_NE(root, nullptr);
  Plan plan;
  plan.graph = &g;
  plan.root = std::move(root);
  plan.Renumber();
  EXPECT_TRUE(plan.Validate());
  EXPECT_FALSE(plan.IsRightDeep());
}

TEST(Plan, CrossProductRejected) {
  JoinGraph g = ChainGraph(4);
  EXPECT_EQ(MakeJoin(g, MakeLeaf(g, 0), MakeLeaf(g, 2)), nullptr);
}

TEST(Enumerate, StarCountsMatchLemma2) {
  // Lemma 2: right deep trees without cross products have R0 first or
  // second; count = 2 * n! for n dimensions... (n! with R0 first, n * (n-1)!
  // with a dimension first then R0).
  for (int n = 2; n <= 5; ++n) {
    JoinGraph g = StarGraph(n);
    size_t expected = 2;
    for (int i = 2; i <= n; ++i) expected *= static_cast<size_t>(i);
    EXPECT_EQ(CountRightDeepOrders(g), expected) << "n=" << n;
  }
}

TEST(Enumerate, ChainCountIsQuadraticFamily) {
  // For a chain of n relations the orders = 2^(n-1) (each step extends the
  // connected interval left or right from the start).
  for (int n = 2; n <= 7; ++n) {
    JoinGraph g = ChainGraph(n);
    EXPECT_EQ(CountRightDeepOrders(g), size_t{1} << (n - 1)) << "n=" << n;
  }
}

TEST(Enumerate, AllOrdersAreValidAndUnique) {
  JoinGraph g = StarGraph(4);
  auto orders = EnumerateRightDeepOrders(g);
  std::set<std::vector<int>> unique(orders.begin(), orders.end());
  EXPECT_EQ(unique.size(), orders.size());
  for (const auto& o : orders) {
    EXPECT_TRUE(IsValidRightDeepOrder(g, o));
  }
}

TEST(Enumerate, LimitRespected) {
  JoinGraph g = StarGraph(5);
  EXPECT_EQ(EnumerateRightDeepOrders(g, 10).size(), 10u);
  EXPECT_EQ(CountRightDeepOrders(g, 10), 10u);
}

TEST(Enumerate, StarCandidatesShape) {
  JoinGraph g = StarGraph(4);
  auto candidates = StarCandidateOrders(g, 0);
  EXPECT_EQ(candidates.size(), 5u);  // n + 1
  // First candidate: fact right-most.
  EXPECT_EQ(candidates[0][0], 0);
  // Others: dimension first, then fact.
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_NE(candidates[i][0], 0);
    EXPECT_EQ(candidates[i][1], 0);
    EXPECT_TRUE(IsValidRightDeepOrder(g, candidates[i]));
  }
}

TEST(Enumerate, BranchCandidatesShape) {
  const std::vector<int> chain = {0, 1, 2, 3};
  auto candidates = BranchCandidateOrders(chain);
  EXPECT_EQ(candidates.size(), 4u);  // n + 1 with n = 3
  EXPECT_EQ(candidates[0], (std::vector<int>{3, 2, 1, 0}));
  EXPECT_EQ(candidates[1], (std::vector<int>{0, 1, 2, 3}));  // k = 0
  EXPECT_EQ(candidates[2], (std::vector<int>{1, 2, 3, 0}));  // k = 1
  EXPECT_EQ(candidates[3], (std::vector<int>{2, 3, 1, 0}));  // k = 2
}

TEST(Enumerate, SnowflakeCandidatesCountIsLinear) {
  SnowflakeShape shape;
  shape.fact = 0;
  shape.branches = {{1}, {2, 3}, {4, 5}};
  auto candidates = SnowflakeCandidateOrders(shape);
  EXPECT_EQ(candidates.size(), 6u);  // n + 1 with n = 5 dimensions
  // Every candidate is a permutation of all 6 relations.
  for (const auto& c : candidates) {
    std::set<int> s(c.begin(), c.end());
    EXPECT_EQ(s.size(), 6u);
  }
}

}  // namespace
}  // namespace bqo

// SIMD kernel tier parity (src/common/simd.h, src/filter/filter_kernels.h).
//
// The dispatch contract is bit-identity: the AVX2 and scalar tiers compute
// the same function, so nothing observable — hashes, filter bits, pass
// sets, NumInserted journals, result checksums, merged FilterStats — may
// depend on which tier ran. Pins:
//
//  * Hash batch kernels equal the scalar reference on adversarial lengths
//    (0, 1, lane-1, lane, lane+1, 1M) for single-column and composite keys.
//  * BlockedBloomFilter built under one tier is bit-compatible with probes
//    under the other (both directions), agrees with the scalar reference
//    probe, and MergeFrom over tracked partials reproduces the sequential
//    filter's membership and NumInserted under both tiers.
//  * The blocked FPR model curve: measured FPR tracks TheoreticalFpRate
//    and sits above the classical filter's at equal bits (the trade the
//    optimizer's menu prices), and the menu picks blocked when probe
//    volume dominates vs classical when FPR leakage dominates.
//  * E2E: star / snowflake / sort-merge plans over pools {1,2,4} and both
//    tiers produce byte-identical checksums and merged FilterStats.
//
// AVX2 legs skip on hosts without AVX2 (CpuSupportsAvx2) — the scalar legs
// and the cross-checks against the references still run everywhere.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/simd.h"
#include "src/exec/executor.h"
#include "src/filter/blocked_bloom_filter.h"
#include "src/filter/bloom_filter.h"
#include "src/filter/filter_kernels.h"
#include "src/optimizer/cost_model.h"
#include "src/plan/pushdown.h"
#include "src/stats/estimated_cost.h"
#include "test_util.h"

namespace bqo {
namespace {

using ::bqo::testing::MakeChainDb;
using ::bqo::testing::MakeSnowflakeDb;
using ::bqo::testing::MakeStarDb;

std::vector<int64_t> RandomValues(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<int64_t>(rng());
  return v;
}

// Lane width of the AVX2 hash kernels is 4; 0/1/3/4/5 probe the empty,
// all-tail, partial-tail, exact-lane, and lane+tail paths, 1M the steady
// state (and any accidental quadratic or misaligned access).
const int kAdversarialLengths[] = {0, 1, 3, 4, 5, 1000000};

TEST(SimdHashKernels, ColumnParityOnAdversarialLengths) {
  for (int n : kAdversarialLengths) {
    const std::vector<int64_t> values = RandomValues(n, 0x5eed0 + n);
    std::vector<uint64_t> ref(static_cast<size_t>(n) + 1, 0);
    HashColumn(values.data(), n, ref.data(), /*seed=*/7);

    for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2}) {
      if (tier == SimdTier::kAvx2 && !CpuSupportsAvx2()) continue;
      ScopedSimdTier force(tier);
      std::vector<uint64_t> out(static_cast<size_t>(n) + 1, 0);
      HashColumnKernel(values.data(), n, out.data(), /*seed=*/7);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(out[static_cast<size_t>(i)], ref[static_cast<size_t>(i)])
            << "tier=" << SimdTierName(tier) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdHashKernels, CompositeParityOnAdversarialLengths) {
  for (size_t num_cols : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    for (int n : kAdversarialLengths) {
      if (n >= 1000000 && num_cols > 2) continue;  // bound test time
      std::vector<std::vector<int64_t>> storage;
      std::vector<const int64_t*> cols;
      for (size_t c = 0; c < num_cols; ++c) {
        storage.push_back(RandomValues(n, 0xc01 * (c + 1) + n));
        cols.push_back(storage.back().data());
      }
      std::vector<uint64_t> ref(static_cast<size_t>(n) + 1, 0);
      HashCompositeBatch(cols.data(), num_cols, n, ref.data(), /*seed=*/3);

      for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2}) {
        if (tier == SimdTier::kAvx2 && !CpuSupportsAvx2()) continue;
        ScopedSimdTier force(tier);
        std::vector<uint64_t> out(static_cast<size_t>(n) + 1, 0);
        HashCompositeBatchKernel(cols.data(), num_cols, n, out.data(),
                                 /*seed=*/3);
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(out[static_cast<size_t>(i)], ref[static_cast<size_t>(i)])
              << "tier=" << SimdTierName(tier) << " cols=" << num_cols
              << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

// -------------------------------------------------------------------------
// Blocked Bloom: tier parity and scalar-reference parity.
// -------------------------------------------------------------------------

std::vector<uint64_t> KeyHashes(int n, uint64_t seed) {
  const std::vector<int64_t> keys = RandomValues(n, seed);
  std::vector<uint64_t> hashes(static_cast<size_t>(n));
  HashColumn(keys.data(), n, hashes.data());
  return hashes;
}

/// Batched pass set of `filter` over `hashes`, as the surviving indices.
std::vector<uint16_t> PassSet(const BitvectorFilter& filter,
                              const std::vector<uint64_t>& hashes) {
  std::vector<uint16_t> sel(hashes.size());
  for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<uint16_t>(i);
  const int out = filter.MayContainBatch(hashes.data(), sel.data(),
                                         static_cast<int>(sel.size()));
  sel.resize(static_cast<size_t>(out));
  return sel;
}

TEST(BlockedBloom, TierParityInsertProbeAndCrossTier) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  const int kKeys = 20000;
  const std::vector<uint64_t> keys = KeyHashes(kKeys, 0xbeef);
  const std::vector<uint64_t> probes = KeyHashes(4096, 0xfeed);

  auto build = [&](SimdTier tier) {
    ScopedSimdTier force(tier);
    auto f = std::make_unique<BlockedBloomFilter>(kKeys, 10.0);
    for (uint64_t h : keys) f->Insert(h);
    return f;
  };
  auto scalar_built = build(SimdTier::kScalar);
  auto avx2_built = build(SimdTier::kAvx2);

  // Same keys => same logical count and the same bits, whichever tier set
  // them; probing under either tier must agree with the scalar reference.
  EXPECT_EQ(scalar_built->NumInserted(), avx2_built->NumInserted());
  for (uint64_t h : keys) {
    ASSERT_TRUE(scalar_built->MayContain(h));  // no false negatives
    ASSERT_TRUE(avx2_built->MayContain(h));
  }
  for (const auto* f : {scalar_built.get(), avx2_built.get()}) {
    std::vector<uint16_t> ref_pass;
    for (size_t i = 0; i < probes.size(); ++i) {
      if (f->MayContain(probes[i])) {
        ref_pass.push_back(static_cast<uint16_t>(i));
      }
    }
    // Cross-tier probes: scalar-built probed under AVX2 and vice versa —
    // the production mix (filters filled at build, probed in scans).
    {
      ScopedSimdTier force(SimdTier::kScalar);
      EXPECT_EQ(PassSet(*f, probes), ref_pass);
    }
    {
      ScopedSimdTier force(SimdTier::kAvx2);
      EXPECT_EQ(PassSet(*f, probes), ref_pass);
    }
  }
}

TEST(BlockedBloom, MergeFromReproducesSequentialUnderBothTiers) {
  const int kKeys = 30000;
  // Duplicate-heavy key stream so the journal replay actually has
  // cross-partition duplicates to discount.
  std::vector<uint64_t> keys = KeyHashes(kKeys, 0xd00d);
  for (int i = 0; i < kKeys / 4; ++i) {
    keys.push_back(keys[static_cast<size_t>(i) * 3 % keys.size()]);
  }
  const std::vector<uint64_t> probes = KeyHashes(4096, 0xabba);

  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2}) {
    if (tier == SimdTier::kAvx2 && !CpuSupportsAvx2()) continue;
    ScopedSimdTier force(tier);

    BlockedBloomFilter sequential(static_cast<int64_t>(keys.size()), 10.0);
    for (uint64_t h : keys) sequential.Insert(h);

    BlockedBloomFilter merged(static_cast<int64_t>(keys.size()), 10.0);
    const size_t chunk = (keys.size() + 3) / 4;
    for (size_t p = 0; p < 4; ++p) {
      BlockedBloomFilter partial(static_cast<int64_t>(keys.size()), 10.0);
      partial.EnableInsertTracking();
      const size_t begin = p * chunk;
      const size_t end = std::min(keys.size(), begin + chunk);
      for (size_t i = begin; i < end; ++i) partial.Insert(keys[i]);
      merged.MergeFrom(partial);
    }

    EXPECT_EQ(merged.NumInserted(), sequential.NumInserted())
        << "tier=" << SimdTierName(tier);
    for (uint64_t h : keys) ASSERT_TRUE(merged.MayContain(h));
    EXPECT_EQ(PassSet(merged, probes), PassSet(sequential, probes))
        << "tier=" << SimdTierName(tier);
  }
}

TEST(BlockedBloom, MeasuredFprTracksModelAndExceedsClassical) {
  // Tight space budget: this is the regime where the blocked layout pays
  // for its cache-friendliness — 8 probe bits confined to one 256-bit
  // sector collide far more than classical's spread-out bits.
  const int kKeys = 50000;
  const int kProbes = 200000;
  const double kBits = 4.0;
  const std::vector<uint64_t> keys = KeyHashes(kKeys, 0x1111);
  // Disjoint probe hashes (different generator stream) — every pass is a
  // false positive.
  const std::vector<uint64_t> probes = KeyHashes(kProbes, 0x2222);

  BlockedBloomFilter blocked(kKeys, kBits);
  BloomFilter classical(kKeys, kBits);
  for (uint64_t h : keys) {
    blocked.Insert(h);
    classical.Insert(h);
  }
  int64_t blocked_fp = 0, classical_fp = 0;
  for (uint64_t h : probes) {
    blocked_fp += blocked.MayContain(h) ? 1 : 0;
    classical_fp += classical.MayContain(h) ? 1 : 0;
  }
  const double blocked_rate =
      static_cast<double>(blocked_fp) / static_cast<double>(kProbes);
  const double classical_rate =
      static_cast<double>(classical_fp) / static_cast<double>(kProbes);

  // The measured rate must track the encoded curve (the cost model's
  // input) within a loose multiplicative band, and the blocked kind must
  // actually pay the higher-FPR cost the menu charges it for.
  EXPECT_GT(blocked_rate, 0.0);
  EXPECT_LT(blocked_rate, 2.0 * blocked.TheoreticalFpRate());
  EXPECT_GT(blocked_rate, 0.5 * blocked.TheoreticalFpRate());
  EXPECT_GT(blocked_rate, classical_rate);

  // The design-load curve in the cost model: blocked sits above classical
  // at tight-to-moderate budgets and degrades hard as b shrinks. At
  // generous budgets the ordering flips — the repo's classical BloomFilter
  // caps k at 4, so blocked's fixed k=8 eventually wins on FPR too.
  for (double b : {4.0, 6.0, 8.0, 10.0}) {
    const double fc = EstimatedFilterFpr(FilterKind::kBloom, b);
    const double fb = EstimatedFilterFpr(FilterKind::kBlockedBloom, b);
    EXPECT_GT(fb, fc) << "bits=" << b;
    EXPECT_GT(fc, 0.0);
    EXPECT_LT(fb, 1.0);
  }
  EXPECT_GT(EstimatedFilterFpr(FilterKind::kBlockedBloom, 4.0),
            2.0 * EstimatedFilterFpr(FilterKind::kBloom, 4.0));
  EXPECT_LT(EstimatedFilterFpr(FilterKind::kBlockedBloom, 16.0),
            EstimatedFilterFpr(FilterKind::kBloom, 16.0));
}

// -------------------------------------------------------------------------
// Optimizer pin: the menu picks blocked when probe volume dominates and
// classical when FPR leakage dominates.
// -------------------------------------------------------------------------

TEST(FilterMenu, ProbeVolumeDominatedPlanPicksBlocked) {
  // Star: every filter probes the full 50k-row fact scan, and at the
  // default 10 bits/key the FPR gap between the kinds is ~0.1% — far too
  // small for even the depth-3 filter's leak penalty to overcome the
  // 2.5ns/probe advantage. All picks must be blocked.
  auto db = MakeStarDb(3, 50000, 500, {0.2, 0.5, 0.4}, 21);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  JoinGraph g = graph.value();
  AttachStatistics(&g);
  Plan plan = BuildRightDeepPlan(g, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  ASSERT_FALSE(plan.filters.empty());

  StatsCatalog stats(&db->catalog);
  EstimatedCoutModel model(&stats);
  FilterMenuOptions menu;  // defaults: 10 bits/key
  const int blocked_picks = SelectFilterImplementations(&plan, &model, menu);

  EXPECT_EQ(blocked_picks, static_cast<int>(plan.filters.size()));
  for (const PlanFilter& f : plan.filters) {
    EXPECT_EQ(f.chosen_kind, static_cast<int>(FilterKind::kBlockedBloom))
        << "filter " << f.id;
  }
}

TEST(FilterMenu, FprDominatedPlanPicksClassical) {
  // Star where the filters push down to the fact scan: the filter created
  // by the TOP dimension join applies three join probes below its creating
  // join, so every false positive it leaks survives three hash-table
  // probes before dying. At a tight space budget (4 bits/key, FPR gap
  // ~0.18) with a barely-selective top dimension (sel 0.9 → high lambda),
  // that leak penalty dwarfs the 2.5ns/probe advantage — the deep filter
  // must stay classical. The bottom dimension's filter (depth 1, sel 0.1 →
  // low lambda) leaks almost nothing and must still pick blocked: the menu
  // discriminates per filter inside one plan.
  auto db = MakeStarDb(3, 50000, 500, {0.9, 0.1, 0.4}, 33);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  JoinGraph g = graph.value();
  AttachStatistics(&g);
  Plan plan = BuildRightDeepPlan(g, {0, 1, 2, 3});
  PushDownBitvectors(&plan);
  ASSERT_FALSE(plan.filters.empty());

  StatsCatalog stats(&db->catalog);
  EstimatedCoutModel model(&stats);
  FilterMenuOptions menu;
  menu.bits_per_key = 4.0;
  SelectFilterImplementations(&plan, &model, menu);

  std::vector<int> parent(plan.nodes.size(), -1);
  for (const PlanNode* node : plan.nodes) {
    if (node->IsLeaf()) continue;
    parent[static_cast<size_t>(node->build->id)] = node->id;
    parent[static_cast<size_t>(node->probe->id)] = node->id;
  }
  int deepest = -1, deepest_depth = 0;
  int shallowest = -1, shallowest_depth = 1 << 20;
  for (const PlanFilter& f : plan.filters) {
    if (f.pruned) continue;
    int depth = 0;
    for (int nid = parent[static_cast<size_t>(f.applied_at)]; nid >= 0;
         nid = parent[static_cast<size_t>(nid)]) {
      ++depth;
      if (nid == f.source_join) break;
    }
    if (depth > deepest_depth) {
      deepest_depth = depth;
      deepest = f.id;
    }
    if (depth < shallowest_depth) {
      shallowest_depth = depth;
      shallowest = f.id;
    }
  }
  ASSERT_GE(deepest, 0);
  ASSERT_GE(deepest_depth, 3) << "fixture should produce a deep filter";
  EXPECT_EQ(plan.filters[static_cast<size_t>(deepest)].chosen_kind,
            static_cast<int>(FilterKind::kBloom));
  ASSERT_EQ(shallowest_depth, 1);
  EXPECT_EQ(plan.filters[static_cast<size_t>(shallowest)].chosen_kind,
            static_cast<int>(FilterKind::kBlockedBloom));
}

// -------------------------------------------------------------------------
// E2E tier parity: checksums and merged FilterStats must be invariant
// across tiers and pool sizes.
// -------------------------------------------------------------------------

void ExpectRunsEqual(const QueryMetrics& base, const QueryMetrics& m,
                     const std::string& what) {
  EXPECT_EQ(m.result_rows, base.result_rows) << what;
  EXPECT_EQ(m.result_checksum, base.result_checksum) << what;
  EXPECT_EQ(m.leaf_tuples, base.leaf_tuples) << what;
  EXPECT_EQ(m.join_tuples, base.join_tuples) << what;
  ASSERT_EQ(m.filters.size(), base.filters.size()) << what;
  for (size_t i = 0; i < m.filters.size(); ++i) {
    EXPECT_EQ(m.filters[i].created, base.filters[i].created) << what << " f" << i;
    EXPECT_EQ(m.filters[i].probed, base.filters[i].probed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].passed, base.filters[i].passed) << what << " f" << i;
    EXPECT_EQ(m.filters[i].inserted, base.filters[i].inserted)
        << what << " f" << i;
  }
}

void SweepTiersAndPools(const Plan& plan, ExecutionOptions options,
                        const std::string& what) {
  QueryMetrics base;
  {
    ScopedSimdTier force(SimdTier::kScalar);
    base = ExecutePlan(plan, options);
  }
  ASSERT_GT(base.leaf_tuples, 0) << what;
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2}) {
    if (tier == SimdTier::kAvx2 && !CpuSupportsAvx2()) continue;
    for (int threads : {1, 2, 4}) {
      ScopedSimdTier force(tier);
      ExecutionOptions opts = options;
      opts.exec.threads = threads;
      opts.exec.morsel_rows = 2048;
      const QueryMetrics m = ExecutePlan(plan, opts);
      ExpectRunsEqual(base, m,
                      what + " tier=" + SimdTierName(tier) +
                          " pool=" + std::to_string(threads));
    }
  }
}

TEST(SimdE2E, StarBlockedBloomTierAndPoolInvariant) {
  auto db = MakeStarDb(3, 30000, 400, {0.3, 0.6, 0.15}, 77, /*zipf=*/0.6);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3});
  PushDownBitvectors(&plan);

  ExecutionOptions options;
  options.filter_config.kind = FilterKind::kBlockedBloom;
  options.agg.kind = AggKind::kSum;
  options.agg.sum_column = BoundColumn{0, "measure"};
  options.agg.has_group_by = true;
  options.agg.group_column = BoundColumn{1, "d0_id"};
  SweepTiersAndPools(plan, options, "star/blocked");
}

TEST(SimdE2E, SnowflakeBothBloomKindsTierAndPoolInvariant) {
  auto db = MakeSnowflakeDb({2, 2}, 20000, 500, 0.5, {0.4, 0.5}, 1234,
                            /*zipf=*/0.4);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3, 4});
  PushDownBitvectors(&plan);

  for (FilterKind kind : {FilterKind::kBloom, FilterKind::kBlockedBloom}) {
    ExecutionOptions options;
    options.filter_config.kind = kind;
    SweepTiersAndPools(plan, options,
                       std::string("snowflake/") + FilterKindName(kind));
  }
}

TEST(SimdE2E, SortMergeBlockedBloomTierAndPoolInvariant) {
  auto db = MakeStarDb(2, 20000, 300, {0.4, 0.25}, 909);
  auto graph = db->Graph();
  ASSERT_TRUE(graph.ok());
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2});
  PushDownBitvectors(&plan);

  ExecutionOptions options;
  options.filter_config.kind = FilterKind::kBlockedBloom;
  options.use_sort_merge_join = true;
  SweepTiersAndPools(plan, options, "sortmerge/blocked");
}

}  // namespace
}  // namespace bqo

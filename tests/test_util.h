// Shared fixtures: tiny synthetic star / chain / snowflake databases whose
// exact cardinalities the theorem-validation tests can afford to enumerate.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/workload/datagen.h"
#include "src/workload/query.h"

namespace bqo::testing {

struct TestDb {
  Catalog catalog;
  QuerySpec spec;

  Result<JoinGraph> Graph() const { return BuildJoinGraph(catalog, spec); }
};

/// \brief Predicate `attr0 < selectivity * domain` (≈ uniform selectivity).
inline ExprPtr SelPredicate(double selectivity, int64_t domain = 1000) {
  const int64_t bound = static_cast<int64_t>(selectivity * static_cast<double>(domain));
  return Lt("attr0", bound);
}

/// \brief Star query with PKFK joins (Definition 1): fact `f` referencing
/// dimensions `d0..d{n-1}`; `sels[i]` is dimension i's local selectivity
/// (negative = no predicate). Relation 0 in the QuerySpec is the fact.
inline std::unique_ptr<TestDb> MakeStarDb(int num_dims, int64_t fact_rows,
                                          int64_t dim_rows,
                                          const std::vector<double>& sels,
                                          uint64_t seed, double zipf = 0.0) {
  auto db = std::make_unique<TestDb>();
  Rng rng(seed);
  TableGenSpec fact;
  fact.name = "f";
  fact.rows = fact_rows;
  fact.with_pk = false;
  fact.with_label = false;
  for (int i = 0; i < num_dims; ++i) {
    TableGenSpec dim;
    dim.name = StringFormat("d%d", i);
    dim.rows = dim_rows;
    dim.with_label = false;
    GenerateTable(&db->catalog, dim, &rng);
    fact.fks.push_back(FkSpec{StringFormat("d%d_fk", i), dim.name,
                              dim.name + "_id", zipf, 0.0});
  }
  GenerateTable(&db->catalog, fact, &rng);

  db->spec.name = "star";
  db->spec.relations.push_back({"f", "f", nullptr});
  for (int i = 0; i < num_dims; ++i) {
    const double sel = i < static_cast<int>(sels.size()) ? sels[static_cast<size_t>(i)] : -1.0;
    db->spec.relations.push_back(
        {StringFormat("d%d", i), StringFormat("d%d", i),
         sel < 0 ? nullptr : SelPredicate(sel)});
    db->spec.joins.push_back({"f", StringFormat("d%d_fk", i),
                              StringFormat("d%d", i),
                              StringFormat("d%d_id", i)});
  }
  return db;
}

/// \brief Branch/chain query (Definition 4): R0 -> R1 -> ... -> Rn, with
/// |R_i| shrinking by `shrink` per level. Relation i of the QuerySpec is Ri.
inline std::unique_ptr<TestDb> MakeChainDb(int chain_len, int64_t r0_rows,
                                           double shrink,
                                           const std::vector<double>& sels,
                                           uint64_t seed, double zipf = 0.0) {
  BQO_CHECK(chain_len >= 2);
  auto db = std::make_unique<TestDb>();
  Rng rng(seed);
  // Generate outermost first (R_{n}) so FKs can reference existing tables.
  std::vector<int64_t> rows(static_cast<size_t>(chain_len));
  rows[0] = r0_rows;
  for (int i = 1; i < chain_len; ++i) {
    rows[static_cast<size_t>(i)] = std::max<int64_t>(
        8, static_cast<int64_t>(static_cast<double>(rows[static_cast<size_t>(i - 1)]) * shrink));
  }
  for (int i = chain_len - 1; i >= 0; --i) {
    TableGenSpec t;
    t.name = StringFormat("r%d", i);
    t.rows = rows[static_cast<size_t>(i)];
    t.with_pk = true;
    t.with_label = false;
    if (i + 1 < chain_len) {
      t.fks.push_back(FkSpec{StringFormat("r%d_fk", i + 1),
                             StringFormat("r%d", i + 1),
                             StringFormat("r%d_id", i + 1), zipf, 0.0});
    }
    GenerateTable(&db->catalog, t, &rng);
  }
  db->spec.name = "chain";
  for (int i = 0; i < chain_len; ++i) {
    const double sel = i < static_cast<int>(sels.size()) ? sels[static_cast<size_t>(i)] : -1.0;
    db->spec.relations.push_back({StringFormat("r%d", i),
                                  StringFormat("r%d", i),
                                  sel < 0 ? nullptr : SelPredicate(sel)});
    if (i > 0) {
      db->spec.joins.push_back(
          {StringFormat("r%d", i - 1), StringFormat("r%d_fk", i),
           StringFormat("r%d", i), StringFormat("r%d_id", i)});
    }
  }
  return db;
}

/// \brief Snowflake query (Definition 2): fact + branches of given lengths.
/// Aliases: fact "f"; branch i relation j (1-based) "b<i>_<j>".
/// QuerySpec relation order: f, then branches in order, fact-adjacent first.
inline std::unique_ptr<TestDb> MakeSnowflakeDb(
    const std::vector<int>& branch_lengths, int64_t fact_rows,
    int64_t dim_rows, double shrink, const std::vector<double>& branch_sels,
    uint64_t seed, double zipf = 0.0) {
  auto db = std::make_unique<TestDb>();
  Rng rng(seed);
  TableGenSpec fact;
  fact.name = "f";
  fact.rows = fact_rows;
  fact.with_pk = false;
  fact.with_label = false;

  for (size_t i = 0; i < branch_lengths.size(); ++i) {
    const int len = branch_lengths[i];
    // Outermost first.
    for (int j = len; j >= 1; --j) {
      TableGenSpec t;
      t.name = StringFormat("b%zu_%d", i, j);
      t.rows = std::max<int64_t>(
          8, static_cast<int64_t>(static_cast<double>(dim_rows) *
                                  std::pow(shrink, j - 1)));
      t.with_label = false;
      if (j < len) {
        t.fks.push_back(FkSpec{StringFormat("b%zu_%d_fk", i, j + 1),
                               StringFormat("b%zu_%d", i, j + 1),
                               StringFormat("b%zu_%d_id", i, j + 1), zipf,
                               0.0});
      }
      GenerateTable(&db->catalog, t, &rng);
    }
    fact.fks.push_back(FkSpec{StringFormat("b%zu_1_fk", i),
                              StringFormat("b%zu_1", i),
                              StringFormat("b%zu_1_id", i), zipf, 0.0});
  }
  GenerateTable(&db->catalog, fact, &rng);

  db->spec.name = "snowflake";
  db->spec.relations.push_back({"f", "f", nullptr});
  for (size_t i = 0; i < branch_lengths.size(); ++i) {
    const double sel = i < branch_sels.size() ? branch_sels[i] : -1.0;
    for (int j = 1; j <= branch_lengths[i]; ++j) {
      const std::string name = StringFormat("b%zu_%d", i, j);
      // Put the branch predicate on the outermost relation so its filter
      // must traverse the branch.
      const bool outermost = j == branch_lengths[i];
      db->spec.relations.push_back(
          {name, name, (outermost && sel >= 0) ? SelPredicate(sel) : nullptr});
      if (j == 1) {
        db->spec.joins.push_back({"f", StringFormat("b%zu_1_fk", i), name,
                                  name + "_id"});
      } else {
        db->spec.joins.push_back({StringFormat("b%zu_%d", i, j - 1),
                                  name + "_fk", name, name + "_id"});
      }
    }
  }
  return db;
}

}  // namespace bqo::testing

// Figure 7: profiling the overhead of bitvector filters.
//
// Paper setup: SELECT COUNT(*) FROM store_sales, customer
//              WHERE ss_customer_sk = c_customer_sk
//                AND c_customer_sk % 1000 < @P
// A bitvector filter built from customer is pushed down to store_sales.
// Sweeping @P varies the filter's selectivity; the paper finds the filtered
// plan wins once >10% of probe tuples are eliminated and ships
// lambda_thresh = 5%.
//
// Scale note: the effect requires the build-side hash table to exceed the
// cache (a hash probe must cost a memory miss while a blocked-Bloom check
// stays cache-resident), so this binary generates dedicated multi-million-
// row tables rather than reusing the lite workload's small dimensions.
#include <cinttypes>

#include "bench_util.h"
#include "src/plan/pushdown.h"
#include "src/workload/datagen.h"

namespace bqo {
namespace {

struct Breakdown {
  double join_ns = 0;
  double probe_ns = 0;
  double build_ns = 0;
  double total() const { return join_ns + probe_ns + build_ns; }
};

Breakdown RunOnce(const JoinGraph& graph, bool use_bitvector, int repeats) {
  Plan plan = BuildRightDeepPlan(graph, {0, 1});  // T(store_sales, customer)
  PushDownBitvectors(&plan);
  ExecutionOptions options;
  options.use_bitvectors = use_bitvector;
  Breakdown best;
  for (int rep = 0; rep < repeats; ++rep) {
    const QueryMetrics m = ExecutePlan(plan, options);
    Breakdown b;
    for (const auto& op : m.operators) {
      if (op.type == OperatorType::kHashJoin) {
        b.join_ns += static_cast<double>(op.ns_self);
      } else if (op.label == "scan ss") {
        b.probe_ns += static_cast<double>(op.ns_self);
      } else if (op.label == "scan c") {
        b.build_ns += static_cast<double>(op.ns_self);
      }
    }
    if (rep == 0 || b.total() < best.total()) best = b;
  }
  return best;
}

}  // namespace
}  // namespace bqo

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Figure 7: bitvector filter overhead vs selectivity\n"
      "(store_sales JOIN customer, filter from customer,\n"
      " customer predicate: customer_id % 1000 < P)");

  // Dedicated large tables: the build side must not fit in cache.
  Catalog catalog;
  Rng rng(7777);
  {
    // Probe:build ratio ~12:1 (TPC-DS 100GB has ~144:1); the build-side
    // hash table (~48MB at scale 1) must exceed L3 while the Bloom filter
    // (~2.5MB) stays cache-resident — that asymmetry is what Figure 7
    // profiles.
    TableGenSpec customer;
    customer.name = "customer";
    customer.rows = static_cast<int64_t>(2000000 * (scale < 1 ? 1 : scale));
    customer.num_int_attrs = 0;
    customer.with_measure = false;
    customer.with_label = false;
    GenerateTable(&catalog, customer, &rng);
    TableGenSpec sales;
    sales.name = "store_sales";
    sales.rows = static_cast<int64_t>(24000000 * (scale < 1 ? 1 : scale));
    sales.with_pk = false;
    sales.num_int_attrs = 0;
    sales.with_measure = false;
    sales.with_label = false;
    sales.fks.push_back(
        FkSpec{"customer_fk", "customer", "customer_id", 0.0, 0.0});
    GenerateTable(&catalog, sales, &rng);
  }

  const double kSelectivities[] = {1.0, 0.9, 0.8, 0.5, 0.1, 0.05, 0.01, 0.001};

  struct Row {
    double sel;
    Breakdown off, on;
  };
  std::vector<Row> rows;
  double max_total = 0;
  for (double sel : kSelectivities) {
    QuerySpec spec;
    spec.name = "fig7";
    spec.relations.push_back({"ss", "store_sales", nullptr});
    spec.relations.push_back(
        {"c", "customer",
         ModLess("customer_id", 1000,
                 std::max<int64_t>(1, static_cast<int64_t>(sel * 1000)))});
    spec.joins.push_back({"ss", "customer_fk", "c", "customer_id"});
    auto graph = BuildJoinGraph(catalog, spec);
    BQO_CHECK(graph.ok());
    Row row;
    row.sel = sel;
    row.off = RunOnce(graph.value(), false, 2);
    row.on = RunOnce(graph.value(), true, 2);
    max_total = std::max({max_total, row.off.total(), row.on.total()});
    rows.push_back(row);
    std::fprintf(stderr, "[bench] sel=%.3f done\n", sel);
  }

  std::printf(
      "%-6s | %-30s | %-30s | %s\n", "sel",
      "no bitvector (HJ/probe/build)", "with bitvector (HJ/probe/build)",
      "with/without");
  std::printf("%s\n", std::string(110, '-').c_str());
  double crossover = -1;
  for (const Row& r : rows) {
    const double n = max_total / 100.0;  // normalize to % of max total
    std::printf(
        "%-6.3f | %7.1f /%7.1f /%7.1f    | %7.1f /%7.1f /%7.1f    |   %.3f\n",
        r.sel, r.off.join_ns / n, r.off.probe_ns / n, r.off.build_ns / n,
        r.on.join_ns / n, r.on.probe_ns / n, r.on.build_ns / n,
        r.on.total() / r.off.total());
    if (crossover < 0 && r.on.total() < r.off.total()) {
      crossover = 1.0 - r.sel;  // eliminated fraction at first win
    }
  }
  std::printf(
      "\nFirst selectivity where the bitvector plan wins: eliminates >= "
      "%.0f%% of tuples\n",
      crossover < 0 ? 100.0 : crossover * 100.0);
  std::printf(
      "Paper: filter pays off once it eliminates >10%% of tuples; "
      "lambda_thresh set to 5%%.\n");
  return 0;
}

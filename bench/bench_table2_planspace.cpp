// Table 2: plan-space complexity for star and snowflake queries with
// unique-key (PKFK) joins in the space of right deep trees without cross
// products.
//
// For each shape and size this binary reports:
//  * the full plan-space size (exponential in n — the "original
//    complexity" column),
//  * the candidate-set size from the paper's analysis (n + 1),
//  * verification that the candidate set contains a plan of globally
//    minimal exact Cout (the theorems' claim), for sizes where exhaustive
//    search is affordable.
#include "bench_util.h"
#include "src/exec/exact_cost.h"
#include "src/plan/enumerate.h"
#include "src/plan/pushdown.h"
#include "tests/test_util.h"

namespace bqo {
namespace {

double PlanCout(const JoinGraph& graph, const std::vector<int>& order) {
  Plan plan = BuildRightDeepPlan(graph, order);
  PushDownBitvectors(&plan);
  ExactCoutModel model;
  return model.Cout(plan);
}

double MinOver(const JoinGraph& graph,
               const std::vector<std::vector<int>>& orders) {
  double best = -1;
  for (const auto& o : orders) {
    const double c = PlanCout(graph, o);
    if (best < 0 || c < best) best = c;
  }
  return best;
}

}  // namespace
}  // namespace bqo

int main() {
  using namespace bqo;
  using bqo::testing::MakeSnowflakeDb;
  using bqo::testing::MakeStarDb;
  bench::PrintHeader(
      "Table 2: plan space complexity, star & snowflake queries with PKFK "
      "joins\n(right deep trees without cross products)");

  std::printf("%-10s %-6s %14s %12s %22s\n", "shape", "n+1", "full space",
              "candidates", "min-in-candidates?");
  std::printf("%s\n", std::string(70, '-').c_str());

  // Star queries, n = 2..7 dimensions.
  for (int n = 2; n <= 7; ++n) {
    auto db = MakeStarDb(n, 800, 40, {0.2, 0.7, 0.4, 0.9, 0.3, 0.6, 0.5},
                         static_cast<uint64_t>(100 + n));
    auto graph = db->Graph();
    BQO_CHECK(graph.ok());
    const size_t full = CountRightDeepOrders(graph.value(), 10000000);
    const auto candidates = StarCandidateOrders(graph.value(), 0);
    std::string verdict = "(skipped: space too large)";
    if (full <= 20000) {
      const double global =
          MinOver(graph.value(), EnumerateRightDeepOrders(graph.value()));
      const double cand = MinOver(graph.value(), candidates);
      verdict = cand <= global + 1e-6 ? "yes" : "NO <-- VIOLATION";
    }
    std::printf("%-10s %-6d %14s %12zu %22s\n",
                StringFormat("star-%d", n).c_str(), n + 1,
                FormatCount(static_cast<int64_t>(full)).c_str(),
                candidates.size(), verdict.c_str());
  }

  // Snowflake queries of several branch shapes.
  struct Shape {
    std::vector<int> branches;
  };
  const Shape shapes[] = {{{2, 1}}, {{2, 2}}, {{2, 2, 1}}, {{3, 2}},
                          {{2, 2, 2}}, {{3, 2, 2}}};
  for (const Shape& s : shapes) {
    auto db = MakeSnowflakeDb(s.branches, 1000, 50, 0.6, {0.2, 0.5, 0.4},
                              77);
    auto graph = db->Graph();
    BQO_CHECK(graph.ok());
    SnowflakeShape shape;
    shape.fact = 0;
    int next = 1;
    for (int len : s.branches) {
      std::vector<int> b;
      for (int j = 0; j < len; ++j) b.push_back(next++);
      shape.branches.push_back(std::move(b));
    }
    const size_t full = CountRightDeepOrders(graph.value(), 10000000);
    const auto candidates = SnowflakeCandidateOrders(shape);
    std::string verdict = "(skipped: space too large)";
    if (full <= 20000) {
      const double global =
          MinOver(graph.value(), EnumerateRightDeepOrders(graph.value()));
      const double cand = MinOver(graph.value(), candidates);
      verdict = cand <= global + 1e-6 ? "yes" : "NO <-- VIOLATION";
    }
    std::vector<std::string> parts;
    for (int len : s.branches) parts.push_back(std::to_string(len));
    std::printf("%-10s %-6d %14s %12zu %22s\n",
                ("snow-" + JoinStrings(parts, ",")).c_str(),
                shape.TotalRelations(),
                FormatCount(static_cast<int64_t>(full)).c_str(),
                candidates.size(), verdict.c_str());
  }

  std::printf(
      "\nPaper: full space is exponential in n; the analysis reduces the\n"
      "search to n+1 candidate plans containing a minimal-Cout plan\n"
      "(Theorems 4.1/4.2 for stars, 5.1/5.2 for snowflakes).\n");
  return 0;
}

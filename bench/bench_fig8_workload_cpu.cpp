// Figure 8: total query execution CPU time per workload, Original vs BQO,
// broken down by query selectivity group (S = cheapest third of queries by
// baseline CPU, L = most expensive third).
//
// Paper headline: BQO reduces total workload CPU to 0.36 (JOB), 0.78
// (TPC-DS), 0.75 (CUSTOMER) of the original, with the largest wins in the
// L (low-selectivity / expensive) group — 4.8x for JOB's L group.
#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Figure 8: total execution CPU by selectivity group (Original vs BQO)\n"
      "All numbers normalized by the workload's Original total.");

  auto comparisons = bench::RunAllComparisons(scale);

  std::printf("%-10s | %9s %9s %9s | %9s %9s %9s | %s\n", "workload",
              "Orig L", "Orig M", "Orig S", "BQO L", "BQO M", "BQO S",
              "BQO total");
  std::printf("%s\n", std::string(100, '-').c_str());

  for (const auto& c : comparisons) {
    const auto groups = GroupBySelectivity(c.original);
    double orig[3] = {0, 0, 0}, bqo[3] = {0, 0, 0};
    for (size_t i = 0; i < c.original.size(); ++i) {
      const int g = static_cast<int>(groups[i]);
      orig[g] += static_cast<double>(c.original[i].metrics.total_ns);
      bqo[g] += static_cast<double>(c.bqo[i].metrics.total_ns);
    }
    const double total = orig[0] + orig[1] + orig[2];
    std::printf(
        "%-10s | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f |   %.3f\n",
        c.workload.name.c_str(), orig[2] / total, orig[1] / total,
        orig[0] / total, bqo[2] / total, bqo[1] / total, bqo[0] / total,
        (bqo[0] + bqo[1] + bqo[2]) / total);
    if (bqo[2] > 0) {
      std::printf(
          "%-10s   L-group (expensive queries) speedup: %.2fx   "
          "(paper: up to 4.8x for JOB)\n",
          "", orig[2] / bqo[2]);
    }
  }
  std::printf(
      "\nPaper reference (BQO total, normalized): JOB 0.36, TPC-DS 0.78, "
      "CUSTOMER 0.75; average reduction 37%%.\n");
  return 0;
}

// Morsel-parallel scan-stage throughput: the wall time to drain one
// filter-probing scan (hash -> MayContainBatch -> gather) at 1..N worker
// threads, through the same ScanOperator/ExchangeOperator shapes ExecutePlan
// compiles. Prints one machine-readable JSON line per (filter kind, thread
// count) for the BENCH_*.json trajectory, and verifies on every run that the
// result checksum and the merged filter stats are identical across thread
// counts — the speedup must be free of semantic drift.
//
// Knobs: BQO_SCAN_ROWS (default 4M), BQO_MAX_THREADS (default: hardware
// concurrency, at least 4 so the scaling shape is visible even on small
// machines).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/exec/exchange.h"
#include "src/exec/scan.h"
#include "src/workload/datagen.h"

namespace bqo {
namespace {

constexpr int64_t kKeyDomain = 100000;

int64_t RowsFromEnv() {
  if (const char* e = std::getenv("BQO_SCAN_ROWS")) {
    const int64_t rows = std::atoll(e);
    if (rows > 0) return rows;
  }
  return int64_t{4} * 1000 * 1000;
}

int MaxThreadsFromEnv() {
  if (const char* e = std::getenv("BQO_MAX_THREADS")) {
    const int t = std::atoi(e);
    if (t > 0) return t;
  }
  ExecConfig hw;
  hw.threads = 0;
  return std::max(4, hw.ResolvedThreads());
}

struct DrainResult {
  int64_t wall_ns = 0;
  uint64_t checksum = 0;  ///< order-independent row checksum
  int64_t rows_out = 0;
  int64_t probed = 0;
  int64_t passed = 0;
};

DrainResult DrainOnce(const Table* table, FilterKind kind, int threads) {
  FilterRuntime runtime;
  runtime.slots.resize(1);
  runtime.stats.assign(1, FilterStats{});
  runtime.stats[0].filter_id = 0;
  FilterConfig config;
  config.kind = kind;
  // Filter admits ~30% of the FK domain — selective enough that the probe
  // pipeline (not the output gather) dominates, like a pushed-down filter
  // from a selective dimension.
  auto filter = CreateFilter(config, kKeyDomain * 3 / 10);
  for (int64_t v = 0; v < kKeyDomain * 3 / 10; ++v) {
    filter->Insert(HashComposite(&v, 1));
  }
  runtime.slots[0] = std::move(filter);

  ResolvedFilter rf;
  rf.filter_id = 0;
  rf.key_positions.push_back(table->ColumnIndex("d_fk"));
  OutputSchema schema({BoundColumn{0, "d_fk"}, BoundColumn{0, "measure"}});
  auto scan = std::make_unique<ScanOperator>(
      table, nullptr, schema, std::vector<ResolvedFilter>{rf}, &runtime,
      "scan t");
  std::unique_ptr<PhysicalOperator> op;
  if (threads > 1) {
    ExecConfig exec;
    exec.threads = threads;
    op = std::make_unique<ExchangeOperator>(std::move(scan), exec, "xchg t");
  } else {
    op = std::move(scan);
  }

  DrainResult result;
  const auto start = std::chrono::steady_clock::now();
  op->Open();
  Batch batch;
  while (op->Next(&batch)) {
    for (int r = 0; r < batch.num_rows; ++r) {
      // Commutative checksum: batch arrival order differs across threads.
      result.checksum +=
          Mix64(static_cast<uint64_t>(batch.col(0)[r]) * 31 +
                static_cast<uint64_t>(batch.col(1)[r]));
    }
    result.rows_out += batch.num_rows;
  }
  op->Close();
  result.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.probed = runtime.stats[0].probed;
  result.passed = runtime.stats[0].passed;
  return result;
}

}  // namespace
}  // namespace bqo

int main() {
  using namespace bqo;
  const int64_t rows = RowsFromEnv();
  const int max_threads = MaxThreadsFromEnv();
  ExecConfig hw;
  hw.threads = 0;

  Catalog catalog;
  Rng rng(1);
  TableGenSpec dim;
  dim.name = "d";
  dim.rows = kKeyDomain;
  dim.with_label = false;
  GenerateTable(&catalog, dim, &rng);
  TableGenSpec spec;
  spec.name = "t";
  spec.rows = rows;
  spec.with_pk = false;
  spec.with_label = false;
  spec.fks.push_back(FkSpec{"d_fk", "d", "d_id", 0.3, 0.0});
  const Table* table = GenerateTable(&catalog, spec, &rng);

  std::fprintf(stderr,
               "[bench] parallel scan: %lld rows, hw threads %d, up to %d "
               "workers\n",
               static_cast<long long>(rows), hw.ResolvedThreads(),
               max_threads);

  constexpr int kReps = 3;  // min-of-k, warm cache
  for (FilterKind kind :
       {FilterKind::kBloom, FilterKind::kBlockedBloom, FilterKind::kExact,
        FilterKind::kCuckoo}) {
    DrainResult base;
    double base_ns = 0;
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      DrainResult best;
      best.wall_ns = INT64_MAX;
      for (int rep = 0; rep < kReps; ++rep) {
        DrainResult r = DrainOnce(table, kind, threads);
        if (r.wall_ns < best.wall_ns) best = r;
      }
      if (threads == 1) {
        base = best;
        base_ns = static_cast<double>(best.wall_ns);
      } else if (best.checksum != base.checksum ||
                 best.rows_out != base.rows_out ||
                 best.probed != base.probed || best.passed != base.passed) {
        std::fprintf(stderr,
                     "[bench] MISMATCH at kind=%s threads=%d — results or "
                     "merged stats differ from threads=1\n",
                     FilterKindName(kind), threads);
        return 1;
      }
      // `valid` marks whether the speedup is a meaningful scaling datum:
      // with fewer hardware threads than workers (worst case a single-core
      // container) flat speedups are indistinguishable from a regression,
      // so trajectory tooling must skip those lines rather than alarm.
      std::printf(
          "{\"bench\":\"parallel_scan\",\"kind\":\"%s\",\"threads\":%d,"
          "\"hardware_concurrency\":%d,\"rows\":%lld,\"rows_out\":%lld,"
          "\"wall_ms\":%.2f,\"mrows_per_s\":%.1f,\"speedup_vs_1\":%.2f,"
          "\"simd_tier\":\"%s\",\"valid\":%s}\n",
          FilterKindName(kind), threads, hw.ResolvedThreads(),
          static_cast<long long>(rows),
          static_cast<long long>(best.rows_out),
          static_cast<double>(best.wall_ns) / 1e6,
          static_cast<double>(rows) * 1e3 /
              static_cast<double>(best.wall_ns),
          base_ns / static_cast<double>(best.wall_ns),
          SimdTierName(ActiveSimdTier()),
          threads <= hw.ResolvedThreads() ? "true" : "false");
    }
  }
  return 0;
}

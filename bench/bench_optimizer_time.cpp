// Ablation D: query optimization overhead. The paper reports BQO's
// optimization time at roughly one third of the original optimizer's
// (join reordering is disabled on the transformed snowflake subplan, so
// the search is linear rather than exponential).
#include <algorithm>

#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Optimizer overhead: optimize-only time per query (no execution)");

  std::printf("%-10s %-26s %12s %12s %12s\n", "workload", "mode",
              "avg (us)", "p50 (us)", "max (us)");
  std::printf("%s\n", std::string(78, '-').c_str());

  for (int which = 0; which < 3; ++which) {
    Workload w = bench::MakeWorkloadByIndex(which, scale * 0.2);
    StatsCatalog stats(w.catalog.get());
    for (OptimizerMode mode : {OptimizerMode::kBaselinePostProcess,
                               OptimizerMode::kBqoShallow}) {
      std::vector<int64_t> times;
      for (const QuerySpec& spec : w.queries) {
        auto graph = BuildJoinGraph(*w.catalog, spec);
        BQO_CHECK(graph.ok());
        OptimizerOptions opt;
        opt.mode = mode;
        const OptimizedQuery q = OptimizeQuery(graph.value(), &stats, opt);
        times.push_back(q.optimize_ns);
      }
      std::sort(times.begin(), times.end());
      int64_t total = 0;
      for (int64_t t : times) total += t;
      std::printf("%-10s %-26s %12.1f %12.1f %12.1f\n", w.name.c_str(),
                  OptimizerModeName(mode),
                  static_cast<double>(total) /
                      static_cast<double>(times.size()) / 1e3,
                  static_cast<double>(times[times.size() / 2]) / 1e3,
                  static_cast<double>(times.back()) / 1e3);
    }
  }
  std::printf(
      "\nPaper: with the transformation rule, optimization time drops to "
      "~1/3 of the\noriginal optimizer's (reordering disabled on the "
      "transformed subplan). The\neffect is largest on the high-join "
      "CUSTOMER workload.\n");
  return 0;
}

// Ablation B: bitvector filter implementation — exact hash set vs blocked
// Bloom (at several bits/key) vs cuckoo. Reports workload CPU, filter
// memory, and observed false-positive leakage (extra tuples passed versus
// the exact filter).
#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Ablation: filter implementation (TPC-DS, BQO plans)\n"
      "CPU normalized to the exact-filter run.");

  Workload w = MakeTpcdsLite(scale);

  struct Config {
    const char* label;
    FilterConfig fc;
  };
  std::vector<Config> configs;
  configs.push_back({"exact", FilterConfig{FilterKind::kExact, 10.0, 12}});
  for (double bpk : {4.0, 8.0, 10.0, 14.0}) {
    FilterConfig fc;
    fc.kind = FilterKind::kBloom;
    fc.bloom_bits_per_key = bpk;
    configs.push_back({"", fc});
  }
  {
    FilterConfig fc;
    fc.kind = FilterKind::kCuckoo;
    configs.push_back({"cuckoo-12b", fc});
  }

  std::printf("%-12s %12s %14s %16s\n", "filter", "CPU (norm)",
              "filter MB", "passed tuples");
  std::printf("%s\n", std::string(58, '-').c_str());

  int64_t reference_ns = -1;
  for (const Config& cfg : configs) {
    RunOptions options;
    options.repeats = 2;
    options.execution.filter_config = cfg.fc;
    const auto runs = RunWorkload(w, OptimizerMode::kBqoShallow, options);
    int64_t total_ns = 0, bytes = 0, passed = 0;
    for (const QueryRun& r : runs) {
      total_ns += r.metrics.total_ns;
      for (const auto& fs : r.metrics.filters) {
        bytes += fs.size_bytes;
        passed += fs.passed;
      }
    }
    if (reference_ns < 0) reference_ns = total_ns;
    std::string label = cfg.label;
    if (label.empty()) {
      label = StringFormat("bloom-%.0fbpk", cfg.fc.bloom_bits_per_key);
    }
    std::printf("%-12s %12.3f %14.2f %16s\n", label.c_str(),
                static_cast<double>(total_ns) /
                    static_cast<double>(reference_ns),
                static_cast<double>(bytes) / 1e6,
                FormatCount(passed).c_str());
  }
  std::printf(
      "\nExpected shape: Bloom at ~10 bits/key matches exact CPU within a "
      "few %% at a\nfraction of the memory; 4 bits/key leaks false "
      "positives (more passed tuples).\n");
  return 0;
}

// Table 3: statistics of the evaluation workloads — database size, table /
// query counts, (emulated) physical design, and joins per query.
//
// The paper's absolute sizes (100GB / 7GB / 700GB) are scaled to laptop
// footprints; topology statistics (tables, queries, joins) match the
// paper's shape. See DESIGN.md "Substitutions".
#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader("Table 3: statistics of workloads");

  std::printf("%-22s %12s %12s %12s\n", "Statistics", "TPC-DS", "JOB",
              "CUSTOMER");
  std::printf("%s\n", std::string(62, '-').c_str());

  Workload w[3] = {MakeTpcdsLite(scale), MakeJobLite(scale),
                   MakeCustomerLite(scale)};

  auto row = [&](const char* label, auto getter) {
    std::printf("%-22s %12s %12s %12s\n", label, getter(w[0]).c_str(),
                getter(w[1]).c_str(), getter(w[2]).c_str());
  };
  row("DB size", [](const Workload& x) {
    return StringFormat("%.1f MB",
                        static_cast<double>(x.DatabaseBytes()) / 1e6);
  });
  row("Tables", [](const Workload& x) {
    return std::to_string(x.catalog->num_tables());
  });
  row("Queries", [](const Workload& x) {
    return std::to_string(x.queries.size());
  });
  row("B+ trees (emulated)", [](const Workload& x) {
    return std::to_string(x.emulated_btree_indexes);
  });
  row("Columnstores (emul.)", [](const Workload& x) {
    return std::to_string(x.emulated_columnstores);
  });
  row("Joins avg", [](const Workload& x) {
    return StringFormat("%.1f", x.AvgJoins());
  });
  row("Joins max", [](const Workload& x) {
    return std::to_string(x.MaxJoins());
  });

  std::printf(
      "\nPaper reference: TPC-DS 100GB/25 tables/99 queries/7.9 avg joins;\n"
      "JOB 7GB/21/113/7.7; CUSTOMER 700GB/475/100/30.3 avg, 80 max.\n");
  return 0;
}

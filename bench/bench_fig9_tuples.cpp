// Figure 9: total number of tuples output by operators per workload,
// broken down by operator type (join / leaf / others), Original vs BQO,
// normalized by the Original total.
//
// Tuple counts are deterministic (no timing noise), so this is the paper's
// cleanest plan-quality signal: for JOB, BQO cut normalized join-operator
// output from 0.50 to 0.24 (a 52% reduction).
#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Figure 9: tuples output by operator type (Original vs BQO)\n"
      "All numbers normalized by the workload's Original total tuples.");

  auto comparisons = bench::RunAllComparisons(scale, /*limit=*/0,
                                              /*repeats=*/1);

  std::printf("%-10s | %8s %8s %8s | %8s %8s %8s | %s\n", "workload",
              "Or join", "Or leaf", "Or other", "BQ join", "BQ leaf",
              "BQ other", "BQO total");
  std::printf("%s\n", std::string(95, '-').c_str());

  for (const auto& c : comparisons) {
    double orig[3] = {0, 0, 0}, bqo[3] = {0, 0, 0};
    for (size_t i = 0; i < c.original.size(); ++i) {
      orig[0] += static_cast<double>(c.original[i].metrics.join_tuples);
      orig[1] += static_cast<double>(c.original[i].metrics.leaf_tuples);
      orig[2] += static_cast<double>(c.original[i].metrics.other_tuples);
      bqo[0] += static_cast<double>(c.bqo[i].metrics.join_tuples);
      bqo[1] += static_cast<double>(c.bqo[i].metrics.leaf_tuples);
      bqo[2] += static_cast<double>(c.bqo[i].metrics.other_tuples);
    }
    const double total = orig[0] + orig[1] + orig[2];
    std::printf("%-10s | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f |   %.3f\n",
                c.workload.name.c_str(), orig[0] / total, orig[1] / total,
                orig[2] / total, bqo[0] / total, bqo[1] / total,
                bqo[2] / total, (bqo[0] + bqo[1] + bqo[2]) / total);
  }
  std::printf(
      "\nPaper reference (BQO total tuples, normalized): JOB 0.65, TPC-DS "
      "0.92, CUSTOMER 0.77;\nJOB join-operator tuples 0.50 -> 0.24.\n");
  return 0;
}

// Micro-benchmarks (google-benchmark) for the bitvector filter
// implementations and the hash-join probe path: the per-tuple costs Cf
// (filter check) and Cp (hash probe) that Section 6.3's lambda_thresh
// formula is built from.
//
// Before the google-benchmark tables, main() emits one machine-readable
// JSON line per (filter kind, hit/miss) cell comparing the scalar
// MayContain loop against the batched, prefetched MayContainBatch path on a
// 1M-key probe stream — the perf trajectory these lines track is the point
// of the vectorized pipeline, so future PRs can scrape them into
// BENCH_*.json without parsing benchmark's human output.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/exec/batch.h"
#include "src/filter/bitvector_filter.h"

namespace bqo {
namespace {

std::vector<uint64_t> MakeKeys(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys(static_cast<size_t>(n));
  for (auto& k : keys) k = rng.Next();
  return keys;
}

void BM_FilterInsert(benchmark::State& state) {
  const auto kind = static_cast<FilterKind>(state.range(0));
  const int64_t n = state.range(1);
  const auto keys = MakeKeys(n, 1);
  for (auto _ : state) {
    state.PauseTiming();
    FilterConfig config;
    config.kind = kind;
    auto filter = CreateFilter(config, n);
    state.ResumeTiming();
    for (uint64_t k : keys) filter->Insert(k);
    benchmark::DoNotOptimize(filter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilterInsert)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 10, 1 << 16, 1 << 20}})
    ->ArgNames({"kind", "n"});

void BM_FilterProbeHit(benchmark::State& state) {
  const auto kind = static_cast<FilterKind>(state.range(0));
  const int64_t n = state.range(1);
  const auto keys = MakeKeys(n, 1);
  FilterConfig config;
  config.kind = kind;
  auto filter = CreateFilter(config, n);
  for (uint64_t k : keys) filter->Insert(k);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->MayContain(keys[i]));
    i = (i + 1) % keys.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterProbeHit)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 16, 1 << 20}})
    ->ArgNames({"kind", "n"});

void BM_FilterProbeMiss(benchmark::State& state) {
  const auto kind = static_cast<FilterKind>(state.range(0));
  const int64_t n = state.range(1);
  const auto keys = MakeKeys(n, 1);
  const auto probes = MakeKeys(n, 2);  // disjoint with overwhelming prob.
  FilterConfig config;
  config.kind = kind;
  auto filter = CreateFilter(config, n);
  for (uint64_t k : keys) filter->Insert(k);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->MayContain(probes[i]));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterProbeMiss)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 16, 1 << 20}})
    ->ArgNames({"kind", "n"});

/// Batched probe over kBatchSize-strides with an identity selection vector:
/// the shape the vectorized scan drives (see src/exec/scan.cc).
void BM_FilterProbeBatch(benchmark::State& state) {
  const auto kind = static_cast<FilterKind>(state.range(0));
  const int64_t n = state.range(1);
  const bool hits = state.range(2) != 0;
  const auto keys = MakeKeys(n, 1);
  const auto probes = hits ? keys : MakeKeys(n, 2);
  FilterConfig config;
  config.kind = kind;
  auto filter = CreateFilter(config, n);
  for (uint64_t k : keys) filter->Insert(k);
  std::vector<uint16_t> sel(kBatchSize);
  size_t base = 0;
  int64_t survivors = 0;
  for (auto _ : state) {
    if (base + kBatchSize > probes.size()) base = 0;
    for (int i = 0; i < kBatchSize; ++i) sel[i] = static_cast<uint16_t>(i);
    survivors +=
        filter->MayContainBatch(probes.data() + base, sel.data(), kBatchSize);
    base += kBatchSize;
  }
  benchmark::DoNotOptimize(survivors);
  state.SetItemsProcessed(state.iterations() * kBatchSize);
}
BENCHMARK(BM_FilterProbeBatch)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 16, 1 << 20}, {0, 1}})
    ->ArgNames({"kind", "n", "hits"});

void BM_CompositeHash(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  int64_t values[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= HashComposite(values, width);
    ++values[0];
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompositeHash)->Arg(1)->Arg(2)->Arg(4);

/// Batched column hashing (the scan's stride primitive) vs the scalar fold.
void BM_HashColumnBatch(benchmark::State& state) {
  std::vector<int64_t> values(kBatchSize);
  for (int i = 0; i < kBatchSize; ++i) values[i] = i * 2654435761LL;
  std::vector<uint64_t> out(kBatchSize);
  for (auto _ : state) {
    HashColumn(values.data(), kBatchSize, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kBatchSize);
}
BENCHMARK(BM_HashColumnBatch);

// ---------------------------------------------------------------------------
// JSON trajectory lines: scalar vs batched ns/probe on a 1M-key stream.
// ---------------------------------------------------------------------------

double MeasureScalarNs(const BitvectorFilter& filter,
                       const std::vector<uint64_t>& probes, int64_t* sink) {
  const auto start = std::chrono::steady_clock::now();
  int64_t passed = 0;
  for (uint64_t h : probes) passed += filter.MayContain(h) ? 1 : 0;
  const auto end = std::chrono::steady_clock::now();
  *sink += passed;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         static_cast<double>(probes.size());
}

double MeasureBatchedNs(const BitvectorFilter& filter,
                        const std::vector<uint64_t>& probes, int64_t* sink) {
  std::vector<uint16_t> sel(kBatchSize);
  const auto start = std::chrono::steady_clock::now();
  int64_t passed = 0;
  for (size_t base = 0; base < probes.size(); base += kBatchSize) {
    const int n = static_cast<int>(
        std::min<size_t>(kBatchSize, probes.size() - base));
    for (int i = 0; i < n; ++i) sel[i] = static_cast<uint16_t>(i);
    passed += filter.MayContainBatch(probes.data() + base, sel.data(), n);
  }
  const auto end = std::chrono::steady_clock::now();
  *sink += passed;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         static_cast<double>(probes.size());
}

void EmitScalarVsBatchedJson() {
  constexpr int64_t kProbes = 1 << 20;  // 1M-key probe stream
  constexpr int kReps = 5;              // min-of-k, warm cache
  int64_t sink = 0;
  // Two build regimes: 1M keys (the filter fits in a big L2, probes are
  // cache-resident) and 8M keys (the filter spills to L3/DRAM — the
  // decision-support regime where prefetching pays).
  for (const int64_t build_keys : {int64_t{1} << 20, int64_t{1} << 23}) {
    const auto keys = MakeKeys(build_keys, 1);
    const auto hit_probes = MakeKeys(kProbes, 1);  // prefix of `keys`
    const auto miss_probes = MakeKeys(kProbes, 2);
    for (FilterKind kind :
         {FilterKind::kExact, FilterKind::kBloom, FilterKind::kCuckoo,
          FilterKind::kBlockedBloom}) {
      FilterConfig config;
      config.kind = kind;
      auto filter = CreateFilter(config, build_keys);
      for (uint64_t k : keys) filter->Insert(k);
      // Measured FPR on the disjoint miss stream: every pass is a false
      // positive (the empirical point the optimizer's per-kind FPR curves
      // are checked against).
      int64_t false_pos = 0;
      for (uint64_t h : miss_probes) false_pos += filter->MayContain(h) ? 1 : 0;
      const double measured_fpr =
          static_cast<double>(false_pos) / static_cast<double>(kProbes);
      for (const bool hit : {true, false}) {
        const auto& probes = hit ? hit_probes : miss_probes;
        double scalar_ns = 1e30, batched_ns = 1e30;
        for (int rep = 0; rep < kReps; ++rep) {
          scalar_ns =
              std::min(scalar_ns, MeasureScalarNs(*filter, probes, &sink));
          batched_ns =
              std::min(batched_ns, MeasureBatchedNs(*filter, probes, &sink));
        }
        std::printf(
            "{\"bench\":\"filter_probe_1M\",\"kind\":\"%s\",\"mode\":\"%s\","
            "\"build_keys\":%lld,\"filter_mb\":%.1f,"
            "\"scalar_ns_per_probe\":%.3f,\"batched_ns_per_probe\":%.3f,"
            "\"speedup\":%.2f,\"measured_fpr\":%.6f,\"simd_tier\":\"%s\"}\n",
            FilterKindName(kind), hit ? "hit" : "miss",
            static_cast<long long>(build_keys),
            static_cast<double>(filter->SizeBytes()) / (1024.0 * 1024.0),
            scalar_ns, batched_ns, scalar_ns / batched_ns, measured_fpr,
            SimdTierName(ActiveSimdTier()));
      }
    }
  }
  if (sink == 0) std::printf("# impossible\n");  // keep the loops observable
}

}  // namespace
}  // namespace bqo

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The JSON sweep costs ~2 min (three 8M-key filter builds, ~120M probes);
  // BQO_NO_JSON=1 skips it when only a filtered micro run is wanted.
  const char* no_json = std::getenv("BQO_NO_JSON");
  if (no_json == nullptr || no_json[0] == '\0' || no_json[0] == '0') {
    bqo::EmitScalarVsBatchedJson();
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Micro-benchmarks (google-benchmark) for the bitvector filter
// implementations and the hash-join probe path: the per-tuple costs Cf
// (filter check) and Cp (hash probe) that Section 6.3's lambda_thresh
// formula is built from.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/filter/bitvector_filter.h"

namespace bqo {
namespace {

std::vector<uint64_t> MakeKeys(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys(static_cast<size_t>(n));
  for (auto& k : keys) k = rng.Next();
  return keys;
}

void BM_FilterInsert(benchmark::State& state) {
  const auto kind = static_cast<FilterKind>(state.range(0));
  const int64_t n = state.range(1);
  const auto keys = MakeKeys(n, 1);
  for (auto _ : state) {
    state.PauseTiming();
    FilterConfig config;
    config.kind = kind;
    auto filter = CreateFilter(config, n);
    state.ResumeTiming();
    for (uint64_t k : keys) filter->Insert(k);
    benchmark::DoNotOptimize(filter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilterInsert)
    ->ArgsProduct({{0, 1, 2}, {1 << 10, 1 << 16, 1 << 20}})
    ->ArgNames({"kind", "n"});

void BM_FilterProbeHit(benchmark::State& state) {
  const auto kind = static_cast<FilterKind>(state.range(0));
  const int64_t n = state.range(1);
  const auto keys = MakeKeys(n, 1);
  FilterConfig config;
  config.kind = kind;
  auto filter = CreateFilter(config, n);
  for (uint64_t k : keys) filter->Insert(k);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->MayContain(keys[i]));
    i = (i + 1) % keys.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterProbeHit)
    ->ArgsProduct({{0, 1, 2}, {1 << 16, 1 << 20}})
    ->ArgNames({"kind", "n"});

void BM_FilterProbeMiss(benchmark::State& state) {
  const auto kind = static_cast<FilterKind>(state.range(0));
  const int64_t n = state.range(1);
  const auto keys = MakeKeys(n, 1);
  const auto probes = MakeKeys(n, 2);  // disjoint with overwhelming prob.
  FilterConfig config;
  config.kind = kind;
  auto filter = CreateFilter(config, n);
  for (uint64_t k : keys) filter->Insert(k);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->MayContain(probes[i]));
    i = (i + 1) % probes.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterProbeMiss)
    ->ArgsProduct({{0, 1, 2}, {1 << 16, 1 << 20}})
    ->ArgNames({"kind", "n"});

void BM_CompositeHash(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  int64_t values[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= HashComposite(values, width);
    ++values[0];
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompositeHash)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace bqo

BENCHMARK_MAIN();

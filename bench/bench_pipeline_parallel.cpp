// Whole-plan pipeline-parallel throughput: wall time for ExecutePlan over a
// multi-join star query at 1..N workers — parallel hash-join builds,
// per-worker bitvector-filter partials merged via MergeFrom, the
// scan -> probe -> probe chain drained wide behind the top exchange, and
// the final aggregate folded into that exchange as per-worker partials
// merged by the sink (the shapes CompilePlan emits; see
// src/exec/pipeline.h, src/exec/exchange.h). Both aggregate shapes run:
// ungrouped SUM (scalar partials) and grouped SUM (hash-map partials, the
// merge-heavy case). Verifies on every run that the result rows, the
// checksum, and the merged filter stats are identical across thread
// counts — the speedup must be free of semantic drift.
//
// Prints one machine-readable JSON line per (filter kind, agg shape,
// thread count) for the BENCH_*.json trajectory. Every line carries
// hardware_concurrency, and `valid` is false when the worker count exceeds
// the hardware threads (flat speedups there are a container artifact, not
// a regression).
//
// Knobs: BQO_FACT_ROWS (default 2M), BQO_DIM_ROWS (default 200k),
// BQO_MAX_THREADS (default: hardware concurrency, at least 4).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/simd.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/exec/executor.h"
#include "src/expr/expr.h"
#include "src/plan/pushdown.h"
#include "src/workload/datagen.h"
#include "src/workload/query.h"

namespace bqo {
namespace {

int64_t EnvRows(const char* name, int64_t fallback) {
  if (const char* e = std::getenv(name)) {
    const int64_t rows = std::atoll(e);
    if (rows > 0) return rows;
  }
  return fallback;
}

int MaxThreadsFromEnv() {
  if (const char* e = std::getenv("BQO_MAX_THREADS")) {
    const int t = std::atoi(e);
    if (t > 0) return t;
  }
  ExecConfig hw;
  hw.threads = 0;
  return std::max(4, hw.ResolvedThreads());
}

struct BenchDb {
  Catalog catalog;
  QuerySpec spec;
};

/// 3-dimension PKFK star with selective dimension predicates, sized so the
/// dimension builds take the parallel filter-fill path (>= 8192 keys).
void BuildStar(BenchDb* db, int64_t fact_rows, int64_t dim_rows) {
  Rng rng(7);
  TableGenSpec fact;
  fact.name = "f";
  fact.rows = fact_rows;
  fact.with_pk = false;
  fact.with_label = false;
  db->spec.name = "star";
  db->spec.relations.push_back({"f", "f", nullptr});
  const double sels[3] = {0.3, 0.6, 0.15};
  for (int i = 0; i < 3; ++i) {
    TableGenSpec dim;
    dim.name = StringFormat("d%d", i);
    dim.rows = dim_rows;
    dim.with_label = false;
    GenerateTable(&db->catalog, dim, &rng);
    fact.fks.push_back(FkSpec{StringFormat("d%d_fk", i), dim.name,
                              dim.name + "_id", 0.5, 0.0});
    db->spec.relations.push_back(
        {dim.name, dim.name,
         Lt("attr0", static_cast<int64_t>(sels[i] * 1000.0))});
    db->spec.joins.push_back({"f", StringFormat("d%d_fk", i), dim.name,
                              StringFormat("d%d_id", i)});
  }
  GenerateTable(&db->catalog, fact, &rng);
}

struct RunResult {
  int64_t wall_ns = 0;
  uint64_t checksum = 0;
  int64_t result_rows = 0;
  std::vector<int64_t> probed, passed, inserted;
};

RunResult RunOnce(const Plan& plan, FilterKind kind, bool grouped,
                  int threads) {
  ExecutionOptions options;
  options.filter_config.kind = kind;
  options.exec.threads = threads;
  options.agg.kind = AggKind::kSum;
  options.agg.sum_column = BoundColumn{0, "measure"};
  if (grouped) {
    // Group on a fact FK: ~dim_rows groups, so every worker's partial map
    // is large and the sink merge is exercised for real.
    options.agg.has_group_by = true;
    options.agg.group_column = BoundColumn{0, "d0_fk"};
  }
  const QueryMetrics m = ExecutePlan(plan, options);
  RunResult r;
  r.wall_ns = m.total_ns;
  r.checksum = m.result_checksum;
  r.result_rows = m.result_rows;
  for (const FilterStats& fs : m.filters) {
    r.probed.push_back(fs.probed);
    r.passed.push_back(fs.passed);
    r.inserted.push_back(fs.inserted);
  }
  return r;
}

}  // namespace
}  // namespace bqo

int main() {
  using namespace bqo;
  const int64_t fact_rows = EnvRows("BQO_FACT_ROWS", 2 * 1000 * 1000);
  const int64_t dim_rows = EnvRows("BQO_DIM_ROWS", 200 * 1000);
  const int max_threads = MaxThreadsFromEnv();
  ExecConfig hw;
  hw.threads = 0;

  BenchDb db;
  BuildStar(&db, fact_rows, dim_rows);
  auto graph = BuildJoinGraph(db.catalog, db.spec);
  if (!graph.ok()) {
    std::fprintf(stderr, "[bench] graph: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  Plan plan = BuildRightDeepPlan(graph.value(), {0, 1, 2, 3});
  PushDownBitvectors(&plan);

  std::fprintf(stderr,
               "[bench] pipeline parallel: %lld fact rows, %lld dim rows, "
               "hw threads %d, up to %d workers\n",
               static_cast<long long>(fact_rows),
               static_cast<long long>(dim_rows), hw.ResolvedThreads(),
               max_threads);

  constexpr int kReps = 3;  // min-of-k, warm cache
  for (FilterKind kind :
       {FilterKind::kBloom, FilterKind::kBlockedBloom, FilterKind::kExact,
        FilterKind::kCuckoo}) {
    for (const bool grouped : {false, true}) {
      RunResult base;
      double base_ns = 0;
      for (int threads = 1; threads <= max_threads; threads *= 2) {
        RunResult best;
        best.wall_ns = INT64_MAX;
        for (int rep = 0; rep < kReps; ++rep) {
          RunResult r = RunOnce(plan, kind, grouped, threads);
          if (r.wall_ns < best.wall_ns) best = r;
        }
        if (threads == 1) {
          base = best;
          base_ns = static_cast<double>(best.wall_ns);
        } else if (best.checksum != base.checksum ||
                   best.result_rows != base.result_rows ||
                   best.probed != base.probed || best.passed != base.passed ||
                   best.inserted != base.inserted) {
          std::fprintf(stderr,
                       "[bench] MISMATCH at kind=%s agg=%s threads=%d — "
                       "results or merged stats differ from threads=1\n",
                       FilterKindName(kind), grouped ? "sum_group" : "sum",
                       threads);
          return 1;
        }
        std::printf(
            "{\"bench\":\"pipeline_parallel\",\"kind\":\"%s\",\"agg\":\"%s\","
            "\"threads\":%d,\"hardware_concurrency\":%d,\"fact_rows\":%lld,"
            "\"result_rows\":%lld,\"wall_ms\":%.2f,\"speedup_vs_1\":%.2f,"
            "\"simd_tier\":\"%s\",\"valid\":%s}\n",
            FilterKindName(kind), grouped ? "sum_group" : "sum", threads,
            hw.ResolvedThreads(), static_cast<long long>(fact_rows),
            static_cast<long long>(best.result_rows),
            static_cast<double>(best.wall_ns) / 1e6,
            base_ns / static_cast<double>(best.wall_ns),
            SimdTierName(ActiveSimdTier()),
            threads <= hw.ResolvedThreads() ? "true" : "false");
      }
    }
  }
  return 0;
}

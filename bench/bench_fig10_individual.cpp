// Figure 10: per-query CPU time, Original vs BQO, for the top-60 most
// expensive queries of each workload (sorted by Original CPU; the paper
// plots these on a log scale and observes up to two orders of magnitude
// improvement on individual queries, with some regressions).
#include <algorithm>

#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Figure 10: individual query CPU (top 60 by Original CPU, per "
      "workload)\nratio < 1 means BQO wins; log-scale in the paper.");

  auto comparisons = bench::RunAllComparisons(scale);

  for (const auto& c : comparisons) {
    std::printf("\n--- %s ---\n", c.workload.name.c_str());
    std::vector<size_t> order(c.original.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return c.original[a].metrics.total_ns > c.original[b].metrics.total_ns;
    });
    const size_t top = std::min<size_t>(60, order.size());
    std::printf("%-4s %-14s %12s %12s %9s\n", "rank", "query",
                "Original(ms)", "BQO(ms)", "ratio");
    int improved10x = 0, improved = 0, regressed = 0;
    for (size_t rank = 0; rank < top; ++rank) {
      const QueryRun& o = c.original[order[rank]];
      const QueryRun& b = c.bqo[order[rank]];
      const double oms = static_cast<double>(o.metrics.total_ns) / 1e6;
      const double bms = static_cast<double>(b.metrics.total_ns) / 1e6;
      const double ratio = oms > 0 ? bms / oms : 1.0;
      if (rank < 20) {  // print the first 20 rows, summarize the rest
        std::printf("%-4zu %-14s %12.3f %12.3f %9.3f\n", rank + 1,
                    o.query_name.c_str(), oms, bms, ratio);
      }
      if (ratio < 0.1) ++improved10x;
      if (ratio < 0.8) ++improved;
      if (ratio > 1.25) ++regressed;
    }
    std::printf(
        "... (of top %zu): %d queries >=10x faster, %d improved >20%%, %d "
        "regressed >25%%\n",
        top, improved10x, improved, regressed);
  }
  std::printf(
      "\nPaper: up to two orders of magnitude reduction on individual "
      "queries; a few regressions\n(cost-model gaps, right-deep bias) — "
      "Section 7.4.\n");
  return 0;
}

// Table 4 (Appendix A): effectiveness of bitvector filtering as a pure
// query-processing technique — the same baseline plans executed with and
// without bitvector filters.
//
// Columns reproduced: workload CPU ratio (with/without), ratio of queries
// whose plans use bitvector filters, fraction of queries improved >20%,
// fraction regressed >20%.
#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Table 4: query plans with and without bitvector filters\n"
      "(same baseline join order; filters toggled at execution)");

  std::printf("%-10s %10s %18s %12s %12s\n", "workload", "CPU ratio",
              "w/ bitvectors", "improved", "regressed");
  std::printf("%s\n", std::string(68, '-').c_str());

  for (int which = 0; which < 3; ++which) {
    Workload w = bench::MakeWorkloadByIndex(which, scale);
    RunOptions options;
    options.repeats = 2;
    std::fprintf(stderr, "[bench] %s: filters ON...\n", w.name.c_str());
    const auto with =
        RunWorkload(w, OptimizerMode::kBaselinePostProcess, options);
    std::fprintf(stderr, "[bench] %s: filters OFF...\n", w.name.c_str());
    const auto without = RunWorkload(w, OptimizerMode::kNoBitvectors, options);

    int64_t with_ns = 0, without_ns = 0;
    int uses_filters = 0, improved = 0, regressed = 0;
    for (size_t i = 0; i < with.size(); ++i) {
      with_ns += with[i].metrics.total_ns;
      without_ns += without[i].metrics.total_ns;
      if (with[i].used_bitvectors) ++uses_filters;
      const double ratio =
          static_cast<double>(with[i].metrics.total_ns) /
          static_cast<double>(std::max<int64_t>(1, without[i].metrics.total_ns));
      if (ratio < 0.8) ++improved;
      if (ratio > 1.2) ++regressed;
    }
    const double n = static_cast<double>(with.size());
    std::printf("%-10s %10.2f %18.2f %12.2f %12.2f\n", w.name.c_str(),
                static_cast<double>(with_ns) /
                    static_cast<double>(std::max<int64_t>(1, without_ns)),
                uses_filters / n, improved / n, regressed / n);
  }
  std::printf(
      "\nPaper reference: CPU ratio JOB 0.20 / TPC-DS 0.53 / CUSTOMER 0.90;\n"
      "97-100%% of queries use filters; 42-88%% improved >20%%; no "
      "regressions >20%%.\n");
  return 0;
}

// Ablation A (Section 6.3): sensitivity to the cost-based filter threshold
// lambda_thresh. The paper profiles Cf/Cp, derives ~10%, and ships 5%
// ("slightly smaller than 1 - Cf/Cp works well"). This sweep shows workload
// CPU and filter counts across thresholds, including "keep everything"
// (thresh <= 0) and "prune aggressively".
#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Ablation: lambda_thresh sweep (TPC-DS, BQO plans)\n"
      "CPU normalized to lambda_thresh = off (no pruning).");

  Workload w = MakeTpcdsLite(scale);
  const double kThresholds[] = {-1.0, 0.0, 0.01, 0.05, 0.10, 0.25, 0.50,
                                0.90};

  int64_t reference_ns = -1;
  std::printf("%-10s %14s %14s %14s\n", "thresh", "CPU (norm)",
              "filters kept", "filters pruned");
  std::printf("%s\n", std::string(58, '-').c_str());
  for (double thresh : kThresholds) {
    RunOptions options;
    options.repeats = 2;
    options.optimizer.lambda_thresh = thresh;
    const auto runs = RunWorkload(w, OptimizerMode::kBqoShallow, options);
    int64_t total_ns = 0, kept = 0, pruned = 0;
    for (const QueryRun& r : runs) {
      total_ns += r.metrics.total_ns;
      pruned += r.pruned_filters;
      for (const auto& fs : r.metrics.filters) {
        if (fs.created) ++kept;
      }
    }
    if (reference_ns < 0) reference_ns = total_ns;
    std::printf("%-10s %14.3f %14lld %14lld\n",
                thresh < 0 ? "off" : StringFormat("%.2f", thresh).c_str(),
                static_cast<double>(total_ns) /
                    static_cast<double>(reference_ns),
                static_cast<long long>(kept), static_cast<long long>(pruned));
  }
  std::printf(
      "\nExpected shape: a shallow minimum around 0.05-0.10 (pruning "
      "useless filters\nsaves probe overhead) rising steeply once "
      "genuinely selective filters get pruned.\n");
  return 0;
}

// Ablation C (Section 6.4): integration options — baseline post-processing
// vs shallow integration (the paper's shipped variant) vs alternative-plan
// vs full (exhaustive bitvector-aware) integration.
#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Ablation: integration modes (Section 6.4) on TPC-DS and JOB\n"
      "CPU normalized per workload to baseline post-processing.");

  const OptimizerMode kModes[] = {
      OptimizerMode::kBaselinePostProcess, OptimizerMode::kBqoShallow,
      OptimizerMode::kAlternativePlan, OptimizerMode::kExhaustive};

  for (int which : {1, 0}) {  // TPC-DS, JOB
    Workload w = bench::MakeWorkloadByIndex(which, scale);
    std::printf("\n--- %s ---\n", w.name.c_str());
    std::printf("%-26s %12s %16s\n", "mode", "CPU (norm)", "optimize ms tot");
    std::printf("%s\n", std::string(56, '-').c_str());
    int64_t reference_ns = -1;
    for (OptimizerMode mode : kModes) {
      RunOptions options;
      options.repeats = 2;
      // Exhaustive costing is exponential; cap the per-query plan budget so
      // the ablation stays runnable (larger queries fall back to BQO).
      options.optimizer.exhaustive_limit = 600;
      std::fprintf(stderr, "[bench] %s / %s...\n", w.name.c_str(),
                   OptimizerModeName(mode));
      const auto runs = RunWorkload(w, mode, options);
      int64_t total_ns = 0, opt_ns = 0;
      for (const QueryRun& r : runs) {
        total_ns += r.metrics.total_ns;
        opt_ns += r.optimize_ns;
      }
      if (reference_ns < 0) reference_ns = total_ns;
      std::printf("%-26s %12.3f %16.1f\n", OptimizerModeName(mode),
                  static_cast<double>(total_ns) /
                      static_cast<double>(reference_ns),
                  static_cast<double>(opt_ns) / 1e6);
    }
  }
  std::printf(
      "\nExpected shape: shallow ~= alternative-plan <= baseline; "
      "exhaustive matches or\nslightly beats shallow at much higher "
      "optimization cost (it explores an\nexponential space; shallow "
      "explores n+1 candidates).\n");
  return 0;
}

// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures. Each binary prints the same rows/series the paper
// reports; absolute numbers differ (our substrate is a from-scratch engine,
// not the authors' SQL Server testbed) but the shapes should hold.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/workload/runner.h"

namespace bqo::bench {

struct Comparison {
  Workload workload;
  std::vector<QueryRun> original;  ///< kBaselinePostProcess
  std::vector<QueryRun> bqo;       ///< kBqoShallow
};

inline Workload MakeWorkloadByIndex(int which, double scale) {
  switch (which) {
    case 0:
      return MakeJobLite(scale);
    case 1:
      return MakeTpcdsLite(scale);
    default:
      return MakeCustomerLite(scale);
  }
}

/// \brief Run Original vs BQO over the three workloads (JOB, TPC-DS,
/// CUSTOMER — the paper's ordering in Figures 8-10). Scans go
/// morsel-parallel when BQO_THREADS > 1 (see exec_config.h); the default
/// keeps the single-threaded executor so figures stay comparable across
/// machines.
inline std::vector<Comparison> RunAllComparisons(double scale,
                                                 size_t limit = 0,
                                                 int repeats = 2) {
  std::vector<Comparison> out;
  const ExecConfig exec = ExecConfigFromEnv();
  if (exec.ResolvedThreads() > 1) {
    std::fprintf(stderr, "[bench] morsel-parallel scans: %d workers\n",
                 exec.ResolvedThreads());
  }
  for (int which = 0; which < 3; ++which) {
    Comparison c{MakeWorkloadByIndex(which, scale), {}, {}};
    RunOptions options;
    options.repeats = repeats;
    options.limit = limit;
    options.execution.exec = exec;
    std::fprintf(stderr, "[bench] %s: running Original...\n",
                 c.workload.name.c_str());
    c.original =
        RunWorkload(c.workload, OptimizerMode::kBaselinePostProcess, options);
    std::fprintf(stderr, "[bench] %s: running BQO...\n",
                 c.workload.name.c_str());
    c.bqo = RunWorkload(c.workload, OptimizerMode::kBqoShallow, options);
    out.push_back(std::move(c));
  }
  return out;
}

inline int64_t TotalNs(const std::vector<QueryRun>& runs) {
  int64_t total = 0;
  for (const QueryRun& r : runs) total += r.metrics.total_ns;
  return total;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bqo::bench

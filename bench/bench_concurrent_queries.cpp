// Concurrent query-serving throughput: queries/sec through the
// QueryService (src/server/query_service.h) at client counts {1,2,4,8}.
//
// Setup: the TPC-DS-lite workload served by one QueryService per client
// count. A cold pass first populates the plan cache (and records per-query
// checksums); the measured pass then runs BQO_ROUNDS full sweeps of the
// query set with N client threads claiming queries off a shared cursor —
// the serving steady state, where optimization cost is amortized by the
// cache and all engine parallelism flows through the shared WorkerPool.
// Every run cross-checks each query's result checksum against the
// clients=1 run: concurrency must be pure scheduling (the engine parity
// invariants, docs/ARCHITECTURE.md).
//
// Prints one machine-readable JSON line per client count for the
// BENCH_*.json trajectory. Lines carry hardware_concurrency and
// pool_threads, and `valid` is false when the client count exceeds the
// hardware threads (flat scaling there is a container artifact, not a
// regression — README.md "thread-starved containers").
//
// Knobs (env): BQO_SCALE (workload scale, default 1), BQO_LIMIT (queries
// used, default 24), BQO_ROUNDS (measured sweeps, default 3),
// BQO_MAX_CLIENTS (default 8), plus the engine knobs BQO_THREADS (per-query
// workers, default 1 here — serving scales across queries, not inside
// them), BQO_POOL_THREADS, BQO_MORSEL_ROWS, BQO_QUEUE_BATCHES.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/server/query_service.h"
#include "src/server/worker_pool.h"
#include "src/workload/runner.h"

namespace bqo {
namespace {

int EnvInt(const char* name, int fallback) {
  if (const char* e = std::getenv(name)) {
    const int v = std::atoi(e);
    if (v > 0) return v;
  }
  return fallback;
}

struct SweepResult {
  int64_t wall_ns = 0;
  int64_t queries = 0;
  std::vector<uint64_t> checksums;  ///< per query index; cold pass only
};

/// Run `rounds` full sweeps of the first `limit` workload queries through
/// `service` with `clients` threads. Checksums are recorded only when
/// `rounds == 1` (the cold pass): there every global index maps to a
/// distinct query slot, so concurrent clients never write the same element
/// — with more rounds, round k+1 of query qi could race round k's write.
SweepResult RunSweep(QueryService* service, const Workload& workload,
                     size_t limit, int rounds, int clients) {
  SweepResult result;
  const bool record_checksums = rounds == 1;
  result.checksums.assign(record_checksums ? limit : 0, 0);
  const size_t total = limit * static_cast<size_t>(rounds);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const size_t qi = i % limit;
        QueryResult r = service->Execute(workload.queries[qi]);
        if (record_checksums) {
          result.checksums[qi] = r.metrics.result_checksum;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.queries = static_cast<int64_t>(total);
  return result;
}

}  // namespace
}  // namespace bqo

int main() {
  using namespace bqo;
  const int rounds = EnvInt("BQO_ROUNDS", 3);
  const int max_clients = EnvInt("BQO_MAX_CLIENTS", 8);
  ExecConfig hw;
  hw.threads = 0;
  const int hw_threads = hw.ResolvedThreads();
  const int pool_threads = WorkerPool::Global().num_threads();

  Workload workload = MakeTpcdsLite(ScaleFromEnv());
  const size_t limit = std::min<size_t>(
      workload.queries.size(),
      static_cast<size_t>(EnvInt("BQO_LIMIT", 24)));

  std::fprintf(stderr,
               "[bench] concurrent serving: %s, %zu queries x %d rounds, "
               "pool %d, hw threads %d, up to %d clients\n",
               workload.name.c_str(), limit, rounds, pool_threads, hw_threads,
               max_clients);

  std::vector<uint64_t> base_checksums;
  double base_qps = 0;
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    QueryServiceOptions options;
    options.optimizer.mode = OptimizerMode::kBqoShallow;
    options.execution.exec = ExecConfigFromEnv();
    QueryService service(workload.catalog.get(), options);

    // Cold pass: populate the plan cache (unmeasured, single sweep) and
    // record per-query checksums for the cross-client verification.
    const SweepResult cold =
        RunSweep(&service, workload, limit, /*rounds=*/1, clients);
    // Measured pass: serving steady state, cache warm.
    const SweepResult r =
        RunSweep(&service, workload, limit, rounds, clients);

    if (clients == 1) {
      base_checksums = cold.checksums;
    } else if (cold.checksums != base_checksums) {
      std::fprintf(stderr,
                   "[bench] MISMATCH at clients=%d — result checksums "
                   "differ from clients=1\n",
                   clients);
      return 1;
    }

    const double wall_ms = static_cast<double>(r.wall_ns) / 1e6;
    const double qps =
        static_cast<double>(r.queries) / (static_cast<double>(r.wall_ns) / 1e9);
    if (clients == 1) base_qps = qps;
    const PlanCacheStats cache = service.cache_stats();
    std::printf(
        "{\"bench\":\"concurrent_queries\",\"workload\":\"%s\","
        "\"clients\":%d,\"pool_threads\":%d,\"workers_per_query\":%d,"
        "\"hardware_concurrency\":%d,\"queries\":%lld,\"wall_ms\":%.2f,"
        "\"qps\":%.1f,\"plan_cache_hit_rate\":%.3f,\"speedup_vs_1\":%.2f,"
        "\"valid\":%s}\n",
        workload.name.c_str(), clients, pool_threads,
        service.workers_per_query(), hw_threads,
        static_cast<long long>(r.queries), wall_ms, qps, cache.HitRate(),
        qps / base_qps, clients <= hw_threads ? "true" : "false");
  }
  return 0;
}

// Concurrent query-serving throughput: queries/sec through the
// QueryService (src/server/query_service.h) at client counts {1,2,4,8}.
//
// Setup: the TPC-DS-lite workload served by one QueryService per client
// count. A cold pass first populates the plan cache (and records per-query
// checksums); the measured pass then runs BQO_ROUNDS full sweeps of the
// query set with N client threads claiming queries off a shared cursor —
// the serving steady state, where optimization cost is amortized by the
// cache and all engine parallelism flows through the shared WorkerPool.
// Every run cross-checks each query's result checksum against the
// clients=1 run: concurrency must be pure scheduling (the engine parity
// invariants, docs/ARCHITECTURE.md).
//
// Prints one machine-readable JSON line per client count for the
// BENCH_*.json trajectory. Lines carry hardware_concurrency and
// pool_threads, and `valid` is false when the client count exceeds the
// hardware threads (flat scaling there is a container artifact, not a
// regression — README.md "thread-starved containers").
//
// After the scaling sweep, a **templated phase** replays the query set
// with per-request jittered predicate literals (the same shapes, moved
// constants) and reports the plan-shape cache's outcome counters —
// shape_hits / rebinds / reoptimizations / drift_invalidations — as a
// "templated_queries" JSON line; BQO_TEMPLATE_ROUNDS scales its sweep
// count (the CI cache-stress smoke raises it under TSan).
//
// Next a **shared-builds phase** exercises the cross-query BuildCache
// (src/server/build_cache.h): a cache-off single-client sweep fixes the
// reference checksums, then each client count replays the same sweep
// through a cache-on service. Parity is mandatory (the bench exits 1 on a
// mismatch), and the "shared_builds" JSON lines carry the cache counters —
// lookups / hits / builds / single_flight_waits / evictions / bytes — so
// the trajectory can assert that N clients still construct each build
// signature once. BQO_BUILD_CACHE / BQO_BUILD_CACHE_MB overlay the phase's
// cache configuration.
//
// An **observability-overhead phase** then measures per-query trace
// collection (src/obs/trace.h) on vs off at one client with a monitor
// thread dumping the service's metrics registry mid-run, and reports the
// qps delta as an "observability_overhead" JSON line. Under BQO_TRACE=off
// (the CI overhead-guard mode) the phase exits 1 if tracing costs more
// than BQO_OBS_MAX_OVERHEAD percent (default 5).
//
// Then an **overload phase** runs a mixed workload —
// the cheapest half of the query set as the "short" class, the most
// expensive as "long", plus a "deadline" class (long queries carrying a
// tight per-query deadline) — against a service with a bounded admission
// queue, and emits per-class p50/p99 latency plus the ServingStats
// shed/timeout/cancelled counters as one more JSON line. This is the
// resilience trajectory: the short class's tail must stay bounded while
// the deadline class times out and overload is shed, not queued forever.
//
// Knobs (env): BQO_SCALE (workload scale, default 1), BQO_LIMIT (queries
// used, default 24), BQO_ROUNDS (measured sweeps, default 3),
// BQO_MAX_CLIENTS (default 8), plus the engine knobs BQO_THREADS (per-query
// workers, default 1 here — serving scales across queries, not inside
// them), BQO_POOL_THREADS, BQO_MORSEL_ROWS, BQO_QUEUE_BATCHES. The serving
// knobs BQO_DEADLINE_MS / BQO_ADMISSION_QUEUE overlay the overload phase's
// service (ApplyServingEnvOverrides), and BQO_FAULT_SITES / BQO_FAULT_EVERY
// arm the fault injector for the **overload phase only** (the CI
// fault-smoke job runs exactly that: injected faults must degrade results,
// never hang or crash the bench). Checksum verification is skipped for the
// overload phase alone — a faulted query's results are void by contract —
// so the scaling, templated, and shared-builds phases always verify.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/simd.h"
#include "src/plan/predicate_shape.h"
#include "src/server/query_service.h"
#include "src/server/worker_pool.h"
#include "src/workload/runner.h"

namespace bqo {
namespace {

int EnvInt(const char* name, int fallback) {
  if (const char* e = std::getenv(name)) {
    const int v = std::atoi(e);
    if (v > 0) return v;
  }
  return fallback;
}

struct SweepResult {
  int64_t wall_ns = 0;
  int64_t queries = 0;
  std::vector<uint64_t> checksums;  ///< per query index; cold pass only
};

/// Run `rounds` full sweeps of the first `limit` workload queries through
/// `service` with `clients` threads. Checksums are recorded only when
/// `rounds == 1` (the cold pass): there every global index maps to a
/// distinct query slot, so concurrent clients never write the same element
/// — with more rounds, round k+1 of query qi could race round k's write.
SweepResult RunSweep(QueryService* service, const Workload& workload,
                     size_t limit, int rounds, int clients) {
  SweepResult result;
  const bool record_checksums = rounds == 1;
  result.checksums.assign(record_checksums ? limit : 0, 0);
  const size_t total = limit * static_cast<size_t>(rounds);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const size_t qi = i % limit;
        QueryResult r = service->Execute(workload.queries[qi]);
        if (record_checksums) {
          result.checksums[qi] = r.metrics.result_checksum;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.queries = static_cast<int64_t>(total);
  return result;
}

// ---- Templated-literal phase: the shape cache under varying constants ----

/// Scale every int64 predicate constant of `spec` by a few percent —
/// the decision-support template pattern the shape cache exists for. The
/// factor cycles a small fixed set keyed by `variant`, so each (query,
/// round) pair is deterministic while concurrent clients keep re-binding
/// different literals into the same cached shapes.
QuerySpec JitterSpecConstants(const QuerySpec& spec, int variant) {
  static constexpr double kFactors[] = {1.0, 1.05, 0.95, 1.08, 0.92};
  const double factor = kFactors[static_cast<size_t>(variant) % 5];
  if (factor == 1.0) return spec;
  QuerySpec out = spec;
  for (auto& rel : out.relations) {
    if (rel.predicate == nullptr) continue;
    std::vector<Value> constants = CollectPredicateConstants(rel.predicate);
    bool moved = false;
    for (Value& v : constants) {
      if (v.type() != DataType::kInt64) continue;
      v = Value(static_cast<int64_t>(
          static_cast<double>(v.AsInt64()) * factor));
      moved = true;
    }
    if (moved) {
      rel.predicate = RebindPredicateConstants(rel.predicate, constants);
    }
  }
  return out;
}

/// Serving steady state under templated traffic: one service, every query
/// arriving repeatedly with jittered literals. Emits the shape-cache
/// outcome counters — under an in-band jitter the sweep should be almost
/// all shape hits (exact + rebinds) with few re-optimizations; this is
/// also the CI cache-stress smoke's TSan workout (concurrent re-binds,
/// entry replacement, and EWMA feedback on shared entries).
void RunTemplatedPhase(const Workload& workload, size_t limit, int rounds,
                       int clients, int hw_threads, int pool_threads) {
  QueryServiceOptions options;
  options.optimizer.mode = OptimizerMode::kBqoShallow;
  options.execution.exec = ExecConfigFromEnv();
  options = ApplyServingEnvOverrides(options);
  QueryService service(workload.catalog.get(), options);

  const size_t total = limit * static_cast<size_t>(rounds);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const size_t qi = i % limit;
        const int variant = static_cast<int>(i / limit + qi);
        (void)service.Execute(
            JitterSpecConstants(workload.queries[qi], variant));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const int64_t wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  const PlanCacheStats cache = service.cache_stats();
  std::printf(
      "{\"bench\":\"templated_queries\",\"workload\":\"%s\","
      "\"clients\":%d,\"pool_threads\":%d,\"hardware_concurrency\":%d,"
      "\"queries\":%zu,\"wall_ms\":%.2f,\"qps\":%.1f,"
      "\"plan_cache_hit_rate\":%.3f,\"shape_hit_rate\":%.3f,"
      "\"shape_hits\":%lld,\"rebinds\":%lld,\"reoptimizations\":%lld,"
      "\"drift_invalidations\":%lld,\"simd_tier\":\"%s\","
      "\"valid\":%s}\n",
      workload.name.c_str(), clients, pool_threads, hw_threads, total,
      static_cast<double>(wall_ns) / 1e6,
      static_cast<double>(total) / (static_cast<double>(wall_ns) / 1e9),
      cache.HitRate(), cache.ShapeHitRate(),
      static_cast<long long>(cache.shape_hits),
      static_cast<long long>(cache.rebinds),
      static_cast<long long>(cache.reoptimizations),
      static_cast<long long>(cache.drift_invalidations),
      SimdTierName(ActiveSimdTier()), clients <= hw_threads ? "true" : "false");
}

// ---- Shared-builds phase: the cross-query BuildCache under load ----

/// Cross-query build sharing must be pure memoization: a cache-off
/// single-client sweep fixes the reference checksums, then each client
/// count replays the identical sweep through a cache-on service and must
/// reproduce them exactly (return 1 on mismatch — this is a correctness
/// gate, not a soft warning). The JSON lines carry the BuildCache
/// counters; the pin for the trajectory is that `builds` (cache misses)
/// stays at one pass's worth of signatures regardless of client count —
/// every additional client shares, it never re-constructs.
int RunSharedBuildsPhase(const Workload& workload, size_t limit,
                         int max_clients, int hw_threads, int pool_threads) {
  QueryServiceOptions off_options;
  off_options.optimizer.mode = OptimizerMode::kBqoShallow;
  off_options.execution.exec = ExecConfigFromEnv();
  off_options.use_build_cache = false;
  QueryService reference(workload.catalog.get(), off_options);
  const SweepResult ref =
      RunSweep(&reference, workload, limit, /*rounds=*/1, /*clients=*/1);

  for (int clients = 1; clients <= max_clients; clients *= 2) {
    QueryServiceOptions options;
    options.optimizer.mode = OptimizerMode::kBqoShallow;
    options.execution.exec = ExecConfigFromEnv();
    // Honor only the build-cache env knobs here: this phase verifies
    // checksums, so the overload knobs (deadlines, bounded admission) that
    // legitimately void results must not leak into it.
    const QueryServiceOptions overlaid = ApplyServingEnvOverrides(options);
    options.use_build_cache = overlaid.use_build_cache;
    options.build_cache_mb = overlaid.build_cache_mb;
    QueryService service(workload.catalog.get(), options);

    const SweepResult r =
        RunSweep(&service, workload, limit, /*rounds=*/1, clients);
    if (r.checksums != ref.checksums) {
      std::fprintf(stderr,
                   "[bench] MISMATCH in shared_builds at clients=%d — "
                   "cache-on checksums differ from the cache-off reference\n",
                   clients);
      return 1;
    }

    const BuildCacheStats bc = service.build_cache_stats();
    const double wall_ms = static_cast<double>(r.wall_ns) / 1e6;
    std::printf(
        "{\"bench\":\"shared_builds\",\"workload\":\"%s\","
        "\"clients\":%d,\"pool_threads\":%d,\"hardware_concurrency\":%d,"
        "\"queries\":%lld,\"wall_ms\":%.2f,\"qps\":%.1f,"
        "\"cache_enabled\":%s,\"lookups\":%lld,\"hits\":%lld,"
        "\"builds\":%lld,\"single_flight_waits\":%lld,\"evictions\":%lld,"
        "\"bytes\":%lld,\"hit_rate\":%.3f,\"checksum_parity\":true,"
        "\"simd_tier\":\"%s\",\"valid\":%s}\n",
        workload.name.c_str(), clients, pool_threads, hw_threads,
        static_cast<long long>(r.queries), wall_ms,
        static_cast<double>(r.queries) /
            (static_cast<double>(r.wall_ns) / 1e9),
        options.use_build_cache ? "true" : "false",
        static_cast<long long>(bc.lookups), static_cast<long long>(bc.hits),
        static_cast<long long>(bc.misses),
        static_cast<long long>(bc.single_flight_waits),
        static_cast<long long>(bc.evictions), static_cast<long long>(bc.bytes),
        bc.HitRate(), SimdTierName(ActiveSimdTier()),
        clients <= hw_threads ? "true" : "false");
  }
  return 0;
}

// ---- Observability-overhead phase: tracing must be near-free ----

/// Qps with per-query trace collection on vs off — same service
/// configuration otherwise, single client, warm plan cache (the serving
/// steady state, where tracing's fixed per-query cost is most visible and
/// not drowned by optimizer time). While the traces-on sweep runs, a
/// monitor thread repeatedly DumpMetrics()s the live service: every export
/// must be a well-formed point-in-time read mid-flight — the registry's
/// snapshot contract, exercised under real traffic.
///
/// The JSON line always reports the on/off qps delta. The phase *fails*
/// (exit 1) only when BQO_TRACE=off is set — the dedicated overhead-guard
/// mode CI runs on a quiet machine — and the measured tracing overhead
/// exceeds BQO_OBS_MAX_OVERHEAD percent (default 5): span collection is a
/// handful of clock reads per query and must stay that way. Default runs
/// report without gating (shared machines make a hard 5% gate flaky).
int RunObservabilityPhase(const Workload& workload, size_t limit, int rounds,
                          int hw_threads, int pool_threads) {
  double qps[2] = {0.0, 0.0};  // [0] = traces off, [1] = traces on
  int64_t dumps = 0;
  for (int on = 0; on <= 1; ++on) {
    QueryServiceOptions options;
    options.optimizer.mode = OptimizerMode::kBqoShallow;
    options.execution.exec = ExecConfigFromEnv();
    options.collect_traces = on == 1;
    QueryService service(workload.catalog.get(), options);
    // Warm pass: populate the plan cache so the measured sweep is pure
    // serving steady state.
    (void)RunSweep(&service, workload, limit, /*rounds=*/1, /*clients=*/1);

    std::atomic<bool> done{false};
    std::thread monitor;
    if (on == 1) {
      monitor = std::thread([&service, &done, &dumps] {
        while (!done.load(std::memory_order_acquire)) {
          const std::string dump = service.DumpMetrics();
          if (dump.find("bqo_serving_served_total") == std::string::npos) {
            std::fprintf(stderr,
                         "[bench] malformed mid-run metrics dump\n");
            std::abort();
          }
          ++dumps;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    const SweepResult r = RunSweep(&service, workload, limit, rounds,
                                   /*clients=*/1);
    done.store(true, std::memory_order_release);
    if (monitor.joinable()) monitor.join();
    qps[on] = static_cast<double>(r.queries) /
              (static_cast<double>(r.wall_ns) / 1e9);
  }

  const double overhead_pct =
      qps[0] > 0 ? 100.0 * (1.0 - qps[1] / qps[0]) : 0.0;
  const char* trace_env = std::getenv("BQO_TRACE");
  const bool gated =
      trace_env != nullptr &&
      (std::string(trace_env) == "off" || std::string(trace_env) == "0");
  const int max_overhead_pct = EnvInt("BQO_OBS_MAX_OVERHEAD", 5);

  std::printf(
      "{\"bench\":\"observability_overhead\",\"workload\":\"%s\","
      "\"clients\":1,\"pool_threads\":%d,\"hardware_concurrency\":%d,"
      "\"queries_per_config\":%lld,\"qps_traces_off\":%.1f,"
      "\"qps_traces_on\":%.1f,\"overhead_pct\":%.2f,"
      "\"max_overhead_pct\":%d,\"gated\":%s,\"metrics_dumps\":%lld,"
      "\"simd_tier\":\"%s\",\"valid\":true}\n",
      workload.name.c_str(), pool_threads, hw_threads,
      static_cast<long long>(limit) * rounds, qps[0], qps[1], overhead_pct,
      max_overhead_pct, gated ? "true" : "false",
      static_cast<long long>(dumps), SimdTierName(ActiveSimdTier()));

  if (gated && overhead_pct > static_cast<double>(max_overhead_pct)) {
    std::fprintf(stderr,
                 "[bench] FAIL: tracing overhead %.2f%% exceeds %d%% "
                 "(BQO_OBS_MAX_OVERHEAD) in BQO_TRACE=off guard mode\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}

// ---- Overload phase: mixed request classes under a bounded service ----

struct RequestClass {
  const char* name;
  std::vector<size_t> queries;  ///< workload indices this class draws from
  int64_t deadline_ms = 0;      ///< 0 = no per-request deadline
};

double PercentileMs(std::vector<int64_t> ns, double p) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const size_t idx = std::min(
      ns.size() - 1,
      static_cast<size_t>(p * static_cast<double>(ns.size() - 1) + 0.5));
  return static_cast<double>(ns[idx]) / 1e6;
}

/// One flattened request: a query index, its class, and its deadline.
struct Request {
  size_t qi = 0;
  size_t cls = 0;
  int64_t deadline_ms = 0;
};

void RunOverloadPhase(const Workload& workload, size_t limit, int rounds,
                      int clients, int hw_threads) {
  // Classify by single-client cost: run each query once and split at the
  // median. The service for this calibration pass is unbounded.
  QueryServiceOptions calibrate_options;
  calibrate_options.optimizer.mode = OptimizerMode::kBqoShallow;
  calibrate_options.execution.exec = ExecConfigFromEnv();
  QueryService calibrate(workload.catalog.get(), calibrate_options);
  std::vector<std::pair<int64_t, size_t>> cost;  // (ns, query index)
  cost.reserve(limit);
  for (size_t qi = 0; qi < limit; ++qi) {
    const auto start = std::chrono::steady_clock::now();
    (void)calibrate.Execute(workload.queries[qi]);
    cost.emplace_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count(),
                      qi);
  }
  std::sort(cost.begin(), cost.end());
  const size_t half = std::max<size_t>(1, limit / 2);
  // The deadline is tuned to the split itself: tight enough that long
  // queries cannot finish inside it (their median single-client cost), so
  // the deadline class actually exercises expiry. BQO_DEADLINE_MS
  // overrides via ApplyServingEnvOverrides below as the service default.
  const int64_t deadline_ms = std::max<int64_t>(
      1, cost[limit / 2].first / 1'000'000 / 4);

  std::vector<RequestClass> classes(3);
  classes[0].name = "short";
  classes[1].name = "long";
  classes[2].name = "deadline";
  classes[2].deadline_ms = deadline_ms;
  for (size_t i = 0; i < limit; ++i) {
    (i < half ? classes[0] : classes[1]).queries.push_back(cost[i].second);
  }
  classes[2].queries = classes[1].queries;  // deadline class = long + bound

  // The serving configuration under test: bounded admission queue (shed
  // beyond it), admission waits capped, env knobs overlaid.
  QueryServiceOptions options;
  options.optimizer.mode = OptimizerMode::kBqoShallow;
  options.execution.exec = ExecConfigFromEnv();
  options.max_concurrent_queries = std::max(1, clients / 2);
  options.admission_queue_limit = clients;
  options.admission_timeout_ms = 250;
  options = ApplyServingEnvOverrides(options);
  QueryService service(workload.catalog.get(), options);

  // Flatten rounds x (every class x its queries) into one request list;
  // each slot's latency is written by exactly one client.
  std::vector<Request> requests;
  for (int r = 0; r < rounds; ++r) {
    for (size_t c = 0; c < classes.size(); ++c) {
      for (size_t qi : classes[c].queries) {
        requests.push_back(Request{qi, c, classes[c].deadline_ms});
      }
    }
  }
  std::vector<int64_t> latency_ns(requests.size(), 0);
  std::vector<int> status_code(requests.size(), 0);

  std::atomic<size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        const Request& req = requests[i];
        QueryContext ctx;
        if (req.deadline_ms > 0) ctx.SetDeadlineAfterMs(req.deadline_ms);
        const auto t0 = std::chrono::steady_clock::now();
        const QueryResult r = service.Execute(workload.queries[req.qi], &ctx);
        latency_ns[i] = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        status_code[i] = static_cast<int>(r.status.code());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const int64_t wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  // Per-class percentiles over ALL requests of the class (a shed request's
  // fast rejection is part of the latency story, not an outlier to drop).
  std::vector<std::vector<int64_t>> per_class(classes.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    per_class[requests[i].cls].push_back(latency_ns[i]);
  }

  const ServingStats stats = service.serving_stats();
  std::printf(
      "{\"bench\":\"concurrent_queries_overload\",\"workload\":\"%s\","
      "\"clients\":%d,\"max_concurrent\":%d,\"admission_queue\":%d,"
      "\"admission_timeout_ms\":%lld,\"deadline_ms\":%lld,"
      "\"hardware_concurrency\":%d,\"requests\":%zu,\"wall_ms\":%.2f,"
      "\"short_p50_ms\":%.2f,\"short_p99_ms\":%.2f,"
      "\"long_p50_ms\":%.2f,\"long_p99_ms\":%.2f,"
      "\"deadline_p50_ms\":%.2f,\"deadline_p99_ms\":%.2f,"
      "\"served\":%lld,\"shed\":%lld,\"timed_out\":%lld,"
      "\"cancelled\":%lld,\"failed\":%lld,\"faults_injected\":%lld,"
      "\"simd_tier\":\"%s\",\"valid\":%s}\n",
      workload.name.c_str(), clients, service.max_concurrent(),
      options.admission_queue_limit,
      static_cast<long long>(options.admission_timeout_ms),
      static_cast<long long>(options.default_deadline_ms > 0
                                 ? options.default_deadline_ms
                                 : deadline_ms),
      hw_threads, requests.size(), static_cast<double>(wall_ns) / 1e6,
      PercentileMs(per_class[0], 0.50), PercentileMs(per_class[0], 0.99),
      PercentileMs(per_class[1], 0.50), PercentileMs(per_class[1], 0.99),
      PercentileMs(per_class[2], 0.50), PercentileMs(per_class[2], 0.99),
      static_cast<long long>(stats.served), static_cast<long long>(stats.shed),
      static_cast<long long>(stats.timed_out),
      static_cast<long long>(stats.cancelled),
      static_cast<long long>(stats.failed),
      static_cast<long long>(FaultInjector::Global().injected()),
      SimdTierName(ActiveSimdTier()),
      clients <= hw_threads ? "true" : "false");

  // Accounting invariant: every request landed in exactly one bucket
  // (the calibration pass ran against a different service instance).
  if (stats.Total() != static_cast<int64_t>(requests.size())) {
    std::fprintf(stderr,
                 "[bench] WARNING: serving stats total %lld != requests %zu\n",
                 static_cast<long long>(stats.Total()), requests.size());
  }
}

}  // namespace
}  // namespace bqo

int main() {
  using namespace bqo;
  const int rounds = EnvInt("BQO_ROUNDS", 3);
  const int max_clients = EnvInt("BQO_MAX_CLIENTS", 8);
  ExecConfig hw;
  hw.threads = 0;
  const int hw_threads = hw.ResolvedThreads();
  const int pool_threads = WorkerPool::Global().num_threads();

  Workload workload = MakeTpcdsLite(ScaleFromEnv());
  const size_t limit = std::min<size_t>(
      workload.queries.size(),
      static_cast<size_t>(EnvInt("BQO_LIMIT", 24)));

  std::fprintf(stderr,
               "[bench] concurrent serving: %s, %zu queries x %d rounds, "
               "pool %d, hw threads %d, up to %d clients\n",
               workload.name.c_str(), limit, rounds, pool_threads, hw_threads,
               max_clients);

  std::vector<uint64_t> base_checksums;
  double base_qps = 0;
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    QueryServiceOptions options;
    options.optimizer.mode = OptimizerMode::kBqoShallow;
    options.execution.exec = ExecConfigFromEnv();
    QueryService service(workload.catalog.get(), options);

    // Cold pass: populate the plan cache (unmeasured, single sweep) and
    // record per-query checksums for the cross-client verification.
    const SweepResult cold =
        RunSweep(&service, workload, limit, /*rounds=*/1, clients);
    // Measured pass: serving steady state, cache warm.
    const SweepResult r =
        RunSweep(&service, workload, limit, rounds, clients);

    if (clients == 1) {
      base_checksums = cold.checksums;
    } else if (cold.checksums != base_checksums) {
      std::fprintf(stderr,
                   "[bench] MISMATCH at clients=%d — result checksums "
                   "differ from clients=1\n",
                   clients);
      return 1;
    }

    const double wall_ms = static_cast<double>(r.wall_ns) / 1e6;
    const double qps =
        static_cast<double>(r.queries) / (static_cast<double>(r.wall_ns) / 1e9);
    if (clients == 1) base_qps = qps;
    const PlanCacheStats cache = service.cache_stats();
    std::printf(
        "{\"bench\":\"concurrent_queries\",\"workload\":\"%s\","
        "\"clients\":%d,\"pool_threads\":%d,\"workers_per_query\":%d,"
        "\"hardware_concurrency\":%d,\"queries\":%lld,\"wall_ms\":%.2f,"
        "\"qps\":%.1f,\"plan_cache_hit_rate\":%.3f,\"shape_hit_rate\":%.3f,"
        "\"shape_hits\":%lld,\"rebinds\":%lld,\"reoptimizations\":%lld,"
        "\"drift_invalidations\":%lld,\"speedup_vs_1\":%.2f,"
        "\"simd_tier\":\"%s\",\"valid\":%s}\n",
        workload.name.c_str(), clients, pool_threads,
        service.workers_per_query(), hw_threads,
        static_cast<long long>(r.queries), wall_ms, qps, cache.HitRate(),
        cache.ShapeHitRate(), static_cast<long long>(cache.shape_hits),
        static_cast<long long>(cache.rebinds),
        static_cast<long long>(cache.reoptimizations),
        static_cast<long long>(cache.drift_invalidations),
        qps / base_qps, SimdTierName(ActiveSimdTier()),
        clients <= hw_threads ? "true" : "false");
  }

  // Templated-literal phase: same shapes, jittered constants — the
  // plan-shape cache's target traffic. BQO_TEMPLATE_ROUNDS scales the
  // sweep count for the CI cache-stress smoke.
  const int template_clients = std::max(2, std::min(max_clients, 4));
  RunTemplatedPhase(workload, limit, EnvInt("BQO_TEMPLATE_ROUNDS", rounds),
                    template_clients, hw_threads, pool_threads);

  // Shared-builds phase: cache-off reference checksums vs cache-on replays
  // at every client count — a correctness gate, so it runs before any
  // fault is armed.
  if (RunSharedBuildsPhase(workload, limit, max_clients, hw_threads,
                           pool_threads) != 0) {
    return 1;
  }

  // Observability-overhead phase: traces on vs off at one client, with
  // mid-run metrics dumps from a monitor thread. Gated (exit 1 past
  // BQO_OBS_MAX_OVERHEAD percent) only under BQO_TRACE=off — the CI
  // overhead-guard mode. Runs before any fault is armed: a faulted sweep's
  // qps is meaningless.
  if (RunObservabilityPhase(workload, limit, rounds, hw_threads,
                            pool_threads) != 0) {
    return 1;
  }

  // Fault-injection smoke mode (CI): BQO_FAULT_SITES arms the injector for
  // the overload phase only — every verifying phase has already run, so an
  // armed fault can degrade results without masking a real checksum
  // regression. Surviving without a hang or crash is the test.
  FaultInjector::Global().ConfigureFromEnv();

  // Overload/resilience phase: mixed classes against a bounded service.
  const int overload_clients = std::max(2, std::min(max_clients, 4));
  RunOverloadPhase(workload, limit, rounds, overload_clients, hw_threads);
  return 0;
}

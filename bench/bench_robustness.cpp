// Robustness experiment (paper Section 9 / LIP [38], and the practical
// consequence of Lemma 4): with bitvector filters, plans across different
// join orders of the same star/snowflake query have nearly identical cost —
// the optimizer's job gets dramatically easier and mistakes get cheaper.
//
// For random star queries we execute EVERY right deep tree without cross
// products, with and without filters, and report the spread (max/min) of
// true Cout and of measured CPU.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "src/exec/exact_cost.h"
#include "src/plan/enumerate.h"
#include "src/plan/pushdown.h"
#include "tests/test_util.h"

int main() {
  using namespace bqo;
  using bqo::testing::MakeStarDb;
  bench::PrintHeader(
      "Robustness: cost spread across ALL join orders of a star query\n"
      "(with filters, different orders collapse to near-equal cost — "
      "Lemma 4 / LIP)");

  std::printf("%-8s %-10s | %14s %14s | %14s %14s\n", "query", "orders",
              "Cout max/min", "(no filters)", "Cout max/min", "(filters)");
  std::printf("%s\n", std::string(86, '-').c_str());

  for (uint64_t seed : {1, 2, 3, 4}) {
    auto db = MakeStarDb(4, 20000, 150,
                         {0.1 + 0.1 * static_cast<double>(seed), 0.5, 0.3,
                          0.8},
                         seed, 0.5);
    auto graph_result = db->Graph();
    BQO_CHECK(graph_result.ok());
    const JoinGraph& graph = graph_result.value();
    ExactCoutModel exact;

    double min_bare = -1, max_bare = 0, min_filt = -1, max_filt = 0;
    size_t count = 0;
    for (const auto& order : EnumerateRightDeepOrders(graph)) {
      Plan bare = BuildRightDeepPlan(graph, order);
      ClearBitvectors(&bare);
      const double cb = exact.Cout(bare);
      Plan filt = BuildRightDeepPlan(graph, order);
      PushDownBitvectors(&filt);
      const double cf = exact.Cout(filt);
      if (min_bare < 0 || cb < min_bare) min_bare = cb;
      max_bare = std::max(max_bare, cb);
      if (min_filt < 0 || cf < min_filt) min_filt = cf;
      max_filt = std::max(max_filt, cf);
      ++count;
    }
    std::printf("star-%llu  %-10zu | %14.2f %14s | %14.2f %14s\n",
                static_cast<unsigned long long>(seed), count,
                max_bare / min_bare, "", max_filt / min_filt, "");
  }
  std::printf(
      "\nExpected shape: without filters the worst order costs several "
      "times the best;\nwith (no-false-positive) filters the spread "
      "collapses toward 1-2x — bitvector\nfilters make plans robust to "
      "join-order mistakes.\n");
  return 0;
}

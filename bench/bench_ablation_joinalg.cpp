// Ablation E: join algorithm — hash join vs sort-merge join, each with and
// without bitvector filters (the paper's Section 2 remark: the filter
// machinery adapts to merge joins; elimination happens before the sort, so
// merge joins benefit as well).
#include "bench_util.h"

int main() {
  using namespace bqo;
  const double scale = ScaleFromEnv();
  bench::PrintHeader(
      "Ablation: join algorithm x bitvector filters (TPC-DS, BQO plans)\n"
      "CPU normalized to hash join with filters.");

  Workload w = MakeTpcdsLite(scale * 0.5);

  struct Config {
    const char* label;
    bool merge;
    bool filters;
  };
  const Config configs[] = {
      {"hash + filters", false, true},
      {"hash, no filters", false, false},
      {"merge + filters", true, true},
      {"merge, no filters", true, false},
  };

  std::printf("%-20s %12s %18s\n", "configuration", "CPU (norm)",
              "join tuples (M)");
  std::printf("%s\n", std::string(54, '-').c_str());
  int64_t reference_ns = -1;
  for (const Config& cfg : configs) {
    RunOptions options;
    options.repeats = 2;
    options.execution.use_sort_merge_join = cfg.merge;
    std::fprintf(stderr, "[bench] %s...\n", cfg.label);
    const auto runs = RunWorkload(
        w,
        cfg.filters ? OptimizerMode::kBqoShallow
                    : OptimizerMode::kNoBitvectors,
        options);
    int64_t total_ns = 0, join_tuples = 0;
    for (const QueryRun& r : runs) {
      total_ns += r.metrics.total_ns;
      join_tuples += r.metrics.join_tuples;
    }
    if (reference_ns < 0) reference_ns = total_ns;
    std::printf("%-20s %12.3f %18.2f\n", cfg.label,
                static_cast<double>(total_ns) /
                    static_cast<double>(reference_ns),
                static_cast<double>(join_tuples) / 1e6);
  }
  std::printf(
      "\nExpected shape: filters help BOTH algorithms; merge joins pay an\n"
      "extra sort but the filter removes tuples before sorting, so the\n"
      "relative benefit of filtering is at least as large.\n");
  return 0;
}

#include "src/obs/metrics_registry.h"

#include <algorithm>
#include <utility>

#include "src/common/macros.h"
#include "src/common/string_util.h"

namespace bqo {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    BQO_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                  "histogram boundaries must be ascending");
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; +Inf bucket otherwise.
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::CumulativeBuckets() const {
  std::vector<int64_t> out(buckets_.size(), 0);
  int64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double b = 0.25; b <= 16384.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    BQO_CHECK_MSG(it->second.kind == MetricSnapshot::Kind::kCounter,
                  ("metric re-registered with a different kind: " + name)
                      .c_str());
    return it->second.counter.get();
  }
  Entry e;
  e.kind = MetricSnapshot::Kind::kCounter;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    BQO_CHECK_MSG(it->second.kind == MetricSnapshot::Kind::kGauge,
                  ("metric re-registered with a different kind: " + name)
                      .c_str());
    return it->second.gauge.get();
  }
  Entry e;
  e.kind = MetricSnapshot::Kind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    BQO_CHECK_MSG(it->second.kind == MetricSnapshot::Kind::kHistogram,
                  ("metric re-registered with a different kind: " + name)
                      .c_str());
    return it->second.histogram.get();
  }
  Entry e;
  e.kind = MetricSnapshot::Kind::kHistogram;
  e.histogram = std::make_unique<Histogram>(
      bounds.empty() ? Histogram::DefaultLatencyBoundsMs()
                     : std::move(bounds));
  Histogram* out = e.histogram.get();
  entries_.emplace(name, std::move(e));
  return out;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSnapshot s;
    s.kind = e.kind;
    s.name = name;
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.value = e.counter->Value();
        break;
      case MetricSnapshot::Kind::kGauge:
        s.value = e.gauge->Value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.bounds = e.histogram->bounds();
        s.buckets = e.histogram->CumulativeBuckets();
        s.count = e.histogram->Count();
        s.sum = e.histogram->Sum();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::ToJsonLines(
    const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  for (const MetricSnapshot& s : snapshot) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += StringFormat("{\"metric\":\"%s\",\"type\":\"counter\","
                            "\"value\":%lld}\n",
                            s.name.c_str(),
                            static_cast<long long>(s.value));
        break;
      case MetricSnapshot::Kind::kGauge:
        out += StringFormat("{\"metric\":\"%s\",\"type\":\"gauge\","
                            "\"value\":%lld}\n",
                            s.name.c_str(),
                            static_cast<long long>(s.value));
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += StringFormat("{\"metric\":\"%s\",\"type\":\"histogram\","
                            "\"count\":%lld,\"sum\":%.6f,\"buckets\":[",
                            s.name.c_str(), static_cast<long long>(s.count),
                            s.sum);
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          const std::string le =
              i < s.bounds.size() ? StringFormat("%g", s.bounds[i]) : "inf";
          out += StringFormat("%s{\"le\":\"%s\",\"count\":%lld}",
                              i == 0 ? "" : ",", le.c_str(),
                              static_cast<long long>(s.buckets[i]));
        }
        out += "]}\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToPrometheusText(
    const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  for (const MetricSnapshot& s : snapshot) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += StringFormat("# TYPE %s counter\n%s %lld\n", s.name.c_str(),
                            s.name.c_str(), static_cast<long long>(s.value));
        break;
      case MetricSnapshot::Kind::kGauge:
        out += StringFormat("# TYPE %s gauge\n%s %lld\n", s.name.c_str(),
                            s.name.c_str(), static_cast<long long>(s.value));
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += StringFormat("# TYPE %s histogram\n", s.name.c_str());
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          const std::string le =
              i < s.bounds.size() ? StringFormat("%g", s.bounds[i]) : "+Inf";
          out += StringFormat("%s_bucket{le=\"%s\"} %lld\n", s.name.c_str(),
                              le.c_str(),
                              static_cast<long long>(s.buckets[i]));
        }
        out += StringFormat("%s_sum %.6f\n%s_count %lld\n", s.name.c_str(),
                            s.sum, s.name.c_str(),
                            static_cast<long long>(s.count));
        break;
      }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

}  // namespace bqo

// EXPLAIN ANALYZE: post-execution plan annotation — the paper's
// estimate-vs-actual questions answered per operator and per filter.
//
// BuildExplainReport joins three things the engine already produces:
//  * the annotated Plan (join tree, filter placement, optimizer's
//    estimated lambda and chosen filter kind),
//  * a CoutBreakdown from the estimated cost model (per-node estimated
//    output cardinalities — the numbers the optimizer planned with),
//  * the executed QueryMetrics (merged OperatorStats/FilterStats — exact,
//    pool-size-invariant counters).
//
// The report is machine-readable (tests pin estimate-vs-actual columns
// across pool sizes and BuildCache hit/miss); RenderExplainAnalyze turns
// it into the human text, including the query's trace span tree when one
// was collected.
//
// == Measured FPR ==
//
// A bitvector filter cannot observe its own false positives (a probe that
// passes looks identical either way). The join that *created* the filter
// can: a probe row reaching the creating join without matching any build
// row is exactly a tuple the filter admitted but should have rejected.
// With leaked = probe_rows_in - probe_rows_matched at the source join and
// rejected = probed - passed at the filter,
//
//   measured_fpr = leaked / (leaked + rejected)
//
// — the false-positive fraction of the true negatives the filter saw.
// Exact when the filter's application site feeds the source join directly
// (the common Algorithm 1 placement); a lower bound when intermediate
// joins eliminated some leaked rows first. Exact filters measure 0 by
// construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/metrics.h"
#include "src/filter/bitvector_filter.h"
#include "src/obs/trace.h"
#include "src/plan/cout.h"
#include "src/plan/plan.h"

namespace bqo {

/// \brief One plan node's estimate-vs-actual row (preorder; `depth`
/// reproduces the tree shape in the rendering).
struct OperatorExplainRow {
  int node_id = -1;
  int depth = 0;
  bool is_leaf = false;
  std::string label;          ///< executed operator label (scan X / HJ#n)
  double est_rows = 0;        ///< optimizer's output cardinality
  double est_prefilter = 0;   ///< before filters applied at this node
  int64_t actual_rows = 0;
  int64_t actual_prefilter = 0;
  int64_t ns_inclusive = 0;
  int64_t ns_self = 0;
  int64_t worker_cpu_ns = 0;
  int parallel_workers = 0;
  double time_share = 0;  ///< ns_self / query total_ns (clamped to >= 0)
};

/// \brief One plan filter's estimate-vs-actual row.
struct FilterExplainRow {
  int filter_id = -1;
  int source_join = -1;  ///< plan-node id of the creating join
  int applied_at = -1;   ///< plan-node id whose output it filters
  bool created = false;  ///< false: pruned by cost, or bitvectors off
  bool pruned = false;
  std::string kind;      ///< executed filter kind name, or "pruned"
  double est_lambda = 0;       ///< optimizer estimate (plan annotation)
  double observed_lambda = 0;  ///< FilterStats::ObservedLambda
  double modeled_fpr = 0;      ///< EstimatedFilterFpr at the space budget
  double measured_fpr = 0;     ///< see header comment; valid iff
  bool has_measured_fpr = false;  ///< the source join saw probe traffic
  int64_t inserted = 0;
  int64_t probed = 0;
  int64_t passed = 0;
  int64_t size_bytes = 0;
};

/// \brief The full estimate-vs-actual report for one executed query.
struct ExplainReport {
  std::string query_name;
  std::string status = "OK";
  int64_t total_ns = 0;
  int64_t cpu_ns = 0;
  int64_t result_rows = 0;
  double estimated_cost = 0;  ///< estimates.total (the planned Cout)
  std::vector<OperatorExplainRow> operators;  ///< plan preorder
  std::vector<FilterExplainRow> filters;      ///< by filter id
  /// Span snapshot of the query's trace (empty when tracing was off) —
  /// per-pipeline and per-phase wall/CPU time.
  std::vector<TraceSpan> spans;
};

/// \brief Join plan annotations, cost-model estimates, and executed
/// metrics into one report. `estimates` must come from a CoutModel walk of
/// the same (Renumber()ed) plan; `filter_config` is the execution's filter
/// configuration (kind + space budget — the modeled-FPR inputs).
ExplainReport BuildExplainReport(const Plan& plan,
                                 const QueryMetrics& metrics,
                                 const CoutBreakdown& estimates,
                                 const FilterConfig& filter_config,
                                 const QueryTrace* trace = nullptr);

/// \brief Human-readable EXPLAIN ANALYZE text.
std::string RenderExplainAnalyze(const ExplainReport& report);

}  // namespace bqo

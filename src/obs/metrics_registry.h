// MetricsRegistry: named counters, gauges, and fixed-boundary histograms
// behind one snapshot API — the engine's operational counters, exportable
// as JSON lines and Prometheus text exposition.
//
// == Hot path ==
//
// Callers register a metric once (GetCounter/GetGauge/GetHistogram take
// the registry mutex) and cache the returned pointer — pointers are stable
// for the registry's lifetime. The increment/observe path is lock-free:
// one relaxed atomic RMW per counter bump, a handful per histogram
// observation. That is what lets QueryService::RecordOutcome drop its
// mutex: per-outcome tallies become relaxed atomic adds, and a mid-flight
// snapshot reads each value atomically instead of loading a struct's
// fields non-atomically while writers race.
//
// == Naming scheme ==
//
// `bqo_<component>_<what>[_total]`: counters end in _total
// (bqo_serving_served_total), gauges name a current level
// (bqo_plan_cache_entries), histograms name the measured quantity with its
// unit (bqo_query_latency_ms). Dumps are name-sorted, so exports are
// deterministic.
//
// == Snapshot semantics ==
//
// Snapshot() loads every metric atomically under the registration mutex.
// Each value is a real point value (never torn); counters incremented by
// concurrent in-flight requests may be mid-transition relative to each
// other — the dump is a consistent read of each metric, which is the
// contract monitoring needs (Prometheus scrapes are exactly this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bqo {

/// \brief Monotonic counter; lock-free increments.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Point-in-time level; lock-free set/read.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Fixed-boundary histogram (boundaries are upper bounds, ascending;
/// an implicit +Inf bucket catches the rest). Observe is lock-free: one
/// relaxed add into the bucket, one into count, a CAS loop for the double
/// sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// \brief Cumulative count per bucket i (value <= bounds[i]), plus the
  /// +Inf bucket last — the Prometheus `le` convention.
  std::vector<int64_t> CumulativeBuckets() const;
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

  /// \brief Default latency boundaries, in milliseconds: 0.25 ms to ~16 s,
  /// doubling.
  static std::vector<double> DefaultLatencyBoundsMs();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief One metric's point-in-time value (see Snapshot semantics above).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  int64_t value = 0;  ///< counter/gauge
  // Histogram detail (cumulative buckets, le convention; +Inf last).
  std::vector<double> bounds;
  std::vector<int64_t> buckets;
  int64_t count = 0;
  double sum = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief Find-or-create; the returned pointer is stable for the
  /// registry's lifetime (cache it; see Hot path above). Dies if `name`
  /// is already registered as a different metric kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies on first registration only (upper bounds, ascending);
  /// empty = Histogram::DefaultLatencyBoundsMs().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// \brief Name-sorted point-in-time values of every registered metric.
  std::vector<MetricSnapshot> Snapshot() const;

  /// \brief One JSON object per line per metric.
  static std::string ToJsonLines(const std::vector<MetricSnapshot>& snapshot);
  /// \brief Prometheus text exposition format.
  static std::string ToPrometheusText(
      const std::vector<MetricSnapshot>& snapshot);

  /// \brief Process-wide registry for engine-global counters. Components
  /// that can be instantiated more than once per process (QueryService in
  /// tests) own their own registry instead, so instances never mix.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  ///< ordered => deterministic dumps
};

}  // namespace bqo

#include "src/obs/explain.h"

#include <algorithm>
#include <utility>

#include "src/common/string_util.h"
#include "src/optimizer/cost_model.h"

namespace bqo {

namespace {

/// Executed stats for plan node `id`, matched by id + operator type (the
/// exchange shares the root join's node id; skip it here — its drain time
/// shows up in the trace spans). Null when the node never executed (e.g.
/// the query unwound first).
const OperatorStats* FindNodeStats(const QueryMetrics& metrics, int id,
                                   bool is_leaf) {
  const OperatorType want =
      is_leaf ? OperatorType::kScan : OperatorType::kHashJoin;
  for (const OperatorStats& op : metrics.operators) {
    if (op.plan_node_id == id && op.type == want) return &op;
  }
  return nullptr;
}

double EstimateAt(const std::vector<double>& v, int id) {
  return id >= 0 && static_cast<size_t>(id) < v.size()
             ? v[static_cast<size_t>(id)]
             : 0.0;
}

void WalkNode(const Plan& plan, const PlanNode& node, int depth,
              const QueryMetrics& metrics, const CoutBreakdown& estimates,
              ExplainReport* report) {
  OperatorExplainRow row;
  row.node_id = node.id;
  row.depth = depth;
  row.is_leaf = node.IsLeaf();
  row.est_rows = EstimateAt(estimates.node_output, node.id);
  row.est_prefilter = EstimateAt(estimates.node_prefilter, node.id);
  if (const OperatorStats* op =
          FindNodeStats(metrics, node.id, node.IsLeaf())) {
    row.label = op->label;
    row.actual_rows = op->rows_out;
    row.actual_prefilter = op->rows_prefilter;
    row.ns_inclusive = op->ns_inclusive;
    row.ns_self = op->ns_self;
    row.worker_cpu_ns = op->worker_cpu_ns;
    row.parallel_workers = op->parallel_workers;
    if (metrics.total_ns > 0) {
      row.time_share = std::max<double>(0, static_cast<double>(op->ns_self)) /
                       static_cast<double>(metrics.total_ns);
    }
  } else {
    row.label = node.IsLeaf()
                    ? "scan " + plan.graph->relation(node.relation).alias
                    : StringFormat("join#%d", node.id);
  }
  report->operators.push_back(std::move(row));
  if (!node.IsLeaf()) {
    WalkNode(plan, *node.build, depth + 1, metrics, estimates, report);
    WalkNode(plan, *node.probe, depth + 1, metrics, estimates, report);
  }
}

FilterKind EffectiveKind(const PlanFilter& f, const FilterConfig& config) {
  if (config.use_plan_kinds && f.chosen_kind >= 0) {
    return static_cast<FilterKind>(f.chosen_kind);
  }
  return config.kind;
}

}  // namespace

ExplainReport BuildExplainReport(const Plan& plan,
                                 const QueryMetrics& metrics,
                                 const CoutBreakdown& estimates,
                                 const FilterConfig& filter_config,
                                 const QueryTrace* trace) {
  ExplainReport report;
  report.total_ns = metrics.total_ns;
  report.cpu_ns = metrics.cpu_ns;
  report.result_rows = metrics.result_rows;
  report.estimated_cost = estimates.total;
  if (plan.root != nullptr) {
    WalkNode(plan, *plan.root, 0, metrics, estimates, &report);
  }

  for (const PlanFilter& f : plan.filters) {
    FilterExplainRow row;
    row.filter_id = f.id;
    row.source_join = f.source_join;
    row.applied_at = f.applied_at;
    row.pruned = f.pruned;
    row.est_lambda = f.estimated_lambda;
    const FilterStats* fs = nullptr;
    for (const FilterStats& s : metrics.filters) {
      if (s.filter_id == f.id) {
        fs = &s;
        break;
      }
    }
    if (f.pruned || fs == nullptr || !fs->created) {
      row.kind = "pruned";
      report.filters.push_back(std::move(row));
      continue;
    }
    const FilterKind kind = EffectiveKind(f, filter_config);
    row.created = true;
    row.kind = FilterKindName(kind);
    row.observed_lambda = fs->ObservedLambda();
    row.modeled_fpr =
        EstimatedFilterFpr(kind, filter_config.bloom_bits_per_key);
    row.inserted = fs->inserted;
    row.probed = fs->probed;
    row.passed = fs->passed;
    row.size_bytes = fs->size_bytes;
    // Measured FPR from the creating join's match accounting (see the
    // header comment): leaked = non-matching probe rows that reached it,
    // rejected = what the filter eliminated below.
    if (const OperatorStats* join =
            FindNodeStats(metrics, f.source_join, /*is_leaf=*/false)) {
      const int64_t leaked = join->probe_rows_in - join->probe_rows_matched;
      const int64_t rejected = fs->probed - fs->passed;
      if (join->probe_rows_in > 0 && leaked + rejected > 0) {
        row.measured_fpr = static_cast<double>(leaked) /
                           static_cast<double>(leaked + rejected);
        row.has_measured_fpr = true;
      }
    }
    report.filters.push_back(std::move(row));
  }

  if (trace != nullptr) report.spans = trace->spans();
  return report;
}

std::string RenderExplainAnalyze(const ExplainReport& report) {
  std::string out = StringFormat(
      "EXPLAIN ANALYZE %s  (status %s, wall %.3f ms, cpu %.3f ms, "
      "rows %lld, estimated Cout %.1f)\n",
      report.query_name.c_str(), report.status.c_str(),
      static_cast<double>(report.total_ns) / 1e6,
      static_cast<double>(report.cpu_ns) / 1e6,
      static_cast<long long>(report.result_rows), report.estimated_cost);

  out += StringFormat("%-34s %12s %12s %12s %12s %9s %7s\n", "operator",
                      "est rows", "actual rows", "est pre", "actual pre",
                      "self ms", "share");
  for (const OperatorExplainRow& op : report.operators) {
    std::string label(static_cast<size_t>(op.depth) * 2, ' ');
    label += op.label;
    out += StringFormat(
        "%-34s %12.1f %12lld %12.1f %12lld %9.3f %6.1f%%",
        label.c_str(), op.est_rows, static_cast<long long>(op.actual_rows),
        op.est_prefilter, static_cast<long long>(op.actual_prefilter),
        static_cast<double>(std::max<int64_t>(0, op.ns_self)) / 1e6,
        op.time_share * 100.0);
    if (op.parallel_workers > 0) {
      out += StringFormat(" [%d workers, worker cpu %.3f ms]",
                          op.parallel_workers,
                          static_cast<double>(op.worker_cpu_ns) / 1e6);
    }
    out += "\n";
  }

  for (const FilterExplainRow& f : report.filters) {
    if (!f.created) {
      out += StringFormat("filter f%d: %s\n", f.filter_id, f.kind.c_str());
      continue;
    }
    out += StringFormat(
        "filter f%d (%s, from join#%d @node#%d): est lambda %.4f observed "
        "lambda %.4f | modeled FPR %.5f measured FPR %s | inserted %lld "
        "probed %lld passed %lld (%lld bytes)\n",
        f.filter_id, f.kind.c_str(), f.source_join, f.applied_at,
        f.est_lambda, f.observed_lambda, f.modeled_fpr,
        f.has_measured_fpr ? StringFormat("%.5f", f.measured_fpr).c_str()
                           : "n/a",
        static_cast<long long>(f.inserted),
        static_cast<long long>(f.probed), static_cast<long long>(f.passed),
        static_cast<long long>(f.size_bytes));
  }

  if (!report.spans.empty()) {
    out += "trace:\n";
    out += RenderSpans(report.spans);
  }
  return out;
}

}  // namespace bqo

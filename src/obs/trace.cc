#include "src/obs/trace.h"

#include <chrono>
#include <utility>

#include "src/common/string_util.h"
#include "src/common/thread_clock.h"

namespace bqo {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kAdmissionWait:
      return "admission_wait";
    case SpanKind::kPlanCacheLookup:
      return "plan_cache_lookup";
    case SpanKind::kRebind:
      return "rebind";
    case SpanKind::kOptimize:
      return "optimize";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kBuildAcquire:
      return "build_acquire";
    case SpanKind::kBuild:
      return "build";
    case SpanKind::kOperator:
      return "operator";
    case SpanKind::kOther:
      return "other";
  }
  return "other";
}

QueryTrace::QueryTrace() {
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

int64_t QueryTrace::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns_;
}

int QueryTrace::BeginSpan(SpanKind kind, std::string name) {
  const int64_t cpu = ThreadCpuNanos();
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = static_cast<int>(spans_.size());
  span.parent = stack_.empty() ? -1 : stack_.back().id;
  span.kind = kind;
  span.name = std::move(name);
  span.start_ns = NowNs();
  spans_.push_back(std::move(span));
  stack_.push_back(Open{spans_.back().id, cpu});
  return spans_.back().id;
}

void QueryTrace::EndSpan(int id) {
  const int64_t cpu = ThreadCpuNanos();
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = NowNs();
  // Pop down to (and including) `id`; spans nested under a span being
  // closed out of order are closed as truncated — the owner unwound past
  // them.
  while (!stack_.empty()) {
    const Open open = stack_.back();
    stack_.pop_back();
    TraceSpan& span = spans_[static_cast<size_t>(open.id)];
    span.wall_ns = now - span.start_ns;
    if (open.id == id) {
      span.cpu_ns = cpu - open.cpu_start;
      return;
    }
    span.truncated = true;
    any_truncated_ = true;
  }
}

int QueryTrace::AddCompletedSpan(SpanKind kind, std::string name, int parent,
                                 int64_t wall_ns, int64_t cpu_ns,
                                 int64_t worker_cpu_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = static_cast<int>(spans_.size());
  span.parent =
      parent >= 0 ? parent : (stack_.empty() ? -1 : stack_.back().id);
  span.kind = kind;
  span.name = std::move(name);
  span.start_ns = NowNs();
  span.wall_ns = wall_ns;
  span.cpu_ns = cpu_ns;
  span.worker_cpu_ns = worker_cpu_ns;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::AddWorkerCpu(int id, int64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= 0 && static_cast<size_t>(id) < spans_.size()) {
    spans_[static_cast<size_t>(id)].worker_cpu_ns += ns;
  }
}

void QueryTrace::Seal(bool ok, std::string status_message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_) return;
  sealed_ = true;
  ok_ = ok;
  status_message_ = std::move(status_message);
  const int64_t now = NowNs();
  while (!stack_.empty()) {
    TraceSpan& span = spans_[static_cast<size_t>(stack_.back().id)];
    span.wall_ns = now - span.start_ns;
    span.truncated = true;
    any_truncated_ = true;
    stack_.pop_back();
  }
}

bool QueryTrace::complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_ && ok_ && !any_truncated_;
}

bool QueryTrace::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

std::string QueryTrace::status_message() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_message_;
}

std::vector<TraceSpan> QueryTrace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string RenderSpans(const std::vector<TraceSpan>& spans) {
  // Depth per span via its parent chain (parents always precede children).
  std::vector<int> depth(spans.size(), 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    const int p = spans[i].parent;
    depth[i] = p >= 0 ? depth[static_cast<size_t>(p)] + 1 : 0;
  }
  std::string out;
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    out += std::string(static_cast<size_t>(depth[i]) * 2, ' ');
    out += StringFormat("%s [%s] wall %.3f ms cpu %.3f ms",
                        s.name.c_str(), SpanKindName(s.kind),
                        static_cast<double>(s.wall_ns) / 1e6,
                        static_cast<double>(s.cpu_ns) / 1e6);
    if (s.worker_cpu_ns > 0) {
      out += StringFormat(" worker_cpu %.3f ms",
                          static_cast<double>(s.worker_cpu_ns) / 1e6);
    }
    if (s.truncated) out += " (truncated)";
    out += "\n";
  }
  return out;
}

std::string QueryTrace::ToString() const {
  std::vector<TraceSpan> snapshot = spans();
  std::string out = RenderSpans(snapshot);
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_ && !ok_) {
    out += StringFormat("(trace truncated: %s)\n", status_message_.c_str());
  }
  return out;
}

}  // namespace bqo

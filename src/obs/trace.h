// QueryTrace: per-query span tree — "where did this query's time go".
//
// A trace is a flat vector of spans with parent indices. Live spans are
// opened/closed on the query's driver thread (admission, planning, build
// drains, execution all run there), so a small mutex plus a current-span
// stack suffices: span creation happens per *phase*, never per batch, and
// the engine's hot paths (probe strides, morsel claims) are untouched.
// Per-operator aggregates are synthesized post-execution from the merged
// OperatorStats (executor.cc), which follow the engine's per-worker
// accumulate / merge-once discipline — so a trace's *structure* is
// pool-size-invariant by construction: pool size changes which OS threads
// drained a pipeline, never how many spans describe it. Worker CPU is
// folded into the owning span's worker_cpu_ns the same way PartialAggState
// partials merge: summed once, after the workers are joined.
//
// A span carries wall time, the opening thread's CPU time
// (src/common/thread_clock.h — immune to co-running queries), and the
// folded worker CPU. Spans still open when the trace is sealed (a
// cancelled, shed, or fault-struck query unwound before closing them) are
// marked truncated; the trace stays well-formed either way and records the
// query's final status.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bqo {

enum class SpanKind : uint8_t {
  kQuery,         ///< root span of a served query
  kAdmissionWait, ///< blocked in QueryService::Admit
  kPlanCacheLookup,
  kRebind,        ///< constant re-bind inside a shape hit
  kOptimize,      ///< full (re-)optimization on a miss/escalation
  kExecute,       ///< ExecutePlan Open..Close
  kBuildAcquire,  ///< BuildCache GetOrBuild (wait-or-build, hash joins)
  kBuild,         ///< build-side construction (drain + filter + bucketize)
  kOperator,      ///< post-hoc per-operator aggregate (open+next+close)
  kOther,
};

const char* SpanKindName(SpanKind kind);

struct TraceSpan {
  int id = -1;
  int parent = -1;  ///< index into the trace's span vector; -1 = root
  SpanKind kind = SpanKind::kOther;
  std::string name;
  int64_t start_ns = 0;  ///< relative to the trace's construction
  int64_t wall_ns = 0;
  /// CPU ns of the thread that opened the span, between open and close
  /// (0 for post-hoc synthesized spans — their CPU lives in the merged
  /// operator counters).
  int64_t cpu_ns = 0;
  /// Summed per-task thread-CPU ns of pool workers folded into this span
  /// (merge-once, like every engine counter).
  int64_t worker_cpu_ns = 0;
  /// Open at Seal(): the query unwound (cancel/deadline/fault) before the
  /// span closed; wall_ns covers open..seal.
  bool truncated = false;
};

class QueryTrace {
 public:
  QueryTrace();
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// \brief Open a span as a child of the innermost open span (or as a
  /// root). Returns its id. Call from the query's driver thread; the
  /// matching EndSpan must run on the same thread (its CPU clock is the
  /// span's cpu_ns source).
  int BeginSpan(SpanKind kind, std::string name);

  /// \brief Close `id`, recording wall + thread-CPU deltas. Spans close
  /// LIFO (enforced by ScopedSpan); closing a non-innermost span closes
  /// the spans nested under it as truncated.
  void EndSpan(int id);

  /// \brief Append an already-measured span (post-hoc synthesis: the
  /// per-operator aggregates). `parent` < 0 parents it under the innermost
  /// open span.
  int AddCompletedSpan(SpanKind kind, std::string name, int parent,
                       int64_t wall_ns, int64_t cpu_ns,
                       int64_t worker_cpu_ns);

  /// \brief Fold pool-worker CPU into span `id` (call once per merge site,
  /// after the workers are joined).
  void AddWorkerCpu(int id, int64_t ns);

  /// \brief Close any spans still open (marking them truncated) and record
  /// the query's final status. Idempotent; the first call wins.
  void Seal(bool ok, std::string status_message);

  /// \brief True once Seal ran with ok=true and no span was truncated.
  bool complete() const;
  bool sealed() const;
  std::string status_message() const;

  /// \brief Snapshot of the span vector (copies; safe after Seal or from
  /// the owning thread at any time).
  std::vector<TraceSpan> spans() const;

  /// \brief Indented tree rendering (one span per line).
  std::string ToString() const;

 private:
  struct Open {
    int id;
    int64_t cpu_start;
  };

  int64_t NowNs() const;

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<Open> stack_;  ///< innermost open span at the back
  int64_t epoch_ns_ = 0;     ///< steady-clock origin
  bool sealed_ = false;
  bool ok_ = false;
  bool any_truncated_ = false;
  std::string status_message_;
};

/// \brief Render a span snapshot as an indented tree (shared by
/// QueryTrace::ToString and the EXPLAIN ANALYZE report).
std::string RenderSpans(const std::vector<TraceSpan>& spans);

/// \brief RAII span; null-tolerant (trace == nullptr is a no-op, so call
/// sites need no branching when tracing is off).
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, SpanKind kind, std::string name)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(kind, std::move(name));
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// \brief Close early (idempotent; the destructor then no-ops).
  void End() {
    if (trace_ != nullptr && id_ >= 0 && !ended_) {
      trace_->EndSpan(id_);
      ended_ = true;
    }
  }

  /// \brief Span id, or -1 when tracing is off. Stays valid after End()
  /// for parenting post-hoc spans.
  int id() const { return id_; }

 private:
  QueryTrace* trace_;
  int id_ = -1;
  bool ended_ = false;
};

}  // namespace bqo

#include "src/workload/predicate_gen.h"

#include <cmath>

namespace bqo {

double LogUniformSel(Rng* rng, double lo, double hi) {
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  return std::exp(llo + (lhi - llo) * rng->NextDouble());
}

ExprPtr AttrRangePredicate(Rng* rng, double sel) {
  (void)rng;
  int64_t bound = static_cast<int64_t>(sel * 1000.0);
  if (bound < 1) bound = 1;
  return Lt("attr0", bound);
}

ExprPtr RandomDimPredicate(Rng* rng, double sel, bool has_label) {
  const uint64_t family = rng->Uniform(has_label ? 4 : 3);
  int64_t width = static_cast<int64_t>(sel * 1000.0);
  if (width < 1) width = 1;
  switch (family) {
    case 0:
      return Lt("attr0", width);
    case 1: {
      const int64_t lo = static_cast<int64_t>(rng->Uniform(
          static_cast<uint64_t>(1000 - std::min<int64_t>(width, 999))));
      return Between("attr1", lo, lo + width - 1);
    }
    case 2: {
      // IN-list of ~sel*1000 distinct points.
      std::vector<int64_t> values;
      const int64_t count = std::max<int64_t>(1, width);
      for (int64_t i = 0; i < count && i < 64; ++i) {
        values.push_back(static_cast<int64_t>(rng->Uniform(1000)));
      }
      if (count > 64) {
        // Large IN-lists degenerate to a range for generation economy.
        return Lt("attr0", width);
      }
      return In("attr0", std::move(values));
    }
    default: {
      // Substring families with known pool hit rates (see MakeLabelPool):
      // "ge" ~ gadget/orange/bridge, "pro" ~ prowler/proton, "qu" ~ quartz.
      static const char* kNeedles[] = {"ge", "pro", "qu", "har", "ow"};
      return LikeContains("label", kNeedles[rng->Uniform(5)]);
    }
  }
}

}  // namespace bqo

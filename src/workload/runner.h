// Workload runner: optimize + execute every query of a workload under one
// or more optimizer modes, collecting the measurements the paper reports —
// per-query CPU time (Figures 8 and 10, Table 4), operator tuple counts
// (Figure 9), filter usage (Table 4), and optimization time (overhead).
#pragma once

#include <vector>

#include "src/exec/executor.h"
#include "src/optimizer/optimizer.h"
#include "src/workload/workload.h"

namespace bqo {

struct QueryRun {
  std::string query_name;
  OptimizerMode mode = OptimizerMode::kBqoShallow;
  QueryMetrics metrics;       ///< best (minimum-time) of `repeats` runs
  double estimated_cost = 0;
  int64_t optimize_ns = 0;
  int num_joins = 0;
  int pruned_filters = 0;
  bool used_bitvectors = false;
};

struct RunOptions {
  /// Warm repetitions per query; the minimum CPU time is kept (the paper
  /// averages ten warm runs; min-of-k is the low-variance equivalent).
  int repeats = 2;
  OptimizerOptions optimizer;
  /// Execution knobs, including execution.exec.threads: scans run
  /// morsel-parallel when > 1 (exec_config.h). Merged filter stats are
  /// thread-count-invariant, so used_bitvectors and per-query lambdas below
  /// stay exact either way.
  ExecutionOptions execution;
  /// Run only the first `limit` queries (0 = all); smoke tests use this.
  size_t limit = 0;
};

/// \brief Run every query of `workload` under `mode`; results are index-
/// aligned with workload.queries.
std::vector<QueryRun> RunWorkload(const Workload& workload,
                                  OptimizerMode mode,
                                  const RunOptions& options = {});

/// \brief Selectivity groups of Figure 8: queries split into terciles by
/// the CPU time of their BASELINE runs — S(mall) = cheapest third,
/// L(arge) = most expensive third.
enum class QueryGroup { kS = 0, kM = 1, kL = 2 };

/// \brief Group assignment per query, computed from baseline CPU times.
std::vector<QueryGroup> GroupBySelectivity(
    const std::vector<QueryRun>& baseline_runs);

}  // namespace bqo

// Workload runner: optimize + execute every query of a workload under one
// or more optimizer modes, collecting the measurements the paper reports —
// per-query CPU time (Figures 8 and 10, Table 4), operator tuple counts
// (Figure 9), filter usage (Table 4), and optimization time (overhead).
//
// Two drivers: RunWorkload executes queries strictly one at a time (the
// paper's measurement setup), RunWorkloadConcurrent pushes the same
// workload through a QueryService from N client threads (the serving
// setup — admission control, shared WorkerPool, plan cache; see
// src/server/query_service.h). Both key per-query min-of-k repeat timing
// on QueryMetrics::cpu_ns — the query's own task time on per-thread CPU
// clocks — so a query's reported time is not inflated by co-running
// queries (metrics.h).
#pragma once

#include <vector>

#include "src/exec/executor.h"
#include "src/optimizer/optimizer.h"
#include "src/workload/workload.h"

namespace bqo {

struct QueryRun {
  std::string query_name;
  OptimizerMode mode = OptimizerMode::kBqoShallow;
  QueryMetrics metrics;       ///< best (minimum-cpu_ns) of `repeats` runs
  double estimated_cost = 0;
  int64_t optimize_ns = 0;
  int num_joins = 0;
  int pruned_filters = 0;
  bool used_bitvectors = false;
  /// Concurrent driver only: this query's plan came from the PlanCache.
  bool plan_cache_hit = false;
  /// Concurrent driver only: the hit re-bound moved constant slots into
  /// the cached shape (the plan may differ from a per-query optimize —
  /// results never do).
  bool plan_rebound = false;
};

struct RunOptions {
  /// Warm repetitions per query; the run with the minimum cpu_ns is kept
  /// (the paper averages ten warm runs; min-of-k is the low-variance
  /// equivalent, and keying on the per-task CPU clock keeps it meaningful
  /// under concurrency).
  int repeats = 2;
  OptimizerOptions optimizer;
  /// Execution knobs, including execution.exec.threads: scans run
  /// morsel-parallel when > 1 (exec_config.h). Merged filter stats are
  /// thread-count-invariant, so used_bitvectors and per-query lambdas below
  /// stay exact either way.
  ExecutionOptions execution;
  /// Run only the first `limit` queries (0 = all); smoke tests use this.
  size_t limit = 0;
};

/// \brief Run every query of `workload` under `mode`; results are index-
/// aligned with workload.queries.
std::vector<QueryRun> RunWorkload(const Workload& workload,
                                  OptimizerMode mode,
                                  const RunOptions& options = {});

/// \brief Run the workload through a QueryService with `clients` client
/// threads issuing queries concurrently (each query claimed off a shared
/// cursor, repeated `options.repeats` times, min-cpu_ns kept). Results are
/// index-aligned with workload.queries and — by the engine's parity
/// invariants — identical in result rows/checksums and merged filter stats
/// to RunWorkload's. Serving knobs (admission, worker share, plan cache)
/// take the QueryService defaults derived from the WorkerPool size.
std::vector<QueryRun> RunWorkloadConcurrent(const Workload& workload,
                                            OptimizerMode mode, int clients,
                                            const RunOptions& options = {});

/// \brief Selectivity groups of Figure 8: queries split into terciles by
/// the CPU time of their BASELINE runs — S(mall) = cheapest third,
/// L(arge) = most expensive third.
enum class QueryGroup { kS = 0, kM = 1, kL = 2 };

/// \brief Group assignment per query, computed from baseline CPU times.
std::vector<QueryGroup> GroupBySelectivity(
    const std::vector<QueryRun>& baseline_runs);

}  // namespace bqo

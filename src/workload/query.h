// Query specifications: the programmatic stand-in for SQL.
//
// A QuerySpec names relation occurrences (alias + base table + local
// predicate), equi-join conditions, and a final aggregate. BuildJoinGraph
// lowers it to the optimizer's JoinGraph, merging multiple join conditions
// between the same relation pair into one multi-column edge and deriving
// key/uniqueness metadata from the catalog.
#pragma once

#include <string>
#include <vector>

#include "src/exec/aggregate.h"
#include "src/plan/join_graph.h"

namespace bqo {

struct QueryRelation {
  std::string alias;
  std::string table;
  ExprPtr predicate;  ///< may be null (no local filter)
};

struct QueryJoinCondition {
  std::string left_alias;
  std::string left_column;
  std::string right_alias;
  std::string right_column;
};

struct QuerySpec {
  std::string name;
  std::vector<QueryRelation> relations;
  std::vector<QueryJoinCondition> joins;
  AggSpec agg;  ///< COUNT(*) by default

  int num_joins() const { return static_cast<int>(joins.size()); }
};

/// \brief Lower `spec` to a JoinGraph bound against `catalog`; derives edge
/// uniqueness from declared keys and computes exact filtered cardinalities.
/// `attach_statistics = false` skips the cardinality pass (predicate
/// evaluation over every base table) — the serving layer binds graphs
/// without it, because a plan-shape cache hit re-estimates only the
/// relations whose constants moved (src/server/plan_cache.h) and a miss
/// attaches the full statistics before optimizing.
Result<JoinGraph> BuildJoinGraph(const Catalog& catalog,
                                 const QuerySpec& spec,
                                 bool attach_statistics = true);

}  // namespace bqo

// JOB-like workload (IMDB schema): relationship facts around a large
// `title` hub, dimension-dimension joins, and multiple fact tables per
// query — the paper's most complex join graphs (Table 3: JOB has the most
// intricate topology; its plans improved the most, Figure 8).
//
// Key properties reproduced from JOB:
//  * `title` is referenced by every relationship table (multi-fact galaxy),
//  * dimensions can be LARGE relative to filtered facts (group P3),
//  * some joins are not PKFK (attr-attr equi-joins between dimensions),
//  * string-containment predicates (the motivating example of Figure 2).
#include <algorithm>

#include "src/common/string_util.h"
#include "src/workload/datagen.h"
#include "src/workload/predicate_gen.h"
#include "src/workload/workload.h"

namespace bqo {

Workload MakeJobLite(double scale, uint64_t seed) {
  Workload w;
  w.name = "JOB";
  w.catalog = std::make_unique<Catalog>();
  w.emulated_btree_indexes = 44;
  w.emulated_columnstores = 20;
  Rng rng(seed);

  auto dim = [&](const char* name, int64_t rows,
                 std::vector<FkSpec> fks = {}) {
    TableGenSpec spec;
    spec.name = name;
    spec.rows = std::max<int64_t>(8, rows);
    spec.fks = std::move(fks);
    GenerateTable(w.catalog.get(), spec, &rng);
  };

  dim("kind_type", 8);
  dim("info_type", 110);
  dim("company_type", 8);
  dim("keyword", 6000);
  dim("company_name", 4000);
  dim("name", 9000);
  dim("char_name", 5000);
  // The hub: every relationship table references title; title itself
  // references kind_type (a snowflake level above the facts).
  dim("title", static_cast<int64_t>(40000 * scale),
      {FkSpec{"kind_type_fk", "kind_type", "kind_type_id", 0.2, 0.0}});

  struct FactDef {
    const char* name;
    int64_t rows;
    std::vector<FkSpec> fks;
  };
  auto fk = [](const char* col, const char* ref, double zipf,
               double dangle = 0.0) {
    return FkSpec{col, ref, std::string(ref) + "_id", zipf, dangle};
  };
  const std::vector<FactDef> facts = {
      {"movie_keyword", static_cast<int64_t>(150000 * scale),
       {fk("title_fk", "title", 0.7), fk("keyword_fk", "keyword", 0.9)}},
      {"movie_companies", static_cast<int64_t>(100000 * scale),
       {fk("title_fk", "title", 0.7),
        fk("company_name_fk", "company_name", 0.8),
        fk("company_type_fk", "company_type", 0.0)}},
      {"cast_info", static_cast<int64_t>(250000 * scale),
       {fk("title_fk", "title", 0.7), fk("name_fk", "name", 0.8),
        fk("char_name_fk", "char_name", 0.8, /*dangle=*/0.05)}},
      {"movie_info", static_cast<int64_t>(180000 * scale),
       {fk("title_fk", "title", 0.6), fk("info_type_fk", "info_type", 0.5)}},
  };
  for (const FactDef& f : facts) {
    TableGenSpec spec;
    spec.name = f.name;
    spec.rows = std::max<int64_t>(1000, f.rows);
    spec.with_pk = false;
    spec.fks = f.fks;
    GenerateTable(w.catalog.get(), spec, &rng);
  }

  // ---- 113 generated queries ----
  for (int q = 0; q < 113; ++q) {
    QuerySpec spec;
    spec.name = StringFormat("job_q%03d", q + 1);

    // Pick 1-3 relationship facts; all connect through title.
    const int num_facts = 1 + static_cast<int>(rng.Uniform(3));
    std::vector<int> picked;
    while (static_cast<int>(picked.size()) < num_facts) {
      const int f = static_cast<int>(rng.Uniform(facts.size()));
      if (std::find(picked.begin(), picked.end(), f) == picked.end()) {
        picked.push_back(f);
      }
    }

    // title is (almost) always present, with a predicate half the time —
    // JOB's motivating pattern `t.title LIKE '%(...'`.
    spec.relations.push_back(
        {"title", "title",
         rng.Bernoulli(0.55)
             ? RandomDimPredicate(&rng, LogUniformSel(&rng, 0.01, 0.6), true)
             : nullptr});

    for (int f : picked) {
      const FactDef& fact = facts[static_cast<size_t>(f)];
      spec.relations.push_back({fact.name, fact.name, nullptr});
      spec.joins.push_back({fact.name, "title_fk", "title", "title_id"});
      // Each fact brings its own dimensions with some probability.
      for (size_t d = 1; d < fact.fks.size(); ++d) {
        if (!rng.Bernoulli(0.8)) continue;
        const FkSpec& fkspec = fact.fks[d];
        bool already = false;
        for (const auto& r : spec.relations) {
          if (r.alias == fkspec.ref_table) already = true;
        }
        if (already) continue;
        ExprPtr pred;
        if (rng.Bernoulli(0.7)) {
          pred = RandomDimPredicate(&rng, LogUniformSel(&rng, 0.002, 0.5),
                                    true);
        }
        spec.relations.push_back({fkspec.ref_table, fkspec.ref_table, pred});
        spec.joins.push_back(
            {fact.name, fkspec.column, fkspec.ref_table, fkspec.ref_column});
      }
    }

    // Snowflake level above title.
    if (rng.Bernoulli(0.35)) {
      spec.relations.push_back(
          {"kind_type", "kind_type",
           rng.Bernoulli(0.5) ? RandomDimPredicate(&rng, 0.3, true)
                              : nullptr});
      spec.joins.push_back(
          {"title", "kind_type_fk", "kind_type", "kind_type_id"});
    }

    // Dimension-dimension non-PKFK join (~20%): company_name.attr1 =
    // name.attr1 style equi-join — defeats clean snowflake extraction.
    if (rng.Bernoulli(0.2)) {
      bool has_cn = false, has_nm = false;
      for (const auto& r : spec.relations) {
        if (r.alias == "company_name") has_cn = true;
        if (r.alias == "name") has_nm = true;
      }
      if (has_cn && has_nm) {
        spec.joins.push_back({"company_name", "attr1", "name", "attr1"});
      }
    }

    if (rng.Bernoulli(0.3)) {
      spec.agg.kind = AggKind::kSum;
      spec.agg.sum_column = BoundColumn{1, "measure"};  // first fact
    }

    w.queries.push_back(std::move(spec));
  }
  return w;
}

}  // namespace bqo

// Workload abstraction: a generated database plus a suite of decision
// support queries, standing in for the paper's three evaluation workloads
// (TPC-DS 100GB, JOB, and the CUSTOMER workload — Table 3).
//
// Scale: every factory takes a `scale` multiplier on fact-table rows so the
// experiments run anywhere from smoke-test size (scale 0.1) to multi-minute
// runs (scale 4+). Shapes (who wins, crossovers) are scale-invariant because
// they are driven by selectivities and topology.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/workload/query.h"

namespace bqo {

struct Workload {
  std::string name;
  std::unique_ptr<Catalog> catalog;
  std::vector<QuerySpec> queries;

  /// Emulated physical design, reported in Table 3 (the engine itself is
  /// columnar; these counts mirror the paper's setups).
  int emulated_btree_indexes = 0;
  int emulated_columnstores = 0;

  double AvgJoins() const;
  int MaxJoins() const;
  int64_t DatabaseBytes() const { return catalog->TotalMemoryBytes(); }
};

/// \brief TPC-DS-like: 3 sales facts over shared dimensions with a
/// customer->address/demographics snowflake; 99 star/snowflake queries
/// (some joining two facts through shared dimensions).
Workload MakeTpcdsLite(double scale = 1.0, uint64_t seed = 20200614);

/// \brief JOB-like (IMDB): relationship facts (movie_keyword, cast_info,
/// movie_companies, movie_info) around a large `title` hub plus dimension-
/// dimension joins; 113 queries with multiple fact tables and large
/// dimensions — the paper's most complex join graphs.
Workload MakeJobLite(double scale = 1.0, uint64_t seed = 19930501);

/// \brief CUSTOMER-like: a wide galaxy schema (dozens of tables, snowflake
/// depth 3) with 100 queries averaging ~25 joins, emulating the paper's
/// 475-table customer workload with B+-tree physical design.
Workload MakeCustomerLite(double scale = 1.0, uint64_t seed = 7001);

/// \brief Scale factor from the BQO_SCALE environment variable (default 1).
double ScaleFromEnv();

}  // namespace bqo

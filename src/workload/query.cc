#include "src/workload/query.h"

#include <map>

#include "src/common/string_util.h"
#include "src/stats/estimated_cost.h"

namespace bqo {

Result<JoinGraph> BuildJoinGraph(const Catalog& catalog,
                                 const QuerySpec& spec,
                                 bool attach_statistics) {
  JoinGraph graph;
  for (const QueryRelation& qr : spec.relations) {
    auto table = catalog.GetTable(qr.table);
    BQO_RETURN_NOT_OK(table.status());
    graph.AddRelation(qr.alias, qr.table, table.value(), qr.predicate);
  }

  // Merge all conditions between the same alias pair into one edge.
  std::map<std::pair<int, int>, JoinEdge> merged;
  for (const QueryJoinCondition& jc : spec.joins) {
    int l = graph.FindRelation(jc.left_alias);
    int r = graph.FindRelation(jc.right_alias);
    if (l < 0 || r < 0) {
      return Status::InvalidArgument(
          StringFormat("join references unknown alias '%s' or '%s'",
                       jc.left_alias.c_str(), jc.right_alias.c_str()));
    }
    std::string lcol = jc.left_column;
    std::string rcol = jc.right_column;
    if (l > r) {
      std::swap(l, r);
      std::swap(lcol, rcol);
    }
    auto [it, inserted] = merged.try_emplace({l, r});
    JoinEdge& e = it->second;
    if (inserted) {
      e.left = l;
      e.right = r;
    }
    e.left_cols.push_back(std::move(lcol));
    e.right_cols.push_back(std::move(rcol));
  }
  for (auto& [_, e] : merged) graph.AddEdge(std::move(e));

  graph.DeriveUniqueness(catalog);
  if (attach_statistics) AttachStatistics(&graph);
  return graph;
}

}  // namespace bqo

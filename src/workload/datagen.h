// Synthetic data generation for dimension/fact tables.
//
// Conventions produced by GenerateTable for a spec named T:
//  * `T_id`       — primary key 0..rows-1 (declared unique) when with_pk
//  * one column per FkSpec, sampled from [0, ref_rows) of the referenced
//    table (optionally Zipf-skewed, optionally with dangling values beyond
//    the referenced domain to model non-containment)
//  * `attr0..attrK` — int64 uniform in [0, attr_domain)
//  * `measure`    — int64 uniform in [0, 10000)
//  * `label`      — dictionary string drawn from a themed pool (substring
//                   predicates hit a controllable fraction of the pool)
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/storage/catalog.h"

namespace bqo {

struct FkSpec {
  std::string column;
  std::string ref_table;   ///< must already exist in the catalog
  std::string ref_column;  ///< usually "<ref_table>_id"
  double zipf_theta = 0.0; ///< 0 = uniform
  /// Fraction of values drawn beyond the referenced key domain (dangling;
  /// such rows never join — models dirty non-PKFK data).
  double dangle_fraction = 0.0;
};

struct TableGenSpec {
  std::string name;
  int64_t rows = 0;
  bool with_pk = true;
  std::vector<FkSpec> fks;
  int num_int_attrs = 2;
  int64_t attr_domain = 1000;
  bool with_measure = true;
  bool with_label = true;
  int label_pool_size = 500;
};

/// \brief Generate and register a table; declares its PK and FKs in the
/// catalog. Dies on spec errors (generation is programmatic, not user input).
Table* GenerateTable(Catalog* catalog, const TableGenSpec& spec, Rng* rng);

}  // namespace bqo

#include "src/workload/runner.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace bqo {

std::vector<QueryRun> RunWorkload(const Workload& workload,
                                  OptimizerMode mode,
                                  const RunOptions& options) {
  std::vector<QueryRun> runs;
  StatsCatalog stats(workload.catalog.get());

  size_t count = workload.queries.size();
  if (options.limit > 0) count = std::min(count, options.limit);

  for (size_t qi = 0; qi < count; ++qi) {
    const QuerySpec& spec = workload.queries[qi];
    auto graph_result = BuildJoinGraph(*workload.catalog, spec);
    BQO_CHECK_MSG(graph_result.ok(),
                  ("query failed to bind: " + spec.name).c_str());
    const JoinGraph& graph = graph_result.value();

    OptimizerOptions opt = options.optimizer;
    opt.mode = mode;
    OptimizedQuery optimized = OptimizeQuery(graph, &stats, opt);

    ExecutionOptions exec = options.execution;
    exec.use_bitvectors = mode != OptimizerMode::kNoBitvectors;
    exec.agg = spec.agg;

    QueryRun run;
    run.query_name = spec.name;
    run.mode = mode;
    run.estimated_cost = optimized.estimated_cost;
    run.optimize_ns = optimized.optimize_ns;
    run.num_joins = spec.num_joins();
    run.pruned_filters = optimized.pruned_filters;

    for (int rep = 0; rep < std::max(1, options.repeats); ++rep) {
      QueryMetrics m = ExecutePlan(optimized.plan, exec);
      if (rep == 0 || m.total_ns < run.metrics.total_ns) {
        run.metrics = std::move(m);
      }
    }
    for (const FilterStats& fs : run.metrics.filters) {
      if (fs.created && fs.probed > 0) run.used_bitvectors = true;
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<QueryGroup> GroupBySelectivity(
    const std::vector<QueryRun>& baseline_runs) {
  std::vector<size_t> order(baseline_runs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return baseline_runs[a].metrics.total_ns <
           baseline_runs[b].metrics.total_ns;
  });
  std::vector<QueryGroup> groups(baseline_runs.size(), QueryGroup::kM);
  const size_t third = baseline_runs.size() / 3;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (rank < third) {
      groups[order[rank]] = QueryGroup::kS;
    } else if (rank >= order.size() - third) {
      groups[order[rank]] = QueryGroup::kL;
    }
  }
  return groups;
}

}  // namespace bqo

#include "src/workload/runner.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/string_util.h"
#include "src/server/query_service.h"

namespace bqo {

std::vector<QueryRun> RunWorkload(const Workload& workload,
                                  OptimizerMode mode,
                                  const RunOptions& options) {
  std::vector<QueryRun> runs;
  StatsCatalog stats(workload.catalog.get());

  size_t count = workload.queries.size();
  if (options.limit > 0) count = std::min(count, options.limit);

  for (size_t qi = 0; qi < count; ++qi) {
    const QuerySpec& spec = workload.queries[qi];
    auto graph_result = BuildJoinGraph(*workload.catalog, spec);
    BQO_CHECK_MSG(graph_result.ok(),
                  ("query failed to bind: " + spec.name).c_str());
    const JoinGraph& graph = graph_result.value();

    OptimizerOptions opt = options.optimizer;
    opt.mode = mode;
    OptimizedQuery optimized = OptimizeQuery(graph, &stats, opt);

    ExecutionOptions exec = options.execution;
    exec.use_bitvectors = mode != OptimizerMode::kNoBitvectors;
    exec.agg = spec.agg;

    QueryRun run;
    run.query_name = spec.name;
    run.mode = mode;
    run.estimated_cost = optimized.estimated_cost;
    run.optimize_ns = optimized.optimize_ns;
    run.num_joins = spec.num_joins();
    run.pruned_filters = optimized.pruned_filters;

    for (int rep = 0; rep < std::max(1, options.repeats); ++rep) {
      QueryMetrics m = ExecutePlan(optimized.plan, exec);
      // Min-of-k keys on the query's own task time (cpu_ns), not wall
      // time: under a shared pool a repeat can be slowed by co-running
      // queries without doing any more work itself.
      if (rep == 0 || m.cpu_ns < run.metrics.cpu_ns) {
        run.metrics = std::move(m);
      }
    }
    for (const FilterStats& fs : run.metrics.filters) {
      if (fs.created && fs.probed > 0) run.used_bitvectors = true;
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<QueryRun> RunWorkloadConcurrent(const Workload& workload,
                                            OptimizerMode mode, int clients,
                                            const RunOptions& options) {
  QueryServiceOptions service_options;
  service_options.optimizer = options.optimizer;
  service_options.optimizer.mode = mode;
  service_options.execution = options.execution;
  QueryService service(workload.catalog.get(), service_options);

  size_t count = workload.queries.size();
  if (options.limit > 0) count = std::min(count, options.limit);
  std::vector<QueryRun> runs(count);

  // Client threads model external traffic: each claims whole queries off a
  // shared cursor and owns the claimed result slots, so no cross-client
  // synchronization beyond the cursor is needed. All engine parallelism
  // below Execute() flows through the shared WorkerPool, not these
  // threads.
  std::atomic<size_t> cursor{0};
  const int num_clients = std::max(1, clients);
  auto client = [&] {
    for (;;) {
      const size_t qi = cursor.fetch_add(1, std::memory_order_relaxed);
      if (qi >= count) return;
      const QuerySpec& spec = workload.queries[qi];
      QueryRun run;
      for (int rep = 0; rep < std::max(1, options.repeats); ++rep) {
        QueryResult r = service.Execute(spec);
        if (rep == 0 || r.metrics.cpu_ns < run.metrics.cpu_ns) {
          run.metrics = std::move(r.metrics);
          run.estimated_cost = r.estimated_cost;
          run.pruned_filters = r.pruned_filters;
          run.used_bitvectors = r.used_bitvectors;
          run.plan_cache_hit = r.plan_cache_hit;
          // Repeats after the first hit the plan cache; report the real
          // optimization cost this query paid, not the hit's zero.
          if (r.optimize_ns > 0) run.optimize_ns = r.optimize_ns;
        } else if (r.optimize_ns > 0) {
          run.optimize_ns = r.optimize_ns;
        }
        // Any repeat that executed a re-bound instance marks the run: a
        // rebound plan may differ from the per-query optimum, so parity
        // checks compare costs only for non-rebound runs.
        run.plan_rebound = run.plan_rebound || r.plan_rebound;
      }
      run.query_name = spec.name;
      run.mode = mode;
      run.num_joins = spec.num_joins();
      runs[qi] = std::move(run);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) threads.emplace_back(client);
  for (std::thread& t : threads) t.join();
  return runs;
}

std::vector<QueryGroup> GroupBySelectivity(
    const std::vector<QueryRun>& baseline_runs) {
  std::vector<size_t> order(baseline_runs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return baseline_runs[a].metrics.total_ns <
           baseline_runs[b].metrics.total_ns;
  });
  std::vector<QueryGroup> groups(baseline_runs.size(), QueryGroup::kM);
  const size_t third = baseline_runs.size() / 3;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (rank < third) {
      groups[order[rank]] = QueryGroup::kS;
    } else if (rank >= order.size() - third) {
      groups[order[rank]] = QueryGroup::kL;
    }
  }
  return groups;
}

}  // namespace bqo

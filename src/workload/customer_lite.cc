// CUSTOMER-like workload: a wide galaxy schema emulating the paper's
// 700GB / 475-table customer database with B+-tree indexes (Table 3:
// highest average joins per query, 30.3 avg / 80 max).
//
// Structure: several hub (fact) tables, each with many first-level
// dimensions; a fraction of dimensions carry level-2 and level-3 snowflake
// children. Queries join one hub with most of its closure (~18-40 joins),
// staying under the engine's 64-relation cap.
#include <algorithm>

#include "src/common/string_util.h"
#include "src/workload/datagen.h"
#include "src/workload/predicate_gen.h"
#include "src/workload/workload.h"

namespace bqo {

Workload MakeCustomerLite(double scale, uint64_t seed) {
  Workload w;
  w.name = "CUSTOMER";
  w.catalog = std::make_unique<Catalog>();
  w.emulated_btree_indexes = 680;
  Rng rng(seed);

  constexpr int kHubs = 5;
  constexpr int kDimsPerHub = 18;

  struct DimInfo {
    std::string name;
    std::vector<std::string> chain;  // level-2/3 children, outward
  };
  struct HubInfo {
    std::string name;
    std::vector<DimInfo> dims;
  };
  std::vector<HubInfo> hubs;

  // Dimensions (and their snowflake chains) must exist before the hubs.
  for (int h = 0; h < kHubs; ++h) {
    HubInfo hub;
    hub.name = StringFormat("hub%d", h);
    for (int d = 0; d < kDimsPerHub; ++d) {
      DimInfo dim;
      dim.name = StringFormat("h%d_dim%02d", h, d);
      // ~1/3 of dimensions grow a chain of depth 1-2 beneath them.
      const int chain_len =
          rng.Bernoulli(0.35) ? 1 + static_cast<int>(rng.Uniform(2)) : 0;
      for (int c = chain_len; c >= 1; --c) {
        dim.chain.push_back(StringFormat("%s_sub%d", dim.name.c_str(), c));
      }
      // Generate innermost first.
      std::string prev;
      for (auto it = dim.chain.rbegin(); it != dim.chain.rend(); ++it) {
        TableGenSpec spec;
        spec.name = *it;
        spec.rows = 50 + static_cast<int64_t>(rng.Uniform(400));
        if (!prev.empty()) {
          spec.fks.push_back(FkSpec{prev + "_fk", prev, prev + "_id", 0.0,
                                    0.0});
        }
        GenerateTable(w.catalog.get(), spec, &rng);
        prev = *it;
      }
      TableGenSpec spec;
      spec.name = dim.name;
      spec.rows = 100 + static_cast<int64_t>(rng.Uniform(3000));
      if (!prev.empty()) {
        spec.fks.push_back(
            FkSpec{prev + "_fk", prev, prev + "_id", 0.0, 0.0});
      }
      GenerateTable(w.catalog.get(), spec, &rng);
      hub.dims.push_back(std::move(dim));
    }
    hubs.push_back(std::move(hub));
  }
  for (HubInfo& hub : hubs) {
    TableGenSpec spec;
    spec.name = hub.name;
    spec.rows = std::max<int64_t>(
        2000, static_cast<int64_t>((30000 + rng.Uniform(50000)) * scale));
    spec.with_pk = false;
    spec.with_label = false;
    for (const DimInfo& d : hub.dims) {
      spec.fks.push_back(FkSpec{d.name + "_fk", d.name, d.name + "_id",
                                0.3 * rng.NextDouble(), 0.0});
    }
    GenerateTable(w.catalog.get(), spec, &rng);
  }

  // ---- 100 generated queries with high join counts ----
  for (int q = 0; q < 100; ++q) {
    QuerySpec spec;
    spec.name = StringFormat("cust_q%03d", q + 1);
    const HubInfo& hub = hubs[rng.Uniform(kHubs)];
    spec.relations.push_back({hub.name, hub.name, nullptr});

    int joins = 0;
    for (const DimInfo& d : hub.dims) {
      if (!rng.Bernoulli(0.9)) continue;
      ExprPtr pred;
      if (rng.Bernoulli(0.55)) {
        pred = RandomDimPredicate(&rng, LogUniformSel(&rng, 0.01, 0.8),
                                  true);
      }
      spec.relations.push_back({d.name, d.name, pred});
      spec.joins.push_back(
          {hub.name, d.name + "_fk", d.name, d.name + "_id"});
      ++joins;
      // Walk the snowflake chain with decaying probability.
      std::string parent = d.name;
      for (const std::string& sub : d.chain) {
        if (!rng.Bernoulli(0.75)) break;
        ExprPtr sub_pred;
        if (rng.Bernoulli(0.4)) {
          sub_pred = RandomDimPredicate(&rng, LogUniformSel(&rng, 0.05, 0.7),
                                        true);
        }
        spec.relations.push_back({sub, sub, sub_pred});
        spec.joins.push_back({parent, sub + "_fk", sub, sub + "_id"});
        parent = sub;
        ++joins;
      }
    }
    // Hubs have disjoint dimension sets, so galaxy queries (~10%) join two
    // hubs on the wide `measure` attribute (domain 10000 keeps the M:N
    // output bounded) — a non-PKFK fact-fact edge.
    if (rng.Bernoulli(0.1)) {
      const HubInfo& other = hubs[rng.Uniform(kHubs)];
      if (other.name != hub.name) {
        spec.relations.push_back({other.name, other.name,
                                  AttrRangePredicate(&rng, 0.1)});
        spec.joins.push_back({hub.name, "measure", other.name, "measure"});
      }
    }

    if (rng.Bernoulli(0.35)) {
      spec.agg.kind = AggKind::kSum;
      spec.agg.sum_column = BoundColumn{0, "measure"};
    }
    w.queries.push_back(std::move(spec));
  }
  return w;
}

}  // namespace bqo

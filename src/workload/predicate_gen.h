// Random predicate generation shared by the workload factories.
//
// Works against datagen's column conventions (attr0/attr1 uniform over
// [0, 1000), `label` from the themed string pool), producing the predicate
// families decision-support benchmarks use: range, IN-list, LIKE-substring.
#pragma once

#include "src/common/rng.h"
#include "src/expr/expr.h"

namespace bqo {

/// \brief Log-uniform selectivity in [lo, hi] (decision-support predicates
/// span orders of magnitude; uniform sampling would under-represent the
/// selective end that makes bitvector filters interesting).
double LogUniformSel(Rng* rng, double lo, double hi);

/// \brief `attr0 < sel * 1000` — selectivity ~= sel on datagen tables.
ExprPtr AttrRangePredicate(Rng* rng, double sel);

/// \brief A random predicate of a random family with selectivity ~sel:
/// range on attr0, BETWEEN on attr1, IN-list on attr0, or LIKE on label
/// (when `has_label`).
ExprPtr RandomDimPredicate(Rng* rng, double sel, bool has_label);

}  // namespace bqo

// TPC-DS-like workload: three sales facts over shared dimensions with a
// customer -> address / household_demographics -> income_band snowflake,
// and 99 generated decision-support queries.
//
// Substitution note (see DESIGN.md): the paper runs TPC-DS 100GB on SQL
// Server columnstores. This generator reproduces the *shape* that matters
// to the paper's claims — star/snowflake PKFK topology, skewed foreign
// keys, predicates spanning selectivity orders of magnitude, occasional
// two-fact (galaxy) queries — at laptop scale.
#include <algorithm>

#include "src/common/string_util.h"
#include "src/workload/datagen.h"
#include "src/workload/predicate_gen.h"
#include "src/workload/workload.h"

namespace bqo {

namespace {

struct FactDef {
  const char* name;
  int64_t rows;
  std::vector<FkSpec> fks;
};

}  // namespace

Workload MakeTpcdsLite(double scale, uint64_t seed) {
  Workload w;
  w.name = "TPC-DS";
  w.catalog = std::make_unique<Catalog>();
  w.emulated_columnstores = 20;
  Rng rng(seed);

  auto dim = [&](const char* name, int64_t rows,
                 std::vector<FkSpec> fks = {}) {
    TableGenSpec spec;
    spec.name = name;
    spec.rows = std::max<int64_t>(8, rows);
    spec.fks = std::move(fks);
    GenerateTable(w.catalog.get(), spec, &rng);
  };

  // Dimensions, innermost snowflake levels first.
  dim("income_band", 20);
  dim("customer_address", 4000);
  dim("household_demographics", 1000,
      {FkSpec{"income_band_fk", "income_band", "income_band_id", 0.0, 0.0}});
  dim("customer", 8000,
      {FkSpec{"customer_address_fk", "customer_address",
              "customer_address_id", 0.3, 0.0},
       FkSpec{"household_demographics_fk", "household_demographics",
              "household_demographics_id", 0.3, 0.0}});
  dim("date_dim", 3650);
  dim("item", 3000);
  dim("store", 60);
  dim("promotion", 300);
  dim("time_dim", 2000);
  dim("warehouse", 25);
  dim("ship_mode", 20);

  auto fk = [](const char* col, const char* ref, double zipf) {
    return FkSpec{col, ref, std::string(ref) + "_id", zipf, 0.0};
  };

  const std::vector<FactDef> facts = {
      {"store_sales", static_cast<int64_t>(300000 * scale),
       {fk("date_dim_fk", "date_dim", 0.4), fk("item_fk", "item", 0.8),
        fk("customer_fk", "customer", 0.6), fk("store_fk", "store", 0.3),
        fk("promotion_fk", "promotion", 0.7),
        fk("household_demographics_fk", "household_demographics", 0.2),
        fk("time_dim_fk", "time_dim", 0.0)}},
      {"web_sales", static_cast<int64_t>(150000 * scale),
       {fk("date_dim_fk", "date_dim", 0.4), fk("item_fk", "item", 0.8),
        fk("customer_fk", "customer", 0.6),
        fk("ship_mode_fk", "ship_mode", 0.2),
        fk("warehouse_fk", "warehouse", 0.2),
        fk("promotion_fk", "promotion", 0.7),
        fk("time_dim_fk", "time_dim", 0.0)}},
      {"catalog_sales", static_cast<int64_t>(180000 * scale),
       {fk("date_dim_fk", "date_dim", 0.4), fk("item_fk", "item", 0.8),
        fk("customer_fk", "customer", 0.6),
        fk("warehouse_fk", "warehouse", 0.2),
        fk("ship_mode_fk", "ship_mode", 0.2),
        fk("promotion_fk", "promotion", 0.7)}},
  };
  for (const FactDef& f : facts) {
    TableGenSpec spec;
    spec.name = f.name;
    spec.rows = std::max<int64_t>(1000, f.rows);
    spec.with_pk = false;
    spec.fks = f.fks;
    spec.with_label = false;
    GenerateTable(w.catalog.get(), spec, &rng);
  }

  // ---- 99 generated queries ----
  for (int q = 0; q < 99; ++q) {
    QuerySpec spec;
    spec.name = StringFormat("tpcds_q%02d", q + 1);

    const uint64_t fpick = rng.Uniform(4);
    const FactDef& fact = facts[fpick >= 2 ? fpick - 1 : 0];

    spec.relations.push_back({fact.name, fact.name, nullptr});
    // Occasional fact-side predicate.
    if (rng.Bernoulli(0.15)) {
      spec.relations.back().predicate =
          AttrRangePredicate(&rng, LogUniformSel(&rng, 0.05, 0.9));
    }

    bool has_customer = false;
    int included = 0;
    for (const FkSpec& f : fact.fks) {
      if (!rng.Bernoulli(0.72)) continue;
      ++included;
      spec.relations.push_back({f.ref_table, f.ref_table, nullptr});
      spec.joins.push_back({fact.name, f.column, f.ref_table, f.ref_column});
      if (rng.Bernoulli(0.65)) {
        spec.relations.back().predicate = RandomDimPredicate(
            &rng, LogUniformSel(&rng, 0.005, 0.8), /*has_label=*/true);
      }
      if (f.ref_table == std::string("customer")) has_customer = true;
    }
    if (included < 2) {
      // Guarantee a join query: force the first two dimensions.
      for (size_t i = 0; included < 2 && i < fact.fks.size(); ++i) {
        const FkSpec& f = fact.fks[i];
        bool already = false;
        for (const auto& r : spec.relations) {
          if (r.alias == f.ref_table) already = true;
        }
        if (already) continue;
        spec.relations.push_back({f.ref_table, f.ref_table,
                                  RandomDimPredicate(&rng, 0.1, true)});
        spec.joins.push_back(
            {fact.name, f.column, f.ref_table, f.ref_column});
        if (f.ref_table == std::string("customer")) has_customer = true;
        ++included;
      }
    }

    // Snowflake extension through customer. household_demographics may
    // already be a direct dimension of store_sales; in that case only the
    // extra join edge is added (customer and the fact then share it — a
    // cyclic join graph, which the optimizer must handle).
    auto has_alias = [&spec](const char* alias) {
      for (const auto& r : spec.relations) {
        if (r.alias == alias) return true;
      }
      return false;
    };
    if (has_customer) {
      if (rng.Bernoulli(0.5) && !has_alias("customer_address")) {
        spec.relations.push_back(
            {"customer_address", "customer_address",
             rng.Bernoulli(0.6)
                 ? RandomDimPredicate(&rng, LogUniformSel(&rng, 0.01, 0.5),
                                      true)
                 : nullptr});
        spec.joins.push_back({"customer", "customer_address_fk",
                              "customer_address", "customer_address_id"});
      }
      if (rng.Bernoulli(0.4)) {
        if (!has_alias("household_demographics")) {
          spec.relations.push_back(
              {"household_demographics", "household_demographics", nullptr});
        }
        spec.joins.push_back({"customer", "household_demographics_fk",
                              "household_demographics",
                              "household_demographics_id"});
        if (rng.Bernoulli(0.5) && !has_alias("income_band")) {
          spec.relations.push_back(
              {"income_band", "income_band",
               RandomDimPredicate(&rng, LogUniformSel(&rng, 0.05, 0.6),
                                  true)});
          spec.joins.push_back({"household_demographics", "income_band_fk",
                                "income_band", "income_band_id"});
        }
      }
    }

    // Galaxy: a second fact sharing item and date_dim (~12% of queries).
    if (rng.Bernoulli(0.12)) {
      const FactDef& other =
          facts[(&fact == &facts[0]) ? 1 + rng.Uniform(2) : 0];
      bool has_item = false, has_date = false;
      for (const auto& r : spec.relations) {
        if (r.alias == "item") has_item = true;
        if (r.alias == "date_dim") has_date = true;
      }
      if (!has_item) {
        spec.relations.push_back(
            {"item", "item", RandomDimPredicate(&rng, 0.05, true)});
        spec.joins.push_back({fact.name, "item_fk", "item", "item_id"});
      }
      spec.relations.push_back({other.name, other.name, nullptr});
      spec.joins.push_back({other.name, "item_fk", "item", "item_id"});
      if (has_date) {
        spec.joins.push_back(
            {other.name, "date_dim_fk", "date_dim", "date_dim_id"});
      }
    }

    // Aggregate.
    if (rng.Bernoulli(0.4)) {
      spec.agg.kind = AggKind::kSum;
      spec.agg.sum_column = BoundColumn{0, "measure"};
    }
    if (rng.Bernoulli(0.3) && spec.relations.size() > 1) {
      spec.agg.has_group_by = true;
      const size_t rel = 1 + rng.Uniform(spec.relations.size() - 1);
      spec.agg.group_column = BoundColumn{static_cast<int>(rel), "attr1"};
    }

    w.queries.push_back(std::move(spec));
  }
  return w;
}

}  // namespace bqo

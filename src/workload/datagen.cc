#include "src/workload/datagen.h"

#include "src/common/string_util.h"

namespace bqo {

namespace {

/// Themed label pool: every label is `<stem><i>` with a few recurring
/// substrings ("ge", "pro", "max") so LIKE '%x%' predicates have a range of
/// selectivities that scale with the pool, not the row count.
std::vector<std::string> MakeLabelPool(int size, Rng* rng) {
  static const char* kStems[] = {"gadget", "prowler", "maxim",  "orange",
                                 "silver", "bridge",  "harbor", "quartz",
                                 "meadow", "proton"};
  std::vector<std::string> pool;
  pool.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    const char* stem = kStems[rng->Uniform(10)];
    pool.push_back(StringFormat("%s_%s%d", stem,
                                RandomString(*rng, 2, 5).c_str(), i));
  }
  return pool;
}

}  // namespace

Table* GenerateTable(Catalog* catalog, const TableGenSpec& spec, Rng* rng) {
  std::vector<FieldDef> fields;
  if (spec.with_pk) {
    fields.push_back({spec.name + "_id", DataType::kInt64});
  }
  for (const FkSpec& fk : spec.fks) {
    fields.push_back({fk.column, DataType::kInt64});
  }
  for (int a = 0; a < spec.num_int_attrs; ++a) {
    fields.push_back({StringFormat("attr%d", a), DataType::kInt64});
  }
  if (spec.with_measure) fields.push_back({"measure", DataType::kInt64});
  if (spec.with_label) fields.push_back({"label", DataType::kString});

  auto created = catalog->CreateTable(spec.name, std::move(fields));
  BQO_CHECK_MSG(created.ok(), created.status().ToString().c_str());
  Table* table = created.value();

  // Resolve FK domains up front.
  struct FkDomain {
    int64_t ref_rows;
    ZipfGenerator zipf;
    double dangle;
  };
  std::vector<FkDomain> domains;
  for (const FkSpec& fk : spec.fks) {
    auto ref = catalog->GetTable(fk.ref_table);
    BQO_CHECK_MSG(ref.ok(), "FK references missing table");
    const int64_t ref_rows = ref.value()->num_rows();
    BQO_CHECK_MSG(ref_rows > 0, "FK references empty table");
    domains.push_back(FkDomain{
        ref_rows,
        ZipfGenerator(static_cast<uint64_t>(ref_rows), fk.zipf_theta),
        fk.dangle_fraction});
  }

  const std::vector<std::string> pool =
      spec.with_label ? MakeLabelPool(spec.label_pool_size, rng)
                      : std::vector<std::string>{};

  int col = 0;
  (void)col;
  for (int64_t row = 0; row < spec.rows; ++row) {
    int c = 0;
    if (spec.with_pk) table->column(c++).AppendInt64(row);
    for (size_t f = 0; f < spec.fks.size(); ++f) {
      const FkDomain& dom = domains[f];
      int64_t v;
      if (dom.dangle > 0 && rng->Bernoulli(dom.dangle)) {
        v = dom.ref_rows + static_cast<int64_t>(rng->Uniform(
                               static_cast<uint64_t>(dom.ref_rows) + 1));
      } else {
        v = static_cast<int64_t>(dom.zipf.Sample(*rng));
      }
      table->column(c++).AppendInt64(v);
    }
    for (int a = 0; a < spec.num_int_attrs; ++a) {
      table->column(c++).AppendInt64(static_cast<int64_t>(
          rng->Uniform(static_cast<uint64_t>(spec.attr_domain))));
    }
    if (spec.with_measure) {
      table->column(c++).AppendInt64(
          static_cast<int64_t>(rng->Uniform(10000)));
    }
    if (spec.with_label) {
      table->column(c++).AppendString(pool[rng->Uniform(pool.size())]);
    }
  }
  table->FinishBulkLoad();

  if (spec.with_pk) {
    BQO_CHECK(catalog->DeclarePrimaryKey(spec.name, spec.name + "_id").ok());
  }
  for (const FkSpec& fk : spec.fks) {
    BQO_CHECK(catalog
                  ->DeclareForeignKey(ForeignKeyDef{spec.name, fk.column,
                                                    fk.ref_table,
                                                    fk.ref_column})
                  .ok());
  }
  return table;
}

}  // namespace bqo

#include "src/workload/workload.h"

#include <cstdlib>

namespace bqo {

double Workload::AvgJoins() const {
  if (queries.empty()) return 0;
  double total = 0;
  for (const QuerySpec& q : queries) total += q.num_joins();
  return total / static_cast<double>(queries.size());
}

int Workload::MaxJoins() const {
  int max_joins = 0;
  for (const QuerySpec& q : queries) {
    max_joins = std::max(max_joins, q.num_joins());
  }
  return max_joins;
}

double ScaleFromEnv() {
  const char* s = std::getenv("BQO_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

}  // namespace bqo

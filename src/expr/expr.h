// Predicate expressions over a single base table.
//
// Queries in this library are decision-support join queries: each relation
// carries an optional filter predicate (this module), and relations are
// connected by equi-join edges (src/plan/join_graph.h). The expression
// language covers what TPC-DS/JOB-style workloads need: comparisons,
// BETWEEN, IN, LIKE '%x%' (string containment), modulo selection (used by
// the paper's Figure 7 micro-benchmark `c_customer_sk % 1000 < @P`), and
// boolean combinators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/table.h"

namespace bqo {

enum class ExprKind : uint8_t {
  kCompare,
  kBetween,
  kInList,
  kStringContains,
  kModLess,
  kAnd,
  kOr,
  kNot,
  kTrue,
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief Immutable predicate node. Construct via the factory functions
/// below; shared_ptr lets query specs share subtrees freely.
struct Expr {
  ExprKind kind = ExprKind::kTrue;

  // Leaf payload (which fields are meaningful depends on `kind`).
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
  int64_t lo = 0, hi = 0;            // kBetween (inclusive)
  std::vector<int64_t> in_values;    // kInList
  std::string needle;                // kStringContains
  int64_t mod_divisor = 1;           // kModLess: column % divisor < bound
  int64_t mod_bound = 0;

  std::vector<ExprPtr> children;     // kAnd / kOr / kNot

  std::string ToString() const;
};

// ---- Factory functions (the public way to build predicates) ----

ExprPtr TruePred();
ExprPtr Compare(std::string column, CompareOp op, Value literal);
ExprPtr Eq(std::string column, int64_t v);
ExprPtr EqString(std::string column, std::string v);
ExprPtr Lt(std::string column, int64_t v);
ExprPtr Le(std::string column, int64_t v);
ExprPtr Gt(std::string column, int64_t v);
ExprPtr Ge(std::string column, int64_t v);
ExprPtr Between(std::string column, int64_t lo, int64_t hi);
ExprPtr In(std::string column, std::vector<int64_t> values);
ExprPtr LikeContains(std::string column, std::string needle);
ExprPtr ModLess(std::string column, int64_t divisor, int64_t bound);
ExprPtr And(std::vector<ExprPtr> children);
ExprPtr Or(std::vector<ExprPtr> children);
ExprPtr Not(ExprPtr child);

/// \brief Evaluate `expr` over all rows of `table`; returns the selected
/// row indices in ascending order. kTrue (or null) selects every row.
std::vector<uint32_t> EvaluatePredicate(const Table& table,
                                        const ExprPtr& expr);

/// \brief Evaluate `expr` into a per-row byte bitmap (1 = selected).
std::vector<uint8_t> EvaluateBitmap(const Table& table, const ExprPtr& expr);

}  // namespace bqo

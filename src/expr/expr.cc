#include "src/expr/expr.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/string_util.h"

namespace bqo {

namespace {

std::shared_ptr<Expr> MakeExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kTrue:
      return "TRUE";
    case ExprKind::kCompare:
      return column + " " + OpName(op) + " " + literal.ToString();
    case ExprKind::kBetween:
      return StringFormat("%s BETWEEN %lld AND %lld", column.c_str(),
                          static_cast<long long>(lo),
                          static_cast<long long>(hi));
    case ExprKind::kInList: {
      std::vector<std::string> parts;
      for (int64_t v : in_values) parts.push_back(std::to_string(v));
      return column + " IN (" + JoinStrings(parts, ", ") + ")";
    }
    case ExprKind::kStringContains:
      return column + " LIKE '%" + needle + "%'";
    case ExprKind::kModLess:
      return StringFormat("%s %% %lld < %lld", column.c_str(),
                          static_cast<long long>(mod_divisor),
                          static_cast<long long>(mod_bound));
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<std::string> parts;
      for (const auto& c : children) parts.push_back("(" + c->ToString() + ")");
      return JoinStrings(parts, kind == ExprKind::kAnd ? " AND " : " OR ");
    }
    case ExprKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
  }
  return "?";
}

ExprPtr TruePred() { return MakeExpr(ExprKind::kTrue); }

ExprPtr Compare(std::string column, CompareOp op, Value literal) {
  auto e = MakeExpr(ExprKind::kCompare);
  e->column = std::move(column);
  e->op = op;
  e->literal = std::move(literal);
  return e;
}

ExprPtr Eq(std::string column, int64_t v) {
  return Compare(std::move(column), CompareOp::kEq, Value(v));
}
ExprPtr EqString(std::string column, std::string v) {
  return Compare(std::move(column), CompareOp::kEq, Value(std::move(v)));
}
ExprPtr Lt(std::string column, int64_t v) {
  return Compare(std::move(column), CompareOp::kLt, Value(v));
}
ExprPtr Le(std::string column, int64_t v) {
  return Compare(std::move(column), CompareOp::kLe, Value(v));
}
ExprPtr Gt(std::string column, int64_t v) {
  return Compare(std::move(column), CompareOp::kGt, Value(v));
}
ExprPtr Ge(std::string column, int64_t v) {
  return Compare(std::move(column), CompareOp::kGe, Value(v));
}

ExprPtr Between(std::string column, int64_t lo, int64_t hi) {
  auto e = MakeExpr(ExprKind::kBetween);
  e->column = std::move(column);
  e->lo = lo;
  e->hi = hi;
  return e;
}

ExprPtr In(std::string column, std::vector<int64_t> values) {
  auto e = MakeExpr(ExprKind::kInList);
  e->column = std::move(column);
  e->in_values = std::move(values);
  return e;
}

ExprPtr LikeContains(std::string column, std::string needle) {
  auto e = MakeExpr(ExprKind::kStringContains);
  e->column = std::move(column);
  e->needle = std::move(needle);
  return e;
}

ExprPtr ModLess(std::string column, int64_t divisor, int64_t bound) {
  BQO_CHECK(divisor > 0);
  auto e = MakeExpr(ExprKind::kModLess);
  e->column = std::move(column);
  e->mod_divisor = divisor;
  e->mod_bound = bound;
  return e;
}

ExprPtr And(std::vector<ExprPtr> children) {
  auto e = MakeExpr(ExprKind::kAnd);
  e->children = std::move(children);
  return e;
}

ExprPtr Or(std::vector<ExprPtr> children) {
  auto e = MakeExpr(ExprKind::kOr);
  e->children = std::move(children);
  return e;
}

ExprPtr Not(ExprPtr child) {
  auto e = MakeExpr(ExprKind::kNot);
  e->children.push_back(std::move(child));
  return e;
}

namespace {

const Column& RequireColumn(const Table& table, const std::string& name) {
  const int idx = table.ColumnIndex(name);
  BQO_CHECK_MSG(idx >= 0, ("predicate column missing: " + name).c_str());
  return table.column(idx);
}

void EvalInto(const Table& table, const Expr& expr,
              std::vector<uint8_t>* out) {
  const int64_t n = table.num_rows();
  out->assign(static_cast<size_t>(n), 0);
  switch (expr.kind) {
    case ExprKind::kTrue: {
      std::fill(out->begin(), out->end(), 1);
      return;
    }
    case ExprKind::kCompare: {
      const Column& col = RequireColumn(table, expr.column);
      if (col.type() == DataType::kString) {
        BQO_CHECK_MSG(expr.literal.type() == DataType::kString,
                      "string column compared to non-string literal");
        // Equality on strings resolves to one dictionary code; other
        // comparisons are not meaningful on dictionary order.
        BQO_CHECK_MSG(expr.op == CompareOp::kEq || expr.op == CompareOp::kNe,
                      "only =/<> supported on string columns");
        const int32_t code = col.dict().Lookup(expr.literal.AsString());
        const int64_t* data = col.int_data();
        const bool want_eq = expr.op == CompareOp::kEq;
        for (int64_t i = 0; i < n; ++i) {
          const bool eq = data[i] == code;
          (*out)[static_cast<size_t>(i)] = (eq == want_eq) ? 1 : 0;
        }
        return;
      }
      if (col.type() == DataType::kDouble) {
        const double v = expr.literal.type() == DataType::kDouble
                             ? expr.literal.AsDouble()
                             : static_cast<double>(expr.literal.AsInt64());
        const double* data = col.double_data();
        for (int64_t i = 0; i < n; ++i) {
          const double x = data[i];
          bool r = false;
          switch (expr.op) {
            case CompareOp::kEq: r = x == v; break;
            case CompareOp::kNe: r = x != v; break;
            case CompareOp::kLt: r = x < v; break;
            case CompareOp::kLe: r = x <= v; break;
            case CompareOp::kGt: r = x > v; break;
            case CompareOp::kGe: r = x >= v; break;
          }
          (*out)[static_cast<size_t>(i)] = r ? 1 : 0;
        }
        return;
      }
      const int64_t v = expr.literal.AsInt64();
      const int64_t* data = col.int_data();
      for (int64_t i = 0; i < n; ++i) {
        const int64_t x = data[i];
        bool r = false;
        switch (expr.op) {
          case CompareOp::kEq: r = x == v; break;
          case CompareOp::kNe: r = x != v; break;
          case CompareOp::kLt: r = x < v; break;
          case CompareOp::kLe: r = x <= v; break;
          case CompareOp::kGt: r = x > v; break;
          case CompareOp::kGe: r = x >= v; break;
        }
        (*out)[static_cast<size_t>(i)] = r ? 1 : 0;
      }
      return;
    }
    case ExprKind::kBetween: {
      const Column& col = RequireColumn(table, expr.column);
      BQO_CHECK(col.type() == DataType::kInt64);
      const int64_t* data = col.int_data();
      for (int64_t i = 0; i < n; ++i) {
        (*out)[static_cast<size_t>(i)] =
            (data[i] >= expr.lo && data[i] <= expr.hi) ? 1 : 0;
      }
      return;
    }
    case ExprKind::kInList: {
      const Column& col = RequireColumn(table, expr.column);
      BQO_CHECK(col.type() == DataType::kInt64);
      std::unordered_set<int64_t> set(expr.in_values.begin(),
                                      expr.in_values.end());
      const int64_t* data = col.int_data();
      for (int64_t i = 0; i < n; ++i) {
        (*out)[static_cast<size_t>(i)] = set.count(data[i]) ? 1 : 0;
      }
      return;
    }
    case ExprKind::kStringContains: {
      const Column& col = RequireColumn(table, expr.column);
      BQO_CHECK(col.type() == DataType::kString);
      // Scan the dictionary once, then test codes: O(dict + rows).
      std::vector<uint8_t> code_match(
          static_cast<size_t>(col.dict().size()), 0);
      for (int32_t code : col.dict().CodesContaining(expr.needle)) {
        code_match[static_cast<size_t>(code)] = 1;
      }
      const int64_t* data = col.int_data();
      for (int64_t i = 0; i < n; ++i) {
        (*out)[static_cast<size_t>(i)] =
            code_match[static_cast<size_t>(data[i])];
      }
      return;
    }
    case ExprKind::kModLess: {
      const Column& col = RequireColumn(table, expr.column);
      BQO_CHECK(col.type() == DataType::kInt64);
      const int64_t* data = col.int_data();
      for (int64_t i = 0; i < n; ++i) {
        (*out)[static_cast<size_t>(i)] =
            (data[i] % expr.mod_divisor) < expr.mod_bound ? 1 : 0;
      }
      return;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      BQO_CHECK(!expr.children.empty());
      EvalInto(table, *expr.children[0], out);
      std::vector<uint8_t> tmp;
      for (size_t c = 1; c < expr.children.size(); ++c) {
        EvalInto(table, *expr.children[c], &tmp);
        if (expr.kind == ExprKind::kAnd) {
          for (int64_t i = 0; i < n; ++i) {
            (*out)[static_cast<size_t>(i)] &= tmp[static_cast<size_t>(i)];
          }
        } else {
          for (int64_t i = 0; i < n; ++i) {
            (*out)[static_cast<size_t>(i)] |= tmp[static_cast<size_t>(i)];
          }
        }
      }
      return;
    }
    case ExprKind::kNot: {
      BQO_CHECK_EQ(expr.children.size(), size_t{1});
      EvalInto(table, *expr.children[0], out);
      for (int64_t i = 0; i < n; ++i) {
        (*out)[static_cast<size_t>(i)] ^= 1;
      }
      return;
    }
  }
}

}  // namespace

std::vector<uint8_t> EvaluateBitmap(const Table& table, const ExprPtr& expr) {
  std::vector<uint8_t> bitmap;
  if (expr == nullptr) {
    bitmap.assign(static_cast<size_t>(table.num_rows()), 1);
    return bitmap;
  }
  EvalInto(table, *expr, &bitmap);
  return bitmap;
}

std::vector<uint32_t> EvaluatePredicate(const Table& table,
                                        const ExprPtr& expr) {
  std::vector<uint32_t> rows;
  if (expr == nullptr || expr->kind == ExprKind::kTrue) {
    rows.resize(static_cast<size_t>(table.num_rows()));
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<uint32_t>(i);
    }
    return rows;
  }
  const std::vector<uint8_t> bitmap = EvaluateBitmap(table, expr);
  for (size_t i = 0; i < bitmap.size(); ++i) {
    if (bitmap[i]) rows.push_back(static_cast<uint32_t>(i));
  }
  return rows;
}

}  // namespace bqo

// Assertion and utility macros used throughout the library.
//
// BQO_CHECK-style macros are always on (they guard invariants whose violation
// would corrupt results); BQO_DCHECK compiles away in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>

#define BQO_LIKELY(x) (__builtin_expect(!!(x), 1))
#define BQO_UNLIKELY(x) (__builtin_expect(!!(x), 0))

#define BQO_CHECK(cond)                                                     \
  do {                                                                      \
    if (BQO_UNLIKELY(!(cond))) {                                            \
      std::fprintf(stderr, "BQO_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define BQO_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (BQO_UNLIKELY(!(cond))) {                                            \
      std::fprintf(stderr, "BQO_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define BQO_CHECK_EQ(a, b) BQO_CHECK((a) == (b))
#define BQO_CHECK_NE(a, b) BQO_CHECK((a) != (b))
#define BQO_CHECK_LT(a, b) BQO_CHECK((a) < (b))
#define BQO_CHECK_LE(a, b) BQO_CHECK((a) <= (b))
#define BQO_CHECK_GT(a, b) BQO_CHECK((a) > (b))
#define BQO_CHECK_GE(a, b) BQO_CHECK((a) >= (b))

#ifdef NDEBUG
#define BQO_DCHECK(cond) ((void)0)
#define BQO_DCHECK_EQ(a, b) ((void)0)
#define BQO_DCHECK_LT(a, b) ((void)0)
#define BQO_DCHECK_LE(a, b) ((void)0)
#else
#define BQO_DCHECK(cond) BQO_CHECK(cond)
#define BQO_DCHECK_EQ(a, b) BQO_CHECK_EQ(a, b)
#define BQO_DCHECK_LT(a, b) BQO_CHECK_LT(a, b)
#define BQO_DCHECK_LE(a, b) BQO_CHECK_LE(a, b)
#endif

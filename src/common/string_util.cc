#include "src/common/string_util.h"

#include <cstdio>

namespace bqo {

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? needed : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatCount(int64_t n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  const int len = static_cast<int>(digits.size());
  for (int i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  if (n < 0) out.insert(out.begin(), '-');
  return out;
}

}  // namespace bqo

// 64-bit hashing primitives shared by the bitvector filters, join hash
// tables, and dictionary encoding.
//
// We use strong finalizer-style mixers (SplitMix64 / Murmur3 fmix64) rather
// than std::hash, because std::hash<int64_t> is the identity on libstdc++ and
// would make the Bloom-filter false-positive analysis meaningless.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace bqo {

/// \brief Murmur3 64-bit finalizer; full avalanche over the input bits.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Hash a 64-bit value with a seed (distinct hash families per seed).
inline uint64_t HashValue(uint64_t x, uint64_t seed = 0) {
  return Mix64(x + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// \brief Combine two hashes (order-dependent), boost::hash_combine style
/// but with a 64-bit golden-ratio constant and an extra mix.
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= Mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

/// \brief FNV-1a over raw bytes; used for string dictionary hashing.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// \brief Hash a composite key of n 64-bit column values.
///
/// Bitvector filters over multi-column join keys (e.g. the filter built from
/// the join of A and C in Figure 1 of the paper) hash the concatenation of
/// the key columns in edge order.
/// \brief Initial fold state of a composite-key hash. Shared by the scalar
/// and batched hashers below so their bit-parity holds by construction.
inline uint64_t CompositeSeed(uint64_t seed) {
  return Mix64(seed + 0x51afd7ed558ccd00ULL);
}

inline uint64_t HashComposite(const int64_t* values, size_t n,
                              uint64_t seed = 0) {
  uint64_t h = CompositeSeed(seed);
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(values[i]));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Batched hashing. The executor's vectorized probe pipeline (see batch.h)
// hashes a whole stride of keys into a caller-provided scratch array before
// probing, so the multiplies pipeline across keys instead of serializing
// behind each filter lookup. Both functions are bit-identical to calling
// HashComposite() per key — the filters are populated through the scalar
// path and probed through the batched one, so any divergence would be a
// correctness bug (false negatives), not just a perf bug.
// ---------------------------------------------------------------------------

/// \brief Hash `n` single-column keys: out[i] = HashComposite(&values[i], 1).
inline void HashColumn(const int64_t* values, int n, uint64_t* out,
                       uint64_t seed = 0) {
  const uint64_t h0 = CompositeSeed(seed);
  for (int i = 0; i < n; ++i) {
    out[i] = HashCombine(h0, static_cast<uint64_t>(values[i]));
  }
}

/// \brief Hash `n` composite keys given column-wise: key i is
/// (cols[0][i], ..., cols[num_cols-1][i]). out[i] = HashComposite of key i.
inline void HashCompositeBatch(const int64_t* const* cols, size_t num_cols,
                               int n, uint64_t* out, uint64_t seed = 0) {
  const uint64_t h0 = CompositeSeed(seed);
  for (int i = 0; i < n; ++i) out[i] = h0;
  for (size_t c = 0; c < num_cols; ++c) {
    const int64_t* col = cols[c];
    for (int i = 0; i < n; ++i) {
      out[i] = HashCombine(out[i], static_cast<uint64_t>(col[i]));
    }
  }
}

}  // namespace bqo

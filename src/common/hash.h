// 64-bit hashing primitives shared by the bitvector filters, join hash
// tables, and dictionary encoding.
//
// We use strong finalizer-style mixers (SplitMix64 / Murmur3 fmix64) rather
// than std::hash, because std::hash<int64_t> is the identity on libstdc++ and
// would make the Bloom-filter false-positive analysis meaningless.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace bqo {

/// \brief Murmur3 64-bit finalizer; full avalanche over the input bits.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Hash a 64-bit value with a seed (distinct hash families per seed).
inline uint64_t HashValue(uint64_t x, uint64_t seed = 0) {
  return Mix64(x + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// \brief Combine two hashes (order-dependent), boost::hash_combine style
/// but with a 64-bit golden-ratio constant and an extra mix.
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= Mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

/// \brief FNV-1a over raw bytes; used for string dictionary hashing.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// \brief Hash a composite key of n 64-bit column values.
///
/// Bitvector filters over multi-column join keys (e.g. the filter built from
/// the join of A and C in Figure 1 of the paper) hash the concatenation of
/// the key columns in edge order.
inline uint64_t HashComposite(const int64_t* values, size_t n,
                              uint64_t seed = 0) {
  uint64_t h = Mix64(seed + 0x51afd7ed558ccd00ULL);
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(values[i]));
  }
  return h;
}

}  // namespace bqo

// Small bit-manipulation helpers shared across the library.
#pragma once

#include <cstdint>

namespace bqo {

/// \brief Smallest power of two >= x (std::bit_ceil semantics; returns 1
/// for x <= 1). Used to size the power-of-two hash tables and filter arrays
/// so index masking replaces modulo on the probe paths.
inline uint64_t NextPow2(uint64_t x) {
  if (x <= 1) return 1;
  return uint64_t{1} << (64 - __builtin_clzll(x - 1));
}

}  // namespace bqo

// Lightweight Status / Result<T> error-propagation types.
//
// The library does not throw exceptions across public API boundaries
// (following the Arrow / RocksDB idiom). Functions that can fail on user
// input return Status or Result<T>; internal invariants use BQO_CHECK.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "src/common/macros.h"

namespace bqo {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
  kNotImplemented,
  // Serving-layer failure domain (src/exec/query_context.h,
  // src/server/query_service.h): how a query ends other than success.
  kCancelled,          ///< cooperatively cancelled (client or fault)
  kDeadlineExceeded,   ///< query deadline or admission wait timeout expired
  kResourceExhausted,  ///< load shed: admission queue full
};

/// \brief Outcome of an operation that can fail on user input.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : value_(std::move(status)) {  // NOLINT implicit
    BQO_CHECK_MSG(!std::get<Status>(value_).ok(),
                  "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  T& value() {
    BQO_CHECK_MSG(ok(), "Result::value() on error result");
    return std::get<T>(value_);
  }
  const T& value() const {
    BQO_CHECK_MSG(ok(), "Result::value() on error result");
    return std::get<T>(value_);
  }

  T ValueOrDie() && {
    BQO_CHECK_MSG(ok(), "Result::ValueOrDie() on error result");
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

#define BQO_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::bqo::Status _st = (expr);             \
    if (BQO_UNLIKELY(!_st.ok())) return _st; \
  } while (0)

}  // namespace bqo

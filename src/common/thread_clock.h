// Per-thread CPU clock for query task-time accounting.
//
// Under concurrent serving, a query's wall time is inflated by co-running
// queries (preemption, pool queueing), so the runner's min-of-k repeat
// timing and the per-worker busy counters key on *thread CPU time* instead:
// CLOCK_THREAD_CPUTIME_ID advances only while the calling thread is
// actually executing, which makes the summed per-task deltas the query's
// own task time regardless of what else the machine is doing (see
// QueryMetrics::cpu_ns in src/exec/metrics.h).
#pragma once

#include <cstdint>

#include <chrono>
#include <ctime>

namespace bqo {

/// \brief CPU nanoseconds consumed by the calling thread. Falls back to the
/// steady clock where the POSIX per-thread clock is unavailable (the value
/// is then wall time, still monotonic — deltas stay meaningful, just no
/// longer preemption-immune).
inline int64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 +
           static_cast<int64_t>(ts.tv_nsec);
  }
#endif
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace bqo

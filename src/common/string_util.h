// Small string helpers shared by plan printing and workload generation.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace bqo {

/// \brief True if `haystack` contains `needle` (SQL `LIKE '%needle%'`).
bool Contains(std::string_view haystack, std::string_view needle);

/// \brief Join the elements of `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// \brief printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Format a number with thousands separators, e.g. 1234567 -> 1,234,567.
std::string FormatCount(int64_t n);

}  // namespace bqo

// FaultInjector: deterministic fault injection for robustness testing of
// the serving stack.
//
// A production serving layer is judged on what happens when things go
// wrong mid-drain: does a failing worker task deadlock the pool, leak an
// admission slot, poison the plan cache, or skew the stats catalog? The
// injector lets tests (and the CI fault-smoke job) force that question at
// the engine's four structurally distinct failure surfaces:
//
//   kWorkerTask       — entry of a pool worker task (exchange drains,
//                       canonical build drains); the generic "a worker
//                       died" case.
//   kExchangePush     — an exchange worker about to hand off a produced
//                       batch (raw-mode queue push / pre-agg fold); fails
//                       with the bounded queue and sibling producers live.
//   kFilterFill       — inside FillFilterParallel, mid bitvector build;
//                       fails between a join's table drain and its filter
//                       publication.
//   kPlanCacheLookup  — QueryService consulting the PlanCache; fails a
//                       query before any execution state exists.
//
// A fired fault is reported as Status::Internal("injected fault: <site>");
// the call site cancels the query's QueryContext with it (first-error-wins,
// query_context.h), so the fault unwinds exactly like a real mid-drain
// error and surfaces in QueryResult::status. The contract the tests pin:
// after ANY injected fault, the WorkerPool, PlanCache, and StatsCatalog
// keep serving subsequent queries with unchanged results.
//
// == Configuration ==
//
// Each site is armed with a period N: every Nth Check() at that site fires
// (N=1: every check). Counters are global atomics, so firing is
// deterministic in the total number of checks, not in thread interleaving.
// Tests call Arm()/DisarmAll() directly; binaries opt in via env knobs:
//
//   BQO_FAULT_SITES=worker_task,exchange_push,filter_fill,plan_cache
//   BQO_FAULT_EVERY=N        (default 1 when sites are set)
//
// (ConfigureFromEnv is called by bench_concurrent_queries; the library
// itself never reads the environment, so production embedders pay one
// relaxed load per stride-boundary check and nothing else.)
#pragma once

#include <atomic>
#include <cstdint>

#include "src/common/status.h"

namespace bqo {

class FaultInjector {
 public:
  enum class Site : int {
    kWorkerTask = 0,
    kExchangePush,
    kFilterFill,
    kPlanCacheLookup,
  };
  static constexpr int kNumSites = 4;

  /// \brief The process-wide injector every hook point consults.
  static FaultInjector& Global();

  /// \brief OK unless `site` is armed and this is its Nth check; then a
  /// kInternal "injected fault" Status the caller must propagate (cancel
  /// the query context with it). Thread-safe; one relaxed load when the
  /// site is disarmed.
  Status Check(Site site);

  /// \brief Arm `site`: every `every`-th Check fires. 0 disarms the site.
  void Arm(Site site, int64_t every);
  /// \brief Disarm every site and zero the check/injection counters.
  void DisarmAll();

  /// \brief Total faults fired since the last DisarmAll.
  int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  /// \brief Checks seen at `site` since the last DisarmAll.
  int64_t checks(Site site) const;

  /// \brief Arm sites from BQO_FAULT_SITES / BQO_FAULT_EVERY (see header).
  void ConfigureFromEnv();

  static const char* SiteName(Site site);

 private:
  struct SiteState {
    std::atomic<int64_t> every{0};  ///< 0 = disarmed
    std::atomic<int64_t> count{0};
  };
  SiteState sites_[kNumSites];
  std::atomic<int64_t> injected_{0};
};

}  // namespace bqo

#include "src/common/fault_injector.h"

#include <cstdlib>
#include <string>
#include <vector>

namespace bqo {

namespace {

std::vector<std::string> SplitCommaList(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (; *s != '\0'; ++s) {
    if (*s == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (*s != ' ') {
      cur.push_back(*s);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

const char* FaultInjector::SiteName(Site site) {
  switch (site) {
    case Site::kWorkerTask:
      return "worker_task";
    case Site::kExchangePush:
      return "exchange_push";
    case Site::kFilterFill:
      return "filter_fill";
    case Site::kPlanCacheLookup:
      return "plan_cache";
  }
  return "unknown";
}

Status FaultInjector::Check(Site site) {
  SiteState& s = sites_[static_cast<int>(site)];
  const int64_t every = s.every.load(std::memory_order_relaxed);
  if (every <= 0) return Status::OK();
  const int64_t n = s.count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % every != 0) return Status::OK();
  injected_.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal(std::string("injected fault: ") + SiteName(site));
}

void FaultInjector::Arm(Site site, int64_t every) {
  SiteState& s = sites_[static_cast<int>(site)];
  s.count.store(0, std::memory_order_relaxed);
  s.every.store(every, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  for (SiteState& s : sites_) {
    s.every.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
  }
  injected_.store(0, std::memory_order_relaxed);
}

int64_t FaultInjector::checks(Site site) const {
  return sites_[static_cast<int>(site)].count.load(std::memory_order_relaxed);
}

void FaultInjector::ConfigureFromEnv() {
  const char* sites = std::getenv("BQO_FAULT_SITES");
  if (sites == nullptr || *sites == '\0') return;
  int64_t every = 1;
  if (const char* e = std::getenv("BQO_FAULT_EVERY")) {
    const int64_t v = std::atoll(e);
    if (v > 0) every = v;
  }
  for (const std::string& name : SplitCommaList(sites)) {
    for (int i = 0; i < kNumSites; ++i) {
      const Site site = static_cast<Site>(i);
      if (name == SiteName(site)) Arm(site, every);
    }
  }
}

}  // namespace bqo

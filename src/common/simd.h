// Runtime SIMD kernel-tier selection.
//
// The engine ships two implementations of its per-tuple kernels (batched key
// hashing and blocked-Bloom block probes, src/filter/filter_kernels.h): a
// portable scalar tier and an AVX2 tier. The tier is picked ONCE, at first
// use, from CPUID (__builtin_cpu_supports("avx2")) with an environment
// override — and is process-global, because the two tiers are bit-identical
// by contract (they compute the same function, only with different
// instructions), so nothing downstream may depend on which one ran. That
// contract is what keeps result checksums and merged FilterStats invariant
// across tiers; tests/test_simd_kernels.cc pins it.
//
// Env override: BQO_SIMD=scalar forces the portable tier (CI runs the full
// suite this way); BQO_SIMD=avx2 requests AVX2 and falls back to scalar when
// the CPU lacks it (we never emit an illegal instruction). Like
// WorkerPool::Global, this is a process-level knob read from the environment
// at first use — the one sanctioned exception to "the library never reads
// env", since dispatch must be settled before any hot loop runs.
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bqo {

enum class SimdTier : int { kScalar = 0, kAvx2 = 1 };

inline const char* SimdTierName(SimdTier tier) {
  return tier == SimdTier::kAvx2 ? "avx2" : "scalar";
}

namespace internal {

/// Tier storage: -1 = not yet detected. Atomic so the benign first-use race
/// (two threads detecting concurrently) settles on the same value without a
/// data race; after that it's a relaxed load per batched kernel call.
inline std::atomic<int>& SimdTierCell() {
  static std::atomic<int> cell{-1};
  return cell;
}

/// CPUID + BQO_SIMD resolution; defined in filter_kernels.cc so the
/// cpu-support intrinsics live next to the kernels they gate.
SimdTier DetectSimdTier();

}  // namespace internal

/// \brief The tier every dispatched kernel runs with. First call detects
/// (CPUID, then the BQO_SIMD override); later calls are one relaxed load.
inline SimdTier ActiveSimdTier() {
  int t = internal::SimdTierCell().load(std::memory_order_relaxed);
  if (t < 0) {
    t = static_cast<int>(internal::DetectSimdTier());
    internal::SimdTierCell().store(t, std::memory_order_relaxed);
  }
  return static_cast<SimdTier>(t);
}

/// \brief True iff this build + CPU can execute the AVX2 tier (regardless of
/// what BQO_SIMD selected). Tests use it to skip AVX2 parity legs on
/// machines that can't run them.
bool CpuSupportsAvx2();

/// \brief RAII tier override for tests: forces `tier` for its lifetime and
/// restores the previous selection after. Forcing kAvx2 on a CPU without
/// AVX2 is clamped to scalar (same rule as the env override). Not for
/// production code — the tier is meant to be settled once per process.
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier tier) {
    previous_ = internal::SimdTierCell().exchange(
        static_cast<int>(tier == SimdTier::kAvx2 && !CpuSupportsAvx2()
                             ? SimdTier::kScalar
                             : tier),
        std::memory_order_relaxed);
  }
  ~ScopedSimdTier() {
    internal::SimdTierCell().store(previous_, std::memory_order_relaxed);
  }
  ScopedSimdTier(const ScopedSimdTier&) = delete;
  ScopedSimdTier& operator=(const ScopedSimdTier&) = delete;

 private:
  int previous_;
};

}  // namespace bqo

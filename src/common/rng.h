// Deterministic pseudo-random generation for data and workload synthesis.
//
// All generators are seeded explicitly so every experiment in the repository
// is reproducible bit-for-bit. Includes a Zipf sampler used to skew foreign
// key distributions (decision-support fact tables are rarely uniform).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/macros.h"

namespace bqo {

/// \brief xoshiro256** PRNG: fast, high quality, 64-bit output.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    BQO_DCHECK(bound > 0);
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    BQO_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

/// \brief Zipf(θ) sampler over [0, n) using the Gray et al. method with a
/// precomputed normalization constant; O(1) per sample after O(1) setup.
///
/// θ = 0 degenerates to uniform; θ around 0.8–1.2 models typical fact-table
/// skew (a few very popular dimension keys).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta)
      : n_(n), theta_(theta) {
    BQO_CHECK(n > 0);
    if (theta_ <= 0.0) return;  // uniform fallback
    zeta_n_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t Sample(Rng& rng) const {
    if (theta_ <= 0.0) return rng.Uniform(n_);
    const double u = rng.NextDouble();
    const double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto k = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    // Exact for small n, Euler-Maclaurin approximation beyond; the sampler
    // is a model of skew, not a statistics package.
    double sum = 0.0;
    const uint64_t limit = n < 10000 ? n : 10000;
    for (uint64_t i = 1; i <= limit; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > limit) {
      // integral tail approximation
      const double a = static_cast<double>(limit);
      const double b = static_cast<double>(n);
      sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zeta_n_ = 0.0;
  double zeta2_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

/// \brief Random lowercase ASCII string of length in [min_len, max_len].
inline std::string RandomString(Rng& rng, int min_len, int max_len) {
  const int len = static_cast<int>(rng.UniformRange(min_len, max_len));
  std::string s;
  s.reserve(len);
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.Uniform(26)));
  }
  return s;
}

}  // namespace bqo

#include "src/common/status.h"

namespace bqo {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace bqo

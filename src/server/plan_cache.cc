#include "src/server/plan_cache.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/string_util.h"
#include "src/stats/estimated_cost.h"

namespace bqo {

PlanCache::PlanCache(PlanCacheOptions options)
    : options_(options), capacity_(std::max<size_t>(1, options.capacity)) {}

PlanCache::PlanCache(size_t capacity)
    : PlanCache([capacity] {
        PlanCacheOptions options;
        options.capacity = capacity;
        return options;
      }()) {}

std::string PlanCache::ShapeSignature(const JoinGraph& graph,
                                      const OptimizerOptions& options) {
  // Optimizer knobs first — they change the produced plan, so they are
  // part of the identity of the cached artifact. The band/drift knobs are
  // deliberately absent: they bound reuse, not the plan itself.
  std::string sig = StringFormat(
      "mode=%s;lambda=%.9g;fp=%.9g;dp=%d;exh=%zu;"
      "menu=%d;mbits=%.9g;mcf=%.9g/%.9g;mcp=%.9g",
      OptimizerModeName(options.mode), options.lambda_thresh,
      options.filter_fp_rate, options.max_dp_relations,
      options.exhaustive_limit, options.filter_menu.enabled ? 1 : 0,
      options.filter_menu.bits_per_key,
      options.filter_menu.classical_probe_ns,
      options.filter_menu.blocked_probe_ns,
      options.filter_menu.hash_probe_ns);
  sig += graph.ShapeSignature();
  return sig;
}

PlanCache::LookupOutcome PlanCache::Lookup(const std::string& shape_signature,
                                           int64_t catalog_version,
                                           const JoinGraph& query_graph,
                                           QueryTrace* trace) {
  LookupOutcome out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (catalog_version != seen_catalog_version_) {
      if (!entries_.empty()) InvalidateLocked();
      seen_catalog_version_ = catalog_version;
    }
    auto it = entries_.find(shape_signature);
    if (it == entries_.end()) {
      ++stats_.misses;
      return out;  // kMiss
    }
    ++stats_.shape_hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // bump to MRU
    out.entry = it->second.entry;
  }
  const CachedPlan& entry = *out.entry;

  // The classification below runs outside mu_: entries are immutable but
  // for the feedback block, and re-estimation evaluates predicates over
  // base tables — far too heavy for the cache lock.
  auto refuse = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.reoptimizations;
    out.kind = LookupOutcome::Kind::kReoptimize;
    return out;
  };
  if (entry.stale.load(std::memory_order_relaxed)) return refuse();

  const std::vector<std::vector<Value>> query_constants =
      query_graph.ConstantTable();
  if (query_constants.size() != entry.constants.size()) return refuse();
  std::vector<int> moved;
  for (size_t r = 0; r < query_constants.size(); ++r) {
    if (!(query_constants[r] == entry.constants[r])) {
      moved.push_back(static_cast<int>(r));
    }
  }

  if (moved.empty()) {
    // Exact-constant hit — the degenerate (zero moved slots) case: serve
    // the shared entry itself, as the pre-shape cache did.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    out.kind = LookupOutcome::Kind::kServed;
    out.instance = out.entry;
    return out;
  }

  // Re-bind: private instance with the cached join order, the query's
  // predicates, and fresh selectivities for the moved relations only.
  ScopedSpan rebind_span(trace, SpanKind::kRebind, "rebind");
  auto inst = std::make_shared<CachedPlan>();
  inst->graph = entry.graph;  // optimize-time constants + statistics
  for (int r : moved) {
    RelationRef& rel = inst->graph.relation(r);
    rel.predicate = query_graph.relation(r).predicate;
    AttachRelationStatistics(&inst->graph, r);  // only the moved slots
    const double base = std::max(rel.base_rows, 1.0);
    const double sel = std::clamp(rel.filtered_rows / base, 0.0, 1.0);
    if (!entry.bands[static_cast<size_t>(r)].Contains(sel)) {
      // Out of the validity band: the cached join order is not known to
      // be the optimizer's choice at this selectivity. Escalate.
      return refuse();
    }
  }
  // Aliases are naming, not semantics (excluded from the shape), but the
  // served instance should carry the query's names in labels and metrics.
  for (int r = 0; r < inst->graph.num_relations(); ++r) {
    inst->graph.relation(r).alias = query_graph.relation(r).alias;
  }
  inst->plan = entry.plan.Clone();
  inst->plan.graph = &inst->graph;
  inst->estimated_cost = entry.estimated_cost;
  inst->pruned_filters = entry.pruned_filters;
  inst->optimize_ns = entry.optimize_ns;

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    ++stats_.rebinds;
  }
  out.kind = LookupOutcome::Kind::kServed;
  out.instance = std::move(inst);
  out.rebound = true;
  return out;
}

std::shared_ptr<const CachedPlan> PlanCache::Insert(
    const std::string& shape_signature, int64_t catalog_version,
    const JoinGraph& graph, ParameterizedPlan optimized) {
  auto entry = std::make_shared<CachedPlan>();
  entry->graph = graph;  // owned copy: the caller's graph is stack-local
  entry->plan = std::move(optimized.optimized.plan);
  entry->plan.graph = &entry->graph;  // re-bind to the stable copy
  entry->estimated_cost = optimized.optimized.estimated_cost;
  entry->pruned_filters = optimized.optimized.pruned_filters;
  entry->optimize_ns = optimized.optimized.optimize_ns;
  entry->constants = std::move(optimized.constants);
  entry->optimize_sel = std::move(optimized.optimize_sel);
  entry->bands = std::move(optimized.bands);
  entry->estimated_lambda = std::move(optimized.estimated_lambda);
  entry->lambda_ewma.assign(entry->estimated_lambda.size(), -1.0);

  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_version != seen_catalog_version_) {
    if (!entries_.empty()) InvalidateLocked();
    seen_catalog_version_ = catalog_version;
  }
  auto it = entries_.find(shape_signature);
  if (it != entries_.end()) {
    // Replace: the re-optimization escalation swaps the stale/out-of-band
    // entry for the fresh one. (A concurrent double-optimize lands here
    // too; both entries are fresh and equivalent, so last-wins is fine.)
    it->second.entry = entry;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return entry;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(shape_signature);
  entries_.emplace(shape_signature, Slot{entry, lru_.begin()});
  return entry;
}

void PlanCache::RecordObservedLambdas(
    const std::shared_ptr<const CachedPlan>& entry,
    const std::vector<FilterStats>& filters) {
  if (entry == nullptr || options_.lambda_drift_margin <= 0) return;
  bool drifted = false;
  {
    std::lock_guard<std::mutex> feedback(entry->feedback_mu);
    for (const FilterStats& fs : filters) {
      if (!fs.created || fs.probed <= 0 || fs.filter_id < 0) continue;
      const size_t id = static_cast<size_t>(fs.filter_id);
      if (id >= entry->lambda_ewma.size()) continue;
      const double observed = fs.ObservedLambda();
      double& ewma = entry->lambda_ewma[id];
      ewma = ewma < 0 ? observed
                      : (1.0 - options_.lambda_ewma_alpha) * ewma +
                            options_.lambda_ewma_alpha * observed;
      if (std::abs(ewma - entry->estimated_lambda[id]) >
          options_.lambda_drift_margin) {
        drifted = true;
      }
    }
  }
  // exchange, not store: drift_invalidations counts entries marked, not
  // post-stale executions that drift again.
  if (drifted && !entry->stale.exchange(true)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.drift_invalidations;
  }
}

void PlanCache::InvalidateLocked() {
  entries_.clear();
  lru_.clear();
  ++stats_.invalidations;
}

void PlanCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateLocked();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out = stats_;
  out.entries = static_cast<int64_t>(entries_.size());
  return out;
}

}  // namespace bqo

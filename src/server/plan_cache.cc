#include "src/server/plan_cache.h"

#include <algorithm>
#include <utility>

#include "src/common/string_util.h"

namespace bqo {

PlanCache::PlanCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::string PlanCache::Signature(const JoinGraph& graph,
                                 const OptimizerOptions& options) {
  // Optimizer knobs first — they change the produced plan, so they are
  // part of the identity of the cached artifact.
  std::string sig = StringFormat(
      "mode=%s;lambda=%.9g;fp=%.9g;dp=%d;exh=%zu", OptimizerModeName(options.mode),
      options.lambda_thresh, options.filter_fp_rate, options.max_dp_relations,
      options.exhaustive_limit);
  // Relations in index order: base table + predicate text (aliases are
  // naming, not semantics — excluded so alias-renamed queries hit).
  for (int r = 0; r < graph.num_relations(); ++r) {
    const RelationRef& rel = graph.relation(r);
    sig += StringFormat(";R%d=%s|", r, rel.table_name.c_str());
    sig += rel.predicate == nullptr ? "true" : rel.predicate->ToString();
  }
  // Edges: endpoints, column lists, and the uniqueness flags Definition 1
  // keys on. BuildJoinGraph emits edges in a deterministic order for a
  // given spec, so equal queries produce equal signatures.
  for (int e = 0; e < graph.num_edges(); ++e) {
    const JoinEdge& edge = graph.edge(e);
    sig += StringFormat(";E%d=%d<%d:", e, edge.left, edge.right);
    sig += JoinStrings(edge.left_cols, ",");
    sig += "=";
    sig += JoinStrings(edge.right_cols, ",");
    sig += StringFormat(":%d%d", edge.left_unique ? 1 : 0,
                        edge.right_unique ? 1 : 0);
  }
  return sig;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    const std::string& signature, int64_t catalog_version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_version != seen_catalog_version_) {
    if (!entries_.empty()) InvalidateLocked();
    seen_catalog_version_ = catalog_version;
  }
  auto it = entries_.find(signature);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // bump to MRU
  return it->second.entry;
}

std::shared_ptr<const CachedPlan> PlanCache::Insert(
    const std::string& signature, int64_t catalog_version,
    const JoinGraph& graph, OptimizedQuery optimized) {
  auto entry = std::make_shared<CachedPlan>();
  entry->graph = graph;  // owned copy: the caller's graph is stack-local
  entry->plan = std::move(optimized.plan);
  entry->plan.graph = &entry->graph;  // re-bind to the stable copy
  entry->estimated_cost = optimized.estimated_cost;
  entry->pruned_filters = optimized.pruned_filters;
  entry->optimize_ns = optimized.optimize_ns;

  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_version != seen_catalog_version_) {
    if (!entries_.empty()) InvalidateLocked();
    seen_catalog_version_ = catalog_version;
  }
  auto it = entries_.find(signature);
  if (it != entries_.end()) {
    // A concurrent miss on the same signature optimized twice; keep the
    // first entry so later hits all share one plan, and hand the loser its
    // own (equivalent) result.
    return entry;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(signature);
  entries_.emplace(signature, Slot{entry, lru_.begin()});
  return entry;
}

void PlanCache::InvalidateLocked() {
  entries_.clear();
  lru_.clear();
  ++stats_.invalidations;
}

void PlanCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateLocked();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out = stats_;
  out.entries = static_cast<int64_t>(entries_.size());
  return out;
}

}  // namespace bqo

// Shared worker pool: the engine-wide task substrate for pipeline-parallel
// execution and (via QueryService) concurrent query serving.
//
// Before this layer existed, every parallel drain spawned and joined fresh
// std::threads per query — per hash-join build, per filter fill, per
// exchange. Under one query at a time that only costs spawn latency; under
// concurrent serving it oversubscribes the machine (Q queries x N workers
// threads) and gives the OS scheduler, not the engine, control over who
// runs. The WorkerPool replaces all of those spawn sites: a fixed set of
// persistent workers (sized once, from ExecConfig::pool_threads /
// BQO_POOL_THREADS) pulls tasks off one shared FIFO queue, so total engine
// parallelism is capped at the pool size no matter how many queries are in
// flight.
//
// == Tasks and TaskGroups ==
//
// Work is submitted through a TaskGroup: Spawn() enqueues a task, Wait()
// blocks until every task of the group has finished. The drain sites
// (DrainPipelineParallel, FillFilterParallel, ExchangeOperator) spawn the
// same per-worker closures they used to run on dedicated threads — one
// closure per logical worker, each owning its private worker state — so the
// per-worker-accumulate / merge-once stats discipline and the canonical
// morsel-order reassembly are untouched. Because every closure claims work
// off a shared cursor (or owns a fixed partition), any subset of them
// completes the drain: the pool size changes only *which* OS threads run
// the closures and how many run at once, never the result. That is the
// pool-size-invariance contract, pinned by tests/test_query_service.cc.
//
// == Helping (per-query progress guarantee) ==
//
// Wait() does not just block: while its group has queued-but-unstarted
// tasks, the waiting thread pops and runs them itself. Two consequences:
//
//  * No deadlock and no priority inversion for group-awaited drains: a
//    query whose tasks are stuck behind other queries' tasks in the queue
//    executes them on its own client thread — so for every drain that ends
//    in Wait() (build drains, filter fills, pre-aggregating exchanges,
//    i.e. everything the executor compiles) an admitted query always has
//    at least one thread (its own) making progress. The one surface
//    without this floor is a *raw-mode* exchange (test/bench-only; never
//    compiled by the executor), whose consumer parks in Next() rather
//    than Wait() — its producers still complete (all tasks are finite),
//    but may serialize behind co-running queries' tasks first. That parked
//    consumer is woken promptly on abort, cancel, or deadline expiry
//    (exchange.h registers a cancel listener with the query's context), so
//    even the raw-mode surface unwinds in bounded time when its query dies.
//  * A pool of size 1 still runs every multi-worker drain correctly (the
//    driver helps), which is what single-hardware-thread CI containers do.
//
// Tasks must therefore never block on other tasks *of the same group*
// starting later (the engine's drain closures never do: they run to
// cursor/partition exhaustion independently).
//
// Thread-safety: all members are guarded by one mutex; task completion
// happens-before Wait() returning, so the waiter may read worker states
// written by the tasks without further synchronization.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bqo {

class WorkerPool {
 public:
  /// \brief Spawns `num_threads` persistent workers (clamped to >= 1).
  explicit WorkerPool(int num_threads);
  /// \brief Drains the queue and joins the workers. Every TaskGroup must
  /// have been waited (their destructors do) before the pool dies.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// \brief A batch of tasks whose completion can be awaited. Not
  /// thread-safe per instance (one owner spawns and waits); different
  /// groups submit to the same pool concurrently.
  class TaskGroup {
   public:
    explicit TaskGroup(WorkerPool* pool) : pool_(pool) {}
    ~TaskGroup() { Wait(); }
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// \brief Enqueue `fn` on the pool.
    void Spawn(std::function<void()> fn);

    /// \brief Block until every spawned task has finished, running this
    /// group's queued tasks on the calling thread while it waits (see
    /// header comment on helping).
    void Wait();

   private:
    friend class WorkerPool;
    WorkerPool* pool_;
    int pending_ = 0;  ///< spawned but not finished; guarded by pool_->mu_
  };

  /// \brief The process-wide pool every drain site submits to. Created on
  /// first use, sized once from ExecConfigFromEnv().ResolvedPoolThreads()
  /// (env: BQO_POOL_THREADS; default: one worker per hardware thread).
  static WorkerPool& Global();

  /// \brief Tests/benches: replace the global pool with one of
  /// `num_threads` workers (0 = drop it; the next Global() re-creates from
  /// the environment). Must not be called with tasks in flight.
  static void ResetGlobal(int num_threads);

  /// \brief Thread CPU nanoseconds this thread has spent running tasks
  /// inline inside TaskGroup::Wait() (helping). ExecutePlan subtracts the
  /// delta from its driver-thread CPU so helped task time — already
  /// reported by the tasks themselves — is not counted twice.
  static int64_t InlineTaskCpuNanos();

 private:
  struct Task {
    TaskGroup* group;
    std::function<void()> fn;
  };

  void WorkerLoop();
  /// Run `task` (unlocked), then decrement its group's pending count and
  /// wake waiters. `lock` must be held on entry and is held again on exit.
  void RunTask(Task task, std::unique_lock<std::mutex>* lock,
               bool count_inline_cpu);

  std::mutex mu_;
  std::condition_variable has_work_;   ///< workers: queue non-empty / stop
  std::condition_variable task_done_;  ///< TaskGroup::Wait: a task finished
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace bqo

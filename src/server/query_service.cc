#include "src/server/query_service.h"

#include <algorithm>
#include <utility>

#include "src/server/worker_pool.h"

namespace bqo {

QueryService::QueryService(const Catalog* catalog, QueryServiceOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      stats_(catalog),
      cache_(options_.plan_cache_capacity) {
  const int pool = WorkerPool::Global().num_threads();
  max_concurrent_ = options_.max_concurrent_queries > 0
                        ? options_.max_concurrent_queries
                        : std::max(1, pool);
  // Default share: at full admission the pool is exactly subscribed
  // (max_concurrent * workers_per_query ~= pool). Helping guarantees every
  // admitted query >= 1 running thread regardless.
  workers_per_query_ = options_.max_workers_per_query > 0
                           ? options_.max_workers_per_query
                           : std::max(1, pool / max_concurrent_);
}

void QueryService::Admit() {
  std::unique_lock<std::mutex> lock(admit_mu_);
  admit_cv_.wait(lock, [this] { return active_ < max_concurrent_; });
  ++active_;
  peak_ = std::max(peak_, active_);
}

void QueryService::Release() {
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    --active_;
    ++served_;
  }
  admit_cv_.notify_one();
}

QueryResult QueryService::Execute(const QuerySpec& spec) {
  Admit();

  QueryResult result;
  result.query_name = spec.name;
  result.num_joins = spec.num_joins();

  // Per-query execution options: the spec's aggregate, bitvector use per
  // the optimizer mode, and the worker share clamp. A share of 1 compiles
  // the exact single-threaded plan — no pool tasks at all.
  ExecutionOptions exec = options_.execution;
  exec.agg = spec.agg;
  exec.use_bitvectors = options_.optimizer.mode != OptimizerMode::kNoBitvectors;
  exec.exec.threads =
      std::min(exec.exec.ResolvedThreads(), workers_per_query_);

  std::shared_ptr<const CachedPlan> entry;
  {
    // Shared lock: many queries optimize concurrently; InvalidateCache
    // takes it exclusive so stats references never die under an optimizer.
    std::shared_lock<std::shared_mutex> lock(optimize_mu_);
    auto graph_result = BuildJoinGraph(*catalog_, spec);
    BQO_CHECK_MSG(graph_result.ok(),
                  ("query failed to bind: " + spec.name).c_str());
    const JoinGraph& graph = graph_result.value();

    if (options_.use_plan_cache) {
      const std::string signature =
          PlanCache::Signature(graph, options_.optimizer);
      // One version snapshot spans lookup, optimization, and insert: if
      // the catalog moves on concurrently, the insert must carry the
      // version this plan was optimized under (the cache then drops it at
      // the next lookup) — re-reading here would stamp a stale plan with
      // the new version and serve it forever.
      const int64_t catalog_version = catalog_->version();
      entry = cache_.Lookup(signature, catalog_version);
      result.plan_cache_hit = entry != nullptr;
      if (entry == nullptr) {
        OptimizedQuery optimized =
            OptimizeQuery(graph, &stats_, options_.optimizer);
        result.optimize_ns = optimized.optimize_ns;
        entry = cache_.Insert(signature, catalog_version, graph,
                              std::move(optimized));
      }
    } else {
      OptimizedQuery optimized =
          OptimizeQuery(graph, &stats_, options_.optimizer);
      result.optimize_ns = optimized.optimize_ns;
      // Uncached path still needs the graph to outlive this scope; reuse
      // the cache entry layout without touching the cache.
      auto owned = std::make_shared<CachedPlan>();
      owned->graph = graph;
      owned->plan = std::move(optimized.plan);
      owned->plan.graph = &owned->graph;
      owned->estimated_cost = optimized.estimated_cost;
      owned->pruned_filters = optimized.pruned_filters;
      owned->optimize_ns = optimized.optimize_ns;
      entry = std::move(owned);
    }
  }
  result.estimated_cost = entry->estimated_cost;
  result.pruned_filters = entry->pruned_filters;

  // Execution is outside the optimize lock: cached plans are read-only
  // (fresh operator tree + FilterRuntime per run) and entry's shared_ptr
  // keeps the plan alive across any concurrent invalidation.
  result.metrics = ExecutePlan(entry->plan, exec);
  for (const FilterStats& fs : result.metrics.filters) {
    if (fs.created && fs.probed > 0) result.used_bitvectors = true;
  }

  Release();
  return result;
}

void QueryService::InvalidateCache() {
  std::unique_lock<std::shared_mutex> lock(optimize_mu_);
  cache_.Invalidate();
  stats_.Invalidate();
}

int QueryService::peak_concurrent() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  return peak_;
}

int64_t QueryService::queries_served() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  return served_;
}

}  // namespace bqo

#include "src/server/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/common/fault_injector.h"
#include "src/common/string_util.h"
#include "src/server/worker_pool.h"
#include "src/stats/estimated_cost.h"

namespace bqo {

QueryServiceOptions ApplyServingEnvOverrides(QueryServiceOptions options) {
  if (const char* d = std::getenv("BQO_DEADLINE_MS")) {
    const long long ms = std::atoll(d);
    if (ms > 0) options.default_deadline_ms = ms;
  }
  if (const char* q = std::getenv("BQO_ADMISSION_QUEUE")) {
    // "0" is meaningful: no waiting at all — run-or-shed admission.
    options.admission_queue_limit = std::atoi(q);
  }
  if (const char* c = std::getenv("BQO_PLAN_CACHE_CAP")) {
    const long long cap = std::atoll(c);
    if (cap > 0) options.plan_cache_capacity = static_cast<size_t>(cap);
  }
  if (const char* b = std::getenv("BQO_SEL_BAND")) {
    // <= 1 is meaningful: banded reuse off, any moved constant
    // re-optimizes.
    options.optimizer.reopt_sel_band = std::atof(b);
  }
  if (const char* m = std::getenv("BQO_DRIFT_MARGIN")) {
    // <= 0 is meaningful: the drift feedback loop is disabled.
    options.lambda_drift_margin = std::atof(m);
  }
  if (const char* a = std::getenv("BQO_EWMA_ALPHA")) {
    const double alpha = std::atof(a);
    if (alpha > 0 && alpha <= 1) options.lambda_ewma_alpha = alpha;
  }
  if (const char* bc = std::getenv("BQO_BUILD_CACHE")) {
    const std::string v(bc);
    if (v == "off" || v == "0") options.use_build_cache = false;
  }
  if (const char* mb = std::getenv("BQO_BUILD_CACHE_MB")) {
    const long long bound = std::atoll(mb);
    if (bound > 0) options.build_cache_mb = bound;
  }
  if (const char* t = std::getenv("BQO_TRACE")) {
    const std::string v(t);
    if (v == "off" || v == "0") options.collect_traces = false;
  }
  if (const char* s = std::getenv("BQO_SLOW_QUERY_MS")) {
    // 0 is meaningful: log every finished query.
    options.slow_query_ms = std::atoll(s);
  }
  return options;
}

namespace {

PlanCacheOptions CacheOptionsFrom(const QueryServiceOptions& options) {
  PlanCacheOptions cache;
  cache.capacity = options.plan_cache_capacity;
  cache.lambda_drift_margin = options.lambda_drift_margin;
  cache.lambda_ewma_alpha = options.lambda_ewma_alpha;
  return cache;
}

}  // namespace

QueryService::QueryService(const Catalog* catalog, QueryServiceOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      stats_(catalog),
      cache_(CacheOptionsFrom(options_)) {
  if (options_.use_build_cache) {
    BuildCacheOptions bc;
    bc.max_bytes = options_.build_cache_mb << 20;
    build_cache_ = std::make_unique<BuildCache>(bc);
  }
  const int pool = WorkerPool::Global().num_threads();
  max_concurrent_ = options_.max_concurrent_queries > 0
                        ? options_.max_concurrent_queries
                        : std::max(1, pool);
  // Default share: at full admission the pool is exactly subscribed
  // (max_concurrent * workers_per_query ~= pool). Helping guarantees every
  // admitted query >= 1 running thread regardless.
  workers_per_query_ = options_.max_workers_per_query > 0
                           ? options_.max_workers_per_query
                           : std::max(1, pool / max_concurrent_);
  RegisterMetrics();
}

void QueryService::RegisterMetrics() {
  served_total_ = registry_.GetCounter("bqo_serving_served_total");
  shed_total_ = registry_.GetCounter("bqo_serving_shed_total");
  timed_out_total_ = registry_.GetCounter("bqo_serving_timed_out_total");
  cancelled_total_ = registry_.GetCounter("bqo_serving_cancelled_total");
  failed_total_ = registry_.GetCounter("bqo_serving_failed_total");
  slow_queries_total_ =
      registry_.GetCounter("bqo_serving_slow_queries_total");
  query_latency_ms_ = registry_.GetHistogram("bqo_query_latency_ms");
  admission_wait_ms_ = registry_.GetHistogram("bqo_admission_wait_ms");
  static const char* kPlanCacheNames[9] = {
      "bqo_plan_cache_hits",          "bqo_plan_cache_misses",
      "bqo_plan_cache_evictions",     "bqo_plan_cache_invalidations",
      "bqo_plan_cache_entries",       "bqo_plan_cache_shape_hits",
      "bqo_plan_cache_rebinds",       "bqo_plan_cache_reoptimizations",
      "bqo_plan_cache_drift_invalidations"};
  for (int i = 0; i < 9; ++i) {
    plan_cache_gauges_[i] = registry_.GetGauge(kPlanCacheNames[i]);
  }
  static const char* kBuildCacheNames[8] = {
      "bqo_build_cache_lookups",   "bqo_build_cache_hits",
      "bqo_build_cache_misses",    "bqo_build_cache_single_flight_waits",
      "bqo_build_cache_evictions", "bqo_build_cache_invalidations",
      "bqo_build_cache_entries",   "bqo_build_cache_bytes"};
  for (int i = 0; i < 8; ++i) {
    build_cache_gauges_[i] = registry_.GetGauge(kBuildCacheNames[i]);
  }
  static const char* kAdmissionNames[3] = {"bqo_admission_active",
                                           "bqo_admission_waiting",
                                           "bqo_admission_peak"};
  for (int i = 0; i < 3; ++i) {
    admission_gauges_[i] = registry_.GetGauge(kAdmissionNames[i]);
  }
}

Status QueryService::Admit(QueryContext* ctx) {
  // A waiter parked on admit_cv_ is woken promptly on cancellation via a
  // context listener. Registered outside admit_mu_ (Cancel holds the
  // context mutex and the listener takes admit_mu_ — query_context.h's
  // lock-ordering contract), and inside the wait loop only the flag-only
  // IsCancelled() is consulted, never ctx->status().
  const int64_t listener = ctx->AddCancelListener([this] {
    std::lock_guard<std::mutex> lock(admit_mu_);
    admit_cv_.notify_all();
  });

  // The admission wait is bounded by the query deadline and, independently,
  // by the service's admission timeout (whichever is sooner).
  bool bounded_wait = ctx->has_deadline();
  auto wait_deadline = bounded_wait
                           ? ctx->deadline()
                           : std::chrono::steady_clock::time_point::max();
  if (options_.admission_timeout_ms > 0) {
    const auto cap = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options_.admission_timeout_ms);
    wait_deadline = bounded_wait ? std::min(wait_deadline, cap) : cap;
    bounded_wait = true;
  }

  enum class Outcome { kAdmitted, kShed, kTimedOut, kCancelled };
  Outcome outcome;
  {
    std::unique_lock<std::mutex> lock(admit_mu_);
    if (active_ < max_concurrent_ && !ctx->IsCancelled()) {
      outcome = Outcome::kAdmitted;
    } else if (ctx->IsCancelled()) {
      outcome = Outcome::kCancelled;
    } else if (options_.admission_queue_limit >= 0 &&
               waiting_ >= options_.admission_queue_limit) {
      // Load shed: the house and the queue are both full. Rejecting now
      // (rather than queueing unboundedly) keeps the wait of the queries
      // we do accept bounded — the clients that are told "no" can back
      // off instead of timing out after burning a slot in line.
      outcome = Outcome::kShed;
    } else {
      ++waiting_;
      for (;;) {
        if (ctx->IsCancelled()) {
          outcome = Outcome::kCancelled;
          break;
        }
        if (active_ < max_concurrent_) {
          outcome = Outcome::kAdmitted;
          break;
        }
        if (bounded_wait) {
          if (std::chrono::steady_clock::now() >= wait_deadline) {
            outcome = Outcome::kTimedOut;
            break;
          }
          admit_cv_.wait_until(lock, wait_deadline);
        } else {
          admit_cv_.wait(lock);
        }
      }
      --waiting_;
    }
    if (outcome == Outcome::kAdmitted) {
      ++active_;
      peak_ = std::max(peak_, active_);
    }
  }
  ctx->RemoveCancelListener(listener);  // outside admit_mu_; see above

  switch (outcome) {
    case Outcome::kAdmitted:
      return Status::OK();
    case Outcome::kShed:
      return Status::ResourceExhausted("admission queue full: load shed");
    case Outcome::kTimedOut:
      // Whether the query's own deadline or the service's admission
      // timeout fired, the query is over either way: cancel it so any
      // client-side observers see the same first error we return.
      ctx->ShouldStop();  // self-cancel if the query deadline passed
      ctx->Cancel(Status::DeadlineExceeded("admission wait timed out"));
      return ctx->status();
    case Outcome::kCancelled:
      return ctx->status();
  }
  return Status::Internal("unreachable");
}

void QueryService::Release() {
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    --active_;
  }
  // notify_all, not notify_one: with deadlines and cancellation a wake can
  // land on a waiter that is about to give up, and a lost wakeup would
  // strand the rest of the queue until the next release.
  admit_cv_.notify_all();
}

void QueryService::RecordOutcome(const Status& status) {
  if (status.ok()) {
    served_total_->Increment();
  } else if (status.IsResourceExhausted()) {
    shed_total_->Increment();
  } else if (status.IsDeadlineExceeded()) {
    timed_out_total_->Increment();
  } else if (status.IsCancelled()) {
    cancelled_total_->Increment();
  } else {
    failed_total_->Increment();
  }
}

QueryResult QueryService::Execute(const QuerySpec& spec,
                                  QueryContext* caller_ctx) {
  // Every query runs under a context; the client's (cancellable from
  // outside) or a private one. The service's default deadline applies only
  // when the client didn't set a tighter one of their own.
  QueryContext private_ctx;
  QueryContext* ctx = caller_ctx != nullptr ? caller_ctx : &private_ctx;
  if (!ctx->has_deadline() && options_.default_deadline_ms > 0) {
    ctx->SetDeadlineAfterMs(options_.default_deadline_ms);
  }

  QueryResult result;
  result.query_name = spec.name;
  result.num_joins = spec.num_joins();

  // Tracing: the context owns the trace for the duration of the call so
  // every layer below (plan cache, executor, hash-join builds) reaches it
  // through the one shared handle they already hold.
  const auto started = std::chrono::steady_clock::now();
  QueryTrace* trace = nullptr;
  if (options_.collect_traces) {
    ctx->AttachTrace(std::make_unique<QueryTrace>());
    trace = ctx->trace();
  }
  const int query_span =
      trace != nullptr ? trace->BeginSpan(SpanKind::kQuery, spec.name) : -1;

  Status admitted;
  {
    ScopedSpan admit_span(trace, SpanKind::kAdmissionWait, "admit");
    admitted = Admit(ctx);
  }
  admission_wait_ms_->Observe(
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - started)
              .count()) /
      1e6);
  if (!admitted.ok()) {
    // Shed, timed out in line, or cancelled while waiting: never ran, no
    // slot to release.
    result.status = admitted;
    RecordOutcome(result.status);
    FinishQuery(&result, ctx, query_span, started);
    return result;
  }
  if (options_.post_admit_hook) options_.post_admit_hook();

  // Per-query execution options: the spec's aggregate, bitvector use per
  // the optimizer mode, the worker share clamp, and the query's context.
  // A share of 1 compiles the exact single-threaded plan — no pool tasks
  // at all.
  ExecutionOptions exec = options_.execution;
  exec.agg = spec.agg;
  exec.use_bitvectors = options_.optimizer.mode != OptimizerMode::kNoBitvectors;
  exec.exec.threads =
      std::min(exec.exec.ResolvedThreads(), workers_per_query_);
  exec.context = ctx;

  // Fault hook at the planning surface: fails the query after admission
  // but before any optimizer or execution state exists (the earliest
  // post-admission failure a real serving stack sees).
  {
    Status fault =
        FaultInjector::Global().Check(FaultInjector::Site::kPlanCacheLookup);
    if (!fault.ok()) ctx->Cancel(std::move(fault));
  }

  // ShouldStop rather than IsCancelled: a deadline that expired during the
  // admission wait must stop the query here, before planning.
  // `entry` outlives the block: the EXPLAIN ANALYZE report below re-costs
  // the executed plan after the outcome is final.
  std::shared_ptr<const CachedPlan> entry;
  if (!ctx->ShouldStop()) {
    std::shared_ptr<const CachedPlan> feedback_entry;
    int64_t planned_version = 0;
    {
      // Shared lock: many queries optimize concurrently; InvalidateCache
      // takes it exclusive so stats references never die under an
      // optimizer.
      std::shared_lock<std::shared_mutex> lock(optimize_mu_);
      // One version snapshot spans plan-cache lookup, optimization,
      // insert, *and* execution: the build cache keys shared build sides
      // under the version this plan was bound to, so a concurrent catalog
      // bump can never pair a new-version build with an old-version plan
      // (or vice versa).
      planned_version = catalog_->version();
      if (options_.use_plan_cache) {
        // Statistics are deferred: a shape hit re-estimates only the
        // relations whose constants moved (inside Lookup); the miss and
        // escalation paths attach the full statistics below, before
        // optimizing.
        auto graph_result =
            BuildJoinGraph(*catalog_, spec, /*attach_statistics=*/false);
        BQO_CHECK_MSG(graph_result.ok(),
                      ("query failed to bind: " + spec.name).c_str());
        JoinGraph& graph = graph_result.value();
        const std::string signature =
            PlanCache::ShapeSignature(graph, options_.optimizer);
        // The snapshot above also covers lookup and insert: if the catalog
        // moves on concurrently, the insert must carry the version this
        // plan was optimized under (the cache then drops it at the next
        // lookup) — re-reading here would stamp a stale plan with the new
        // version and serve it forever.
        ScopedSpan lookup_span(trace, SpanKind::kPlanCacheLookup, "lookup");
        PlanCache::LookupOutcome looked =
            cache_.Lookup(signature, planned_version, graph, trace);
        lookup_span.End();
        if (looked.kind == PlanCache::LookupOutcome::Kind::kServed) {
          result.plan_cache_hit = true;
          result.plan_rebound = looked.rebound;
          entry = std::move(looked.instance);
          feedback_entry = std::move(looked.entry);
        } else {
          // Miss — or an escalation (out-of-band re-bound selectivity, or
          // an entry gone stale under lambda drift), where Insert
          // replaces the refused entry.
          ScopedSpan optimize_span(trace, SpanKind::kOptimize, "optimize");
          AttachStatistics(&graph);
          ParameterizedPlan optimized =
              OptimizeParameterized(graph, &stats_, options_.optimizer);
          optimize_span.End();
          result.optimize_ns = optimized.optimized.optimize_ns;
          entry = cache_.Insert(signature, planned_version, graph,
                                std::move(optimized));
          feedback_entry = entry;
        }
      } else {
        auto graph_result = BuildJoinGraph(*catalog_, spec);
        BQO_CHECK_MSG(graph_result.ok(),
                      ("query failed to bind: " + spec.name).c_str());
        const JoinGraph& graph = graph_result.value();
        ScopedSpan optimize_span(trace, SpanKind::kOptimize, "optimize");
        OptimizedQuery optimized =
            OptimizeQuery(graph, &stats_, options_.optimizer);
        optimize_span.End();
        result.optimize_ns = optimized.optimize_ns;
        // Uncached path still needs the graph to outlive this scope; reuse
        // the cache entry layout without touching the cache.
        auto owned = std::make_shared<CachedPlan>();
        owned->graph = graph;
        owned->plan = std::move(optimized.plan);
        owned->plan.graph = &owned->graph;
        owned->estimated_cost = optimized.estimated_cost;
        owned->pruned_filters = optimized.pruned_filters;
        owned->optimize_ns = optimized.optimize_ns;
        entry = std::move(owned);
      }
    }
    result.estimated_cost = entry->estimated_cost;
    result.pruned_filters = entry->pruned_filters;

    // Execution is outside the optimize lock: cached plans are read-only
    // (fresh operator tree + FilterRuntime per run) and entry's shared_ptr
    // keeps the plan alive across any concurrent invalidation. Shared
    // build sides ride under the version the plan was bound to.
    exec.build_cache = build_cache_.get();
    exec.catalog_version = planned_version;
    result.metrics = ExecutePlan(entry->plan, exec);
    for (const FilterStats& fs : result.metrics.filters) {
      if (fs.created && fs.probed > 0) result.used_bitvectors = true;
    }
    // Feedback: fold the observed per-filter lambdas into the cache entry
    // — only for complete executions; a cancelled or fault-struck query's
    // partial counters are void by contract and must not poison the EWMA.
    if (feedback_entry != nullptr && ctx->status().ok()) {
      cache_.RecordObservedLambdas(feedback_entry, result.metrics.filters);
    }
  }

  // The query's outcome is its context's first error — OK for a clean run,
  // else whatever cancelled it (client cancel, deadline, injected fault).
  // The admission slot is released unconditionally: a cancelled query must
  // never leak capacity.
  result.status = ctx->status();
  Release();
  RecordOutcome(result.status);
  FinishQuery(&result, ctx, query_span, started);

  // EXPLAIN ANALYZE: recover the optimizer's per-node cardinality
  // estimates for the executed plan (under the shared optimize lock — the
  // cost model reads the StatsCatalog) and join them with the executed
  // metrics and the sealed trace. OK queries only: a cancelled query's
  // counters are void by contract.
  if (options_.explain_analyze && result.status.ok() && entry != nullptr) {
    std::shared_lock<std::shared_mutex> lock(optimize_mu_);
    CoutBreakdown estimates =
        EstimatedCoutModel(&stats_, options_.optimizer.filter_fp_rate)
            .Compute(entry->plan);
    auto report = std::make_shared<ExplainReport>(
        BuildExplainReport(entry->plan, result.metrics, estimates,
                           exec.filter_config, result.trace.get()));
    report->query_name = spec.name;
    result.explain = std::move(report);
  }
  return result;
}

void QueryService::FinishQuery(
    QueryResult* result, QueryContext* ctx, int query_span,
    std::chrono::steady_clock::time_point started) {
  const double total_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - started)
              .count()) /
      1e6;
  query_latency_ms_->Observe(total_ms);

  QueryTrace* trace = ctx->trace();
  if (trace != nullptr) {
    // A clean query closes its root span; a failed one leaves it (and
    // anything the unwind skipped) open for Seal to mark truncated — the
    // trace records how far the query got either way.
    if (result->status.ok() && query_span >= 0) trace->EndSpan(query_span);
    trace->Seal(result->status.ok(), result->status.ToString());
    result->trace = std::shared_ptr<const QueryTrace>(ctx->DetachTrace());
  }

  if (options_.slow_query_ms >= 0 &&
      total_ms >= static_cast<double>(options_.slow_query_ms)) {
    slow_queries_total_->Increment();
    std::string report = StringFormat(
        "[slow query] %s: status %s, wall %.3f ms, cpu %.3f ms, "
        "rows %lld%s%s\n",
        result->query_name.c_str(), result->status.ToString().c_str(),
        total_ms, static_cast<double>(result->metrics.cpu_ns) / 1e6,
        static_cast<long long>(result->metrics.result_rows),
        result->plan_cache_hit ? ", plan cache hit" : "",
        result->plan_rebound ? " (rebound)" : "");
    if (result->trace != nullptr) {
      report += RenderSpans(result->trace->spans());
    }
    if (options_.slow_query_sink) {
      options_.slow_query_sink(report);
    } else {
      std::fprintf(stderr, "%s", report.c_str());
    }
  }
}

std::string QueryService::DumpMetrics(MetricsFormat format) const {
  // Mirror the component-owned counters into gauges, then render one
  // snapshot. Each metric reads atomically (or under its component's own
  // mutex), so a mid-run dump never sees a torn value.
  const PlanCacheStats pc = cache_.stats();
  const int64_t pc_values[9] = {
      pc.hits,       pc.misses,  pc.evictions,
      pc.invalidations, pc.entries, pc.shape_hits,
      pc.rebinds,    pc.reoptimizations, pc.drift_invalidations};
  for (int i = 0; i < 9; ++i) plan_cache_gauges_[i]->Set(pc_values[i]);
  const BuildCacheStats bc = build_cache_stats();
  const int64_t bc_values[8] = {
      bc.lookups,   bc.hits,          bc.misses, bc.single_flight_waits,
      bc.evictions, bc.invalidations, bc.entries, bc.bytes};
  for (int i = 0; i < 8; ++i) build_cache_gauges_[i]->Set(bc_values[i]);
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    admission_gauges_[0]->Set(active_);
    admission_gauges_[1]->Set(waiting_);
    admission_gauges_[2]->Set(peak_);
  }
  const std::vector<MetricSnapshot> snapshot = registry_.Snapshot();
  return format == MetricsFormat::kPrometheus
             ? MetricsRegistry::ToPrometheusText(snapshot)
             : MetricsRegistry::ToJsonLines(snapshot);
}

void QueryService::InvalidateCache() {
  std::unique_lock<std::shared_mutex> lock(optimize_mu_);
  cache_.Invalidate();
  stats_.Invalidate();
  // Cached build sides embed the tables' contents, so a data mutation
  // invalidates them too; executing queries keep their shared_ptrs.
  if (build_cache_ != nullptr) build_cache_->Invalidate();
}

int QueryService::peak_concurrent() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  return peak_;
}

int64_t QueryService::queries_served() const {
  return served_total_->Value();
}

ServingStats QueryService::serving_stats() const {
  ServingStats out;
  out.served = served_total_->Value();
  out.shed = shed_total_->Value();
  out.timed_out = timed_out_total_->Value();
  out.cancelled = cancelled_total_->Value();
  out.failed = failed_total_->Value();
  return out;
}

}  // namespace bqo

#include "src/server/build_cache.h"

#include <chrono>
#include <utility>

namespace bqo {

BuildCache::BuildCache(BuildCacheOptions options) : options_(options) {}

std::shared_ptr<const JoinBuildSide> BuildCache::GetOrBuild(
    const std::string& signature, int64_t version, QueryContext* ctx,
    const Builder& builder) {
  // Flights are keyed under the planning version: a query never joins a
  // construction bound to a different catalog snapshot than its plan.
  const std::string flight_key = std::to_string(version) + '|' + signature;
  bool counted_wait = false;

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.lookups;
  if (version > seen_version_) {
    // The catalog moved on: resident builds bind the old snapshot's table
    // contents and must not serve newer plans. Executing queries keep
    // their shared_ptrs — nothing they probe is freed.
    if (seen_version_ >= 0) InvalidateLocked();
    seen_version_ = version;
  } else if (version < seen_version_) {
    // A straggler still executing under an older snapshot: build privately
    // — it may neither share the newer entries nor publish a stale one.
    ++stats_.misses;
    lock.unlock();
    return builder();
  }

  for (;;) {
    auto it = entries_.find(signature);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.side;
    }

    auto fit = flights_.find(flight_key);
    if (fit == flights_.end()) break;  // no construction in flight: lead

    // ---- Waiter: park behind the leader and share its outcome ----
    if (!counted_wait) {
      counted_wait = true;
      ++stats_.single_flight_waits;
    }
    std::shared_ptr<Flight> flight = fit->second;
    while (!flight->done && !flight->abandoned) {
      // The cooperative check runs unlocked: ShouldStop self-cancels on
      // deadline expiry and may invoke cancel listeners, which the
      // context's lock-ordering contract forbids under a held mutex.
      lock.unlock();
      const bool stop = CtxShouldStop(ctx);
      lock.lock();
      if (stop) {
        ++stats_.misses;  // left without a result
        return nullptr;
      }
      if (flight->done || flight->abandoned) break;
      flight->cv.wait_for(lock, std::chrono::milliseconds(2));
    }
    if (flight->done) {
      if (flight->result != nullptr) {
        ++stats_.hits;
        return flight->result;
      }
      // Fail-all: the construction itself failed (not the leader's
      // personal cancellation), so the error applies to every query that
      // needed this build. Cancel outside the cache lock.
      const Status failure = flight->status;
      ++stats_.misses;
      lock.unlock();
      if (ctx != nullptr) ctx->Cancel(failure);
      return nullptr;
    }
    // Handoff: the leader was cancelled and abandoned the flight. Loop
    // around — re-check the cache, then race to lead with our own builder.
  }

  // ---- Leader: construct outside the lock ----
  auto flight = std::make_shared<Flight>();
  flights_[flight_key] = flight;
  ++stats_.misses;  // this query pays the construction (or its failure)
  lock.unlock();

  std::shared_ptr<const JoinBuildSide> side = builder();
  bool handoff = false;
  Status failure;
  if (side == nullptr) {
    const Status st =
        ctx != nullptr ? ctx->status() : Status::Internal("build failed");
    if (st.IsCancelled() || st.IsDeadlineExceeded()) {
      // Personal failure: this query is over, but the build is still
      // wanted — hand the flight off instead of failing the waiters.
      handoff = true;
    } else {
      failure = st.ok() ? Status::Internal("build failed") : st;
    }
  }

  lock.lock();
  flights_.erase(flight_key);
  if (side != nullptr) {
    flight->result = side;
    flight->done = true;
    // Publish — unless the catalog moved on mid-construction (the waiters,
    // who planned under the same version, still share the result; it just
    // must not outlive its snapshot in the cache).
    if (version == seen_version_ && options_.max_bytes > 0) {
      lru_.push_front(signature);
      entries_[signature] = Slot{side, lru_.begin()};
      stats_.bytes += side->SizeBytes();
      ++stats_.entries;
      EvictLocked();
    }
  } else if (handoff) {
    flight->abandoned = true;
  } else {
    flight->done = true;
    flight->status = failure;
  }
  flight->cv.notify_all();
  return side;
}

void BuildCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateLocked();
}

BuildCacheStats BuildCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BuildCache::InvalidateLocked() {
  entries_.clear();
  lru_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
  ++stats_.invalidations;
}

void BuildCache::EvictLocked() {
  // Walk the LRU tail toward the front, dropping entries until the bound
  // holds. Entries another query is executing (an external reference
  // beyond the cache's own) are skipped — the bound may be transiently
  // exceeded, but an in-use build is never dropped from the map.
  auto it = lru_.end();
  while (stats_.bytes > options_.max_bytes && it != lru_.begin()) {
    --it;
    auto sit = entries_.find(*it);
    if (sit->second.side.use_count() > 1) continue;  // in use: keep
    stats_.bytes -= sit->second.side->SizeBytes();
    --stats_.entries;
    ++stats_.evictions;
    entries_.erase(sit);
    it = lru_.erase(it);
  }
}

}  // namespace bqo

#include "src/server/worker_pool.h"

#include <algorithm>
#include <memory>

#include "src/common/macros.h"
#include "src/common/thread_clock.h"
#include "src/exec/exec_config.h"

namespace bqo {

namespace {

/// CPU time this thread has spent running tasks inline via Wait() helping;
/// see WorkerPool::InlineTaskCpuNanos.
thread_local int64_t tls_inline_task_cpu_ns = 0;

std::mutex g_global_mu;
std::unique_ptr<WorkerPool> g_global_pool;

}  // namespace

WorkerPool::WorkerPool(int num_threads) {
  const int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back(&WorkerPool::WorkerLoop, this);
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    has_work_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  // Live TaskGroups wait in their destructors, so an orphaned task here
  // means a group outlived its pool — a structural bug.
  BQO_CHECK_MSG(queue_.empty(), "WorkerPool destroyed with queued tasks");
}

void WorkerPool::RunTask(Task task, std::unique_lock<std::mutex>* lock,
                         bool count_inline_cpu) {
  lock->unlock();
  const int64_t start = count_inline_cpu ? ThreadCpuNanos() : 0;
  task.fn();
  if (count_inline_cpu) tls_inline_task_cpu_ns += ThreadCpuNanos() - start;
  lock->lock();
  if (--task.group->pending_ == 0) task_done_.notify_all();
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    has_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping, and nothing left to run
    Task task = std::move(queue_.front());
    queue_.pop_front();
    RunTask(std::move(task), &lock, /*count_inline_cpu=*/false);
  }
}

void WorkerPool::TaskGroup::Spawn(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(pool_->mu_);
  ++pending_;
  pool_->queue_.push_back(Task{this, std::move(fn)});
  pool_->has_work_.notify_one();
}

void WorkerPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(pool_->mu_);
  while (pending_ > 0) {
    // Help: run this group's queued tasks on the waiting thread, so the
    // group finishes even when every pool worker is busy elsewhere.
    auto it = std::find_if(pool_->queue_.begin(), pool_->queue_.end(),
                           [this](const Task& t) { return t.group == this; });
    if (it != pool_->queue_.end()) {
      Task task = std::move(*it);
      pool_->queue_.erase(it);
      pool_->RunTask(std::move(task), &lock, /*count_inline_cpu=*/true);
      continue;
    }
    pool_->task_done_.wait(lock);
  }
}

WorkerPool& WorkerPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = std::make_unique<WorkerPool>(
        ExecConfigFromEnv().ResolvedPoolThreads());
  }
  return *g_global_pool;
}

void WorkerPool::ResetGlobal(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_pool =
      num_threads > 0 ? std::make_unique<WorkerPool>(num_threads) : nullptr;
}

int64_t WorkerPool::InlineTaskCpuNanos() { return tls_inline_task_cpu_ns; }

}  // namespace bqo

// BuildCache: cross-query sharing of hash-join build sides with
// single-flight construction.
//
// Under concurrent serving, admitted queries over the same catalog rebuild
// identical build sides — the same dimension table drained, hashed,
// bucketized, and poured into the same bitvector filter, once per query.
// The paper amortizes filter construction across probes (Section 6.3's
// cost model charges the build once against every probe it saves); this
// cache amortizes it across *queries* as well: completed build results
// (src/exec/build_side.h) are memoized under a canonical build signature
// (src/optimizer/build_signature.h) and shared read-only.
//
// == Single-flight construction ==
//
// N queries that miss on the same signature at once must not build N
// times. The first becomes the **leader**: it registers a flight and runs
// its own builder closure outside the cache lock. Later arrivals become
// **waiters**: they park on the flight's condition variable (polling their
// own QueryContext so cancellation and deadlines stay cooperative) and
// share the leader's result when it lands. Flight resolution:
//
//   * success      — the result is handed to every waiter and published to
//                    the cache (unless the catalog version moved on while
//                    building, in which case the waiters — who planned
//                    under the same version — still get it, but nothing
//                    stale is published);
//   * leader cancelled / deadline — **handoff**: the flight is abandoned
//                    and one of the waiters loops around to lead with its
//                    own builder; the leader's personal failure never
//                    poisons the entry or the waiters;
//   * internal error (e.g. an injected kFilterFill fault) — **fail-all**:
//                    every current waiter's context is cancelled with the
//                    leader's status (the error is a property of the build,
//                    not of one query) and the flight is erased, so the
//                    next lookup starts a clean construction.
//
// == Lifetime, eviction, invalidation ==
//
// Entries are shared_ptr<const JoinBuildSide>: eviction or invalidation
// never frees a build an executing plan still probes — it only drops the
// cache's reference. The LRU eviction loop additionally skips entries with
// live external references (use_count > 1), so a memory-bounded cache
// under churn keeps in-use entries resident rather than thrashing them.
// Every entry and flight is keyed under the catalog version the query
// planned with: a lookup under a newer version flushes resident entries
// (one invalidation), and an older in-flight build neither joins a newer
// flight nor publishes into the newer cache.
//
// Counters are reported as BuildCacheStats (src/exec/metrics.h); see the
// invariants documented there.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/exec/build_side.h"
#include "src/exec/metrics.h"
#include "src/exec/query_context.h"

namespace bqo {

struct BuildCacheOptions {
  /// Memory bound on resident entries; LRU-evicted past it (in-use entries
  /// are skipped, so the bound can be transiently exceeded while every
  /// resident entry is being executed). <= 0 caches nothing — every
  /// lookup builds privately, single-flight still applies.
  int64_t max_bytes = 64ll << 20;
};

class BuildCache {
 public:
  /// Constructs the caller's build side; returns null when the query was
  /// cancelled (or failed) mid-construction — a partial build must never
  /// be published.
  using Builder = std::function<std::shared_ptr<const JoinBuildSide>()>;

  explicit BuildCache(BuildCacheOptions options);

  /// \brief Single-flight lookup-or-build (see the header comment).
  /// `version` is the catalog version the query planned under; `ctx` may
  /// be null (the lookup is then uncancellable, like a plain build).
  /// Returns the shared (or freshly built) side, or null when this query
  /// was cancelled — by its own deadline/client, or by a failed leader —
  /// before a result existed. A null return with an OK context does not
  /// happen.
  std::shared_ptr<const JoinBuildSide> GetOrBuild(const std::string& signature,
                                                  int64_t version,
                                                  QueryContext* ctx,
                                                  const Builder& builder);

  /// \brief Drop every resident entry (counted as one invalidation).
  /// In-flight constructions are unaffected: their queries planned under
  /// the version they carry and complete normally, they just no longer
  /// publish.
  void Invalidate();

  BuildCacheStats stats() const;

 private:
  /// One in-flight construction. Waiters hold a shared_ptr so the leader
  /// can erase the map entry while they are still reading the outcome.
  struct Flight {
    std::condition_variable cv;
    bool done = false;       ///< result or failure is final
    bool abandoned = false;  ///< leader cancelled: a waiter should take over
    std::shared_ptr<const JoinBuildSide> result;
    Status status;  ///< fail-all status when done && result == nullptr
  };

  struct Slot {
    std::shared_ptr<const JoinBuildSide> side;
    std::list<std::string>::iterator lru_pos;  ///< into lru_ (MRU front)
  };

  /// Flush resident entries; caller holds mu_.
  void InvalidateLocked();
  /// Evict LRU entries past the memory bound, skipping in-use ones;
  /// caller holds mu_.
  void EvictLocked();

  const BuildCacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  int64_t seen_version_ = -1;
  BuildCacheStats stats_;
};

}  // namespace bqo

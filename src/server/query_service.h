// QueryService: the concurrent query-serving front door.
//
// PRs 1-4 made a *single* query run as fast as the hardware allows; this
// layer turns that into sustained throughput under traffic. N client
// threads call Execute() concurrently; the service
//
//  1. **Admits** — at most `max_concurrent_queries` queries run at once
//     (the rest block FIFO-ish on a condition variable), and each admitted
//     query's logical worker count is clamped to `workers_per_query`, so
//     one heavy query cannot monopolize the shared WorkerPool. Because
//     every drain's Wait() helps (worker_pool.h), an admitted query always
//     has at least its own client thread running tasks — the share floor
//     is 1 even when the pool is saturated. Under overload the wait is
//     bounded two ways: at most `admission_queue_limit` queries wait at
//     once (excess requests are *shed* immediately with
//     kResourceExhausted), and a waiter whose deadline — or the service's
//     `admission_timeout_ms` — expires leaves with kDeadlineExceeded. A
//     cancelled waiter is woken promptly via a context cancel listener.
//  2. **Plans** — binds the QuerySpec to a JoinGraph (statistics
//     deferred), then consults the PlanCache under the query's canonical
//     *shape* signature (literals as slots, src/plan/predicate_shape.h).
//     A shape hit re-binds the query's constants into the cached plan,
//     re-estimating only the relations whose slots moved, and serves the
//     cached join order while those selectivities stay inside the entry's
//     validity band (src/optimizer/parameterized.h) — skipping the
//     optimizer entirely (amortizing the paper's Section 6.5 overhead). A
//     miss — or an escalation (selectivity out of band, or the entry
//     marked stale by observed-lambda drift) — attaches full statistics
//     and runs OptimizeParameterized against the shared thread-safe
//     StatsCatalog, caching (or replacing) the entry. After an OK
//     execution the observed per-filter lambdas feed back into the entry
//     (PlanCache::RecordObservedLambdas).
//  3. **Executes** — ExecutePlan on the caller's thread under the query's
//     QueryContext (cancellation + deadline + first-error slot,
//     query_context.h); all pipeline parallelism inside flows through the
//     shared WorkerPool, so total engine threads stay bounded by the pool
//     size regardless of client count. A cancelled, deadline-expired, or
//     fault-struck query unwinds cooperatively in bounded time, releases
//     its admission slot, and leaves the pool serving its neighbors; its
//     first error surfaces in QueryResult::status and its partial metrics
//     must be treated as void.
//
// Results and merged stats are identical to a single-query threads==1 run
// of the same spec — admission, pooling, and caching are pure scheduling
// (pinned by tests/test_query_service.cc under TSan). Every request lands
// in exactly one ServingStats bucket (metrics.h) keyed by its final status.
//
// Executions also share completed hash-join build sides through a
// BuildCache with single-flight construction (src/server/build_cache.h):
// N concurrent queries needing the same build pay for it once and share
// the immutable result read-only, with per-query FilterStats and scan
// counters replayed as-if-built so every parity invariant above still
// holds bit-for-bit.
//
// Invalidation: InvalidateCache() (or any Catalog::version() bump observed
// at lookup) flushes cached plans and cached build sides; InvalidateCache
// also refreshes the StatsCatalog, and excludes itself from in-flight
// optimizations via a shared mutex, so it is safe to call between/during
// requests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/exec/executor.h"
#include "src/exec/query_context.h"
#include "src/obs/explain.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/optimizer/optimizer.h"
#include "src/server/build_cache.h"
#include "src/server/plan_cache.h"
#include "src/stats/table_stats.h"
#include "src/workload/query.h"

namespace bqo {

struct QueryServiceOptions {
  OptimizerOptions optimizer;
  /// Template for per-query execution: `agg` and `use_bitvectors` are
  /// overridden per query (from the spec / the optimizer mode), and
  /// `exec.threads` is clamped to the per-query worker share.
  ExecutionOptions execution;
  /// Queries allowed to run concurrently; 0 = the WorkerPool size.
  int max_concurrent_queries = 0;
  /// Logical workers per admitted query; 0 = pool size divided by
  /// max_concurrent_queries (at least 1), so at full admission the pool is
  /// exactly subscribed.
  int max_workers_per_query = 0;
  size_t plan_cache_capacity = 64;
  bool use_plan_cache = true;
  /// Share completed hash-join build sides (table + bitvector filter)
  /// across queries through a BuildCache with single-flight construction
  /// (src/server/build_cache.h). Off = every query builds privately, the
  /// pre-existing behavior. Env overlay: BQO_BUILD_CACHE=off|0.
  bool use_build_cache = true;
  /// Memory bound of the build-side cache, in MiB; <= 0 keeps the cache
  /// (and its single-flight dedup) but makes nothing resident. Env
  /// overlay: BQO_BUILD_CACHE_MB.
  int64_t build_cache_mb = 64;
  /// Drift margin on observed filter lambda before a cached entry is
  /// marked stale (re-optimized on its next shape hit); <= 0 disables the
  /// feedback loop. Env overlay: BQO_DRIFT_MARGIN.
  double lambda_drift_margin = 0.25;
  /// EWMA smoothing factor for the observed-lambda feedback (0 < alpha
  /// <= 1). Env overlay: BQO_EWMA_ALPHA.
  double lambda_ewma_alpha = 0.3;

  // ---- Overload resilience (all off by default: unbounded queue, no
  // deadline — the permissive pre-existing behavior) ----

  /// Queries allowed to *wait* for admission at once; one more is shed
  /// with kResourceExhausted instead of queueing. < 0 = unbounded.
  /// Env overlay: BQO_ADMISSION_QUEUE (OptionsFromEnv below).
  int admission_queue_limit = -1;
  /// Cap on any query's admission wait, even without a deadline; a waiter
  /// that exceeds it leaves with kDeadlineExceeded. 0 = wait forever
  /// (modulo the query's own deadline, which always bounds the wait).
  int64_t admission_timeout_ms = 0;
  /// Deadline stamped on queries whose context has none (covering
  /// admission wait + execution). 0 = none. Env overlay: BQO_DEADLINE_MS.
  int64_t default_deadline_ms = 0;
  /// Test seam: runs on the client thread right after admission, before
  /// planning — deterministic overload/cancellation tests park admitted
  /// queries here to force a full house without timing races.
  std::function<void()> post_admit_hook;

  // ---- Observability (src/obs) ----

  /// Collect a per-query trace span tree (QueryTrace, handed back in
  /// QueryResult::trace). Spans are per *phase*, never per batch, so the
  /// cost is a handful of clock reads per query; turn off to shave the
  /// last percent at peak qps. Env overlay: BQO_TRACE=off|0.
  bool collect_traces = true;
  /// Build the EXPLAIN ANALYZE estimate-vs-actual report for OK queries
  /// (QueryResult::explain). Off by default: it re-runs the estimated cost
  /// model per query to recover the optimizer's per-node cardinalities.
  bool explain_analyze = false;
  /// Log queries whose wall time (admission wait included) reaches this
  /// many ms to slow_query_sink. -1 = off; 0 = log every finished query
  /// (the deterministic setting tests use). Env overlay: BQO_SLOW_QUERY_MS.
  int64_t slow_query_ms = -1;
  /// Slow-query destination; default writes the report to stderr. The
  /// report carries the query's one-line outcome plus its span tree.
  std::function<void(const std::string&)> slow_query_sink;
};

/// \brief Overlay the serving env knobs (BQO_DEADLINE_MS,
/// BQO_ADMISSION_QUEUE, BQO_PLAN_CACHE_CAP, BQO_SEL_BAND,
/// BQO_DRIFT_MARGIN, BQO_EWMA_ALPHA, BQO_TRACE, BQO_SLOW_QUERY_MS) onto
/// `options` — how bench binaries plumb them in; the library itself never
/// reads the environment.
QueryServiceOptions ApplyServingEnvOverrides(QueryServiceOptions options);

/// \brief One served query's outcome (the concurrent analogue of
/// runner.h's QueryRun, plus serving-layer fields).
struct QueryResult {
  std::string query_name;
  /// OK = `metrics` holds a complete, correct result. Non-OK — kCancelled,
  /// kDeadlineExceeded, kResourceExhausted (shed before running), or the
  /// first internal error (e.g. an injected fault) — means the query was
  /// unwound and every other field is partial or default: void.
  Status status;
  QueryMetrics metrics;
  double estimated_cost = 0;
  int64_t optimize_ns = 0;  ///< 0 on a plan-cache hit (nothing optimized)
  int num_joins = 0;
  int pruned_filters = 0;
  bool used_bitvectors = false;
  bool plan_cache_hit = false;
  /// This query's plan was a shape hit with >= 1 constant slot re-bound
  /// (false on an exact-constant hit, a miss, or a re-optimization).
  bool plan_rebound = false;
  /// The query's sealed trace (options.collect_traces only). A non-OK
  /// query's trace is still well-formed — its open spans are closed as
  /// truncated and the final status is recorded.
  std::shared_ptr<const QueryTrace> trace;
  /// EXPLAIN ANALYZE report (options.explain_analyze, OK queries only):
  /// per-operator est-vs-actual rows and per-filter est/observed lambda +
  /// modeled/measured FPR (src/obs/explain.h).
  std::shared_ptr<const ExplainReport> explain;
};

class QueryService {
 public:
  /// \brief Serve queries against `catalog` (borrowed; must outlive the
  /// service). Admission limits resolve against the global WorkerPool size
  /// at construction.
  QueryService(const Catalog* catalog, QueryServiceOptions options);

  /// \brief Optimize (or fetch from cache) and execute `spec`. Safe to
  /// call from any number of client threads; blocks while the service is
  /// at max_concurrent_queries (bounded by the admission queue limit,
  /// admission timeout, and the query's deadline — see the header comment).
  ///
  /// `ctx` (optional, borrowed for the duration of the call) lets the
  /// client cancel the query or set its own deadline; null runs under a
  /// private context. If neither carries a deadline,
  /// options.default_deadline_ms (when set) is stamped on. The outcome —
  /// including cancellation and shedding — is QueryResult::status; Execute
  /// itself never blocks indefinitely on an overloaded service once a
  /// bound is configured.
  QueryResult Execute(const QuerySpec& spec, QueryContext* ctx = nullptr);

  /// \brief Drop cached plans and cached statistics (call after mutating
  /// table data; DDL is caught automatically via Catalog::version()).
  void InvalidateCache();

  PlanCacheStats cache_stats() const { return cache_.stats(); }
  /// \brief Build-side cache counters; zeros when the cache is disabled.
  BuildCacheStats build_cache_stats() const {
    return build_cache_ != nullptr ? build_cache_->stats()
                                   : BuildCacheStats{};
  }

  int max_concurrent() const { return max_concurrent_; }
  int workers_per_query() const { return workers_per_query_; }
  /// \brief High-water mark of concurrently admitted queries (tests pin
  /// the admission bound with this).
  int peak_concurrent() const;
  /// \brief Queries completed with an OK status (== serving_stats().served).
  int64_t queries_served() const;
  /// \brief Per-outcome request counters (see metrics.h). Assembled from
  /// the registry's atomic counters, so mid-run reads from monitor threads
  /// are exact per field — no torn loads, no lock against the serving path.
  ServingStats serving_stats() const;

  enum class MetricsFormat { kJsonLines, kPrometheus };
  /// \brief Export every engine metric: the serving outcome counters and
  /// latency histograms live in the registry; plan-cache, build-cache, and
  /// admission levels are mirrored into gauges at dump time, then one
  /// snapshot renders in the requested format. Safe to call from a monitor
  /// thread while queries run.
  std::string DumpMetrics(MetricsFormat format = MetricsFormat::kJsonLines)
      const;
  /// \brief This service's metric registry (per-instance, so concurrently
  /// constructed services in tests never mix counters).
  const MetricsRegistry& metrics_registry() const { return registry_; }

 private:
  /// Admit under `ctx`'s deadline/cancellation and the service's queue
  /// bound + wait timeout. OK = a slot is held (pair with Release);
  /// non-OK = the request never ran and the status says why.
  Status Admit(QueryContext* ctx);
  void Release();
  /// Tally `status` into the outcome counters; call exactly once per
  /// Execute(). Lock-free (one relaxed counter add).
  void RecordOutcome(const Status& status);
  /// Register the serving counters/histograms/gauges and cache their
  /// stable pointers (ctor only).
  void RegisterMetrics();
  /// Seal the trace, attach it (and the slow-query report) to `result`,
  /// and record the latency histogram. Call exactly once per Execute(),
  /// after the outcome status is final.
  void FinishQuery(QueryResult* result, QueryContext* ctx, int query_span,
                   std::chrono::steady_clock::time_point started);

  const Catalog* catalog_;
  QueryServiceOptions options_;
  int max_concurrent_ = 1;
  int workers_per_query_ = 1;

  StatsCatalog stats_;
  PlanCache cache_;
  /// Cross-query build-side cache; null when options_.use_build_cache is
  /// false. Handed to every execution together with the catalog version
  /// its plan was bound under.
  std::unique_ptr<BuildCache> build_cache_;
  /// Readers = in-flight optimizations, writer = InvalidateCache (the
  /// StatsCatalog's cached references must not be cleared under a reader).
  std::shared_mutex optimize_mu_;

  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  int active_ = 0;
  int peak_ = 0;
  int waiting_ = 0;  ///< queued for admission (the shed bound's subject)

  /// Engine metrics (src/obs/metrics_registry.h). The serving outcome
  /// tallies live here as atomic counters — RecordOutcome is lock-free and
  /// serving_stats() reads are exact per field. Pointers below are cached
  /// at construction (stable for the registry's lifetime).
  MetricsRegistry registry_;
  Counter* served_total_ = nullptr;
  Counter* shed_total_ = nullptr;
  Counter* timed_out_total_ = nullptr;
  Counter* cancelled_total_ = nullptr;
  Counter* failed_total_ = nullptr;
  Counter* slow_queries_total_ = nullptr;
  Histogram* query_latency_ms_ = nullptr;
  Histogram* admission_wait_ms_ = nullptr;
  /// Dump-time mirrors of component-owned counters (name -> gauge).
  Gauge* plan_cache_gauges_[9] = {};
  Gauge* build_cache_gauges_[8] = {};
  Gauge* admission_gauges_[3] = {};
};

}  // namespace bqo

// PlanCache: parameterized plan-shape cache for the serving layer.
//
// The paper measures a real optimization-time overhead for bitvector-aware
// costing (Section 6.5: Algorithm 3 ordering, filter placement, cost-based
// pruning all run per query). Decision-support traffic is template-heavy —
// the same join graph and predicate *structure* arrives again and again
// with varying literals — so the cache keys plans by **shape** and
// re-binds constants per query instead of missing on every changed
// literal.
//
// == Keying ==
//
// The key is (optimizer options, JoinGraph::ShapeSignature): relation
// tables + predicate shapes with constants as typed `?` slots
// (src/plan/predicate_shape.h), plus edges and uniqueness flags. Aliases
// are deliberately excluded — two queries that differ only in how
// occurrences are named share a plan. Optimizer knobs are included because
// they change the produced plan (mode, lambda threshold, fp rate, DP
// caps). A query whose predicates have no constant slots degenerates to
// the old exact-match cache: its lookups always compare equal.
//
// == Lookup = match + re-bind + validity check ==
//
// Lookup matches on shape, then compares the query's constant slot table
// against the entry's. Identical constants: the entry itself is served
// (zero-copy, the degenerate exact hit). Moved constants: the entry's
// graph is copied, the query's predicates installed, and **only the moved
// relations'** selectivities re-estimated (AttachRelationStatistics —
// exact single-table cardinalities); if every moved selectivity lands
// inside the entry's validity band (derived by probe re-optimizations,
// src/optimizer/parameterized.h) and the entry is not stale, a private
// executable instance with the cached join order is served (`rebinds`).
// Out-of-band, stale, or mismatched slots escalate: the caller must run
// OptimizeParameterized and Insert, which *replaces* the entry
// (`reoptimizations`).
//
// == Feedback ==
//
// After execution, RecordObservedLambdas folds the executed plan's
// observed per-filter lambdas (FilterStats::ObservedLambda — exact, merged
// once per query) into the entry as an EWMA. When the EWMA drifts further
// than `lambda_drift_margin` from the optimize-time estimate, the entry is
// marked stale (`drift_invalidations`) and the next shape hit
// re-optimizes — the paper's robustness margin made runtime-live.
//
// == Ownership and concurrent execution ==
//
// A Plan borrows its JoinGraph (`Plan::graph` is a raw pointer), so every
// served instance owns the graph its plan points at: cache entries own a
// copy, rebound instances own their private rebound copy. Entries are
// handed out as shared_ptr<const CachedPlan>: eviction, replacement, or
// invalidation never frees a plan another client thread is still
// executing, and executing a cached plan is read-only (CompilePlan/
// ExecutePlan build fresh operator trees and a fresh FilterRuntime per
// execution), so any number of clients may run the same entry at once.
// The only mutable entry state is the feedback block (EWMA + stale flag),
// guarded by its own mutex / atomic.
//
// == Invalidation ==
//
// Every entry snapshots Catalog::version() (DDL bumps it; bulk data loads
// bump it via Catalog::BumpVersion). A lookup under a newer version
// flushes the cache — cached plans bind Table pointers and
// statistics-derived join orders, either of which the change may have
// invalidated. Counters are reported as PlanCacheStats (src/exec/
// metrics.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/metrics.h"
#include "src/obs/trace.h"
#include "src/optimizer/parameterized.h"

namespace bqo {

/// \brief One cached (or privately rebound) plan: the optimized plan, the
/// owned graph copy it is bound to, the slot/band annotations reuse keys
/// on, and the optimize-time measurements a hit amortizes.
struct CachedPlan {
  JoinGraph graph;  ///< owned copy; plan.graph points at this member
  Plan plan;
  /// Estimated bitvector-aware Cout of the cached plan — re-reported on
  /// hits so serving metrics stay comparable with the miss path.
  double estimated_cost = 0;
  int pruned_filters = 0;
  int64_t optimize_ns = 0;  ///< what the hit saved

  // ---- Reuse annotations (src/optimizer/parameterized.h) ----
  std::vector<std::vector<Value>> constants;  ///< optimize-time slot table
  std::vector<double> optimize_sel;           ///< per relation
  std::vector<SelectivityBand> bands;         ///< per relation
  std::vector<double> estimated_lambda;       ///< per filter id

  // ---- Feedback block: the only mutable state of a shared entry ----
  /// Observed-lambda EWMA per filter id (< 0 = no samples yet); guarded
  /// by feedback_mu.
  mutable std::vector<double> lambda_ewma;
  mutable std::mutex feedback_mu;
  /// Set once the EWMA drifts past the margin; read lock-free at lookup.
  mutable std::atomic<bool> stale{false};
};

struct PlanCacheOptions {
  size_t capacity = 64;  ///< LRU capacity (>= 1)
  /// Drift margin on observed lambda: an entry whose per-filter EWMA
  /// leaves [estimate - margin, estimate + margin] is marked stale and
  /// re-optimized on its next shape hit. <= 0 disables drift feedback.
  /// Env overlay: BQO_DRIFT_MARGIN (ApplyServingEnvOverrides).
  double lambda_drift_margin = 0.25;
  /// EWMA smoothing factor for observed lambda (0 < alpha <= 1; higher =
  /// reacts faster). Env overlay: BQO_EWMA_ALPHA.
  double lambda_ewma_alpha = 0.3;
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options);
  /// \brief Convenience: default drift knobs with this LRU capacity.
  explicit PlanCache(size_t capacity);

  /// \brief Outcome of a shape lookup; see the header comment.
  struct LookupOutcome {
    enum class Kind {
      kMiss,        ///< shape absent: optimize + Insert
      kServed,      ///< `instance` is executable (exact or rebound)
      kReoptimize,  ///< shape present but reuse refused: optimize + Insert
                    ///< (which replaces the entry)
    };
    Kind kind = Kind::kMiss;
    /// kServed: the plan to execute — the cache entry itself on an
    /// exact-constant hit, a private rebound instance otherwise.
    std::shared_ptr<const CachedPlan> instance;
    /// kServed/kReoptimize: the cache-resident entry (feedback target —
    /// pass to RecordObservedLambdas after executing `instance`).
    std::shared_ptr<const CachedPlan> entry;
    /// kServed: true when >= 1 constant slot moved and was re-bound.
    bool rebound = false;
  };

  /// \brief Shape lookup + constant re-bind for `query_graph` (bound
  /// tables and actual literals required; statistics not required — only
  /// moved relations are re-estimated, against the entry's recorded
  /// values). `catalog_version` is the current Catalog::version(); if it
  /// differs from the version the cache last saw, every entry is flushed
  /// first (counted as one invalidation) and the lookup misses. `trace`
  /// (optional) records the re-bind work as a span (src/obs/trace.h).
  LookupOutcome Lookup(const std::string& shape_signature,
                       int64_t catalog_version, const JoinGraph& query_graph,
                       QueryTrace* trace = nullptr);

  /// \brief Insert the result of optimizing `graph` under
  /// `shape_signature`, copying the graph so the entry outlives the
  /// caller's; returns the entry (also handed to concurrent clients on
  /// later hits). Replaces an existing entry under the same signature —
  /// the re-optimization escalation path — and evicts the
  /// least-recently-used entry at capacity.
  std::shared_ptr<const CachedPlan> Insert(const std::string& shape_signature,
                                           int64_t catalog_version,
                                           const JoinGraph& graph,
                                           ParameterizedPlan optimized);

  /// \brief Fold an executed query's observed per-filter lambdas into
  /// `entry`'s EWMA; marks the entry stale (one drift_invalidation) when
  /// any filter's EWMA drifts past the margin. Call only for queries that
  /// completed OK — a cancelled query's partial counters are void.
  void RecordObservedLambdas(const std::shared_ptr<const CachedPlan>& entry,
                             const std::vector<FilterStats>& filters);

  /// \brief Drop every entry (counted as an invalidation).
  void Invalidate();

  PlanCacheStats stats() const;

  /// \brief Canonical shape signature of (options, graph): the optimizer
  /// knobs that change the produced plan, then
  /// JoinGraph::ShapeSignature().
  static std::string ShapeSignature(const JoinGraph& graph,
                                    const OptimizerOptions& options);

 private:
  struct Slot {
    std::shared_ptr<const CachedPlan> entry;
    std::list<std::string>::iterator lru_pos;  ///< into lru_ (MRU front)
  };

  void InvalidateLocked();

  const PlanCacheOptions options_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
  int64_t seen_catalog_version_ = -1;
  PlanCacheStats stats_;
};

}  // namespace bqo

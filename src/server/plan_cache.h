// PlanCache: bitvector-aware optimized plans keyed by canonical query
// signature, for the serving layer.
//
// The paper measures a real optimization-time overhead for bitvector-aware
// costing (Section 6.5: Algorithm 3 ordering, filter placement, cost-based
// pruning all run per query). Decision-support traffic is template-heavy —
// the same join graph with the same predicates arrives again and again — so
// a serving system amortizes that overhead by caching the *optimized* plan:
// a hit skips BuildJoinGraph's statistics work and the whole optimizer, and
// goes straight to CompilePlan (the same plan-reuse argument Exqutor makes
// for extended optimizers).
//
// == Keying ==
//
// The key is a canonical textual signature of (optimizer options, join
// graph shape, per-relation predicate), built by Signature(): relations in
// index order as `table|predicate`, edges as
// `l<r:l_cols=r_cols:uniqueness`. Aliases are deliberately excluded — two
// queries that differ only in how occurrences are named share a plan.
// Optimizer knobs are included because they change the produced plan (mode,
// lambda threshold, fp rate, DP caps).
//
// == Ownership and concurrent execution ==
//
// A Plan borrows its JoinGraph (`Plan::graph` is a raw pointer), and the
// graph a caller optimizes against is usually stack-local — so the cache
// entry *owns a copy* of the graph and re-points the stored plan at it.
// Entries are handed out as shared_ptr<const CachedPlan>: eviction or
// invalidation never frees a plan another client thread is still
// executing, and executing a cached plan is read-only (CompilePlan/
// ExecutePlan build fresh operator trees and a fresh FilterRuntime per
// execution), so any number of clients may run the same entry at once.
//
// == Invalidation ==
//
// Every entry snapshots Catalog::version() (DDL bumps it; bulk data loads
// bump it via Catalog::BumpVersion). A lookup under a newer version flushes
// the cache — cached plans bind Table pointers and statistics-derived join
// orders, either of which the change may have invalidated. Counters
// (hits/misses/evictions/invalidations) are reported as PlanCacheStats
// (src/exec/metrics.h).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/exec/metrics.h"
#include "src/optimizer/optimizer.h"

namespace bqo {

/// \brief One cached entry: the optimized plan plus the owned graph copy
/// it is bound to, and the optimize-time measurements a hit amortizes.
struct CachedPlan {
  JoinGraph graph;  ///< owned copy; plan.graph points at this member
  Plan plan;
  /// Estimated bitvector-aware Cout of the cached plan — re-reported on
  /// hits so serving metrics stay comparable with the miss path.
  double estimated_cost = 0;
  int pruned_filters = 0;
  int64_t optimize_ns = 0;  ///< what the hit saved
};

class PlanCache {
 public:
  /// \brief LRU cache holding at most `capacity` plans (>= 1).
  explicit PlanCache(size_t capacity);

  /// \brief The entry for `signature`, or null (miss). `catalog_version`
  /// is the current Catalog::version(); if it differs from the version the
  /// cache last saw, every entry is flushed first (counted as one
  /// invalidation) and the lookup misses.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& signature,
                                           int64_t catalog_version);

  /// \brief Insert the result of optimizing `graph` under `signature`,
  /// copying the graph so the entry outlives the caller's; returns the
  /// entry (also handed to concurrent clients on later hits). Evicts the
  /// least-recently-used entry at capacity. A concurrent insert under the
  /// same signature wins-first; the loser's entry is returned to its
  /// caller but not cached twice.
  std::shared_ptr<const CachedPlan> Insert(const std::string& signature,
                                           int64_t catalog_version,
                                           const JoinGraph& graph,
                                           OptimizedQuery optimized);

  /// \brief Drop every entry (counted as an invalidation).
  void Invalidate();

  PlanCacheStats stats() const;

  /// \brief Canonical signature of (graph, options); see header comment.
  static std::string Signature(const JoinGraph& graph,
                               const OptimizerOptions& options);

 private:
  struct Slot {
    std::shared_ptr<const CachedPlan> entry;
    std::list<std::string>::iterator lru_pos;  ///< into lru_ (MRU front)
  };

  void InvalidateLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
  int64_t seen_catalog_version_ = -1;
  PlanCacheStats stats_;
};

}  // namespace bqo

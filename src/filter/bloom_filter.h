// Blocked Bloom filter: each key maps to a single 512-bit (cache line)
// block, and k bits within that block, derived by double hashing.
//
// Blocking trades a slightly higher false-positive rate for exactly one
// cache miss per probe — the design point of "Performance-Optimal
// Filtering" [24] and what commercial engines ship for bitvector filtering.
#pragma once

#include <cstdint>
#include <vector>

#include "src/filter/bitvector_filter.h"
#include "src/filter/blocked_bloom_filter.h"

namespace bqo {

class BloomFilter final : public BitvectorFilter {
 public:
  /// \param expected_keys sizing hint (filter does not grow)
  /// \param bits_per_key  space budget; k = round(0.693 * bits_per_key)
  ///                      clamped to [1, 4] (see bloom_filter.cc for why)
  BloomFilter(int64_t expected_keys, double bits_per_key);

  void Insert(uint64_t hash) override;
  bool MayContain(uint64_t hash) const override;
  int MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                      int num_sel) const override;
  /// Bitwise-OR of the blocks (both filters must share block count and k;
  /// the parallel build sizes every partial for the full build side so
  /// geometries match by construction). Because Insert only ever ORs bits,
  /// the merged contents are bit-identical to one sequential build over the
  /// concatenated key streams — merge order never changes the bits.
  ///
  /// NumInserted: if `other` was built with EnableInsertTracking(), its
  /// journal is replayed against this filter's pre-merge bits, which — when
  /// partials are merged in partition order — reproduces the sequential
  /// new-bit count exactly (a journaled insert counts iff one of the bits it
  /// newly set within its partition is still unset in the merged prefix).
  /// Without tracking the operands' counts are summed, which can overcount
  /// keys duplicated across partitions.
  void MergeFrom(const BitvectorFilter& other) override;

  /// \brief Journal every counting insert (its hash plus which of its k
  /// probe positions it newly set) so MergeFrom can reproduce the
  /// sequential NumInserted. Call before the first Insert.
  void EnableInsertTracking() { tracking_ = true; }

  bool exact() const override { return false; }
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(blocks_.size() * sizeof(Block));
  }
  /// Keys logically added (see BitvectorFilter::NumInserted): an insert
  /// whose k bits were all already set — a duplicate, or a key the filter
  /// already couldn't reject — doesn't count, so this approximates the
  /// distinct-key n that TheoreticalFpRate() divides by.
  int64_t NumInserted() const override { return num_inserted_; }

  int num_probes() const { return k_; }

  /// \brief Theoretical FP rate (1 - e^{-kn/m})^k ignoring blocking effects.
  double TheoreticalFpRate() const;

 private:
  struct alignas(64) Block {
    uint64_t words[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  };

  /// One journaled counting insert: the key's hash plus a bitmask over its
  /// k probe positions marking which ones it newly set (bit i set ⇔ probe
  /// i's block bit was 0 before this insert).
  struct TrackedInsert {
    uint64_t hash;
    uint8_t new_probes;
  };

  /// True iff every probe position of `hash` flagged in `probe_mask` is set.
  bool ProbeBitsSet(uint64_t hash, uint8_t probe_mask) const;

  std::vector<Block> blocks_;
  uint64_t block_mask_ = 0;
  int k_ = 6;
  int64_t num_inserted_ = 0;
  bool tracking_ = false;
  std::vector<TrackedInsert> journal_;  ///< counting inserts, when tracking_
};

/// \brief Devirtualized batch probe: the Bloom kinds are the production
/// defaults and the per-tuple filter-check cost (Cf in Section 6.3) is the
/// quantity Figure 7 profiles, so the hot paths (scan strides and join
/// residual strides) avoid the virtual dispatch for them (both classes are
/// `final`, so the static_cast calls are direct; the blocked branch further
/// lands in the tier-dispatched SIMD kernel, filter_kernels.h).
inline int FilterMayContainBatch(const BitvectorFilter* filter,
                                 const uint64_t* hashes, uint16_t* sel,
                                 int num_sel) {
  if (filter->kind() == FilterKind::kBloom) {
    return static_cast<const BloomFilter*>(filter)->MayContainBatch(
        hashes, sel, num_sel);
  }
  if (filter->kind() == FilterKind::kBlockedBloom) {
    return static_cast<const BlockedBloomFilter*>(filter)->MayContainBatch(
        hashes, sel, num_sel);
  }
  return filter->MayContainBatch(hashes, sel, num_sel);
}

}  // namespace bqo

// Blocked Bloom filter: each key maps to a single 512-bit (cache line)
// block, and k bits within that block, derived by double hashing.
//
// Blocking trades a slightly higher false-positive rate for exactly one
// cache miss per probe — the design point of "Performance-Optimal
// Filtering" [24] and what commercial engines ship for bitvector filtering.
#pragma once

#include <cstdint>
#include <vector>

#include "src/filter/bitvector_filter.h"

namespace bqo {

class BloomFilter final : public BitvectorFilter {
 public:
  /// \param expected_keys sizing hint (filter does not grow)
  /// \param bits_per_key  space budget; k = round(0.693 * bits_per_key)
  ///                      clamped to [1, 4] (see bloom_filter.cc for why)
  BloomFilter(int64_t expected_keys, double bits_per_key);

  void Insert(uint64_t hash) override;
  bool MayContain(uint64_t hash) const override;
  int MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                      int num_sel) const override;

  bool exact() const override { return false; }
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(blocks_.size() * sizeof(Block));
  }
  /// Keys logically added (see BitvectorFilter::NumInserted): an insert
  /// whose k bits were all already set — a duplicate, or a key the filter
  /// already couldn't reject — doesn't count, so this approximates the
  /// distinct-key n that TheoreticalFpRate() divides by.
  int64_t NumInserted() const override { return num_inserted_; }

  int num_probes() const { return k_; }

  /// \brief Theoretical FP rate (1 - e^{-kn/m})^k ignoring blocking effects.
  double TheoreticalFpRate() const;

 private:
  struct alignas(64) Block {
    uint64_t words[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  };

  std::vector<Block> blocks_;
  uint64_t block_mask_ = 0;
  int k_ = 6;
  int64_t num_inserted_ = 0;
};

}  // namespace bqo

#include "src/filter/cuckoo_filter.h"

#include "src/common/bit_util.h"
#include "src/common/hash.h"
#include "src/common/macros.h"

namespace bqo {

CuckooFilter::CuckooFilter(int64_t expected_keys, int fingerprint_bits)
    : BitvectorFilter(FilterKind::kCuckoo) {
  BQO_CHECK(fingerprint_bits >= 4 && fingerprint_bits <= 16);
  fp_mask_ = static_cast<uint16_t>((uint32_t{1} << fingerprint_bits) - 1);
  // Target <= 87.5% load: buckets = ceil(keys / (4 * 0.875)) = ceil(keys /
  // 3.5), rounded up to a power of two (the rounding only lowers the load).
  const uint64_t want =
      static_cast<uint64_t>(expected_keys < 16 ? 16 : expected_keys);
  const uint64_t num_buckets = NextPow2((want * 2 + 6) / 7);
  slots_.assign(num_buckets * kBucketSize, 0);
  bucket_mask_ = num_buckets - 1;
}

uint16_t CuckooFilter::FingerprintOf(uint64_t hash) const {
  // Fingerprint from high bits (index uses low bits); never 0 (empty marker).
  uint16_t fp = static_cast<uint16_t>((hash >> 45) & fp_mask_);
  return fp == 0 ? static_cast<uint16_t>(1) : fp;
}

uint64_t CuckooFilter::IndexOf(uint64_t hash) const {
  return hash & bucket_mask_;
}

uint64_t CuckooFilter::AltIndex(uint64_t index, uint16_t fp) const {
  // Partial-key displacement: i2 = i1 xor hash(fp).
  return (index ^ Mix64(fp)) & bucket_mask_;
}

bool CuckooFilter::BucketContains(uint64_t bucket, uint16_t fp) const {
  const size_t base = static_cast<size_t>(bucket) * kBucketSize;
  for (int i = 0; i < kBucketSize; ++i) {
    if (slots_[base + static_cast<size_t>(i)] == fp) return true;
  }
  return false;
}

bool CuckooFilter::TryInsertAt(uint64_t bucket, uint16_t fp) {
  const size_t base = static_cast<size_t>(bucket) * kBucketSize;
  for (int i = 0; i < kBucketSize; ++i) {
    if (slots_[base + static_cast<size_t>(i)] == 0) {
      slots_[base + static_cast<size_t>(i)] = fp;
      return true;
    }
  }
  return false;
}

void CuckooFilter::Insert(uint64_t hash) {
  // num_inserted_ counts only inserts that logically add a key: after
  // overflow the filter already admits everything, and a (fingerprint,
  // bucket)-duplicate is indistinguishable from a key that is present.
  if (overflowed_) return;
  InsertFingerprint(IndexOf(hash), FingerprintOf(hash));
}

void CuckooFilter::InsertFingerprint(uint64_t i1, uint16_t fp) {
  const uint64_t i2 = AltIndex(i1, fp);
  if (BucketContains(i1, fp) || BucketContains(i2, fp)) return;
  if (TryInsertAt(i1, fp) || TryInsertAt(i2, fp)) {
    ++num_inserted_;
    return;
  }

  // Displace: evict a deterministic-pseudo-random victim and relocate.
  uint64_t bucket = (kick_state_ & 1) ? i2 : i1;
  uint16_t cur = fp;
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    kick_state_ = Mix64(kick_state_ + kick + 1);
    const size_t base = static_cast<size_t>(bucket) * kBucketSize;
    const size_t victim = base + (kick_state_ % kBucketSize);
    std::swap(cur, slots_[victim]);
    bucket = AltIndex(bucket, cur);
    if (TryInsertAt(bucket, cur)) {
      ++num_inserted_;
      return;
    }
  }
  overflowed_ = true;  // MayContain now admits everything; still sound.
  ++num_inserted_;     // the triggering key is admitted (as is everything)
}

void CuckooFilter::MergeFrom(const BitvectorFilter& other) {
  BQO_CHECK(other.kind() == FilterKind::kCuckoo);
  const auto& src = static_cast<const CuckooFilter&>(other);
  if (src.overflowed_ || overflowed_) {
    // Freeze propagation: an overflowed operand admits everything, so the
    // merged filter must too. Its slots are incomplete (inserts stopped at
    // the freeze), so replay is pointless; carry its logical-key count.
    // Deliberately ahead of the geometry check — no slots are touched.
    overflowed_ = true;
    num_inserted_ += src.num_inserted_;
    return;
  }
  BQO_CHECK_EQ(bucket_mask_, src.bucket_mask_);
  BQO_CHECK_EQ(fp_mask_, src.fp_mask_);
  const size_t num_slots = src.slots_.size();
  for (size_t s = 0; s < num_slots; ++s) {
    const uint16_t fp = src.slots_[s];
    if (fp == 0) continue;
    // A stored fingerprint sits in its primary or its alternate bucket; the
    // partial-key property (i1 = i2 xor hash(fp)) makes the pair {here,
    // AltIndex(here, fp)} identical either way, so replaying with `here` as
    // the primary reproduces the original two candidate buckets.
    InsertFingerprint(s / kBucketSize, fp);
    if (overflowed_) {
      // Replay itself overflowed: the filter now admits everything. The
      // remaining operand slots are still logical keys — account them
      // without placement so NumInserted keeps approximating the union.
      for (size_t r = s + 1; r < num_slots; ++r) {
        if (src.slots_[r] != 0) ++num_inserted_;
      }
      return;
    }
  }
}

bool CuckooFilter::MayContain(uint64_t hash) const {
  if (overflowed_) return true;
  const uint16_t fp = FingerprintOf(hash);
  const uint64_t i1 = IndexOf(hash);
  if (BucketContains(i1, fp)) return true;
  return BucketContains(AltIndex(i1, fp), fp);
}

int CuckooFilter::MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                                  int num_sel) const {
  if (overflowed_) return num_sel;  // degenerate filter admits everything
  // Three passes per chunk. Most hits resolve in the primary bucket, so the
  // alt bucket is only prefetched (and touched) for keys whose primary
  // missed — matching the scalar path's early exit instead of doubling the
  // bandwidth. A per-chunk verdict bitmap keeps the compacted selection in
  // its original (ascending) order regardless of which pass resolved a key.
  constexpr int kChunk = 128;
  bool verdict[kChunk];
  int pend_pos[kChunk];
  uint64_t pend_alt[kChunk];
  uint16_t pend_fp[kChunk];
  int out = 0;
  for (int base = 0; base < num_sel; base += kChunk) {
    const int end = base + kChunk < num_sel ? base + kChunk : num_sel;
    for (int j = base; j < end; ++j) {
      __builtin_prefetch(&slots_[IndexOf(hashes[sel[j]]) * kBucketSize], 0, 1);
    }
    int npend = 0;
    for (int j = base; j < end; ++j) {
      const uint64_t h = hashes[sel[j]];
      const uint16_t fp = FingerprintOf(h);
      const uint64_t i1 = IndexOf(h);
      if (BucketContains(i1, fp)) {
        verdict[j - base] = true;
      } else {
        verdict[j - base] = false;
        const uint64_t i2 = AltIndex(i1, fp);
        __builtin_prefetch(&slots_[i2 * kBucketSize], 0, 1);
        pend_pos[npend] = j - base;
        pend_alt[npend] = i2;
        pend_fp[npend] = fp;
        ++npend;
      }
    }
    for (int p = 0; p < npend; ++p) {
      verdict[pend_pos[p]] = BucketContains(pend_alt[p], pend_fp[p]);
    }
    for (int j = base; j < end; ++j) {
      if (verdict[j - base]) sel[out++] = sel[j];
    }
  }
  return out;
}

}  // namespace bqo

// Register-blocked Bloom filter: each key maps to one 64-byte block (chosen
// by the hash's high bits), one 32-byte sector within it, and exactly one
// bit in each of the sector's 8 words — so a probe touches one cache line
// and, on the AVX2 tier, tests all k = 8 bits with a single 256-bit mask op
// (the boost.bloom fast_multiblock32 / Impala design).
//
// Versus the classical BloomFilter (bloom_filter.h: 512-bit block, serial
// double-hashed probes), this kind buys a cheaper per-probe cost at a
// measurably higher false-positive rate for the same space: all k bits live
// in a 256-bit sector, so sector-level load variance compounds the blocking
// penalty. The optimizer's filter menu (cost_model.h) encodes both curves
// and trades them per the paper's model; the classical kind stays available
// as the parity oracle and the better-FPR choice.
#pragma once

#include <cstdint>
#include <vector>

#include "src/filter/bitvector_filter.h"
#include "src/filter/filter_kernels.h"

namespace bqo {

class BlockedBloomFilter final : public BitvectorFilter {
 public:
  /// \param expected_keys sizing hint (filter does not grow)
  /// \param bits_per_key  space budget; k is fixed at 8 (one bit per sector
  ///                      word — the shape the single AVX2 mask op needs),
  ///                      so the budget only sets the block count.
  BlockedBloomFilter(int64_t expected_keys, double bits_per_key);

  void Insert(uint64_t hash) override;
  bool MayContain(uint64_t hash) const override;
  int MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                      int num_sel) const override;
  /// Bitwise-OR of the 64-byte blocks; same geometry/merge-order contract as
  /// BloomFilter::MergeFrom, and the same journal-replay rule for
  /// NumInserted (a tracked insert counts iff one of the bits it newly set
  /// within its partition is still unset in the merged prefix).
  void MergeFrom(const BitvectorFilter& other) override;

  /// \brief Journal counting inserts so MergeFrom reproduces the sequential
  /// NumInserted. Call before the first Insert.
  void EnableInsertTracking() { tracking_ = true; }

  bool exact() const override { return false; }
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(blocks_.size() *
                                sizeof(blocked_bloom::BloomBlock));
  }
  int64_t NumInserted() const override { return num_inserted_; }

  int num_probes() const { return blocked_bloom::kProbesPerKey; }
  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }

  /// \brief Model FP rate at the current load: a Poisson mixture over the
  /// key's sector occupancy — keys land in one of 2*blocks sectors, j
  /// resident keys leave a given word-bit set with prob 1-(31/32)^j, and a
  /// false positive needs all 8 word-bits set. This is the curve the cost
  /// model encodes for the blocked kind (EstimatedFilterFpr in
  /// cost_model.cc), deliberately above the classical filter's
  /// (1-e^{-kn/m})^k at equal bits.
  double TheoreticalFpRate() const;

 private:
  /// One journaled counting insert (see BloomFilter::TrackedInsert): the
  /// hash plus which of the 8 word-bits it newly set.
  struct TrackedInsert {
    uint64_t hash;
    uint8_t new_probes;
  };

  /// True iff every word-bit of `hash` flagged in `probe_mask` is set.
  bool ProbeBitsSet(uint64_t hash, uint8_t probe_mask) const;

  std::vector<blocked_bloom::BloomBlock> blocks_;
  uint64_t block_mask_ = 0;
  int64_t num_inserted_ = 0;
  bool tracking_ = false;
  std::vector<TrackedInsert> journal_;
};

}  // namespace bqo

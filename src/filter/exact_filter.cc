#include "src/filter/exact_filter.h"

#include "src/common/bit_util.h"
#include "src/common/macros.h"
#include "src/filter/probe_batch.h"

namespace bqo {

ExactFilter::ExactFilter(int64_t expected_keys)
    : BitvectorFilter(FilterKind::kExact) {
  const uint64_t capacity =
      NextPow2(static_cast<uint64_t>(expected_keys < 8 ? 8 : expected_keys) *
               2);
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
}

void ExactFilter::Insert(uint64_t hash) {
  if (hash == 0) {
    if (!has_zero_) {
      has_zero_ = true;
      ++num_keys_;
    }
    return;
  }
  if (BQO_UNLIKELY(static_cast<uint64_t>(num_keys_) * 10 >
                   slots_.size() * 7)) {
    Grow();
  }
  uint64_t idx = hash & mask_;
  while (slots_[idx] != 0) {
    if (slots_[idx] == hash) return;  // already present
    idx = (idx + 1) & mask_;
  }
  slots_[idx] = hash;
  ++num_keys_;
}

bool ExactFilter::MayContain(uint64_t hash) const {
  if (hash == 0) return has_zero_;
  uint64_t idx = hash & mask_;
  while (slots_[idx] != 0) {
    if (slots_[idx] == hash) return true;
    idx = (idx + 1) & mask_;
  }
  return false;
}

int ExactFilter::MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                                 int num_sel) const {
  // Linear-probe runs past the prefetched home slot are short (<= 70%
  // load) and usually stay on the same line.
  return InterleavedProbeBatch(
      hashes, sel, num_sel,
      [this](uint64_t h) { __builtin_prefetch(&slots_[h & mask_], 0, 1); },
      [this](uint64_t h) { return MayContain(h); });
}

void ExactFilter::MergeFrom(const BitvectorFilter& other) {
  BQO_CHECK(other.kind() == FilterKind::kExact);
  const auto& src = static_cast<const ExactFilter&>(other);
  if (src.has_zero_) Insert(0);
  for (uint64_t h : src.slots_) {
    if (h != 0) Insert(h);
  }
}

void ExactFilter::Grow() {
  std::vector<uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  mask_ = slots_.size() - 1;
  for (uint64_t h : old) {
    if (h == 0) continue;
    uint64_t idx = h & mask_;
    while (slots_[idx] != 0) idx = (idx + 1) & mask_;
    slots_[idx] = h;
  }
}

}  // namespace bqo

#include "src/filter/exact_filter.h"

#include "src/common/macros.h"

namespace bqo {

namespace {
uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}
}  // namespace

ExactFilter::ExactFilter(int64_t expected_keys)
    : BitvectorFilter(FilterKind::kExact) {
  const uint64_t capacity =
      NextPow2(static_cast<uint64_t>(expected_keys < 8 ? 8 : expected_keys) *
               2);
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
}

void ExactFilter::Insert(uint64_t hash) {
  ++num_inserted_;
  if (hash == 0) {
    if (!has_zero_) {
      has_zero_ = true;
      ++num_keys_;
    }
    return;
  }
  if (BQO_UNLIKELY(static_cast<uint64_t>(num_keys_) * 10 >
                   slots_.size() * 7)) {
    Grow();
  }
  uint64_t idx = hash & mask_;
  while (slots_[idx] != 0) {
    if (slots_[idx] == hash) return;  // already present
    idx = (idx + 1) & mask_;
  }
  slots_[idx] = hash;
  ++num_keys_;
}

bool ExactFilter::MayContain(uint64_t hash) const {
  if (hash == 0) return has_zero_;
  uint64_t idx = hash & mask_;
  while (slots_[idx] != 0) {
    if (slots_[idx] == hash) return true;
    idx = (idx + 1) & mask_;
  }
  return false;
}

void ExactFilter::Grow() {
  std::vector<uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  mask_ = slots_.size() - 1;
  for (uint64_t h : old) {
    if (h == 0) continue;
    uint64_t idx = h & mask_;
    while (slots_[idx] != 0) idx = (idx + 1) & mask_;
    slots_[idx] = h;
  }
}

}  // namespace bqo

// Bitvector filters: probabilistic semi-join reduction structures.
//
// A filter is built from the equi-join key column(s) of a hash join's build
// side and probed with the corresponding probe-side column(s) (Algorithm 1
// of the paper). All implementations operate on 64-bit composite-key hashes
// produced by HashComposite(), so multi-column join keys (e.g. the filter
// built from A ⋈ C in the paper's Figure 1) are handled uniformly.
//
// Four implementations:
//  * ExactFilter       — a hash set; zero false positives. Realizes the
//                        paper's "no false positives" assumption used in
//                        Theorems 4.1/5.1, and is what the
//                        theorem-validation tests run with.
//  * BloomFilter       — classical cache-line-blocked Bloom filter with
//                        serial double-hashed probes; the production
//                        default and parity oracle, mirroring [7, 24].
//  * BlockedBloomFilter — register-blocked Bloom (one 256-bit sector per
//                        key, all k bits tested in one AVX2 mask op; see
//                        blocked_bloom_filter.h). Cheaper per probe, higher
//                        FPR at equal bits — the optimizer's filter menu
//                        trades the two per the paper's cost model.
//  * CuckooFilter      — 4-way bucketized fingerprint filter [15]; supports
//                        a space/accuracy trade-off ablation.
#pragma once

#include <cstdint>
#include <memory>

namespace bqo {

enum class FilterKind : uint8_t {
  kExact = 0,
  kBloom = 1,
  kCuckoo = 2,
  kBlockedBloom = 3,
};

const char* FilterKindName(FilterKind kind);

/// \brief Interface for bitvector filters over 64-bit key hashes.
class BitvectorFilter {
 public:
  explicit BitvectorFilter(FilterKind kind) : kind_(kind) {}
  virtual ~BitvectorFilter() = default;

  /// \brief Add a build-side key hash.
  virtual void Insert(uint64_t hash) = 0;

  /// \brief Probe: false means the key is definitely absent; true means it
  /// may be present (exactly present for ExactFilter).
  virtual bool MayContain(uint64_t hash) const = 0;

  /// \brief Batched probe over a selection vector.
  ///
  /// `hashes` is a position-aligned scratch array (see HashColumn /
  /// HashCompositeBatch); `sel` holds `num_sel` indices into it, sorted
  /// ascending. Survivor indices are compacted to the front of `sel`
  /// in place and the new count is returned. The pass set is required to
  /// be bit-identical to calling MayContain(hashes[sel[j]]) per index —
  /// implementations only add software prefetching, never change bits.
  ///
  /// Default: the scalar loop. Overrides overlap cache misses instead of
  /// serializing them: Bloom and Exact interleave (prefetch the line of key
  /// j+D while testing key j), Cuckoo runs chunked passes (prefetch primary
  /// buckets, resolve, prefetch only the alt buckets that are still needed).
  virtual int MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                              int num_sel) const {
    int out = 0;
    for (int j = 0; j < num_sel; ++j) {
      const uint16_t s = sel[j];
      if (MayContain(hashes[s])) sel[out++] = s;
    }
    return out;
  }

  /// \brief Fold `other` — a filter of the same kind built over a partition
  /// of the same logical key set — into this filter, so that MayContain
  /// afterwards admits every key either operand admitted.
  ///
  /// Parallel hash-join builds create one filter per worker over a
  /// contiguous partition of the build keys and combine the partials through
  /// this (see FillFilterParallel in pipeline.h). NumInserted stays a
  /// logical-key count after the merge: duplicate keys across partitions
  /// must not be double counted where the implementation can detect them —
  /// ExactFilter unions exactly, BloomFilter reproduces the sequential
  /// new-bit count from the partials' insert journals (EnableInsertTracking),
  /// and CuckooFilter replays fingerprints through its duplicate-detecting
  /// insert path, propagating an operand's overflow freeze.
  virtual void MergeFrom(const BitvectorFilter& other) = 0;

  /// \brief True iff this implementation can never return a false positive.
  virtual bool exact() const = 0;

  /// \brief Non-virtual: the executor's hot path branches on this to
  /// devirtualize the Bloom probe (the Cf of Section 6.3).
  FilterKind kind() const { return kind_; }

  virtual int64_t SizeBytes() const = 0;

  /// \brief Number of keys logically added: Insert calls that changed what
  /// the filter can reject. Uniform across implementations — duplicate
  /// inserts never count (ExactFilter detects them exactly; Bloom counts an
  /// insert iff it set a new bit; cuckoo iff the (fingerprint, bucket) pair
  /// was new), and inserts into an overflowed cuckoo don't count either.
  /// This is the n that FP-rate formulas and the cost model divide by.
  virtual int64_t NumInserted() const = 0;

 private:
  FilterKind kind_;
};

struct FilterConfig {
  FilterKind kind = FilterKind::kBloom;
  /// Bloom (classical and blocked): bits per inserted key
  /// (8 => ~2% FP, 10 => ~1% FP for the classical kind; the blocked kind
  /// runs higher at equal bits — see BlockedBloomFilter::TheoreticalFpRate).
  double bloom_bits_per_key = 10.0;
  /// Cuckoo: fingerprint bits (12 => ~0.1% FP at 95% load).
  int cuckoo_fingerprint_bits = 12;
  /// When true, the executor honors the per-filter kind the optimizer's
  /// filter menu picked (PlanFilter::chosen_kind) instead of applying
  /// `kind` uniformly. Off by default: plan-kind selection is an opt-in so
  /// existing pinned FilterStats stay byte-identical.
  bool use_plan_kinds = false;
};

/// \brief Create a filter sized for ~`expected_keys` insertions.
std::unique_ptr<BitvectorFilter> CreateFilter(const FilterConfig& config,
                                              int64_t expected_keys);

}  // namespace bqo

#include "src/filter/filter_kernels.h"

#include <cstdlib>
#include <cstring>

#include "src/filter/probe_batch.h"

// AVX2 bodies are compiled per-function with target("avx2") instead of
// building the whole library with -mavx2 — the binary must start and run the
// scalar tier on machines without AVX2, so no AVX2 instruction may leak into
// always-executed code.
#if defined(__x86_64__) || defined(__i386__)
#define BQO_X86 1
#include <immintrin.h>
#else
#define BQO_X86 0
#endif

namespace bqo {

bool CpuSupportsAvx2() {
#if BQO_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

namespace internal {

SimdTier DetectSimdTier() {
  const bool has_avx2 = CpuSupportsAvx2();
  // BQO_SIMD=scalar|avx2 overrides CPUID; requesting avx2 on a CPU without
  // it clamps to scalar rather than faulting. Unrecognized values fall
  // through to autodetection.
  if (const char* env = std::getenv("BQO_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return SimdTier::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return has_avx2 ? SimdTier::kAvx2 : SimdTier::kScalar;
    }
  }
  return has_avx2 ? SimdTier::kAvx2 : SimdTier::kScalar;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// AVX2 hash kernels. Mix64's two 64x64 multiplies are emulated with 32-bit
// partial products (mul_epu32): x*m mod 2^64 =
// (x_lo*m_lo) + ((x_hi*m_lo + x_lo*m_hi) << 32). Everything else in the
// HashCombine fold (shifts, adds, xors) vectorizes directly, so the four
// lanes are bit-identical to four scalar HashCombine calls.
// ---------------------------------------------------------------------------
#if BQO_X86

namespace {

constexpr uint64_t kMixC1 = 0xff51afd7ed558ccdULL;
constexpr uint64_t kMixC2 = 0xc4ceb9fe1a85ec53ULL;
constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

__attribute__((target("avx2"))) inline __m256i Mul64(__m256i x, __m256i m,
                                                     __m256i m_hi) {
  const __m256i lo = _mm256_mul_epu32(x, m);
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(x_hi, m), _mm256_mul_epu32(x, m_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Mix64Vec(__m256i x) {
  const __m256i c1 = _mm256_set1_epi64x(static_cast<int64_t>(kMixC1));
  const __m256i c1_hi = _mm256_set1_epi64x(static_cast<int64_t>(kMixC1 >> 32));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<int64_t>(kMixC2));
  const __m256i c2_hi = _mm256_set1_epi64x(static_cast<int64_t>(kMixC2 >> 32));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mul64(x, c1, c1_hi);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mul64(x, c2, c2_hi);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  return x;
}

/// h ^= Mix64(v) + kGolden + (h << 12) + (h >> 4), four lanes at once.
__attribute__((target("avx2"))) inline __m256i HashCombineVec(__m256i h,
                                                              __m256i v) {
  __m256i t = _mm256_add_epi64(
      Mix64Vec(v), _mm256_set1_epi64x(static_cast<int64_t>(kGolden)));
  t = _mm256_add_epi64(t, _mm256_slli_epi64(h, 12));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(h, 4));
  return _mm256_xor_si256(h, t);
}

__attribute__((target("avx2"))) void HashColumnAvx2(const int64_t* values,
                                                    int n, uint64_t* out,
                                                    uint64_t seed) {
  const uint64_t h0 = CompositeSeed(seed);
  // h0 is loop-invariant, so HashCombine collapses to
  // out[i] = h0 ^ (Mix64(v_i) + K) with K precomputed once.
  const uint64_t k = kGolden + (h0 << 12) + (h0 >> 4);
  const __m256i h0v = _mm256_set1_epi64x(static_cast<int64_t>(h0));
  const __m256i kv = _mm256_set1_epi64x(static_cast<int64_t>(k));
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i h =
        _mm256_xor_si256(h0v, _mm256_add_epi64(Mix64Vec(v), kv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < n; ++i) {
    out[i] = HashCombine(h0, static_cast<uint64_t>(values[i]));
  }
}

__attribute__((target("avx2"))) void HashCompositeBatchAvx2(
    const int64_t* const* cols, size_t num_cols, int n, uint64_t* out,
    uint64_t seed) {
  const uint64_t h0 = CompositeSeed(seed);
  const __m256i h0v = _mm256_set1_epi64x(static_cast<int64_t>(h0));
  int i = 0;
  // Tile over keys, fold columns innermost: h stays in a register across
  // the whole composite fold of its four keys.
  for (; i + 4 <= n; i += 4) {
    __m256i h = h0v;
    for (size_t c = 0; c < num_cols; ++c) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols[c] + i));
      h = HashCombineVec(h, v);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < n; ++i) {
    uint64_t h = h0;
    for (size_t c = 0; c < num_cols; ++c) {
      h = HashCombine(h, static_cast<uint64_t>(cols[c][i]));
    }
    out[i] = h;
  }
}

// -------------------------------------------------------------------------
// AVX2 blocked-Bloom ops: the k = 8 bit positions for a key are one
// mullo-by-salts + shift, materialized as a 256-bit mask; probe is a single
// testc against the key's 32-byte sector, insert a single or/store.
// -------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i SectorMask(uint64_t hash) {
  const __m256i salts = _mm256_setr_epi32(
      static_cast<int>(blocked_bloom::kSalt[0]),
      static_cast<int>(blocked_bloom::kSalt[1]),
      static_cast<int>(blocked_bloom::kSalt[2]),
      static_cast<int>(blocked_bloom::kSalt[3]),
      static_cast<int>(blocked_bloom::kSalt[4]),
      static_cast<int>(blocked_bloom::kSalt[5]),
      static_cast<int>(blocked_bloom::kSalt[6]),
      static_cast<int>(blocked_bloom::kSalt[7]));
  const __m256i h32 = _mm256_set1_epi32(static_cast<int>(hash));
  const __m256i shifts = _mm256_srli_epi32(_mm256_mullo_epi32(h32, salts), 27);
  return _mm256_sllv_epi32(_mm256_set1_epi32(1), shifts);
}

__attribute__((target("avx2"))) uint8_t BlockedInsertAvx2(
    blocked_bloom::BloomBlock* blocks, uint64_t block_mask, uint64_t hash) {
  blocked_bloom::BloomBlock& b =
      blocks[blocked_bloom::BlockIndex(hash, block_mask)];
  __m256i* sector = reinterpret_cast<__m256i*>(
      b.words + blocked_bloom::SectorBase(hash));
  const __m256i mask = SectorMask(hash);
  const __m256i old = _mm256_load_si256(sector);
  _mm256_store_si256(sector, _mm256_or_si256(old, mask));
  // new_probes bit w ⇔ word w gained a bit: fresh = mask & ~old, then invert
  // the per-word "fresh == 0" movemask.
  const __m256i fresh = _mm256_andnot_si256(old, mask);
  const int zero_words = _mm256_movemask_ps(_mm256_castsi256_ps(
      _mm256_cmpeq_epi32(fresh, _mm256_setzero_si256())));
  return static_cast<uint8_t>(~zero_words & 0xff);
}

__attribute__((target("avx2"))) int BlockedProbeBatchAvx2(
    const blocked_bloom::BloomBlock* blocks, uint64_t block_mask,
    const uint64_t* hashes, uint16_t* sel, int num_sel) {
  constexpr int kDist = 32;
  const int lead = num_sel < kDist ? num_sel : kDist;
  for (int j = 0; j < lead; ++j) {
    __builtin_prefetch(
        &blocks[blocked_bloom::BlockIndex(hashes[sel[j]], block_mask)], 0, 1);
  }
  int out = 0;
  for (int j = 0; j < num_sel; ++j) {
    if (j + kDist < num_sel) {
      __builtin_prefetch(
          &blocks[blocked_bloom::BlockIndex(hashes[sel[j + kDist]],
                                            block_mask)],
          0, 1);
    }
    const uint16_t s = sel[j];
    const uint64_t hash = hashes[s];
    const blocked_bloom::BloomBlock& b =
        blocks[blocked_bloom::BlockIndex(hash, block_mask)];
    const __m256i sector = _mm256_load_si256(reinterpret_cast<const __m256i*>(
        b.words + blocked_bloom::SectorBase(hash)));
    // testc: CF ⇔ (~sector & mask) == 0 ⇔ all k bits present.
    if (_mm256_testc_si256(sector, SectorMask(hash))) sel[out++] = s;
  }
  return out;
}

}  // namespace

#endif  // BQO_X86

void HashColumnKernel(const int64_t* values, int n, uint64_t* out,
                      uint64_t seed) {
#if BQO_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    HashColumnAvx2(values, n, out, seed);
    return;
  }
#endif
  HashColumn(values, n, out, seed);
}

void HashCompositeBatchKernel(const int64_t* const* cols, size_t num_cols,
                              int n, uint64_t* out, uint64_t seed) {
#if BQO_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    HashCompositeBatchAvx2(cols, num_cols, n, out, seed);
    return;
  }
#endif
  HashCompositeBatch(cols, num_cols, n, out, seed);
}

uint8_t BlockedBloomInsert(blocked_bloom::BloomBlock* blocks,
                           uint64_t block_mask, uint64_t hash) {
#if BQO_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    return BlockedInsertAvx2(blocks, block_mask, hash);
  }
#endif
  return blocked_bloom::ScalarInsertBlock(
      blocks[blocked_bloom::BlockIndex(hash, block_mask)], hash);
}

int BlockedBloomProbeBatch(const blocked_bloom::BloomBlock* blocks,
                           uint64_t block_mask, const uint64_t* hashes,
                           uint16_t* sel, int num_sel) {
#if BQO_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    return BlockedProbeBatchAvx2(blocks, block_mask, hashes, sel, num_sel);
  }
#endif
  return InterleavedProbeBatch(
      hashes, sel, num_sel,
      [&](uint64_t h) {
        __builtin_prefetch(&blocks[blocked_bloom::BlockIndex(h, block_mask)],
                           0, 1);
      },
      [&](uint64_t h) {
        return blocked_bloom::ScalarProbeBlock(
            blocks[blocked_bloom::BlockIndex(h, block_mask)], h);
      });
}

}  // namespace bqo

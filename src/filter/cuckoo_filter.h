// Cuckoo filter [15]: 4-way bucketized fingerprints with partial-key
// cuckoo displacement. Lower false-positive rate per bit than Bloom at high
// load factors; probes touch up to two buckets.
#pragma once

#include <cstdint>
#include <vector>

#include "src/filter/bitvector_filter.h"

namespace bqo {

class CuckooFilter final : public BitvectorFilter {
 public:
  CuckooFilter(int64_t expected_keys, int fingerprint_bits);

  void Insert(uint64_t hash) override;
  bool MayContain(uint64_t hash) const override;
  int MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                      int num_sel) const override;
  /// Insert-replay: every stored fingerprint of `other` (same geometry) is
  /// re-inserted through the duplicate-detecting path, so a (fingerprint,
  /// bucket) pair present in both operands counts once — NumInserted stays
  /// a logical-key count. Overflow freezes propagate: if either operand
  /// overflowed (or the replay itself overflows), the merged filter admits
  /// everything and the remaining operand keys are carried into the count
  /// without placement.
  ///
  /// Note: unlike Exact/Bloom merges, cuckoo contents are insert-order
  /// dependent (displacement history), so a merged build is sound but not
  /// bit-identical to a sequential one; the executor therefore fills cuckoo
  /// join filters sequentially in canonical order (see FillFilterParallel)
  /// to keep probe counts thread-count-invariant.
  void MergeFrom(const BitvectorFilter& other) override;

  bool exact() const override { return false; }
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(slots_.size() * sizeof(uint16_t));
  }
  /// Keys logically added (see BitvectorFilter::NumInserted): duplicate
  /// (fingerprint, bucket) pairs and inserts after overflow don't count.
  int64_t NumInserted() const override { return num_inserted_; }

  /// \brief True if an insert overflowed; the filter then admits everything
  /// (degenerates safely rather than dropping qualifying tuples).
  bool overflowed() const { return overflowed_; }

 private:
  static constexpr int kBucketSize = 4;
  static constexpr int kMaxKicks = 500;

  uint16_t FingerprintOf(uint64_t hash) const;
  uint64_t IndexOf(uint64_t hash) const;
  uint64_t AltIndex(uint64_t index, uint16_t fp) const;
  bool TryInsertAt(uint64_t bucket, uint16_t fp);
  bool BucketContains(uint64_t bucket, uint16_t fp) const;
  /// Dedup + place + displace for a fingerprint whose primary bucket is
  /// `i1`; shared by Insert and MergeFrom replay. Counts a logical add
  /// unless (fp, bucket) was already present; sets overflowed_ when the
  /// displacement budget exhausts.
  void InsertFingerprint(uint64_t i1, uint16_t fp);

  std::vector<uint16_t> slots_;  // num_buckets * kBucketSize, 0 = empty
  uint64_t bucket_mask_ = 0;
  uint16_t fp_mask_ = 0;
  int64_t num_inserted_ = 0;
  bool overflowed_ = false;
  uint64_t kick_state_ = 0x243f6a8885a308d3ULL;  // deterministic evictions
};

}  // namespace bqo

#include "src/filter/bitvector_filter.h"
#include "src/filter/blocked_bloom_filter.h"
#include "src/filter/bloom_filter.h"
#include "src/filter/cuckoo_filter.h"
#include "src/filter/exact_filter.h"

namespace bqo {

const char* FilterKindName(FilterKind kind) {
  switch (kind) {
    case FilterKind::kExact:
      return "exact";
    case FilterKind::kBloom:
      return "bloom";
    case FilterKind::kCuckoo:
      return "cuckoo";
    case FilterKind::kBlockedBloom:
      return "blocked";
  }
  return "unknown";
}

std::unique_ptr<BitvectorFilter> CreateFilter(const FilterConfig& config,
                                              int64_t expected_keys) {
  switch (config.kind) {
    case FilterKind::kExact:
      return std::make_unique<ExactFilter>(expected_keys);
    case FilterKind::kBloom:
      return std::make_unique<BloomFilter>(expected_keys,
                                           config.bloom_bits_per_key);
    case FilterKind::kCuckoo:
      return std::make_unique<CuckooFilter>(expected_keys,
                                            config.cuckoo_fingerprint_bits);
    case FilterKind::kBlockedBloom:
      return std::make_unique<BlockedBloomFilter>(expected_keys,
                                                  config.bloom_bits_per_key);
  }
  return nullptr;
}

}  // namespace bqo

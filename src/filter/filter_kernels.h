// Runtime-dispatched per-tuple kernels: batched key hashing and the
// register-blocked Bloom block primitives.
//
// Every function here has a scalar body and (on x86-64) an AVX2 body that
// compute the SAME function bit for bit — the AVX2 hash kernels emulate the
// 64x64 multiplies of Mix64 with 32-bit partial products, and the AVX2
// blocked-Bloom ops derive the identical per-word bit positions as the
// scalar mirror. Dispatch happens once per *batch* call (one relaxed atomic
// load, see src/common/simd.h), never per key. Because both tiers are
// bit-identical, result checksums, FilterStats, and NumInserted journals are
// tier-invariant by construction; tests/test_simd_kernels.cc pins that on
// adversarial lengths and end-to-end plans.
//
// Alignment contract: blocked-Bloom storage is an array of 64-byte
// `BloomBlock`s allocated 64-byte aligned (alignas on the struct plus the
// aligned-operator-new the vector uses for over-aligned types), so each
// 32-byte sector can be read with aligned AVX2 loads. ASan/UBSan CI runs the
// parity suite so a misaligned sector load fails loudly, not slowly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/hash.h"
#include "src/common/simd.h"

namespace bqo {

// ---------------------------------------------------------------------------
// Dispatched batched hashing. Drop-in replacements for HashColumn /
// HashCompositeBatch (src/common/hash.h): same signature, same bits, but the
// AVX2 tier folds 4 keys per iteration. The filters are populated through
// whatever tier is active and probed through whatever tier is active — the
// bit-parity contract is what makes mixing safe (a scalar-built filter never
// false-negatives an AVX2-hashed probe).
// ---------------------------------------------------------------------------

/// \brief out[i] = HashComposite(&values[i], 1, seed); 4 lanes/iter on AVX2.
void HashColumnKernel(const int64_t* values, int n, uint64_t* out,
                      uint64_t seed = 0);

/// \brief Column-wise composite-key hashing, bit-identical to
/// HashCompositeBatch; the AVX2 tier vectorizes the HashCombine fold across
/// 4 keys per iteration for every column.
void HashCompositeBatchKernel(const int64_t* const* cols, size_t num_cols,
                              int n, uint64_t* out, uint64_t seed = 0);

// ---------------------------------------------------------------------------
// Register-blocked Bloom primitives (the kernel under BlockedBloomFilter,
// src/filter/blocked_bloom_filter.h). Layout follows the
// Impala/boost-fast_multiblock32 design: a 64-byte block of 16 uint32 words,
// split into two 32-byte sectors of 8 words. A key picks its block from the
// hash's HIGH bits, a sector from bit 63, and exactly one bit in each of the
// sector's 8 words (k = 8) from the LOW 32 bits multiplied by 8 odd salts —
// so a probe is one cache line touched and, on AVX2, ONE 256-bit mask test.
// ---------------------------------------------------------------------------

namespace blocked_bloom {

inline constexpr int kWordsPerSector = 8;
inline constexpr int kProbesPerKey = kWordsPerSector;  // one bit per word

/// 64-byte cache-line block: two 8-word sectors, each probed as one AVX2
/// register. alignas(64) also makes every sector 32-byte aligned.
struct alignas(64) BloomBlock {
  uint32_t words[2 * kWordsPerSector] = {};
};

/// Odd multiplicative salts (Impala's blocked-Bloom constants); word w's bit
/// position is the top 5 bits of h32 * kSalt[w].
inline constexpr uint32_t kSalt[kWordsPerSector] = {
    0x47b6137bU, 0x44974d91U, 0x8824ad5bU, 0xa2b7289dU,
    0x705495c7U, 0x2df1424bU, 0x9efc4947U, 0x5c6bfb31U};

/// \brief Block index for `hash` (high bits, per the layout above).
/// `block_mask` is block_count - 1 (power of two).
inline uint64_t BlockIndex(uint64_t hash, uint64_t block_mask) {
  return (hash >> 32) & block_mask;
}

/// \brief First word of the 8-word sector `hash` maps to within its block.
inline int SectorBase(uint64_t hash) {
  return static_cast<int>(hash >> 63) * kWordsPerSector;
}

/// \brief Bit mask within sector word `w` — the scalar mirror of one AVX2
/// lane (mullo by salt, take top 5 bits as the shift).
inline uint32_t WordMask(uint64_t hash, int w) {
  const uint32_t h32 = static_cast<uint32_t>(hash);
  return 1u << ((h32 * kSalt[w]) >> 27);
}

/// \brief Scalar reference probe of one block; the AVX2 tier must agree on
/// every (block contents, hash) pair. Exposed for tests and journal replay.
inline bool ScalarProbeBlock(const BloomBlock& block, uint64_t hash) {
  const int base = SectorBase(hash);
  for (int w = 0; w < kWordsPerSector; ++w) {
    if ((block.words[base + w] & WordMask(hash, w)) == 0) return false;
  }
  return true;
}

/// \brief Scalar reference insert into one block. Returns the new-probes
/// mask (bit w set ⇔ word w's bit was 0 before), the unit MergeFrom's
/// journal replay counts with — identical across tiers by construction.
inline uint8_t ScalarInsertBlock(BloomBlock& block, uint64_t hash) {
  const int base = SectorBase(hash);
  uint8_t new_probes = 0;
  for (int w = 0; w < kWordsPerSector; ++w) {
    const uint32_t mask = WordMask(hash, w);
    uint32_t& word = block.words[base + w];
    if ((word & mask) == 0) new_probes |= static_cast<uint8_t>(1u << w);
    word |= mask;
  }
  return new_probes;
}

}  // namespace blocked_bloom

/// \brief Dispatched single-key insert into a blocked-Bloom block array.
/// Returns the new-probes mask (see ScalarInsertBlock). On AVX2 the k bits
/// are built and OR-ed in with one 256-bit mask op.
uint8_t BlockedBloomInsert(blocked_bloom::BloomBlock* blocks,
                           uint64_t block_mask, uint64_t hash);

/// \brief Dispatched batched probe over a selection vector (the
/// MayContainBatch contract of bitvector_filter.h: survivors compacted to
/// the front of `sel` in place, new count returned, pass set bit-identical
/// to the scalar per-key probe). The AVX2 tier tests each key's sector with
/// one _mm256_testc_si256; both tiers prefetch the probed line ahead of use.
int BlockedBloomProbeBatch(const blocked_bloom::BloomBlock* blocks,
                           uint64_t block_mask, const uint64_t* hashes,
                           uint16_t* sel, int num_sel);

}  // namespace bqo

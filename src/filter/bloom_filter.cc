#include "src/filter/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "src/common/bit_util.h"
#include "src/common/hash.h"
#include "src/common/macros.h"
#include "src/filter/probe_batch.h"

namespace bqo {

BloomFilter::BloomFilter(int64_t expected_keys, double bits_per_key)
    : BitvectorFilter(FilterKind::kBloom) {
  BQO_CHECK(bits_per_key >= 1.0);
  const double total_bits =
      static_cast<double>(expected_keys < 16 ? 16 : expected_keys) *
      bits_per_key;
  const uint64_t num_blocks = NextPow2(
      static_cast<uint64_t>(std::ceil(total_bits / 512.0)));
  blocks_.assign(num_blocks, Block{});
  block_mask_ = num_blocks - 1;
  // The information-theoretic optimum is k = 0.693 * bits/key, but probes
  // within a block are sequentially dependent, so past ~4 the extra probes
  // cost more CPU (Cf) than their FP reduction saves. Cap at 4 — the same
  // trade commercial blocked-Bloom implementations make. The lower clamp
  // matters too: round() alone hits k = 0 below ~0.72 bits/key, a filter
  // that sets no bits and admits everything, so if the bits_per_key >= 1.0
  // check above is ever relaxed this keeps the filter sound.
  k_ = std::clamp(static_cast<int>(std::lround(bits_per_key * 0.6931)), 1, 4);
}

void BloomFilter::Insert(uint64_t hash) {
  Block& block = blocks_[hash & block_mask_];
  // Double hashing within the block: bit_i = h1 + i*h2 (mod 512).
  uint64_t h1 = hash >> 17;
  const uint64_t h2 = (Mix64(hash) | 1);  // odd stride
  uint8_t new_probes = 0;
  for (int i = 0; i < k_; ++i) {
    const uint64_t bit = h1 & 511;
    const uint64_t mask = uint64_t{1} << (bit & 63);
    const uint64_t word = block.words[bit >> 6];
    new_probes |= static_cast<uint8_t>(static_cast<uint8_t>((word & mask) == 0)
                                       << i);
    block.words[bit >> 6] = word | mask;
    h1 += h2;
  }
  // Count only inserts that logically add a key: if every bit was already
  // set the key was indistinguishable from present (a duplicate, or a key
  // the filter already can't reject), so n — the key count TheoreticalFpRate
  // and the cost model divide by — stays an (approximate) distinct count.
  if (new_probes != 0) {
    ++num_inserted_;
    if (tracking_) journal_.push_back(TrackedInsert{hash, new_probes});
  }
}

bool BloomFilter::ProbeBitsSet(uint64_t hash, uint8_t probe_mask) const {
  const Block& block = blocks_[hash & block_mask_];
  uint64_t h1 = hash >> 17;
  const uint64_t h2 = (Mix64(hash) | 1);
  for (int i = 0; i < k_; ++i) {
    const uint64_t bit = h1 & 511;
    if ((probe_mask & (1u << i)) != 0 &&
        (block.words[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
    h1 += h2;
  }
  return true;
}

void BloomFilter::MergeFrom(const BitvectorFilter& other) {
  BQO_CHECK(other.kind() == FilterKind::kBloom);
  const auto& src = static_cast<const BloomFilter&>(other);
  BQO_CHECK_EQ(blocks_.size(), src.blocks_.size());
  BQO_CHECK_EQ(k_, src.k_);
  // Count before ORing the bits: `this` still holds exactly the prefix
  // partitions' bits, so a journaled insert of `src` counts iff one of the
  // bits it newly set within its own partition is still unset here — which
  // is precisely the sequential rule "counts iff it sets a bit no earlier
  // insert set" applied across the partition boundary.
  if (src.tracking_) {
    for (const TrackedInsert& t : src.journal_) {
      if (!ProbeBitsSet(t.hash, t.new_probes)) ++num_inserted_;
    }
  } else {
    // Untracked operand: its local count approximates its own partition's
    // logical keys; keys duplicated across partitions may double count.
    num_inserted_ += src.num_inserted_;
  }
  for (size_t b = 0; b < blocks_.size(); ++b) {
    for (int w = 0; w < 8; ++w) {
      blocks_[b].words[w] |= src.blocks_[b].words[w];
    }
  }
}

bool BloomFilter::MayContain(uint64_t hash) const {
  const Block& block = blocks_[hash & block_mask_];
  uint64_t h1 = hash >> 17;
  const uint64_t h2 = (Mix64(hash) | 1);
  for (int i = 0; i < k_; ++i) {
    const uint64_t bit = h1 & 511;
    if ((block.words[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
    h1 += h2;
  }
  return true;
}

int BloomFilter::MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                                 int num_sel) const {
  // The scalar test (with its per-word early exit) measured faster here
  // than a branchless all-k-bits variant: most misses fail on the first
  // word, and the line is already prefetched, so the early exit saves the
  // serially dependent double-hash steps that dominate the test.
  return InterleavedProbeBatch(
      hashes, sel, num_sel,
      [this](uint64_t h) {
        __builtin_prefetch(&blocks_[h & block_mask_], 0, 1);
      },
      [this](uint64_t h) { return MayContain(h); });
}

double BloomFilter::TheoreticalFpRate() const {
  const double m = static_cast<double>(blocks_.size()) * 512.0;
  const double n = static_cast<double>(num_inserted_ < 1 ? 1 : num_inserted_);
  const double k = static_cast<double>(k_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace bqo

// ExactFilter: an open-addressing hash set of 64-bit key hashes.
//
// No false positives and no false negatives (on the hash values): this is
// the filter the paper's analysis assumes ("if the bitvector filters have no
// false positives", Theorem 4.1/5.1). Note the composite-key *hash* is what
// is stored; with 64-bit mixed hashes, collisions across distinct key tuples
// are negligible at decision-support cardinalities (< 2^-24 at 10^6 keys).
#pragma once

#include <cstdint>
#include <vector>

#include "src/filter/bitvector_filter.h"

namespace bqo {

class ExactFilter final : public BitvectorFilter {
 public:
  explicit ExactFilter(int64_t expected_keys);

  void Insert(uint64_t hash) override;
  bool MayContain(uint64_t hash) const override;
  int MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                      int num_sel) const override;
  /// Set union: every stored hash of `other` is Insert()ed, so NumInserted
  /// stays the exact distinct-key count of the union (insertion dedups) and
  /// the merged contents equal a sequential build over both key sets in any
  /// order. `other` may have any capacity; only its kind must match.
  void MergeFrom(const BitvectorFilter& other) override;

  bool exact() const override { return true; }
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(slots_.size() * sizeof(uint64_t));
  }
  /// Keys logically added (see BitvectorFilter::NumInserted): exactly the
  /// distinct hashes inserted — duplicate Insert calls don't count.
  int64_t NumInserted() const override { return num_keys_; }

 private:
  void Grow();

  // 0 is the empty-slot sentinel; a genuine hash of 0 is tracked separately.
  std::vector<uint64_t> slots_;
  uint64_t mask_ = 0;
  int64_t num_keys_ = 0;     // distinct keys inserted (incl. the zero hash)
  bool has_zero_ = false;
};

}  // namespace bqo

// Shared skeleton for interleaved batched probing: prefetch the location of
// key j+kDist while testing key j, keeping the prefetch stream a fixed
// distance ahead of the demand stream, and compact the surviving selection
// indices in place (writes trail reads, and the j+kDist lookahead is never
// clobbered because at most j entries have been written back).
//
// Used by the Bloom and Exact filters, whose probes touch one location per
// key; the Cuckoo filter needs a two-location resolve and has its own
// chunked scheme (see cuckoo_filter.cc).
#pragma once

#include <cstdint>

namespace bqo {

/// \param prefetch  callable (uint64_t hash) -> void issuing the prefetch
/// \param test      callable (uint64_t hash) -> bool, the scalar probe
template <typename PrefetchFn, typename TestFn>
inline int InterleavedProbeBatch(const uint64_t* hashes, uint16_t* sel,
                                 int num_sel, PrefetchFn&& prefetch,
                                 TestFn&& test) {
  constexpr int kDist = 32;
  const int lead = num_sel < kDist ? num_sel : kDist;
  for (int j = 0; j < lead; ++j) {
    prefetch(hashes[sel[j]]);
  }
  int out = 0;
  for (int j = 0; j < num_sel; ++j) {
    if (j + kDist < num_sel) {
      prefetch(hashes[sel[j + kDist]]);
    }
    const uint16_t s = sel[j];
    if (test(hashes[s])) sel[out++] = s;
  }
  return out;
}

}  // namespace bqo

#include "src/filter/blocked_bloom_filter.h"

#include <cmath>

#include "src/common/bit_util.h"
#include "src/common/macros.h"

namespace bqo {

BlockedBloomFilter::BlockedBloomFilter(int64_t expected_keys,
                                       double bits_per_key)
    : BitvectorFilter(FilterKind::kBlockedBloom) {
  BQO_CHECK(bits_per_key >= 1.0);
  // Same space rule as the classical filter: bits_per_key * n total bits,
  // rounded up to a power-of-two count of 512-bit (64-byte) blocks.
  const double total_bits =
      static_cast<double>(expected_keys < 16 ? 16 : expected_keys) *
      bits_per_key;
  const uint64_t num_blocks =
      NextPow2(static_cast<uint64_t>(std::ceil(total_bits / 512.0)));
  blocks_.assign(num_blocks, blocked_bloom::BloomBlock{});
  block_mask_ = num_blocks - 1;
}

void BlockedBloomFilter::Insert(uint64_t hash) {
  const uint8_t new_probes =
      BlockedBloomInsert(blocks_.data(), block_mask_, hash);
  // Same counting rule as BloomFilter: only inserts that set a new bit add
  // to the logical key count (duplicates and already-unrejectable keys
  // don't), so NumInserted approximates distinct n across kinds.
  if (new_probes != 0) {
    ++num_inserted_;
    if (tracking_) journal_.push_back(TrackedInsert{hash, new_probes});
  }
}

bool BlockedBloomFilter::MayContain(uint64_t hash) const {
  return blocked_bloom::ScalarProbeBlock(
      blocks_[blocked_bloom::BlockIndex(hash, block_mask_)], hash);
}

int BlockedBloomFilter::MayContainBatch(const uint64_t* hashes, uint16_t* sel,
                                        int num_sel) const {
  return BlockedBloomProbeBatch(blocks_.data(), block_mask_, hashes, sel,
                                num_sel);
}

bool BlockedBloomFilter::ProbeBitsSet(uint64_t hash,
                                      uint8_t probe_mask) const {
  const blocked_bloom::BloomBlock& block =
      blocks_[blocked_bloom::BlockIndex(hash, block_mask_)];
  const int base = blocked_bloom::SectorBase(hash);
  for (int w = 0; w < blocked_bloom::kWordsPerSector; ++w) {
    if ((probe_mask & (1u << w)) != 0 &&
        (block.words[base + w] & blocked_bloom::WordMask(hash, w)) == 0) {
      return false;
    }
  }
  return true;
}

void BlockedBloomFilter::MergeFrom(const BitvectorFilter& other) {
  BQO_CHECK(other.kind() == FilterKind::kBlockedBloom);
  const auto& src = static_cast<const BlockedBloomFilter&>(other);
  BQO_CHECK_EQ(blocks_.size(), src.blocks_.size());
  // Count before ORing: `this` still holds the prefix partitions' bits, so
  // a journaled insert counts iff a bit it newly set in its own partition
  // is still unset here (the sequential rule across the partition
  // boundary; see BloomFilter::MergeFrom).
  if (src.tracking_) {
    for (const TrackedInsert& t : src.journal_) {
      if (!ProbeBitsSet(t.hash, t.new_probes)) ++num_inserted_;
    }
  } else {
    num_inserted_ += src.num_inserted_;
  }
  for (size_t b = 0; b < blocks_.size(); ++b) {
    for (int w = 0; w < 2 * blocked_bloom::kWordsPerSector; ++w) {
      blocks_[b].words[w] |= src.blocks_[b].words[w];
    }
  }
}

double BlockedBloomFilter::TheoreticalFpRate() const {
  // Poisson mixture over sector occupancy. A probe key picks one of the
  // 2 * blocks 256-bit sectors; with j keys resident there, each of its 8
  // word-bits is set with probability 1 - (31/32)^j (inserts pick one of 32
  // bit positions per word), and a false positive needs all 8. Truncate the
  // Poisson tail once the running mass covers ~all of it.
  const double sectors = static_cast<double>(blocks_.size()) * 2.0;
  const double n = static_cast<double>(num_inserted_ < 1 ? 1 : num_inserted_);
  const double lambda = n / sectors;
  double fpr = 0.0;
  double pois = std::exp(-lambda);  // P(j = 0)
  double mass = 0.0;
  double per_word = 0.0;  // 1 - (31/32)^j, updated incrementally
  for (int j = 0; j < 512 && mass < 1.0 - 1e-12; ++j) {
    if (j > 0) {
      pois *= lambda / static_cast<double>(j);
      per_word = 1.0 - (1.0 - per_word) * (31.0 / 32.0);
    }
    double all_words = per_word;
    for (int w = 1; w < blocked_bloom::kWordsPerSector; ++w) {
      all_words *= per_word;
    }
    fpr += pois * all_words;
    mass += pois;
  }
  return fpr;
}

}  // namespace bqo

// Cost-based bitvector filters (Section 6.3).
//
// Creating and probing a filter costs Cf per tuple against a probe saving of
// Cp per eliminated tuple; a filter pays off only when it eliminates more
// than lambda_thresh = 1 - Cf/Cp of its input. The paper profiles
// lambda_thresh with a micro-benchmark (Figure 7) and ships 5%.
// PruneIneffectiveFilters estimates each filter's elimination fraction
// (lambda) with the cost model and marks losers pruned; the executor then
// neither creates nor probes them.
#pragma once

#include "src/filter/bitvector_filter.h"
#include "src/plan/cout.h"

namespace bqo {

/// \brief Default elimination threshold (the paper's profiled 5%).
inline constexpr double kDefaultLambdaThresh = 0.05;

/// \brief Estimate lambda for every filter in `plan` using `model` and mark
/// filters with lambda < lambda_thresh as pruned. Runs `passes` rounds
/// (pruning a filter changes the survivors' lambdas slightly; one extra pass
/// reaches a fixpoint in practice). Returns the number of pruned filters.
int PruneIneffectiveFilters(Plan* plan, CoutModel* model,
                            double lambda_thresh = kDefaultLambdaThresh,
                            int passes = 2);

/// \brief Profile-based threshold: lambda_thresh = 1 - Cf/Cp for measured
/// per-tuple filter-check and hash-probe costs (Section 6.3's formula).
double LambdaThreshold(double filter_check_ns, double hash_probe_ns);

// ---------------------------------------------------------------------------
// Filter-implementation menu (Section 6.3 extended to a per-filter choice).
// Two Bloom kinds are on the menu with opposite strengths: the classical
// cache-line-blocked filter (serial double-hashed probes, better FPR) and
// the register-blocked SIMD filter (one 256-bit mask op per probe, higher
// FPR at equal bits — see blocked_bloom_filter.h). For each unpruned filter
// the model compares
//
//   cost(kind) = probes * Cf_kind  +  probes * lambda * fpr_kind * D * Cp
//
// probe cost versus leaked-tuple cost: a false positive is a tuple the
// filter should have eliminated (probes * lambda of them arrive) that
// instead rides through every join between the application site and the
// creating join — D hash probes at Cp each — before the source join's table
// rejects it. High probe volume and shallow application favor the blocked
// kind (cheap Cf dominates); tight space budgets and deep application favor
// the classical kind (the blocked FPR penalty compounds D times).
// ---------------------------------------------------------------------------

struct FilterMenuOptions {
  /// Annotate each unpruned PlanFilter with its chosen kind. Annotation
  /// only — execution honors it iff FilterConfig::use_plan_kinds is set.
  bool enabled = true;
  /// Space budget both curves are evaluated at (matches
  /// FilterConfig::bloom_bits_per_key at execution time).
  double bits_per_key = 10.0;
  /// Measured per-probe costs, ns (Cf per kind and the downstream
  /// hash-probe Cp), refreshable from bench_filter_micro's
  /// filter_probe_1M lines (the Figure 7 methodology).
  double classical_probe_ns = 4.0;
  double blocked_probe_ns = 1.5;
  double hash_probe_ns = 20.0;
};

/// \brief Model false-positive rate of `kind` at design load (n = m /
/// bits_per_key). Classical Bloom: (1 - e^{-k/b})^k with the
/// implementation's k clamp. Blocked Bloom: the Poisson sector-occupancy
/// mixture of BlockedBloomFilter::TheoreticalFpRate — measurably above the
/// classical curve at equal bits, which is exactly the trade the menu
/// prices. Exact: 0.
double EstimatedFilterFpr(FilterKind kind, double bits_per_key);

/// \brief Annotate every unpruned filter in `plan` with the menu kind that
/// minimizes cost(kind) above (PlanFilter::chosen_kind); pruned filters get
/// -1. Probe volume, lambda, and leak depth D come from `model` and the
/// plan shape. Returns the number of filters that chose the blocked kind.
int SelectFilterImplementations(Plan* plan, CoutModel* model,
                                const FilterMenuOptions& menu = {});

}  // namespace bqo

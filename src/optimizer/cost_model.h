// Cost-based bitvector filters (Section 6.3).
//
// Creating and probing a filter costs Cf per tuple against a probe saving of
// Cp per eliminated tuple; a filter pays off only when it eliminates more
// than lambda_thresh = 1 - Cf/Cp of its input. The paper profiles
// lambda_thresh with a micro-benchmark (Figure 7) and ships 5%.
// PruneIneffectiveFilters estimates each filter's elimination fraction
// (lambda) with the cost model and marks losers pruned; the executor then
// neither creates nor probes them.
#pragma once

#include "src/plan/cout.h"

namespace bqo {

/// \brief Default elimination threshold (the paper's profiled 5%).
inline constexpr double kDefaultLambdaThresh = 0.05;

/// \brief Estimate lambda for every filter in `plan` using `model` and mark
/// filters with lambda < lambda_thresh as pruned. Runs `passes` rounds
/// (pruning a filter changes the survivors' lambdas slightly; one extra pass
/// reaches a fixpoint in practice). Returns the number of pruned filters.
int PruneIneffectiveFilters(Plan* plan, CoutModel* model,
                            double lambda_thresh = kDefaultLambdaThresh,
                            int passes = 2);

/// \brief Profile-based threshold: lambda_thresh = 1 - Cf/Cp for measured
/// per-tuple filter-check and hash-probe costs (Section 6.3's formula).
double LambdaThreshold(double filter_check_ns, double hash_probe_ns);

}  // namespace bqo

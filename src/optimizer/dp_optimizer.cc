#include "src/optimizer/dp_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace bqo {

namespace {

/// Order-independent cardinality estimate of the join of a relation set:
/// product of filtered cardinalities times one containment factor per edge.
/// This is the set-function that makes filter-blind Cout DP-decomposable
/// (the cost of extending an order depends only on the set reached).
class SetCardEstimator {
 public:
  explicit SetCardEstimator(const JoinGraph& graph) : graph_(graph) {
    // Per-edge distinct estimates, Cardenas-scaled by local predicates.
    for (const JoinEdge& e : graph.edges()) {
      edge_sel_.push_back(1.0 /
                          std::max({Distinct(e.left, e.left_cols),
                                    Distinct(e.right, e.right_cols), 1.0}));
    }
  }

  double Card(RelSet set) {
    auto it = memo_.find(set);
    if (it != memo_.end()) return it->second;
    double card = 1.0;
    for (int r = 0; r < graph_.num_relations(); ++r) {
      if (RelSetContains(set, r)) {
        card *= std::max(graph_.relation(r).filtered_rows, 1.0);
      }
    }
    for (int e = 0; e < graph_.num_edges(); ++e) {
      const JoinEdge& edge = graph_.edge(e);
      if (RelSetContains(set, edge.left) &&
          RelSetContains(set, edge.right)) {
        card *= edge_sel_[static_cast<size_t>(e)];
      }
    }
    card = std::max(card, 1.0);
    memo_.emplace(set, card);
    return card;
  }

 private:
  double Distinct(int rel, const std::vector<std::string>& cols) const {
    const RelationRef& r = graph_.relation(rel);
    if (r.table == nullptr) {
      return std::max(r.filtered_rows, 1.0);
    }
    double d = 1.0;
    for (const auto& col : cols) {
      const int idx = r.table->ColumnIndex(col);
      double cd = idx < 0 ? r.base_rows
                          : static_cast<double>(
                                r.table->column(idx).CountDistinct());
      if (cd <= 0) cd = std::max(r.base_rows, 1.0);
      // Yao scaling under the local predicate (see EstimatedCoutModel).
      const double base = std::max(r.base_rows, 1.0);
      const double sel = std::min(1.0, r.filtered_rows / base);
      const double reduced = cd * (1.0 - std::pow(1.0 - sel, base / cd));
      d *= std::max(1.0, std::min(cd, reduced));
    }
    return std::max(1.0, std::min(d, std::max(r.filtered_rows, 1.0)));
  }

  const JoinGraph& graph_;
  std::vector<double> edge_sel_;
  std::unordered_map<RelSet, double> memo_;
};

struct DpEntry {
  double cost = std::numeric_limits<double>::infinity();
  std::vector<int> order;
};

Plan RightDeepDp(const JoinGraph& graph, SetCardEstimator* est) {
  const int n = graph.num_relations();
  std::unordered_map<RelSet, DpEntry> table;
  // Seed singletons: Cout of a leaf is its filtered cardinality.
  for (int r = 0; r < n; ++r) {
    DpEntry e;
    e.cost = std::max(graph.relation(r).filtered_rows, 1.0);
    e.order = {r};
    table.emplace(RelBit(r), std::move(e));
  }
  // Expand by popcount (every state processed once per size).
  std::vector<std::vector<RelSet>> by_size(static_cast<size_t>(n + 1));
  for (int r = 0; r < n; ++r) by_size[1].push_back(RelBit(r));
  for (int size = 1; size < n; ++size) {
    for (RelSet set : by_size[static_cast<size_t>(size)]) {
      const DpEntry& cur = table.at(set);
      const RelSet neighbors = graph.Neighbors(set);
      for (int r = 0; r < n; ++r) {
        if (!RelSetContains(neighbors, r)) continue;
        const RelSet next = set | RelBit(r);
        const double add =
            std::max(graph.relation(r).filtered_rows, 1.0) +
            est->Card(next);
        const double cost = cur.cost + add;
        auto [it, inserted] = table.try_emplace(next);
        if (inserted) by_size[static_cast<size_t>(size + 1)].push_back(next);
        if (cost < it->second.cost) {
          it->second.cost = cost;
          it->second.order = cur.order;
          it->second.order.push_back(r);
        }
      }
    }
  }
  const RelSet all = graph.AllRels();
  BQO_CHECK_MSG(table.count(all) > 0, "join graph is disconnected");
  return BuildRightDeepPlan(graph, table.at(all).order);
}

std::unique_ptr<PlanNode> BushyDp(const JoinGraph& graph,
                                  SetCardEstimator* est) {
  const int n = graph.num_relations();
  const RelSet all = graph.AllRels();
  struct Entry {
    double cost = std::numeric_limits<double>::infinity();
    std::unique_ptr<PlanNode> plan;
  };
  std::unordered_map<RelSet, Entry> table;
  for (int r = 0; r < n; ++r) {
    Entry e;
    e.cost = std::max(graph.relation(r).filtered_rows, 1.0);
    e.plan = MakeLeaf(graph, r);
    table.emplace(RelBit(r), std::move(e));
  }
  // Iterate all subsets in increasing numeric order (submasks are smaller).
  for (RelSet set = 1; set <= all; ++set) {
    if (RelSetCount(set) < 2) continue;
    if (!graph.IsConnected(set)) continue;
    Entry best;
    // Enumerate proper submask partitions (each unordered pair once via the
    // lowest-bit convention).
    const RelSet low = set & (~set + 1);
    for (RelSet s1 = (set - 1) & set; s1 != 0; s1 = (s1 - 1) & set) {
      if ((s1 & low) == 0) continue;  // canonical side holds the low bit
      const RelSet s2 = set & ~s1;
      auto it1 = table.find(s1);
      auto it2 = table.find(s2);
      if (it1 == table.end() || it2 == table.end()) continue;
      if (graph.EdgesBetweenSets(s1, s2).empty()) continue;
      const double cost =
          it1->second.cost + it2->second.cost + est->Card(set);
      if (cost < best.cost) {
        // Smaller side builds (standard hash-join convention).
        const bool s1_builds = est->Card(s1) <= est->Card(s2);
        auto build = (s1_builds ? it1 : it2)->second.plan.get();
        auto probe = (s1_builds ? it2 : it1)->second.plan.get();
        // Clone from stored subplans (they may serve several supersets).
        Plan tmp;
        tmp.graph = &graph;
        best.cost = cost;
        std::unique_ptr<PlanNode> joined = MakeJoin(
            graph, ClonePlanNode(*build), ClonePlanNode(*probe));
        BQO_CHECK(joined != nullptr);
        best.plan = std::move(joined);
      }
    }
    if (best.plan != nullptr) {
      table[set] = std::move(best);
    }
  }
  auto it = table.find(all);
  BQO_CHECK_MSG(it != table.end(), "join graph is disconnected");
  return std::move(it->second.plan);
}

}  // namespace

Plan OptimizeGreedy(const JoinGraph& graph, CoutModel* model) {
  (void)model;
  SetCardEstimator est(graph);
  const int n = graph.num_relations();
  int start = 0;
  for (int r = 1; r < n; ++r) {
    if (graph.relation(r).filtered_rows <
        graph.relation(start).filtered_rows) {
      start = r;
    }
  }
  std::vector<int> order = {start};
  RelSet set = RelBit(start);
  while (static_cast<int>(order.size()) < n) {
    const RelSet neighbors = graph.Neighbors(set);
    int best_rel = -1;
    double best_card = std::numeric_limits<double>::infinity();
    for (int r = 0; r < n; ++r) {
      if (!RelSetContains(neighbors, r)) continue;
      const double card = est.Card(set | RelBit(r));
      if (card < best_card) {
        best_card = card;
        best_rel = r;
      }
    }
    BQO_CHECK_MSG(best_rel >= 0, "join graph is disconnected");
    order.push_back(best_rel);
    set |= RelBit(best_rel);
  }
  return BuildRightDeepPlan(graph, order);
}

Plan OptimizeDpBaseline(const JoinGraph& graph, CoutModel* model,
                        const DpOptions& options) {
  if (graph.num_relations() == 1) {
    Plan plan;
    plan.graph = &graph;
    plan.root = MakeLeaf(graph, 0);
    plan.Renumber();
    return plan;
  }
  if (graph.num_relations() > options.max_dp_relations) {
    return OptimizeGreedy(graph, model);
  }
  SetCardEstimator est(graph);
  if (!options.bushy) {
    return RightDeepDp(graph, &est);
  }
  Plan plan;
  plan.graph = &graph;
  plan.root = BushyDp(graph, &est);
  plan.Renumber();
  return plan;
}

}  // namespace bqo

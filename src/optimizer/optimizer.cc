#include "src/optimizer/optimizer.h"

#include <chrono>
#include <limits>

#include "src/optimizer/bqo.h"
#include "src/optimizer/cost_model.h"
#include "src/optimizer/dp_optimizer.h"
#include "src/plan/enumerate.h"
#include "src/plan/pushdown.h"
#include "src/stats/estimated_cost.h"

namespace bqo {

const char* OptimizerModeName(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kBaselinePostProcess:
      return "baseline-postprocess";
    case OptimizerMode::kNoBitvectors:
      return "no-bitvectors";
    case OptimizerMode::kBqoShallow:
      return "bqo-shallow";
    case OptimizerMode::kAlternativePlan:
      return "bqo-alternative-plan";
    case OptimizerMode::kExhaustive:
      return "exhaustive-bitvector-aware";
  }
  return "unknown";
}

namespace {

Plan ExhaustiveBitvectorAware(const JoinGraph& graph, CoutModel* model,
                              size_t limit, bool* fell_back) {
  const size_t count = CountRightDeepOrders(graph, limit + 1);
  if (count > limit) {
    *fell_back = true;
    return OptimizeBqo(graph, model);
  }
  *fell_back = false;
  Plan best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& order : EnumerateRightDeepOrders(graph)) {
    Plan plan = BuildRightDeepPlan(graph, order);
    PushDownBitvectors(&plan);
    const double cost = model->Cout(plan);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(plan);
    }
  }
  return best;
}

}  // namespace

OptimizedQuery OptimizeQuery(const JoinGraph& graph, StatsCatalog* stats,
                             const OptimizerOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  EstimatedCoutModel blind_model(stats, /*fp_rate=*/0.0);
  EstimatedCoutModel aware_model(stats, options.filter_fp_rate);

  OptimizedQuery result;
  DpOptions dp;
  dp.max_dp_relations = options.max_dp_relations;

  switch (options.mode) {
    case OptimizerMode::kBaselinePostProcess:
    case OptimizerMode::kNoBitvectors: {
      // Join order chosen blind to filters; Algorithm 1 as post-processing.
      result.plan = OptimizeDpBaseline(graph, &blind_model, dp);
      break;
    }
    case OptimizerMode::kBqoShallow: {
      result.plan = OptimizeBqo(graph, &aware_model);
      break;
    }
    case OptimizerMode::kAlternativePlan: {
      Plan baseline = OptimizeDpBaseline(graph, &blind_model, dp);
      PushDownBitvectors(&baseline);
      const double baseline_cost = aware_model.Cout(baseline);
      Plan bqo = OptimizeBqo(graph, &aware_model);
      PushDownBitvectors(&bqo);
      const double bqo_cost = aware_model.Cout(bqo);
      result.plan =
          bqo_cost <= baseline_cost ? std::move(bqo) : std::move(baseline);
      break;
    }
    case OptimizerMode::kExhaustive: {
      bool fell_back = false;
      result.plan = ExhaustiveBitvectorAware(
          graph, &aware_model, options.exhaustive_limit, &fell_back);
      break;
    }
  }

  if (options.mode == OptimizerMode::kNoBitvectors) {
    ClearBitvectors(&result.plan);
  } else {
    PushDownBitvectors(&result.plan);
    if (options.lambda_thresh >= 0) {
      result.pruned_filters = PruneIneffectiveFilters(
          &result.plan, &aware_model, options.lambda_thresh);
    }
    // With the menu of survivors settled, pick each filter's
    // implementation (annotation only; see FilterMenuOptions).
    SelectFilterImplementations(&result.plan, &aware_model,
                                options.filter_menu);
  }
  result.estimated_cost = aware_model.Cout(result.plan);
  result.optimize_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace bqo

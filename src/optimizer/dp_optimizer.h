// Baseline join-order optimization: dynamic programming that is blind to
// bitvector filters — the behavior of "the original Microsoft SQL Server"
// the paper compares against, where filters are added to the winning plan
// only as a post-processing step (Algorithm 1).
//
// Two enumeration modes:
//  * right-deep (the space the paper analyzes; default for comparisons),
//  * bushy DPsub over connected subgraphs (ablation).
// Queries beyond `max_dp_relations` fall back to a greedy min-expansion
// heuristic, mirroring how industrial optimizers cap exhaustive search.
#pragma once

#include "src/plan/cout.h"

namespace bqo {

struct DpOptions {
  bool bushy = false;
  int max_dp_relations = 14;
};

/// \brief Return the estimated-minimum-Cout join order, costing plans
/// WITHOUT bitvector filter effects (`model` is consulted on plans whose
/// filter annotations are cleared). The returned plan carries no filter
/// annotation; callers post-process with PushDownBitvectors.
Plan OptimizeDpBaseline(const JoinGraph& graph, CoutModel* model,
                        const DpOptions& options = {});

/// \brief Greedy right-deep order: start at the smallest filtered relation,
/// repeatedly append the neighbor minimizing the estimated next
/// intermediate size. Used directly for very large queries.
Plan OptimizeGreedy(const JoinGraph& graph, CoutModel* model);

}  // namespace bqo

// Canonical build-side signatures for cross-query build sharing.
//
// Two hash joins in two different queries may share one build result
// (src/exec/build_side.h, cached by src/server/build_cache.h) exactly when
// constructing it would read the same inputs and produce byte-identical
// output. This module decides that question conservatively, reusing PR 7's
// shape machinery (src/plan/predicate_shape.h): the predicate's structure
// and its bound constants enter the signature separately, so a plan served
// by the shape cache with re-bound literals derives its signature from the
// *bound* predicate — two re-binds of one template share a build only when
// their constants agree.
//
// A build side is shareable iff its build child is a bare leaf scan with no
// pushed-down bitvector filters. A filtered scan's output is semijoin-
// reduced against other relations' contents — sharing it across queries
// whose other predicates differ would corrupt results — and a composite
// (join) build child embeds an entire subplan; both fall back to private
// construction. The signature then names everything the drained table and
// the created filter depend on:
//
//   * table name (content changes are covered by the catalog version the
//     BuildCache keys flights and entries on, not by the signature),
//   * the scan's output schema columns in order (the row-major layout),
//   * predicate shape + bound constants (which rows survive),
//   * the join's build key positions (which columns are hashed),
//   * the filter configuration and whether a filter is created at all
//     (kind/sizing change the cached filter object).
//
// Thread count is deliberately absent: builds drain in canonical morsel
// order (pipeline.h), so the result is identical at any worker share.
#pragma once

#include <string>
#include <vector>

#include "src/exec/operator.h"
#include "src/filter/bitvector_filter.h"

namespace bqo {

/// \brief Canonical signature of the build side rooted at `build_child`,
/// or "" when the build is not shareable (non-scan child, or a scan with
/// pushed-down runtime filters).
std::string BuildSideSignature(const PhysicalOperator& build_child,
                               const std::vector<int>& build_key_positions,
                               const FilterConfig& filter_config,
                               bool creates_filter);

}  // namespace bqo

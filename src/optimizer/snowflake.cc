#include "src/optimizer/snowflake.h"

#include <algorithm>

namespace bqo {

std::vector<PlanUnit> MakeLeafUnits(const JoinGraph& graph) {
  std::vector<PlanUnit> units;
  units.reserve(static_cast<size_t>(graph.num_relations()));
  for (int r = 0; r < graph.num_relations(); ++r) {
    PlanUnit unit;
    unit.rels = RelBit(r);
    unit.fragment = MakeLeaf(graph, r);
    unit.est_card = std::max(graph.relation(r).filtered_rows, 1.0);
    units.push_back(std::move(unit));
  }
  return units;
}

bool UnitSideUnique(const JoinGraph& graph, const PlanUnit& unit, int eid) {
  if (!unit.IsSingleRelation()) return false;
  const JoinEdge& e = graph.edge(eid);
  const int rel = unit.SingleRelation();
  if (e.left == rel) return e.left_unique;
  if (e.right == rel) return e.right_unique;
  return false;
}

std::vector<int> FindFactUnits(const JoinGraph& graph,
                               const std::vector<PlanUnit>& units,
                               const std::vector<int>& active) {
  std::vector<int> facts;
  for (int u : active) {
    const PlanUnit& unit = units[static_cast<size_t>(u)];
    if (unit.optimized) continue;
    bool referenced = false;
    for (int v : active) {
      if (v == u) continue;
      for (int eid : graph.EdgesBetweenSets(
               unit.rels, units[static_cast<size_t>(v)].rels)) {
        if (UnitSideUnique(graph, unit, eid)) {
          referenced = true;
          break;
        }
      }
      if (referenced) break;
    }
    if (!referenced) facts.push_back(u);
  }
  return facts;
}

std::vector<int> ExpandSnowflake(const JoinGraph& graph,
                                 const std::vector<PlanUnit>& units,
                                 const std::vector<int>& active, int fact) {
  std::vector<int> members = {fact};
  std::vector<bool> in_set(units.size(), false);
  in_set[static_cast<size_t>(fact)] = true;
  bool grew = true;
  while (grew) {
    grew = false;
    for (int v : active) {
      if (in_set[static_cast<size_t>(v)]) continue;
      const PlanUnit& cand = units[static_cast<size_t>(v)];
      if (cand.optimized) continue;  // composites are never dimensions
      bool reachable = false;
      for (int m : members) {
        for (int eid : graph.EdgesBetweenSets(
                 units[static_cast<size_t>(m)].rels, cand.rels)) {
          if (UnitSideUnique(graph, cand, eid)) {
            reachable = true;
            break;
          }
        }
        if (reachable) break;
      }
      if (reachable) {
        members.push_back(v);
        in_set[static_cast<size_t>(v)] = true;
        grew = true;
      }
    }
  }
  return members;
}

std::vector<std::vector<int>> GroupBranches(const JoinGraph& graph,
                                            const std::vector<PlanUnit>& units,
                                            const std::vector<int>& members,
                                            int fact) {
  std::vector<int> dims;
  for (int m : members) {
    if (m != fact) dims.push_back(m);
  }
  std::vector<bool> used(units.size(), false);
  std::vector<std::vector<int>> groups;
  for (int seed : dims) {
    if (used[static_cast<size_t>(seed)]) continue;
    std::vector<int> group = {seed};
    used[static_cast<size_t>(seed)] = true;
    for (size_t i = 0; i < group.size(); ++i) {
      for (int v : dims) {
        if (used[static_cast<size_t>(v)]) continue;
        if (!graph
                 .EdgesBetweenSets(
                     units[static_cast<size_t>(group[i])].rels,
                     units[static_cast<size_t>(v)].rels)
                 .empty()) {
          group.push_back(v);
          used[static_cast<size_t>(v)] = true;
        }
      }
    }
    std::sort(group.begin(), group.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace bqo

// Parameterized plans: optimization output annotated for shape-cache reuse.
//
// A serving workload sends the same query *template* with varying literals.
// Re-running the optimizer per instance wastes the paper's Section 6.5
// overhead; blindly reusing the first instance's plan risks serving a join
// order chosen for very different selectivities. The paper's robustness
// observation — the bitvector-aware plan stays (near-)optimal while the
// estimated filter lambdas stay near their optimize-time values — gives
// the reuse rule implemented here:
//
//  * OptimizeParameterized records, next to the optimized plan, the
//    constant slot table it was bound under, each relation's optimize-time
//    selectivity, and every filter's estimated lambda.
//  * For each relation whose predicate has constant slots it derives a
//    **validity band**: the selectivity range within which re-running the
//    optimizer still picks the same join order and the same unpruned
//    filter menu. The band is found by probe re-optimizations at geometric
//    steps of OptimizerOptions::reopt_sel_band (scaling that relation's
//    filtered_rows and re-optimizing); the edge is the last stable step.
//
// The serving layer (src/server/plan_cache.h) then re-binds new constants
// into the cached shape, re-estimates only the moved relations, and serves
// the cached join order iff every moved selectivity lands inside its band
// — escalating to full re-optimization otherwise.
#pragma once

#include <vector>

#include "src/optimizer/optimizer.h"

namespace bqo {

/// \brief Selectivity range [lo, hi] (filtered_rows / base_rows) within
/// which a cached plan's join order and filter menu remain the optimizer's
/// choice for one relation. Slotless relations get the degenerate full
/// band [0, 1] — their selectivity cannot move without a shape change.
struct SelectivityBand {
  double lo = 0.0;
  double hi = 1.0;

  bool Contains(double sel) const { return sel >= lo && sel <= hi; }
};

/// \brief An optimized plan plus the slot/selectivity annotations the
/// plan-shape cache needs to re-bind and validity-check it. All vectors
/// indexed by relation, except estimated_lambda (by filter id).
struct ParameterizedPlan {
  OptimizedQuery optimized;
  /// Constant slot table the plan was optimized under (one vector per
  /// relation — which selectivity estimate depends on which slots).
  std::vector<std::vector<Value>> constants;
  /// Optimize-time selectivity per relation (filtered_rows / base_rows).
  std::vector<double> optimize_sel;
  /// Validity band per relation (see module comment).
  std::vector<SelectivityBand> bands;
  /// Estimated elimination fraction per filter id at optimize time — the
  /// reference the feedback EWMA drifts against (pruned filters: 0).
  std::vector<double> estimated_lambda;
};

/// \brief Optimize `graph` (which must have statistics attached) and
/// derive the reuse annotations. Costs the base OptimizeQuery plus up to
/// `band_probe_steps`+1 probe re-optimizations per direction per
/// predicated relation — paid on cache misses only.
ParameterizedPlan OptimizeParameterized(const JoinGraph& graph,
                                        StatsCatalog* stats,
                                        const OptimizerOptions& options);

}  // namespace bqo

// Snowflake detection and extraction (Section 6.2, Algorithm 3 helpers).
//
// Optimization operates over "plan units": initially one unit per relation;
// each round of Algorithm 3 collapses an optimized snowflake into a single
// composite unit whose fragment is the subplan produced by Algorithm 2.
//
// Fact-table test (paper): a relation is a fact candidate iff no join edge
// references it through a unique key of its own columns — i.e. nothing
// treats it as a dimension. Composite units are never fact candidates and
// never unique-side endpoints (a dimension key stops being unique once its
// table is joined into a composite).
#pragma once

#include <memory>
#include <vector>

#include "src/plan/plan.h"

namespace bqo {

struct PlanUnit {
  RelSet rels = 0;
  std::unique_ptr<PlanNode> fragment;
  double est_card = 0;   ///< estimated output cardinality (local filters only)
  bool optimized = false;  ///< composite produced by a previous round

  bool IsSingleRelation() const { return RelSetCount(rels) == 1; }
  int SingleRelation() const { return __builtin_ctzll(rels); }
};

/// \brief One unit per relation of the graph.
std::vector<PlanUnit> MakeLeafUnits(const JoinGraph& graph);

/// \brief True if, on edge `eid`, the side belonging to `unit` is a unique
/// key (single-relation units only; composites are never unique).
bool UnitSideUnique(const JoinGraph& graph, const PlanUnit& unit, int eid);

/// \brief Indices (into `units`) of active fact candidates: unoptimized
/// units never referenced via a unique key on their own side.
/// `active` restricts the check to a subset; pass all indices normally.
std::vector<int> FindFactUnits(const JoinGraph& graph,
                               const std::vector<PlanUnit>& units,
                               const std::vector<int>& active);

/// \brief Algorithm 3's ExpandSnowflake: the fact unit plus every unit
/// reachable from it through edges whose far side is unique (its dimension
/// closure). Returns indices into `units`, fact first.
std::vector<int> ExpandSnowflake(const JoinGraph& graph,
                                 const std::vector<PlanUnit>& units,
                                 const std::vector<int>& active, int fact);

/// \brief Partition `members` minus the fact into connected groups
/// (connectivity ignoring the fact). A group of several fact-adjacent
/// branches is the paper's "set of connected branches" (priority group P2).
std::vector<std::vector<int>> GroupBranches(const JoinGraph& graph,
                                            const std::vector<PlanUnit>& units,
                                            const std::vector<int>& members,
                                            int fact);

}  // namespace bqo

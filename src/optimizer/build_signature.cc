#include "src/optimizer/build_signature.h"

#include "src/exec/scan.h"
#include "src/plan/predicate_shape.h"

namespace bqo {

std::string BuildSideSignature(const PhysicalOperator& build_child,
                               const std::vector<int>& build_key_positions,
                               const FilterConfig& filter_config,
                               bool creates_filter) {
  const auto* scan = dynamic_cast<const ScanOperator*>(&build_child);
  if (scan == nullptr || scan->has_runtime_filters()) return "";
  if (scan->table() == nullptr) return "";

  std::string sig;
  sig.reserve(128);
  sig += "tbl=";
  sig += scan->table()->name();
  sig += "|cols=";
  for (const BoundColumn& c : scan->output_schema().cols()) {
    sig += c.column;
    sig += ',';
  }
  sig += "|pred=";
  sig += PredicateShape(scan->predicate());
  sig += "|consts=";
  for (const Value& v : CollectPredicateConstants(scan->predicate())) {
    sig += v.ToString();
    sig += ';';
  }
  sig += "|keys=";
  for (int k : build_key_positions) {
    sig += std::to_string(k);
    sig += ',';
  }
  if (creates_filter) {
    // The filter object is part of the cached result, so its configured
    // geometry keys the entry; a join that creates none shares with any
    // same-table build regardless of filter knobs.
    sig += "|filter=";
    sig += FilterKindName(filter_config.kind);
    sig += ':';
    sig += std::to_string(filter_config.bloom_bits_per_key);
    sig += ':';
    sig += std::to_string(filter_config.cuckoo_fingerprint_bits);
  } else {
    sig += "|filter=none";
  }
  return sig;
}

}  // namespace bqo

// Optimizer facade: the end-to-end optimize pipeline under each of the
// paper's integration options (Section 6.4) plus the baselines the
// evaluation compares against.
#pragma once

#include <string>

#include "src/optimizer/cost_model.h"
#include "src/plan/cout.h"
#include "src/stats/table_stats.h"

namespace bqo {

enum class OptimizerMode {
  /// DP join ordering blind to bitvector filters, then Algorithm 1 as a
  /// post-processing step — the "original Microsoft SQL Server" baseline.
  kBaselinePostProcess = 0,
  /// Same join order as the baseline but bitvector filters disabled
  /// entirely (Table 4's "plan without bitvector filters").
  kNoBitvectors,
  /// Shallow integration (the paper's implementation): Algorithm 3 orders
  /// the snowflake, further join reordering on it is disabled.
  kBqoShallow,
  /// Alternative-plan integration: cost the baseline plan and the BQO plan
  /// with the bitvector-aware model, keep the cheaper one.
  kAlternativePlan,
  /// Full integration via exhaustive right-deep enumeration with
  /// bitvector-aware costing (ablation; exponential — small queries only,
  /// falls back to kBqoShallow past `exhaustive_limit` plans).
  kExhaustive,
};

const char* OptimizerModeName(OptimizerMode mode);

struct OptimizerOptions {
  OptimizerMode mode = OptimizerMode::kBqoShallow;
  /// Cost-based bitvector filters (Section 6.3): filters with estimated
  /// elimination below lambda_thresh are pruned. Negative disables pruning.
  double lambda_thresh = 0.05;
  /// Assumed filter false-positive rate inside the cost model.
  double filter_fp_rate = 0.0;
  /// DP width cap; larger queries fall back to greedy (baseline modes).
  int max_dp_relations = 14;
  /// Plan-count cap for kExhaustive.
  size_t exhaustive_limit = 50000;
  /// Filter-implementation menu (cost_model.h): after pruning, every
  /// surviving filter is annotated with the kind — classical or blocked
  /// Bloom — whose probe-cost/FPR trade minimizes its cost
  /// (PlanFilter::chosen_kind). Part of the plan's cache identity.
  FilterMenuOptions filter_menu;

  // ---- Parameterized-plan validity band (src/optimizer/parameterized.h;
  // not part of the plan's cache identity — they bound reuse, they don't
  // change the plan optimization produces) ----

  /// Widest selectivity band for re-bound plan reuse: a cached join order
  /// is served while each re-bound relation's selectivity stays within
  /// this factor (up or down) of its optimize-time value — tightened per
  /// relation by probe re-optimizations (below). <= 1 disables banded
  /// reuse: any moved constant escalates to full re-optimization.
  /// Env overlay: BQO_SEL_BAND (ApplyServingEnvOverrides).
  double reopt_sel_band = 4.0;
  /// Probe re-optimizations per direction per predicated relation when
  /// deriving the band: selectivity is scaled to geometric steps of
  /// reopt_sel_band and the optimizer re-run; the band edge is the last
  /// step at which the chosen join order and unpruned filter menu were
  /// unchanged. 0 = skip probing and trust reopt_sel_band as-is.
  int band_probe_steps = 2;
};

struct OptimizedQuery {
  Plan plan;
  /// Bitvector-aware estimated Cout of the final (pruned) plan.
  double estimated_cost = 0;
  /// Filters removed by cost-based pruning.
  int pruned_filters = 0;
  /// Wall time spent optimizing, for the optimization-overhead ablation.
  int64_t optimize_ns = 0;
};

/// \brief Optimize `graph` under `options`. The result plan is fully
/// annotated (Algorithm 1 push-down done, ineffective filters pruned) and
/// ready for ExecutePlan.
OptimizedQuery OptimizeQuery(const JoinGraph& graph, StatsCatalog* stats,
                             const OptimizerOptions& options = {});

}  // namespace bqo

#include "src/optimizer/bqo.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>

#include "src/plan/pushdown.h"

namespace bqo {

namespace {

/// A branch group plus the metadata SortBranches needs.
struct Group {
  std::vector<int> unit_idxs;     ///< members (indexes into units)
  std::vector<int> fact_adjacent; ///< members directly joined to the fact
  double priority = 0;            ///< paper's P0..P3 (higher joins earlier)
  double retention = 1.0;         ///< est. fraction of fact rows kept
};

double UnitBaseCard(const JoinGraph& graph, const PlanUnit& unit) {
  if (!unit.IsSingleRelation()) return unit.est_card;
  return std::max(graph.relation(unit.SingleRelation()).base_rows, 1.0);
}

/// BFS depth of each member unit from the fact (used to orient DFS away
/// from the fact when enumerating within-branch start positions).
std::map<int, int> DepthsFromFact(const JoinGraph& graph,
                                  const std::vector<PlanUnit>& units,
                                  const std::vector<int>& members, int fact) {
  std::map<int, int> depth;
  depth[fact] = 0;
  std::vector<int> frontier = {fact};
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int u : frontier) {
      for (int v : members) {
        if (depth.count(v)) continue;
        if (!graph
                 .EdgesBetweenSets(units[static_cast<size_t>(u)].rels,
                                   units[static_cast<size_t>(v)].rels)
                 .empty()) {
          depth[v] = depth[u] + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return depth;
}

/// Away-first DFS order of `group` starting at `start`: visit deeper
/// (farther-from-fact) neighbors before shallower ones. For a chain branch
/// starting at R_k this yields exactly the Theorem 5.3 candidate order
/// (R_k, R_{k+1}, ..., R_n, R_{k-1}, ..., R_1).
std::vector<int> AwayFirstOrder(const JoinGraph& graph,
                                const std::vector<PlanUnit>& units,
                                const std::vector<int>& group, int start,
                                const std::map<int, int>& depth) {
  std::vector<int> order;
  std::vector<bool> visited(units.size(), false);
  std::vector<int> stack = {start};
  // Recursive DFS with neighbor ordering by descending depth.
  std::function<void(int)> visit = [&](int u) {
    visited[static_cast<size_t>(u)] = true;
    order.push_back(u);
    std::vector<int> neighbors;
    for (int v : group) {
      if (visited[static_cast<size_t>(v)]) continue;
      if (!graph
               .EdgesBetweenSets(units[static_cast<size_t>(u)].rels,
                                 units[static_cast<size_t>(v)].rels)
               .empty()) {
        neighbors.push_back(v);
      }
    }
    std::sort(neighbors.begin(), neighbors.end(), [&](int a, int b) {
      return depth.at(a) > depth.at(b);
    });
    for (int v : neighbors) {
      if (!visited[static_cast<size_t>(v)]) visit(v);
    }
  };
  visit(start);
  return order;
}

/// Fact-outward BFS order of a group (fact-adjacent units first): the
/// canonical partially-ordered placement used when the group sits above the
/// fact in the probe chain.
std::vector<int> FactOutwardOrder(const Group& group,
                                  const std::map<int, int>& depth) {
  std::vector<int> order = group.unit_idxs;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (depth.at(a) != depth.at(b)) return depth.at(a) < depth.at(b);
    return a < b;
  });
  return order;
}

/// JoinBranches (Algorithm 2 lines 9-16): extend `probe` with every unit of
/// every group in order; a unit larger than the fact flips to the probe side
/// (the P3 rule, lines 12-13).
std::unique_ptr<PlanNode> JoinGroups(
    const JoinGraph& graph, const std::vector<PlanUnit>& units,
    const std::vector<Group>& groups, const std::map<int, int>& depth,
    double fact_card, std::unique_ptr<PlanNode> probe) {
  for (const Group& g : groups) {
    for (int u : FactOutwardOrder(g, depth)) {
      const PlanUnit& unit = units[static_cast<size_t>(u)];
      std::unique_ptr<PlanNode> joined;
      if (unit.est_card > fact_card) {
        joined = MakeJoin(graph, std::move(probe),
                          ClonePlanNode(*unit.fragment));
      } else {
        joined = MakeJoin(graph, ClonePlanNode(*unit.fragment),
                          std::move(probe));
      }
      BQO_CHECK_MSG(joined != nullptr,
                    "JoinGroups produced a cross product");
      probe = std::move(joined);
    }
  }
  return probe;
}

double CostCandidate(const JoinGraph& graph, std::unique_ptr<PlanNode> root,
                     CoutModel* model, Plan* out) {
  Plan plan;
  plan.graph = &graph;
  plan.root = std::move(root);
  plan.Renumber();
  PushDownBitvectors(&plan);
  const double cost = model->Cout(plan);
  *out = std::move(plan);
  return cost;
}

}  // namespace

Plan OptimizeSnowflakeUnits(const JoinGraph& graph,
                            const std::vector<PlanUnit>& units,
                            const std::vector<int>& members, int fact,
                            CoutModel* model, double* best_cost) {
  BQO_CHECK(!members.empty());
  const PlanUnit& fact_unit = units[static_cast<size_t>(fact)];

  if (members.size() == 1) {
    Plan plan;
    plan.graph = &graph;
    plan.root = ClonePlanNode(*fact_unit.fragment);
    plan.Renumber();
    if (best_cost != nullptr) *best_cost = model->Cout(plan);
    return plan;
  }

  const std::map<int, int> depth =
      DepthsFromFact(graph, units, members, fact);

  // ---- SortBranches (Algorithm 2 lines 17-34) ----
  std::vector<Group> groups;
  for (auto& idxs : GroupBranches(graph, units, members, fact)) {
    Group g;
    g.unit_idxs = std::move(idxs);
    for (int u : g.unit_idxs) {
      if (!graph
               .EdgesBetweenSets(units[static_cast<size_t>(u)].rels,
                                 fact_unit.rels)
               .empty()) {
        g.fact_adjacent.push_back(u);
      }
    }
    // Retention: fraction of fact rows the group's semi-join keeps,
    // estimated from its fact-adjacent units under containment.
    for (int u : g.fact_adjacent) {
      const PlanUnit& unit = units[static_cast<size_t>(u)];
      const double base = UnitBaseCard(graph, unit);
      g.retention = std::min(
          g.retention, base <= 0 ? 1.0 : std::min(1.0, unit.est_card / base));
    }
    // Priorities (P0-P3). Higher priority = joined earlier (deeper).
    if (g.fact_adjacent.size() >= 2) {
      g.priority = static_cast<double>(g.fact_adjacent.size());  // P2
    } else {
      BQO_CHECK(!g.fact_adjacent.empty());
      const int adj = g.fact_adjacent[0];
      const PlanUnit& adj_unit = units[static_cast<size_t>(adj)];
      bool pkfk = false;
      for (int eid :
           graph.EdgesBetweenSets(adj_unit.rels, fact_unit.rels)) {
        if (UnitSideUnique(graph, adj_unit, eid)) pkfk = true;
      }
      if (!pkfk) {
        g.priority = 0;  // P0: no key join with the fact
      } else if (adj_unit.est_card < fact_unit.est_card) {
        g.priority = 1;  // P1: ordinary selective branch
      } else {
        g.priority = static_cast<double>(members.size()) + 2;  // P3
      }
    }
    groups.push_back(std::move(g));
  }
  std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.retention != b.retention) return a.retention < b.retention;
    return a.unit_idxs < b.unit_idxs;
  });

  // ---- Candidate 0: fact right-most (lines 1-2) ----
  Plan best_plan;
  double best = std::numeric_limits<double>::infinity();
  {
    Plan plan;
    best = CostCandidate(
        graph,
        JoinGroups(graph, units, groups, depth, fact_unit.est_card,
                   ClonePlanNode(*fact_unit.fragment)),
        model, &plan);
    best_plan = std::move(plan);
  }

  // ---- Branch-first candidates (lines 3-7): for every group and every
  // start position within it, join that group below the fact. ----
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (int start : groups[gi].unit_idxs) {
      const std::vector<int> order =
          AwayFirstOrder(graph, units, groups[gi].unit_idxs, start, depth);
      if (order.size() != groups[gi].unit_idxs.size()) continue;
      std::unique_ptr<PlanNode> probe =
          ClonePlanNode(*units[static_cast<size_t>(order[0])].fragment);
      bool valid = true;
      for (size_t i = 1; i < order.size(); ++i) {
        auto joined = MakeJoin(
            graph,
            ClonePlanNode(*units[static_cast<size_t>(order[i])].fragment),
            std::move(probe));
        if (joined == nullptr) {
          valid = false;
          break;
        }
        probe = std::move(joined);
      }
      if (!valid) continue;
      // Fact joins on top of the branch (as the build side: Lemma 5's
      // T(Rk, R0, ...) shape), then the remaining groups.
      auto with_fact = MakeJoin(graph, ClonePlanNode(*fact_unit.fragment),
                                std::move(probe));
      if (with_fact == nullptr) continue;
      std::vector<Group> rest;
      for (size_t go = 0; go < groups.size(); ++go) {
        if (go != gi) rest.push_back(groups[go]);
      }
      auto root = JoinGroups(graph, units, rest, depth, fact_unit.est_card,
                             std::move(with_fact));
      Plan plan;
      const double cost = CostCandidate(graph, std::move(root), model, &plan);
      if (cost < best) {
        best = cost;
        best_plan = std::move(plan);
      }
    }
  }

  if (best_cost != nullptr) *best_cost = best;
  return best_plan;
}

Plan OptimizeBqo(const JoinGraph& graph, CoutModel* model) {
  std::vector<PlanUnit> units = MakeLeafUnits(graph);
  std::vector<int> active;
  for (size_t i = 0; i < units.size(); ++i) {
    active.push_back(static_cast<int>(i));
  }

  const int max_rounds = 2 * graph.num_relations() + 2;
  for (int round = 0; round < max_rounds; ++round) {
    if (active.size() == 1) break;

    std::vector<int> facts = FindFactUnits(graph, units, active);
    bool final_round = facts.size() <= 1;

    int fact;
    std::vector<int> members;
    if (!final_round) {
      // Smallest unoptimized fact first (Algorithm 3 line 9).
      fact = facts[0];
      for (int f : facts) {
        if (units[static_cast<size_t>(f)].est_card <
            units[static_cast<size_t>(fact)].est_card) {
          fact = f;
        }
      }
      members = ExpandSnowflake(graph, units, active, fact);
      if (members.size() == 1) {
        // Isolated fact (its neighbors are other facts): defer to the
        // final round rather than looping forever.
        units[static_cast<size_t>(fact)].optimized = true;
        continue;
      }
      if (members.size() == active.size()) final_round = true;
    }
    if (final_round) {
      members = active;
      if (facts.size() == 1) {
        fact = facts[0];
      } else {
        // No key-free relation (or several composites): treat the largest
        // unit as the fact; everything else hangs off it.
        fact = active[0];
        for (int u : active) {
          if (units[static_cast<size_t>(u)].est_card >
              units[static_cast<size_t>(fact)].est_card) {
            fact = u;
          }
        }
      }
    }

    double cost = 0;
    Plan sub = OptimizeSnowflakeUnits(graph, units, members, fact, model,
                                      &cost);

    // Collapse the members into one optimized composite unit.
    PlanUnit composite;
    composite.rels = sub.root->rel_set;
    composite.optimized = true;
    {
      const CoutBreakdown b = model->Compute(sub);
      composite.est_card = b.node_output[0];  // root output estimate
    }
    composite.fragment = std::move(sub.root);

    std::vector<int> next_active;
    for (int u : active) {
      bool is_member = false;
      for (int m : members) {
        if (m == u) is_member = true;
      }
      if (!is_member) next_active.push_back(u);
    }
    units.push_back(std::move(composite));
    next_active.push_back(static_cast<int>(units.size()) - 1);
    active = std::move(next_active);
  }

  BQO_CHECK_EQ(active.size(), size_t{1});
  Plan plan;
  plan.graph = &graph;
  plan.root = std::move(units[static_cast<size_t>(active[0])].fragment);
  plan.Renumber();
  BQO_CHECK(plan.Validate());
  return plan;
}

}  // namespace bqo

// Bitvector-aware query optimization (Section 6).
//
// OptimizeSnowflakeUnits is Algorithm 2: given a snowflake-ish subgraph
// (a fact unit plus branch groups), it builds the linear candidate set the
// analysis of Sections 4-5 justifies — the fact-right-most plan plus, for
// every branch and every within-branch start position, the plan that joins
// that branch first — and returns the candidate with minimal bitvector-aware
// estimated Cout. Branch groups are prioritized per the paper's P0-P3 rules.
//
// OptimizeBqo is Algorithm 3: repeatedly extract the snowflake around the
// smallest unoptimized fact table, optimize it with Algorithm 2, collapse it
// into a composite unit, and continue until one unit remains.
#pragma once

#include "src/optimizer/snowflake.h"
#include "src/plan/cout.h"

namespace bqo {

/// \brief Algorithm 2. `members` indexes `units` (fact included). The
/// returned plan covers exactly the member units' relations. `model` must be
/// bitvector-aware (candidates are costed after Algorithm 1 push-down).
/// If `best_cost` is non-null it receives the winning estimated Cout.
Plan OptimizeSnowflakeUnits(const JoinGraph& graph,
                            const std::vector<PlanUnit>& units,
                            const std::vector<int>& members, int fact,
                            CoutModel* model, double* best_cost = nullptr);

/// \brief Algorithm 3: full bitvector-aware join ordering for an arbitrary
/// join graph (single or multiple fact tables, non-PKFK edges allowed).
/// The returned plan has no filter annotations yet; callers run
/// PushDownBitvectors + PruneIneffectiveFilters (the facade does).
Plan OptimizeBqo(const JoinGraph& graph, CoutModel* model);

}  // namespace bqo

#include "src/optimizer/cost_model.h"

namespace bqo {

int PruneIneffectiveFilters(Plan* plan, CoutModel* model,
                            double lambda_thresh, int passes) {
  BQO_CHECK(plan != nullptr);
  if (plan->filters.empty()) return 0;
  int pruned = 0;
  for (int pass = 0; pass < passes; ++pass) {
    const CoutBreakdown breakdown = model->Compute(*plan);
    bool changed = false;
    for (PlanFilter& f : plan->filters) {
      if (f.pruned) continue;
      f.estimated_lambda =
          breakdown.filter_lambda[static_cast<size_t>(f.id)];
      if (f.estimated_lambda < lambda_thresh) {
        f.pruned = true;
        ++pruned;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return pruned;
}

double LambdaThreshold(double filter_check_ns, double hash_probe_ns) {
  if (hash_probe_ns <= 0) return 1.0;
  const double t = 1.0 - filter_check_ns / hash_probe_ns;
  return t < 0 ? 0.0 : t;
}

}  // namespace bqo

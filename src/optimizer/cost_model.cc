#include "src/optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/filter/filter_kernels.h"

namespace bqo {

int PruneIneffectiveFilters(Plan* plan, CoutModel* model,
                            double lambda_thresh, int passes) {
  BQO_CHECK(plan != nullptr);
  if (plan->filters.empty()) return 0;
  int pruned = 0;
  for (int pass = 0; pass < passes; ++pass) {
    const CoutBreakdown breakdown = model->Compute(*plan);
    bool changed = false;
    for (PlanFilter& f : plan->filters) {
      if (f.pruned) continue;
      f.estimated_lambda =
          breakdown.filter_lambda[static_cast<size_t>(f.id)];
      if (f.estimated_lambda < lambda_thresh) {
        f.pruned = true;
        ++pruned;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return pruned;
}

double LambdaThreshold(double filter_check_ns, double hash_probe_ns) {
  if (hash_probe_ns <= 0) return 1.0;
  const double t = 1.0 - filter_check_ns / hash_probe_ns;
  return t < 0 ? 0.0 : t;
}

double EstimatedFilterFpr(FilterKind kind, double bits_per_key) {
  const double b = bits_per_key < 1.0 ? 1.0 : bits_per_key;
  switch (kind) {
    case FilterKind::kExact:
      return 0.0;
    case FilterKind::kBloom: {
      // Mirror BloomFilter: k = round(0.6931 * b) clamped to [1, 4],
      // FPR = (1 - e^{-kn/m})^k at design load n/m = 1/b.
      const double k = std::clamp(std::lround(b * 0.6931), 1L, 4L);
      return std::pow(1.0 - std::exp(-k / b), k);
    }
    case FilterKind::kCuckoo:
      // 4-way buckets, two candidate buckets: ~ 8 / 2^fingerprint_bits at
      // the default 12 fingerprint bits (not on the Bloom menu; listed for
      // completeness).
      return 8.0 / 4096.0;
    case FilterKind::kBlockedBloom: {
      // Mirror BlockedBloomFilter::TheoreticalFpRate at design load: keys
      // land in 256-bit sectors (mean occupancy 256/b keys), j resident
      // keys set a given word-bit with prob 1 - (31/32)^j, and a false
      // positive needs all 8 word-bits — a Poisson mixture that sits above
      // the classical curve at tight-to-moderate budgets (b <= ~10) and
      // degrades hard as b shrinks. At generous budgets the ordering
      // flips: classical's k is capped at 4, so blocked's fixed k=8
      // eventually wins on FPR too.
      const double lambda = 256.0 / b;
      double fpr = 0.0;
      double pois = std::exp(-lambda);
      double mass = 0.0;
      double per_word = 0.0;
      for (int j = 0; j < 2048 && mass < 1.0 - 1e-12; ++j) {
        if (j > 0) {
          pois *= lambda / static_cast<double>(j);
          per_word = 1.0 - (1.0 - per_word) * (31.0 / 32.0);
        }
        double all_words = per_word;
        for (int w = 1; w < blocked_bloom::kWordsPerSector; ++w) {
          all_words *= per_word;
        }
        fpr += pois * all_words;
        mass += pois;
      }
      return fpr;
    }
  }
  return 0.0;
}

int SelectFilterImplementations(Plan* plan, CoutModel* model,
                                const FilterMenuOptions& menu) {
  BQO_CHECK(plan != nullptr);
  if (!menu.enabled || plan->filters.empty()) return 0;
  const CoutBreakdown breakdown = model->Compute(*plan);

  // Parent index, to count the join probes a leaked tuple survives: from
  // the application site up to the creating join, where the hash-table
  // probe finally rejects it.
  std::vector<int> parent(plan->nodes.size(), -1);
  for (const PlanNode* node : plan->nodes) {
    if (node->IsLeaf()) continue;
    parent[static_cast<size_t>(node->build->id)] = node->id;
    parent[static_cast<size_t>(node->probe->id)] = node->id;
  }

  const double fpr_classical =
      EstimatedFilterFpr(FilterKind::kBloom, menu.bits_per_key);
  const double fpr_blocked =
      EstimatedFilterFpr(FilterKind::kBlockedBloom, menu.bits_per_key);

  int blocked_picks = 0;
  for (PlanFilter& f : plan->filters) {
    if (f.pruned) {
      f.chosen_kind = -1;
      continue;
    }
    const double probes =
        breakdown.node_prefilter[static_cast<size_t>(f.applied_at)];
    const double lambda = breakdown.filter_lambda[static_cast<size_t>(f.id)];
    // Leak depth D: join operators between the application site (exclusive)
    // and the creating join (inclusive). At least 1 — the source join's own
    // probe is always paid.
    int depth = 0;
    for (int nid = parent[static_cast<size_t>(f.applied_at)]; nid >= 0;
         nid = parent[static_cast<size_t>(nid)]) {
      ++depth;
      if (nid == f.source_join) break;
    }
    if (depth == 0) depth = 1;

    const double leak_weight =
        probes * lambda * static_cast<double>(depth) * menu.hash_probe_ns;
    const double cost_classical =
        probes * menu.classical_probe_ns + leak_weight * fpr_classical;
    const double cost_blocked =
        probes * menu.blocked_probe_ns + leak_weight * fpr_blocked;
    if (cost_blocked < cost_classical) {
      f.chosen_kind = static_cast<int>(FilterKind::kBlockedBloom);
      ++blocked_picks;
    } else {
      f.chosen_kind = static_cast<int>(FilterKind::kBloom);
    }
  }
  return blocked_picks;
}

}  // namespace bqo

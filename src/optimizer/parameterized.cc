#include "src/optimizer/parameterized.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/string_util.h"
#include "src/stats/estimated_cost.h"

namespace bqo {

namespace {

/// Structural identity of an optimization outcome: the join-order
/// signature plus the unpruned filter menu (source join and application
/// site, comparable across plans with equal signatures). Two probe runs
/// with equal keys made the same choice, so the probed selectivity is
/// inside the validity band.
std::string PlanChoiceKey(const Plan& plan) {
  std::string key = plan.Signature();
  for (const PlanFilter& f : plan.filters) {
    if (!f.pruned) {
      key += StringFormat(";%d@%d", f.source_join, f.applied_at);
    }
  }
  return key;
}

/// True if re-optimizing with relation `rel` scaled to `sel` keeps the
/// choice `chosen`.
bool StableAt(const JoinGraph& graph, int rel, double sel,
              StatsCatalog* stats, const OptimizerOptions& options,
              const std::string& chosen) {
  JoinGraph probe = graph;
  RelationRef& r = probe.relation(rel);
  r.filtered_rows =
      std::clamp(sel * r.base_rows, 0.0, std::max(r.base_rows, 0.0));
  return PlanChoiceKey(OptimizeQuery(probe, stats, options).plan) == chosen;
}

}  // namespace

ParameterizedPlan OptimizeParameterized(const JoinGraph& graph,
                                        StatsCatalog* stats,
                                        const OptimizerOptions& options) {
  ParameterizedPlan out;
  out.optimized = OptimizeQuery(graph, stats, options);
  out.constants = graph.ConstantTable();

  // Estimated lambda per filter from the bitvector-aware model, not from
  // PlanFilter::estimated_lambda — the latter is only filled when pruning
  // runs, and the drift reference must exist either way.
  EstimatedCoutModel aware_model(stats, options.filter_fp_rate);
  const CoutBreakdown breakdown = aware_model.Compute(out.optimized.plan);
  out.estimated_lambda = breakdown.filter_lambda;

  out.optimize_sel.resize(static_cast<size_t>(graph.num_relations()), 1.0);
  out.bands.resize(static_cast<size_t>(graph.num_relations()));
  const double band = options.reopt_sel_band;
  const std::string chosen = PlanChoiceKey(out.optimized.plan);
  for (int r = 0; r < graph.num_relations(); ++r) {
    const RelationRef& rel = graph.relation(r);
    const double base = std::max(rel.base_rows, 1.0);
    const double sel = std::clamp(rel.filtered_rows / base, 0.0, 1.0);
    out.optimize_sel[static_cast<size_t>(r)] = sel;
    SelectivityBand& b = out.bands[static_cast<size_t>(r)];
    if (out.constants[static_cast<size_t>(r)].empty()) {
      continue;  // slotless: shape-equal queries cannot move this relation
    }
    if (band <= 1.0) {
      // Banded reuse disabled: any moved constant re-optimizes.
      b.lo = b.hi = sel;
      continue;
    }
    b.lo = sel / band;
    b.hi = std::min(1.0, sel * band);
    if (options.band_probe_steps <= 0) continue;

    // Tighten each edge to the last geometric step of `band` at which a
    // probe re-optimization kept the chosen plan; when even the first
    // step flips the plan, one refinement probe at its geometric midpoint
    // decides between a narrow band and no slack at all.
    const int steps = options.band_probe_steps;
    for (int dir = -1; dir <= 1; dir += 2) {
      double last_stable = 1.0;
      bool flipped = false;
      for (int s = 1; s <= steps; ++s) {
        const double factor =
            std::pow(band, static_cast<double>(dir) * s / steps);
        if (!StableAt(graph, r, sel * factor, stats, options, chosen)) {
          flipped = true;
          if (s == 1) {
            const double mid = std::sqrt(factor);
            if (StableAt(graph, r, sel * mid, stats, options, chosen)) {
              last_stable = mid;
            }
          }
          break;
        }
        last_stable = factor;
      }
      if (!flipped) continue;  // stable through the whole band: keep edge
      if (dir < 0) {
        b.lo = sel * last_stable;
      } else {
        b.hi = std::min(1.0, sel * last_stable);
      }
    }
  }
  return out;
}

}  // namespace bqo

// Catalog: the set of tables in a database plus key metadata.
//
// The optimizer consumes two kinds of metadata the paper's analysis depends
// on: which columns are unique (primary keys — the "R1 -> R2" direction of
// Definition 1), and declared foreign-key relationships (used by the
// snowflake detector in Algorithm 3).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/table.h"

namespace bqo {

/// \brief Declared FK: fk_table.fk_column references pk_table.pk_column.
struct ForeignKeyDef {
  std::string fk_table;
  std::string fk_column;
  std::string pk_table;
  std::string pk_column;
};

class Catalog {
 public:
  /// \brief Create and register an empty table; fails on duplicate name.
  Result<Table*> CreateTable(std::string name, std::vector<FieldDef> fields);

  Result<Table*> GetTable(std::string_view name);
  Result<const Table*> GetTable(std::string_view name) const;

  /// \brief Declare `column` unique in `table` (primary key or unique key).
  Status DeclarePrimaryKey(const std::string& table,
                           const std::string& column);

  /// \brief Declare a foreign key; both endpoints must exist.
  Status DeclareForeignKey(const ForeignKeyDef& fk);

  bool IsUniqueKey(const std::string& table, const std::string& column) const;

  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  std::vector<const Table*> tables() const;
  int num_tables() const { return static_cast<int>(tables_.size()); }

  int64_t TotalMemoryBytes() const;

  /// \brief Monotonic schema version, bumped by CreateTable /
  /// DeclarePrimaryKey / DeclareForeignKey. The serving layer's PlanCache
  /// snapshots it per entry and treats any change as an invalidation (a
  /// cached plan binds table pointers and key metadata). Data loaded into
  /// existing tables does not bump it; callers mutating data must
  /// invalidate explicitly (QueryService::InvalidateCache). Atomic:
  /// serving threads read it while a DDL/load thread bumps it.
  int64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }
  /// \brief Mark a non-DDL change (bulk data load, stats refresh) so
  /// version-checking caches drop stale entries.
  void BumpVersion() { version_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> table_order_;  // creation order, for stable output
  // (table, column) pairs declared unique.
  std::unordered_map<std::string, std::vector<std::string>> unique_keys_;
  std::vector<ForeignKeyDef> foreign_keys_;
  std::atomic<int64_t> version_{0};
};

}  // namespace bqo

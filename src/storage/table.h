// In-memory tables: a named set of columns of equal length.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/column.h"

namespace bqo {

/// \brief Column metadata in a table schema.
struct FieldDef {
  std::string name;
  DataType type;
};

/// \brief A fully materialized columnar table.
class Table {
 public:
  Table(std::string name, std::vector<FieldDef> fields);

  const std::string& name() const { return name_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }

  /// \brief Index of the column named `name`, or -1 if absent.
  int ColumnIndex(std::string_view name) const;

  Column& column(int idx) {
    BQO_DCHECK(idx >= 0 && idx < num_columns());
    return *columns_[static_cast<size_t>(idx)];
  }
  const Column& column(int idx) const {
    BQO_DCHECK(idx >= 0 && idx < num_columns());
    return *columns_[static_cast<size_t>(idx)];
  }

  Result<const Column*> GetColumn(std::string_view name) const;

  /// \brief Append one row given per-column values. Used by data generators
  /// and tests; bulk loading goes through the columns directly.
  Status AppendRow(const std::vector<Value>& values);

  /// \brief Must be called by bulk loaders after appending directly to
  /// columns; verifies all columns have equal length and records the count.
  void FinishBulkLoad();

  int64_t MemoryBytes() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, int> column_index_;
  int64_t num_rows_ = 0;
};

}  // namespace bqo

// Columnar storage: one contiguous, fully materialized vector per column.
//
// String columns are dictionary-encoded: values are int32 codes into a
// per-column dictionary. Predicates over strings are rewritten by the
// expression evaluator into code-set membership tests, so the execution
// engine only ever touches fixed-width data (the standard column-store
// design the paper's TPC-DS/JOB configurations rely on).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/macros.h"
#include "src/storage/types.h"

namespace bqo {

/// \brief Dictionary for a string column: code <-> string bijection.
class StringDictionary {
 public:
  /// \brief Return the code for `s`, inserting it if absent.
  int32_t GetOrInsert(std::string_view s);

  /// \brief Return the code for `s`, or -1 if absent.
  int32_t Lookup(std::string_view s) const;

  const std::string& GetString(int32_t code) const {
    BQO_DCHECK(code >= 0 &&
               static_cast<size_t>(code) < strings_.size());
    return strings_[static_cast<size_t>(code)];
  }

  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

  /// \brief Codes of all dictionary entries that contain `needle`
  /// (SQL `LIKE '%needle%'`). Cost is O(dictionary), not O(rows).
  std::vector<int32_t> CodesContaining(std::string_view needle) const;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> index_;
};

/// \brief A single column of a table.
///
/// INT64 and DOUBLE columns store values directly; STRING columns store
/// int32 dictionary codes widened to int64 in `ints_` plus the dictionary.
class Column {
 public:
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  int64_t size() const {
    return type_ == DataType::kDouble
               ? static_cast<int64_t>(doubles_.size())
               : static_cast<int64_t>(ints_.size());
  }

  void AppendInt64(int64_t v) {
    BQO_DCHECK(type_ == DataType::kInt64);
    ints_.push_back(v);
  }
  void AppendDouble(double v) {
    BQO_DCHECK(type_ == DataType::kDouble);
    doubles_.push_back(v);
  }
  void AppendString(std::string_view v) {
    BQO_DCHECK(type_ == DataType::kString);
    ints_.push_back(dict_.GetOrInsert(v));
  }

  /// \brief Raw int64 data (values for INT64, dictionary codes for STRING).
  const int64_t* int_data() const { return ints_.data(); }
  const double* double_data() const { return doubles_.data(); }

  int64_t GetInt64(int64_t row) const {
    BQO_DCHECK(row >= 0 && row < size());
    return ints_[static_cast<size_t>(row)];
  }
  double GetDouble(int64_t row) const {
    BQO_DCHECK(row >= 0 && row < size());
    return doubles_[static_cast<size_t>(row)];
  }
  const std::string& GetStringAt(int64_t row) const {
    return dict_.GetString(static_cast<int32_t>(GetInt64(row)));
  }

  Value GetValue(int64_t row) const;

  StringDictionary& dict() { return dict_; }
  const StringDictionary& dict() const { return dict_; }

  /// \brief Number of distinct values actually present (exact; computed on
  /// demand and cached — the statistics layer consumes this).
  int64_t CountDistinct() const;

  int64_t MemoryBytes() const;

 private:
  std::string name_;
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  StringDictionary dict_;
  mutable int64_t cached_distinct_ = -1;
};

}  // namespace bqo

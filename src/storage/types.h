// Scalar type system for the storage engine.
//
// The engine supports the three types decision-support benchmarks actually
// exercise: 64-bit integers (keys, quantities), doubles (measures), and
// dictionary-encoded strings (dimension attributes touched by LIKE-style
// predicates). Join keys are always INT64.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace bqo {

enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* DataTypeName(DataType type);

/// \brief A single scalar value; used for literals in predicates and for
/// row-level debugging access, never on the hot execution path.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  DataType type() const {
    switch (v_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  std::string ToString() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace bqo

#include "src/storage/table.h"

#include "src/common/string_util.h"

namespace bqo {

Table::Table(std::string name, std::vector<FieldDef> fields)
    : name_(std::move(name)) {
  columns_.reserve(fields.size());
  for (auto& f : fields) {
    column_index_[f.name] = static_cast<int>(columns_.size());
    columns_.push_back(std::make_unique<Column>(f.name, f.type));
  }
}

int Table::ColumnIndex(std::string_view name) const {
  auto it = column_index_.find(std::string(name));
  return it == column_index_.end() ? -1 : it->second;
}

Result<const Column*> Table::GetColumn(std::string_view name) const {
  const int idx = ColumnIndex(name);
  if (idx < 0) {
    return Status::NotFound(
        StringFormat("column '%s' not in table '%s'",
                     std::string(name).c_str(), name_.c_str()));
  }
  return &column(idx);
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != num_columns()) {
    return Status::InvalidArgument(StringFormat(
        "row has %zu values, table '%s' has %d columns", values.size(),
        name_.c_str(), num_columns()));
  }
  for (int i = 0; i < num_columns(); ++i) {
    Column& col = column(i);
    const Value& v = values[static_cast<size_t>(i)];
    if (v.type() != col.type()) {
      return Status::InvalidArgument(StringFormat(
          "column '%s' expects %s, got %s", col.name().c_str(),
          DataTypeName(col.type()), DataTypeName(v.type())));
    }
    switch (col.type()) {
      case DataType::kInt64:
        col.AppendInt64(v.AsInt64());
        break;
      case DataType::kDouble:
        col.AppendDouble(v.AsDouble());
        break;
      case DataType::kString:
        col.AppendString(v.AsString());
        break;
    }
  }
  ++num_rows_;
  return Status::OK();
}

void Table::FinishBulkLoad() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return;
  }
  const int64_t n = columns_[0]->size();
  for (const auto& c : columns_) {
    BQO_CHECK_MSG(c->size() == n, "ragged bulk load");
  }
  num_rows_ = n;
}

int64_t Table::MemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& c : columns_) bytes += c->MemoryBytes();
  return bytes;
}

}  // namespace bqo

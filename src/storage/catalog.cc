#include "src/storage/catalog.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace bqo {

Result<Table*> Catalog::CreateTable(std::string name,
                                    std::vector<FieldDef> fields) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(
        StringFormat("table '%s' already exists", name.c_str()));
  }
  auto table = std::make_unique<Table>(name, std::move(fields));
  Table* ptr = table.get();
  table_order_.push_back(name);
  tables_.emplace(std::move(name), std::move(table));
  ++version_;
  return ptr;
}

Result<Table*> Catalog::GetTable(std::string_view name) {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(
        StringFormat("table '%s' not found", std::string(name).c_str()));
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(
        StringFormat("table '%s' not found", std::string(name).c_str()));
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::DeclarePrimaryKey(const std::string& table,
                                  const std::string& column) {
  auto t = GetTable(table);
  BQO_RETURN_NOT_OK(t.status());
  if (t.value()->ColumnIndex(column) < 0) {
    return Status::NotFound(StringFormat("column '%s' not in table '%s'",
                                         column.c_str(), table.c_str()));
  }
  unique_keys_[table].push_back(column);
  ++version_;
  return Status::OK();
}

Status Catalog::DeclareForeignKey(const ForeignKeyDef& fk) {
  auto fkt = GetTable(fk.fk_table);
  BQO_RETURN_NOT_OK(fkt.status());
  auto pkt = GetTable(fk.pk_table);
  BQO_RETURN_NOT_OK(pkt.status());
  if (fkt.value()->ColumnIndex(fk.fk_column) < 0 ||
      pkt.value()->ColumnIndex(fk.pk_column) < 0) {
    return Status::NotFound("foreign key endpoint column not found");
  }
  foreign_keys_.push_back(fk);
  ++version_;
  return Status::OK();
}

bool Catalog::IsUniqueKey(const std::string& table,
                          const std::string& column) const {
  auto it = unique_keys_.find(table);
  if (it == unique_keys_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), column) !=
         it->second.end();
}

std::vector<const Table*> Catalog::tables() const {
  std::vector<const Table*> out;
  out.reserve(table_order_.size());
  for (const auto& name : table_order_) {
    out.push_back(tables_.at(name).get());
  }
  return out;
}

int64_t Catalog::TotalMemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& [_, t] : tables_) bytes += t->MemoryBytes();
  return bytes;
}

}  // namespace bqo

#include "src/storage/column.h"

#include <unordered_set>

#include "src/common/string_util.h"

namespace bqo {

int32_t StringDictionary::GetOrInsert(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), code);
  return code;
}

int32_t StringDictionary::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? -1 : it->second;
}

std::vector<int32_t> StringDictionary::CodesContaining(
    std::string_view needle) const {
  std::vector<int32_t> codes;
  for (size_t i = 0; i < strings_.size(); ++i) {
    if (Contains(strings_[i], needle)) {
      codes.push_back(static_cast<int32_t>(i));
    }
  }
  return codes;
}

Value Column::GetValue(int64_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(GetInt64(row));
    case DataType::kDouble:
      return Value(GetDouble(row));
    case DataType::kString:
      return Value(GetStringAt(row));
  }
  return Value();
}

int64_t Column::CountDistinct() const {
  if (cached_distinct_ >= 0) return cached_distinct_;
  if (type_ == DataType::kString) {
    cached_distinct_ = dict_.size();
    return cached_distinct_;
  }
  if (type_ == DataType::kDouble) {
    std::unordered_set<int64_t> seen;
    for (double d : doubles_) {
      int64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      seen.insert(bits);
    }
    cached_distinct_ = static_cast<int64_t>(seen.size());
    return cached_distinct_;
  }
  std::unordered_set<int64_t> seen(ints_.begin(), ints_.end());
  cached_distinct_ = static_cast<int64_t>(seen.size());
  return cached_distinct_;
}

int64_t Column::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(ints_.capacity() * sizeof(int64_t) +
                                       doubles_.capacity() * sizeof(double));
  for (int32_t i = 0; i < dict_.size(); ++i) {
    bytes += static_cast<int64_t>(dict_.GetString(i).size() + 32);
  }
  return bytes;
}

}  // namespace bqo

// Execution batches: fixed-capacity column-oriented tuple blocks.
//
// The engine is int64-only at runtime: join keys and integer attributes are
// raw values, string columns travel as dictionary codes (string predicates
// are resolved to code sets at scan time), and measures are int64. This
// keeps the hot loops branch-light and makes composite-key hashing uniform.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/plan/plan.h"

namespace bqo {

inline constexpr int kBatchSize = 1024;

/// \brief A block of up to kBatchSize tuples in columnar layout.
struct Batch {
  /// columns[c][r] = value of output column c in row r.
  std::vector<std::vector<int64_t>> columns;
  int num_rows = 0;

  void Reset(int num_columns) {
    columns.resize(static_cast<size_t>(num_columns));
    for (auto& col : columns) {
      col.clear();
      col.reserve(kBatchSize);
    }
    num_rows = 0;
  }

  bool Full() const { return num_rows >= kBatchSize; }
};

/// \brief Deterministic ordering for output schemas.
inline bool BoundColumnLess(const BoundColumn& a, const BoundColumn& b) {
  if (a.rel != b.rel) return a.rel < b.rel;
  return a.column < b.column;
}

/// \brief An ordered, duplicate-free output schema of bound columns.
class OutputSchema {
 public:
  OutputSchema() = default;
  explicit OutputSchema(std::vector<BoundColumn> cols) : cols_(std::move(cols)) {
    std::sort(cols_.begin(), cols_.end(), BoundColumnLess);
    cols_.erase(std::unique(cols_.begin(), cols_.end()), cols_.end());
  }

  int size() const { return static_cast<int>(cols_.size()); }
  const BoundColumn& col(int i) const { return cols_[static_cast<size_t>(i)]; }
  const std::vector<BoundColumn>& cols() const { return cols_; }

  /// \brief Position of `c` in this schema, or -1.
  int PositionOf(const BoundColumn& c) const {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i] == c) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<BoundColumn> cols_;
};

}  // namespace bqo

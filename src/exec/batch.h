// Execution batches: fixed-capacity column-oriented tuple blocks.
//
// The engine is int64-only at runtime: join keys and integer attributes are
// raw values, string columns travel as dictionary codes (string predicates
// are resolved to code sets at scan time), and measures are int64. This
// keeps the hot loops branch-light and makes composite-key hashing uniform.
//
// == Selection-vector execution model ==
//
// Operators process strides of up to kBatchSize tuples at a time. Inside an
// operator, a stride is winnowed by a *selection vector*: a uint16_t array
// of still-alive positions within the stride. Scans hash a whole stride of
// filter keys into a position-aligned uint64_t scratch array (HashColumn /
// HashCompositeBatch), then let each pushed-down bitvector filter compact
// the selection (BitvectorFilter::MayContainBatch, which prefetches its
// blocks before testing bits). Only after the last filter are the surviving
// rows gathered into the output Batch — eliminated rows are never copied.
// Hash joins likewise hash the whole probe stride up front, prefetch the
// bucket heads, and walk chains from the precomputed hashes.
//
// == Scratch-buffer ownership ==
//
// All per-stride scratch (selection vectors, hash arrays, key gather
// buffers) is owned by the operator that uses it, allocated once at Open()
// and reused for every Next() call. A Batch itself owns one flat int64
// allocation of num_cols * kBatchSize values that is reused across Next()
// calls — Reset() only re-points the column layout, it never clears or
// reallocates unless the column count grows. Values at positions >=
// num_rows are stale garbage by design; consumers must only read rows
// [0, num_rows).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/macros.h"
#include "src/plan/plan.h"

namespace bqo {

inline constexpr int kBatchSize = 1024;

/// \brief A block of up to kBatchSize tuples in columnar layout, backed by
/// one flat allocation (column c occupies [c*kBatchSize, (c+1)*kBatchSize)).
///
/// Producers write column values at index num_rows via col() and then bump
/// num_rows once the whole row is written; they must check Full() (or emit
/// at most kBatchSize rows per stride) before writing.
struct Batch {
  int num_rows = 0;

  /// \brief Prepare for refill with `num_columns` columns. O(1) amortized:
  /// grows the flat storage only when the column count exceeds any
  /// previously seen, and never clears old values.
  void Reset(int num_columns) {
    if (static_cast<size_t>(num_columns) * kBatchSize > data_.size()) {
      data_.resize(static_cast<size_t>(num_columns) * kBatchSize);
    }
    num_cols_ = num_columns;
    num_rows = 0;
  }

  int num_cols() const { return num_cols_; }

  int64_t* col(int c) {
    BQO_DCHECK_LT(c, num_cols_);
    return data_.data() + static_cast<size_t>(c) * kBatchSize;
  }
  const int64_t* col(int c) const {
    BQO_DCHECK_LT(c, num_cols_);
    return data_.data() + static_cast<size_t>(c) * kBatchSize;
  }

  bool Full() const { return num_rows >= kBatchSize; }

 private:
  std::vector<int64_t> data_;  ///< num_cols_ * kBatchSize, reused across Next
  int num_cols_ = 0;
};

/// \brief Deterministic ordering for output schemas.
inline bool BoundColumnLess(const BoundColumn& a, const BoundColumn& b) {
  if (a.rel != b.rel) return a.rel < b.rel;
  return a.column < b.column;
}

/// \brief An ordered, duplicate-free output schema of bound columns.
class OutputSchema {
 public:
  OutputSchema() = default;
  explicit OutputSchema(std::vector<BoundColumn> cols) : cols_(std::move(cols)) {
    std::sort(cols_.begin(), cols_.end(), BoundColumnLess);
    cols_.erase(std::unique(cols_.begin(), cols_.end()), cols_.end());
  }

  int size() const { return static_cast<int>(cols_.size()); }
  const BoundColumn& col(int i) const { return cols_[static_cast<size_t>(i)]; }
  const std::vector<BoundColumn>& cols() const { return cols_; }

  /// \brief Position of `c` in this schema, or -1.
  int PositionOf(const BoundColumn& c) const {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i] == c) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<BoundColumn> cols_;
};

}  // namespace bqo

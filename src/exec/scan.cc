#include "src/exec/scan.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/filter/bloom_filter.h"

namespace bqo {

namespace {

/// Devirtualized batch probe: Bloom is the production default and the
/// per-tuple filter-check cost (Cf in Section 6.3) is the quantity Figure 7
/// profiles, so the hot path avoids the virtual dispatch for it (BloomFilter
/// is `final`, so the static_cast call is direct).
inline int FilterMayContainBatch(const BitvectorFilter* filter,
                                 const uint64_t* hashes, uint16_t* sel,
                                 int num_sel) {
  if (filter->kind() == FilterKind::kBloom) {
    return static_cast<const BloomFilter*>(filter)->MayContainBatch(
        hashes, sel, num_sel);
  }
  return filter->MayContainBatch(hashes, sel, num_sel);
}

}  // namespace

ScanOperator::ScanOperator(const Table* table, ExprPtr predicate,
                           OutputSchema schema,
                           std::vector<ResolvedFilter> filters,
                           FilterRuntime* runtime, std::string label)
    : table_(table),
      predicate_(std::move(predicate)),
      filters_(std::move(filters)),
      runtime_(runtime) {
  schema_ = std::move(schema);
  stats_.type = OperatorType::kScan;
  stats_.label = std::move(label);
  gather_cols_.reserve(static_cast<size_t>(schema_.size()));
  for (int i = 0; i < schema_.size(); ++i) {
    const int idx = table_->ColumnIndex(schema_.col(i).column);
    BQO_CHECK_MSG(idx >= 0, "scan output column missing from base table");
    BQO_CHECK_MSG(table_->column(idx).type() != DataType::kDouble,
                  "execution batches are int64-only (see batch.h)");
    gather_cols_.push_back(&table_->column(idx));
  }
}

void ScanOperator::Open() {
  TimerGuard timer(&stats_);
  selection_ = EvaluatePredicate(*table_, predicate_);
  cursor_ = 0;

  // Resolve the filters pushed down to this scan. Every hash join above
  // has finished its build (and created its filter) before our Open runs.
  active_filters_.clear();
  for (const ResolvedFilter& rf : filters_) {
    const BitvectorFilter* filter =
        runtime_->slots[static_cast<size_t>(rf.filter_id)].get();
    if (filter == nullptr) continue;  // pruned or disabled
    ActiveFilter af;
    af.filter = filter;
    af.stats = &runtime_->stats[static_cast<size_t>(rf.filter_id)];
    af.num_keys = rf.key_positions.size();
    BQO_CHECK_LE(af.num_keys, size_t{8});
    for (size_t k = 0; k < af.num_keys; ++k) {
      af.key_data[k] = table_->column(rf.key_positions[k]).int_data();
    }
    active_filters_.push_back(af);
  }

  sel_.resize(kBatchSize);
  hash_scratch_.resize(kBatchSize);
  key_scratch_.resize(size_t{8} * kBatchSize);
}

bool ScanOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  out->Reset(schema_.size());
  const size_t num_filters = active_filters_.size();
  uint16_t* sel = sel_.data();
  uint64_t* hashes = hash_scratch_.data();

  // Keep consuming strides until the output batch fills (or the selection
  // runs out): under a highly selective filter each stride contributes only
  // a few survivors, and returning them one stride at a time would multiply
  // the per-batch overhead of every operator above us. Capping the stride
  // at the batch's remaining capacity keeps strides near-full until then.
  while (cursor_ < selection_.size() && !out->Full()) {
    const int n = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(kBatchSize - out->num_rows),
        selection_.size() - cursor_));
    const uint32_t* rows = selection_.data() + cursor_;
    cursor_ += static_cast<size_t>(n);
    stats_.rows_prefilter += n;

    int m = n;
    for (int i = 0; i < n; ++i) sel[i] = static_cast<uint16_t>(i);

    for (size_t f = 0; f < num_filters && m > 0; ++f) {
      const ActiveFilter& af = active_filters_[f];
      // Hash the keys of the still-selected positions, position-aligned
      // with the stride so the selection indexes `hashes` directly.
      if (af.num_keys == 1) {
        const int64_t* key_col = af.key_data[0];
        if (m == n) {
          // Dense fast path (first filter): gather + batched hashing.
          int64_t* keys = key_scratch_.data();
          for (int i = 0; i < n; ++i) {
            keys[i] = key_col[rows[i]];
          }
          HashColumn(keys, n, hashes);
        } else {
          for (int j = 0; j < m; ++j) {
            const uint16_t pos = sel[j];
            hashes[pos] = HashComposite(&key_col[rows[pos]], 1);
          }
        }
      } else if (m == n) {
        const int64_t* gathered[8];
        for (size_t k = 0; k < af.num_keys; ++k) {
          int64_t* dst = key_scratch_.data() + k * kBatchSize;
          const int64_t* src = af.key_data[k];
          for (int i = 0; i < n; ++i) dst[i] = src[rows[i]];
          gathered[k] = dst;
        }
        HashCompositeBatch(gathered, af.num_keys, n, hashes);
      } else {
        for (int j = 0; j < m; ++j) {
          const uint16_t pos = sel[j];
          int64_t key[8];
          for (size_t k = 0; k < af.num_keys; ++k) {
            key[k] = af.key_data[k][rows[pos]];
          }
          hashes[pos] = HashComposite(key, af.num_keys);
        }
      }

      af.stats->probed += m;
      af.stats->probe_batches += 1;
      m = FilterMayContainBatch(af.filter, hashes, sel, m);
      af.stats->passed += m;
    }
    if (m == 0) continue;

    // Gather the survivors into the output batch in one pass per column,
    // appending after any survivors from earlier strides.
    for (size_t c = 0; c < gather_cols_.size(); ++c) {
      const int64_t* src = gather_cols_[c]->int_data();
      int64_t* dst = out->col(static_cast<int>(c)) + out->num_rows;
      for (int j = 0; j < m; ++j) {
        dst[j] = src[rows[sel[j]]];
      }
    }
    out->num_rows += m;
  }
  stats_.rows_out += out->num_rows;
  return out->num_rows > 0;
}

void ScanOperator::Close() {
  selection_.clear();
  selection_.shrink_to_fit();
  active_filters_.clear();
}

}  // namespace bqo

#include "src/exec/scan.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/filter/bloom_filter.h"
#include "src/filter/filter_kernels.h"

namespace bqo {

// The devirtualized FilterMayContainBatch the stride loop probes through
// lives in bloom_filter.h, shared with the hash join's residual winnow.

ScanOperator::ScanOperator(const Table* table, ExprPtr predicate,
                           OutputSchema schema,
                           std::vector<ResolvedFilter> filters,
                           FilterRuntime* runtime, std::string label)
    : table_(table),
      predicate_(std::move(predicate)),
      filters_(std::move(filters)),
      runtime_(runtime) {
  schema_ = std::move(schema);
  stats_.type = OperatorType::kScan;
  stats_.label = std::move(label);
  gather_cols_.reserve(static_cast<size_t>(schema_.size()));
  for (int i = 0; i < schema_.size(); ++i) {
    const int idx = table_->ColumnIndex(schema_.col(i).column);
    BQO_CHECK_MSG(idx >= 0, "scan output column missing from base table");
    BQO_CHECK_MSG(table_->column(idx).type() != DataType::kDouble,
                  "execution batches are int64-only (see batch.h)");
    gather_cols_.push_back(&table_->column(idx));
  }
}

void ScanOperator::Open() {
  TimerGuard timer(&stats_);
  selection_ = EvaluatePredicate(*table_, predicate_);
  shared_cursor_.store(0, std::memory_order_relaxed);
  // One morsel spanning the whole selection: the single-threaded Next()
  // path then consumes strides exactly as before. ExchangeOperator
  // overrides this with its configured morsel size before workers start.
  morsel_rows_ = selection_.empty() ? 1 : selection_.size();

  // Resolve the filters pushed down to this scan. Every hash join above
  // has finished its build (and created its filter) before our Open runs.
  active_filters_.clear();
  filter_stat_slots_.clear();
  for (const ResolvedFilter& rf : filters_) {
    const BitvectorFilter* filter =
        runtime_->slots[static_cast<size_t>(rf.filter_id)].get();
    if (filter == nullptr) continue;  // pruned or disabled
    ActiveFilter af;
    af.filter = filter;
    af.num_keys = rf.key_positions.size();
    BQO_CHECK_LE(af.num_keys, size_t{8});
    for (size_t k = 0; k < af.num_keys; ++k) {
      af.key_data[k] = table_->column(rf.key_positions[k]).int_data();
    }
    active_filters_.push_back(af);
    filter_stat_slots_.push_back(
        &runtime_->stats[static_cast<size_t>(rf.filter_id)]);
  }

  local_ = WorkerState{};
  InitWorkerState(&local_);
}

void ScanOperator::InitWorkerState(WorkerState* ws) const {
  ws->sel.resize(kBatchSize);
  ws->hashes.resize(kBatchSize);
  ws->keys.resize(size_t{8} * kBatchSize);
  ws->filter_stats.assign(active_filters_.size(), FilterStats{});
  ws->morsel_pos = 0;
  ws->morsel_end = 0;
}

void ScanOperator::ProcessStride(const uint32_t* rows, int n, uint16_t* sel,
                                 uint64_t* hashes, int64_t* keys,
                                 FilterStats* fstats, Batch* out) const {
  const size_t num_filters = active_filters_.size();
  int m = n;
  for (int i = 0; i < n; ++i) sel[i] = static_cast<uint16_t>(i);

  for (size_t f = 0; f < num_filters && m > 0; ++f) {
    const ActiveFilter& af = active_filters_[f];
    // Hash the keys of the still-selected positions, position-aligned
    // with the stride so the selection indexes `hashes` directly.
    if (af.num_keys == 1) {
      const int64_t* key_col = af.key_data[0];
      if (m == n) {
        // Dense fast path (first filter): gather + batched hashing.
        for (int i = 0; i < n; ++i) {
          keys[i] = key_col[rows[i]];
        }
        HashColumnKernel(keys, n, hashes);
      } else {
        for (int j = 0; j < m; ++j) {
          const uint16_t pos = sel[j];
          hashes[pos] = HashComposite(&key_col[rows[pos]], 1);
        }
      }
    } else if (m == n) {
      const int64_t* gathered[8];
      for (size_t k = 0; k < af.num_keys; ++k) {
        int64_t* dst = keys + k * kBatchSize;
        const int64_t* src = af.key_data[k];
        for (int i = 0; i < n; ++i) dst[i] = src[rows[i]];
        gathered[k] = dst;
      }
      HashCompositeBatchKernel(gathered, af.num_keys, n, hashes);
    } else {
      for (int j = 0; j < m; ++j) {
        const uint16_t pos = sel[j];
        int64_t key[8];
        for (size_t k = 0; k < af.num_keys; ++k) {
          key[k] = af.key_data[k][rows[pos]];
        }
        hashes[pos] = HashComposite(key, af.num_keys);
      }
    }

    fstats[f].probed += m;
    fstats[f].probe_batches += 1;
    m = FilterMayContainBatch(af.filter, hashes, sel, m);
    fstats[f].passed += m;
  }
  if (m == 0) return;

  // Gather the survivors into the output batch in one pass per column,
  // appending after any survivors from earlier strides.
  for (size_t c = 0; c < gather_cols_.size(); ++c) {
    const int64_t* src = gather_cols_[c]->int_data();
    int64_t* dst = out->col(static_cast<int>(c)) + out->num_rows;
    for (int j = 0; j < m; ++j) {
      dst[j] = src[rows[sel[j]]];
    }
  }
  out->num_rows += m;
}

void ScanOperator::ConsumeStride(Batch* out, WorkerState* ws) const {
  const int n = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(kBatchSize - out->num_rows),
      ws->morsel_end - ws->morsel_pos));
  const uint32_t* rows = selection_.data() + ws->morsel_pos;
  ws->morsel_pos += static_cast<size_t>(n);
  ws->rows_prefilter += n;
  ProcessStride(rows, n, ws->sel.data(), ws->hashes.data(), ws->keys.data(),
                ws->filter_stats.data(), out);
}

bool ScanOperator::ParallelNext(Batch* out, WorkerState* ws) {
  out->Reset(schema_.size());

  // Keep consuming strides until the output batch fills (or the claimed
  // work runs out): under a highly selective filter each stride contributes
  // only a few survivors, and returning them one stride at a time would
  // multiply the per-batch overhead of every operator above us. Capping the
  // stride at the batch's remaining capacity keeps strides near-full.
  while (!out->Full()) {
    // Stride-boundary cancellation point: one atomic load per ~kBatchSize
    // rows (plus a clock read when a deadline is armed).
    if (CtxShouldStop(query_context())) break;
    if (ws->morsel_pos >= ws->morsel_end) {
      size_t begin;
      if (!ClaimMorsel(ws, &begin)) break;
    }
    ConsumeStride(out, ws);
  }
  ws->rows_out += out->num_rows;
  return out->num_rows > 0;
}

bool ScanOperator::ClaimMorsel(WorkerState* ws, size_t* begin) {
  // Morsel-boundary cancellation point: a cancelled query's workers stop
  // claiming and the drain above unwinds as if the scan ran dry.
  if (CtxShouldStop(query_context())) return false;
  // fetch_add is the only cross-worker synchronization on the hot path.
  const size_t total = selection_.size();
  const size_t b =
      shared_cursor_.fetch_add(morsel_rows_, std::memory_order_relaxed);
  if (b >= total) return false;
  ws->morsel_pos = b;
  ws->morsel_end = std::min(b + morsel_rows_, total);
  *begin = b;
  return true;
}

bool ScanOperator::MorselNext(Batch* out, WorkerState* ws) {
  out->Reset(schema_.size());
  while (!out->Full() && ws->morsel_pos < ws->morsel_end) {
    if (CtxShouldStop(query_context())) break;
    ConsumeStride(out, ws);
  }
  ws->rows_out += out->num_rows;
  return out->num_rows > 0;
}

bool ScanOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  return ParallelNext(out, &local_);
}

void ScanOperator::MergeWorkerStats(WorkerState* ws) {
  BQO_CHECK_EQ(ws->filter_stats.size(), filter_stat_slots_.size());
  for (size_t f = 0; f < filter_stat_slots_.size(); ++f) {
    FilterStats* dst = filter_stat_slots_[f];
    dst->probed += ws->filter_stats[f].probed;
    dst->passed += ws->filter_stats[f].passed;
    dst->probe_batches += ws->filter_stats[f].probe_batches;
  }
  ws->filter_stats.clear();  // merged; a repeated Close() merges nothing
  stats_.rows_prefilter += ws->rows_prefilter;
  stats_.rows_out += ws->rows_out;
  // Summed worker pipeline time (per-thread CPU clock); under morsel
  // parallelism the scan's ns_inclusive is CPU time, not wall time, and
  // worker_cpu_ns carries the same total for QueryMetrics::cpu_ns — the
  // single-threaded path leaves both at 0 here since its time is the
  // driver's (see metrics.h).
  stats_.ns_inclusive += ws->busy_ns;
  stats_.worker_cpu_ns += ws->busy_ns;
  ws->rows_prefilter = 0;
  ws->rows_out = 0;
  ws->busy_ns = 0;
}

void ScanOperator::Close() {
  MergeWorkerStats(&local_);
  selection_.clear();
  selection_.shrink_to_fit();
  active_filters_.clear();
  filter_stat_slots_.clear();
}

}  // namespace bqo

#include "src/exec/scan.h"

#include "src/common/hash.h"
#include "src/filter/bloom_filter.h"

namespace bqo {

namespace {

/// Devirtualized probe: Bloom is the production default and the per-tuple
/// filter-check cost (Cf in Section 6.3) is the quantity Figure 7 profiles,
/// so the hot path avoids the virtual dispatch for it (BloomFilter is
/// `final`, so the static_cast call is direct).
inline bool FilterMayContain(const BitvectorFilter* filter, uint64_t hash) {
  if (filter->kind() == FilterKind::kBloom) {
    return static_cast<const BloomFilter*>(filter)->MayContain(hash);
  }
  return filter->MayContain(hash);
}

}  // namespace

ScanOperator::ScanOperator(const Table* table, ExprPtr predicate,
                           OutputSchema schema,
                           std::vector<ResolvedFilter> filters,
                           FilterRuntime* runtime, std::string label)
    : table_(table),
      predicate_(std::move(predicate)),
      filters_(std::move(filters)),
      runtime_(runtime) {
  schema_ = std::move(schema);
  stats_.type = OperatorType::kScan;
  stats_.label = std::move(label);
  gather_cols_.reserve(static_cast<size_t>(schema_.size()));
  for (int i = 0; i < schema_.size(); ++i) {
    const int idx = table_->ColumnIndex(schema_.col(i).column);
    BQO_CHECK_MSG(idx >= 0, "scan output column missing from base table");
    BQO_CHECK_MSG(table_->column(idx).type() != DataType::kDouble,
                  "execution batches are int64-only (see batch.h)");
    gather_cols_.push_back(&table_->column(idx));
  }
}

void ScanOperator::Open() {
  TimerGuard timer(&stats_);
  selection_ = EvaluatePredicate(*table_, predicate_);
  cursor_ = 0;

  // Resolve the filters pushed down to this scan. Every hash join above
  // has finished its build (and created its filter) before our Open runs.
  active_filters_.clear();
  for (const ResolvedFilter& rf : filters_) {
    const BitvectorFilter* filter =
        runtime_->slots[static_cast<size_t>(rf.filter_id)].get();
    if (filter == nullptr) continue;  // pruned or disabled
    ActiveFilter af;
    af.filter = filter;
    af.stats = &runtime_->stats[static_cast<size_t>(rf.filter_id)];
    af.num_keys = rf.key_positions.size();
    BQO_CHECK_LE(af.num_keys, size_t{8});
    for (size_t k = 0; k < af.num_keys; ++k) {
      af.key_data[k] = table_->column(rf.key_positions[k]).int_data();
    }
    active_filters_.push_back(af);
  }
}

bool ScanOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  out->Reset(schema_.size());
  const size_t num_filters = active_filters_.size();
  // Per-batch local counters keep the per-tuple filter cost (Cf) down to
  // hash + probe; flushed to the shared FilterStats after the loop.
  int64_t probed_local[64] = {0};
  int64_t passed_local[64] = {0};
  BQO_CHECK_LE(num_filters, size_t{64});
  int64_t prefilter_local = 0;

  while (cursor_ < selection_.size() && !out->Full()) {
    const auto row = static_cast<size_t>(selection_[cursor_++]);
    ++prefilter_local;

    bool pass = true;
    for (size_t f = 0; f < num_filters; ++f) {
      const ActiveFilter& af = active_filters_[f];
      uint64_t hash;
      if (BQO_LIKELY(af.num_keys == 1)) {
        hash = HashComposite(&af.key_data[0][row], 1);
      } else {
        int64_t key[8];
        for (size_t k = 0; k < af.num_keys; ++k) {
          key[k] = af.key_data[k][row];
        }
        hash = HashComposite(key, af.num_keys);
      }
      ++probed_local[f];
      if (!FilterMayContain(af.filter, hash)) {
        pass = false;
        break;
      }
      ++passed_local[f];
    }
    if (!pass) continue;

    for (size_t c = 0; c < gather_cols_.size(); ++c) {
      out->columns[c].push_back(gather_cols_[c]->int_data()[row]);
    }
    ++out->num_rows;
  }

  stats_.rows_prefilter += prefilter_local;
  for (size_t f = 0; f < num_filters; ++f) {
    active_filters_[f].stats->probed += probed_local[f];
    active_filters_[f].stats->passed += passed_local[f];
  }
  stats_.rows_out += out->num_rows;
  return out->num_rows > 0;
}

void ScanOperator::Close() {
  selection_.clear();
  selection_.shrink_to_fit();
  active_filters_.clear();
}

}  // namespace bqo

#include "src/exec/query_context.h"

#include <utility>
#include <vector>

#include "src/common/macros.h"

namespace bqo {

void QueryContext::SetDeadline(std::chrono::steady_clock::time_point deadline) {
  deadline_ = deadline;
  // Release pairs with the acquire in has_deadline(): a reader that sees
  // the flag sees the time point.
  has_deadline_.store(true, std::memory_order_release);
}

void QueryContext::SetDeadlineAfterMs(int64_t ms) {
  SetDeadline(std::chrono::steady_clock::now() +
              std::chrono::milliseconds(ms));
}

void QueryContext::Cancel(Status status) {
  BQO_CHECK_MSG(!status.ok(), "QueryContext::Cancel with an OK status");
  std::lock_guard<std::mutex> lock(mu_);
  if (cancelled_.load(std::memory_order_relaxed)) return;  // first error wins
  status_ = std::move(status);
  cancelled_.store(true, std::memory_order_release);
  // Listeners run under mu_, so RemoveCancelListener cannot return while
  // one is mid-flight (see header on lock ordering).
  for (const auto& [token, fn] : listeners_) fn();
}

bool QueryContext::ShouldStop() {
  if (IsCancelled()) return true;
  if (has_deadline_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() > deadline_) {
    Cancel(Status::DeadlineExceeded("query deadline exceeded"));
    return true;
  }
  return false;
}

Status QueryContext::status() const {
  if (!IsCancelled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

int64_t QueryContext::AddCancelListener(std::function<void()> fn) {
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t token = next_listener_token_++;
  if (cancelled_.load(std::memory_order_relaxed)) {
    // Already cancelled: invoke now (under mu_, like Cancel would have)
    // and do not retain — the notification cannot fire twice.
    fn();
    return token;
  }
  listeners_.emplace(token, std::move(fn));
  return token;
}

void QueryContext::RemoveCancelListener(int64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(token);
}

}  // namespace bqo

// Sort-merge join with bitvector-filter adaptation.
//
// The paper's analysis targets hash joins but notes (Section 2) that
// "bitvector filters can also be adapted for merge joins": the filter is
// still built from the (smaller) build input's keys before the probe input
// is consumed, so Algorithm 1's placement carries over unchanged. This
// operator realizes that adaptation: both inputs are materialized and
// sorted at Open(); the build side's filter is created after its
// materialization and before the probe subtree opens — preserving the
// dependency order the push-down relies on.
#pragma once

#include <memory>
#include <vector>

#include "src/exec/hash_join.h"

namespace bqo {

class SortMergeJoinOperator final : public PhysicalOperator {
 public:
  /// Reuses HashJoinOperator::Config: key positions, output sources,
  /// created/residual filters have identical semantics.
  SortMergeJoinOperator(std::unique_ptr<PhysicalOperator> build,
                        std::unique_ptr<PhysicalOperator> probe,
                        OutputSchema schema, HashJoinOperator::Config config,
                        FilterRuntime* runtime, std::string label);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::vector<PhysicalOperator*> children() override {
    return {build_.get(), probe_.get()};
  }

 private:
  struct Side {
    std::vector<int64_t> rows;      ///< row-major materialized tuples
    std::vector<int32_t> order;     ///< row indices sorted by key
    int width = 0;
    int64_t num_rows() const {
      return width == 0 ? 0 : static_cast<int64_t>(rows.size()) / width;
    }
  };

  void Materialize(PhysicalOperator* child, Side* side);
  int CompareKeys(int64_t build_row, int64_t probe_row) const;
  bool EmitRow(int64_t build_row, int64_t probe_row, Batch* out);

  std::unique_ptr<PhysicalOperator> build_;
  std::unique_ptr<PhysicalOperator> probe_;
  HashJoinOperator::Config config_;
  FilterRuntime* runtime_;

  Side build_side_;
  Side probe_side_;

  // Merge state: current group [b_lo_, b_hi_) x [p_lo_, p_hi_) and the
  // in-group cursor.
  int64_t b_cursor_ = 0;
  int64_t p_cursor_ = 0;
  int64_t group_b_lo_ = 0, group_b_hi_ = 0;
  int64_t group_p_lo_ = 0, group_p_hi_ = 0;
  int64_t emit_b_ = 0, emit_p_ = 0;
  bool in_group_ = false;
  bool done_ = false;
};

}  // namespace bqo

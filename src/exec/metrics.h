// Per-operator and per-query execution metrics.
//
// These counters regenerate the paper's measurements: CPU execution time
// (Figures 7, 8, 10; Table 4), tuples output by operator type (Figure 9),
// and bitvector filter effectiveness (the lambda of Section 6.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bqo {

enum class OperatorType : uint8_t { kScan, kHashJoin, kAggregate, kExchange };

struct OperatorStats {
  OperatorType type = OperatorType::kScan;
  std::string label;
  int plan_node_id = -1;
  int64_t rows_out = 0;         ///< after residual bitvector filters
  int64_t rows_prefilter = 0;   ///< before bitvector filters at this op

  // == Probe-side match accounting (kHashJoin only) ==
  //
  // Per-worker accumulation in HashJoinOperator::ProbeState, merged once
  // by MergeProbeStats (the FilterStats discipline below), so both are
  // pool-size- and thread-count-invariant. Together they give the join's
  // *measured* filter false-positive rate: a probe row that reaches this
  // join without matching any build row is a tuple the join's bitvector
  // filter should have eliminated below — so for the filter created here,
  //   leaked   = probe_rows_in - probe_rows_matched
  //   rejected = FilterStats::probed - FilterStats::passed
  //   measured_fpr = leaked / (leaked + rejected)
  // (exact when the filter's application site feeds this join directly; a
  // lower bound when intermediate operators eliminated leaked rows first —
  // see src/obs/explain.h).

  /// Probe-side input rows this join consumed (pre-match).
  int64_t probe_rows_in = 0;
  /// Probe rows that matched >= 1 build row (hash + key equality, before
  /// residual filters).
  int64_t probe_rows_matched = 0;
  /// Wall ns inside Open+Next (children incl.). Exception: the source scan
  /// of a parallel pipeline reports the summed worker pipeline time here —
  /// CPU ns for the whole scan->probe chain, which can exceed the stage's
  /// wall time; the owning exchange's (or the building join's) own
  /// ns_inclusive is the stage wall time the plan above observed.
  int64_t ns_inclusive = 0;
  /// ns_inclusive minus children; can go negative for an operator whose
  /// child reports summed CPU time (see ns_inclusive).
  int64_t ns_self = 0;
  /// Worker threads that executed this operator's parallel phase: an
  /// exchange's probe-pipeline draining, or a hash-join/sort-merge build
  /// drain. 0 = the phase ran single-threaded.
  int parallel_workers = 0;
  /// Summed per-task thread-CPU ns of the pool tasks that drained this
  /// operator's pipeline (source scans only; 0 on the single-threaded
  /// path, whose time is the driver's). Unlike ns_inclusive this is a pure
  /// CPU-clock quantity, so QueryMetrics::cpu_ns — driver CPU plus these —
  /// is immune to co-running queries on the shared WorkerPool.
  int64_t worker_cpu_ns = 0;

  // == Aggregation counters (kAggregate, and kExchange in pre-aggregating
  // mode) ==
  //
  // Per-worker accumulation, merged once (same discipline as FilterStats
  // below): each pre-aggregating exchange worker counts the rows it folds
  // into its thread-local PartialAggState; DrainPartials() sums them into
  // the exchange's counters after joining the workers, and the aggregate
  // sink records the merged totals. agg_rows_folded is therefore exactly
  // the single-threaded aggregate's input row count at every thread count.

  /// Input rows folded into (partial) aggregate state at this operator.
  int64_t agg_rows_folded = 0;
  /// Pre-aggregating exchange only: sum of per-worker partial group-map
  /// sizes before the sink merge. >= the final NumGroups() whenever a group
  /// key was seen by more than one worker; the gap measures how much
  /// duplicate-group merge work the sink did.
  int64_t agg_partial_groups = 0;
};

/// Per-filter build/probe counters.
///
/// == Per-worker accumulation invariant ==
///
/// These counters are plain (non-atomic) fields. Under pipeline-parallel
/// execution every worker accumulates into its own private
/// FilterStats/OperatorStats (ScanOperator::WorkerState for pushed-down
/// scan filters, HashJoinOperator::ProbeState for join residual filters)
/// and the deltas are merged into the shared FilterRuntime exactly once,
/// after the workers are joined — so probed/passed (and ObservedLambda) are
/// exact and equal to the single-threaded counts, never torn or
/// approximately-sampled. `inserted` is thread-count-invariant too: builds
/// reassemble their inputs in canonical order and filter fills either run
/// in that order or reconstruct the sequential count during MergeFrom
/// (FillFilterParallel in pipeline.h). Only probe_batches may differ across
/// thread counts (morsel and batch boundaries chop strides differently);
/// the probe/pass *sets* are partition-invariant.
struct FilterStats {
  int filter_id = -1;
  bool created = false;   ///< false if pruned/disabled
  int64_t inserted = 0;
  int64_t probed = 0;
  int64_t passed = 0;
  /// Batched probe calls (MayContainBatch strides). probed/passed are
  /// aggregated once per stride by the vectorized operators, so
  /// probed / probe_batches is the mean live-selection width the filter saw.
  int64_t probe_batches = 0;
  int64_t size_bytes = 0;

  double ObservedLambda() const {
    return probed == 0
               ? 0.0
               : static_cast<double>(probed - passed) /
                     static_cast<double>(probed);
  }
};

struct QueryMetrics {
  /// Wall time of ExecutePlan (Open..Close) as seen by the driver thread.
  /// Under concurrent serving this is inflated by co-running queries; use
  /// cpu_ns to compare a query against itself across runs.
  int64_t total_ns = 0;
  /// The query's own task time: driver-thread CPU (helping-adjusted, see
  /// WorkerPool::InlineTaskCpuNanos) plus the summed per-task CPU of every
  /// pool task the query's drains ran (worker_cpu_ns above). Measured on
  /// per-thread CPU clocks (src/common/thread_clock.h), so neither pool
  /// queueing nor preemption by other queries inflates it — the workload
  /// runner's min-of-k repeat timing keys on this field.
  int64_t cpu_ns = 0;
  int64_t result_rows = 0;
  /// Order-independent checksum of the result (verifies plan equivalence).
  uint64_t result_checksum = 0;

  // Figure 9 categories.
  int64_t leaf_tuples = 0;
  int64_t join_tuples = 0;
  int64_t other_tuples = 0;

  std::vector<OperatorStats> operators;
  std::vector<FilterStats> filters;

  /// \brief Sum of post-filter operator outputs (the executed-plan Cout).
  int64_t TotalIntermediateTuples() const {
    return leaf_tuples + join_tuples;
  }
};

/// \brief Counters of the serving layer's plan cache (src/server/
/// plan_cache.h): a hit skips optimization entirely and amortizes the
/// bitvector-aware optimization overhead the paper's Section 6.5 measures.
/// Since the cache keys on plan *shape*, a lookup lands in exactly one of
/// hits (served from cache — exact or rebound), reoptimizations (shape
/// matched but reuse was refused), or misses (shape absent).
struct PlanCacheStats {
  int64_t hits = 0;            ///< served from cache (exact + rebound)
  int64_t misses = 0;          ///< shape absent
  int64_t evictions = 0;       ///< LRU entries dropped at capacity
  int64_t invalidations = 0;   ///< full flushes (catalog/stats change)
  int64_t entries = 0;         ///< current cache size

  // ---- Shape-cache outcome detail ----
  /// Lookups whose shape was present (hits + reoptimizations): the
  /// template was recognized even when reuse was refused.
  int64_t shape_hits = 0;
  /// Hits that re-bound moved constants into a private plan instance
  /// (hits - rebinds = exact-constant hits, the degenerate case).
  int64_t rebinds = 0;
  /// Shape hits escalated to full re-optimization (moved selectivity out
  /// of the validity band, or the entry was marked stale by drift).
  int64_t reoptimizations = 0;
  /// Entries marked stale because the observed-lambda EWMA drifted past
  /// the margin (each forces one re-optimization on its next lookup).
  int64_t drift_invalidations = 0;

  double HitRate() const {
    const int64_t lookups = hits + misses + reoptimizations;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }

  double ShapeHitRate() const {
    const int64_t lookups = hits + misses + reoptimizations;
    return lookups == 0 ? 0.0
                        : static_cast<double>(shape_hits) /
                              static_cast<double>(lookups);
  }
};

/// \brief Counters of the serving layer's build-side cache (src/server/
/// build_cache.h). Accounting invariants the unit tests pin:
/// hits + misses == lookups (every lookup resolves exactly one way — a
/// shared result is a hit, anything else, including building it yourself,
/// failing, or leaving cancelled, is a miss); single_flight_waits counts
/// each lookup that ever parked behind a leader at most once; bytes is
/// symmetric across insert/evict/invalidate (resident entries only).
struct BuildCacheStats {
  int64_t lookups = 0;
  int64_t hits = 0;    ///< served a build constructed by another query
  int64_t misses = 0;  ///< built privately (leader), failed, or gave up
  /// Lookups that waited behind an in-flight construction (once per
  /// waiter, regardless of how many times its wait loop woke).
  int64_t single_flight_waits = 0;
  int64_t evictions = 0;      ///< LRU entries dropped at the memory bound
  int64_t invalidations = 0;  ///< full flushes (catalog version change)
  int64_t entries = 0;        ///< current resident entries
  int64_t bytes = 0;          ///< current resident bytes

  double HitRate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// \brief Per-outcome counters of the serving layer (src/server/
/// query_service.h): every Execute() lands in exactly one bucket, keyed by
/// the final QueryResult::status code, so served + shed + timed_out +
/// cancelled + failed equals the total requests the service has finished.
struct ServingStats {
  int64_t served = 0;     ///< completed with an OK status
  int64_t shed = 0;       ///< rejected at admission: queue full
                          ///< (kResourceExhausted)
  int64_t timed_out = 0;  ///< deadline expired, waiting or mid-execution
                          ///< (kDeadlineExceeded)
  int64_t cancelled = 0;  ///< cooperatively cancelled by the client
                          ///< (kCancelled)
  int64_t failed = 0;     ///< any other error (e.g. an injected fault)

  int64_t Total() const {
    return served + shed + timed_out + cancelled + failed;
  }
};

}  // namespace bqo

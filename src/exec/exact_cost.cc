#include "src/exec/exact_cost.h"

#include "src/exec/executor.h"

namespace bqo {

CoutBreakdown ExactCoutModel::Compute(const Plan& plan) {
  ExecutionOptions options;
  options.filter_config.kind = FilterKind::kExact;
  options.use_bitvectors = true;

  const QueryMetrics metrics = ExecutePlan(plan, options);

  CoutBreakdown out;
  out.node_output.assign(plan.nodes.size(), 0.0);
  out.node_prefilter.assign(plan.nodes.size(), 0.0);
  out.filter_lambda.assign(plan.filters.size(), 0.0);
  for (const OperatorStats& op : metrics.operators) {
    // Exchanges are pass-through and share their scan's plan_node_id; the
    // scan's own stats (merged at Close) are the authoritative leaf counts.
    if (op.type == OperatorType::kAggregate ||
        op.type == OperatorType::kExchange) {
      continue;
    }
    BQO_CHECK(op.plan_node_id >= 0 &&
              static_cast<size_t>(op.plan_node_id) < plan.nodes.size());
    out.node_output[static_cast<size_t>(op.plan_node_id)] =
        static_cast<double>(op.rows_out);
    out.node_prefilter[static_cast<size_t>(op.plan_node_id)] =
        static_cast<double>(op.rows_prefilter);
    out.total += static_cast<double>(op.rows_out);
  }
  for (const FilterStats& fs : metrics.filters) {
    if (fs.filter_id >= 0 &&
        static_cast<size_t>(fs.filter_id) < out.filter_lambda.size()) {
      out.filter_lambda[static_cast<size_t>(fs.filter_id)] =
          fs.ObservedLambda();
    }
  }
  return out;
}

}  // namespace bqo

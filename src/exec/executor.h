// Plan execution: lowers an annotated Plan (join tree + Algorithm 1 filter
// placement) into a physical operator tree and runs it.
//
// The same Plan object that was costed is executed; filter slots are shared
// through a FilterRuntime so a filter created at one hash join is probed at
// the operator Algorithm 1 pushed it to.
//
// == Pipeline-parallel execution ==
//
// With exec.threads > 1 the compiled tree executes as a schedule of
// morsel-parallel pipelines (pipeline.h) separated by its breakers (hash-
// join builds, sort-merge materializations, the aggregate):
//
//  * Each hash join's Open() drains its build-side pipeline with N workers
//    into canonical-order partitions reassembled into the bucket-chained
//    table, and creates its bitvector filter from per-worker partials
//    combined through BitvectorFilter::MergeFrom (FillFilterParallel).
//  * The topmost probe chain (scan -> probe -> ... -> probe) runs wide
//    behind a single ExchangeOperator compiled directly below the
//    aggregate — parallelism stops at the final breaker, not at the leaves.
//  * The final aggregate is compiled *into* that exchange (pre-aggregating
//    drain, exchange.h): each worker folds its probe-chain output into a
//    thread-local PartialAggState and the AggregateOperator sink merges the
//    per-worker partials — no serial consume loop and no raw-batch queue
//    above the top probe chain.
//
// The recursive Open() order still realizes Algorithm 1's filter-dependency
// order: every build pipeline (and the filter it creates) completes before
// the probe pipeline that consumes the filter starts. threads == 1 compiles
// the exact single-threaded plan; at any thread count the merged
// probed/passed/ObservedLambda counters — and the aggregate's
// ResultChecksum()/NumGroups()/TotalValue() — equal the single-threaded
// values (per-worker accumulate, merge-once — see metrics.h, aggregate.h).
#pragma once

#include <memory>

#include "src/exec/aggregate.h"
#include "src/exec/exec_config.h"
#include "src/exec/metrics.h"
#include "src/plan/plan.h"

namespace bqo {

struct ExecutionOptions {
  /// Filter implementation used for created bitvector filters.
  FilterConfig filter_config;
  /// Threading knobs. exec.threads > 1 executes the plan pipeline-parallel:
  /// hash-join builds drain wide, and the topmost probe chain runs behind a
  /// single ExchangeOperator below the aggregate (exchange.h, pipeline.h);
  /// threads == 1 compiles exactly the single-threaded plan.
  ExecConfig exec;
  /// When false, no bitvector filters are created or probed (the paper's
  /// Appendix A / Table 4 comparison: same plan, filters ignored).
  bool use_bitvectors = true;
  /// Compile joins as sort-merge instead of hash joins. Filter creation and
  /// placement are unchanged (the paper's Section 2 remark that bitvector
  /// filters adapt to merge joins); used by the join-algorithm ablation.
  bool use_sort_merge_join = false;
  /// Final aggregate; COUNT(*) by default.
  AggSpec agg;
  /// Cooperative cancellation / deadline context (borrowed; must outlive
  /// the execution). Null = ExecutePlan runs under a private context, so
  /// injected faults still unwind cooperatively but nothing external can
  /// cancel the query. Every drain loop polls it at stride boundaries; a
  /// cancelled execution returns partial (void) metrics — callers that
  /// pass a context must check its status() before trusting the results.
  QueryContext* context = nullptr;
  /// Cross-query build-side cache (borrowed; may be null — then every hash
  /// join constructs its build privately, the default for direct callers).
  /// catalog_version is the version the plan was bound under; the cache
  /// keys entries and in-flight constructions on it so shared builds
  /// invalidate with the plans that reference them (src/server/
  /// build_cache.h).
  BuildCache* build_cache = nullptr;
  int64_t catalog_version = 0;
};

/// \brief Execute `plan` and return its metrics. The plan must Validate()
/// and have been through PushDownBitvectors (or ClearBitvectors).
QueryMetrics ExecutePlan(const Plan& plan,
                         const ExecutionOptions& options = {});

/// \brief Build the operator tree without running it (tests inspect it).
std::unique_ptr<AggregateOperator> CompilePlan(const Plan& plan,
                                               const ExecutionOptions& options,
                                               FilterRuntime* runtime);

}  // namespace bqo

// Plan execution: lowers an annotated Plan (join tree + Algorithm 1 filter
// placement) into a physical operator tree and runs it.
//
// The same Plan object that was costed is executed; filter slots are shared
// through a FilterRuntime so a filter created at one hash join is probed at
// the operator Algorithm 1 pushed it to.
#pragma once

#include <memory>

#include "src/exec/aggregate.h"
#include "src/exec/exec_config.h"
#include "src/exec/metrics.h"
#include "src/plan/plan.h"

namespace bqo {

struct ExecutionOptions {
  /// Filter implementation used for created bitvector filters.
  FilterConfig filter_config;
  /// Threading knobs. exec.threads > 1 compiles every scan behind an
  /// ExchangeOperator (morsel-parallel draining, exchange.h); threads == 1
  /// compiles exactly the pre-exchange single-threaded plan.
  ExecConfig exec;
  /// When false, no bitvector filters are created or probed (the paper's
  /// Appendix A / Table 4 comparison: same plan, filters ignored).
  bool use_bitvectors = true;
  /// Compile joins as sort-merge instead of hash joins. Filter creation and
  /// placement are unchanged (the paper's Section 2 remark that bitvector
  /// filters adapt to merge joins); used by the join-algorithm ablation.
  bool use_sort_merge_join = false;
  /// Final aggregate; COUNT(*) by default.
  AggSpec agg;
};

/// \brief Execute `plan` and return its metrics. The plan must Validate()
/// and have been through PushDownBitvectors (or ClearBitvectors).
QueryMetrics ExecutePlan(const Plan& plan,
                         const ExecutionOptions& options = {});

/// \brief Build the operator tree without running it (tests inspect it).
std::unique_ptr<AggregateOperator> CompilePlan(const Plan& plan,
                                               const ExecutionOptions& options,
                                               FilterRuntime* runtime);

}  // namespace bqo

// JoinBuildSide: the immutable result of a hash join's build phase — the
// bucket-chained hash table plus the bitvector filter created from it.
//
// Extracted from HashJoinOperator so the whole build result can be shared
// across queries through the server's BuildCache (src/server/build_cache.h):
// builds drain in canonical morsel order (pipeline.h), so the table — and
// the filter, whose fill replays the same canonical hash sequence — is
// byte-identical at any thread count, which is what makes a build produced
// by one query (at one worker share) safe to hand to another (at a
// different share) without perturbing any pinned parity invariant.
//
// Everything here is written once, by the constructing query, before the
// side is published or shared; afterwards it is read-only. The stats
// snapshot fields exist so a query served from the cache can report
// *as-if-built* metrics (FilterStats::inserted/size_bytes, the build scan's
// rows_out/rows_prefilter) identical to the query that actually built —
// keeping leaf_tuples and filter counters concurrency-invariant.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/filter/bitvector_filter.h"

namespace bqo {

struct JoinBuildSide {
  /// Hash-table entry: chain link for collisions/duplicates plus the
  /// row-major offset of the entry's tuple in `rows`.
  struct Entry {
    uint64_t hash;
    int32_t next;       ///< chain for collisions/duplicates, -1 = end
    int32_t row_start;  ///< offset into rows (row-major)
  };

  std::vector<int32_t> buckets;  ///< -1 = empty; size is a power of two
  std::vector<Entry> entries;
  std::vector<int64_t> rows;     ///< row-major build tuples
  int width = 0;                 ///< columns per tuple in `rows`
  uint64_t bucket_mask = 0;

  /// The bitvector filter created from this build's keys, or null when the
  /// join creates none. Shared into FilterRuntime::slots read-only.
  std::shared_ptr<BitvectorFilter> filter;

  // ---- As-if-built stats snapshot (replayed on cache hits) ----
  int64_t filter_inserted = 0;
  int64_t filter_size_bytes = 0;
  int64_t scan_rows_out = 0;         ///< build scan's post-predicate rows
  int64_t scan_rows_prefilter = 0;   ///< build scan's pre-filter rows

  /// \brief Resident bytes of the table plus the filter — what the
  /// BuildCache's memory bound accounts.
  int64_t SizeBytes() const {
    int64_t bytes =
        static_cast<int64_t>(buckets.capacity() * sizeof(int32_t)) +
        static_cast<int64_t>(entries.capacity() * sizeof(Entry)) +
        static_cast<int64_t>(rows.capacity() * sizeof(int64_t));
    if (filter != nullptr) bytes += filter->SizeBytes();
    return bytes;
  }
};

/// \brief A valid empty build side (16 empty buckets, the minimum the
/// probe path indexes into). Installed when a cached/shared build could not
/// be obtained — a cancelled flight — so Close() and straggling probe
/// calls stay well-defined while the query unwinds; results are void.
inline std::shared_ptr<const JoinBuildSide> EmptyJoinBuildSide(int width) {
  auto side = std::make_shared<JoinBuildSide>();
  side->width = width;
  side->buckets.assign(16, -1);
  side->bucket_mask = 15;
  return side;
}

}  // namespace bqo

// Table scan: local predicate evaluation plus pushed-down bitvector probes.
//
// The predicate is evaluated once at Open() into a selection vector (this is
// the columnar "leaf" work the paper's Figure 9 counts); Next() gathers the
// required output columns and tests each candidate row against the bitvector
// filters pushed down to this leaf by Algorithm 1.
#pragma once

#include <vector>

#include "src/exec/operator.h"
#include "src/storage/table.h"

namespace bqo {

class ScanOperator final : public PhysicalOperator {
 public:
  /// \param filters   filters applied at this leaf; key_positions are
  ///                  base-table column indices of the probe columns.
  ScanOperator(const Table* table, ExprPtr predicate, OutputSchema schema,
               std::vector<ResolvedFilter> filters, FilterRuntime* runtime,
               std::string label);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

 private:
  /// A filter fully resolved for the per-row loop: loop-invariant pointers
  /// hoisted so the check costs only the hash + the probe (the Cf that
  /// Figure 7 profiles).
  struct ActiveFilter {
    const BitvectorFilter* filter = nullptr;
    FilterStats* stats = nullptr;
    const int64_t* key_data[8] = {nullptr};
    size_t num_keys = 0;
  };

  const Table* table_;
  ExprPtr predicate_;
  std::vector<ResolvedFilter> filters_;
  FilterRuntime* runtime_;
  /// Output column -> base table column (resolved once; hot path).
  std::vector<const Column*> gather_cols_;
  /// Resolved at Open() (filter slots are filled by then; hash joins above
  /// this scan complete their builds before opening their probe side).
  std::vector<ActiveFilter> active_filters_;

  std::vector<uint32_t> selection_;
  size_t cursor_ = 0;
};

}  // namespace bqo

// Table scan: local predicate evaluation plus pushed-down bitvector probes.
//
// The predicate is evaluated once at Open() into a selection vector (this is
// the columnar "leaf" work the paper's Figure 9 counts); batches are produced
// one stride of candidate rows at a time: the stride's filter keys are hashed
// into a scratch array, each pushed-down filter winnows a per-stride selection
// vector (batched, prefetched probes — see batch.h), and the survivors are
// gathered into the output batch in one pass at the end.
//
// == Morsel parallelism ==
//
// The selection vector is immutable after Open(), and so are the bitvector
// filters (built before the probe side opens), so the stride pipeline can run
// from many threads at once: strides are claimed off an atomic cursor in
// morsel-sized chunks, and each worker keeps its own scratch buffers and
// stats accumulators in a WorkerState. The single-threaded Next() path is the
// degenerate case — one WorkerState, one morsel spanning the whole selection —
// so both paths execute the same code. The scan is the *source* of every
// parallel pipeline (pipeline.h): ExchangeOperator workers drain it
// free-running through ParallelNext, and hash-join build drains claim one
// morsel at a time (ClaimMorsel/MorselNext) so their outputs reassemble in
// canonical order. Whoever owns the workers merges every WorkerState's
// counters back into the shared OperatorStats/FilterStats exactly once,
// after the workers are joined.
#pragma once

#include <atomic>
#include <vector>

#include "src/exec/operator.h"
#include "src/storage/table.h"

namespace bqo {

class ScanOperator final : public PhysicalOperator {
 public:
  /// \param filters   filters applied at this leaf; key_positions are
  ///                  base-table column indices of the probe columns.
  ScanOperator(const Table* table, ExprPtr predicate, OutputSchema schema,
               std::vector<ResolvedFilter> filters, FilterRuntime* runtime,
               std::string label);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  /// Per-worker execution state: the stride scratch plus private stats
  /// accumulators. Workers never touch the shared FilterRuntime counters;
  /// MergeWorkerStats folds these in once the worker is done, so the merged
  /// probed/passed totals are exactly the single-threaded counts.
  struct WorkerState {
    std::vector<uint16_t> sel;           ///< live positions within the stride
    std::vector<uint64_t> hashes;        ///< hash of position i's key
    std::vector<int64_t> keys;           ///< gathered key columns (8 strides)
    std::vector<FilterStats> filter_stats;  ///< aligned with active_filters_
    int64_t rows_prefilter = 0;
    int64_t rows_out = 0;
    int64_t busy_ns = 0;                 ///< pipeline time (exchange workers)
    // Current claimed morsel: [morsel_pos, morsel_end) over selection_.
    size_t morsel_pos = 0;
    size_t morsel_end = 0;
  };

  /// \brief Size `ws`'s scratch for this scan. Call after Open().
  void InitWorkerState(WorkerState* ws) const;

  /// \brief Fill `out` by claiming strides off the shared morsel cursor;
  /// false when the selection is exhausted and `out` came up empty. Safe to
  /// call from multiple threads after Open(), each with its own WorkerState;
  /// all counters accumulate into `ws`. Batches may span morsels (the
  /// free-running path used above probe pipelines, where order is
  /// irrelevant).
  bool ParallelNext(Batch* out, WorkerState* ws);

  /// \brief Claim the next unprocessed morsel off the shared cursor into
  /// `ws`. `*begin` is its starting offset in the selection — a canonical
  /// position: chunks sorted by it reassemble the single-threaded row
  /// order. False when the selection is exhausted. Thread-safe.
  bool ClaimMorsel(WorkerState* ws, size_t* begin);

  /// \brief Like ParallelNext but confined to the morsel last claimed via
  /// ClaimMorsel: fills `out` from that morsel's remaining rows only and
  /// returns false once it is drained. Build-side drains use this so each
  /// output chunk maps to exactly one morsel (pipeline.h reassembles them
  /// in canonical order).
  bool MorselNext(Batch* out, WorkerState* ws);

  /// \brief Fold a worker's accumulators into the shared stats. Call with
  /// the worker quiesced (joined), before Close(); not thread-safe.
  void MergeWorkerStats(WorkerState* ws);

  /// \brief Selection rows claimed per atomic cursor bump (exchange.h sets
  /// this between Open() and the first ParallelNext).
  void set_morsel_rows(size_t rows) { morsel_rows_ = rows < 1 ? 1 : rows; }

  /// \brief The query's cancellation context (FilterRuntime::context), or
  /// null. The scan is the source of every pipeline, so drain owners
  /// (exchange, build drains) reach the context through it. Every stride
  /// loop in this operator polls it: a cancelled or deadline-expired query
  /// stops claiming morsels and reports exhaustion, unwinding the plan
  /// above cooperatively (query_context.h).
  QueryContext* query_context() const {
    return runtime_ != nullptr ? runtime_->context : nullptr;
  }

  // Build-signature derivation (src/optimizer/build_signature.h) inspects
  // leaf scans to decide whether a hash join's build side is shareable
  // across queries and, when it is, what identifies it.
  const Table* table() const { return table_; }
  const ExprPtr& predicate() const { return predicate_; }
  /// \brief True when bitvector filters are pushed down to this scan. A
  /// filtered scan's output depends on *other* relations' contents, so a
  /// build drained from it must never be shared across queries.
  bool has_runtime_filters() const { return !filters_.empty(); }

 private:
  /// A filter fully resolved for the per-stride loop: loop-invariant
  /// pointers hoisted so the check costs only the hash + the probe (the Cf
  /// that Figure 7 profiles).
  struct ActiveFilter {
    const BitvectorFilter* filter = nullptr;
    const int64_t* key_data[8] = {nullptr};
    size_t num_keys = 0;
  };

  /// Run one stride of `n` candidate rows through the filter pipeline and
  /// gather the survivors into `out`. `fstats` is aligned with
  /// active_filters_; scratch arrays belong to the calling worker. const —
  /// shared scan state is read-only here, so concurrent callers are safe.
  void ProcessStride(const uint32_t* rows, int n, uint16_t* sel,
                     uint64_t* hashes, int64_t* keys, FilterStats* fstats,
                     Batch* out) const;

  /// Run one stride off `ws`'s claimed morsel (capped at the batch's
  /// remaining capacity) through the filter pipeline into `out`.
  void ConsumeStride(Batch* out, WorkerState* ws) const;

  const Table* table_;
  ExprPtr predicate_;
  std::vector<ResolvedFilter> filters_;
  FilterRuntime* runtime_;
  /// Output column -> base table column (resolved once; hot path).
  std::vector<const Column*> gather_cols_;
  /// Resolved at Open() (filter slots are filled by then; hash joins above
  /// this scan complete their builds before opening their probe side).
  std::vector<ActiveFilter> active_filters_;
  /// FilterRuntime stats slots aligned with active_filters_ (merge targets).
  std::vector<FilterStats*> filter_stat_slots_;

  std::vector<uint32_t> selection_;
  /// Next unclaimed selection index; workers advance it by morsel_rows_.
  std::atomic<size_t> shared_cursor_{0};
  size_t morsel_rows_ = 0;

  /// State for the single-threaded Next() path (merged at Close()).
  WorkerState local_;
};

}  // namespace bqo

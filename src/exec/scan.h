// Table scan: local predicate evaluation plus pushed-down bitvector probes.
//
// The predicate is evaluated once at Open() into a selection vector (this is
// the columnar "leaf" work the paper's Figure 9 counts); Next() processes one
// stride of candidate rows at a time: it hashes the stride's filter keys into
// a scratch array, lets each pushed-down filter winnow a per-stride selection
// vector (batched, prefetched probes — see batch.h), and gathers the
// survivors into the output batch in one pass at the end.
#pragma once

#include <vector>

#include "src/exec/operator.h"
#include "src/storage/table.h"

namespace bqo {

class ScanOperator final : public PhysicalOperator {
 public:
  /// \param filters   filters applied at this leaf; key_positions are
  ///                  base-table column indices of the probe columns.
  ScanOperator(const Table* table, ExprPtr predicate, OutputSchema schema,
               std::vector<ResolvedFilter> filters, FilterRuntime* runtime,
               std::string label);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

 private:
  /// A filter fully resolved for the per-stride loop: loop-invariant
  /// pointers hoisted so the check costs only the hash + the probe (the Cf
  /// that Figure 7 profiles).
  struct ActiveFilter {
    const BitvectorFilter* filter = nullptr;
    FilterStats* stats = nullptr;
    const int64_t* key_data[8] = {nullptr};
    size_t num_keys = 0;
  };

  const Table* table_;
  ExprPtr predicate_;
  std::vector<ResolvedFilter> filters_;
  FilterRuntime* runtime_;
  /// Output column -> base table column (resolved once; hot path).
  std::vector<const Column*> gather_cols_;
  /// Resolved at Open() (filter slots are filled by then; hash joins above
  /// this scan complete their builds before opening their probe side).
  std::vector<ActiveFilter> active_filters_;

  std::vector<uint32_t> selection_;
  size_t cursor_ = 0;

  // Per-stride scratch, allocated at Open() and reused every Next() call
  // (see batch.h for the ownership convention). All are position-aligned
  // with the current stride of up to kBatchSize candidate rows.
  std::vector<uint16_t> sel_;           ///< live positions within the stride
  std::vector<uint64_t> hash_scratch_;  ///< hash of position i's key
  std::vector<int64_t> key_scratch_;    ///< gathered key columns (8 strides)
};

}  // namespace bqo

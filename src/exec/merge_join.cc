#include "src/exec/merge_join.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/exec/pipeline.h"

namespace bqo {

SortMergeJoinOperator::SortMergeJoinOperator(
    std::unique_ptr<PhysicalOperator> build,
    std::unique_ptr<PhysicalOperator> probe, OutputSchema schema,
    HashJoinOperator::Config config, FilterRuntime* runtime,
    std::string label)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      config_(std::move(config)),
      runtime_(runtime) {
  schema_ = std::move(schema);
  stats_.type = OperatorType::kHashJoin;  // joins group together in Fig. 9
  stats_.label = std::move(label);
  BQO_CHECK(!config_.build_key_positions.empty());
  BQO_CHECK_EQ(config_.build_key_positions.size(),
               config_.probe_key_positions.size());
}

void SortMergeJoinOperator::Materialize(PhysicalOperator* child,
                                        Side* side) {
  side->width = child->output_schema().size();
  // Sort-merge is a pipeline breaker on both inputs; when an input is
  // itself a parallelizable pipeline, drain it wide. Canonical-order
  // reassembly keeps the materialized rows — and, through the sort's
  // row-index tie-break, the merge output — identical to threads=1.
  const Pipeline pipe = BuildProbePipeline(child);
  if (config_.exec.ResolvedThreads() > 1 && pipe.parallel()) {
    side->rows = DrainPipelineParallel(pipe, config_.exec);
    stats_.parallel_workers = config_.exec.ResolvedThreads();
    return;
  }
  Batch batch;
  while (child->Next(&batch)) {
    for (int r = 0; r < batch.num_rows; ++r) {
      for (int c = 0; c < side->width; ++c) {
        side->rows.push_back(batch.col(c)[r]);
      }
    }
  }
}

int SortMergeJoinOperator::CompareKeys(int64_t build_row,
                                       int64_t probe_row) const {
  for (size_t k = 0; k < config_.build_key_positions.size(); ++k) {
    const int64_t b =
        build_side_.rows[static_cast<size_t>(build_row) *
                             static_cast<size_t>(build_side_.width) +
                         static_cast<size_t>(config_.build_key_positions[k])];
    const int64_t p =
        probe_side_.rows[static_cast<size_t>(probe_row) *
                             static_cast<size_t>(probe_side_.width) +
                         static_cast<size_t>(config_.probe_key_positions[k])];
    if (b < p) return -1;
    if (b > p) return 1;
  }
  return 0;
}

void SortMergeJoinOperator::Open() {
  TimerGuard timer(&stats_);

  // Build input first; its filter must exist before the probe side opens.
  build_->Open();
  Materialize(build_.get(), &build_side_);
  build_->Close();

  if (config_.creates_filter_id >= 0) {
    auto& slot =
        runtime_->slots[static_cast<size_t>(config_.creates_filter_id)];
    slot = CreateFilter(config_.filter_config, build_side_.num_rows());
    const size_t nkeys = config_.build_key_positions.size();
    for (int64_t r = 0; r < build_side_.num_rows(); ++r) {
      int64_t key[8];
      for (size_t k = 0; k < nkeys; ++k) {
        key[k] = build_side_.rows[static_cast<size_t>(r) *
                                      static_cast<size_t>(build_side_.width) +
                                  static_cast<size_t>(
                                      config_.build_key_positions[k])];
      }
      slot->Insert(HashComposite(key, nkeys));
    }
    FilterStats& fs =
        runtime_->stats[static_cast<size_t>(config_.creates_filter_id)];
    fs.created = true;
    fs.inserted = slot->NumInserted();
    fs.size_bytes = slot->SizeBytes();
  }

  probe_->Open();
  Materialize(probe_.get(), &probe_side_);
  probe_->Close();

  // Sort both sides by key (indices; rows stay put). The sort was the one
  // long stretch of this operator with no cancellation point: it runs in
  // morsel-sized runs with a ShouldStop poll between runs, then pairwise
  // inplace_merge passes (also polled). The comparator is a strict total
  // order (row-index tie-break), so the merged result is identical to one
  // std::sort over the whole array — deadline or not, the output order
  // never depends on where the polls landed.
  QueryContext* ctx = runtime_ != nullptr ? runtime_->context : nullptr;
  auto sort_side = [ctx](Side* side, const std::vector<int>& key_positions) {
    side->order.resize(static_cast<size_t>(side->num_rows()));
    for (size_t i = 0; i < side->order.size(); ++i) {
      side->order[i] = static_cast<int32_t>(i);
    }
    auto less = [side, &key_positions](int32_t a, int32_t b) {
      for (int pos : key_positions) {
        const int64_t va =
            side->rows[static_cast<size_t>(a) *
                           static_cast<size_t>(side->width) +
                       static_cast<size_t>(pos)];
        const int64_t vb =
            side->rows[static_cast<size_t>(b) *
                           static_cast<size_t>(side->width) +
                       static_cast<size_t>(pos)];
        if (va != vb) return va < vb;
      }
      return a < b;
    };
    const int64_t n = static_cast<int64_t>(side->order.size());
    constexpr int64_t kRun = int64_t{1} << 16;
    auto begin = side->order.begin();
    for (int64_t lo = 0; lo < n; lo += kRun) {
      if (CtxShouldStop(ctx)) return;  // abandon: Open flags done_ below
      std::sort(begin + lo, begin + std::min(lo + kRun, n), less);
    }
    for (int64_t width = kRun; width < n; width *= 2) {
      for (int64_t lo = 0; lo + width < n; lo += 2 * width) {
        if (CtxShouldStop(ctx)) return;
        std::inplace_merge(begin + lo, begin + lo + width,
                           begin + std::min(lo + 2 * width, n), less);
      }
    }
  };
  sort_side(&build_side_, config_.build_key_positions);
  sort_side(&probe_side_, config_.probe_key_positions);

  b_cursor_ = 0;
  p_cursor_ = 0;
  in_group_ = false;
  // A cancellation observed mid-sort leaves the order arrays partially
  // sorted; marking the join done keeps Next() from emitting rows out of
  // them (the query's metrics are void by contract anyway).
  done_ = build_side_.num_rows() == 0 || probe_side_.num_rows() == 0 ||
          CtxShouldStop(ctx);
}

bool SortMergeJoinOperator::EmitRow(int64_t build_row, int64_t probe_row,
                                    Batch* out) {
  ++stats_.rows_prefilter;
  for (const ResolvedFilter& rf : config_.residual_filters) {
    BitvectorFilter* filter =
        runtime_->slots[static_cast<size_t>(rf.filter_id)].get();
    if (filter == nullptr) continue;
    int64_t key[8];
    const size_t nkeys = rf.key_positions.size();
    for (size_t k = 0; k < nkeys; ++k) {
      const auto& src =
          config_.output_sources[static_cast<size_t>(rf.key_positions[k])];
      const Side& side = src.first ? build_side_ : probe_side_;
      const int64_t row = src.first ? build_row : probe_row;
      key[k] = side.rows[static_cast<size_t>(row) *
                             static_cast<size_t>(side.width) +
                         static_cast<size_t>(src.second)];
    }
    FilterStats& fs = runtime_->stats[static_cast<size_t>(rf.filter_id)];
    ++fs.probed;
    if (!filter->MayContain(HashComposite(key, nkeys))) return false;
    ++fs.passed;
  }
  for (size_t c = 0; c < config_.output_sources.size(); ++c) {
    const auto& src = config_.output_sources[c];
    const Side& side = src.first ? build_side_ : probe_side_;
    const int64_t row = src.first ? build_row : probe_row;
    out->col(static_cast<int>(c))[out->num_rows] =
        side.rows[static_cast<size_t>(row) * static_cast<size_t>(side.width) +
                  static_cast<size_t>(src.second)];
  }
  ++out->num_rows;
  return true;
}

bool SortMergeJoinOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  out->Reset(schema_.size());
  const int64_t nb = build_side_.num_rows();
  const int64_t np = probe_side_.num_rows();

  while (!out->Full() && !done_) {
    // Batch-boundary cancellation point: the merge runs on the driver (it
    // is a breaker, not part of a parallel pipeline), so without this a
    // huge cross-product group could outlive its query's deadline.
    if (CtxShouldStop(runtime_ != nullptr ? runtime_->context : nullptr)) {
      done_ = true;
      break;
    }
    if (in_group_) {
      // Cross product of the current equal-key group.
      while (emit_b_ < group_b_hi_ && !out->Full()) {
        while (emit_p_ < group_p_hi_ && !out->Full()) {
          EmitRow(build_side_.order[static_cast<size_t>(emit_b_)],
                  probe_side_.order[static_cast<size_t>(emit_p_)], out);
          ++emit_p_;
        }
        if (emit_p_ >= group_p_hi_) {
          emit_p_ = group_p_lo_;
          ++emit_b_;
        }
      }
      if (emit_b_ >= group_b_hi_) {
        in_group_ = false;
        b_cursor_ = group_b_hi_;
        p_cursor_ = group_p_hi_;
      }
      continue;
    }
    if (b_cursor_ >= nb || p_cursor_ >= np) {
      done_ = true;
      break;
    }
    const int cmp =
        CompareKeys(build_side_.order[static_cast<size_t>(b_cursor_)],
                    probe_side_.order[static_cast<size_t>(p_cursor_)]);
    if (cmp < 0) {
      ++b_cursor_;
    } else if (cmp > 0) {
      ++p_cursor_;
    } else {
      // Delimit the equal-key group on both sides.
      group_b_lo_ = b_cursor_;
      group_b_hi_ = b_cursor_ + 1;
      while (group_b_hi_ < nb &&
             CompareKeys(build_side_.order[static_cast<size_t>(group_b_hi_)],
                         probe_side_.order[static_cast<size_t>(p_cursor_)]) ==
                 0) {
        ++group_b_hi_;
      }
      group_p_lo_ = p_cursor_;
      group_p_hi_ = p_cursor_ + 1;
      while (group_p_hi_ < np &&
             CompareKeys(build_side_.order[static_cast<size_t>(b_cursor_)],
                         probe_side_.order[static_cast<size_t>(group_p_hi_)]) ==
                 0) {
        ++group_p_hi_;
      }
      emit_b_ = group_b_lo_;
      emit_p_ = group_p_lo_;
      in_group_ = true;
    }
  }

  stats_.rows_out += out->num_rows;
  return out->num_rows > 0;
}

void SortMergeJoinOperator::Close() {
  build_side_ = Side{};
  probe_side_ = Side{};
}

}  // namespace bqo

// Exact Cout model: executes the plan with ideal (no-false-positive)
// bitvector filters and reads true intermediate cardinalities off the
// operator counters.
//
// This realizes the exact setting of the paper's analysis (Sections 4-5):
// Theorems 4.1/5.1/5.3 are statements about true cardinalities under
// filters with no false positives, so the validation experiments (and
// Table 2) must be driven by this model, not by estimates.
#pragma once

#include "src/plan/cout.h"

namespace bqo {

class ExactCoutModel : public CoutModel {
 public:
  ExactCoutModel() = default;

  CoutBreakdown Compute(const Plan& plan) override;
};

}  // namespace bqo

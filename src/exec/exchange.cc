#include "src/exec/exchange.h"

#include <utility>

#include "src/common/fault_injector.h"
#include "src/common/thread_clock.h"

namespace bqo {

ExchangeOperator::ExchangeOperator(std::unique_ptr<PhysicalOperator> child,
                                   ExecConfig config, std::string label)
    : child_(std::move(child)), config_(config) {
  schema_ = child_->output_schema();
  stats_.type = OperatorType::kExchange;
  stats_.label = std::move(label);
  pipe_ = BuildProbePipeline(child_.get());
  BQO_CHECK_MSG(pipe_.parallel(),
                "exchange child must be a parallelizable pipeline");
  BQO_CHECK_GT(config_.ResolvedThreads(), 1);
}

ExchangeOperator::~ExchangeOperator() {
  // Defensive: never leak running workers if Close() was skipped.
  Shutdown();
}

void ExchangeOperator::EnablePreAggregation(const AggSpec& spec) {
  BQO_CHECK_MSG(tasks_ == nullptr, "EnablePreAggregation before Open");
  fold_ = AggFold::Resolve(spec, child_->output_schema());
  preagg_ = true;
}

void ExchangeOperator::Open() {
  TimerGuard timer(&stats_);
  // Opening the child runs every hash-join build below (wide themselves
  // when their build pipelines parallelize) and resolves the scan's
  // pushed-down filters; only then can worker scratch be sized.
  child_->Open();
  pipe_.source->set_morsel_rows(static_cast<size_t>(config_.morsel_rows));

  const int num_workers = config_.ResolvedThreads();
  stats_.parallel_workers = num_workers;
  capacity_ = static_cast<size_t>(config_.ResolvedQueueBatches());
  abort_ = false;
  active_producers_ = num_workers;
  ready_.clear();
  recycled_.clear();
  partials_.assign(preagg_ ? static_cast<size_t>(num_workers) : 0,
                   PartialAggState{});

  workers_.assign(static_cast<size_t>(num_workers), PipelineWorkerState{});
  for (auto& ws : workers_) InitPipelineWorker(pipe_, &ws);

  // Raw mode parks threads on the queue CVs, so a cancel must broadcast
  // them awake; register the listener before any worker can park. Called
  // here (not under mu_) per the ordering contract in query_context.h.
  QueryContext* ctx = query_context();
  if (!preagg_ && ctx != nullptr && cancel_listener_id_ < 0) {
    cancel_listener_id_ = ctx->AddCancelListener([this] {
      std::lock_guard<std::mutex> lock(mu_);
      can_push_.notify_all();
      can_pop_.notify_all();
    });
  }

  tasks_ = std::make_unique<WorkerPool::TaskGroup>(&WorkerPool::Global());
  for (int i = 0; i < num_workers; ++i) {
    tasks_->Spawn([this, i] { WorkerMain(i); });
  }
}

void ExchangeOperator::WorkerMain(int worker_index) {
  PipelineWorkerState& ws = workers_[static_cast<size_t>(worker_index)];
  PartialAggState* partial =
      preagg_ ? &partials_[static_cast<size_t>(worker_index)] : nullptr;
  QueryContext* ctx = query_context();
  Batch batch;
  for (;;) {
    {
      // Per-batch abort point for both modes: Shutdown() on an early
      // teardown (Close without a drain, destructor) must not have to wait
      // for the whole scan to run dry.
      std::lock_guard<std::mutex> lock(mu_);
      if (abort_) break;
      if (!preagg_ && !recycled_.empty()) {
        batch = std::move(recycled_.back());
        recycled_.pop_back();
      }
    }
    // Per-batch query cancellation point, checked outside mu_ because a
    // deadline expiry cancels here and Cancel runs our listener, which
    // locks mu_. The scan's stride checks make the pipeline run dry too;
    // this just exits a beat sooner.
    if (CtxShouldStop(ctx)) break;
    const int64_t start = ThreadCpuNanos();
    const bool produced = PipelineParallelNext(pipe_, &batch, &ws);
    // Fault hook at the hand-off point (fold or queue push): a fired fault
    // cancels the whole query first-error-wins, exactly as a real fold/push
    // failure would surface. Checked outside mu_ (Cancel runs listeners).
    if (produced) {
      Status fault =
          FaultInjector::Global().Check(FaultInjector::Site::kExchangePush);
      if (!fault.ok() && ctx != nullptr) ctx->Cancel(std::move(fault));
      if (CtxShouldStop(ctx)) break;
    }
    if (produced && partial != nullptr) {
      // Pre-aggregating drain: fold thread-locally, reuse the batch
      // storage, never touch the queue. busy_ns below covers the fold too
      // (the whole per-worker pipeline including its sink stage).
      fold_.Fold(batch, partial);
      batch.num_rows = 0;
    }
    // Whole-pipeline worker time accumulates on the source scan's counter,
    // measured on the per-thread CPU clock so co-running queries on a
    // shared pool don't inflate it (see metrics.h).
    ws.scan.busy_ns += ThreadCpuNanos() - start;
    if (!produced) break;
    if (partial != nullptr) continue;

    std::unique_lock<std::mutex> lock(mu_);
    can_push_.wait(lock, [this, ctx] {
      return ready_.size() < capacity_ || abort_ ||
             (ctx != nullptr && ctx->IsCancelled());
    });
    if (abort_ || (ctx != nullptr && ctx->IsCancelled())) break;
    ready_.push_back(std::move(batch));
    batch = Batch();
    can_pop_.notify_one();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (--active_producers_ == 0) can_pop_.notify_all();
}

bool ExchangeOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  BQO_CHECK_MSG(!preagg_, "pre-aggregating exchange has no batch output; "
                          "use DrainPartials()");
  QueryContext* ctx = query_context();
  std::unique_lock<std::mutex> lock(mu_);
  // Manual wait loop rather than the predicate overload: when a deadline is
  // armed the consumer parks only until it, and the expiry check must run
  // with mu_ released — ShouldStop() self-cancels on expiry and Cancel runs
  // our listener, which locks mu_. A cancel while parked wakes us via that
  // listener; abort_ covers Shutdown-while-parked the same way.
  const auto done = [this, ctx] {
    return !ready_.empty() || active_producers_ == 0 || abort_ ||
           (ctx != nullptr && ctx->IsCancelled());
  };
  while (!done()) {
    if (ctx != nullptr && ctx->has_deadline()) {
      if (can_pop_.wait_until(lock, ctx->deadline()) ==
          std::cv_status::timeout) {
        lock.unlock();
        ctx->ShouldStop();  // expiry -> Cancel(kDeadlineExceeded)
        lock.lock();
      }
    } else {
      can_pop_.wait(lock);
    }
  }
  // A cancelled query surfaces exhaustion even if batches remain queued:
  // its results are void, and the producers are unwinding already.
  if (ctx != nullptr && ctx->IsCancelled()) {
    lock.unlock();
    out->Reset(schema_.size());
    return false;
  }
  if (ready_.empty()) {
    lock.unlock();
    out->Reset(schema_.size());
    return false;
  }
  Batch produced = std::move(ready_.front());
  ready_.pop_front();
  // Swap storage so the consumed batch's allocation goes back to a worker.
  std::swap(*out, produced);
  recycled_.push_back(std::move(produced));
  can_push_.notify_one();
  lock.unlock();

  stats_.rows_prefilter += out->num_rows;  // pass-through: in == out
  stats_.rows_out += out->num_rows;
  return true;
}

std::vector<PartialAggState> ExchangeOperator::DrainPartials() {
  TimerGuard timer(&stats_);
  BQO_CHECK_MSG(preagg_, "DrainPartials requires pre-aggregation mode");
  // Pre-aggregating workers never block on the queue, so they run to scan
  // exhaustion on their own: await them without raising abort_ (which could
  // stop a worker between morsels and lose folded rows). Wait() runs
  // still-queued worker tasks on this thread if the pool is busy, so the
  // drain always progresses (worker_pool.h on helping).
  tasks_->Wait();
  tasks_.reset();
  for (auto& ws : workers_) MergePipelineWorkerStats(pipe_, &ws);
  workers_.clear();

  std::vector<PartialAggState> out = std::move(partials_);
  partials_.clear();
  for (const PartialAggState& p : out) {
    // Per-worker agg counters, merged exactly once (metrics.h). The input
    // rows the fold consumed are this operator's throughput: report them
    // as rows in == rows out, like the raw mode's pass-through Next().
    stats_.agg_rows_folded += p.rows_folded;
    stats_.agg_partial_groups += static_cast<int64_t>(p.groups.size());
    stats_.rows_prefilter += p.rows_folded;
    stats_.rows_out += p.rows_folded;
  }
  return out;
}

void ExchangeOperator::Shutdown() {
  if (tasks_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    abort_ = true;
    // Both sides: producers parked on a full queue AND a consumer parked in
    // Next() (e.g. another thread tearing the query down while the
    // consumer waits on a quiet scan) must observe abort_ promptly.
    can_push_.notify_all();
    can_pop_.notify_all();
  }
  // Queued-but-unstarted worker tasks run (here, inline, or on the pool),
  // observe abort_, and exit immediately.
  tasks_->Wait();
  tasks_.reset();
  // Outside mu_: Remove blocks until an in-flight callback (which locks
  // mu_) finishes, so holding mu_ here would deadlock.
  if (cancel_listener_id_ >= 0) {
    query_context()->RemoveCancelListener(cancel_listener_id_);
    cancel_listener_id_ = -1;
  }
  for (auto& ws : workers_) MergePipelineWorkerStats(pipe_, &ws);
  workers_.clear();
  ready_.clear();
  recycled_.clear();
  partials_.clear();
}

void ExchangeOperator::Close() {
  Shutdown();
  child_->Close();
}

}  // namespace bqo

#include "src/exec/pipeline.h"

#include <algorithm>
#include <memory>

#include "src/common/fault_injector.h"
#include "src/common/thread_clock.h"
#include "src/filter/bloom_filter.h"
#include "src/server/worker_pool.h"

namespace bqo {

namespace {

/// Per-worker filter fills below this many keys run sequentially: the
/// task submission + partial-filter allocation costs more than the inserts.
constexpr int64_t kMinParallelFilterKeys = 8192;

/// Keys inserted between cancellation polls during a filter fill.
constexpr int64_t kFilterFillStride = 4096;

/// Fault hook + cancellation at the entry of an engine worker task: a
/// fired fault cancels the whole query (first-error-wins), and an already
/// cancelled query's tasks exit before touching any work.
bool WorkerTaskShouldStop(QueryContext* ctx) {
  Status fault = FaultInjector::Global().Check(FaultInjector::Site::kWorkerTask);
  if (!fault.ok() && ctx != nullptr) ctx->Cancel(std::move(fault));
  return CtxShouldStop(ctx);
}

/// Cancellation-aware hash-insert loop shared by the sequential fill and
/// the per-worker partial builds; also the kFilterFill fault hook point.
void FillRange(BitvectorFilter* filter, const uint64_t* hashes, int64_t begin,
               int64_t end, QueryContext* ctx) {
  {
    Status fault =
        FaultInjector::Global().Check(FaultInjector::Site::kFilterFill);
    if (!fault.ok() && ctx != nullptr) ctx->Cancel(std::move(fault));
  }
  for (int64_t i = begin; i < end; i += kFilterFillStride) {
    if (CtxShouldStop(ctx)) return;
    const int64_t stop = std::min(end, i + kFilterFillStride);
    for (int64_t j = i; j < stop; ++j) filter->Insert(hashes[j]);
  }
}

/// Pull the next output batch of `stage` (0 = scan, i = probes[i-1]). The
/// recursion materializes the Volcano pull chain over per-worker states;
/// `morsel_confined` selects the canonical (one-morsel) scan mode.
bool StageNext(const Pipeline& pipe, size_t stage, bool morsel_confined,
               Batch* out, PipelineWorkerState* ws) {
  if (stage == 0) {
    return morsel_confined ? pipe.source->MorselNext(out, &ws->scan)
                           : pipe.source->ParallelNext(out, &ws->scan);
  }
  HashJoinOperator* hj = pipe.probes[stage - 1];
  return hj->ProbeNext(out, &ws->probes[stage - 1], [&](Batch* in) {
    return StageNext(pipe, stage - 1, morsel_confined, in, ws);
  });
}

/// Clear the per-morsel latches so a fresh morsel can stream through the
/// probe chain (the previous morsel always drains to completion first, so
/// only the upstream-exhausted flags and batch cursors need resetting).
void ResetForMorsel(PipelineWorkerState* ws) {
  for (HashJoinOperator::ProbeState& ps : ws->probes) {
    ps.input_done = false;
    ps.cursor = 0;
    ps.in.num_rows = 0;
    ps.pending_entry = -1;
  }
}

/// The output rows one claimed morsel produced, keyed by the morsel's
/// canonical position in the scan selection.
struct MorselChunk {
  size_t begin = 0;
  std::vector<int64_t> rows;  ///< row-major
};

}  // namespace

Pipeline BuildProbePipeline(PhysicalOperator* op) {
  Pipeline pipe;
  std::vector<HashJoinOperator*> chain;  // top-down during the descent
  PhysicalOperator* cur = op;
  for (;;) {
    if (auto* scan = dynamic_cast<ScanOperator*>(cur)) {
      pipe.source = scan;
      break;
    }
    auto* hj = dynamic_cast<HashJoinOperator*>(cur);
    if (hj == nullptr) break;  // breaker (sort-merge, ...): not parallel
    chain.push_back(hj);
    cur = hj->probe_child();
  }
  if (pipe.source != nullptr) {
    pipe.probes.assign(chain.rbegin(), chain.rend());
  }
  return pipe;
}

void InitPipelineWorker(const Pipeline& pipe, PipelineWorkerState* ws) {
  pipe.source->InitWorkerState(&ws->scan);
  ws->probes.resize(pipe.probes.size());
  for (size_t i = 0; i < pipe.probes.size(); ++i) {
    pipe.probes[i]->InitProbeState(&ws->probes[i]);
  }
}

bool PipelineParallelNext(const Pipeline& pipe, Batch* out,
                          PipelineWorkerState* ws) {
  return StageNext(pipe, pipe.probes.size(), /*morsel_confined=*/false, out,
                   ws);
}

void MergePipelineWorkerStats(const Pipeline& pipe, PipelineWorkerState* ws) {
  pipe.source->MergeWorkerStats(&ws->scan);
  for (size_t i = 0; i < pipe.probes.size(); ++i) {
    pipe.probes[i]->MergeProbeStats(&ws->probes[i]);
  }
}

std::vector<int64_t> DrainPipelineParallel(const Pipeline& pipe,
                                           const ExecConfig& exec) {
  BQO_CHECK(pipe.parallel());
  const int num_workers = exec.ResolvedThreads();
  pipe.source->set_morsel_rows(static_cast<size_t>(exec.morsel_rows));

  std::vector<PipelineWorkerState> states(
      static_cast<size_t>(num_workers));
  std::vector<std::vector<MorselChunk>> worker_chunks(
      static_cast<size_t>(num_workers));
  for (auto& ws : states) InitPipelineWorker(pipe, &ws);

  // One task per logical worker on the shared pool; each claims morsels off
  // the shared cursor until exhaustion, so any pool size (helping waiter
  // included) completes the drain with identical chunks. Cancellation
  // unwinds per worker at morsel granularity: ClaimMorsel returns false on
  // a cancelled context, so a cancelled drain completes (short) and the
  // partial canonical reassembly below is simply discarded by the caller.
  WorkerPool::TaskGroup group(&WorkerPool::Global());
  for (int w = 0; w < num_workers; ++w) {
    group.Spawn([&pipe, &states, &worker_chunks, w] {
      if (WorkerTaskShouldStop(pipe.source->query_context())) return;
      PipelineWorkerState& ws = states[static_cast<size_t>(w)];
      std::vector<MorselChunk>& chunks =
          worker_chunks[static_cast<size_t>(w)];
      const int64_t start = ThreadCpuNanos();
      Batch batch;
      size_t begin = 0;
      while (pipe.source->ClaimMorsel(&ws.scan, &begin)) {
        ResetForMorsel(&ws);
        MorselChunk chunk;
        chunk.begin = begin;
        while (StageNext(pipe, pipe.probes.size(), /*morsel_confined=*/true,
                         &batch, &ws)) {
          const int ncols = batch.num_cols();
          for (int r = 0; r < batch.num_rows; ++r) {
            for (int c = 0; c < ncols; ++c) {
              chunk.rows.push_back(batch.col(c)[r]);
            }
          }
        }
        chunks.push_back(std::move(chunk));
      }
      ws.scan.busy_ns += ThreadCpuNanos() - start;
    });
  }
  group.Wait();
  for (auto& ws : states) MergePipelineWorkerStats(pipe, &ws);

  // Reassemble in canonical order: morsel begins are unique cursor offsets,
  // so sorting by them reproduces the selection (= single-threaded) order.
  std::vector<const MorselChunk*> order;
  size_t total = 0;
  for (const auto& chunks : worker_chunks) {
    for (const MorselChunk& c : chunks) {
      order.push_back(&c);
      total += c.rows.size();
    }
  }
  std::sort(order.begin(), order.end(),
            [](const MorselChunk* a, const MorselChunk* b) {
              return a->begin < b->begin;
            });
  std::vector<int64_t> rows;
  rows.reserve(total);
  for (const MorselChunk* c : order) {
    rows.insert(rows.end(), c->rows.begin(), c->rows.end());
  }
  return rows;
}

void FillFilterParallel(BitvectorFilter* filter, const FilterConfig& config,
                        const uint64_t* hashes, int64_t n,
                        const ExecConfig& exec, QueryContext* ctx) {
  const int workers = exec.ResolvedThreads();
  // Cuckoo contents depend on insert order (displacement history): a
  // partitioned build would be sound but not bit-identical to threads=1,
  // perturbing downstream passed counts. Canonical sequential fill keeps
  // every counter thread-count-invariant. Small builds also fill
  // sequentially — the task submission + partial allocation isn't worth it.
  if (workers <= 1 || config.kind == FilterKind::kCuckoo ||
      n < kMinParallelFilterKeys) {
    FillRange(filter, hashes, 0, n, ctx);
    return;
  }

  // Exact/Bloom inserts commute (set union / bitwise OR), so per-worker
  // partials over contiguous partitions merge into bits identical to the
  // sequential build, and MergeFrom reproduces the sequential NumInserted
  // (exactly for Exact by set semantics, exactly for Bloom via the insert
  // journals replayed against the merged prefix).
  std::vector<std::unique_ptr<BitvectorFilter>> partials(
      static_cast<size_t>(workers));
  WorkerPool::TaskGroup group(&WorkerPool::Global());
  const int64_t chunk = (n + workers - 1) / workers;
  for (int w = 0; w < workers; ++w) {
    group.Spawn([&partials, &config, hashes, n, chunk, w, ctx] {
      if (CtxShouldStop(ctx)) return;
      const int64_t begin = static_cast<int64_t>(w) * chunk;
      const int64_t end = std::min(n, begin + chunk);
      if (begin >= end) return;
      // Bloom partials (classical and blocked) share the final filter's
      // geometry (sized for the whole build) so blocks OR together; Exact
      // partials only need their own partition's capacity.
      const bool bloom_like = config.kind == FilterKind::kBloom ||
                              config.kind == FilterKind::kBlockedBloom;
      auto partial = CreateFilter(config, bloom_like ? n : end - begin);
      if (config.kind == FilterKind::kBloom) {
        static_cast<BloomFilter*>(partial.get())->EnableInsertTracking();
      } else if (config.kind == FilterKind::kBlockedBloom) {
        static_cast<BlockedBloomFilter*>(partial.get())
            ->EnableInsertTracking();
      }
      FillRange(partial.get(), hashes, begin, end, ctx);
      partials[static_cast<size_t>(w)] = std::move(partial);
    });
  }
  group.Wait();
  // A cancelled fill skips the merge entirely: the partially built filter
  // is never consulted (the query unwinds before its probe side opens).
  if (CtxShouldStop(ctx)) return;
  for (auto& partial : partials) {
    if (partial != nullptr) filter->MergeFrom(*partial);
  }
}

}  // namespace bqo

#include "src/exec/aggregate.h"

#include <algorithm>

#include "src/common/hash.h"

namespace bqo {

AggregateOperator::AggregateOperator(
    std::unique_ptr<PhysicalOperator> child, AggSpec spec)
    : child_(std::move(child)), spec_(spec) {
  stats_.type = OperatorType::kAggregate;
  stats_.label = "aggregate";
  if (spec_.kind == AggKind::kSum) {
    sum_pos_ = child_->output_schema().PositionOf(spec_.sum_column);
    BQO_CHECK_MSG(sum_pos_ >= 0, "SUM column missing from child schema");
  }
  if (spec_.has_group_by) {
    group_pos_ = child_->output_schema().PositionOf(spec_.group_column);
    BQO_CHECK_MSG(group_pos_ >= 0, "GROUP BY column missing from child");
  }
  // Output schema: (group key,) aggregate value — synthetic bound columns.
  std::vector<BoundColumn> out_cols;
  if (spec_.has_group_by) out_cols.push_back(spec_.group_column);
  schema_ = OutputSchema(std::move(out_cols));
}

void AggregateOperator::Open() {
  TimerGuard timer(&stats_);
  child_->Open();
  groups_.clear();
  total_ = 0;
  checksum_ = 0;
  emitted_ = false;

  Batch batch;
  while (child_->Next(&batch)) {
    const int64_t* sums = sum_pos_ >= 0 ? batch.col(sum_pos_) : nullptr;
    const int64_t* keys = group_pos_ >= 0 ? batch.col(group_pos_) : nullptr;
    for (int r = 0; r < batch.num_rows; ++r) {
      const int64_t v = spec_.kind == AggKind::kSum ? sums[r] : 1;
      if (keys != nullptr) groups_[keys[r]] += v;
      total_ += v;
    }
  }

  // Order-independent checksum: XOR-sum of hashed (group, value) pairs.
  // Group keys are also snapshotted so Next() can emit them in
  // batch-capacity chunks (Batch storage is fixed at kBatchSize rows).
  group_keys_.clear();
  emit_cursor_ = 0;
  if (spec_.has_group_by) {
    group_keys_.reserve(groups_.size());
    for (const auto& [g, v] : groups_) {
      group_keys_.push_back(g);
      checksum_ += Mix64(HashCombine(HashValue(static_cast<uint64_t>(g)),
                                     static_cast<uint64_t>(v)));
    }
  } else {
    checksum_ = HashValue(static_cast<uint64_t>(total_));
  }
}

bool AggregateOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  out->Reset(schema_.size());
  if (spec_.has_group_by) {
    if (emit_cursor_ >= group_keys_.size()) return false;
    const int n = static_cast<int>(std::min<size_t>(
        kBatchSize, group_keys_.size() - emit_cursor_));
    int64_t* dst = out->col(0);
    for (int i = 0; i < n; ++i) {
      dst[i] = group_keys_[emit_cursor_ + static_cast<size_t>(i)];
    }
    emit_cursor_ += static_cast<size_t>(n);
    out->num_rows = n;
  } else {
    if (emitted_) return false;
    emitted_ = true;
    out->num_rows = 1;
  }
  stats_.rows_out += out->num_rows;
  return out->num_rows > 0;
}

void AggregateOperator::Close() { child_->Close(); }

}  // namespace bqo

#include "src/exec/aggregate.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"
#include "src/exec/exchange.h"

namespace bqo {

void PartialAggState::MergeFrom(PartialAggState&& other) {
  if (groups.empty()) {
    groups = std::move(other.groups);
  } else {
    for (const auto& [g, v] : other.groups) groups[g] += v;
  }
  total += other.total;
  rows_folded += other.rows_folded;
}

AggFold AggFold::Resolve(const AggSpec& spec,
                         const OutputSchema& child_schema) {
  AggFold fold;
  fold.kind = spec.kind;
  fold.has_group_by = spec.has_group_by;
  if (spec.kind == AggKind::kSum) {
    fold.sum_pos = child_schema.PositionOf(spec.sum_column);
    BQO_CHECK_MSG(fold.sum_pos >= 0, "SUM column missing from child schema");
  }
  if (spec.has_group_by) {
    fold.group_pos = child_schema.PositionOf(spec.group_column);
    BQO_CHECK_MSG(fold.group_pos >= 0, "GROUP BY column missing from child");
  }
  return fold;
}

void AggFold::Fold(const Batch& batch, PartialAggState* state) const {
  const int64_t* sums = sum_pos >= 0 ? batch.col(sum_pos) : nullptr;
  const int64_t* keys = group_pos >= 0 ? batch.col(group_pos) : nullptr;
  for (int r = 0; r < batch.num_rows; ++r) {
    const int64_t v = kind == AggKind::kSum ? sums[r] : 1;
    if (keys != nullptr) state->groups[keys[r]] += v;
    state->total += v;
  }
  state->rows_folded += batch.num_rows;
}

AggregateOperator::AggregateOperator(
    std::unique_ptr<PhysicalOperator> child, AggSpec spec)
    : child_(std::move(child)), spec_(spec) {
  stats_.type = OperatorType::kAggregate;
  stats_.label = "aggregate";
  fold_ = AggFold::Resolve(spec_, child_->output_schema());
  // Output schema: (group key,) aggregate value — synthetic bound columns.
  std::vector<BoundColumn> out_cols;
  if (spec_.has_group_by) out_cols.push_back(spec_.group_column);
  schema_ = OutputSchema(std::move(out_cols));
}

void AggregateOperator::Open() {
  TimerGuard timer(&stats_);
  child_->Open();
  state_ = PartialAggState{};
  checksum_ = 0;
  emitted_ = false;

  auto* preagg = dynamic_cast<ExchangeOperator*>(child_.get());
  if (preagg != nullptr && preagg->pre_aggregating()) {
    // Pipeline-parallel sink: the exchange workers already folded their
    // probe-chain output thread-locally; merge the partials. MergeFrom is
    // exact for any partition and merge order (aggregate.h), so the merged
    // state equals the single-threaded fold bit-for-bit.
    for (PartialAggState& partial : preagg->DrainPartials()) {
      state_.MergeFrom(std::move(partial));
    }
  } else {
    Batch batch;
    while (child_->Next(&batch)) fold_.Fold(batch, &state_);
  }
  stats_.agg_rows_folded = state_.rows_folded;
  stats_.rows_prefilter = state_.rows_folded;

  // Order-independent checksum: sum of hashed (group, value) pairs —
  // independent of map iteration order, hence of the merge history.
  // Group keys are also snapshotted so Next() can emit them in
  // batch-capacity chunks (Batch storage is fixed at kBatchSize rows).
  group_keys_.clear();
  emit_cursor_ = 0;
  if (spec_.has_group_by) {
    group_keys_.reserve(state_.groups.size());
    for (const auto& [g, v] : state_.groups) {
      group_keys_.push_back(g);
      checksum_ += Mix64(HashCombine(HashValue(static_cast<uint64_t>(g)),
                                     static_cast<uint64_t>(v)));
    }
  } else {
    checksum_ = HashValue(static_cast<uint64_t>(state_.total));
  }
}

bool AggregateOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  out->Reset(schema_.size());
  if (spec_.has_group_by) {
    if (emit_cursor_ >= group_keys_.size()) return false;
    const int n = static_cast<int>(std::min<size_t>(
        kBatchSize, group_keys_.size() - emit_cursor_));
    int64_t* dst = out->col(0);
    for (int i = 0; i < n; ++i) {
      dst[i] = group_keys_[emit_cursor_ + static_cast<size_t>(i)];
    }
    emit_cursor_ += static_cast<size_t>(n);
    out->num_rows = n;
  } else {
    if (emitted_) return false;
    emitted_ = true;
    out->num_rows = 1;
  }
  stats_.rows_out += out->num_rows;
  return out->num_rows > 0;
}

void AggregateOperator::Close() { child_->Close(); }

}  // namespace bqo

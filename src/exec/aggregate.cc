#include "src/exec/aggregate.h"

#include "src/common/hash.h"

namespace bqo {

AggregateOperator::AggregateOperator(
    std::unique_ptr<PhysicalOperator> child, AggSpec spec)
    : child_(std::move(child)), spec_(spec) {
  stats_.type = OperatorType::kAggregate;
  stats_.label = "aggregate";
  if (spec_.kind == AggKind::kSum) {
    sum_pos_ = child_->output_schema().PositionOf(spec_.sum_column);
    BQO_CHECK_MSG(sum_pos_ >= 0, "SUM column missing from child schema");
  }
  if (spec_.has_group_by) {
    group_pos_ = child_->output_schema().PositionOf(spec_.group_column);
    BQO_CHECK_MSG(group_pos_ >= 0, "GROUP BY column missing from child");
  }
  // Output schema: (group key,) aggregate value — synthetic bound columns.
  std::vector<BoundColumn> out_cols;
  if (spec_.has_group_by) out_cols.push_back(spec_.group_column);
  schema_ = OutputSchema(std::move(out_cols));
}

void AggregateOperator::Open() {
  TimerGuard timer(&stats_);
  child_->Open();
  groups_.clear();
  total_ = 0;
  checksum_ = 0;
  emitted_ = false;

  Batch batch;
  while (child_->Next(&batch)) {
    for (int r = 0; r < batch.num_rows; ++r) {
      const int64_t v =
          spec_.kind == AggKind::kSum
              ? batch.columns[static_cast<size_t>(sum_pos_)]
                             [static_cast<size_t>(r)]
              : 1;
      if (spec_.has_group_by) {
        const int64_t g = batch.columns[static_cast<size_t>(group_pos_)]
                                       [static_cast<size_t>(r)];
        groups_[g] += v;
      }
      total_ += v;
    }
  }

  // Order-independent checksum: XOR-sum of hashed (group, value) pairs.
  if (spec_.has_group_by) {
    for (const auto& [g, v] : groups_) {
      checksum_ += Mix64(HashCombine(HashValue(static_cast<uint64_t>(g)),
                                     static_cast<uint64_t>(v)));
    }
  } else {
    checksum_ = HashValue(static_cast<uint64_t>(total_));
  }
}

bool AggregateOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  out->Reset(schema_.size());
  if (emitted_) return false;
  emitted_ = true;
  if (spec_.has_group_by) {
    for (const auto& [g, v] : groups_) {
      (void)v;
      out->columns[0].push_back(g);
      ++out->num_rows;
    }
  } else {
    out->num_rows = 1;
  }
  stats_.rows_out += out->num_rows;
  return out->num_rows > 0;
}

void AggregateOperator::Close() { child_->Close(); }

}  // namespace bqo

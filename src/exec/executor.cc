#include "src/exec/executor.h"

#include <algorithm>
#include <chrono>

#include "src/common/string_util.h"
#include "src/common/thread_clock.h"
#include "src/exec/exchange.h"
#include "src/exec/hash_join.h"
#include "src/exec/merge_join.h"
#include "src/exec/pipeline.h"
#include "src/exec/scan.h"

namespace bqo {

namespace {

/// Key columns of a filter or join edge, in the canonical (sorted-edge,
/// declared-column) order also used by MakeFilterFor in pushdown.cc. The
/// build and probe sequences are pairwise aligned so composite hashes match.
struct KeyColumns {
  std::vector<BoundColumn> build;
  std::vector<BoundColumn> probe;
};

KeyColumns JoinKeyColumns(const Plan& plan, const PlanNode& join) {
  const JoinGraph& graph = *plan.graph;
  KeyColumns keys;
  std::vector<int> edge_ids = join.edge_ids;
  std::sort(edge_ids.begin(), edge_ids.end());
  for (int eid : edge_ids) {
    const JoinEdge& e = graph.edge(eid);
    const bool left_in_build = RelSetContains(join.build->rel_set, e.left);
    for (size_t i = 0; i < e.left_cols.size(); ++i) {
      BoundColumn l{e.left, e.left_cols[i]};
      BoundColumn r{e.right, e.right_cols[i]};
      keys.build.push_back(left_in_build ? l : r);
      keys.probe.push_back(left_in_build ? r : l);
    }
  }
  return keys;
}

bool FilterActive(const Plan& plan, int filter_id,
                  const ExecutionOptions& options) {
  return options.use_bitvectors &&
         !plan.filters[static_cast<size_t>(filter_id)].pruned;
}

std::unique_ptr<PhysicalOperator> CompileNode(
    const Plan& plan, const PlanNode& node,
    std::vector<BoundColumn> required, FilterRuntime* runtime,
    const ExecutionOptions& options) {
  const JoinGraph& graph = *plan.graph;

  if (node.kind == PlanNode::Kind::kLeaf) {
    const RelationRef& rel = graph.relation(node.relation);
    BQO_CHECK_MSG(rel.table != nullptr, "execution requires bound tables");
    std::vector<ResolvedFilter> filters;
    for (int fid : node.applied_filters) {
      if (!FilterActive(plan, fid, options)) continue;
      const PlanFilter& f = plan.filters[static_cast<size_t>(fid)];
      ResolvedFilter rf;
      rf.filter_id = fid;
      BQO_CHECK_LE(f.probe_cols.size(), size_t{8});
      for (const BoundColumn& c : f.probe_cols) {
        BQO_CHECK_EQ(c.rel, node.relation);
        const int idx = rel.table->ColumnIndex(c.column);
        BQO_CHECK_MSG(idx >= 0, "filter probe column missing from table");
        rf.key_positions.push_back(idx);
      }
      filters.push_back(std::move(rf));
    }
    auto op = std::make_unique<ScanOperator>(
        rel.table, rel.predicate, OutputSchema(std::move(required)),
        std::move(filters), runtime, "scan " + rel.alias);
    op->stats().plan_node_id = node.id;
    // Leaves compile bare at every thread count: parallelism is applied per
    // *pipeline*, not per leaf — a build-side scan is drained wide by the
    // hash join above it, and the topmost probe chain by the single
    // exchange CompilePlan inserts below the aggregate.
    return op;
  }

  // ---- Join node ----
  const KeyColumns keys = JoinKeyColumns(plan, node);

  // Residual filter probe columns must appear in this join's output.
  std::vector<BoundColumn> self_required = std::move(required);
  std::vector<int> active_residuals;
  for (int fid : node.applied_filters) {
    if (!FilterActive(plan, fid, options)) continue;
    active_residuals.push_back(fid);
    const PlanFilter& f = plan.filters[static_cast<size_t>(fid)];
    for (const BoundColumn& c : f.probe_cols) self_required.push_back(c);
  }
  OutputSchema out_schema(self_required);

  // Children must additionally produce the join key columns.
  std::vector<BoundColumn> build_req, probe_req;
  for (const BoundColumn& c : out_schema.cols()) {
    if (RelSetContains(node.build->rel_set, c.rel)) {
      build_req.push_back(c);
    } else {
      probe_req.push_back(c);
    }
  }
  for (const BoundColumn& c : keys.build) build_req.push_back(c);
  for (const BoundColumn& c : keys.probe) probe_req.push_back(c);

  auto build_op =
      CompileNode(plan, *node.build, std::move(build_req), runtime, options);
  auto probe_op =
      CompileNode(plan, *node.probe, std::move(probe_req), runtime, options);

  HashJoinOperator::Config config;
  config.filter_config = options.filter_config;
  config.exec = options.exec;
  for (size_t i = 0; i < keys.build.size(); ++i) {
    const int bpos = build_op->output_schema().PositionOf(keys.build[i]);
    const int ppos = probe_op->output_schema().PositionOf(keys.probe[i]);
    BQO_CHECK(bpos >= 0 && ppos >= 0);
    config.build_key_positions.push_back(bpos);
    config.probe_key_positions.push_back(ppos);
  }
  for (const BoundColumn& c : out_schema.cols()) {
    const int bpos = build_op->output_schema().PositionOf(c);
    if (bpos >= 0) {
      config.output_sources.emplace_back(true, bpos);
    } else {
      const int ppos = probe_op->output_schema().PositionOf(c);
      BQO_CHECK(ppos >= 0);
      config.output_sources.emplace_back(false, ppos);
    }
  }
  if (node.created_filter >= 0 &&
      FilterActive(plan, node.created_filter, options)) {
    config.creates_filter_id = node.created_filter;
    // Honor the optimizer's per-filter implementation pick (filter menu,
    // cost_model.h) when the caller opted in; otherwise every filter uses
    // the uniform configured kind, keeping pinned FilterStats unchanged.
    const int chosen =
        plan.filters[static_cast<size_t>(node.created_filter)].chosen_kind;
    if (options.filter_config.use_plan_kinds && chosen >= 0) {
      config.filter_config.kind = static_cast<FilterKind>(chosen);
    }
  }
  for (int fid : active_residuals) {
    const PlanFilter& f = plan.filters[static_cast<size_t>(fid)];
    ResolvedFilter rf;
    rf.filter_id = fid;
    BQO_CHECK_LE(f.probe_cols.size(), size_t{8});
    for (const BoundColumn& c : f.probe_cols) {
      const int pos = out_schema.PositionOf(c);
      BQO_CHECK(pos >= 0);
      rf.key_positions.push_back(pos);
    }
    config.residual_filters.push_back(std::move(rf));
  }

  std::unique_ptr<PhysicalOperator> op;
  if (options.use_sort_merge_join) {
    op = std::make_unique<SortMergeJoinOperator>(
        std::move(build_op), std::move(probe_op), std::move(out_schema),
        std::move(config), runtime, StringFormat("MJ#%d", node.id));
  } else {
    op = std::make_unique<HashJoinOperator>(
        std::move(build_op), std::move(probe_op), std::move(out_schema),
        std::move(config), runtime, StringFormat("HJ#%d", node.id));
  }
  op->stats().plan_node_id = node.id;
  return op;
}

void CollectStats(PhysicalOperator* op, QueryMetrics* metrics) {
  int64_t child_ns = 0;
  for (PhysicalOperator* child : op->children()) {
    CollectStats(child, metrics);
    child_ns += child->stats().ns_inclusive;
  }
  OperatorStats stats = op->stats();
  stats.ns_self = stats.ns_inclusive - child_ns;
  switch (stats.type) {
    case OperatorType::kScan:
      metrics->leaf_tuples += stats.rows_out;
      break;
    case OperatorType::kHashJoin:
      metrics->join_tuples += stats.rows_out;
      break;
    case OperatorType::kAggregate:
      metrics->other_tuples += stats.rows_out;
      break;
    case OperatorType::kExchange:
      // Pass-through; the pipeline below it already contributed its rows
      // to the per-type counts.
      break;
  }
  metrics->operators.push_back(std::move(stats));
}

/// Synthesize the per-operator aggregate spans (trace.h) from the merged
/// operator counters, mirroring the operator tree under `parent`. Post-hoc
/// by design: the counters follow the accumulate/merge-once discipline, so
/// the resulting subtree is identical at every pool size and thread count's
/// worth of live spans would not be.
void AddOperatorSpans(PhysicalOperator* op, int parent, QueryTrace* trace) {
  const OperatorStats& s = op->stats();
  const int id = trace->AddCompletedSpan(
      SpanKind::kOperator, s.label.empty() ? "aggregate" : s.label, parent,
      s.ns_inclusive, /*cpu_ns=*/0, s.worker_cpu_ns);
  for (PhysicalOperator* child : op->children()) {
    AddOperatorSpans(child, id, trace);
  }
}

}  // namespace

std::unique_ptr<AggregateOperator> CompilePlan(
    const Plan& plan, const ExecutionOptions& options,
    FilterRuntime* runtime) {
  BQO_CHECK(plan.Validate());
  BQO_CHECK(!plan.nodes.empty());
  runtime->slots.resize(plan.filters.size());
  runtime->stats.assign(plan.filters.size(), FilterStats{});
  for (size_t i = 0; i < plan.filters.size(); ++i) {
    runtime->stats[i].filter_id = static_cast<int>(i);
  }

  std::vector<BoundColumn> required;
  if (options.agg.kind == AggKind::kSum) {
    required.push_back(options.agg.sum_column);
  }
  if (options.agg.has_group_by) {
    required.push_back(options.agg.group_column);
  }
  auto root =
      CompileNode(plan, *plan.root, std::move(required), runtime, options);
  // Pipeline-parallel execution: one exchange directly below the aggregate
  // drains the topmost probe pipeline (scan -> probe -> ... -> probe) with
  // N workers; hash-join builds below parallelize inside their own Open().
  // The aggregate is compiled *into* the exchange (pre-aggregating drain):
  // each worker folds its probe-chain output into a thread-local partial
  // and the aggregate sink merges the partials instead of consuming raw
  // batches, so no serial stage or cross-thread batch queue remains above
  // the top probe chain. threads == 1 compiles the exact single-threaded
  // plan, bit-for-bit.
  if (options.exec.ResolvedThreads() > 1 &&
      BuildProbePipeline(root.get()).parallel()) {
    auto exchange = std::make_unique<ExchangeOperator>(
        std::move(root), options.exec, "xchg pipeline");
    exchange->stats().plan_node_id = plan.root->id;
    exchange->EnablePreAggregation(options.agg);
    root = std::move(exchange);
  }
  return std::make_unique<AggregateOperator>(std::move(root), options.agg);
}

QueryMetrics ExecutePlan(const Plan& plan, const ExecutionOptions& options) {
  FilterRuntime runtime;
  // Every execution runs under a context: the caller's (cancellable,
  // deadline-able) or a private one, so injected faults and internal
  // first-error propagation behave identically either way.
  QueryContext local_context;
  runtime.context =
      options.context != nullptr ? options.context : &local_context;
  runtime.build_cache = options.build_cache;
  runtime.catalog_version = options.catalog_version;
  auto agg = CompilePlan(plan, options, &runtime);

  // Execute span: Open..Close as the driver saw it. Build spans opened by
  // hash joins during Open() nest under it via the trace's span stack.
  QueryTrace* trace = CtxTrace(runtime.context);
  ScopedSpan exec_span(trace, SpanKind::kExecute, "execute");
  const auto start = std::chrono::steady_clock::now();
  const int64_t cpu_start = ThreadCpuNanos();
  const int64_t inline_start = WorkerPool::InlineTaskCpuNanos();
  agg->Open();
  Batch batch;
  while (agg->Next(&batch)) {
  }
  agg->Close();
  const auto end = std::chrono::steady_clock::now();
  exec_span.End();
  // Driver CPU, minus task time the driver ran inline while helping the
  // pool (those tasks report their own CPU into worker_cpu_ns — counting
  // them here too would double-bill the query).
  const int64_t driver_cpu_ns =
      (ThreadCpuNanos() - cpu_start) -
      (WorkerPool::InlineTaskCpuNanos() - inline_start);

  QueryMetrics metrics;
  metrics.total_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  metrics.result_rows =
      agg->NumGroups() > 0 ? agg->NumGroups() : agg->stats().rows_out;
  metrics.result_checksum = agg->ResultChecksum();
  CollectStats(agg.get(), &metrics);
  metrics.filters = runtime.stats;
  // The query's own task time: driver CPU plus every pool task's CPU
  // (merged into the source scans' worker_cpu_ns). Parallel filter fills
  // (FillFilterParallel partials) carry no per-worker stats and are not
  // included; their work is bounded by the build-side inserts.
  metrics.cpu_ns = driver_cpu_ns;
  for (const OperatorStats& op : metrics.operators) {
    metrics.cpu_ns += op.worker_cpu_ns;
  }
  if (trace != nullptr) {
    // Fold the pool-worker CPU into the execute span (merge-once, after the
    // workers joined) and mirror the operator tree as completed spans.
    trace->AddWorkerCpu(exec_span.id(),
                        metrics.cpu_ns - driver_cpu_ns);
    AddOperatorSpans(agg.get(), exec_span.id(), trace);
  }
  return metrics;
}

}  // namespace bqo

// Pipeline decomposition and morsel-parallel pipeline execution.
//
// A *pipeline* is the maximal streaming chain between pipeline breakers in
// the compiled operator tree: it starts at a morsel-parallel source (a
// ScanOperator) and runs upward through hash-join *probe* sides until an
// operator that must materialize its input — a hash-join build, a sort-merge
// materialization, the final aggregate. BuildProbePipeline() performs that
// decomposition; walking the whole tree this way yields an ordered pipeline
// schedule that realizes Algorithm 1's filter-dependency order by
// construction: a join's build-side pipeline (which creates the join's
// bitvector filter at the barrier) always completes, via the recursive
// Open() order, before the probe-side pipeline that consumes the filter
// starts.
//
// Execution: N workers each own a PipelineWorkerState (scan scratch + one
// re-entrant ProbeState per join on the chain) and pull scan morsels off the
// shared cursor, running hash -> MayContainBatch -> gather -> probe -> probe
// entirely thread-locally; the bitvector filters and join tables are
// read-only by the time any pipeline runs. Three draining modes:
//
//  * Free-running (PipelineParallelNext): batches may span morsels; used by
//    ExchangeOperator above the topmost probe chain, where the consumer (the
//    aggregate) is order-independent.
//  * Pre-aggregating (ExchangeOperator::EnablePreAggregation): free-running,
//    but each worker folds its output batches into a thread-local
//    PartialAggState (aggregate.h) instead of queueing them; the aggregate
//    sink merges the partials. This is how the executor runs the plan's
//    final aggregate wide — the fold commutes, so the merged group map,
//    total, and checksum equal the single-threaded fold exactly.
//  * Canonical (DrainPipelineParallel): workers claim one morsel at a time
//    and the per-morsel output chunks are reassembled in morsel order, which
//    equals the single-threaded row order exactly (scan rows stream in
//    selection order and every probe stage is order-preserving). Hash-join
//    builds and sort-merge materializations use this, so the hash table —
//    and every insert-order-sensitive structure built from it, like a cuckoo
//    filter — is byte-identical at every thread count.
//
// Stats discipline (the PR 2 invariant, engine-wide): workers accumulate
// FilterStats/OperatorStats deltas in their private states; the drain owner
// merges them exactly once after joining the workers, so merged
// probed/passed (and ObservedLambda) equal the single-threaded counts.
#pragma once

#include <vector>

#include "src/exec/exec_config.h"
#include "src/exec/hash_join.h"
#include "src/exec/scan.h"

namespace bqo {

/// \brief A decomposed streaming chain: scan source plus the hash joins
/// whose probe sides lie on it, bottom-up (probes[0] consumes source
/// batches, probes[i+1] consumes probes[i]'s output).
struct Pipeline {
  /// Morsel-parallel source; null when the chain is not parallelizable
  /// (it bottoms out in a breaker such as a sort-merge join).
  ScanOperator* source = nullptr;
  std::vector<HashJoinOperator*> probes;

  bool parallel() const { return source != nullptr; }
};

/// \brief Decompose the streaming chain rooted at `op`: descend through
/// hash-join probe children until a scan (parallelizable) or any other
/// operator (breaker; returns a non-parallel pipeline).
Pipeline BuildProbePipeline(PhysicalOperator* op);

/// \brief Per-worker execution state for one pipeline.
struct PipelineWorkerState {
  ScanOperator::WorkerState scan;
  std::vector<HashJoinOperator::ProbeState> probes;  ///< aligned w/ Pipeline
};

/// \brief Size `ws` for `pipe`. Call after the pipeline's operators are
/// Open (the scan's filter set and each join's residual set are fixed then).
void InitPipelineWorker(const Pipeline& pipe, PipelineWorkerState* ws);

/// \brief Produce the pipeline's next output batch, claiming scan morsels
/// freely. Thread-safe across workers once the operators are Open, each
/// with its own state. False when the scan cursor is exhausted and the
/// batch came up empty.
bool PipelineParallelNext(const Pipeline& pipe, Batch* out,
                          PipelineWorkerState* ws);

/// \brief Fold `ws`'s accumulators into the pipeline's operators. Call
/// exactly once per worker, after it is joined; not thread-safe.
void MergePipelineWorkerStats(const Pipeline& pipe, PipelineWorkerState* ws);

/// \brief Drain the whole pipeline with exec.threads workers and return
/// every produced row, row-major over the pipeline's output schema, in
/// canonical (single-threaded) order: workers claim one scan morsel at a
/// time and the per-morsel chunks are reassembled by morsel position. All
/// per-worker stats are merged before returning. The caller must have
/// Open()ed the pipeline's operators (a hash-join build does this via its
/// recursive child Open).
std::vector<int64_t> DrainPipelineParallel(const Pipeline& pipe,
                                           const ExecConfig& exec);

/// \brief Insert `n` canonical-order key hashes into `filter` (freshly
/// created via CreateFilter(config, n)), wide when profitable: workers
/// build per-partition partials (Bloom partials sized like `filter` so the
/// geometries match, with insert tracking enabled) and fold them in
/// partition order through BitvectorFilter::MergeFrom, reproducing the
/// sequential bits and NumInserted exactly for Exact and Bloom. Cuckoo
/// filters are filled sequentially regardless of thread count: their
/// contents are insert-order-dependent, and a merged build would perturb
/// downstream passed counts relative to threads=1.
///
/// `ctx` (optional) makes the fill cancellable: inserts poll it every few
/// thousand keys and a fired kFilterFill fault cancels it (first-error-
/// wins); a cancelled fill leaves the filter partially built — harmless,
/// since the whole query's results are void once its context is cancelled.
void FillFilterParallel(BitvectorFilter* filter, const FilterConfig& config,
                        const uint64_t* hashes, int64_t n,
                        const ExecConfig& exec, QueryContext* ctx = nullptr);

}  // namespace bqo

#include "src/exec/hash_join.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/bit_util.h"
#include "src/common/hash.h"
#include "src/exec/pipeline.h"
#include "src/exec/scan.h"
#include "src/filter/bloom_filter.h"
#include "src/filter/filter_kernels.h"
#include "src/optimizer/build_signature.h"
#include "src/server/build_cache.h"

namespace bqo {

HashJoinOperator::HashJoinOperator(std::unique_ptr<PhysicalOperator> build,
                                   std::unique_ptr<PhysicalOperator> probe,
                                   OutputSchema schema, Config config,
                                   FilterRuntime* runtime, std::string label)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      config_(std::move(config)),
      runtime_(runtime) {
  schema_ = std::move(schema);
  stats_.type = OperatorType::kHashJoin;
  stats_.label = std::move(label);
  BQO_CHECK(!config_.build_key_positions.empty());
  BQO_CHECK_EQ(config_.build_key_positions.size(),
               config_.probe_key_positions.size());
  BQO_CHECK_LE(config_.build_key_positions.size(), size_t{8});
  build_width_ = build_->output_schema().size();

  // A residual filter whose key columns are exactly this join's equi-join
  // keys (in order, sourced from either side — the sides agree on every
  // matched row) hashes to the probe-row hash already computed by
  // HashProbeBatch; flag those so WinnowResiduals can skip the recompute.
  residual_uses_probe_hash_.reserve(config_.residual_filters.size());
  const size_t nkeys = config_.build_key_positions.size();
  for (const ResolvedFilter& rf : config_.residual_filters) {
    bool reuses = rf.key_positions.size() == nkeys;
    for (size_t k = 0; reuses && k < nkeys; ++k) {
      const auto& src =
          config_.output_sources[static_cast<size_t>(rf.key_positions[k])];
      const int want = src.first ? config_.build_key_positions[k]
                                 : config_.probe_key_positions[k];
      reuses = src.second == want;
    }
    residual_uses_probe_hash_.push_back(reuses ? 1 : 0);
  }
}

void HashJoinOperator::DrainBuild(JoinBuildSide* side) {
  const Pipeline build_pipe = BuildProbePipeline(build_.get());
  const int workers = config_.exec.ResolvedThreads();
  if (workers > 1 && build_pipe.parallel()) {
    side->rows = DrainPipelineParallel(build_pipe, config_.exec);
    stats_.parallel_workers = workers;
    return;
  }
  Batch batch;
  while (build_->Next(&batch)) {
    const int n = batch.num_rows;
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < build_width_; ++c) {
        side->rows.push_back(batch.col(c)[r]);
      }
    }
  }
}

void HashJoinOperator::HashBuildRows(const JoinBuildSide& side,
                                     std::vector<uint64_t>* hashes) const {
  const size_t nkeys = config_.build_key_positions.size();
  const size_t width = static_cast<size_t>(build_width_);
  const int64_t num_rows =
      width == 0 ? 0 : static_cast<int64_t>(side.rows.size() / width);
  hashes->resize(static_cast<size_t>(num_rows));
  std::vector<int64_t> keybuf(nkeys * kBatchSize);
  const int64_t* cols[8];
  for (int64_t base = 0; base < num_rows; base += kBatchSize) {
    const int n = static_cast<int>(
        std::min<int64_t>(kBatchSize, num_rows - base));
    for (size_t k = 0; k < nkeys; ++k) {
      int64_t* dst = keybuf.data() + k * kBatchSize;
      const size_t pos =
          static_cast<size_t>(config_.build_key_positions[k]);
      for (int i = 0; i < n; ++i) {
        dst[i] = side.rows[(static_cast<size_t>(base) +
                            static_cast<size_t>(i)) *
                               width +
                           pos];
      }
      cols[k] = dst;
    }
    uint64_t* out = hashes->data() + base;
    if (nkeys == 1) {
      HashColumnKernel(cols[0], n, out);
    } else {
      HashCompositeBatchKernel(cols, nkeys, n, out);
    }
  }
}

std::shared_ptr<const JoinBuildSide> HashJoinOperator::ConstructBuildSide() {
  auto side = std::make_shared<JoinBuildSide>();
  side->width = build_width_;

  // ---- Drain (wide when possible), hash, filter, bucketize ----
  build_->Open();
  DrainBuild(side.get());
  build_->Close();

  std::vector<uint64_t> hashes;
  HashBuildRows(*side, &hashes);
  side->entries.reserve(hashes.size());
  for (size_t r = 0; r < hashes.size(); ++r) {
    side->entries.push_back(JoinBuildSide::Entry{
        hashes[r], -1,
        static_cast<int32_t>(r * static_cast<size_t>(build_width_))});
  }

  // Create this join's bitvector filter, sized exactly to the build side.
  // The hashes are in canonical (single-threaded) order, so the sequential
  // and per-worker-partial fill strategies both reproduce the
  // single-threaded filter (see FillFilterParallel). A cancelled query may
  // leave the filter partially filled; that's fine — its results are void,
  // the probe side's strides stop claiming work anyway, and Open() never
  // publishes a cancelled construction to the BuildCache.
  if (config_.creates_filter_id >= 0) {
    side->filter = CreateFilter(config_.filter_config,
                                static_cast<int64_t>(hashes.size()));
    FillFilterParallel(side->filter.get(), config_.filter_config,
                       hashes.data(), static_cast<int64_t>(hashes.size()),
                       config_.exec, runtime_->context);
    side->filter_inserted = side->filter->NumInserted();
    side->filter_size_bytes = side->filter->SizeBytes();
  }

  // Bucketize.
  const uint64_t num_buckets =
      NextPow2(side->entries.size() < 8 ? 16 : side->entries.size() * 2);
  side->buckets.assign(num_buckets, -1);
  side->bucket_mask = num_buckets - 1;
  for (size_t i = 0; i < side->entries.size(); ++i) {
    const uint64_t b = side->entries[i].hash & side->bucket_mask;
    side->entries[i].next = side->buckets[b];
    side->buckets[b] = static_cast<int32_t>(i);
  }

  // As-if-built snapshot of the build scan's counters, replayed into a
  // hitting query's scan stats so leaf_tuples stays identical to a cold run.
  if (const auto* scan = dynamic_cast<const ScanOperator*>(build_.get())) {
    side->scan_rows_out = scan->stats().rows_out;
    side->scan_rows_prefilter = scan->stats().rows_prefilter;
  }
  return side;
}

void HashJoinOperator::Open() {
  TimerGuard timer(&stats_);

  // ---- Build phase: obtain the build side, shared through the server's
  // BuildCache when one is wired up and this build is shareable, privately
  // constructed otherwise.
  BuildCache* cache = runtime_ != nullptr ? runtime_->build_cache : nullptr;
  std::string signature;
  if (cache != nullptr) {
    signature = BuildSideSignature(*build_, config_.build_key_positions,
                                   config_.filter_config,
                                   config_.creates_filter_id >= 0);
  }
  QueryTrace* trace =
      runtime_ != nullptr ? CtxTrace(runtime_->context) : nullptr;
  bool built_locally = false;
  if (signature.empty()) {
    ScopedSpan span(trace, SpanKind::kBuild, "build " + stats_.label);
    build_side_ = ConstructBuildSide();
    built_locally = true;
  } else {
    // The acquire span covers the whole cache interaction — a hit's lookup,
    // or a waiter's park behind the flight leader; the nested build span
    // exists only when this query ended up constructing.
    ScopedSpan acquire(trace, SpanKind::kBuildAcquire,
                       "acquire " + stats_.label);
    build_side_ = cache->GetOrBuild(
        signature, runtime_->catalog_version, runtime_->context,
        [&]() -> std::shared_ptr<const JoinBuildSide> {
          built_locally = true;
          ScopedSpan span(trace, SpanKind::kBuild, "build " + stats_.label);
          std::shared_ptr<const JoinBuildSide> side = ConstructBuildSide();
          // A cancelled or faulted construction may be partial (drains and
          // fills unwind at stride boundaries): never hand it to waiters.
          if (runtime_->context != nullptr &&
              runtime_->context->IsCancelled()) {
            return nullptr;
          }
          return side;
        });
    if (build_side_ == nullptr) {
      // Cancelled while waiting or building — by this query's own
      // deadline/client or by a failed flight leader. Install an empty
      // table so straggling probe calls and Close() stay well-defined
      // while the query unwinds; results are void.
      build_side_ = EmptyJoinBuildSide(build_width_);
      built_locally = true;  // nothing as-if-built to replay
    }
  }
  side_ = build_side_.get();

  // Share the filter and report its stats uniformly, whether this query
  // built the side or received it: the runtime slot co-owns the filter and
  // the counters come from the side's as-if-built snapshot, so FilterStats
  // are identical either way.
  if (config_.creates_filter_id >= 0 && side_->filter != nullptr) {
    runtime_->slots[static_cast<size_t>(config_.creates_filter_id)] =
        side_->filter;
    FilterStats& fs =
        runtime_->stats[static_cast<size_t>(config_.creates_filter_id)];
    fs.created = true;
    fs.inserted = side_->filter_inserted;
    fs.size_bytes = side_->filter_size_bytes;
  }
  if (!built_locally) {
    // Cache hit: the build child never executed this query. Replay the
    // side's snapshot of the build scan's counters so leaf_tuples matches
    // the query that actually built.
    if (auto* scan = dynamic_cast<ScanOperator*>(build_.get())) {
      scan->stats().rows_out = side_->scan_rows_out;
      scan->stats().rows_prefilter = side_->scan_rows_prefilter;
    }
  }

  // ---- Probe side opens only after the filter exists ----
  probe_->Open();
  local_probe_ = ProbeState{};
  InitProbeState(&local_probe_);
}

void HashJoinOperator::InitProbeState(ProbeState* ps) const {
  ps->hashes.resize(kBatchSize);
  ps->cand_build.resize(kBatchSize);
  ps->cand_probe.resize(kBatchSize);
  ps->cand_hash.resize(kBatchSize);
  ps->sel.resize(kBatchSize);
  ps->rhashes.resize(kBatchSize);
  ps->rkeys.resize(size_t{8} * kBatchSize);
  ps->residual_stats.assign(config_.residual_filters.size(), FilterStats{});
  ps->cursor = 0;
  ps->pending_entry = -1;
  ps->input_done = false;
  ps->rows_in = 0;
  ps->rows_matched = 0;
  ps->pending_matched = false;
}

void HashJoinOperator::HashProbeBatch(ProbeState* ps) const {
  const int n = ps->in.num_rows;
  const size_t nkeys = config_.probe_key_positions.size();
  const int64_t* key_cols[8];
  for (size_t k = 0; k < nkeys; ++k) {
    key_cols[k] = ps->in.col(config_.probe_key_positions[k]);
  }
  uint64_t* hashes = ps->hashes.data();
  if (nkeys == 1) {
    HashColumnKernel(key_cols[0], n, hashes);
  } else {
    HashCompositeBatchKernel(key_cols, nkeys, n, hashes);
  }
  // Prefetch the bucket heads: the stride's lookups are independent, so the
  // misses overlap here instead of serializing one per probe row.
  for (int r = 0; r < n; ++r) {
    __builtin_prefetch(&side_->buckets[hashes[r] & side_->bucket_mask], 0, 1);
  }
}

bool HashJoinOperator::KeysEqual(const JoinBuildSide::Entry& entry,
                                 const Batch& batch, int row) const {
  const size_t nkeys = config_.build_key_positions.size();
  for (size_t k = 0; k < nkeys; ++k) {
    const int64_t build_val =
        side_->rows[static_cast<size_t>(entry.row_start) +
                    static_cast<size_t>(config_.build_key_positions[k])];
    const int64_t probe_val =
        batch.col(config_.probe_key_positions[k])[row];
    if (build_val != probe_val) return false;
  }
  return true;
}

int HashJoinOperator::WinnowResiduals(ProbeState* ps, int ncand) {
  uint16_t* sel = ps->sel.data();
  for (int i = 0; i < ncand; ++i) sel[i] = static_cast<uint16_t>(i);
  int m = ncand;

  // Residual filters (Algorithm 1 lines 24-29) evaluate on the joined row,
  // batched: each filter hashes the still-selected candidates' keys in one
  // pass and compacts the selection through MayContainBatch (prefetched
  // probes). The winnow order preserves the row-at-a-time early exit: a
  // candidate rejected by filter f is never probed against filter f+1.
  for (size_t f = 0; f < config_.residual_filters.size() && m > 0; ++f) {
    const ResolvedFilter& rf = config_.residual_filters[f];
    const BitvectorFilter* filter =
        runtime_->slots[static_cast<size_t>(rf.filter_id)].get();
    if (filter == nullptr) continue;
    const uint64_t* hashes;
    if (residual_uses_probe_hash_[f]) {
      // The join-key probe hash doubles as this filter's composite hash and
      // is already position-aligned with the candidates.
      hashes = ps->cand_hash.data();
    } else {
      const size_t nkeys = rf.key_positions.size();
      uint64_t* rhashes = ps->rhashes.data();
      if (m == ncand) {
        // Dense fast path (first winnowing filter): gather the key columns
        // candidate-contiguous and hash the whole stride batched.
        const int64_t* cols[8];
        for (size_t k = 0; k < nkeys; ++k) {
          int64_t* dst = ps->rkeys.data() + k * kBatchSize;
          const auto& src = config_.output_sources[static_cast<size_t>(
              rf.key_positions[k])];
          if (src.first) {
            for (int i = 0; i < ncand; ++i) {
              dst[i] = side_->rows[static_cast<size_t>(ps->cand_build[i]) +
                                   static_cast<size_t>(src.second)];
            }
          } else {
            const int64_t* col = ps->in.col(src.second);
            for (int i = 0; i < ncand; ++i) dst[i] = col[ps->cand_probe[i]];
          }
          cols[k] = dst;
        }
        if (nkeys == 1) {
          HashColumnKernel(cols[0], ncand, rhashes);
        } else {
          HashCompositeBatchKernel(cols, nkeys, ncand, rhashes);
        }
      } else {
        for (int j = 0; j < m; ++j) {
          const uint16_t pos = sel[j];
          int64_t key[8];
          for (size_t k = 0; k < nkeys; ++k) {
            const auto& src = config_.output_sources[static_cast<size_t>(
                rf.key_positions[k])];
            key[k] =
                src.first
                    ? side_->rows[static_cast<size_t>(ps->cand_build[pos]) +
                                  static_cast<size_t>(src.second)]
                    : ps->in.col(src.second)[ps->cand_probe[pos]];
          }
          rhashes[pos] = HashComposite(key, nkeys);
        }
      }
      hashes = rhashes;
    }
    FilterStats& fs = ps->residual_stats[f];
    fs.probed += m;
    fs.probe_batches += 1;
    m = FilterMayContainBatch(filter, hashes, sel, m);
    fs.passed += m;
  }
  return m;
}

bool HashJoinOperator::ProbeNext(Batch* out, ProbeState* ps,
                                 const NextInputFn& next_input) {
  out->Reset(schema_.size());

  while (!out->Full()) {
    // ---- Collect candidate matches (hash + key equality, pre-residual) --
    const int capacity = kBatchSize - out->num_rows;
    int32_t* cand_build = ps->cand_build.data();
    int32_t* cand_probe = ps->cand_probe.data();
    uint64_t* cand_hash = ps->cand_hash.data();
    int ncand = 0;
    while (ncand < capacity) {
      // Resume an in-progress duplicate chain.
      if (ps->pending_entry >= 0) {
        const int probe_row = ps->cursor - 1;
        while (ps->pending_entry >= 0 && ncand < capacity) {
          const JoinBuildSide::Entry& e =
              side_->entries[static_cast<size_t>(ps->pending_entry)];
          ps->pending_entry = e.next;
          if (ps->pending_entry >= 0) {
            __builtin_prefetch(
                &side_->entries[static_cast<size_t>(ps->pending_entry)]);
          }
          // Compare the precomputed hashes before touching key columns: a
          // chain mixes genuine duplicates with bucket collisions, and the
          // hash test rejects collisions with one resident comparison.
          if (e.hash == ps->pending_hash &&
              KeysEqual(e, ps->in, probe_row)) {
            if (!ps->pending_matched) {
              ps->pending_matched = true;
              ++ps->rows_matched;
            }
            cand_build[ncand] = e.row_start;
            cand_probe[ncand] = probe_row;
            cand_hash[ncand] = ps->pending_hash;
            ++ncand;
          }
        }
        if (ps->pending_entry >= 0) break;  // candidate stride full mid-chain
        continue;
      }

      if (ps->cursor >= ps->in.num_rows) {
        // Flush buffered candidates before replacing the input batch: they
        // reference rows of the current one.
        if (ncand > 0) break;
        if (ps->input_done || !next_input(&ps->in)) {
          ps->input_done = true;
          break;
        }
        ps->cursor = 0;
        HashProbeBatch(ps);
        continue;
      }

      const int probe_row = ps->cursor++;
      ++ps->rows_in;
      ps->pending_matched = false;
      ps->pending_hash = ps->hashes[static_cast<size_t>(probe_row)];
      ps->pending_entry =
          side_->buckets[ps->pending_hash & side_->bucket_mask];
    }
    if (ncand == 0) break;  // input exhausted with nothing buffered
    ps->rows_prefilter += ncand;

    const int m = WinnowResiduals(ps, ncand);

    // ---- Materialize the survivors, appending to `out` ----
    const uint16_t* sel = ps->sel.data();
    for (size_t c = 0; c < config_.output_sources.size(); ++c) {
      const auto& src = config_.output_sources[c];
      int64_t* dst = out->col(static_cast<int>(c)) + out->num_rows;
      if (src.first) {
        for (int j = 0; j < m; ++j) {
          dst[j] = side_->rows[static_cast<size_t>(cand_build[sel[j]]) +
                               static_cast<size_t>(src.second)];
        }
      } else {
        const int64_t* col = ps->in.col(src.second);
        for (int j = 0; j < m; ++j) {
          dst[j] = col[cand_probe[sel[j]]];
        }
      }
    }
    out->num_rows += m;
  }

  ps->rows_out += out->num_rows;
  return out->num_rows > 0;
}

bool HashJoinOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  return ProbeNext(out, &local_probe_,
                   [this](Batch* in) { return probe_->Next(in); });
}

void HashJoinOperator::MergeProbeStats(ProbeState* ps) {
  for (size_t f = 0; f < ps->residual_stats.size(); ++f) {
    FilterStats* dst = &runtime_->stats[static_cast<size_t>(
        config_.residual_filters[f].filter_id)];
    dst->probed += ps->residual_stats[f].probed;
    dst->passed += ps->residual_stats[f].passed;
    dst->probe_batches += ps->residual_stats[f].probe_batches;
  }
  ps->residual_stats.clear();  // merged; a repeated Close() merges nothing
  stats_.rows_prefilter += ps->rows_prefilter;
  stats_.rows_out += ps->rows_out;
  stats_.probe_rows_in += ps->rows_in;
  stats_.probe_rows_matched += ps->rows_matched;
  ps->rows_prefilter = 0;
  ps->rows_out = 0;
  ps->rows_in = 0;
  ps->rows_matched = 0;
}

void HashJoinOperator::Close() {
  MergeProbeStats(&local_probe_);
  probe_->Close();
  // Drop this query's reference; a cache- or peer-shared side stays alive
  // for its other owners.
  side_ = nullptr;
  build_side_.reset();
}

}  // namespace bqo

#include "src/exec/hash_join.h"

#include "src/common/bit_util.h"
#include "src/common/hash.h"

namespace bqo {

HashJoinOperator::HashJoinOperator(std::unique_ptr<PhysicalOperator> build,
                                   std::unique_ptr<PhysicalOperator> probe,
                                   OutputSchema schema, Config config,
                                   FilterRuntime* runtime, std::string label)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      config_(std::move(config)),
      runtime_(runtime) {
  schema_ = std::move(schema);
  stats_.type = OperatorType::kHashJoin;
  stats_.label = std::move(label);
  BQO_CHECK(!config_.build_key_positions.empty());
  BQO_CHECK_EQ(config_.build_key_positions.size(),
               config_.probe_key_positions.size());
  BQO_CHECK_LE(config_.build_key_positions.size(), size_t{8});
  build_width_ = build_->output_schema().size();

  // A residual filter whose key columns are exactly this join's equi-join
  // keys (in order, sourced from either side — the sides agree on every
  // matched row) hashes to the probe-row hash already computed by
  // HashProbeBatch; flag those so EmitRow can skip the recomputation.
  residual_uses_probe_hash_.reserve(config_.residual_filters.size());
  const size_t nkeys = config_.build_key_positions.size();
  for (const ResolvedFilter& rf : config_.residual_filters) {
    bool reuses = rf.key_positions.size() == nkeys;
    for (size_t k = 0; reuses && k < nkeys; ++k) {
      const auto& src =
          config_.output_sources[static_cast<size_t>(rf.key_positions[k])];
      const int want = src.first ? config_.build_key_positions[k]
                                 : config_.probe_key_positions[k];
      reuses = src.second == want;
    }
    residual_uses_probe_hash_.push_back(reuses ? 1 : 0);
  }
}

void HashJoinOperator::Open() {
  TimerGuard timer(&stats_);

  // ---- Build phase: batched key hashing, row-major materialization ----
  build_->Open();
  Batch batch;
  const size_t nkeys = config_.build_key_positions.size();
  probe_hashes_.resize(kBatchSize);
  while (build_->Next(&batch)) {
    const int n = batch.num_rows;
    const int64_t* key_cols[8];
    for (size_t k = 0; k < nkeys; ++k) {
      key_cols[k] = batch.col(config_.build_key_positions[k]);
    }
    if (nkeys == 1) {
      HashColumn(key_cols[0], n, probe_hashes_.data());
    } else {
      HashCompositeBatch(key_cols, nkeys, n, probe_hashes_.data());
    }
    for (int r = 0; r < n; ++r) {
      const int32_t row_start = static_cast<int32_t>(build_rows_.size());
      for (int c = 0; c < build_width_; ++c) {
        build_rows_.push_back(batch.col(c)[r]);
      }
      entries_.push_back(
          Entry{probe_hashes_[static_cast<size_t>(r)], -1, row_start});
    }
  }
  build_->Close();

  // Create this join's bitvector filter, sized exactly to the build side
  // (the entries already carry the composite-key hashes).
  if (config_.creates_filter_id >= 0) {
    auto& slot =
        runtime_->slots[static_cast<size_t>(config_.creates_filter_id)];
    slot = CreateFilter(config_.filter_config,
                        static_cast<int64_t>(entries_.size()));
    for (const Entry& e : entries_) slot->Insert(e.hash);
    FilterStats& fs =
        runtime_->stats[static_cast<size_t>(config_.creates_filter_id)];
    fs.created = true;
    fs.inserted = slot->NumInserted();
    fs.size_bytes = slot->SizeBytes();
  }

  // Bucketize.
  const uint64_t num_buckets =
      NextPow2(entries_.size() < 8 ? 16 : entries_.size() * 2);
  buckets_.assign(num_buckets, -1);
  bucket_mask_ = num_buckets - 1;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const uint64_t b = entries_[i].hash & bucket_mask_;
    entries_[i].next = buckets_[b];
    buckets_[b] = static_cast<int32_t>(i);
  }

  // ---- Probe side opens only after the filter exists ----
  probe_->Open();
  probe_cursor_ = 0;
  pending_entry_ = -1;
  probe_exhausted_ = false;
}

void HashJoinOperator::HashProbeBatch() {
  const int n = probe_batch_.num_rows;
  const size_t nkeys = config_.probe_key_positions.size();
  const int64_t* key_cols[8];
  for (size_t k = 0; k < nkeys; ++k) {
    key_cols[k] = probe_batch_.col(config_.probe_key_positions[k]);
  }
  uint64_t* hashes = probe_hashes_.data();
  if (nkeys == 1) {
    HashColumn(key_cols[0], n, hashes);
  } else {
    HashCompositeBatch(key_cols, nkeys, n, hashes);
  }
  // Prefetch the bucket heads: the stride's lookups are independent, so the
  // misses overlap here instead of serializing one per probe row.
  for (int r = 0; r < n; ++r) {
    __builtin_prefetch(&buckets_[hashes[r] & bucket_mask_], 0, 1);
  }
}

bool HashJoinOperator::KeysEqual(const Entry& entry, const Batch& batch,
                                 int row) const {
  const size_t nkeys = config_.build_key_positions.size();
  for (size_t k = 0; k < nkeys; ++k) {
    const int64_t build_val =
        build_rows_[static_cast<size_t>(entry.row_start) +
                    static_cast<size_t>(config_.build_key_positions[k])];
    const int64_t probe_val =
        batch.col(config_.probe_key_positions[k])[row];
    if (build_val != probe_val) return false;
  }
  return true;
}

bool HashJoinOperator::EmitRow(const Batch& probe_batch, int probe_row,
                               uint64_t probe_hash, int32_t build_row,
                               Batch* out) {
  ++stats_.rows_prefilter;

  // Residual filters (Algorithm 1 lines 24-29) evaluate on the joined row.
  for (size_t i = 0; i < config_.residual_filters.size(); ++i) {
    const ResolvedFilter& rf = config_.residual_filters[i];
    BitvectorFilter* filter =
        runtime_->slots[static_cast<size_t>(rf.filter_id)].get();
    if (filter == nullptr) continue;
    uint64_t hash;
    if (residual_uses_probe_hash_[i]) {
      hash = probe_hash;
    } else {
      int64_t key[8];
      const size_t nkeys = rf.key_positions.size();
      for (size_t k = 0; k < nkeys; ++k) {
        const auto& src =
            config_.output_sources[static_cast<size_t>(rf.key_positions[k])];
        key[k] = src.first
                     ? build_rows_[static_cast<size_t>(build_row) +
                                   static_cast<size_t>(src.second)]
                     : probe_batch.col(src.second)[probe_row];
      }
      hash = HashComposite(key, nkeys);
    }
    FilterStats& fs = runtime_->stats[static_cast<size_t>(rf.filter_id)];
    ++fs.probed;
    if (!filter->MayContain(hash)) return false;
    ++fs.passed;
  }

  for (size_t c = 0; c < config_.output_sources.size(); ++c) {
    const auto& src = config_.output_sources[c];
    const int64_t v =
        src.first ? build_rows_[static_cast<size_t>(build_row) +
                                static_cast<size_t>(src.second)]
                  : probe_batch.col(src.second)[probe_row];
    out->col(static_cast<int>(c))[out->num_rows] = v;
  }
  ++out->num_rows;
  return true;
}

bool HashJoinOperator::Next(Batch* out) {
  TimerGuard timer(&stats_);
  out->Reset(schema_.size());

  while (!out->Full()) {
    // Resume an in-progress duplicate chain.
    if (pending_entry_ >= 0) {
      const int probe_row = probe_cursor_ - 1;
      while (pending_entry_ >= 0 && !out->Full()) {
        const Entry& e = entries_[static_cast<size_t>(pending_entry_)];
        pending_entry_ = e.next;
        if (pending_entry_ >= 0) {
          __builtin_prefetch(&entries_[static_cast<size_t>(pending_entry_)]);
        }
        // Compare the precomputed hashes before touching key columns: a
        // chain mixes genuine duplicates with bucket collisions, and the
        // hash test rejects collisions with one resident comparison.
        if (e.hash == pending_hash_ &&
            KeysEqual(e, probe_batch_, probe_row)) {
          EmitRow(probe_batch_, probe_row, pending_hash_, e.row_start, out);
        }
      }
      if (pending_entry_ >= 0) break;  // batch full mid-chain
      continue;
    }

    if (probe_cursor_ >= probe_batch_.num_rows) {
      if (probe_exhausted_ || !probe_->Next(&probe_batch_)) {
        probe_exhausted_ = true;
        break;
      }
      probe_cursor_ = 0;
      HashProbeBatch();
      continue;
    }

    const int probe_row = probe_cursor_++;
    pending_hash_ = probe_hashes_[static_cast<size_t>(probe_row)];
    pending_entry_ = buckets_[pending_hash_ & bucket_mask_];
  }

  stats_.rows_out += out->num_rows;
  return out->num_rows > 0;
}

void HashJoinOperator::Close() {
  probe_->Close();
  buckets_.clear();
  entries_.clear();
  build_rows_.clear();
}

}  // namespace bqo

// Hash join with bitvector-filter creation (Algorithm 1, lines 8-10).
//
// Open() is the pipeline breaker: it drains the build child — wide, when the
// build side is a parallelizable pipeline and exec.threads > 1 (pipeline.h)
// — into a bucket-chained hash table, creates this join's bitvector filter
// (unless pruned/disabled), and only then opens the probe child. That order
// realizes Algorithm 1's filter-dependency order: every pushed-down filter's
// contents exist before the subtree it filters starts producing tuples.
//
// The build result lives in an immutable JoinBuildSide (build_side.h). When
// the runtime carries a BuildCache (src/server/build_cache.h) and this
// build is shareable (src/optimizer/build_signature.h), Open() consults the
// cache instead of constructing unconditionally: a hit shares another
// query's completed build read-only and replays its as-if-built stats; a
// miss constructs under the cache's single-flight protocol so concurrent
// queries needing the same build pay for it once.
//
// The probe side is re-entrant: all per-consumer iteration state (current
// input batch, in-progress duplicate chain, residual-filter stats) lives in
// a ProbeState, so after Open() many exchange workers can stream batches
// through ProbeNext() concurrently against the read-only table. The
// single-threaded Next() is the degenerate case — one local ProbeState —
// so both paths execute the same code. Per-state counters merge into the
// shared stats exactly once (MergeProbeStats), keeping probed/passed and
// ObservedLambda equal to the single-threaded counts at any thread count.
//
// Residual filters (probe columns ≠ this join's equi-join keys) are probed
// batched: matched rows buffer into a candidate stride, each residual
// winnows a selection vector via MayContainBatch (hashing the stride's keys
// in one pass), and only the survivors are materialized.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/exec/build_side.h"
#include "src/exec/exec_config.h"
#include "src/exec/operator.h"

namespace bqo {

class HashJoinOperator final : public PhysicalOperator {
 public:
  struct Config {
    /// Positions of the equi-join key columns in the children's schemas
    /// (aligned: build_key_positions[i] joins probe_key_positions[i]).
    std::vector<int> build_key_positions;
    std::vector<int> probe_key_positions;
    /// Output column -> (from_build, position in that child's schema).
    std::vector<std::pair<bool, int>> output_sources;
    /// Runtime slot this join fills with its build keys, or -1.
    int creates_filter_id = -1;
    /// Residual filters applied to this join's output; key_positions index
    /// the join's output schema.
    std::vector<ResolvedFilter> residual_filters;
    FilterConfig filter_config;
    /// Threading knobs for the build phase: threads > 1 drains a
    /// parallelizable build child with that many workers (canonical-order
    /// reassembly, see pipeline.h) and creates the bitvector filter from
    /// per-worker partials merged through BitvectorFilter::MergeFrom.
    ExecConfig exec;
  };

  /// Per-consumer probe state: the input batch being drained, the
  /// in-progress duplicate chain, candidate/selection scratch for the
  /// batched residual probes, and private stats accumulators. Exchange
  /// workers each own one; the single-threaded Next() path owns one too.
  /// MergeProbeStats folds the accumulators into the shared counters once
  /// the owner is quiesced, so merged probed/passed totals are exactly the
  /// single-threaded counts.
  struct ProbeState {
    Batch in;                    ///< current input batch from downstream
    int cursor = 0;              ///< next unconsumed row of `in`
    int32_t pending_entry = -1;  ///< in-progress duplicate chain, -1 = none
    uint64_t pending_hash = 0;   ///< probe hash of the chain's probe row
    bool input_done = false;     ///< upstream exhausted
    std::vector<uint64_t> hashes;  ///< composite key hash per row of `in`
    // Candidate stride: matched (build row, probe row, probe hash) triples
    // buffered ahead of the batched residual winnow.
    std::vector<int32_t> cand_build;   ///< build-side row offsets
    std::vector<int32_t> cand_probe;   ///< row indices into `in`
    std::vector<uint64_t> cand_hash;   ///< join-key probe hash per candidate
    std::vector<uint16_t> sel;         ///< surviving candidate positions
    std::vector<uint64_t> rhashes;     ///< residual hash scratch
    std::vector<int64_t> rkeys;        ///< residual key gather scratch
    // Private accumulators, merged once by MergeProbeStats.
    std::vector<FilterStats> residual_stats;  ///< aligned w/ residual_filters
    int64_t rows_prefilter = 0;
    int64_t rows_out = 0;
    // Probe-side match accounting (OperatorStats::probe_rows_in/_matched):
    // rows_in counts consumed probe rows; rows_matched counts those whose
    // duplicate chain produced >= 1 hash+key match. pending_matched carries
    // the per-row "already counted" bit across a chain that resumes in a
    // later ProbeNext call.
    int64_t rows_in = 0;
    int64_t rows_matched = 0;
    bool pending_matched = false;
  };

  /// Pulls the next input batch into *in; false when upstream is exhausted.
  using NextInputFn = std::function<bool(Batch*)>;

  HashJoinOperator(std::unique_ptr<PhysicalOperator> build,
                   std::unique_ptr<PhysicalOperator> probe,
                   OutputSchema schema, Config config, FilterRuntime* runtime,
                   std::string label);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::vector<PhysicalOperator*> children() override {
    return {build_.get(), probe_.get()};
  }

  /// \brief The probe-side child; pipeline decomposition descends through it
  /// (the build child hangs below this operator's breaker).
  PhysicalOperator* probe_child() { return probe_.get(); }

  /// \brief Size `ps`'s scratch for this join. Call after Open().
  void InitProbeState(ProbeState* ps) const;

  /// \brief Fill `out` with join results, pulling input batches through
  /// `next_input` as needed; false when `out` came up empty with the input
  /// exhausted. Safe to call from multiple threads after Open(), each with
  /// its own ProbeState (and an input source private to that caller, e.g. a
  /// scan morsel cursor); the table and filters are read-only by then.
  bool ProbeNext(Batch* out, ProbeState* ps, const NextInputFn& next_input);

  /// \brief Fold a probe state's accumulators into the shared stats. Call
  /// with the owning worker quiesced (joined); not thread-safe.
  void MergeProbeStats(ProbeState* ps);

 private:
  /// \brief Construct this join's build side from scratch: open/drain/close
  /// the build child (wide when parallelizable, canonical order either
  /// way), hash, create+fill the filter, bucketize, and snapshot the
  /// as-if-built stats. Doubles as the BuildCache builder closure body.
  std::shared_ptr<const JoinBuildSide> ConstructBuildSide();
  /// \brief Drain the (already opened) build child into side->rows
  /// (row-major), wide when the build side is a parallelizable pipeline, in
  /// canonical order either way (the parallel drain reassembles morsel
  /// chunks, so the table is byte-identical to the single-threaded build at
  /// any thread count).
  void DrainBuild(JoinBuildSide* side);
  /// \brief Composite-key hash of every build row, batched.
  void HashBuildRows(const JoinBuildSide& side,
                     std::vector<uint64_t>* hashes) const;
  /// \brief Hash every row of ps->in into ps->hashes and prefetch the
  /// bucket heads the stride is about to touch.
  void HashProbeBatch(ProbeState* ps) const;
  bool KeysEqual(const JoinBuildSide::Entry& entry, const Batch& batch,
                 int row) const;
  /// \brief Batched residual-filter pass over `ncand` buffered candidates:
  /// winnows ps->sel in place and returns the surviving count.
  int WinnowResiduals(ProbeState* ps, int ncand);

  std::unique_ptr<PhysicalOperator> build_;
  std::unique_ptr<PhysicalOperator> probe_;
  Config config_;
  FilterRuntime* runtime_;

  /// The build result (read-only after Open). Owned jointly with the
  /// BuildCache and any other query sharing it; privately built sides have
  /// this operator as their only owner. side_ is the borrowed raw view the
  /// probe hot path reads through.
  std::shared_ptr<const JoinBuildSide> build_side_;
  const JoinBuildSide* side_ = nullptr;
  int build_width_ = 0;

  /// Probe state of the single-threaded Next() path (merged at Close()).
  ProbeState local_probe_;

  /// residual_uses_probe_hash_[i]: residual filter i's key columns coincide
  /// (position by position) with this join's equi-join keys, so the cached
  /// probe hash doubles as its composite hash for every matched row.
  std::vector<uint8_t> residual_uses_probe_hash_;
};

}  // namespace bqo

// Hash join with bitvector-filter creation (Algorithm 1, lines 8-10).
//
// Open() drains the build child into a bucket-chained hash table, creates
// this join's bitvector filter (unless pruned/disabled), and only then opens
// the probe child — establishing the top-down build order that makes every
// pushed-down filter's contents available before the subtree it filters
// starts producing tuples.
#pragma once

#include <memory>
#include <vector>

#include "src/exec/operator.h"

namespace bqo {

class HashJoinOperator final : public PhysicalOperator {
 public:
  struct Config {
    /// Positions of the equi-join key columns in the children's schemas
    /// (aligned: build_key_positions[i] joins probe_key_positions[i]).
    std::vector<int> build_key_positions;
    std::vector<int> probe_key_positions;
    /// Output column -> (from_build, position in that child's schema).
    std::vector<std::pair<bool, int>> output_sources;
    /// Runtime slot this join fills with its build keys, or -1.
    int creates_filter_id = -1;
    /// Residual filters applied to this join's output; key_positions index
    /// the join's output schema.
    std::vector<ResolvedFilter> residual_filters;
    FilterConfig filter_config;
  };

  HashJoinOperator(std::unique_ptr<PhysicalOperator> build,
                   std::unique_ptr<PhysicalOperator> probe,
                   OutputSchema schema, Config config, FilterRuntime* runtime,
                   std::string label);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::vector<PhysicalOperator*> children() override {
    return {build_.get(), probe_.get()};
  }

 private:
  struct Entry {
    uint64_t hash;
    int32_t next;       ///< chain for collisions/duplicates, -1 = end
    int32_t row_start;  ///< offset into build_rows_ (row-major)
  };

  /// \brief Hash every row of probe_batch_ into probe_hashes_ and prefetch
  /// the bucket heads the stride is about to touch.
  void HashProbeBatch();
  bool KeysEqual(const Entry& entry, const Batch& batch, int row) const;
  bool EmitRow(const Batch& probe_batch, int probe_row, uint64_t probe_hash,
               int32_t build_row, Batch* out);

  std::unique_ptr<PhysicalOperator> build_;
  std::unique_ptr<PhysicalOperator> probe_;
  Config config_;
  FilterRuntime* runtime_;

  // Hash table state.
  std::vector<int32_t> buckets_;  ///< -1 = empty
  std::vector<Entry> entries_;
  std::vector<int64_t> build_rows_;  ///< row-major build tuples
  int build_width_ = 0;
  uint64_t bucket_mask_ = 0;

  // Probe iteration state (a probe row can match many build rows).
  Batch probe_batch_;
  int probe_cursor_ = 0;
  int32_t pending_entry_ = -1;
  uint64_t pending_hash_ = 0;  ///< probe hash of the in-progress chain's row
  bool probe_exhausted_ = false;

  /// Composite-key hashes of the whole current probe batch, computed once
  /// when the batch arrives (scratch, reused for the build side at Open).
  std::vector<uint64_t> probe_hashes_;
  /// residual_uses_probe_hash_[i]: residual filter i's key columns coincide
  /// (position by position) with this join's equi-join keys, so the cached
  /// probe hash doubles as its composite hash for every matched row.
  std::vector<uint8_t> residual_uses_probe_hash_;
};

}  // namespace bqo

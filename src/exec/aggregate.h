// Aggregation: COUNT(*) / SUM(col), optionally grouped by one column.
//
// Decision-support queries end in an aggregate; its output also provides an
// order-independent checksum used by the tests to prove that different join
// orders (and filter placements) compute the same result.
#pragma once

#include <memory>
#include <unordered_map>

#include "src/exec/operator.h"

namespace bqo {

enum class AggKind : uint8_t { kCountStar, kSum };

struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  BoundColumn sum_column;    ///< kSum only
  bool has_group_by = false;
  BoundColumn group_column;  ///< if has_group_by
};

class AggregateOperator final : public PhysicalOperator {
 public:
  AggregateOperator(std::unique_ptr<PhysicalOperator> child, AggSpec spec);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::vector<PhysicalOperator*> children() override {
    return {child_.get()};
  }

  /// \brief Order-independent hash of the full result set.
  uint64_t ResultChecksum() const { return checksum_; }
  int64_t NumGroups() const { return static_cast<int64_t>(groups_.size()); }
  /// \brief Total aggregate value (sum over groups); COUNT(*) of the join
  /// when ungrouped.
  int64_t TotalValue() const { return total_; }

 private:
  std::unique_ptr<PhysicalOperator> child_;
  AggSpec spec_;
  int sum_pos_ = -1;
  int group_pos_ = -1;

  std::unordered_map<int64_t, int64_t> groups_;
  std::vector<int64_t> group_keys_;  ///< snapshot for chunked emission
  size_t emit_cursor_ = 0;
  int64_t total_ = 0;
  uint64_t checksum_ = 0;
  bool emitted_ = false;
};

}  // namespace bqo

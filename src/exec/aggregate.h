// Aggregation: COUNT(*) / SUM(col), optionally grouped by one column —
// executed as fold + merge so the final aggregate can run pipeline-parallel.
//
// == The partial-aggregation model ==
//
// The aggregate is decomposed into three pieces:
//
//  * AggFold — an AggSpec resolved against a child schema (column positions
//    for the SUM input and the group key). Folding is stateless w.r.t. the
//    operator: any thread may fold batches through the same AggFold.
//  * PartialAggState — the mutable accumulator one thread folds into: a
//    group -> value hash map for GROUP BY, a scalar total otherwise, plus
//    the per-worker input-row counter that metrics.h's merge-once
//    discipline requires. Partials merge by key-wise addition
//    (MergeFrom), which is exact because both COUNT(*) and SUM are
//    commutative + associative folds: any partition of the input rows
//    into partials, merged in any order, yields the same group map and
//    total as the single-threaded left-to-right fold.
//  * AggregateOperator — the sink. Single-threaded (threads == 1, or a
//    breaker such as a sort-merge join at the plan root) it folds its
//    child's batches into one PartialAggState itself. Pipeline-parallel,
//    the executor compiles the fold *into* the ExchangeOperator below it
//    (exchange.h pre-aggregating drain): each exchange worker folds its
//    probe-chain output thread-locally, and the sink merges the per-worker
//    partials instead of consuming raw batches — no serial consume loop,
//    no raw-batch queue traffic above the top probe chain.
//
// == Checksum merge-order independence ==
//
// ResultChecksum() is the *sum* over groups of Mix64(hash(group, value)),
// computed on the fully merged state (and HashValue(total) when ungrouped).
// Summation commutes, so the checksum is independent of group enumeration
// order — and therefore of the hash-map iteration order, which differs
// between a merged map and a single-threaded one even when their contents
// are identical. Together with the exactness of MergeFrom this gives the
// engine-wide parity invariant, pinned by tests/test_pipeline_parallel.cc:
// ResultChecksum(), NumGroups(), and TotalValue() at any thread count equal
// the threads == 1 values exactly. The checksum's order independence is
// also what lets the plan-equivalence tests compare different join orders.
#pragma once

#include <memory>
#include <unordered_map>

#include "src/exec/operator.h"

namespace bqo {

enum class AggKind : uint8_t { kCountStar, kSum };

struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  BoundColumn sum_column;    ///< kSum only
  bool has_group_by = false;
  BoundColumn group_column;  ///< if has_group_by
};

/// \brief One thread's aggregate accumulator. Fold rows in via
/// AggFold::Fold; combine partials with MergeFrom.
struct PartialAggState {
  std::unordered_map<int64_t, int64_t> groups;  ///< GROUP BY only
  int64_t total = 0;      ///< SUM over all rows; row count for COUNT(*)
  int64_t rows_folded = 0;  ///< input rows this partial consumed

  /// \brief Key-wise addition of `other` into this partial. Exact: COUNT
  /// and SUM are commutative + associative, so merged partials reproduce
  /// the single-threaded fold for any input partition and merge order.
  void MergeFrom(PartialAggState&& other);
};

/// \brief An AggSpec resolved against a concrete child schema: the fold
/// kernel shared by the single-threaded sink and the pre-aggregating
/// exchange workers. Read-only after Resolve, so concurrent folds into
/// distinct PartialAggStates need no synchronization.
struct AggFold {
  AggKind kind = AggKind::kCountStar;
  bool has_group_by = false;
  int sum_pos = -1;    ///< kSum: position of the SUM column in the child
  int group_pos = -1;  ///< has_group_by: position of the group key

  /// \brief Resolve `spec`'s columns against `child_schema` (CHECKs that
  /// they are present).
  static AggFold Resolve(const AggSpec& spec, const OutputSchema& child_schema);

  /// \brief Fold one batch into `state`.
  void Fold(const Batch& batch, PartialAggState* state) const;
};

class AggregateOperator final : public PhysicalOperator {
 public:
  AggregateOperator(std::unique_ptr<PhysicalOperator> child, AggSpec spec);

  /// Open() consumes the whole input: either by folding the child's batches
  /// itself, or — when the child is a pre-aggregating ExchangeOperator —
  /// by merging the per-worker partials the exchange drained in parallel.
  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::vector<PhysicalOperator*> children() override {
    return {child_.get()};
  }

  /// \brief Order-independent hash of the full result set (see the header
  /// comment on merge-order independence).
  uint64_t ResultChecksum() const { return checksum_; }
  int64_t NumGroups() const {
    return static_cast<int64_t>(state_.groups.size());
  }
  /// \brief Total aggregate value (sum over groups); COUNT(*) of the join
  /// when ungrouped.
  int64_t TotalValue() const { return state_.total; }

 private:
  std::unique_ptr<PhysicalOperator> child_;
  AggSpec spec_;
  AggFold fold_;

  PartialAggState state_;            ///< fully merged at the end of Open()
  std::vector<int64_t> group_keys_;  ///< snapshot for chunked emission
  size_t emit_cursor_ = 0;
  uint64_t checksum_ = 0;
  bool emitted_ = false;
};

}  // namespace bqo

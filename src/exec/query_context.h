// QueryContext: per-query cooperative cancellation, deadline, and
// first-error propagation — the execution engine's failure domain.
//
// One QueryContext exists per query execution (QueryService::Execute makes
// one per request; ExecutePlan makes a private one when the caller passed
// none). It is threaded through the compiled operator tree via
// FilterRuntime::context (operator.h), so every drain loop in the engine —
// scan morsel claims, exchange worker iterations, build drains, filter
// fills, sort-merge emission — can poll it at stride boundaries:
//
//   if (CtxShouldStop(ctx)) break;   // unwind; results are void
//
// == First-error-wins ==
//
// Cancel(status) records the *first* non-OK Status and raises the
// cancellation flag; later Cancel calls are no-ops. Every cooperative
// check observes the flag (one relaxed atomic load on the hot path), so
// one failing worker cancels its siblings, the drains unwind in bounded
// time — within one stride / morsel per worker, plus any single
// non-preemptible step such as a sort — and the originating Status
// (kCancelled, kDeadlineExceeded, or an injected fault) surfaces to the
// client in QueryResult::status. A cancelled query produces garbage
// partial aggregates; callers must treat its results as void whenever
// status() is non-OK.
//
// == Deadlines ==
//
// SetDeadline installs an absolute steady-clock deadline *before* the
// context is shared with workers (it is not synchronized for concurrent
// writes). ShouldStop() self-cancels with kDeadlineExceeded once the
// deadline passes, so deadline expiry needs no watchdog thread: whichever
// worker (or parked consumer, via a deadline-aware wait) notices first
// cancels everyone else through the flag.
//
// == Cancel listeners ==
//
// Cooperative polling cannot wake a thread parked in a condition-variable
// wait (an exchange consumer in Next(), a client waiting for admission).
// Such waiters register a cancel listener — typically "lock my mutex,
// notify my CV" — which Cancel() invokes under the context mutex, so
// RemoveCancelListener() (same mutex) cannot return while a callback is
// mid-flight and a listener never outlives its owner. Lock ordering:
// Cancel holds the context mutex and then takes the listener's mutex, so
// listeners must be registered/removed *without* holding that mutex, and
// no code may call into the context while holding it except flag-only
// reads (IsCancelled).
// == Tracing ==
//
// The context optionally owns the query's QueryTrace (src/obs/trace.h).
// AttachTrace is called once, by the owner, before the context is shared;
// trace() is then a plain pointer read, null when tracing is off — every
// instrumentation site is null-tolerant, so the off path costs one branch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "src/common/status.h"
#include "src/obs/trace.h"

namespace bqo {

class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// \brief Install an absolute deadline. Call before execution starts
  /// (not synchronized against concurrent readers racing the set itself).
  void SetDeadline(std::chrono::steady_clock::time_point deadline);
  /// \brief Convenience: deadline `ms` milliseconds from now.
  void SetDeadlineAfterMs(int64_t ms);
  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }
  /// \brief Meaningful only when has_deadline().
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// \brief First-error-wins: record `status` (must be non-OK) and raise
  /// the cancellation flag; runs registered listeners. Later calls no-op.
  void Cancel(Status status);

  /// \brief Flag-only check: one acquire load. Safe anywhere, including
  /// under locks that a cancel listener also takes.
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// \brief The cooperative stride-boundary check: true once the query is
  /// cancelled or its deadline has passed (self-cancelling with
  /// kDeadlineExceeded on first notice). May invoke cancel listeners — do
  /// not call while holding a mutex a listener takes.
  bool ShouldStop();

  /// \brief OK until Cancel; afterwards the first error, stable forever.
  Status status() const;

  /// \brief Register `fn` to run on cancellation (invoked immediately if
  /// already cancelled). Returns a token for RemoveCancelListener.
  int64_t AddCancelListener(std::function<void()> fn);
  /// \brief Unregister; blocks until no invocation of `fn` is in flight,
  /// so the listener's captures may be destroyed right after this returns.
  void RemoveCancelListener(int64_t token);

  /// \brief Give the context ownership of the query's trace. Call once,
  /// before the context is shared with workers (plain pointer write, not
  /// synchronized against concurrent trace() readers racing the attach).
  void AttachTrace(std::unique_ptr<QueryTrace> trace) {
    trace_ = std::move(trace);
  }
  /// \brief The query's trace, or null when tracing is off.
  QueryTrace* trace() const { return trace_.get(); }
  /// \brief Take the trace back (the context may be client-owned and
  /// reused; the service detaches the sealed trace into the QueryResult).
  std::unique_ptr<QueryTrace> DetachTrace() { return std::move(trace_); }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};

  mutable std::mutex mu_;
  Status status_;  ///< first error; guarded by mu_
  std::map<int64_t, std::function<void()>> listeners_;  ///< guarded by mu_
  int64_t next_listener_token_ = 0;                     ///< guarded by mu_

  std::unique_ptr<QueryTrace> trace_;  ///< set once before sharing
};

/// \brief Null-tolerant trace accessor (mirrors CtxShouldStop below).
inline QueryTrace* CtxTrace(QueryContext* ctx) {
  return ctx != nullptr ? ctx->trace() : nullptr;
}

/// \brief Null-tolerant stride-boundary check (contexts are optional on
/// direct ExecutePlan paths and in operator unit tests).
inline bool CtxShouldStop(QueryContext* ctx) {
  return ctx != nullptr && ctx->ShouldStop();
}

}  // namespace bqo

// Physical operator interface (Volcano-style pull with vectorized batches)
// and the shared runtime state for bitvector filters.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "src/exec/batch.h"
#include "src/exec/metrics.h"
#include "src/exec/query_context.h"
#include "src/filter/bitvector_filter.h"

namespace bqo {

class BuildCache;  // src/server/build_cache.h

/// \brief Shared runtime slots for bitvector filters, indexed by
/// PlanFilter::id. A slot stays null when the filter is pruned (Section 6.3)
/// or when execution is configured to ignore bitvectors (Table 4's
// "same plan, filters off" comparison); consumers skip null slots.
///
/// Slots are shared_ptr because a filter may be owned jointly with the
/// server's BuildCache (a cached build side shares its filter read-only
/// across queries); privately built filters simply have this runtime as
/// their only owner. Filters are immutable once their creating join's
/// Open() completes, so the sharing is data-race-free by construction.
///
/// Also carries the query's cancellation context: the runtime is the one
/// piece of shared per-execution state every compiled operator holds, so
/// it is how QueryContext reaches the drain loops (query_context.h).
struct FilterRuntime {
  std::vector<std::shared_ptr<BitvectorFilter>> slots;
  std::vector<FilterStats> stats;
  /// Borrowed; may be null (operator unit tests). ExecutePlan points this
  /// at ExecutionOptions::context, or at a private context when none given.
  QueryContext* context = nullptr;
  /// Cross-query build-side cache (borrowed; null = every join builds
  /// privately — the default for direct ExecutePlan callers). Set by the
  /// QueryService together with the catalog version its plan was bound
  /// under, so cached builds invalidate with the plans that reference them.
  BuildCache* build_cache = nullptr;
  int64_t catalog_version = 0;
};

/// \brief A filter application site resolved against an operator: which
/// runtime slot to probe and where its key columns live.
struct ResolvedFilter {
  int filter_id = -1;
  /// Positions of the probe-key columns. For scans these are base-table
  /// column indices; for joins, positions in the operator's output schema.
  std::vector<int> key_positions;
};

class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// \brief Prepare for iteration. Hash joins drain their build child here,
  /// so Open order realizes the filter-dependency order of Algorithm 1.
  virtual void Open() = 0;

  /// \brief Produce the next batch; false when exhausted.
  virtual bool Next(Batch* out) = 0;

  virtual void Close() = 0;

  const OutputSchema& output_schema() const { return schema_; }
  OperatorStats& stats() { return stats_; }
  const OperatorStats& stats() const { return stats_; }

  virtual std::vector<PhysicalOperator*> children() { return {}; }

 protected:
  /// \brief RAII guard accumulating wall time into the operator's counter.
  class TimerGuard {
   public:
    explicit TimerGuard(OperatorStats* stats)
        : stats_(stats), start_(std::chrono::steady_clock::now()) {}
    ~TimerGuard() {
      stats_->ns_inclusive +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count();
    }

   private:
    OperatorStats* stats_;
    std::chrono::steady_clock::time_point start_;
  };

  OutputSchema schema_;
  OperatorStats stats_;
};

}  // namespace bqo

// ExchangeOperator: morsel-parallel pipeline draining behind a Volcano
// facade.
//
// The wrapped child is any parallelizable probe pipeline (pipeline.h): a
// bare scan, or a scan -> probe -> ... -> probe chain of hash joins. Open()
// first opens the child — which runs every hash-join build below, itself
// wide — then submits N worker tasks to the shared WorkerPool
// (src/server/worker_pool.h; no per-query thread construction) that pull
// scan morsels off the shared cursor and stream them through the whole
// probe chain thread-locally. What the workers do with the produced batches
// depends on the drain mode:
//
//  * Raw mode (the default): workers push batches into a bounded queue;
//    Next() pops them for the single-threaded consumer above. Batch order
//    in the queue is nondeterministic, but the consumers above (aggregate,
//    result checksum) are order-independent, so query results are identical
//    to threads=1.
//  * Pre-aggregating mode (EnablePreAggregation, compiled in by the
//    executor when the exchange's consumer is the final aggregate): each
//    worker folds its batches straight into a thread-local PartialAggState
//    (aggregate.h) — the queue is bypassed entirely and the batches are
//    recycled worker-locally, so no raw intermediate rows cross threads
//    above the top probe chain. The aggregate sink then calls
//    DrainPartials(), which joins the workers and hands back the per-worker
//    partials for the exact merge (MergeFrom commutes; see aggregate.h).
//    Next() must not be called in this mode.
//
// Parallelism therefore stops at the plan's final breaker, not at the
// leaves: the executor compiles exactly one exchange, directly below the
// aggregate, when the topmost pipeline is parallelizable (executor.cc) —
// and in pre-aggregating mode the "breaker" work itself (the fold) runs
// wide too, leaving only the group-map merge serial.
//
// Stats discipline: workers accumulate FilterStats/OperatorStats deltas in
// their private PipelineWorkerState (scan scratch + per-join ProbeStates);
// DrainPartials()/Close() joins every worker and merges the deltas into the
// shared counters exactly once, so the merged probed/passed counts — at the
// scan's pushed-down filters and at every join's residual filters — equal
// the single-threaded run's (the observed-lambda numbers of Section 6.3
// stay exact under parallelism). In pre-aggregating mode the per-worker
// agg counters (rows folded, partial group counts) merge into this
// operator's agg_rows_folded / agg_partial_groups the same way (metrics.h).
//
// Cancellation (query_context.h): workers poll the query's context at every
// morsel claim and stride, so a cancelled drain runs dry in bounded time in
// both modes. Raw mode additionally wires the context into both queue waits
// — a consumer parked in Next() and producers parked on a full queue are
// woken promptly by a cancel listener (and Next() waits against the query
// deadline when one is armed), so a cancelled or deadline-expired query
// never sits parked on the exchange while its workers unwind.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/exec/aggregate.h"
#include "src/exec/exec_config.h"
#include "src/exec/pipeline.h"
#include "src/server/worker_pool.h"

namespace bqo {

class ExchangeOperator final : public PhysicalOperator {
 public:
  /// `child` must decompose into a parallelizable pipeline
  /// (BuildProbePipeline(child).parallel()) and `config` must resolve to
  /// more than one thread.
  ExchangeOperator(std::unique_ptr<PhysicalOperator> child, ExecConfig config,
                   std::string label);
  ~ExchangeOperator() override;

  /// \brief Switch to the pre-aggregating drain: workers fold their output
  /// into thread-local partials instead of queueing raw batches. Resolves
  /// `spec` against the child schema (CHECKs on missing columns). Must be
  /// called before Open(); the consumer must use DrainPartials(), not
  /// Next().
  void EnablePreAggregation(const AggSpec& spec);
  bool pre_aggregating() const { return preagg_; }

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  /// \brief Pre-aggregating mode only: wait for every worker to exhaust the
  /// scan cursor, merge their pipeline stats (exactly once), and return the
  /// per-worker partial aggregates for the sink to merge. Call once per
  /// Open().
  std::vector<PartialAggState> DrainPartials();

  std::vector<PhysicalOperator*> children() override {
    return {child_.get()};
  }

 private:
  void WorkerMain(int worker_index);
  /// Await every worker task and merge their stats; idempotent.
  void Shutdown();
  /// The query's context, via the pipeline source (null if executing
  /// without one). Valid once constructed; the source outlives us.
  QueryContext* query_context() const { return pipe_.source->query_context(); }

  std::unique_ptr<PhysicalOperator> child_;
  Pipeline pipe_;  ///< decomposition of child_ (source + probe stages)
  ExecConfig config_;

  bool preagg_ = false;
  AggFold fold_;  ///< pre-aggregating mode: the shared fold kernel
  std::vector<PartialAggState> partials_;  ///< one per worker

  /// One WorkerMain task per logical worker, submitted to the shared
  /// WorkerPool (no per-query thread construction); non-null while draining.
  std::unique_ptr<WorkerPool::TaskGroup> tasks_;
  std::vector<PipelineWorkerState> workers_;

  // Bounded MPSC queue (raw mode only). `ready_` holds produced batches;
  // `recycled_` holds consumed batches whose flat storage workers reuse, so
  // steady-state operation allocates nothing.
  std::mutex mu_;
  std::condition_variable can_push_;  ///< signaled when ready_ drains/aborts
  std::condition_variable can_pop_;   ///< signaled on push / last producer
  std::deque<Batch> ready_;
  std::vector<Batch> recycled_;
  size_t capacity_ = 0;
  int active_producers_ = 0;
  bool abort_ = false;
  /// Cancel-listener registration (raw mode): on Cancel() the listener
  /// locks mu_ and broadcasts both CVs so a parked consumer (Next) and
  /// parked producers wake promptly instead of waiting out a full queue or
  /// an idle scan. -1 when not registered. See query_context.h for the
  /// lock-ordering contract (ctx mutex -> mu_; never the reverse).
  int64_t cancel_listener_id_ = -1;
};

}  // namespace bqo

// ExchangeOperator: morsel-parallel pipeline draining behind a Volcano
// facade.
//
// The wrapped child is any parallelizable probe pipeline (pipeline.h): a
// bare scan, or a scan -> probe -> ... -> probe chain of hash joins. Open()
// first opens the child — which runs every hash-join build below, itself
// wide — then spawns N workers that pull scan morsels off the shared cursor,
// stream them through the whole probe chain thread-locally, and push the
// resulting batches into a bounded queue; Next() pops batches for the
// single-threaded consumer above (the aggregate). Parallelism therefore
// stops at the plan's final breaker, not at the leaves: the executor
// compiles exactly one exchange, directly below the aggregate, when the
// topmost pipeline is parallelizable (executor.cc).
//
// Stats discipline: workers accumulate FilterStats/OperatorStats deltas in
// their private PipelineWorkerState (scan scratch + per-join ProbeStates);
// Close() joins every worker and merges the deltas into the shared counters
// exactly once, so the merged probed/passed counts — at the scan's
// pushed-down filters and at every join's residual filters — equal the
// single-threaded run's (the observed-lambda numbers of Section 6.3 stay
// exact under parallelism). Batch order in the queue is nondeterministic,
// but the consumers above (aggregate, result checksum) are
// order-independent, so query results are identical to threads=1.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/exec/exec_config.h"
#include "src/exec/pipeline.h"

namespace bqo {

class ExchangeOperator final : public PhysicalOperator {
 public:
  /// `child` must decompose into a parallelizable pipeline
  /// (BuildProbePipeline(child).parallel()) and `config` must resolve to
  /// more than one thread.
  ExchangeOperator(std::unique_ptr<PhysicalOperator> child, ExecConfig config,
                   std::string label);
  ~ExchangeOperator() override;

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::vector<PhysicalOperator*> children() override {
    return {child_.get()};
  }

 private:
  void WorkerMain(int worker_index);
  /// Join workers and merge their stats; idempotent.
  void Shutdown();

  std::unique_ptr<PhysicalOperator> child_;
  Pipeline pipe_;  ///< decomposition of child_ (source + probe stages)
  ExecConfig config_;

  std::vector<std::thread> threads_;
  std::vector<PipelineWorkerState> workers_;

  // Bounded MPSC queue. `ready_` holds produced batches; `recycled_` holds
  // consumed batches whose flat storage workers reuse, so steady-state
  // operation allocates nothing.
  std::mutex mu_;
  std::condition_variable can_push_;  ///< signaled when ready_ drains/aborts
  std::condition_variable can_pop_;   ///< signaled on push / last producer
  std::deque<Batch> ready_;
  std::vector<Batch> recycled_;
  size_t capacity_ = 0;
  int active_producers_ = 0;
  bool abort_ = false;
};

}  // namespace bqo

// ExchangeOperator: morsel-parallel scan draining behind a Volcano facade.
//
// Open() spawns N workers that pull morsels from the wrapped ScanOperator's
// shared cursor (scan.h) and push filled batches into a bounded queue;
// Next() pops batches for the single-threaded plan above. The operators
// above an exchange never see a thread — parallelism stops at the queue.
//
// Stats discipline: workers accumulate FilterStats/OperatorStats deltas in
// their private WorkerState; Close() joins every worker and merges the
// deltas into the shared FilterRuntime exactly once, so the merged
// probed/passed counts equal the single-threaded run's (the observed-lambda
// numbers of Section 6.3 stay exact under parallelism). Batch order in the
// queue is nondeterministic, but every consumer above (joins, aggregates,
// the result checksum) is order-independent, so query results are
// byte-identical to threads=1.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/exec/exec_config.h"
#include "src/exec/scan.h"

namespace bqo {

class ExchangeOperator final : public PhysicalOperator {
 public:
  ExchangeOperator(std::unique_ptr<ScanOperator> child, ExecConfig config,
                   std::string label);
  ~ExchangeOperator() override;

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::vector<PhysicalOperator*> children() override {
    return {child_.get()};
  }

 private:
  void WorkerMain(int worker_index);
  /// Join workers and merge their stats; idempotent.
  void Shutdown();

  std::unique_ptr<ScanOperator> child_;
  ExecConfig config_;

  std::vector<std::thread> threads_;
  std::vector<ScanOperator::WorkerState> workers_;

  // Bounded MPSC queue. `ready_` holds produced batches; `recycled_` holds
  // consumed batches whose flat storage workers reuse, so steady-state
  // operation allocates nothing.
  std::mutex mu_;
  std::condition_variable can_push_;  ///< signaled when ready_ drains/aborts
  std::condition_variable can_pop_;   ///< signaled on push / last producer
  std::deque<Batch> ready_;
  std::vector<Batch> recycled_;
  size_t capacity_ = 0;
  int active_producers_ = 0;
  bool abort_ = false;
};

}  // namespace bqo

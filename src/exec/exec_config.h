// Execution-engine configuration: the knobs that select between the
// single-threaded Volcano pipeline and morsel-parallel pipeline execution.
//
// Threading model: whole pipelines go wide (src/exec/pipeline.h). The
// selection vector a scan computes at Open() is split into fixed-size
// morsels claimed off an atomic cursor; each worker runs the full
// hash -> MayContainBatch -> gather -> join-probe chain thread-locally.
// Hash-join builds drain their build pipeline with N workers reassembled
// in canonical order, and the topmost probe chain feeds the aggregate
// through a bounded queue (src/exec/exchange.h). Bitvector filters and
// join tables are read-only once built, so probing needs no locks; the
// mutable counters (FilterStats, OperatorStats) are accumulated per worker
// and merged once so observed-selectivity numbers stay exact (metrics.h).
#pragma once

#include <cstdlib>
#include <thread>

namespace bqo {

struct ExecConfig {
  /// Pipeline worker threads. 1 = the single-threaded operator pipeline,
  /// bit-for-bit (no exchange operator is compiled in). 0 = one worker per
  /// hardware thread. >1 = that many workers per pipeline (build drains and
  /// the top exchange alike).
  int threads = 1;

  /// Rows of a scan's selection vector claimed per atomic cursor bump.
  /// Large enough to amortize the claim, small enough that workers finish
  /// within a few morsels of each other at the tail.
  int morsel_rows = 16384;

  /// Bounded-queue depth (in batches) between the exchange's pipeline
  /// workers and the consuming aggregate. 0 = 2 batches per worker.
  int queue_batches = 0;

  int ResolvedThreads() const {
    int n = threads;
    if (n == 0) n = static_cast<int>(std::thread::hardware_concurrency());
    return n < 1 ? 1 : n;
  }

  int ResolvedQueueBatches() const {
    const int n = queue_batches > 0 ? queue_batches : 2 * ResolvedThreads();
    return n < 2 ? 2 : n;
  }
};

/// \brief ExecConfig from the environment (BQO_THREADS, BQO_MORSEL_ROWS) —
/// how the workload runner and the bench binaries plumb the knob in.
inline ExecConfig ExecConfigFromEnv() {
  ExecConfig config;
  if (const char* t = std::getenv("BQO_THREADS")) {
    config.threads = std::atoi(t);
    if (config.threads < 0) config.threads = 1;
  }
  if (const char* m = std::getenv("BQO_MORSEL_ROWS")) {
    const int rows = std::atoi(m);
    if (rows > 0) config.morsel_rows = rows;
  }
  return config;
}

}  // namespace bqo

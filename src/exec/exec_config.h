// Execution-engine configuration: the knobs that select between the
// single-threaded Volcano pipeline and morsel-parallel pipeline execution.
//
// Threading model: whole pipelines go wide (src/exec/pipeline.h). The
// selection vector a scan computes at Open() is split into fixed-size
// morsels claimed off an atomic cursor; each worker runs the full
// hash -> MayContainBatch -> gather -> join-probe chain thread-locally.
// Hash-join builds drain their build pipeline with N workers reassembled
// in canonical order, and the topmost probe chain feeds the aggregate
// through a bounded queue (src/exec/exchange.h). Bitvector filters and
// join tables are read-only once built, so probing needs no locks; the
// mutable counters (FilterStats, OperatorStats) are accumulated per worker
// and merged once so observed-selectivity numbers stay exact (metrics.h).
//
// Two distinct knobs control parallelism (see src/server/worker_pool.h and
// docs/ARCHITECTURE.md "Serving layer"):
//
//  * `threads` — per-query logical workers: how many worker *states* a
//    query's drains are decomposed into. Results and merged stats are
//    invariant in it (threads == 1 compiles the exact single-threaded
//    plan).
//  * `pool_threads` — process-wide OS threads in the shared WorkerPool
//    that actually run those workers' tasks, sized once at first use.
//    Results are invariant in it too; it only caps how much of the machine
//    the engine uses across *all* concurrently running queries.
#pragma once

#include <cstdlib>
#include <thread>

namespace bqo {

struct ExecConfig {
  /// Pipeline worker threads. 1 = the single-threaded operator pipeline,
  /// bit-for-bit (no exchange operator is compiled in). 0 = one worker per
  /// hardware thread. >1 = that many workers per pipeline (build drains and
  /// the top exchange alike). These are *logical* workers — their tasks run
  /// on the shared WorkerPool (src/server/worker_pool.h).
  int threads = 1;

  /// Rows of a scan's selection vector claimed per atomic cursor bump.
  /// Large enough to amortize the claim, small enough that workers finish
  /// within a few morsels of each other at the tail.
  int morsel_rows = 16384;

  /// Bounded-queue depth (in batches) between the exchange's pipeline
  /// workers and the consuming aggregate. 0 = 2 batches per worker.
  int queue_batches = 0;

  /// OS worker threads in the process-wide WorkerPool. 0 = one per
  /// hardware thread. NOTE: the global pool is sized once, on first use,
  /// from the *environment* (WorkerPool::Global reads
  /// ExecConfigFromEnv().ResolvedPoolThreads(), i.e. BQO_POOL_THREADS) —
  /// setting this field programmatically does not resize it; tests and
  /// embedders that need an explicit size call WorkerPool::ResetGlobal
  /// before the first drain.
  int pool_threads = 0;

  int ResolvedThreads() const {
    int n = threads;
    if (n == 0) n = static_cast<int>(std::thread::hardware_concurrency());
    return n < 1 ? 1 : n;
  }

  int ResolvedQueueBatches() const {
    const int n = queue_batches > 0 ? queue_batches : 2 * ResolvedThreads();
    return n < 2 ? 2 : n;
  }

  int ResolvedPoolThreads() const {
    int n = pool_threads;
    if (n == 0) n = static_cast<int>(std::thread::hardware_concurrency());
    return n < 1 ? 1 : n;
  }
};

/// \brief ExecConfig from the environment (BQO_THREADS, BQO_MORSEL_ROWS,
/// BQO_QUEUE_BATCHES, BQO_POOL_THREADS) — how the workload runner, the
/// bench binaries, and WorkerPool::Global plumb the knobs in. The knob
/// table lives in README.md's quickstart section.
inline ExecConfig ExecConfigFromEnv() {
  ExecConfig config;
  if (const char* t = std::getenv("BQO_THREADS")) {
    config.threads = std::atoi(t);
    if (config.threads < 0) config.threads = 1;
  }
  if (const char* m = std::getenv("BQO_MORSEL_ROWS")) {
    const int rows = std::atoi(m);
    if (rows > 0) config.morsel_rows = rows;
  }
  if (const char* q = std::getenv("BQO_QUEUE_BATCHES")) {
    const int batches = std::atoi(q);
    if (batches > 0) config.queue_batches = batches;
  }
  if (const char* p = std::getenv("BQO_POOL_THREADS")) {
    const int n = std::atoi(p);
    if (n > 0) config.pool_threads = n;
  }
  return config;
}

}  // namespace bqo

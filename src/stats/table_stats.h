// Table and column statistics, and the statistics catalog.
//
// Statistics are exact where cheap (row counts, per-column distinct counts
// computed once per table and cached) — the paper's evaluation uses SQL
// Server's estimator, which gets single-table numbers approximately right;
// modeling estimation *error* is out of scope for reproducing its claims.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>

#include "src/storage/catalog.h"

namespace bqo {

struct ColumnStatsData {
  int64_t distinct = 0;
  int64_t min_value = 0;  ///< INT64 columns only
  int64_t max_value = 0;  ///< INT64 columns only
};

struct TableStatsData {
  int64_t rows = 0;
  std::unordered_map<std::string, ColumnStatsData> columns;
};

/// \brief Lazily computed, cached statistics for every table in a catalog.
///
/// Thread-safe for concurrent Get/Distinct (the QueryService optimizes
/// queries from many client threads against one shared StatsCatalog);
/// returned references stay valid across concurrent inserts because the
/// cache is node-based. Invalidate() must not race with readers — the
/// serving layer serializes it against in-flight optimizations
/// (QueryService::InvalidateCache).
class StatsCatalog {
 public:
  explicit StatsCatalog(const Catalog* catalog) : catalog_(catalog) {}

  /// \brief Statistics for `table`; computed on first request.
  const TableStatsData& Get(const std::string& table);

  /// \brief Distinct count of `column` in `table` (0 if unknown).
  double Distinct(const std::string& table, const std::string& column);

  /// \brief Drop every cached entry (table data or schema changed). See
  /// the class comment for the required quiescence.
  void Invalidate();

 private:
  const Catalog* catalog_;
  std::mutex mu_;
  std::unordered_map<std::string, TableStatsData> cache_;
};

}  // namespace bqo

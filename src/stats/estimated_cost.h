// Statistics-based implementation of the Cout model (Section 3.3).
//
// This is the cardinality oracle the optimizers plan with. It walks the
// annotated plan in execution order (build sides before probe sides, so the
// contents of every bitvector filter are estimated before the subtree it
// filters), estimating:
//  * base cardinalities after local predicates (exact, see AttachStatistics),
//  * join cardinalities via the classic distinct-value containment formula
//      |B JOIN P| = |B| * |P| / max(d_B(k), d_P(k)),
//  * semi-join (bitvector) retention rho = d_source(k) / d_target(k) with
//    per-column distinct counts propagated through joins and filters
//    (so a join after a fully reducing filter is not double-counted),
//  * optional false-positive leakage: retention' = rho + (1 - rho) * fp.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "src/plan/cout.h"
#include "src/stats/table_stats.h"

namespace bqo {

/// \brief Compute filtered_rows for every relation of `graph` by evaluating
/// local predicates against the base tables (exact single-table
/// cardinalities; see the module comment in table_stats.h).
void AttachStatistics(JoinGraph* graph);

/// \brief AttachStatistics for a single relation — what a plan-shape cache
/// hit re-estimates: only the relations whose constant slots moved, instead
/// of re-evaluating every predicate of the query (src/server/plan_cache.h).
void AttachRelationStatistics(JoinGraph* graph, int rel);

class EstimatedCoutModel : public CoutModel {
 public:
  /// \param stats     statistics provider (not owned)
  /// \param fp_rate   assumed false-positive rate of bitvector filters
  ///                  (0 models the paper's "no false positives" analysis)
  explicit EstimatedCoutModel(StatsCatalog* stats, double fp_rate = 0.0)
      : stats_(stats), fp_rate_(fp_rate) {}

  CoutBreakdown Compute(const Plan& plan) override;

 private:
  struct NodeEst {
    double card = 0;
    /// Estimated distinct count per bound column of interest.
    std::map<std::pair<int, std::string>, double> distinct;
  };

  /// Per-filter estimated source state (card + composite key distinct).
  struct FilterEst {
    double source_card = 0;
    double key_distinct = 0;
  };

  NodeEst EvalNode(const Plan& plan, const PlanNode& node,
                   std::vector<FilterEst>* filter_est, CoutBreakdown* out);

  double BaseDistinct(const Plan& plan, const BoundColumn& col) const;

  /// Composite-key distinct of `cols` in a node estimate: the product of
  /// per-column distincts capped by the node cardinality.
  static double CompositeDistinct(
      const NodeEst& est, const std::vector<BoundColumn>& cols);

  void ApplyFilters(const Plan& plan, const PlanNode& node, NodeEst* est,
                    std::vector<FilterEst>* filter_est, CoutBreakdown* out);

  StatsCatalog* stats_;
  double fp_rate_;
};

}  // namespace bqo

#include "src/stats/estimated_cost.h"

#include <algorithm>
#include <cmath>

namespace bqo {

void AttachStatistics(JoinGraph* graph) {
  for (int r = 0; r < graph->num_relations(); ++r) {
    AttachRelationStatistics(graph, r);
  }
}

void AttachRelationStatistics(JoinGraph* graph, int rel) {
  RelationRef& ref = graph->relation(rel);
  BQO_CHECK_MSG(ref.table != nullptr,
                "AttachStatistics requires bound tables");
  ref.base_rows = static_cast<double>(ref.table->num_rows());
  ref.filtered_rows = static_cast<double>(
      EvaluatePredicate(*ref.table, ref.predicate).size());
}

double EstimatedCoutModel::BaseDistinct(const Plan& plan,
                                        const BoundColumn& col) const {
  const RelationRef& rel = plan.graph->relation(col.rel);
  double d = stats_->Distinct(rel.table_name, col.column);
  if (d <= 0) d = rel.base_rows;
  if (d <= 0) return 1.0;
  // Yao's formula: selecting `filtered` of `base` rows from a column with d
  // distinct values (base/d rows per value) keeps
  //   d * (1 - (1 - sel)^(base/d))
  // distinct values. Degenerates to d*sel for key columns and to ~d for
  // heavily repeated FK columns — Cardenas' with-replacement formula would
  // wrongly shrink unfiltered keys.
  const double base = std::max(rel.base_rows, 1.0);
  const double sel = std::min(1.0, rel.filtered_rows / base);
  const double rows_per_value = base / d;
  const double reduced = d * (1.0 - std::pow(1.0 - sel, rows_per_value));
  return std::max(1.0,
                  std::min({d, reduced, std::max(rel.filtered_rows, 1.0)}));
}

double EstimatedCoutModel::CompositeDistinct(
    const NodeEst& est, const std::vector<BoundColumn>& cols) {
  double d = 1.0;
  for (const BoundColumn& c : cols) {
    auto it = est.distinct.find({c.rel, c.column});
    d *= (it == est.distinct.end()) ? std::max(est.card, 1.0) : it->second;
  }
  return std::max(1.0, std::min(d, std::max(est.card, 1.0)));
}

void EstimatedCoutModel::ApplyFilters(const Plan& plan, const PlanNode& node,
                                      NodeEst* est,
                                      std::vector<FilterEst>* filter_est,
                                      CoutBreakdown* out) {
  for (int fid : node.applied_filters) {
    const PlanFilter& f = plan.filters[static_cast<size_t>(fid)];
    if (f.pruned) continue;
    const FilterEst& fe = (*filter_est)[static_cast<size_t>(fid)];
    BQO_CHECK_MSG(fe.key_distinct > 0,
                  "filter source estimated after its application site");
    const double target_d = CompositeDistinct(*est, f.probe_cols);
    const double rho = std::min(1.0, fe.key_distinct / target_d);
    const double rho_eff = rho + (1.0 - rho) * fp_rate_;
    out->filter_lambda[static_cast<size_t>(fid)] = 1.0 - rho_eff;
    est->card *= rho_eff;
    for (const BoundColumn& c : f.probe_cols) {
      auto it = est->distinct.find({c.rel, c.column});
      if (it != est->distinct.end()) {
        it->second = std::max(1.0, std::min(it->second, fe.key_distinct));
      }
    }
    // Every distinct count is capped by the (reduced) cardinality.
    for (auto& [_, d] : est->distinct) {
      d = std::max(1.0, std::min(d, std::max(est->card, 1.0)));
    }
  }
}

EstimatedCoutModel::NodeEst EstimatedCoutModel::EvalNode(
    const Plan& plan, const PlanNode& node,
    std::vector<FilterEst>* filter_est, CoutBreakdown* out) {
  NodeEst est;
  if (node.kind == PlanNode::Kind::kLeaf) {
    const RelationRef& rel = plan.graph->relation(node.relation);
    est.card = rel.filtered_rows;
    // Seed distinct counts for every join column of this relation.
    for (const JoinEdge& e : plan.graph->edges()) {
      if (e.left == node.relation) {
        for (const auto& c : e.left_cols) {
          BoundColumn bc{node.relation, c};
          est.distinct[{bc.rel, bc.column}] = BaseDistinct(plan, bc);
        }
      }
      if (e.right == node.relation) {
        for (const auto& c : e.right_cols) {
          BoundColumn bc{node.relation, c};
          est.distinct[{bc.rel, bc.column}] = BaseDistinct(plan, bc);
        }
      }
    }
    for (auto& [_, d] : est.distinct) {
      d = std::max(1.0, std::min(d, std::max(est.card, 1.0)));
    }
    out->node_prefilter[static_cast<size_t>(node.id)] = est.card;
    ApplyFilters(plan, node, &est, filter_est, out);
    out->node_output[static_cast<size_t>(node.id)] = est.card;
    out->total += est.card;
    return est;
  }

  // Execution order: build first, then register the created filter's source
  // estimate, then the probe subtree (which may apply that filter).
  NodeEst b = EvalNode(plan, *node.build, filter_est, out);
  if (node.created_filter >= 0) {
    const PlanFilter& f =
        plan.filters[static_cast<size_t>(node.created_filter)];
    FilterEst fe;
    fe.source_card = b.card;
    fe.key_distinct = CompositeDistinct(b, f.build_cols);
    (*filter_est)[static_cast<size_t>(node.created_filter)] = fe;
  }
  NodeEst p = EvalNode(plan, *node.probe, filter_est, out);

  // Classic containment formula per applied edge.
  est.card = b.card * p.card;
  for (int eid : node.edge_ids) {
    const JoinEdge& e = plan.graph->edge(eid);
    const bool left_in_build = RelSetContains(node.build->rel_set, e.left);
    std::vector<BoundColumn> bcols, pcols;
    for (size_t i = 0; i < e.left_cols.size(); ++i) {
      BoundColumn l{e.left, e.left_cols[i]};
      BoundColumn r{e.right, e.right_cols[i]};
      bcols.push_back(left_in_build ? l : r);
      pcols.push_back(left_in_build ? r : l);
    }
    const double d_b = CompositeDistinct(b, bcols);
    const double d_p = CompositeDistinct(p, pcols);
    est.card /= std::max(d_b, d_p);
  }

  // Merge distinct maps; join columns take the min of the two sides.
  est.distinct = b.distinct;
  for (const auto& [k, d] : p.distinct) {
    auto it = est.distinct.find(k);
    if (it == est.distinct.end()) {
      est.distinct[k] = d;
    } else {
      it->second = std::min(it->second, d);
    }
  }
  for (int eid : node.edge_ids) {
    const JoinEdge& e = plan.graph->edge(eid);
    for (size_t i = 0; i < e.left_cols.size(); ++i) {
      auto li = est.distinct.find({e.left, e.left_cols[i]});
      auto ri = est.distinct.find({e.right, e.right_cols[i]});
      if (li != est.distinct.end() && ri != est.distinct.end()) {
        const double m = std::min(li->second, ri->second);
        li->second = m;
        ri->second = m;
      }
    }
  }
  for (auto& [_, d] : est.distinct) {
    d = std::max(1.0, std::min(d, std::max(est.card, 1.0)));
  }

  out->node_prefilter[static_cast<size_t>(node.id)] = est.card;
  ApplyFilters(plan, node, &est, filter_est, out);
  out->node_output[static_cast<size_t>(node.id)] = est.card;
  out->total += est.card;
  return est;
}

CoutBreakdown EstimatedCoutModel::Compute(const Plan& plan) {
  BQO_CHECK(plan.root != nullptr && !plan.nodes.empty());
  CoutBreakdown out;
  out.node_output.assign(plan.nodes.size(), 0.0);
  out.node_prefilter.assign(plan.nodes.size(), 0.0);
  out.filter_lambda.assign(plan.filters.size(), 0.0);
  std::vector<FilterEst> filter_est(plan.filters.size());
  EvalNode(plan, *plan.root, &filter_est, &out);
  return out;
}

}  // namespace bqo

#include "src/stats/table_stats.h"

#include <algorithm>

namespace bqo {

const TableStatsData& StatsCatalog::Get(const std::string& table) {
  // One lock spans lookup and computation: concurrent optimizers asking
  // for the same large table must not compute its distinct counts twice
  // (and unordered_map mutation is unsynchronized). Entries are
  // node-based, so the returned reference survives later inserts.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(table);
  if (it != cache_.end()) return it->second;

  TableStatsData stats;
  auto result = catalog_->GetTable(table);
  BQO_CHECK_MSG(result.ok(), "StatsCatalog: unknown table");
  const Table* t = result.value();
  stats.rows = t->num_rows();
  for (int c = 0; c < t->num_columns(); ++c) {
    const Column& col = t->column(c);
    ColumnStatsData cs;
    cs.distinct = col.CountDistinct();
    if (col.type() == DataType::kInt64 && t->num_rows() > 0) {
      const int64_t* data = col.int_data();
      auto [mn, mx] = std::minmax_element(data, data + t->num_rows());
      cs.min_value = *mn;
      cs.max_value = *mx;
    }
    stats.columns.emplace(col.name(), cs);
  }
  return cache_.emplace(table, std::move(stats)).first->second;
}

double StatsCatalog::Distinct(const std::string& table,
                              const std::string& column) {
  const TableStatsData& stats = Get(table);
  auto it = stats.columns.find(column);
  return it == stats.columns.end() ? 0.0
                                   : static_cast<double>(it->second.distinct);
}

void StatsCatalog::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace bqo

#include "src/plan/enumerate.h"

#include <algorithm>

#include "src/common/macros.h"

namespace bqo {

namespace {

void EnumerateRec(const JoinGraph& graph, std::vector<int>* order,
                  RelSet used, size_t limit,
                  std::vector<std::vector<int>>* out, size_t* count,
                  bool collect) {
  if (*count >= limit) return;
  if (static_cast<int>(order->size()) == graph.num_relations()) {
    ++*count;
    if (collect) out->push_back(*order);
    return;
  }
  for (int rel = 0; rel < graph.num_relations(); ++rel) {
    if (RelSetContains(used, rel)) continue;
    // The next relation must join something already in the prefix
    // (no cross products). The first relation is unconstrained.
    if (!order->empty() && graph.EdgesBetween(used, rel).empty()) continue;
    order->push_back(rel);
    EnumerateRec(graph, order, used | RelBit(rel), limit, out, count,
                 collect);
    order->pop_back();
    if (*count >= limit) return;
  }
}

}  // namespace

std::vector<std::vector<int>> EnumerateRightDeepOrders(const JoinGraph& graph,
                                                       size_t limit) {
  std::vector<std::vector<int>> out;
  std::vector<int> order;
  size_t count = 0;
  EnumerateRec(graph, &order, 0, limit, &out, &count, /*collect=*/true);
  return out;
}

size_t CountRightDeepOrders(const JoinGraph& graph, size_t limit) {
  std::vector<std::vector<int>> unused;
  std::vector<int> order;
  size_t count = 0;
  EnumerateRec(graph, &order, 0, limit, &unused, &count, /*collect=*/false);
  return count;
}

int SnowflakeShape::TotalRelations() const {
  int n = 1;
  for (const auto& b : branches) n += static_cast<int>(b.size());
  return n;
}

std::vector<std::vector<int>> StarCandidateOrders(const JoinGraph& graph,
                                                  int fact) {
  std::vector<int> dims;
  for (int r = 0; r < graph.num_relations(); ++r) {
    if (r != fact) dims.push_back(r);
  }
  std::vector<std::vector<int>> out;
  // T(R0, R1, ..., Rn): fact is the right-most leaf.
  {
    std::vector<int> order{fact};
    order.insert(order.end(), dims.begin(), dims.end());
    out.push_back(std::move(order));
  }
  // T(Rk, R0, rest): dimension Rk is the right-most leaf, fact is next.
  for (int k : dims) {
    std::vector<int> order{k, fact};
    for (int d : dims) {
      if (d != k) order.push_back(d);
    }
    out.push_back(std::move(order));
  }
  return out;
}

std::vector<std::vector<int>> BranchCandidateOrders(
    const std::vector<int>& chain) {
  BQO_CHECK(chain.size() >= 2);
  const int n = static_cast<int>(chain.size()) - 1;
  std::vector<std::vector<int>> out;
  // T(Rn, Rn-1, ..., R0).
  {
    std::vector<int> order(chain.rbegin(), chain.rend());
    out.push_back(std::move(order));
  }
  // T(Rk, Rk+1, ..., Rn, Rk-1, Rk-2, ..., R0) for 0 <= k <= n-1.
  for (int k = 0; k <= n - 1; ++k) {
    std::vector<int> order;
    for (int j = k; j <= n; ++j) order.push_back(chain[static_cast<size_t>(j)]);
    for (int j = k - 1; j >= 0; --j) {
      order.push_back(chain[static_cast<size_t>(j)]);
    }
    out.push_back(std::move(order));
  }
  return out;
}

std::vector<std::vector<int>> SnowflakeCandidateOrders(
    const SnowflakeShape& shape) {
  BQO_CHECK(shape.fact >= 0);
  std::vector<std::vector<int>> out;

  auto append_branch_canonical = [](std::vector<int>* order,
                                    const std::vector<int>& branch) {
    // Fact-adjacent relation first: R_{i,1}, R_{i,2}, ..., R_{i,ni}. Any
    // partial order works (Lemma 8); this one is canonical.
    order->insert(order->end(), branch.begin(), branch.end());
  };

  // Candidate 1: fact right-most, branches in canonical partial order.
  {
    std::vector<int> order{shape.fact};
    for (const auto& b : shape.branches) append_branch_canonical(&order, b);
    out.push_back(std::move(order));
  }

  // For each branch i and start position k (1-based within the branch):
  // T(R_{i,k}, R_{i,k+1}, ..., R_{i,ni}, R_{i,k-1}, ..., R_{i,1}, R0, rest).
  for (size_t i = 0; i < shape.branches.size(); ++i) {
    const std::vector<int>& branch = shape.branches[i];
    const int ni = static_cast<int>(branch.size());
    for (int k = 1; k <= ni; ++k) {
      std::vector<int> order;
      for (int j = k; j <= ni; ++j) {
        order.push_back(branch[static_cast<size_t>(j - 1)]);
      }
      for (int j = k - 1; j >= 1; --j) {
        order.push_back(branch[static_cast<size_t>(j - 1)]);
      }
      order.push_back(shape.fact);
      for (size_t o = 0; o < shape.branches.size(); ++o) {
        if (o != i) append_branch_canonical(&order, shape.branches[o]);
      }
      out.push_back(std::move(order));
    }
  }
  BQO_CHECK_EQ(static_cast<int>(out.size()), shape.TotalRelations());
  return out;
}

}  // namespace bqo

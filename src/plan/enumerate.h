// Plan-space enumeration.
//
// Two kinds of enumerators:
//  * EnumerateRightDeepOrders: the full space of right deep trees without
//    cross products (exponential; used to validate the theorems and to
//    measure the "original complexity" column of Table 2).
//  * Candidate generators for star / branch / snowflake queries: the linear
//    candidate sets of Theorems 4.1, 5.3 and 5.1. The theorems state that
//    (under no-false-positive filters and PKFK joins) these n+1 plans
//    contain a plan of globally minimal Cout.
#pragma once

#include <vector>

#include "src/plan/join_graph.h"

namespace bqo {

/// \brief All permutations of the graph's relations in which every prefix
/// is connected (i.e. all right deep trees without cross products). Stops
/// after `limit` orders.
std::vector<std::vector<int>> EnumerateRightDeepOrders(
    const JoinGraph& graph, size_t limit = static_cast<size_t>(-1));

/// \brief Count right deep trees without cross products (up to `limit`).
size_t CountRightDeepOrders(const JoinGraph& graph,
                            size_t limit = static_cast<size_t>(-1));

/// \brief Describes a snowflake query (Definition 2). `branches[i]` lists
/// the branch's relations starting at the one adjacent to the fact table:
/// R_{i,1}, R_{i,2}, ..., R_{i,ni}. A star query is the special case where
/// every branch has length 1.
struct SnowflakeShape {
  int fact = -1;
  std::vector<std::vector<int>> branches;

  int TotalRelations() const;
};

/// \brief Theorem 4.1 candidate orders for a star query with fact table
/// `fact`: T(R0, R1..Rn) plus T(Rk, R0, rest) for each dimension Rk.
/// Exactly n+1 orders where n = number of dimensions.
std::vector<std::vector<int>> StarCandidateOrders(const JoinGraph& graph,
                                                  int fact);

/// \brief Theorem 5.3 candidate orders for a branch query. `chain` is
/// R0, R1, ..., Rn with R0 -> R1 -> ... -> Rn (chain[0] is the "fact" end).
/// Returns T(Rn, Rn-1, ..., R0) plus T(Rk, Rk+1..Rn, Rk-1..R0) for
/// 0 <= k <= n-1: exactly n+1 orders.
std::vector<std::vector<int>> BranchCandidateOrders(
    const std::vector<int>& chain);

/// \brief Theorem 5.1 candidate orders for a snowflake query: the
/// fact-rightmost partially-ordered plan, plus for every branch i and every
/// within-branch start position k the plan that joins that branch suffix
/// first, then the fact, then the remaining branches. Exactly n+1 orders
/// where n = total number of dimension relations.
std::vector<std::vector<int>> SnowflakeCandidateOrders(
    const SnowflakeShape& shape);

}  // namespace bqo

#include "src/plan/predicate_shape.h"

#include <utility>

#include "src/common/string_util.h"

namespace bqo {

namespace {

const char* ShapeOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* SlotMarker(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "?i";
    case DataType::kDouble:
      return "?d";
    case DataType::kString:
      return "?s";
  }
  return "?";
}

/// One walk serves both views: `shape` and/or `constants` may be null.
void WalkShape(const Expr& expr, std::string* shape,
               std::vector<Value>* constants) {
  auto emit = [&](const char* text) {
    if (shape != nullptr) *shape += text;
  };
  auto slot = [&](Value v) {
    emit(SlotMarker(v.type()));
    if (constants != nullptr) constants->push_back(std::move(v));
  };
  switch (expr.kind) {
    case ExprKind::kTrue:
      emit("TRUE");
      return;
    case ExprKind::kCompare:
      if (shape != nullptr) {
        *shape += expr.column + " " + ShapeOpName(expr.op) + " ";
      }
      slot(expr.literal);
      return;
    case ExprKind::kBetween:
      if (shape != nullptr) *shape += expr.column + " BETWEEN ";
      slot(Value(expr.lo));
      emit(" AND ");
      slot(Value(expr.hi));
      return;
    case ExprKind::kInList:
      // List length is structure (it changes the evaluated set size and
      // the signature of the rebind), each element is a slot.
      if (shape != nullptr) *shape += expr.column + " IN(";
      for (size_t i = 0; i < expr.in_values.size(); ++i) {
        if (i > 0) emit(",");
        slot(Value(expr.in_values[i]));
      }
      emit(")");
      return;
    case ExprKind::kStringContains:
      if (shape != nullptr) *shape += expr.column + " LIKE %";
      slot(Value(expr.needle));
      emit("%");
      return;
    case ExprKind::kModLess:
      // The divisor defines the predicate family (which residues exist) —
      // structure. The bound sweeps selectivity — a slot (the paper's
      // `c_customer_sk % 1000 < @P` template, Figure 7).
      if (shape != nullptr) {
        *shape += StringFormat("%s %% %lld < ", expr.column.c_str(),
                               static_cast<long long>(expr.mod_divisor));
      }
      slot(Value(expr.mod_bound));
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (size_t c = 0; c < expr.children.size(); ++c) {
        if (c > 0) emit(expr.kind == ExprKind::kAnd ? " AND " : " OR ");
        emit("(");
        WalkShape(*expr.children[c], shape, constants);
        emit(")");
      }
      return;
    case ExprKind::kNot:
      emit("NOT (");
      WalkShape(*expr.children[0], shape, constants);
      emit(")");
      return;
  }
}

/// Rebuild in the same walk order, consuming `constants` from `cursor`.
ExprPtr RebindRec(const Expr& structure, const std::vector<Value>& constants,
                  size_t* cursor) {
  auto take = [&]() -> const Value& {
    BQO_CHECK_MSG(*cursor < constants.size(),
                  "rebind: constant slot table too short for shape");
    return constants[(*cursor)++];
  };
  switch (structure.kind) {
    case ExprKind::kTrue:
      return TruePred();
    case ExprKind::kCompare:
      return Compare(structure.column, structure.op, take());
    case ExprKind::kBetween: {
      const int64_t lo = take().AsInt64();
      const int64_t hi = take().AsInt64();
      return Between(structure.column, lo, hi);
    }
    case ExprKind::kInList: {
      std::vector<int64_t> values;
      values.reserve(structure.in_values.size());
      for (size_t i = 0; i < structure.in_values.size(); ++i) {
        values.push_back(take().AsInt64());
      }
      return In(structure.column, std::move(values));
    }
    case ExprKind::kStringContains:
      return LikeContains(structure.column, take().AsString());
    case ExprKind::kModLess: {
      const int64_t bound = take().AsInt64();
      return ModLess(structure.column, structure.mod_divisor, bound);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> children;
      children.reserve(structure.children.size());
      for (const ExprPtr& c : structure.children) {
        children.push_back(RebindRec(*c, constants, cursor));
      }
      return structure.kind == ExprKind::kAnd ? And(std::move(children))
                                              : Or(std::move(children));
    }
    case ExprKind::kNot:
      return Not(RebindRec(*structure.children[0], constants, cursor));
  }
  return TruePred();
}

}  // namespace

std::string PredicateShape(const ExprPtr& expr) {
  if (expr == nullptr) return "TRUE";
  std::string shape;
  WalkShape(*expr, &shape, nullptr);
  return shape;
}

std::vector<Value> CollectPredicateConstants(const ExprPtr& expr) {
  std::vector<Value> constants;
  if (expr != nullptr) WalkShape(*expr, nullptr, &constants);
  return constants;
}

ExprPtr RebindPredicateConstants(const ExprPtr& structure,
                                 const std::vector<Value>& constants) {
  if (structure == nullptr) {
    BQO_CHECK_MSG(constants.empty(), "rebind: constants for a null predicate");
    return nullptr;
  }
  size_t cursor = 0;
  ExprPtr rebound = RebindRec(*structure, constants, &cursor);
  BQO_CHECK_MSG(cursor == constants.size(),
                "rebind: constant slot table longer than shape");
  return rebound;
}

}  // namespace bqo

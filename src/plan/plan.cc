#include "src/plan/plan.h"

#include "src/common/string_util.h"

namespace bqo {

namespace {

void RenumberRec(PlanNode* node, int* next_id,
                 std::vector<PlanNode*>* nodes) {
  node->id = (*next_id)++;
  nodes->push_back(node);
  if (node->kind == PlanNode::Kind::kJoin) {
    RenumberRec(node->build.get(), next_id, nodes);
    RenumberRec(node->probe.get(), next_id, nodes);
  }
}

std::unique_ptr<PlanNode> CloneRec(const PlanNode& node) {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = node.kind;
  copy->id = node.id;
  copy->relation = node.relation;
  copy->edge_ids = node.edge_ids;
  copy->rel_set = node.rel_set;
  copy->applied_filters = node.applied_filters;
  copy->created_filter = node.created_filter;
  if (node.kind == PlanNode::Kind::kJoin) {
    copy->build = CloneRec(*node.build);
    copy->probe = CloneRec(*node.probe);
  }
  return copy;
}

bool ValidateRec(const PlanNode& node) {
  if (node.kind == PlanNode::Kind::kLeaf) {
    return node.relation >= 0 && node.rel_set == RelBit(node.relation);
  }
  if (node.build == nullptr || node.probe == nullptr) return false;
  if (node.edge_ids.empty()) return false;  // cross product
  if ((node.build->rel_set & node.probe->rel_set) != 0) return false;
  if ((node.build->rel_set | node.probe->rel_set) != node.rel_set) {
    return false;
  }
  return ValidateRec(*node.build) && ValidateRec(*node.probe);
}

void SignatureRec(const PlanNode& node, const JoinGraph& graph,
                  std::string* out) {
  if (node.kind == PlanNode::Kind::kLeaf) {
    *out += graph.relation(node.relation).alias;
    return;
  }
  *out += "(";
  SignatureRec(*node.build, graph, out);
  *out += " HJ ";
  SignatureRec(*node.probe, graph, out);
  *out += ")";
}

void ToStringRec(const PlanNode& node, const Plan& plan, int indent,
                 std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  auto filter_note = [&]() {
    std::string note;
    for (int fid : node.applied_filters) {
      const PlanFilter& f = plan.filters[static_cast<size_t>(fid)];
      note += StringFormat("  <- BV#%d%s", f.id, f.pruned ? "(pruned)" : "");
    }
    return note;
  };
  if (node.kind == PlanNode::Kind::kLeaf) {
    const RelationRef& r = plan.graph->relation(node.relation);
    *out += pad + "Scan " + r.alias;
    if (r.predicate != nullptr) *out += " [" + r.predicate->ToString() + "]";
    *out += filter_note() + "\n";
    return;
  }
  *out += pad + StringFormat("HashJoin#%d", node.id);
  if (node.created_filter >= 0) {
    *out += StringFormat("  creates BV#%d", node.created_filter);
  }
  *out += filter_note() + "\n";
  *out += pad + "  build:\n";
  ToStringRec(*node.build, plan, indent + 2, out);
  *out += pad + "  probe:\n";
  ToStringRec(*node.probe, plan, indent + 2, out);
}

void RightDeepOrderRec(const PlanNode& node, std::vector<int>* order) {
  if (node.kind == PlanNode::Kind::kLeaf) {
    order->push_back(node.relation);
    return;
  }
  RightDeepOrderRec(*node.probe, order);
  BQO_CHECK(node.build->IsLeaf());
  order->push_back(node.build->relation);
}

}  // namespace

void Plan::Renumber() {
  nodes.clear();
  int next_id = 0;
  BQO_CHECK(root != nullptr);
  RenumberRec(root.get(), &next_id, &nodes);
}

Plan Plan::Clone() const {
  Plan copy;
  copy.graph = graph;
  copy.filters = filters;
  if (root != nullptr) {
    copy.root = CloneRec(*root);
    copy.Renumber();
  }
  return copy;
}

std::unique_ptr<PlanNode> ClonePlanNode(const PlanNode& node) {
  return CloneRec(node);
}

int Plan::num_joins() const {
  int count = 0;
  for (const PlanNode* n : nodes) {
    if (n->kind == PlanNode::Kind::kJoin) ++count;
  }
  return count;
}

bool Plan::Validate() const {
  return root != nullptr && ValidateRec(*root);
}

bool Plan::IsRightDeep() const {
  const PlanNode* node = root.get();
  while (node != nullptr && node->kind == PlanNode::Kind::kJoin) {
    if (!node->build->IsLeaf()) return false;
    node = node->probe.get();
  }
  return node != nullptr;
}

std::vector<int> Plan::RightDeepOrder() const {
  BQO_CHECK(IsRightDeep());
  std::vector<int> order;
  RightDeepOrderRec(*root, &order);
  return order;
}

std::string Plan::ToString() const {
  std::string out;
  ToStringRec(*root, *this, 0, &out);
  for (const PlanFilter& f : filters) {
    std::vector<std::string> build_parts, probe_parts;
    for (const auto& c : f.build_cols) {
      build_parts.push_back(graph->relation(c.rel).alias + "." + c.column);
    }
    for (const auto& c : f.probe_cols) {
      probe_parts.push_back(graph->relation(c.rel).alias + "." + c.column);
    }
    out += StringFormat(
        "BV#%d: built at HJ#%d from (%s), probes (%s), applied at node %d%s\n",
        f.id, f.source_join, JoinStrings(build_parts, ", ").c_str(),
        JoinStrings(probe_parts, ", ").c_str(), f.applied_at,
        f.pruned ? " [pruned]" : "");
  }
  return out;
}

std::string Plan::Signature() const {
  std::string out;
  SignatureRec(*root, *graph, &out);
  return out;
}

std::unique_ptr<PlanNode> MakeLeaf(const JoinGraph& graph, int rel) {
  BQO_CHECK(rel >= 0 && rel < graph.num_relations());
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kLeaf;
  node->relation = rel;
  node->rel_set = RelBit(rel);
  return node;
}

std::unique_ptr<PlanNode> MakeJoin(const JoinGraph& graph,
                                   std::unique_ptr<PlanNode> build,
                                   std::unique_ptr<PlanNode> probe) {
  BQO_CHECK(build != nullptr && probe != nullptr);
  std::vector<int> edges =
      graph.EdgesBetweenSets(build->rel_set, probe->rel_set);
  if (edges.empty()) return nullptr;
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->rel_set = build->rel_set | probe->rel_set;
  node->edge_ids = std::move(edges);
  node->build = std::move(build);
  node->probe = std::move(probe);
  return node;
}

Plan BuildRightDeepPlan(const JoinGraph& graph,
                        const std::vector<int>& order) {
  BQO_CHECK(!order.empty());
  Plan plan;
  plan.graph = &graph;
  std::unique_ptr<PlanNode> node = MakeLeaf(graph, order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    auto joined =
        MakeJoin(graph, MakeLeaf(graph, order[i]), std::move(node));
    BQO_CHECK_MSG(joined != nullptr,
                  "BuildRightDeepPlan: order step is a cross product");
    node = std::move(joined);
  }
  plan.root = std::move(node);
  plan.Renumber();
  return plan;
}

bool IsValidRightDeepOrder(const JoinGraph& graph,
                           const std::vector<int>& order) {
  if (order.empty()) return false;
  RelSet set = RelBit(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    if (graph.EdgesBetween(set, order[i]).empty()) return false;
    set |= RelBit(order[i]);
  }
  return true;
}

}  // namespace bqo

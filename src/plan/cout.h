// The Cout cost function (Section 3.3, Equation 1): the cost of a plan is
// the sum of intermediate result sizes, where every cardinality reflects the
// bitvector filters applied at or below the operator.
//
//   Cout(T) = |T|                              if T is a base table
//   Cout(T) = |T| + Cout(T1) + Cout(T2)        if T = T1 JOIN T2
//
// Cardinalities come from a pluggable model: EstimatedCoutModel (statistics,
// drives the optimizer) or ExactCoutModel (mini-execution with ideal
// no-false-positive filters; drives the theorem-validation experiments).
#pragma once

#include <vector>

#include "src/plan/plan.h"

namespace bqo {

/// \brief Per-node/per-filter cardinality detail for one plan.
struct CoutBreakdown {
  /// Cout: sum over all nodes of output cardinality after applied filters.
  double total = 0;
  /// Output cardinality per node id (after that node's applied filters).
  std::vector<double> node_output;
  /// Output cardinality per node id before its applied filters (equal to
  /// node_output when no filter applies there).
  std::vector<double> node_prefilter;
  /// Per filter id: fraction of tuples eliminated at its application site
  /// (the lambda of Section 6.3); 0 for pruned filters.
  std::vector<double> filter_lambda;
};

/// \brief Interface implemented by the estimated and exact models.
class CoutModel {
 public:
  virtual ~CoutModel() = default;

  /// \brief Cost `plan`, honoring its filter annotations (pruned filters
  /// are ignored). The plan must have been Renumber()ed.
  virtual CoutBreakdown Compute(const Plan& plan) = 0;

  /// \brief Convenience: just the total.
  double Cout(const Plan& plan) { return Compute(plan).total; }
};

}  // namespace bqo

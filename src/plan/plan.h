// Physical join plans: binary trees of hash joins over leaf scans, plus the
// bitvector-filter annotations produced by Algorithm 1.
//
// The same annotated Plan object is consumed by the Cout models (costing)
// and by the execution engine (src/exec), so the costed plan and the
// executed plan cannot diverge.
//
// Conventions (matching the paper's Figure 1):
//  * Join.build is the side the hash table (and the bitvector filter) is
//    built from; Join.probe is streamed.
//  * A right deep tree T(X0, X1, ..., Xn) has X0 as the right-most leaf
//    (the deepest probe input) and Xn as the left-most leaf (the build side
//    of the root join).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/plan/join_graph.h"

namespace bqo {

/// \brief A column bound to a specific relation occurrence of the query.
struct BoundColumn {
  int rel = -1;
  std::string column;

  bool operator==(const BoundColumn& o) const {
    return rel == o.rel && column == o.column;
  }
};

/// \brief A bitvector filter instance placed in a plan by Algorithm 1.
struct PlanFilter {
  int id = -1;
  int source_join = -1;  ///< plan-node id of the hash join that builds it
  std::vector<BoundColumn> build_cols;  ///< key columns on the build side
  std::vector<BoundColumn> probe_cols;  ///< matching probe-side columns
  int applied_at = -1;   ///< plan-node id whose output it filters
  /// Estimated fraction of tuples it eliminates at the application site
  /// (lambda in Section 6.3); filled by the cost model, used for pruning.
  double estimated_lambda = 0.0;
  bool pruned = false;   ///< dropped by cost-based filtering (Section 6.3)
  /// Implementation picked from the optimizer's filter menu
  /// (SelectFilterImplementations in cost_model.h): a FilterKind value, or
  /// -1 when unset/pruned. Annotation only — the executor applies it iff
  /// FilterConfig::use_plan_kinds is set (int, not FilterKind, so plan.h
  /// stays independent of the filter layer).
  int chosen_kind = -1;
};

struct PlanNode {
  enum class Kind : uint8_t { kLeaf, kJoin };

  Kind kind = Kind::kLeaf;
  int id = -1;            ///< preorder index, assigned by Plan::Renumber()
  int relation = -1;      ///< kLeaf: index into the join graph
  std::unique_ptr<PlanNode> build;  ///< kJoin
  std::unique_ptr<PlanNode> probe;  ///< kJoin
  std::vector<int> edge_ids;        ///< kJoin: graph edges applied here
  RelSet rel_set = 0;     ///< relations under this subtree

  /// Filter ids (into Plan::filters) applied on top of this node's output.
  std::vector<int> applied_filters;
  /// kJoin: filter id created from this join's build side, or -1.
  int created_filter = -1;

  bool IsLeaf() const { return kind == Kind::kLeaf; }
};

/// \brief An operator tree for one query, plus its filter annotations.
struct Plan {
  const JoinGraph* graph = nullptr;
  std::unique_ptr<PlanNode> root;
  std::vector<PlanFilter> filters;

  /// Nodes indexed by id (borrowed pointers into the tree); rebuilt by
  /// Renumber().
  std::vector<PlanNode*> nodes;

  /// \brief Assign preorder ids and (re)build the node index.
  void Renumber();

  /// \brief Deep copy (filters and annotations included).
  Plan Clone() const;

  int num_joins() const;

  /// \brief True if every join node has at least one edge (no cross
  /// products) and build/probe rel-sets partition the node's rel_set.
  bool Validate() const;

  /// \brief True if the tree is right deep: every join's build child is a
  /// leaf (the probe chain carries the composite).
  bool IsRightDeep() const;

  /// \brief Leaf order X0..Xn for right-deep plans (X0 = deepest probe).
  std::vector<int> RightDeepOrder() const;

  /// \brief Human-readable multi-line rendering with filter annotations.
  std::string ToString() const;

  /// \brief One-line structural summary, e.g. "(k HJ (t HJ mk))".
  std::string Signature() const;
};

/// \brief Build a leaf node for `rel`.
std::unique_ptr<PlanNode> MakeLeaf(const JoinGraph& graph, int rel);

/// \brief Deep-copy a plan subtree (ids and annotations included).
std::unique_ptr<PlanNode> ClonePlanNode(const PlanNode& node);

/// \brief Join two subtrees; the edges applied are all graph edges between
/// the two rel-sets. Returns null if that edge set is empty (cross product).
std::unique_ptr<PlanNode> MakeJoin(const JoinGraph& graph,
                                   std::unique_ptr<PlanNode> build,
                                   std::unique_ptr<PlanNode> probe);

/// \brief Construct the right deep tree T(order[0], ..., order[n]).
/// Returns a plan with no filter annotations (run PushDownBitvectors).
/// Dies if a step would be a cross product; use IsValidRightDeepOrder to
/// pre-check enumerated permutations.
Plan BuildRightDeepPlan(const JoinGraph& graph, const std::vector<int>& order);

/// \brief True if every prefix of `order` induces a connected subgraph.
bool IsValidRightDeepOrder(const JoinGraph& graph,
                           const std::vector<int>& order);

}  // namespace bqo
